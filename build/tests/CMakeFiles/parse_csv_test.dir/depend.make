# Empty dependencies file for parse_csv_test.
# This may be replaced when dependencies are built.
