file(REMOVE_RECURSE
  "CMakeFiles/parse_csv_test.dir/parse_csv_test.cc.o"
  "CMakeFiles/parse_csv_test.dir/parse_csv_test.cc.o.d"
  "parse_csv_test"
  "parse_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
