file(REMOVE_RECURSE
  "CMakeFiles/supernet_test.dir/supernet_test.cc.o"
  "CMakeFiles/supernet_test.dir/supernet_test.cc.o.d"
  "supernet_test"
  "supernet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
