# Empty compiler generated dependencies file for supernet_test.
# This may be replaced when dependencies are built.
