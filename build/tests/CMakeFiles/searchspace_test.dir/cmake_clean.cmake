file(REMOVE_RECURSE
  "CMakeFiles/searchspace_test.dir/searchspace_test.cc.o"
  "CMakeFiles/searchspace_test.dir/searchspace_test.cc.o.d"
  "searchspace_test"
  "searchspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/searchspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
