
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/core_test.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/repro_search.dir/DependInfo.cmake"
  "/root/repo/build/src/comparator/CMakeFiles/repro_comparator.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/repro_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/supernet/CMakeFiles/repro_supernet.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/repro_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/repro_model.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/repro_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/repro_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/repro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
