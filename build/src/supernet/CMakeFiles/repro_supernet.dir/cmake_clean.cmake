file(REMOVE_RECURSE
  "CMakeFiles/repro_supernet.dir/supernet.cc.o"
  "CMakeFiles/repro_supernet.dir/supernet.cc.o.d"
  "librepro_supernet.a"
  "librepro_supernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_supernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
