# Empty compiler generated dependencies file for repro_supernet.
# This may be replaced when dependencies are built.
