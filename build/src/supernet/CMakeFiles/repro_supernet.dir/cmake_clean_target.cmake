file(REMOVE_RECURSE
  "librepro_supernet.a"
)
