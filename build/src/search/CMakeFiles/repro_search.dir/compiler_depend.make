# Empty compiler generated dependencies file for repro_search.
# This may be replaced when dependencies are built.
