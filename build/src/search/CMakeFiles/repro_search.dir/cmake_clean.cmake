file(REMOVE_RECURSE
  "CMakeFiles/repro_search.dir/evolutionary.cc.o"
  "CMakeFiles/repro_search.dir/evolutionary.cc.o.d"
  "librepro_search.a"
  "librepro_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
