file(REMOVE_RECURSE
  "librepro_search.a"
)
