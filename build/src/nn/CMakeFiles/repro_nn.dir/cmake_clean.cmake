file(REMOVE_RECURSE
  "CMakeFiles/repro_nn.dir/layers.cc.o"
  "CMakeFiles/repro_nn.dir/layers.cc.o.d"
  "CMakeFiles/repro_nn.dir/optimizer.cc.o"
  "CMakeFiles/repro_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/repro_nn.dir/serialize.cc.o"
  "CMakeFiles/repro_nn.dir/serialize.cc.o.d"
  "librepro_nn.a"
  "librepro_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
