file(REMOVE_RECURSE
  "librepro_tensor.a"
)
