file(REMOVE_RECURSE
  "CMakeFiles/repro_tensor.dir/gradcheck.cc.o"
  "CMakeFiles/repro_tensor.dir/gradcheck.cc.o.d"
  "CMakeFiles/repro_tensor.dir/ops.cc.o"
  "CMakeFiles/repro_tensor.dir/ops.cc.o.d"
  "CMakeFiles/repro_tensor.dir/tensor.cc.o"
  "CMakeFiles/repro_tensor.dir/tensor.cc.o.d"
  "librepro_tensor.a"
  "librepro_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
