
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/searchspace/arch_hyper.cc" "src/searchspace/CMakeFiles/repro_searchspace.dir/arch_hyper.cc.o" "gcc" "src/searchspace/CMakeFiles/repro_searchspace.dir/arch_hyper.cc.o.d"
  "/root/repo/src/searchspace/encoding.cc" "src/searchspace/CMakeFiles/repro_searchspace.dir/encoding.cc.o" "gcc" "src/searchspace/CMakeFiles/repro_searchspace.dir/encoding.cc.o.d"
  "/root/repo/src/searchspace/parse.cc" "src/searchspace/CMakeFiles/repro_searchspace.dir/parse.cc.o" "gcc" "src/searchspace/CMakeFiles/repro_searchspace.dir/parse.cc.o.d"
  "/root/repo/src/searchspace/search_space.cc" "src/searchspace/CMakeFiles/repro_searchspace.dir/search_space.cc.o" "gcc" "src/searchspace/CMakeFiles/repro_searchspace.dir/search_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/repro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
