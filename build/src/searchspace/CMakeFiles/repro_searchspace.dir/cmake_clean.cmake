file(REMOVE_RECURSE
  "CMakeFiles/repro_searchspace.dir/arch_hyper.cc.o"
  "CMakeFiles/repro_searchspace.dir/arch_hyper.cc.o.d"
  "CMakeFiles/repro_searchspace.dir/encoding.cc.o"
  "CMakeFiles/repro_searchspace.dir/encoding.cc.o.d"
  "CMakeFiles/repro_searchspace.dir/parse.cc.o"
  "CMakeFiles/repro_searchspace.dir/parse.cc.o.d"
  "CMakeFiles/repro_searchspace.dir/search_space.cc.o"
  "CMakeFiles/repro_searchspace.dir/search_space.cc.o.d"
  "librepro_searchspace.a"
  "librepro_searchspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_searchspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
