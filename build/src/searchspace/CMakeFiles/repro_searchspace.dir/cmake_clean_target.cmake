file(REMOVE_RECURSE
  "librepro_searchspace.a"
)
