# Empty dependencies file for repro_searchspace.
# This may be replaced when dependencies are built.
