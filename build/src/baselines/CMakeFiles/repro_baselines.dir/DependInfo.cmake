
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/agcrn.cc" "src/baselines/CMakeFiles/repro_baselines.dir/agcrn.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/agcrn.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/repro_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/mtgnn.cc" "src/baselines/CMakeFiles/repro_baselines.dir/mtgnn.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/mtgnn.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/repro_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/transformers.cc" "src/baselines/CMakeFiles/repro_baselines.dir/transformers.cc.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/transformers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/repro_model.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/repro_data.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/repro_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/repro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
