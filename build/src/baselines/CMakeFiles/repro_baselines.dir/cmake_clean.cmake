file(REMOVE_RECURSE
  "CMakeFiles/repro_baselines.dir/agcrn.cc.o"
  "CMakeFiles/repro_baselines.dir/agcrn.cc.o.d"
  "CMakeFiles/repro_baselines.dir/common.cc.o"
  "CMakeFiles/repro_baselines.dir/common.cc.o.d"
  "CMakeFiles/repro_baselines.dir/mtgnn.cc.o"
  "CMakeFiles/repro_baselines.dir/mtgnn.cc.o.d"
  "CMakeFiles/repro_baselines.dir/registry.cc.o"
  "CMakeFiles/repro_baselines.dir/registry.cc.o.d"
  "CMakeFiles/repro_baselines.dir/transformers.cc.o"
  "CMakeFiles/repro_baselines.dir/transformers.cc.o.d"
  "librepro_baselines.a"
  "librepro_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
