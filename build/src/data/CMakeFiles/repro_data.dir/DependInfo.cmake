
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_loader.cc" "src/data/CMakeFiles/repro_data.dir/csv_loader.cc.o" "gcc" "src/data/CMakeFiles/repro_data.dir/csv_loader.cc.o.d"
  "/root/repo/src/data/cts_dataset.cc" "src/data/CMakeFiles/repro_data.dir/cts_dataset.cc.o" "gcc" "src/data/CMakeFiles/repro_data.dir/cts_dataset.cc.o.d"
  "/root/repo/src/data/metrics.cc" "src/data/CMakeFiles/repro_data.dir/metrics.cc.o" "gcc" "src/data/CMakeFiles/repro_data.dir/metrics.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/repro_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/repro_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/task.cc" "src/data/CMakeFiles/repro_data.dir/task.cc.o" "gcc" "src/data/CMakeFiles/repro_data.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/repro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
