file(REMOVE_RECURSE
  "CMakeFiles/repro_data.dir/csv_loader.cc.o"
  "CMakeFiles/repro_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/repro_data.dir/cts_dataset.cc.o"
  "CMakeFiles/repro_data.dir/cts_dataset.cc.o.d"
  "CMakeFiles/repro_data.dir/metrics.cc.o"
  "CMakeFiles/repro_data.dir/metrics.cc.o.d"
  "CMakeFiles/repro_data.dir/synthetic.cc.o"
  "CMakeFiles/repro_data.dir/synthetic.cc.o.d"
  "CMakeFiles/repro_data.dir/task.cc.o"
  "CMakeFiles/repro_data.dir/task.cc.o.d"
  "librepro_data.a"
  "librepro_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
