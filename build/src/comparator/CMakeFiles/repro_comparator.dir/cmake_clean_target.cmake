file(REMOVE_RECURSE
  "librepro_comparator.a"
)
