# Empty compiler generated dependencies file for repro_comparator.
# This may be replaced when dependencies are built.
