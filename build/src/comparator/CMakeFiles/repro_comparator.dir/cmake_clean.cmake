file(REMOVE_RECURSE
  "CMakeFiles/repro_comparator.dir/comparator.cc.o"
  "CMakeFiles/repro_comparator.dir/comparator.cc.o.d"
  "CMakeFiles/repro_comparator.dir/gin.cc.o"
  "CMakeFiles/repro_comparator.dir/gin.cc.o.d"
  "CMakeFiles/repro_comparator.dir/pretrain.cc.o"
  "CMakeFiles/repro_comparator.dir/pretrain.cc.o.d"
  "librepro_comparator.a"
  "librepro_comparator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_comparator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
