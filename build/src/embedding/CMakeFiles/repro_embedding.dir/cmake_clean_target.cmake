file(REMOVE_RECURSE
  "librepro_embedding.a"
)
