# Empty compiler generated dependencies file for repro_embedding.
# This may be replaced when dependencies are built.
