file(REMOVE_RECURSE
  "CMakeFiles/repro_embedding.dir/set_transformer.cc.o"
  "CMakeFiles/repro_embedding.dir/set_transformer.cc.o.d"
  "CMakeFiles/repro_embedding.dir/ts2vec.cc.o"
  "CMakeFiles/repro_embedding.dir/ts2vec.cc.o.d"
  "librepro_embedding.a"
  "librepro_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
