file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_p24q24.dir/bench_perf_p24q24.cc.o"
  "CMakeFiles/bench_perf_p24q24.dir/bench_perf_p24q24.cc.o.d"
  "bench_perf_p24q24"
  "bench_perf_p24q24.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_p24q24.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
