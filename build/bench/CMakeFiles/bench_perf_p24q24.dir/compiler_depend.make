# Empty compiler generated dependencies file for bench_perf_p24q24.
# This may be replaced when dependencies are built.
