file(REMOVE_RECURSE
  "librepro_bench_harness.a"
)
