file(REMOVE_RECURSE
  "CMakeFiles/repro_bench_harness.dir/harness.cc.o"
  "CMakeFiles/repro_bench_harness.dir/harness.cc.o.d"
  "CMakeFiles/repro_bench_harness.dir/perf_table.cc.o"
  "CMakeFiles/repro_bench_harness.dir/perf_table.cc.o.d"
  "librepro_bench_harness.a"
  "librepro_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
