# Empty dependencies file for repro_bench_harness.
# This may be replaced when dependencies are built.
