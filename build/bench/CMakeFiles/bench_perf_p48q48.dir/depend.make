# Empty dependencies file for bench_perf_p48q48.
# This may be replaced when dependencies are built.
