file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_p48q48.dir/bench_perf_p48q48.cc.o"
  "CMakeFiles/bench_perf_p48q48.dir/bench_perf_p48q48.cc.o.d"
  "bench_perf_p48q48"
  "bench_perf_p48q48.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_p48q48.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
