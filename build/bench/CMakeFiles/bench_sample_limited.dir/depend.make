# Empty dependencies file for bench_sample_limited.
# This may be replaced when dependencies are built.
