file(REMOVE_RECURSE
  "CMakeFiles/bench_sample_limited.dir/bench_sample_limited.cc.o"
  "CMakeFiles/bench_sample_limited.dir/bench_sample_limited.cc.o.d"
  "bench_sample_limited"
  "bench_sample_limited.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sample_limited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
