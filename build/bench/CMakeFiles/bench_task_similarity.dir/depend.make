# Empty dependencies file for bench_task_similarity.
# This may be replaced when dependencies are built.
