file(REMOVE_RECURSE
  "CMakeFiles/bench_task_similarity.dir/bench_task_similarity.cc.o"
  "CMakeFiles/bench_task_similarity.dir/bench_task_similarity.cc.o.d"
  "bench_task_similarity"
  "bench_task_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
