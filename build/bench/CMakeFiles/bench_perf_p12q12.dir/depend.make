# Empty dependencies file for bench_perf_p12q12.
# This may be replaced when dependencies are built.
