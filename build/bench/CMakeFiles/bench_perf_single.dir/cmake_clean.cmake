file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_single.dir/bench_perf_single.cc.o"
  "CMakeFiles/bench_perf_single.dir/bench_perf_single.cc.o.d"
  "bench_perf_single"
  "bench_perf_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
