# Empty dependencies file for bench_perf_single.
# This may be replaced when dependencies are built.
