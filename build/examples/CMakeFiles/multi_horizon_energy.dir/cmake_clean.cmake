file(REMOVE_RECURSE
  "CMakeFiles/multi_horizon_energy.dir/multi_horizon_energy.cpp.o"
  "CMakeFiles/multi_horizon_energy.dir/multi_horizon_energy.cpp.o.d"
  "multi_horizon_energy"
  "multi_horizon_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_horizon_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
