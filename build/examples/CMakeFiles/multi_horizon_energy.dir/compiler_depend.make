# Empty compiler generated dependencies file for multi_horizon_energy.
# This may be replaced when dependencies are built.
