#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/jsonio.h"
#include "common/runtime_config.h"
#include "common/runtime_stats.h"

namespace autocts {
namespace serve {
namespace {

/// One parsed request line + headers + body.
struct HttpRequest {
  std::string method;
  std::string path;    ///< Target up to '?'.
  std::string query;   ///< After '?', may be empty.
  std::string body;
};

/// Reads one HTTP/1.1 request off `fd`. Returns false on malformed input,
/// client disconnect, or an over-limit body.
bool ReadRequest(int fd, size_t max_body, HttpRequest* req) {
  std::string buf;
  char chunk[4096];
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
    header_end = buf.find("\r\n\r\n");
    if (buf.size() > max_body + 8192) return false;
  }
  const std::string head = buf.substr(0, header_end);
  std::istringstream hs(head);
  std::string request_line;
  if (!std::getline(hs, request_line)) return false;
  {
    std::istringstream rl(request_line);
    std::string target, version;
    if (!(rl >> req->method >> target >> version)) return false;
    const size_t qpos = target.find('?');
    req->path = target.substr(0, qpos);
    if (qpos != std::string::npos) req->query = target.substr(qpos + 1);
  }
  size_t content_length = 0;
  std::string line;
  while (std::getline(hs, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (name == "content-length") {
      content_length = static_cast<size_t>(
          std::strtoull(line.c_str() + colon + 1, nullptr, 10));
    }
  }
  if (content_length > max_body) return false;
  req->body = buf.substr(header_end + 4);
  while (req->body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    req->body.append(chunk, static_cast<size_t>(n));
  }
  req->body.resize(content_length);
  return true;
}

void WriteResponse(int fd, int code, const char* reason,
                   const std::string& body, const char* content_type) {
  std::ostringstream os;
  os << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  const std::string out = os.str();
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, 0);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

void WriteError(int fd, int code, const char* reason,
                const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Field("error", message);
  w.EndObject();
  WriteResponse(fd, code, reason, w.str(), "application/json");
}

/// Integer query parameter `name` from "a=1&b=2", or `fallback`.
int QueryInt(const std::string& query, const std::string& name, int fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string kv = query.substr(pos, amp - pos);
    const size_t eq = kv.find('=');
    if (eq != std::string::npos && kv.substr(0, eq) == name) {
      return std::atoi(kv.c_str() + eq + 1);
    }
    pos = amp + 1;
  }
  return fallback;
}

}  // namespace

Status ParseCsvWindow(const std::string& body, RecommendRequest* request) {
  request->window.clear();
  request->num_series = 0;
  request->num_steps = 0;
  std::istringstream bs(body);
  std::string line;
  while (std::getline(bs, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    int steps = 0;
    const char* p = line.c_str();
    while (*p != '\0') {
      char* end = nullptr;
      const float v = std::strtof(p, &end);
      if (end == p) return Status::Error("unparseable CSV value in window");
      request->window.push_back(v);
      ++steps;
      p = end;
      while (*p == ' ') ++p;
      if (*p == ',') ++p;
    }
    if (request->num_series == 0) {
      request->num_steps = steps;
    } else if (steps != request->num_steps) {
      return Status::Error("CSV rows have differing lengths");
    }
    ++request->num_series;
  }
  if (request->num_series == 0) return Status::Error("empty CSV window");
  return Status::Ok();
}

std::string RecommendationToJson(const Recommendation& rec) {
  JsonWriter w;
  w.BeginObject();
  {
    std::ostringstream sig;
    sig << std::hex << rec.task_signature;
    w.Field("task_signature", sig.str());
  }
  w.Key("ranked");
  w.BeginArray();
  for (const std::string& s : rec.ranked) w.Value(s);
  w.EndArray();
  if (!rec.forecast.empty()) {
    w.Key("forecast");
    w.BeginArray();
    for (float v : rec.forecast) w.Value(static_cast<double>(v));
    w.EndArray();
  }
  w.Field("embed_cache_hit", rec.embed_cache_hit);
  w.Field("model_cache_hit", rec.model_cache_hit);
  w.Field("queue_us", rec.queue_us);
  w.Field("service_us", rec.service_us);
  w.Field("batch_size", rec.batch_size);
  w.EndObject();
  return w.str();
}

HttpServer::HttpServer(RecommendationService* service,
                       const HttpOptions& options)
    : service_(service), options_(options) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error("bind() failed (port in use?)");
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // Unblocks accept(): shutdown makes the blocked call return with an
  // error; close alone is not reliable on all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;  // Transient (EINTR etc.).
    }
    std::lock_guard<std::mutex> lock(handlers_mu_);
    // Reap handlers that already finished so long-lived servers don't
    // accumulate joinable-but-done threads... joinable threads can't be
    // probed portably, so just bound growth: join all once past the cap
    // (handlers are short-lived — Connection: close).
    if (handlers_.size() > 64) {
      for (std::thread& t : handlers_) {
        if (t.joinable()) t.join();
      }
      handlers_.clear();
    }
    handlers_.emplace_back([this, fd] {
      HandleConnection(fd);
      ::close(fd);
    });
  }
}

void HttpServer::HandleConnection(int fd) {
  HttpRequest req;
  if (!ReadRequest(fd, options_.max_body_bytes, &req)) {
    WriteError(fd, 400, "Bad Request", "malformed HTTP request");
    return;
  }
  if (req.method == "GET" && req.path == "/healthz") {
    WriteResponse(fd, 200, "OK", "ok\n", "text/plain");
    return;
  }
  if (req.method == "GET" && req.path == "/stats") {
    WriteResponse(fd, 200, "OK", RuntimeStats::Snapshot().ToJson(),
                  "application/json");
    return;
  }
  if (req.method == "GET" && req.path == "/config") {
    WriteResponse(fd, 200, "OK", GlobalRuntimeConfig().ToJson(),
                  "application/json");
    return;
  }
  if (req.method == "POST" && req.path == "/recommend") {
    RecommendRequest rec;
    Status s = ParseCsvWindow(req.body, &rec);
    if (!s.ok()) {
      WriteError(fd, 400, "Bad Request", s.message());
      return;
    }
    rec.p = QueryInt(req.query, "p", 12);
    rec.q = QueryInt(req.query, "q", 12);
    rec.single_step = QueryInt(req.query, "single", 0) != 0;
    rec.top_k = QueryInt(req.query, "topk", 1);
    rec.want_forecast = QueryInt(req.query, "forecast", 0) != 0;
    StatusOr<Recommendation> result = service_->Recommend(std::move(rec));
    if (!result.ok()) {
      WriteError(fd, 422, "Unprocessable Entity", result.status().message());
      return;
    }
    WriteResponse(fd, 200, "OK", RecommendationToJson(result.value()),
                  "application/json");
    return;
  }
  WriteError(fd, 404, "Not Found", "unknown endpoint: " + req.path);
}

}  // namespace serve
}  // namespace autocts
