#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/guard.h"
#include "model/searched_model.h"
#include "searchspace/parse.h"
#include "tensor/backend.h"
#include "tensor/ops.h"
#include "tensor/plan.h"

namespace autocts {
namespace serve {
namespace {

/// The live service RuntimeStats::Snapshot() reads through the registered
/// provider (the last Start() wins; Shutdown clears its own registration).
std::atomic<RecommendationService*> g_active_service{nullptr};

ServeStats ActiveServeStats() {
  RecommendationService* s = g_active_service.load(std::memory_order_acquire);
  return s != nullptr ? s->stats() : ServeStats{};
}

double MicrosSince(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - from)
      .count();
}

std::string HexSig(uint64_t sig) {
  std::ostringstream os;
  os << std::hex << sig;
  return os.str();
}

/// Indices of the top-k values, descending — the exact tie-break rule of
/// evolutionary.cc's TopIndices (stable sort keeps earlier indices first),
/// which serve-mode ranking must replicate bit-for-bit.
std::vector<int> TopIndices(const std::vector<int>& scores, int k) {
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
  });
  order.resize(
      static_cast<size_t>(std::min<int>(k, static_cast<int>(order.size()))));
  return order;
}

/// Per-worker cache of compiled comparator-inference plans, one per batch
/// size. Unlike the search-side TlsCompareCache (which freezes the task
/// embedding as a plan constant), serving feeds the per-row task embeddings
/// in as a step INPUT, so one plan per batch size serves any mix of tenants'
/// tasks — the plan survives across requests, which is the point of keeping
/// workers long-lived. Thread-local because a StepPlan must replay on the
/// thread that captured it (plan.h invariant).
struct TlsServePlans {
  const void* comparator = nullptr;
  std::map<int, std::unique_ptr<StepPlan>> by_batch;
};

thread_local TlsServePlans t_serve_plans;

}  // namespace

/// One packed set of signature-deduplicated comparator duels. Requests in a
/// micro-batch append their duels here; identical duels — same ordered
/// (first, second) arch-hyper signatures AND same task signature — collapse
/// into one row, so concurrent tenants querying the same popular dataset
/// share every logit. Bit-safe because all comparator ops are row-local: a
/// row's logit does not depend on which rows surround it in the batch.
struct RecommendationService::DuelSet {
  struct Row {
    const ArchHyperEncoding* first;
    const ArchHyperEncoding* second;
    Tensor task_row;  ///< [1, f2]; undefined when the comparator is task-blind.
  };
  std::vector<Row> rows;
  std::vector<char> outcomes;  ///< 1 = first wins; filled by EvaluateDuels.
  std::unordered_map<std::string, int> slot_of;

  int Add(const ArchHyperEncoding* first, const ArchHyperEncoding* second,
          const std::string& first_sig, const std::string& second_sig,
          uint64_t task_sig, const Tensor& task_row) {
    std::string key;
    key.reserve(first_sig.size() + second_sig.size() + 20);
    key.append(first_sig);
    key.push_back('>');
    key.append(second_sig);
    key.push_back('@');
    key.append(HexSig(task_sig));
    auto it = slot_of.try_emplace(key, static_cast<int>(rows.size()));
    if (it.second) rows.push_back(Row{first, second, task_row});
    return it.first->second;
  }
};

/// In-worker state of one request across the lockstep ranking rounds.
struct RecommendationService::Active {
  Pending* pending = nullptr;
  Status status;  ///< First failure; non-OK skips the remaining stages.
  uint64_t signature = 0;
  ForecastTask task;
  Tensor task_row;  ///< [1, f2] served task embedding.
  /// Stage-1 pool (sampled), its encodings and signatures.
  std::vector<ArchHyper> pool;
  std::vector<ArchHyperEncoding> enc;
  std::vector<std::string> sigs;
  std::vector<std::pair<int, int>> pairs;  ///< Current stage's duels.
  std::vector<int> pair_slots;             ///< DuelSet slot per duel.
  /// Stage-2 population (sparse-tournament survivors).
  std::vector<ArchHyper> population;
  std::vector<ArchHyperEncoding> pop_enc;
  std::vector<std::string> pop_sigs;
  std::vector<ArchHyper> top;  ///< Final ranked answer.
  int top_k = 1;
  Recommendation result;

  bool ok() const { return status.ok(); }
};

ServeOptions ServeOptions::ForScale(const ScaleConfig& scale) {
  ServeOptions o;
  o.scale = scale;
  // Serving trades pool breadth for latency: a small fresh-sampled pool per
  // request keeps the zero-shot "seconds" promise, and small per-request
  // duel counts are exactly where micro-batch packing pays (fixed per-replay
  // cost dominates part-filled batches).
  o.search.ranking_pool = std::max(8, scale.ranking_pool / 8);
  o.search.opponents_per_candidate = 2;
  o.search.population = std::min(4, scale.population);
  o.search.generations = 0;  // Rank-only serving mode.
  o.search.top_k = o.search.population;
  o.search.compare_batch = 64;
  o.windows_per_task = scale.windows_per_task;
  o.forecast_train.epochs = 2;
  o.forecast_train.batches_per_epoch = 4;
  o.forecast_train.batch_size = scale.batch_size;
  o.forecast_train.max_eval_windows = 16;
  return o;
}

RecommendationService::RecommendationService(Comparator* comparator,
                                             const TaskEncoder* encoder,
                                             const JointSearchSpace* space,
                                             const ServeOptions& options)
    : comparator_(comparator),
      encoder_(encoder),
      space_(space),
      options_(options),
      config_(GlobalRuntimeConfig()),
      embed_cache_(options.embed_cache_entries) {
  CHECK(comparator_ != nullptr);
  CHECK(space_ != nullptr);
  if (comparator_->options().task_aware) CHECK(encoder_ != nullptr);
  comparator_->SetTraining(false);
  config_.comparator_precision = options_.precision;
}

RecommendationService::~RecommendationService() { Shutdown(); }

Status RecommendationService::Start() {
  if (options_.workers < 1) return Status::Error("serve workers must be >= 1");
  if (options_.max_batch < 1) return Status::Error("max_batch must be >= 1");
  if (options_.max_delay_us < 0) {
    return Status::Error("max_delay_us must be >= 0");
  }
  if (options_.queue_capacity < 1) {
    return Status::Error("queue_capacity must be >= 1");
  }
  if (options_.search.ranking_pool < 1 || options_.search.population < 1) {
    return Status::Error("serve search needs a non-empty pool and population");
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (started_) return Status::Error("Start() called twice");
    if (stopping_) return Status::Error("Start() after Shutdown()");
    started_ = true;
  }
  g_active_service.store(this, std::memory_order_release);
  RegisterServeStatsProvider(&ActiveServeStats);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  return Status::Ok();
}

void RecommendationService::Shutdown() {
  // Sessions first, while workers still serve: an in-flight background
  // re-search blocks in Recommend(), and closing its engine waits for it.
  CloseAllStreams();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Whatever is still queued (service was never started, or Shutdown raced
  // a submit past the stopping check) fails cleanly instead of dangling.
  std::deque<PendingPtr> leftovers;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftovers.swap(queue_);
  }
  for (PendingPtr& p : leftovers) {
    p->promise.set_value(Status::Error("service shut down before the request "
                                       "was served"));
  }
  RecommendationService* self = this;
  g_active_service.compare_exchange_strong(self, nullptr,
                                           std::memory_order_acq_rel);
}

std::future<StatusOr<Recommendation>> RecommendationService::Submit(
    RecommendRequest request) {
  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->enqueued = std::chrono::steady_clock::now();
  std::future<StatusOr<Recommendation>> result =
      pending->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_not_full_.wait(lock, [&] {
      return stopping_ ||
             queue_.size() < static_cast<size_t>(options_.queue_capacity);
    });
    if (stopping_) {
      pending->promise.set_value(
          Status::Error("service is shutting down; request rejected"));
      return result;
    }
    queue_.push_back(std::move(pending));
    requests_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t depth = queue_.size();
    uint64_t hw = queue_highwater_.load(std::memory_order_relaxed);
    while (depth > hw && !queue_highwater_.compare_exchange_weak(
                             hw, depth, std::memory_order_relaxed)) {
    }
  }
  queue_not_empty_.notify_one();
  return result;
}

Status RecommendationService::TrySubmit(
    RecommendRequest request, std::future<StatusOr<Recommendation>>* result) {
  CHECK(result != nullptr);
  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->enqueued = std::chrono::steady_clock::now();
  *result = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ ||
        queue_.size() >= static_cast<size_t>(options_.queue_capacity)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Error(stopping_ ? "service is shutting down"
                                     : "request queue is full");
    }
    queue_.push_back(std::move(pending));
    requests_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t depth = queue_.size();
    uint64_t hw = queue_highwater_.load(std::memory_order_relaxed);
    while (depth > hw && !queue_highwater_.compare_exchange_weak(
                             hw, depth, std::memory_order_relaxed)) {
    }
  }
  queue_not_empty_.notify_one();
  return Status::Ok();
}

StatusOr<Recommendation> RecommendationService::Recommend(
    RecommendRequest request) {
  return Submit(std::move(request)).get();
}

ServeStats RecommendationService::stats() const {
  ServeStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.queue_highwater = queue_highwater_.load(std::memory_order_relaxed);
  s.duel_rows = duel_rows_.load(std::memory_order_relaxed);
  s.duel_rows_evaluated =
      duel_rows_evaluated_.load(std::memory_order_relaxed);
  s.models_trained = models_trained_.load(std::memory_order_relaxed);
  s.forecasts = forecasts_.load(std::memory_order_relaxed);
  const TaskEmbedCache::Stats es = embed_cache_.stats();
  s.embed_hits = es.hits;
  s.embed_misses = es.misses;
  s.embed_entries = es.entries;
  s.embed_evictions = es.evictions;
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    s.stream_sessions = streams_opened_;
    stream::StreamEngineStats total = closed_streams_;
    for (const auto& kv : streams_) {
      std::lock_guard<std::mutex> sl(kv.second->stats_mu);
      const stream::StreamEngineStats& e = kv.second->snapshot;
      total.ticks += e.ticks;
      total.drifts += e.drifts;
      total.swaps += e.swaps;
      total.research_failures += e.research_failures;
      total.swap_stalls += e.swap_stalls;
    }
    s.stream_ticks = total.ticks;
    s.stream_drifts = total.drifts;
    s.stream_swaps = total.swaps;
    s.stream_research_failures = total.research_failures;
    s.stream_swap_stalls = total.swap_stalls;
  }
  return s;
}

void RecommendationService::WorkerLoop(int worker_index) {
  // Each worker owns a 1-lane pool and installs it for its whole lifetime:
  // every tensor kernel below runs inline on this thread, which (a) keeps
  // the thread-local StepPlans valid (capture thread == replay thread,
  // structurally) and (b) makes worker count the serving concurrency axis
  // instead of kernel fan-out fighting across workers for one shared pool.
  ThreadPool local_pool(1);
  ExecContext ctx;
  ctx.pool = &local_pool;
  ctx.seed = options_.search.seed + static_cast<uint64_t>(worker_index);
  ctx.config = &config_;
  ExecScope scope(ctx);
  for (;;) {
    std::vector<PendingPtr> batch = PopBatch();
    if (batch.empty()) return;
    ProcessBatch(std::move(batch), ctx);
  }
}

std::vector<RecommendationService::PendingPtr>
RecommendationService::PopBatch() {
  std::vector<PendingPtr> batch;
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_not_empty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return batch;  // Stopping and fully drained.
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.max_delay_us);
  while (static_cast<int>(batch.size()) < options_.max_batch) {
    if (!queue_.empty()) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      continue;
    }
    // Stragglers may still arrive: wait out the admission delay — unless
    // the service is draining, where waiting only delays shutdown.
    if (stopping_ || options_.max_delay_us == 0) break;
    if (queue_not_empty_.wait_until(lock, deadline, [&] {
          return stopping_ || !queue_.empty();
        })) {
      continue;  // Something arrived (or we started stopping); re-check.
    }
    break;  // Admission delay elapsed with no stragglers.
  }
  lock.unlock();
  queue_not_full_.notify_all();
  return batch;
}

Status RecommendationService::Validate(const RecommendRequest& r) const {
  if (r.num_series <= 0 || r.num_steps <= 0) {
    return Status::Error("window geometry must be positive");
  }
  if (r.window.size() != static_cast<size_t>(r.num_series) *
                             static_cast<size_t>(r.num_steps)) {
    return Status::Error("window size does not match num_series * num_steps");
  }
  if (r.p < 1 || r.q < 1) return Status::Error("p and q must be >= 1");
  if (r.num_steps < r.p + r.q) {
    return Status::Error("window too short: num_steps must be >= p + q");
  }
  if (!r.adjacency.empty() &&
      r.adjacency.size() != static_cast<size_t>(r.num_series) *
                                static_cast<size_t>(r.num_series)) {
    return Status::Error("adjacency must be empty or num_series^2");
  }
  if (r.top_k < 1) return Status::Error("top_k must be >= 1");
  if (r.want_forecast && r.num_steps - (r.p + r.q) + 1 < 20) {
    return Status::Error(
        "forecast needs at least 20 training windows (num_steps >= p+q+19)");
  }
  return Status::Ok();
}

ForecastTask RecommendationService::MakeTask(const RecommendRequest& r,
                                             uint64_t signature) const {
  std::vector<float> adjacency = r.adjacency;
  if (adjacency.empty()) {
    // No spatial prior given: identity adjacency (self-loops only). The
    // comparator never reads it; only on-demand forecast models do.
    adjacency.assign(
        static_cast<size_t>(r.num_series) * static_cast<size_t>(r.num_series),
        0.0f);
    for (int i = 0; i < r.num_series; ++i) {
      adjacency[static_cast<size_t>(i) * r.num_series + i] = 1.0f;
    }
  }
  ForecastTask task;
  task.data = std::make_shared<const CtsDataset>(
      "serve-" + HexSig(signature), r.num_series, r.num_steps, 1, r.window,
      std::move(adjacency));
  task.p = r.p;
  task.q = r.q;
  task.single_step = r.single_step;
  return task;
}

Tensor RecommendationService::ComputeEmbedding(const ForecastTask& task,
                                               uint64_t signature) const {
  // Content-seeded window sampling: the embedding depends only on the
  // request bytes and the serve seed, never on cache state or arrival
  // order — the precondition for cold-vs-warm bit-identical responses.
  Rng rng(options_.search.seed ^ signature);
  Tensor preliminary = PreliminaryTaskEmbedding(
      *encoder_, task, options_.windows_per_task, &rng);
  return comparator_->EmbedTask(preliminary).Detach();
}

Tensor RecommendationService::TaskEmbeddingFor(
    const RecommendRequest& request) const {
  CHECK(Validate(request).ok());
  const uint64_t signature =
      WindowSignature(request.window.data(), request.num_series,
                      request.num_steps, request.p, request.q,
                      request.single_step);
  NoGradScope no_grad;
  return ComputeEmbedding(MakeTask(request, signature), signature);
}

ArchHyperEncoding RecommendationService::CachedEncoding(
    const ArchHyper& ah) const {
  const std::string key = ah.Signature();
  {
    std::lock_guard<std::mutex> lock(encode_mu_);
    auto it = encode_cache_.find(key);
    if (it != encode_cache_.end()) return it->second;
  }
  ArchHyperEncoding enc = EncodeArchHyper(ah);
  std::lock_guard<std::mutex> lock(encode_mu_);
  return encode_cache_.try_emplace(key, std::move(enc)).first->second;
}

const QuantizedComparator* RecommendationService::Quantized(
    ComparatorPrecision precision) const {
  std::lock_guard<std::mutex> lock(quant_mu_);
  if (quant_ == nullptr || quant_->precision() != precision) {
    quant_ = std::make_unique<QuantizedComparator>(*comparator_, precision);
  }
  return quant_.get();
}

void RecommendationService::EvaluateDuels(DuelSet* duels) const {
  duels->outcomes.assign(duels->rows.size(), 0);
  if (duels->rows.empty()) return;
  duel_rows_evaluated_.fetch_add(duels->rows.size(),
                                 std::memory_order_relaxed);
  const bool task_aware = comparator_->options().task_aware;
  const int compare_batch = std::max(1, options_.search.compare_batch);
  const size_t n = duels->rows.size();
  const ComparatorPrecision precision = config_.comparator_precision;
  NoGradScope no_grad;
  auto record = [&](size_t begin, int m, const float* logits) {
    for (int i = 0; i < m; ++i) {
      const float logit = logits[i];
      // Mirror the searcher's guardrail: a non-finite logit carries no
      // preference and deterministically falls to the second candidate.
      const bool win =
          (GuardsEnabled() && !std::isfinite(logit)) ? false : logit >= 0.0f;
      duels->outcomes[begin + static_cast<size_t>(i)] = win ? 1 : 0;
    }
  };
  for (size_t begin = 0; begin < n;
       begin += static_cast<size_t>(compare_batch)) {
    const size_t end = std::min(n, begin + static_cast<size_t>(compare_batch));
    const int m = static_cast<int>(end - begin);
    // Bucket the chunk to a power-of-two row count (>= 8) by repeating the
    // last row. Micro-batches vary in size, so raw tail chunks would mint a
    // new plan (an expensive re-capture) for every new size; buckets bound
    // the per-worker plan set to log2(compare_batch) shapes. Bit-safe: all
    // comparator ops are row-local, so pad rows cannot perturb real rows,
    // and record() only reads the first m logits.
    int padded = m;
    if (precision == ComparatorPrecision::kFp32) {
      padded = 8;
      while (padded < m) padded *= 2;
    }
    std::vector<ArchHyperEncoding> first, second;
    first.reserve(static_cast<size_t>(padded));
    second.reserve(static_cast<size_t>(padded));
    for (size_t r = begin; r < end; ++r) {
      first.push_back(*duels->rows[r].first);
      second.push_back(*duels->rows[r].second);
    }
    while (static_cast<int>(first.size()) < padded) {
      first.push_back(*duels->rows[end - 1].first);
      second.push_back(*duels->rows[end - 1].second);
    }
    EncodingBatch eb1 = StackEncodings(first);
    EncodingBatch eb2 = StackEncodings(second);
    Tensor task_embeds;
    if (task_aware) {
      std::vector<Tensor> rows;
      rows.reserve(static_cast<size_t>(padded));
      for (size_t r = begin; r < end; ++r) {
        rows.push_back(duels->rows[r].task_row);
      }
      while (static_cast<int>(rows.size()) < padded) {
        rows.push_back(duels->rows[end - 1].task_row);
      }
      task_embeds = Concat(rows, 0);
    }
    if (precision != ComparatorPrecision::kFp32) {
      // Quantized off-tape inference (PR 6): no tape, no plans; rows stay
      // independent, so packing requests together is still bit-safe.
      const std::vector<float> logits =
          Quantized(precision)->CompareLogits(eb1, eb2, task_embeds);
      record(begin, m, logits.data());
      continue;
    }
    TlsServePlans& cache = t_serve_plans;
    if (cache.comparator != static_cast<const void*>(comparator_)) {
      cache.by_batch.clear();
      cache.comparator = comparator_;
    }
    std::vector<Tensor> step_inputs = {eb1.adjacency, eb1.op_onehot,
                                       eb1.hyper,     eb2.adjacency,
                                       eb2.op_onehot, eb2.hyper};
    if (task_aware) step_inputs.push_back(task_embeds);
    std::unique_ptr<StepPlan>& plan = cache.by_batch[padded];
    if (plan == nullptr) plan = std::make_unique<StepPlan>();
    if (plan->ready() && !plan->MatchesInputs(step_inputs)) {
      plan->Invalidate();
    }
    if (plan->ready()) {
      // Thread-local ownership makes this structurally true; the CHECK is
      // the serving-worker enforcement of plan.h's capture-thread invariant.
      const Status thread_ok = plan->ValidateReplayThread();
      CHECK(thread_ok.ok()) << thread_ok.message();
      plan->BeginStep(step_inputs);
      plan->RunForward();
      record(begin, m, plan->output(0).data().data());
      continue;
    }
    const bool capture =
        plan::PlansEnabled() && !plan->capture_failed() &&
        LiveTapeNodesThisThread() == plan::PinnedTapeNodesThisThread();
    if (capture) plan->BeginCapture(step_inputs, "serve_compare");
    Tensor logits = comparator_->CompareLogits(eb1, eb2, task_embeds);
    if (capture) {
      plan->AddOutput(logits);
      plan->EndCapture();
    }
    record(begin, m, logits.data().data());
  }
}

void RecommendationService::ProcessBatch(std::vector<PendingPtr> batch,
                                         const ExecContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  // Flush cached embeddings if the kernel backend or comparator precision
  // changed since the last batch (the staleness contract; see embed_cache.h).
  embed_cache_.SetContext(
      std::string(kernels::ActiveBackend().name) + "/" +
      ComparatorPrecisionName(config_.comparator_precision));

  const bool task_aware = comparator_->options().task_aware;
  const int f2 = comparator_->options().f2;

  // Per-request setup: validate, embed (through the cache), sample the
  // candidate pool and the sparse-tournament duels. RNG consumption per
  // request is EXACTLY SearchTopK's at generations=0 (SampleDistinct first,
  // then the pair draws), with seed = search.seed ^ window signature — so a
  // serve response equals a library SearchTopK call for the same window.
  std::vector<Active> acts(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Active& a = acts[i];
    a.pending = batch[i].get();
    const RecommendRequest& req = a.pending->request;
    a.status = Validate(req);
    if (!a.ok()) continue;
    a.signature = WindowSignature(req.window.data(), req.num_series,
                                  req.num_steps, req.p, req.q,
                                  req.single_step);
    a.result.task_signature = a.signature;
    a.task = MakeTask(req, a.signature);
    if (task_aware) {
      NoGradScope no_grad;
      bool hit = false;
      Tensor embed = embed_cache_.GetOrCompute(
          a.signature, [&] { return ComputeEmbedding(a.task, a.signature); },
          &hit);
      a.result.embed_cache_hit = hit;
      a.task_row = Reshape(embed, {1, f2});
    }
    Rng rng(options_.search.seed ^ a.signature);
    a.pool = space_->SampleDistinct(options_.search.ranking_pool, &rng);
    const int n = static_cast<int>(a.pool.size());
    a.enc.reserve(a.pool.size());
    a.sigs.reserve(a.pool.size());
    for (const ArchHyper& ah : a.pool) {
      a.enc.push_back(CachedEncoding(ah));
      a.sigs.push_back(ah.Signature());
    }
    for (int c = 0; c < n; ++c) {
      for (int o = 0; o < options_.search.opponents_per_candidate; ++o) {
        int j = rng.Int(0, n - 1);
        if (j == c) j = (j + 1) % n;
        a.pairs.push_back({c, j});
      }
    }
    a.top_k = std::min(req.top_k, options_.search.population);
  }

  // Round 1 — sparse tournament, all requests' duels packed and deduped.
  {
    DuelSet duels;
    for (Active& a : acts) {
      if (!a.ok()) continue;
      duel_rows_.fetch_add(a.pairs.size(), std::memory_order_relaxed);
      a.pair_slots.reserve(a.pairs.size());
      for (const auto& p : a.pairs) {
        a.pair_slots.push_back(duels.Add(
            &a.enc[static_cast<size_t>(p.first)],
            &a.enc[static_cast<size_t>(p.second)],
            a.sigs[static_cast<size_t>(p.first)],
            a.sigs[static_cast<size_t>(p.second)], a.signature, a.task_row));
      }
    }
    EvaluateDuels(&duels);
    for (Active& a : acts) {
      if (!a.ok()) continue;
      std::vector<int> wins(a.pool.size(), 0);
      for (size_t p = 0; p < a.pairs.size(); ++p) {
        // Credit both sides, as SparseWinCounts does.
        if (duels.outcomes[static_cast<size_t>(a.pair_slots[p])] != 0) {
          ++wins[static_cast<size_t>(a.pairs[p].first)];
        } else {
          ++wins[static_cast<size_t>(a.pairs[p].second)];
        }
      }
      for (int idx : TopIndices(wins, options_.search.population)) {
        a.population.push_back(a.pool[static_cast<size_t>(idx)]);
        a.pop_enc.push_back(a.enc[static_cast<size_t>(idx)]);
        a.pop_sigs.push_back(a.sigs[static_cast<size_t>(idx)]);
      }
      a.pairs.clear();
      a.pair_slots.clear();
    }
  }

  // Round 2 — full round-robin within each request's population, again
  // packed across the micro-batch.
  {
    DuelSet duels;
    for (Active& a : acts) {
      if (!a.ok()) continue;
      const int n = static_cast<int>(a.population.size());
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (i != j) a.pairs.push_back({i, j});
        }
      }
      duel_rows_.fetch_add(a.pairs.size(), std::memory_order_relaxed);
      a.pair_slots.reserve(a.pairs.size());
      for (const auto& p : a.pairs) {
        a.pair_slots.push_back(
            duels.Add(&a.pop_enc[static_cast<size_t>(p.first)],
                      &a.pop_enc[static_cast<size_t>(p.second)],
                      a.pop_sigs[static_cast<size_t>(p.first)],
                      a.pop_sigs[static_cast<size_t>(p.second)], a.signature,
                      a.task_row));
      }
    }
    EvaluateDuels(&duels);
    for (Active& a : acts) {
      if (!a.ok()) continue;
      std::vector<int> final_wins(a.population.size(), 0);
      for (size_t p = 0; p < a.pairs.size(); ++p) {
        // Credit the first side only, as RoundRobinWins does.
        if (duels.outcomes[static_cast<size_t>(a.pair_slots[p])] != 0) {
          ++final_wins[static_cast<size_t>(a.pairs[p].first)];
        }
      }
      for (int idx : TopIndices(final_wins, a.top_k)) {
        a.top.push_back(a.population[static_cast<size_t>(idx)]);
        a.result.ranked.push_back(
            a.pop_sigs[static_cast<size_t>(idx)]);
      }
    }
  }

  // Forecasts (trained on demand, cached per (window, arch) signature).
  // Deliberately OUTSIDE any NoGradScope: training needs the tape.
  for (Active& a : acts) {
    if (!a.ok() || !a.pending->request.want_forecast) continue;
    bool model_hit = false;
    StatusOr<std::vector<float>> fc =
        Forecast(a.task, a.signature, a.top.front(), ctx, &model_hit);
    if (!fc.ok()) {
      a.status = fc.status();
      continue;
    }
    a.result.forecast = std::move(fc).value();
    a.result.model_cache_hit = model_hit;
  }

  // Fulfill every promise.
  const double service_us = MicrosSince(t0);
  for (Active& a : acts) {
    if (!a.ok()) {
      a.pending->promise.set_value(a.status);
      continue;
    }
    a.result.queue_us =
        std::chrono::duration<double, std::micro>(t0 - a.pending->enqueued)
            .count();
    a.result.service_us = service_us;
    a.result.batch_size = static_cast<int>(batch.size());
    a.pending->promise.set_value(std::move(a.result));
  }
}

StatusOr<RecommendationService::ModelEntryPtr>
RecommendationService::TrainedModel(const ForecastTask& task,
                                    uint64_t signature, const ArchHyper& best,
                                    const ExecContext& ctx,
                                    bool* model_hit) const {
  const std::string key = HexSig(signature) + "/" + best.Signature();
  ModelEntryPtr entry;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(model_mu_);
    auto it = model_by_key_.find(key);
    if (it != model_by_key_.end()) {
      entry = *it->second;
      if (!entry->ready) {
        // Another worker is training this exact model: wait, don't duplicate
        // GPU-hours... well, CPU-minutes. The entry stays valid even if it
        // is evicted while we wait (shared_ptr).
        model_ready_.wait(lock, [&] { return entry->ready; });
      } else {
        model_lru_.splice(model_lru_.begin(), model_lru_, it->second);
      }
      *model_hit = true;
    } else {
      entry = std::make_shared<ModelEntry>();
      entry->key = key;
      model_lru_.push_front(entry);
      model_by_key_[key] = model_lru_.begin();
      owner = true;
      *model_hit = false;
    }
  }
  if (owner) {
    // Train OUTSIDE the lock; seeds derive from content so the model is the
    // same whichever worker trains it, cold or warm.
    const uint64_t seed = options_.forecast_train.seed ^ signature;
    ForecasterSpec spec = MakeForecasterSpec(task);
    TrainOptions topts = options_.forecast_train;
    topts.seed = seed;
    ModelTrainer trainer(task, topts, ctx);
    std::unique_ptr<SearchedModel> model =
        BuildSearchedModel(best, spec, options_.scale, seed);
    model->SetTraining(true);
    TrainReport report = trainer.Train(model.get());
    model->SetTraining(false);
    models_trained_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(model_mu_);
      entry->model = std::shared_ptr<const Forecaster>(std::move(model));
      entry->mean = trainer.provider().mean();
      entry->std = trainer.provider().std();
      entry->train_status = report.status;
      entry->ready = true;
      // Enforce capacity now that the entry is publishable; in-flight
      // entries are pinned, ready ones evict least-recently-used first.
      while (model_lru_.size() > options_.model_cache_entries) {
        bool evicted = false;
        for (auto lit = model_lru_.end(); lit != model_lru_.begin();) {
          --lit;
          if (!(*lit)->ready) continue;
          model_by_key_.erase((*lit)->key);
          model_lru_.erase(lit);
          evicted = true;
          break;
        }
        if (!evicted) break;
      }
    }
    model_ready_.notify_all();
  }
  if (!entry->train_status.ok()) return entry->train_status;
  return entry;
}

StatusOr<std::vector<float>> RecommendationService::Forecast(
    const ForecastTask& task, uint64_t signature, const ArchHyper& best,
    const ExecContext& ctx, bool* model_hit) const {
  StatusOr<ModelEntryPtr> trained =
      TrainedModel(task, signature, best, ctx, model_hit);
  if (!trained.ok()) return trained.status();
  const ModelEntryPtr& entry = trained.value();

  // Inference: z-score the window's last p steps with the scaler the model
  // was trained under, predict, inverse-transform.
  NoGradScope no_grad;
  const CtsDataset& data = *task.data;
  const int n = data.num_series();
  const int p = task.p;
  const int t0 = data.num_steps() - p;
  std::vector<float> x(static_cast<size_t>(n) * static_cast<size_t>(p));
  const float inv_std = entry->std != 0.0f ? 1.0f / entry->std : 1.0f;
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < p; ++t) {
      x[static_cast<size_t>(s) * p + t] =
          (data.value(s, t0 + t, 0) - entry->mean) * inv_std;
    }
  }
  Tensor xt = Tensor::FromVector({1, n, p, 1}, std::move(x));
  Tensor y = entry->model->Forward(xt);  // [1, N, Q_out, 1], scaled.
  const auto& yd = y.data();
  std::vector<float> out(yd.size());
  for (size_t i = 0; i < yd.size(); ++i) {
    out[i] = yd[i] * entry->std + entry->mean;
  }
  forecasts_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

StatusOr<stream::StreamModel> RecommendationService::ResearchModel(
    const CtsDatasetPtr& recent, int p, int q, bool single_step) {
  // Zero-shot rank through the normal request queue: a re-search is just
  // another tenant asking "what fits this window?", and shares the embed /
  // duel / model caches with everyone else.
  RecommendRequest r;
  r.num_series = recent->num_series();
  r.num_steps = recent->num_steps();
  r.window = recent->values();  // [n][t][1] slab == series-major window.
  r.adjacency = recent->adjacency();
  r.p = p;
  r.q = q;
  r.single_step = single_step;
  r.top_k = 1;
  StatusOr<Recommendation> rec = Recommend(r);
  if (!rec.ok()) return rec.status();
  StatusOr<ArchHyper> best = ParseArchHyper(rec.value().ranked.front());
  if (!best.ok()) return best.status();

  // Train (or fetch) the winner on the recent window itself — `recent`
  // keeps its missing mask, so the scaler fit skips imputed points. A local
  // 1-lane pool makes the result independent of the calling thread (the
  // opener's or a background researcher's).
  ForecastTask task;
  task.data = recent;
  task.p = p;
  task.q = q;
  task.single_step = single_step;
  ThreadPool local_pool(1);
  ExecContext ctx;
  ctx.pool = &local_pool;
  ctx.seed = options_.search.seed;
  ctx.config = &config_;
  ExecScope scope(ctx);
  bool model_hit = false;
  StatusOr<ModelEntryPtr> entry = TrainedModel(
      task, rec.value().task_signature, best.value(), ctx, &model_hit);
  if (!entry.ok()) return entry.status();

  stream::StreamModel m;
  m.model = entry.value()->model;
  m.mean = entry.value()->mean;
  m.std = entry.value()->std;
  m.arch = rec.value().ranked.front();
  return m;
}

StatusOr<uint64_t> RecommendationService::StreamOpen(
    const RecommendRequest& request) {
  return StreamOpen(request, stream::StreamOptions::FromConfig(config_));
}

StatusOr<uint64_t> RecommendationService::StreamOpen(
    const RecommendRequest& request, const stream::StreamOptions& knobs) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!started_ || stopping_) {
      return Status::Error("StreamOpen needs a started service");
    }
  }
  RecommendRequest r = request;
  r.want_forecast = false;
  r.top_k = 1;
  const Status valid = Validate(r);
  if (!valid.ok()) return valid;
  if (r.num_steps - (r.p + r.q) + 1 < 20) {
    return Status::Error(
        "stream seed window too short: training the initial model needs "
        "num_steps >= p + q + 19");
  }
  const uint64_t signature =
      WindowSignature(r.window.data(), r.num_series, r.num_steps, r.p, r.q,
                      r.single_step);
  ForecastTask task = MakeTask(r, signature);
  StatusOr<stream::StreamModel> initial =
      ResearchModel(task.data, r.p, r.q, r.single_step);
  if (!initial.ok()) return initial.status();

  stream::StreamOptions so = knobs;
  so.num_series = r.num_series;
  so.p = r.p;
  so.adjacency = task.data->adjacency();
  // The tenant's seed window length defines the re-search window: every
  // re-search trains on the same span the initial model saw.
  so.history = r.num_steps;
  so.seed = options_.search.seed ^ signature;

  auto session = std::make_shared<StreamSession>();
  const int p = r.p;
  const int q = r.q;
  const bool single_step = r.single_step;
  stream::Researcher researcher =
      [this, p, q, single_step](const CtsDatasetPtr& recent,
                                uint64_t) -> StatusOr<stream::StreamModel> {
    // The content-derived seed the engine offers is subsumed by the window
    // signature Recommend derives from the same bytes.
    return ResearchModel(recent, p, q, single_step);
  };
  session->engine = std::make_unique<stream::StreamEngine>(
      std::move(so), std::move(initial).value(), std::move(researcher));

  // Replay the seed window through the engine: the ring window is full and
  // the detector mid-warm-up (on the very data the model was trained on) by
  // the time the tenant's first live tick arrives.
  {
    std::lock_guard<std::mutex> push(session->mu);
    std::vector<float> tick(static_cast<size_t>(r.num_series));
    std::vector<uint8_t> miss(static_cast<size_t>(r.num_series));
    const CtsDataset& data = *task.data;
    for (int t = 0; t < r.num_steps; ++t) {
      bool any_missing = false;
      for (int n = 0; n < r.num_series; ++n) {
        tick[static_cast<size_t>(n)] = data.value(n, t, 0);
        miss[static_cast<size_t>(n)] = data.is_missing(n, t, 0) ? 1 : 0;
        any_missing = any_missing || miss[static_cast<size_t>(n)] != 0;
      }
      session->engine->Push(tick.data(),
                            any_missing ? miss.data() : nullptr);
    }
    std::lock_guard<std::mutex> sl(session->stats_mu);
    session->snapshot = session->engine->stats();
  }

  std::lock_guard<std::mutex> lock(stream_mu_);
  const uint64_t id = next_stream_id_++;
  ++streams_opened_;
  streams_.emplace(id, std::move(session));
  return id;
}

StatusOr<stream::TickResult> RecommendationService::StreamPush(
    uint64_t id, const std::vector<float>& values,
    const std::vector<uint8_t>& missing) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    auto it = streams_.find(id);
    if (it == streams_.end()) {
      return Status::Error("unknown stream session");
    }
    session = it->second;
  }
  const size_t n =
      static_cast<size_t>(session->engine->options().num_series);
  if (values.size() != n) {
    return Status::Error("tick must carry num_series values");
  }
  if (!missing.empty() && missing.size() != n) {
    return Status::Error("missing mask must be empty or num_series long");
  }
  std::lock_guard<std::mutex> push(session->mu);
  stream::TickResult result = session->engine->Push(
      values.data(), missing.empty() ? nullptr : missing.data());
  {
    std::lock_guard<std::mutex> sl(session->stats_mu);
    session->snapshot = session->engine->stats();
  }
  return result;
}

StatusOr<stream::StreamEngineStats> RecommendationService::StreamStats(
    uint64_t id) const {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    auto it = streams_.find(id);
    if (it == streams_.end()) {
      return Status::Error("unknown stream session");
    }
    session = it->second;
  }
  std::lock_guard<std::mutex> sl(session->stats_mu);
  return session->snapshot;
}

Status RecommendationService::StreamClose(uint64_t id) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    auto it = streams_.find(id);
    if (it == streams_.end()) {
      return Status::Error("unknown stream session");
    }
    session = std::move(it->second);
    streams_.erase(it);
  }
  stream::StreamEngineStats final_stats;
  {
    std::lock_guard<std::mutex> push(session->mu);
    final_stats = session->engine->stats();
    session->engine.reset();  // Waits out any in-flight re-search.
  }
  std::lock_guard<std::mutex> lock(stream_mu_);
  closed_streams_.ticks += final_stats.ticks;
  closed_streams_.drifts += final_stats.drifts;
  closed_streams_.swaps += final_stats.swaps;
  closed_streams_.research_failures += final_stats.research_failures;
  closed_streams_.swap_stalls += final_stats.swap_stalls;
  return Status::Ok();
}

void RecommendationService::CloseAllStreams() {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    ids.reserve(streams_.size());
    for (const auto& kv : streams_) ids.push_back(kv.first);
  }
  for (uint64_t id : ids) StreamClose(id);
}

}  // namespace serve
}  // namespace autocts
