#ifndef REPRO_SERVE_SERVICE_H_
#define REPRO_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/runtime_config.h"
#include "common/runtime_stats.h"
#include "common/scale_config.h"
#include "common/status.h"
#include "comparator/comparator.h"
#include "comparator/quant.h"
#include "embedding/ts2vec.h"
#include "model/trainer.h"
#include "search/evolutionary.h"
#include "serve/embed_cache.h"
#include "stream/stream.h"

namespace autocts {
namespace serve {

/// Knobs of the long-lived recommendation server (see DESIGN.md "Serving
/// layer"). Every knob has an AUTOCTS_SERVE_* environment form parsed by
/// RuntimeConfig::FromEnv and a --flag on `autocts_cli serve`.
struct ServeOptions {
  /// Worker threads draining the request queue. Each worker owns its
  /// thread-local captured StepPlans (plans replay only on their capture
  /// thread) and runs tensor kernels inline — worker count, not kernel
  /// fan-out, is the serving concurrency axis.
  int workers = 2;
  /// Admission policy: a worker coalesces up to `max_batch` queued requests
  /// into one micro-batch, waiting at most `max_delay_us` after the first
  /// request for stragglers. max_batch=1 (or max_delay_us=0 under load)
  /// degenerates to one-request-at-a-time — the bench baseline.
  int max_batch = 8;
  int max_delay_us = 200;
  /// Bounded request queue; TrySubmit rejects when full (open-loop
  /// overload), Submit blocks (closed-loop clients).
  int queue_capacity = 256;
  /// Resident task embeddings (LRU, keyed by window signature).
  size_t embed_cache_entries = 64;
  /// Resident trained forecast models (LRU, keyed by task+arch signature).
  size_t model_cache_entries = 16;
  /// Zero-shot ranking knobs. Serving runs the rank-only mode — sparse
  /// tournament over `search.ranking_pool` candidates, then one final
  /// round-robin among the top `search.population` — i.e. SearchTopK with
  /// generations pinned to 0. Responses are identical to
  /// EvolutionarySearcher::SearchTopK at those options.
  SearchOptions search;
  /// Windows drawn per request for the preliminary task embedding.
  int windows_per_task = 8;
  /// Training budget for on-demand forecast models (want_forecast). Small
  /// by design: the trained model is cached per (window, arch) signature.
  TrainOptions forecast_train;
  /// Model-geometry scaling for forecast models.
  ScaleConfig scale;
  /// Comparator inference precision for this service (default: the process
  /// AUTOCTS_COMPARATOR_PRECISION). bf16/int8 take the off-tape quantized
  /// path; responses stay deterministic per precision.
  ComparatorPrecision precision = GlobalRuntimeConfig().comparator_precision;

  /// Serving defaults scaled to the preset (small ranking pool: the
  /// "seconds, not minutes" zero-shot promise).
  static ServeOptions ForScale(const ScaleConfig& scale);
};

/// One "here is my dataset window -> recommend an arch-hyper (+forecast)"
/// query. The window is a dense [num_series, num_steps] slab (feature dim 1,
/// series-major like CtsDataset). `adjacency` is optional ([N*N], row-major);
/// identity is assumed when empty — the comparator never reads it, only
/// forecast models do.
struct RecommendRequest {
  std::vector<float> window;
  int num_series = 0;
  int num_steps = 0;
  std::vector<float> adjacency;
  int p = 12;
  int q = 12;
  bool single_step = false;
  /// Ranked arch-hypers to return (clamped to the serving population).
  int top_k = 1;
  /// Also train (cold) / fetch (warm) a forecast model for the best
  /// arch-hyper and return its prediction for the q steps after the window.
  bool want_forecast = false;
};

/// The served answer. Bit-identical for a given (request bytes,
/// ServeOptions knobs, comparator weights) regardless of batch composition,
/// worker count, and cache state — see the determinism argument in
/// DESIGN.md "Serving layer".
struct Recommendation {
  /// Arch-hyper signatures, best-ranked first (parseable by ParseArchHyper).
  std::vector<std::string> ranked;
  /// [num_series * horizon] forecast (horizon = q, or 1 when single_step);
  /// empty unless want_forecast.
  std::vector<float> forecast;
  /// FNV-1a content signature of the request's window + geometry.
  uint64_t task_signature = 0;
  bool embed_cache_hit = false;
  bool model_cache_hit = false;
  /// Queue wait and in-worker service time of this request.
  double queue_us = 0.0;
  double service_us = 0.0;
  /// Requests coalesced into the micro-batch that served this one.
  int batch_size = 0;
};

/// The long-lived, in-process zero-shot serving core.
///
/// Keeps the pretrained T-AHC, the task-embedding encoder, and every
/// worker's captured inference StepPlans resident across requests, and
/// answers concurrent recommendation queries through a bounded MPMC queue
/// with micro-batching admission: workers coalesce up to max_batch requests
/// and pack their comparator duels (deduplicated by content signature) into
/// shared CompareLogits replays, each row carrying its own task-embedding —
/// the batching seam that amortizes fixed per-replay cost across tenants.
///
/// Thread safety: Submit/TrySubmit/Recommend may be called from any number
/// of threads. Shutdown drains queued requests before returning; submissions
/// after Shutdown began are rejected with an error.
class RecommendationService {
 public:
  /// `comparator` and `encoder` must be pretrained and must outlive the
  /// service; the service puts the comparator into eval mode. `space` is
  /// the joint search space candidates are sampled from.
  RecommendationService(Comparator* comparator, const TaskEncoder* encoder,
                        const JointSearchSpace* space,
                        const ServeOptions& options);
  ~RecommendationService();

  RecommendationService(const RecommendationService&) = delete;
  RecommendationService& operator=(const RecommendationService&) = delete;

  /// Spawns the worker threads. Errors on invalid options.
  Status Start();

  /// Stops admission, drains every queued request, joins the workers.
  /// Idempotent.
  void Shutdown();

  /// Enqueues a request; blocks while the queue is full. The future errors
  /// (never dangles) if the service shuts down first.
  std::future<StatusOr<Recommendation>> Submit(RecommendRequest request);

  /// Non-blocking admission: kUnavailable-style error when the queue is
  /// full or the service is stopping (the open-loop overload policy).
  Status TrySubmit(RecommendRequest request,
                   std::future<StatusOr<Recommendation>>* result);

  /// Submit + wait. The blocking convenience used by the HTTP front end.
  StatusOr<Recommendation> Recommend(RecommendRequest request);

  /// The deterministic task embedding served for `request`'s window
  /// (content-seeded; cache state cannot change it). Exposed so equivalence
  /// tests can reproduce a serve response with EvolutionarySearcher.
  Tensor TaskEmbeddingFor(const RecommendRequest& request) const;

  /// ---- Streaming sessions (DESIGN.md "Streaming & drift-triggered
  /// re-search") -------------------------------------------------------

  /// Opens a per-tenant streaming session: zero-shot ranks an arch-hyper on
  /// the request window, trains the initial model on it (cached like any
  /// forecast model), replays the window through a fresh StreamEngine so
  /// forecasting and detector warm-up start hot, and returns the session
  /// id. Drift-triggered re-search re-enters this service's own rank+train
  /// pipeline on a background thread. The service must be Start()ed; the
  /// window must afford training (num_steps >= p + q + 19). Detector and
  /// recovery knobs come from the AUTOCTS_STREAM_* environment.
  StatusOr<uint64_t> StreamOpen(const RecommendRequest& request);
  /// Same, with explicit detector/recovery knobs (num_series, p, adjacency,
  /// history, and seed are still derived from the request). The CLI's
  /// --no-recovery / --ph-* flags and the degraded-baseline bench arm use
  /// this; the one-argument form reads the environment snapshot.
  StatusOr<uint64_t> StreamOpen(const RecommendRequest& request,
                                const stream::StreamOptions& knobs);

  /// Advances session `id` by one tick: `values[num_series]`, `missing`
  /// empty (fully observed) or per-series non-zero = did-not-report.
  /// Pushes on one session serialize; distinct sessions run concurrently.
  StatusOr<stream::TickResult> StreamPush(
      uint64_t id, const std::vector<float>& values,
      const std::vector<uint8_t>& missing = {});

  /// Counters of a live session (post-last-Push snapshot; never blocks on
  /// an in-flight Push).
  StatusOr<stream::StreamEngineStats> StreamStats(uint64_t id) const;

  /// Closes a session: waits out any in-flight Push and background
  /// re-search, folds the engine's counters into the service totals.
  Status StreamClose(uint64_t id);

  ServeStats stats() const;
  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    RecommendRequest request;
    std::promise<StatusOr<Recommendation>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };
  using PendingPtr = std::unique_ptr<Pending>;

  /// A cached forecast model entry (trained once per key, then resident).
  struct ModelEntry {
    std::string key;
    std::shared_ptr<const Forecaster> model;
    float mean = 0.0f;  ///< Scaler the model was trained with.
    float std = 1.0f;
    Status train_status;
    bool ready = false;
    uint64_t uses = 0;
  };
  using ModelEntryPtr = std::shared_ptr<ModelEntry>;

  /// In-worker state of one request while its micro-batch is processed.
  struct Active;
  /// One packed set of deduplicated comparator duels (declared in .cc).
  struct DuelSet;

  void WorkerLoop(int worker_index);
  /// Pops one micro-batch (admission policy); empty means "stopping and
  /// drained" and the worker should exit.
  std::vector<PendingPtr> PopBatch();
  /// Serves one micro-batch end to end and fulfills every promise.
  void ProcessBatch(std::vector<PendingPtr> batch, const ExecContext& ctx);

  Status Validate(const RecommendRequest& request) const;
  /// Builds the ForecastTask a request describes (dataset named by its
  /// signature so downstream seeds are content-derived).
  ForecastTask MakeTask(const RecommendRequest& request,
                        uint64_t signature) const;
  Tensor ComputeEmbedding(const ForecastTask& task, uint64_t signature) const;
  /// Evaluates every queued duel row (deduplicated) and scatters outcomes.
  void EvaluateDuels(DuelSet* duels) const;
  ArchHyperEncoding CachedEncoding(const ArchHyper& ah) const;
  const QuantizedComparator* Quantized(ComparatorPrecision precision) const;
  /// Trains (or fetches) the forecast model for (task, arch) and predicts
  /// the window's next horizon. Sets `model_hit`.
  StatusOr<std::vector<float>> Forecast(const ForecastTask& task,
                                        uint64_t signature,
                                        const ArchHyper& best,
                                        const ExecContext& ctx,
                                        bool* model_hit) const;
  /// The cache/train half of Forecast (also the streaming model source):
  /// returns the ready entry for (task, arch), training it here when cold.
  StatusOr<ModelEntryPtr> TrainedModel(const ForecastTask& task,
                                       uint64_t signature,
                                       const ArchHyper& best,
                                       const ExecContext& ctx,
                                       bool* model_hit) const;

  /// One per-tenant streaming session. `mu` serializes Push/Close (an
  /// engine tick is single-threaded by contract); `stats_mu` guards only
  /// the post-Push counter snapshot so stats() never waits out a tick.
  struct StreamSession {
    std::mutex mu;
    std::unique_ptr<stream::StreamEngine> engine;
    mutable std::mutex stats_mu;
    stream::StreamEngineStats snapshot;
  };

  /// The streaming Researcher: zero-shot ranks on `recent` via this
  /// service's own Recommend queue, then trains the winner (model cache
  /// shared with want_forecast requests). Used both to seed StreamOpen and
  /// as the drift-recovery hook.
  StatusOr<stream::StreamModel> ResearchModel(const CtsDatasetPtr& recent,
                                              int p, int q, bool single_step);
  /// Closes every live session (Shutdown runs this while workers are still
  /// serving, so in-flight re-searches can finish their Recommend calls).
  void CloseAllStreams();

  Comparator* comparator_;
  const TaskEncoder* encoder_;
  const JointSearchSpace* space_;
  ServeOptions options_;
  RuntimeConfig config_;  ///< Snapshot the workers' ExecContexts carry.

  mutable TaskEmbedCache embed_cache_;

  // Request queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<PendingPtr> queue_;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<std::thread> workers_;

  // Encoding memo (signature -> encoding), shared across workers.
  mutable std::mutex encode_mu_;
  mutable std::unordered_map<std::string, ArchHyperEncoding> encode_cache_;

  // Quantized comparator snapshot, built lazily per precision.
  mutable std::mutex quant_mu_;
  mutable std::unique_ptr<QuantizedComparator> quant_;

  // Forecast model cache (LRU by key, in-flight dedup like the embed cache).
  mutable std::mutex model_mu_;
  mutable std::condition_variable model_ready_;
  mutable std::list<ModelEntryPtr> model_lru_;
  mutable std::unordered_map<std::string, std::list<ModelEntryPtr>::iterator>
      model_by_key_;

  // Counters (relaxed atomics; folded into ServeStats snapshots).
  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> rejected_{0};
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> batched_requests_{0};
  mutable std::atomic<uint64_t> queue_highwater_{0};
  mutable std::atomic<uint64_t> duel_rows_{0};
  mutable std::atomic<uint64_t> duel_rows_evaluated_{0};
  mutable std::atomic<uint64_t> models_trained_{0};
  mutable std::atomic<uint64_t> forecasts_{0};

  // Streaming sessions (per-tenant engines) + counters folded from closed
  // sessions into ServeStats.
  mutable std::mutex stream_mu_;
  uint64_t next_stream_id_ = 1;
  uint64_t streams_opened_ = 0;
  std::unordered_map<uint64_t, std::shared_ptr<StreamSession>> streams_;
  stream::StreamEngineStats closed_streams_;
};

}  // namespace serve
}  // namespace autocts

#endif  // REPRO_SERVE_SERVICE_H_
