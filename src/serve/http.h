#ifndef REPRO_SERVE_HTTP_H_
#define REPRO_SERVE_HTTP_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/service.h"

namespace autocts {
namespace serve {

/// Knobs of the embedded HTTP front end.
struct HttpOptions {
  /// TCP port to bind; 0 picks an ephemeral port (tests) — read the actual
  /// port from HttpServer::port() after Start().
  int port = 8080;
  int backlog = 16;
  /// Largest accepted request body (the CSV window).
  size_t max_body_bytes = size_t{1} << 24;
};

/// Minimal HTTP/1.1 front end over the in-process RecommendationService —
/// plain POSIX sockets, no dependencies, one connection-handler thread per
/// accepted client (micro-batching needs concurrent in-flight requests to
/// coalesce, so handlers block on Recommend() in parallel).
///
/// Endpoints:
///   POST /recommend?p=12&q=12&single=0&topk=1&forecast=0
///        Body: CSV window — one line per series, comma-separated values;
///        num_series = line count, num_steps = values per line. Optional
///        query params mirror RecommendRequest. JSON response.
///   GET  /stats    RuntimeStats::Snapshot().ToJson() (includes "serve").
///   GET  /config   The process RuntimeConfig as JSON.
///   GET  /healthz  "ok".
class HttpServer {
 public:
  /// `service` must be Start()ed and must outlive the server.
  HttpServer(RecommendationService* service, const HttpOptions& options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds + listens + spawns the accept thread.
  Status Start();

  /// Stops accepting, joins every handler. Idempotent.
  void Stop();

  /// The bound port (equals options.port unless it was 0 = ephemeral).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  RecommendationService* service_;
  HttpOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex handlers_mu_;
  std::vector<std::thread> handlers_;
};

/// Parses a CSV window body into `request` (window/num_series/num_steps).
/// Exposed for tests; query parameters are handled by the server.
Status ParseCsvWindow(const std::string& body, RecommendRequest* request);

/// Serializes a served Recommendation as the /recommend JSON response body.
std::string RecommendationToJson(const Recommendation& rec);

}  // namespace serve
}  // namespace autocts

#endif  // REPRO_SERVE_HTTP_H_
