#include "serve/embed_cache.h"

#include <utility>

#include "common/check.h"

namespace autocts {
namespace serve {

uint64_t WindowSignature(const float* values, int num_series, int num_steps,
                         int p, int q, bool single_step) {
  CHECK(values != nullptr);
  CHECK_GT(num_series, 0);
  CHECK_GT(num_steps, 0);
  uint64_t h = Fnv1a(values, static_cast<size_t>(num_series) *
                                 static_cast<size_t>(num_steps) *
                                 sizeof(float));
  const int32_t geom[4] = {num_series, num_steps, p, q};
  h = Fnv1a(geom, sizeof(geom), h);
  return Fnv1a(single_step ? "S" : "M", 1, h);
}

TaskEmbedCache::TaskEmbedCache(size_t capacity) : capacity_(capacity) {}

Tensor TaskEmbedCache::GetOrCompute(uint64_t signature,
                                    const std::function<Tensor()>& compute,
                                    bool* hit) {
  if (capacity_ == 0) {
    if (hit != nullptr) *hit = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
    }
    return compute();  // Caching disabled: every request computes its own.
  }
  for (;;) {
    EntryPtr entry;
    bool owner = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = by_sig_.find(signature);
      if (it != by_sig_.end()) {
        entry = *it->second;
        if (entry->ready) {
          // Move to the front of the LRU list: this is a plain hit.
          lru_.splice(lru_.begin(), lru_, it->second);
          ++stats_.hits;
          if (hit != nullptr) *hit = true;
          return entry->value;
        }
        // Another caller is computing this key: wait for it, then re-probe
        // (the computation may have failed or been invalidated).
        ready_cv_.wait(lock,
                       [&] { return entry->ready || entry->failed; });
        continue;
      }
      // Miss: insert a not-yet-ready entry so concurrent callers of the
      // same key wait instead of duplicating the computation.
      entry = std::make_shared<Entry>();
      entry->signature = signature;
      entry->generation = generation_;
      lru_.push_front(entry);
      by_sig_[signature] = lru_.begin();
      if (lru_.size() > capacity_) EvictLru();
      ++stats_.misses;
      owner = true;
    }
    CHECK(owner);
    if (hit != nullptr) *hit = false;
    Tensor value;
    try {
      value = compute();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      entry->failed = true;
      auto it = by_sig_.find(signature);
      if (it != by_sig_.end() && *it->second == entry) {
        lru_.erase(it->second);
        by_sig_.erase(it);
      }
      ready_cv_.notify_all();
      throw;
    }
    std::lock_guard<std::mutex> lock(mu_);
    entry->value = value;
    entry->ready = true;
    if (entry->generation != generation_) {
      // The context changed while we computed: the result is valid for the
      // caller (it used the new context's kernels either way — flushes are
      // insurance, see header) but must not linger in the cache, because we
      // cannot prove which configuration it saw.
      auto it = by_sig_.find(signature);
      if (it != by_sig_.end() && *it->second == entry) {
        lru_.erase(it->second);
        by_sig_.erase(it);
        ++stats_.invalidations;
      }
    }
    ready_cv_.notify_all();
    return value;
  }
}

void TaskEmbedCache::EvictLru() {
  // Evict the least-recently-used READY entry; in-flight entries are pinned
  // (their owner still needs to publish). Caller holds mu_.
  for (auto it = lru_.end(); it != lru_.begin();) {
    --it;
    if (!(*it)->ready) continue;
    by_sig_.erase((*it)->signature);
    lru_.erase(it);
    ++stats_.evictions;
    return;
  }
}

void TaskEmbedCache::SetContext(const std::string& context) {
  std::lock_guard<std::mutex> lock(mu_);
  if (context == context_) return;
  context_ = context;
  ++generation_;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it)->ready) {
      by_sig_.erase((*it)->signature);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;  // In-flight: dropped by its owner when it publishes.
    }
  }
}

void TaskEmbedCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it)->ready) {
      by_sig_.erase((*it)->signature);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

TaskEmbedCache::Stats TaskEmbedCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = by_sig_.size();
  return s;
}

}  // namespace serve
}  // namespace autocts
