#ifndef REPRO_SERVE_EMBED_CACHE_H_
#define REPRO_SERVE_EMBED_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tensor/tensor.h"

namespace autocts {
namespace serve {

/// FNV-1a over arbitrary bytes — the signature idiom the pipeline checkpoint
/// uses for sample identities, reused here for dataset windows.
inline uint64_t Fnv1a(const void* bytes, size_t n,
                      uint64_t h = 1469598103934665603ull) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Content signature of one recommendation request: the raw window values
/// plus every field that changes what task the window describes. Two
/// requests with bit-identical windows and geometry get the same signature,
/// so embeddings (and downstream recommendations) are shareable between
/// them regardless of which tenant sent which.
uint64_t WindowSignature(const float* values, int num_series, int num_steps,
                         int p, int q, bool single_step);

/// LRU cache of task embeddings keyed by window signature, shared by every
/// serving worker.
///
/// Concurrency contract: GetOrCompute runs `compute` OUTSIDE the cache lock
/// and guarantees at most one computation per key — concurrent callers of
/// the same signature block until the first caller's result lands, callers
/// of different signatures compute in parallel. If the computing caller
/// throws, waiting callers are released and one of them retries.
///
/// Staleness contract: entries are valid only for the (kernel backend,
/// comparator precision) context they were computed under. SetContext
/// flushes everything when the context string changes, so a
/// kernels::SetActiveBackend or comparator_precision swap can never serve
/// an embedding computed under the previous configuration. (Backends are
/// bit-identical by construction, so this is insurance, not correctness —
/// but insurance the serving layer should not reason its way out of.)
class TaskEmbedCache {
 public:
  /// `capacity` = maximum resident embeddings; 0 disables caching (every
  /// lookup is a miss and nothing is stored).
  explicit TaskEmbedCache(size_t capacity);

  /// The cached embedding for `signature`, computing and inserting it via
  /// `compute` on a miss. `hit` (optional) reports whether the value came
  /// from the cache.
  Tensor GetOrCompute(uint64_t signature,
                      const std::function<Tensor()>& compute,
                      bool* hit = nullptr);

  /// Flushes all entries when `context` differs from the last call (see the
  /// staleness contract above). The initial context is "".
  void SetContext(const std::string& context);

  /// Drops every entry (in-flight computations finish and are dropped too).
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;     ///< Entries dropped by LRU capacity.
    uint64_t invalidations = 0; ///< Entries dropped by context flushes.
    size_t entries = 0;         ///< Resident embeddings right now.

    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };
  Stats stats() const;

 private:
  struct Entry {
    uint64_t signature = 0;
    Tensor value;
    bool ready = false;   ///< False while the first caller is computing.
    bool failed = false;  ///< Compute threw; a waiter should retry.
    /// Generation at insert; a context flush bumps the generation so a
    /// computation started under the old context cannot land in the new one.
    uint64_t generation = 0;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// Unlinks `it` from map + LRU list. Caller holds mu_.
  void EvictLru();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::string context_;
  uint64_t generation_ = 0;
  /// Most-recently-used first.
  std::list<EntryPtr> lru_;
  std::unordered_map<uint64_t, std::list<EntryPtr>::iterator> by_sig_;
  Stats stats_;
};

}  // namespace serve
}  // namespace autocts

#endif  // REPRO_SERVE_EMBED_CACHE_H_
