#include "baselines/transformers.h"

#include <algorithm>
#include <cmath>

#include "model/searched_model.h"
#include "tensor/fused.h"

namespace autocts {
namespace {

constexpr float kPi = 3.14159265358979f;

int ScaledHidden(int override_value, int fallback, const ScaleConfig& scale) {
  return std::max(4, (override_value > 0 ? override_value : fallback) /
                         scale.hidden_divisor);
}

}  // namespace

Tensor MovingAverageMatrix(int t, int window) {
  CHECK_GE(window, 1);
  std::vector<float> m(static_cast<size_t>(t) * t, 0.0f);
  int half = window / 2;
  for (int i = 0; i < t; ++i) {
    int lo = std::max(0, i - half);
    int hi = std::min(t - 1, i + half);
    float w = 1.0f / static_cast<float>(hi - lo + 1);
    for (int j = lo; j <= hi; ++j) {
      m[static_cast<size_t>(i) * t + j] = w;
    }
  }
  return Tensor::FromVector({t, t}, std::move(m));
}

Tensor FourierBasis(int t, int num_modes) {
  CHECK_GE(num_modes, 1);
  std::vector<float> b(static_cast<size_t>(t) * 2 * num_modes);
  float norm = std::sqrt(2.0f / static_cast<float>(t));
  for (int i = 0; i < t; ++i) {
    for (int k = 0; k < num_modes; ++k) {
      float angle = 2.0f * kPi * static_cast<float>((k + 1) * i) /
                    static_cast<float>(t);
      b[static_cast<size_t>(i) * 2 * num_modes + 2 * k] =
          norm * std::cos(angle);
      b[static_cast<size_t>(i) * 2 * num_modes + 2 * k + 1] =
          norm * std::sin(angle);
    }
  }
  return Tensor::FromVector({t, 2 * num_modes}, std::move(b));
}

// ---------------------------------------------------------------- PDFormer

PdformerModel::PdformerModel(const ForecasterSpec& spec,
                             const ScaleConfig& scale, uint64_t seed,
                             int hidden_override, int output_override)
    : spec_(spec), rng_(seed) {
  hidden_ = ScaledHidden(hidden_override, 32, scale);
  int head_hidden = ScaledHidden(output_override, 64, scale) * 2;
  input_ = std::make_unique<InputEmbed>(spec, hidden_, kMaxModelTime, &rng_);
  AddChild(input_.get());
  for (int l = 0; l < 2; ++l) {
    Layer layer;
    layer.temporal = std::make_unique<MultiHeadAttention>(
        hidden_, hidden_ % 2 == 0 ? 2 : 1, &rng_);
    layer.spatial =
        std::make_unique<MaskedSpatialAttention>(hidden_, spec.adjacency, &rng_);
    layer.norm1 = std::make_unique<LayerNorm>(hidden_);
    layer.norm2 = std::make_unique<LayerNorm>(hidden_);
    layer.ffn = std::make_unique<Mlp>(hidden_, 2 * hidden_, hidden_, &rng_);
    layer.norm3 = std::make_unique<LayerNorm>(hidden_);
    AddChild(layer.temporal.get());
    AddChild(layer.spatial.get());
    AddChild(layer.norm1.get());
    AddChild(layer.norm2.get());
    AddChild(layer.ffn.get());
    AddChild(layer.norm3.get());
    layers_.push_back(std::move(layer));
  }
  head_ = std::make_unique<OutputHead>(spec, hidden_, head_hidden, &rng_);
  AddChild(head_.get());
}

Tensor PdformerModel::Forward(const Tensor& x) const {
  const int b = x.dim(0), n = spec_.num_sensors;
  Tensor h = input_->Forward(x);
  const int t = h.dim(2);
  for (const Layer& layer : layers_) {
    // Temporal attention per sensor.
    Tensor rows = Reshape(h, {b * n, t, hidden_});
    rows = layer.norm1->Forward(rows, layer.temporal->Forward(rows));
    Tensor ht = Reshape(rows, {b, n, t, hidden_});
    // Adjacency-masked spatial attention per time step.
    Tensor cols = FusedTransposeReshape(ht, 1, 2, {b * t, n, hidden_});
    cols = layer.norm2->Forward(cols, layer.spatial->Forward(cols));
    cols = layer.norm3->Forward(cols, layer.ffn->Forward(cols));
    h = FusedReshapeTranspose(cols, {b, t, n, hidden_}, 1, 2);
  }
  return head_->Forward(h);
}

// -------------------------------------------------------------- Autoformer

AutoformerModel::AutoformerModel(const ForecasterSpec& spec,
                                 const ScaleConfig& scale, uint64_t seed,
                                 int hidden_override, int output_override)
    : spec_(spec), rng_(seed) {
  hidden_ = ScaledHidden(hidden_override, 32, scale);
  int head_hidden = ScaledHidden(output_override, 64, scale) * 2;
  input_ = std::make_unique<InputEmbed>(spec, hidden_, kMaxModelTime, &rng_);
  AddChild(input_.get());
  ma_matrix_ = MovingAverageMatrix(input_->pooled_len(), 5);
  seasonal_attn_ = std::make_unique<MultiHeadAttention>(
      hidden_, hidden_ % 2 == 0 ? 2 : 1, &rng_);
  norm_ = std::make_unique<LayerNorm>(hidden_);
  trend_proj_ = std::make_unique<Linear>(hidden_, hidden_, &rng_);
  AddChild(seasonal_attn_.get());
  AddChild(norm_.get());
  AddChild(trend_proj_.get());
  head_ = std::make_unique<OutputHead>(spec, hidden_, head_hidden, &rng_);
  AddChild(head_.get());
}

Tensor AutoformerModel::Forward(const Tensor& x) const {
  const int b = x.dim(0), n = spec_.num_sensors;
  Tensor h = input_->Forward(x);  // [B, N, T', H]
  const int t = h.dim(2);
  // Series decomposition along time: trend = MA(h), seasonal = h - trend.
  Tensor trend = MatMul(ma_matrix_, h);  // [T',T'] x [B,N,T',H]
  Tensor seasonal = Sub(h, trend);
  Tensor rows = Reshape(seasonal, {b * n, t, hidden_});
  rows = norm_->Forward(rows, seasonal_attn_->Forward(rows));
  Tensor seasonal_out = Reshape(rows, {b, n, t, hidden_});
  Tensor trend_out = trend_proj_->Forward(trend);
  return head_->Forward(Add(seasonal_out, trend_out));
}

// --------------------------------------------------------------- FEDformer

FedformerModel::FedformerModel(const ForecasterSpec& spec,
                               const ScaleConfig& scale, uint64_t seed,
                               int hidden_override, int output_override)
    : spec_(spec), rng_(seed) {
  hidden_ = ScaledHidden(hidden_override, 32, scale);
  int head_hidden = ScaledHidden(output_override, 64, scale) * 2;
  input_ = std::make_unique<InputEmbed>(spec, hidden_, kMaxModelTime, &rng_);
  AddChild(input_.get());
  const int t = input_->pooled_len();
  ma_matrix_ = MovingAverageMatrix(t, 5);
  int modes = std::max(1, std::min(t / 2 - 1, 6));
  basis_ = FourierBasis(t, modes);
  freq_mix_ = std::make_unique<Linear>(hidden_, hidden_, &rng_);
  norm_ = std::make_unique<LayerNorm>(hidden_);
  trend_proj_ = std::make_unique<Linear>(hidden_, hidden_, &rng_);
  AddChild(freq_mix_.get());
  AddChild(norm_.get());
  AddChild(trend_proj_.get());
  head_ = std::make_unique<OutputHead>(spec, hidden_, head_hidden, &rng_);
  AddChild(head_.get());
}

Tensor FedformerModel::Forward(const Tensor& x) const {
  Tensor h = input_->Forward(x);  // [B, N, T', H]
  Tensor trend = MatMul(ma_matrix_, h);
  Tensor seasonal = Sub(h, trend);
  // Frequency-enhanced block: project the time axis onto the truncated
  // Fourier basis, mix coefficients, project back.
  Tensor coeffs = MatMul(Transpose(basis_, 0, 1), seasonal);  // [B,N,2K,H]
  Tensor mixed = freq_mix_->Forward(coeffs);
  Tensor recon = MatMul(basis_, mixed);  // [B, N, T', H]
  Tensor seasonal_out = norm_->Forward(seasonal, recon);
  Tensor trend_out = trend_proj_->Forward(trend);
  return head_->Forward(Add(seasonal_out, trend_out));
}

}  // namespace autocts
