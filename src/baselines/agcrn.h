#ifndef REPRO_BASELINES_AGCRN_H_
#define REPRO_BASELINES_AGCRN_H_

#include <memory>

#include "baselines/common.h"
#include "common/scale_config.h"

namespace autocts {

/// Simplified AGCRN [Bai et al. 2020]: a recurrent model whose GRU gates
/// are computed with node-adaptive graph convolutions over a learned
/// adjacency softmax(relu(E·Eᵀ)). Captures the family's inductive bias
/// (recurrent-temporal + adaptive-graph-spatial).
class AgcrnModel : public Forecaster {
 public:
  AgcrnModel(const ForecasterSpec& spec, const ScaleConfig& scale,
             uint64_t seed, int hidden_override = 0, int output_override = 0);

  Tensor Forward(const Tensor& x) const override;
  std::string name() const override { return "AGCRN"; }

 private:
  /// Graph conv used inside the gates: W0·x + W1·(A·x).
  Tensor GraphConv(const Tensor& x, const Tensor& adaptive,
                   const Linear& w0, const Linear& w1) const;

  ForecasterSpec spec_;
  int hidden_;
  mutable Rng rng_;
  std::unique_ptr<InputEmbed> input_;
  Tensor node_emb_;
  // Gate convolutions: (reset|update) and candidate.
  std::unique_ptr<Linear> gates_w0_;
  std::unique_ptr<Linear> gates_w1_;
  std::unique_ptr<Linear> cand_w0_;
  std::unique_ptr<Linear> cand_w1_;
  std::unique_ptr<OutputHead> head_;
};

}  // namespace autocts

#endif  // REPRO_BASELINES_AGCRN_H_
