#ifndef REPRO_BASELINES_TRANSFORMERS_H_
#define REPRO_BASELINES_TRANSFORMERS_H_

#include <memory>
#include <vector>

#include "baselines/common.h"
#include "common/scale_config.h"

namespace autocts {

/// Centered moving-average matrix [T, T] (constant): the Autoformer /
/// FEDformer series-decomposition kernel, applied by matmul on the time
/// axis.
Tensor MovingAverageMatrix(int t, int window);

/// Truncated Fourier basis [T, 2K] (constant): cos/sin columns of the K
/// lowest non-zero frequencies, used by FEDformer's frequency-enhanced
/// block.
Tensor FourierBasis(int t, int num_modes);

/// Simplified PDFormer [Jiang et al. 2023]: stacked layers of temporal
/// self-attention and adjacency-masked spatial attention (the mask stands
/// in for the propagation-delay-aware masking of the original) with FFN +
/// layer-norm residuals.
class PdformerModel : public Forecaster {
 public:
  PdformerModel(const ForecasterSpec& spec, const ScaleConfig& scale,
                uint64_t seed, int hidden_override = 0,
                int output_override = 0);

  Tensor Forward(const Tensor& x) const override;
  std::string name() const override { return "PDFormer"; }

 private:
  struct Layer {
    std::unique_ptr<MultiHeadAttention> temporal;
    std::unique_ptr<MaskedSpatialAttention> spatial;
    std::unique_ptr<LayerNorm> norm1;
    std::unique_ptr<LayerNorm> norm2;
    std::unique_ptr<Mlp> ffn;
    std::unique_ptr<LayerNorm> norm3;
  };

  ForecasterSpec spec_;
  int hidden_;
  mutable Rng rng_;
  std::unique_ptr<InputEmbed> input_;
  std::vector<Layer> layers_;
  std::unique_ptr<OutputHead> head_;
};

/// Simplified Autoformer [Wu et al. 2021]: series decomposition (moving
/// average trend + seasonal residual); attention (standing in for the
/// auto-correlation block) on the seasonal part, linear evolution of the
/// trend part, recombined.
class AutoformerModel : public Forecaster {
 public:
  AutoformerModel(const ForecasterSpec& spec, const ScaleConfig& scale,
                  uint64_t seed, int hidden_override = 0,
                  int output_override = 0);

  Tensor Forward(const Tensor& x) const override;
  std::string name() const override { return "Autoformer"; }

 private:
  ForecasterSpec spec_;
  int hidden_;
  mutable Rng rng_;
  std::unique_ptr<InputEmbed> input_;
  Tensor ma_matrix_;
  std::unique_ptr<MultiHeadAttention> seasonal_attn_;
  std::unique_ptr<LayerNorm> norm_;
  std::unique_ptr<Linear> trend_proj_;
  std::unique_ptr<OutputHead> head_;
};

/// Simplified FEDformer [Zhou et al. 2022]: same decomposition backbone as
/// Autoformer, but the seasonal part is processed in the frequency domain —
/// projected onto a fixed truncated Fourier basis, mixed by a learned
/// linear operator on the coefficients, and projected back.
class FedformerModel : public Forecaster {
 public:
  FedformerModel(const ForecasterSpec& spec, const ScaleConfig& scale,
                 uint64_t seed, int hidden_override = 0,
                 int output_override = 0);

  Tensor Forward(const Tensor& x) const override;
  std::string name() const override { return "FEDformer"; }

 private:
  ForecasterSpec spec_;
  int hidden_;
  mutable Rng rng_;
  std::unique_ptr<InputEmbed> input_;
  Tensor ma_matrix_;
  Tensor basis_;       ///< [T', 2K]
  std::unique_ptr<Linear> freq_mix_;  ///< Learned mixing of coefficients.
  std::unique_ptr<LayerNorm> norm_;
  std::unique_ptr<Linear> trend_proj_;
  std::unique_ptr<OutputHead> head_;
};

}  // namespace autocts

#endif  // REPRO_BASELINES_TRANSFORMERS_H_
