#ifndef REPRO_BASELINES_MTGNN_H_
#define REPRO_BASELINES_MTGNN_H_

#include <memory>
#include <vector>

#include "baselines/common.h"
#include "common/scale_config.h"

namespace autocts {

/// Simplified MTGNN [Wu et al. 2020]: stacked layers of dilated-inception
/// gated temporal convolution followed by mix-hop graph convolution over a
/// learned self-adaptive adjacency, with residual connections. Captures the
/// family's inductive bias (conv-temporal + static-graph-spatial).
class MtgnnModel : public Forecaster {
 public:
  MtgnnModel(const ForecasterSpec& spec, const ScaleConfig& scale,
             uint64_t seed, int hidden_override = 0, int output_override = 0);

  Tensor Forward(const Tensor& x) const override;
  std::string name() const override { return "MTGNN"; }

 private:
  struct Layer {
    std::unique_ptr<CausalConv> filter_a;  // kernel 2
    std::unique_ptr<CausalConv> filter_b;  // kernel 3 (inception)
    std::unique_ptr<CausalConv> gate;
    std::unique_ptr<Linear> hop0;
    std::unique_ptr<Linear> hop1;
    std::unique_ptr<Linear> hop2;
  };

  ForecasterSpec spec_;
  int hidden_;
  mutable Rng rng_;
  std::unique_ptr<InputEmbed> input_;
  std::vector<Layer> layers_;
  Tensor node_emb_;  ///< [N, d] for the self-adaptive adjacency.
  std::unique_ptr<OutputHead> head_;
};

}  // namespace autocts

#endif  // REPRO_BASELINES_MTGNN_H_
