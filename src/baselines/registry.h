#ifndef REPRO_BASELINES_REGISTRY_H_
#define REPRO_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/scale_config.h"
#include "model/forecaster.h"
#include "searchspace/arch_hyper.h"

namespace autocts {

/// Names of all comparison baselines in the paper's Tables 5–8, in column
/// order: three automated frameworks (transferred optimal models) and five
/// manually designed models.
std::vector<std::string> BaselineNames();

/// Fixed arch-hypers representing the optimal models the automated
/// baselines transfer into the zero-shot comparison (paper §4.1.3):
///  - "AutoSTG+": built on METR-LA P-12/Q-12; its space has only DGCN and
///    1-D convolutions, so the arch uses only those operators.
///  - "AutoCTS":  built on PEMS03 P-12/Q-12 (architecture-only search,
///    default hyperparameters).
///  - "AutoCTS+": built on PEMS08 P-48/Q-48 (joint search, tuned
///    hyperparameters).
/// CHECK-fails for other names.
ArchHyper TransferredArchHyper(const std::string& name);

/// Instantiates a baseline by name. `hidden_override` / `output_override`
/// implement the grid search over H and I that the paper grants the
/// baselines at unseen settings (0 = the model family's default).
std::unique_ptr<Forecaster> MakeBaseline(const std::string& name,
                                         const ForecasterSpec& spec,
                                         const ScaleConfig& scale,
                                         uint64_t seed,
                                         int hidden_override = 0,
                                         int output_override = 0);

}  // namespace autocts

#endif  // REPRO_BASELINES_REGISTRY_H_
