#include "baselines/agcrn.h"

#include <algorithm>

#include "model/searched_model.h"
#include "tensor/fused.h"

namespace autocts {

AgcrnModel::AgcrnModel(const ForecasterSpec& spec, const ScaleConfig& scale,
                       uint64_t seed, int hidden_override, int output_override)
    : spec_(spec), rng_(seed) {
  hidden_ = std::max(
      4, (hidden_override > 0 ? hidden_override : 32) / scale.hidden_divisor);
  int head_hidden = std::max(
      8, (output_override > 0 ? output_override : 64) / scale.hidden_divisor);
  input_ = std::make_unique<InputEmbed>(spec, hidden_, kMaxModelTime, &rng_);
  AddChild(input_.get());
  node_emb_ = AddParameter(
      Tensor::Randn({spec.num_sensors, 4}, &rng_, 0.5f, true));
  gates_w0_ = std::make_unique<Linear>(2 * hidden_, 2 * hidden_, &rng_);
  gates_w1_ = std::make_unique<Linear>(2 * hidden_, 2 * hidden_, &rng_, false);
  cand_w0_ = std::make_unique<Linear>(2 * hidden_, hidden_, &rng_);
  cand_w1_ = std::make_unique<Linear>(2 * hidden_, hidden_, &rng_, false);
  AddChild(gates_w0_.get());
  AddChild(gates_w1_.get());
  AddChild(cand_w0_.get());
  AddChild(cand_w1_.get());
  head_ = std::make_unique<OutputHead>(spec, hidden_, head_hidden, &rng_);
  AddChild(head_.get());
}

Tensor AgcrnModel::GraphConv(const Tensor& x, const Tensor& adaptive,
                             const Linear& w0, const Linear& w1) const {
  return Add(w0.Forward(x), w1.Forward(MatMul(adaptive, x)));
}

Tensor AgcrnModel::Forward(const Tensor& x) const {
  const int b = x.dim(0), n = spec_.num_sensors;
  Tensor embedded = input_->Forward(x);  // [B, N, T', H]
  const int t = embedded.dim(2);
  Tensor adaptive =
      FusedReluSoftmax(MatMul(node_emb_, Transpose(node_emb_, 0, 1)));
  Tensor h = Tensor::Zeros({b, n, hidden_});
  for (int step = 0; step < t; ++step) {
    Tensor xt = Reshape(Slice(embedded, 2, step, 1), {b, n, hidden_});
    Tensor cat = Concat({xt, h}, -1);  // [B, N, 2H]
    Tensor gates = Sigmoid(GraphConv(cat, adaptive, *gates_w0_, *gates_w1_));
    Tensor r = Slice(gates, -1, 0, hidden_);
    Tensor z = Slice(gates, -1, hidden_, hidden_);
    Tensor cand_in = Concat({xt, Mul(r, h)}, -1);
    Tensor cand = Tanh(GraphConv(cand_in, adaptive, *cand_w0_, *cand_w1_));
    h = Add(Mul(z, h), Mul(AddScalar(Neg(z), 1.0f), cand));
  }
  return head_->Forward(Reshape(h, {b, n, 1, hidden_}));
}

}  // namespace autocts
