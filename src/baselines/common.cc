#include "baselines/common.h"

#include <algorithm>
#include <cmath>

#include "tensor/fused.h"

namespace autocts {

InputEmbed::InputEmbed(const ForecasterSpec& spec, int hidden, int max_time,
                       Rng* rng)
    : spec_(spec),
      time_pool_((spec.input_len + max_time - 1) / max_time),
      pooled_len_(spec.input_len / std::max(1, (spec.input_len + max_time - 1) /
                                                   max_time)),
      proj_(spec.num_features, hidden, rng) {
  AddChild(&proj_);
  CHECK_GT(pooled_len_, 0);
}

Tensor InputEmbed::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 4);
  const int b = x.dim(0);
  Tensor h = x;
  if (time_pool_ > 1) {
    int keep = pooled_len_ * time_pool_;
    if (keep < spec_.input_len) h = Slice(h, 2, spec_.input_len - keep, keep);
    h = Mean(Reshape(h, {b, spec_.num_sensors, pooled_len_, time_pool_,
                         spec_.num_features}),
             3);
  }
  return proj_.Forward(h);
}

OutputHead::OutputHead(const ForecasterSpec& spec, int hidden, int head_hidden,
                       Rng* rng)
    : spec_(spec),
      hidden_(hidden),
      fc1_(2 * hidden, head_hidden, rng),
      fc2_(head_hidden, spec.output_len * spec.num_features, rng) {
  AddChild(&fc1_);
  AddChild(&fc2_);
}

Tensor OutputHead::Forward(const Tensor& h) const {
  CHECK_EQ(h.ndim(), 4);
  const int b = h.dim(0);
  const int t = h.dim(2);
  Tensor last = Slice(h, 2, t - 1, 1);
  Tensor mean = Mean(h, 2, /*keepdim=*/true);
  Tensor feats =
      Reshape(Concat({last, mean}, 3), {b, spec_.num_sensors, 2 * hidden_});
  Tensor out = fc2_.Forward(fc1_.Forward(feats, FusedAct::kRelu));
  return Reshape(out,
                 {b, spec_.num_sensors, spec_.output_len, spec_.num_features});
}

MaskedSpatialAttention::MaskedSpatialAttention(int dim, const Tensor& adjacency,
                                               Rng* rng)
    : dim_(dim),
      q_proj_(dim, dim, rng),
      k_proj_(dim, dim, rng),
      v_proj_(dim, dim, rng) {
  AddChild(&q_proj_);
  AddChild(&k_proj_);
  AddChild(&v_proj_);
  CHECK(adjacency.defined());
  std::vector<float> mask = adjacency.data();
  for (auto& m : mask) m = m > 0.0f ? 0.0f : -1e9f;
  mask_ = Tensor::FromVector(adjacency.shape(), std::move(mask));
}

Tensor MaskedSpatialAttention::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 3);
  Tensor q = q_proj_.Forward(x);
  Tensor k = k_proj_.Forward(x);
  Tensor v = v_proj_.Forward(x);
  float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
  Tensor scores = MulScalar(MatMul(q, Transpose(k, -2, -1)), scale);
  scores = Add(scores, mask_);  // [R, N, N] + [N, N] broadcast.
  return MatMul(FusedSoftmax(scores, 1.0f), v);
}

}  // namespace autocts
