#ifndef REPRO_BASELINES_COMMON_H_
#define REPRO_BASELINES_COMMON_H_

#include <memory>

#include "common/rng.h"
#include "model/forecaster.h"
#include "nn/layers.h"
#include "tensor/ops.h"

namespace autocts {

/// Input stage shared by the baselines: optional temporal average-pooling
/// (long histories → at most `max_time` steps) followed by a linear embed
/// of the feature dimension. Mirrors SearchedModel's input module so the
/// model families differ only in their backbones.
class InputEmbed : public Module {
 public:
  InputEmbed(const ForecasterSpec& spec, int hidden, int max_time, Rng* rng);

  /// [B, N, P, F] -> [B, N, T', H].
  Tensor Forward(const Tensor& x) const;

  int pooled_len() const { return pooled_len_; }

 private:
  ForecasterSpec spec_;
  int time_pool_;
  int pooled_len_;
  Linear proj_;
};

/// Output stage shared by the baselines: last-step ⊕ temporal-mean features
/// through a two-layer head to Q_out·F values.
class OutputHead : public Module {
 public:
  OutputHead(const ForecasterSpec& spec, int hidden, int head_hidden,
             Rng* rng);

  /// [B, N, T', H] -> [B, N, Q_out, F].
  Tensor Forward(const Tensor& h) const;

 private:
  ForecasterSpec spec_;
  int hidden_;
  Linear fc1_;
  Linear fc2_;
};

/// Adjacency-masked scaled-dot-product attention over the sensor axis used
/// by PDFormer-style spatial mixing: scores at zero-adjacency pairs get
/// -1e9 before the softmax.
class MaskedSpatialAttention : public Module {
 public:
  MaskedSpatialAttention(int dim, const Tensor& adjacency, Rng* rng);

  /// [R, N, H] -> [R, N, H] where R batches (batch·time).
  Tensor Forward(const Tensor& x) const;

 private:
  int dim_;
  Tensor mask_;  ///< [N, N]: 0 where connected, -1e9 where not.
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
};

}  // namespace autocts

#endif  // REPRO_BASELINES_COMMON_H_
