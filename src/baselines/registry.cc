#include "baselines/registry.h"

#include "baselines/agcrn.h"
#include "baselines/mtgnn.h"
#include "baselines/transformers.h"
#include "common/check.h"
#include "model/searched_model.h"

namespace autocts {

std::vector<std::string> BaselineNames() {
  return {"AutoSTG+",   "AutoCTS",    "AutoCTS+", "MTGNN",
          "AGCRN",      "PDFormer",   "Autoformer", "FEDformer"};
}

ArchHyper TransferredArchHyper(const std::string& name) {
  ArchHyper ah;
  if (name == "AutoSTG+") {
    // METR-LA P-12/Q-12 optimum; DGCN + 1-D convolution space only.
    ah.hyper = {.num_blocks = 4,
                .num_nodes = 5,
                .hidden_dim = 32,
                .output_dim = 64,
                .output_mode = 0,
                .dropout = 0};
    ah.arch.num_nodes = 5;
    ah.arch.edges = {{0, 1, OpType::kGdcc},
                     {0, 2, OpType::kDgcn},
                     {1, 2, OpType::kGdcc},
                     {1, 3, OpType::kDgcn},
                     {2, 3, OpType::kGdcc},
                     {3, 4, OpType::kDgcn}};
  } else if (name == "AutoCTS") {
    // PEMS03 P-12/Q-12 case-study optimum; architecture-only search with
    // predefined (default) hyperparameters.
    ah.hyper = {.num_blocks = 4,
                .num_nodes = 7,
                .hidden_dim = 32,
                .output_dim = 64,
                .output_mode = 0,
                .dropout = 0};
    ah.arch.num_nodes = 7;
    ah.arch.edges = {{0, 1, OpType::kGdcc},  {0, 2, OpType::kDgcn},
                     {1, 2, OpType::kInfT},  {1, 3, OpType::kGdcc},
                     {2, 3, OpType::kDgcn},  {2, 4, OpType::kInfT},
                     {3, 4, OpType::kDgcn},  {3, 5, OpType::kGdcc},
                     {4, 5, OpType::kInfS},  {4, 6, OpType::kIdentity},
                     {5, 6, OpType::kDgcn}};
  } else if (name == "AutoCTS+") {
    // PEMS08 P-48/Q-48 case-study optimum; joint search, tuned hypers.
    ah.hyper = {.num_blocks = 6,
                .num_nodes = 5,
                .hidden_dim = 48,
                .output_dim = 256,
                .output_mode = 1,
                .dropout = 1};
    ah.arch.num_nodes = 5;
    ah.arch.edges = {{0, 1, OpType::kInfT},
                     {0, 2, OpType::kGdcc},
                     {1, 2, OpType::kDgcn},
                     {1, 3, OpType::kInfS},
                     {2, 3, OpType::kGdcc},
                     {2, 4, OpType::kDgcn},
                     {3, 4, OpType::kGdcc}};
  } else {
    CHECK(false) << "no transferred model for " << name;
  }
  Status valid = ValidateArchHyper(ah);
  CHECK(valid.ok()) << valid.message();
  return ah;
}

std::unique_ptr<Forecaster> MakeBaseline(const std::string& name,
                                         const ForecasterSpec& spec,
                                         const ScaleConfig& scale,
                                         uint64_t seed, int hidden_override,
                                         int output_override) {
  if (name == "MTGNN") {
    return std::make_unique<MtgnnModel>(spec, scale, seed, hidden_override,
                                        output_override);
  }
  if (name == "AGCRN") {
    return std::make_unique<AgcrnModel>(spec, scale, seed, hidden_override,
                                        output_override);
  }
  if (name == "PDFormer") {
    return std::make_unique<PdformerModel>(spec, scale, seed, hidden_override,
                                           output_override);
  }
  if (name == "Autoformer") {
    return std::make_unique<AutoformerModel>(spec, scale, seed,
                                             hidden_override, output_override);
  }
  if (name == "FEDformer") {
    return std::make_unique<FedformerModel>(spec, scale, seed, hidden_override,
                                            output_override);
  }
  if (name == "AutoSTG+" || name == "AutoCTS" || name == "AutoCTS+") {
    ArchHyper ah = TransferredArchHyper(name);
    if (hidden_override > 0) ah.hyper.hidden_dim = hidden_override;
    if (output_override > 0) ah.hyper.output_dim = output_override;
    auto model = BuildSearchedModel(ah, spec, scale, seed);
    model->set_display_name(name);
    return model;
  }
  CHECK(false) << "unknown baseline " << name;
  return nullptr;
}

}  // namespace autocts
