#include "baselines/mtgnn.h"

#include <algorithm>

#include "model/searched_model.h"
#include "tensor/fused.h"

namespace autocts {

MtgnnModel::MtgnnModel(const ForecasterSpec& spec, const ScaleConfig& scale,
                       uint64_t seed, int hidden_override, int output_override)
    : spec_(spec), rng_(seed) {
  hidden_ = std::max(
      4, (hidden_override > 0 ? hidden_override : 32) / scale.hidden_divisor);
  int head_hidden = std::max(
      8, (output_override > 0 ? output_override : 64) / scale.hidden_divisor);
  CHECK_EQ(hidden_ % 2, 0) << "inception halves the channels";
  input_ = std::make_unique<InputEmbed>(spec, hidden_, kMaxModelTime, &rng_);
  AddChild(input_.get());
  node_emb_ = AddParameter(
      Tensor::Randn({spec.num_sensors, 4}, &rng_, 0.5f, true));
  const int half = hidden_ / 2;
  for (int l = 0; l < 2; ++l) {
    Layer layer;
    layer.filter_a =
        std::make_unique<CausalConv>(hidden_, half, 2, 1 << l, &rng_);
    layer.filter_b =
        std::make_unique<CausalConv>(hidden_, half, 3, 1 << l, &rng_);
    layer.gate = std::make_unique<CausalConv>(hidden_, hidden_, 2, 1 << l, &rng_);
    layer.hop0 = std::make_unique<Linear>(hidden_, hidden_, &rng_);
    layer.hop1 = std::make_unique<Linear>(hidden_, hidden_, &rng_, false);
    layer.hop2 = std::make_unique<Linear>(hidden_, hidden_, &rng_, false);
    AddChild(layer.filter_a.get());
    AddChild(layer.filter_b.get());
    AddChild(layer.gate.get());
    AddChild(layer.hop0.get());
    AddChild(layer.hop1.get());
    AddChild(layer.hop2.get());
    layers_.push_back(std::move(layer));
  }
  head_ = std::make_unique<OutputHead>(spec, hidden_, head_hidden, &rng_);
  AddChild(head_.get());
}

Tensor MtgnnModel::Forward(const Tensor& x) const {
  const int b = x.dim(0), n = spec_.num_sensors;
  Tensor h = input_->Forward(x);  // [B, N, T', H]
  const int t = h.dim(2);
  Tensor adaptive =
      FusedReluSoftmax(MatMul(node_emb_, Transpose(node_emb_, 0, 1)));
  for (const Layer& layer : layers_) {
    // Dilated inception: concat of two kernel sizes, gated.
    Tensor rows = Reshape(h, {b * n, t, hidden_});
    Tensor filt = Concat(
        {layer.filter_a->Forward(rows), layer.filter_b->Forward(rows)}, -1);
    Tensor gated = FusedGlu(filt, layer.gate->Forward(rows));
    Tensor ht = Reshape(gated, {b, n, t, hidden_});
    // Mix-hop GCN on the adaptive adjacency (β-weighted hops).
    Tensor xt = Transpose(ht, 1, 2);  // [B, T', N, H]
    Tensor hop1 = MatMul(adaptive, xt);
    Tensor hop2 = MatMul(adaptive, hop1);
    Tensor mixed = Add(layer.hop0->Forward(xt),
                       Add(layer.hop1->Forward(hop1),
                           layer.hop2->Forward(hop2)));
    h = Add(h, Transpose(Relu(mixed), 1, 2));  // Residual.
  }
  return head_->Forward(h);
}

}  // namespace autocts
