#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.h"

namespace autocts {
namespace {

constexpr float kPi = 3.14159265358979f;

/// FNV-1a over the dataset name: stable per-dataset seeds without a table.
uint64_t NameSeed(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

/// Random-geometric sensor graph: gaussian-kernel weights over 2-D sensor
/// positions, sparsified, with self-loops — the standard construction for
/// traffic benchmark adjacencies (distance-based, paper §2.1).
std::vector<float> MakeAdjacency(int n, float strength, Rng* rng) {
  std::vector<float> px(static_cast<size_t>(n)), py(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    px[static_cast<size_t>(i)] = rng->Uniform(0.0f, 1.0f);
    py[static_cast<size_t>(i)] = rng->Uniform(0.0f, 1.0f);
  }
  std::vector<float> adj(static_cast<size_t>(n) * n, 0.0f);
  const float sigma2 = 0.1f + 0.2f * strength;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) {
        adj[static_cast<size_t>(i) * n + j] = 1.0f;
        continue;
      }
      float dx = px[static_cast<size_t>(i)] - px[static_cast<size_t>(j)];
      float dy = py[static_cast<size_t>(i)] - py[static_cast<size_t>(j)];
      float w = std::exp(-(dx * dx + dy * dy) / sigma2);
      adj[static_cast<size_t>(i) * n + j] = w >= 0.1f ? w : 0.0f;
    }
  }
  return adj;
}

/// Row-normalizes an adjacency into a mixing (diffusion) matrix.
std::vector<float> RowNormalize(const std::vector<float>& adj, int n) {
  std::vector<float> w(adj.size());
  for (int i = 0; i < n; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) sum += adj[static_cast<size_t>(i) * n + j];
    for (int j = 0; j < n; ++j) {
      w[static_cast<size_t>(i) * n + j] =
          sum > 0.0f ? adj[static_cast<size_t>(i) * n + j] / sum : 0.0f;
    }
  }
  return w;
}

}  // namespace

std::vector<std::string> SourceDatasetNames() {
  return {"PEMS03", "PEMS04",       "PEMS07", "PEMS08", "METR-LA", "ETTh1",
          "ETTh2",  "ETTm1",        "ETTm2",  "Solar-Energy", "ExchangeRate"};
}

std::vector<std::string> TargetDatasetNames() {
  return {"PEMS-BAY", "Electricity", "PEMSD7M",  "NYC-TAXI",
          "NYC-BIKE", "Los-Loop",    "SZ-TAXI"};
}

StatusOr<DatasetProfile> ProfileFor(const std::string& name,
                                    const ScaleConfig& cfg) {
  DatasetProfile p;
  p.name = name;
  p.seed = NameSeed(name);
  const int base_n = cfg.num_sensors;  // Corresponds to the largest (N≈325).
  const int base_t = cfg.num_steps;    // Corresponds to the longest (T≈52k).
  auto n_of = [&](double fraction) {
    return std::max(3, static_cast<int>(base_n * fraction + 0.5));
  };
  auto t_of = [&](double fraction) {
    // Compress the paper's 25x length spread into ~2x so short datasets can
    // still serve P-168 windows; relative ordering is preserved.
    return std::max(260, static_cast<int>(base_t * (0.5 + 0.5 * fraction)));
  };
  // --- Target datasets (Table 3) ---
  if (name == "PEMS-BAY") {
    p.domain = Domain::kTrafficSpeed;
    p.num_series = n_of(1.0);
    p.num_steps = t_of(1.0);
    p.spatial_strength = 0.8f;
    p.noise = 0.08f;
  } else if (name == "Electricity") {
    p.domain = Domain::kElectricity;
    p.num_series = n_of(0.99);
    p.num_steps = t_of(0.5);
    p.spatial_strength = 0.3f;
    p.noise = 0.15f;
  } else if (name == "PEMSD7M") {
    p.domain = Domain::kTrafficSpeed;
    p.num_series = n_of(0.7);
    p.num_steps = t_of(0.24);
    p.spatial_strength = 0.75f;
    p.noise = 0.1f;
  } else if (name == "NYC-TAXI") {
    p.domain = Domain::kDemandCount;
    p.num_series = n_of(0.82);
    p.num_steps = t_of(0.084);
    p.spatial_strength = 0.5f;
    p.noise = 0.35f;
    p.scale = 20.0f;
  } else if (name == "NYC-BIKE") {
    p.domain = Domain::kDemandCount;
    p.num_series = n_of(0.77);
    p.num_steps = t_of(0.084);
    p.spatial_strength = 0.45f;
    p.noise = 0.45f;
    p.scale = 6.0f;
  } else if (name == "Los-Loop") {
    p.domain = Domain::kTrafficSpeed;
    p.num_series = n_of(0.64);
    p.num_steps = t_of(0.04);
    p.spatial_strength = 0.7f;
    p.noise = 0.12f;
  } else if (name == "SZ-TAXI") {
    p.domain = Domain::kDemandCount;
    p.num_series = n_of(0.48);
    p.num_steps = t_of(0.057);
    p.spatial_strength = 0.4f;
    p.noise = 0.5f;
    p.scale = 8.0f;
    // --- Source datasets ---
  } else if (name == "PEMS03" || name == "PEMS04" || name == "PEMS07" ||
             name == "PEMS08") {
    p.domain = Domain::kTrafficFlow;
    p.num_series = n_of(0.9);
    p.num_steps = t_of(0.5);
    p.spatial_strength = 0.8f;
    p.noise = 0.2f;
    p.scale = 250.0f;
  } else if (name == "METR-LA") {
    p.domain = Domain::kTrafficSpeed;
    p.num_series = n_of(0.64);
    p.num_steps = t_of(0.66);
    p.spatial_strength = 0.75f;
    p.noise = 0.12f;
  } else if (name == "ETTh1" || name == "ETTh2" || name == "ETTm1" ||
             name == "ETTm2") {
    p.domain = Domain::kEtt;
    p.num_series = std::max(3, base_n / 3);  // 7 indicators in the paper.
    p.num_steps = t_of(0.33);
    p.period = 24;
    p.spatial_strength = 0.2f;
    p.noise = 0.12f;
    p.scale = 10.0f;
    p.trend = name == "ETTh2" || name == "ETTm2" ? -0.2f : 0.15f;
  } else if (name == "Solar-Energy") {
    p.domain = Domain::kSolar;
    p.num_series = n_of(0.42);
    p.num_steps = t_of(1.0);
    p.spatial_strength = 0.6f;
    p.noise = 0.1f;
    p.scale = 30.0f;
  } else if (name == "ExchangeRate") {
    p.domain = Domain::kExchangeRate;
    p.num_series = std::max(3, base_n / 3);  // 8 countries in the paper.
    p.num_steps = t_of(0.14);
    p.period = 0;
    p.spatial_strength = 0.15f;
    p.noise = 0.01f;
  } else {
    std::string known;
    for (const std::string& s : SourceDatasetNames()) known += s + " ";
    for (const std::string& s : TargetDatasetNames()) known += s + " ";
    return Status::Error("unknown dataset '" + name + "' (known: " + known +
                         ")");
  }
  return p;
}

CtsDatasetPtr GenerateSynthetic(const DatasetProfile& profile) {
  const int n = profile.num_series;
  const int t_len = profile.num_steps;
  Rng rng(profile.seed);
  std::vector<float> adj = MakeAdjacency(n, profile.spatial_strength, &rng);
  std::vector<float> mix = RowNormalize(adj, n);

  // Latent noise: per-sensor AR(1) innovations diffused over the sensor
  // graph so nearby sensors stay correlated (this is the structure T-AHC's
  // spatial operators must exploit).
  std::vector<float> latent(static_cast<size_t>(n), 0.0f);
  std::vector<float> diffused(static_cast<size_t>(n), 0.0f);
  const float rho = 0.85f;

  // Per-sensor phases / sensitivities, spatially smoothed over the graph so
  // that neighbouring sensors share their seasonal structure (this is what
  // makes spatial operators pay off on these datasets).
  std::vector<float> phase(static_cast<size_t>(n));
  std::vector<float> load(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    phase[static_cast<size_t>(i)] = rng.Uniform(0.0f, 2.0f * kPi);
    load[static_cast<size_t>(i)] = rng.Uniform(0.6f, 1.4f);
  }
  auto smooth = [&](std::vector<float>* field) {
    for (int pass = 0; pass < 3; ++pass) {
      std::vector<float> next(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        float acc = 0.0f;
        for (int j = 0; j < n; ++j) {
          acc += mix[static_cast<size_t>(i) * n + j] *
                 (*field)[static_cast<size_t>(j)];
        }
        next[static_cast<size_t>(i)] =
            (1.0f - profile.spatial_strength) *
                (*field)[static_cast<size_t>(i)] +
            profile.spatial_strength * acc;
      }
      *field = std::move(next);
    }
  };
  smooth(&phase);
  smooth(&load);
  // Walk state for exchange-rate style series.
  std::vector<float> walk(static_cast<size_t>(n));
  for (auto& w : walk) w = rng.Uniform(0.8f, 1.2f);

  std::vector<float> values(static_cast<size_t>(n) * t_len);
  const int period = profile.period;
  const int period2 =
      profile.period2 > 0 ? profile.period2 : (period > 0 ? period * 7 : 0);

  for (int t = 0; t < t_len; ++t) {
    // Advance + diffuse the latent noise field.
    for (int i = 0; i < n; ++i) {
      latent[static_cast<size_t>(i)] =
          rho * latent[static_cast<size_t>(i)] + rng.Normal(0.0f, 1.0f);
    }
    const float s = profile.spatial_strength;
    for (int i = 0; i < n; ++i) {
      float acc = 0.0f;
      for (int j = 0; j < n; ++j) {
        acc += mix[static_cast<size_t>(i) * n + j] * latent[static_cast<size_t>(j)];
      }
      diffused[static_cast<size_t>(i)] =
          (1.0f - s) * latent[static_cast<size_t>(i)] + s * acc;
    }
    const float day = period > 0
                          ? 2.0f * kPi * static_cast<float>(t % period) /
                                static_cast<float>(period)
                          : 0.0f;
    const float week =
        period2 > 0 ? 2.0f * kPi * static_cast<float>(t % period2) /
                          static_cast<float>(period2)
                    : 0.0f;
    const float drift = profile.trend * static_cast<float>(t) /
                        static_cast<float>(t_len);
    for (int i = 0; i < n; ++i) {
      const float ph = phase[static_cast<size_t>(i)];
      const float ld = load[static_cast<size_t>(i)];
      const float eps = diffused[static_cast<size_t>(i)] * profile.noise;
      float v = 0.0f;
      switch (profile.domain) {
        case Domain::kTrafficSpeed: {
          // Free-flow speed minus morning/evening congestion dips.
          float rush1 = std::exp(-8.0f * (1.0f - std::sin(day + 0.2f * ph)));
          float rush2 = std::exp(-8.0f * (1.0f + std::sin(day + 0.2f * ph)));
          v = 62.0f - 18.0f * ld * (rush1 + 0.7f * rush2) + 6.0f * eps;
          v = std::clamp(v, 3.0f, 75.0f);
          break;
        }
        case Domain::kTrafficFlow: {
          float cycle = 0.5f + 0.45f * std::sin(day + 0.3f * ph) +
                        0.1f * std::sin(week);
          v = profile.scale * ld * std::max(cycle + eps, 0.0f);
          break;
        }
        case Domain::kElectricity: {
          float cycle = 0.6f + 0.3f * std::sin(day + 0.4f * ph) +
                        0.15f * std::sin(week + ph);
          v = 400.0f * ld * std::max(cycle * (1.0f + drift) + eps, 0.02f);
          break;
        }
        case Domain::kEtt: {
          v = profile.scale *
              (1.0f + 0.4f * std::sin(day + ph) + drift + 0.5f * eps);
          break;
        }
        case Domain::kSolar: {
          // Production is a daytime bell, exactly zero at night.
          float daylight = std::sin(day * 0.5f);
          float bell = daylight > 0.0f ? daylight * daylight : 0.0f;
          v = profile.scale * ld * std::max(bell * (1.0f + eps), 0.0f);
          break;
        }
        case Domain::kExchangeRate: {
          // Handled below via the shared random walk (no seasonality).
          walk[static_cast<size_t>(i)] +=
              profile.noise * (0.3f * eps + rng.Normal(0.0f, 0.2f));
          v = walk[static_cast<size_t>(i)];
          break;
        }
        case Domain::kDemandCount: {
          float cycle = 0.45f + 0.4f * std::sin(day + 0.25f * ph) +
                        0.15f * std::sin(week);
          float rate = profile.scale * ld * std::max(cycle, 0.0f);
          // Count-like heteroscedastic noise: std grows like sqrt(rate).
          v = std::max(rate + std::sqrt(std::max(rate, 0.25f)) *
                                  diffused[static_cast<size_t>(i)] *
                                  (profile.noise * 4.0f),
                       0.0f);
          break;
        }
      }
      values[(static_cast<size_t>(i) * t_len) + t] = v;
    }
  }
  return std::make_shared<CtsDataset>(profile.name, n, t_len, 1,
                                      std::move(values), std::move(adj));
}

StatusOr<CtsDatasetPtr> MakeSyntheticDataset(const std::string& name,
                                             const ScaleConfig& cfg) {
  StatusOr<DatasetProfile> profile = ProfileFor(name, cfg);
  if (!profile.ok()) return profile.status();
  return GenerateSynthetic(profile.value());
}

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kStationary: return "stationary";
    case ScenarioKind::kRegimeShift: return "regime_shift";
    case ScenarioKind::kSensorDropout: return "sensor_dropout";
    case ScenarioKind::kAnomalyBurst: return "anomaly_burst";
    case ScenarioKind::kConceptDrift: return "concept_drift";
  }
  return "stationary";
}

namespace {

/// Per-series population stds of a single-feature dataset — scenario
/// magnitudes are expressed in these units so one spec works across
/// domains whose value ranges differ by orders of magnitude.
std::vector<float> PerSeriesStd(const CtsDataset& data) {
  const int n = data.num_series();
  const int t_len = data.num_steps();
  std::vector<float> stds(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double sum = 0.0, sq = 0.0;
    for (int t = 0; t < t_len; ++t) {
      double v = data.value(i, t, 0);
      sum += v;
      sq += v * v;
    }
    double mu = sum / t_len;
    double var = std::max(sq / t_len - mu * mu, 1e-8);
    stds[static_cast<size_t>(i)] = static_cast<float>(std::sqrt(var));
  }
  return stds;
}

/// The first `count` sensors of a seeded shuffle — which sensors a fault
/// hits depends only on spec.seed.
std::vector<int> PickSensors(int n, float fraction, Rng* rng) {
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);
  int count = std::clamp(static_cast<int>(n * fraction + 0.5f), 1, n);
  order.resize(static_cast<size_t>(count));
  return order;
}

}  // namespace

ScenarioData ApplyScenario(const CtsDatasetPtr& clean,
                           const ScenarioSpec& spec) {
  CHECK(clean != nullptr);
  CHECK_EQ(clean->num_features(), 1);
  const int n = clean->num_series();
  const int t_len = clean->num_steps();
  const int onset = std::clamp(spec.onset, 0, t_len);
  const int end = spec.duration > 0
                      ? std::min(onset + spec.duration, t_len)
                      : t_len;

  ScenarioData out;
  out.clean = clean;
  out.missing.assign(static_cast<size_t>(n) * t_len, 0);
  out.anomaly.assign(static_cast<size_t>(n) * t_len, 0);
  std::vector<float> values = clean->values();
  const std::vector<float> stds = PerSeriesStd(*clean);
  Rng rng(spec.seed);

  switch (spec.kind) {
    case ScenarioKind::kStationary:
      break;
    case ScenarioKind::kRegimeShift: {
      // Abrupt level shift of every series: the post-onset distribution
      // the pre-drift model was fitted to no longer exists.
      for (int i = 0; i < n; ++i) {
        const float shift = spec.magnitude * stds[static_cast<size_t>(i)];
        for (int t = onset; t < end; ++t) {
          values[static_cast<size_t>(i) * t_len + t] += shift;
        }
      }
      break;
    }
    case ScenarioKind::kSensorDropout: {
      // A sensor subset stops reporting: mask the run, impute with the
      // last pre-dropout observation (what a streaming consumer would see).
      for (int i : PickSensors(n, spec.fraction, &rng)) {
        const float held =
            onset > 0 ? values[static_cast<size_t>(i) * t_len + (onset - 1)]
                      : 0.0f;
        for (int t = onset; t < end; ++t) {
          values[static_cast<size_t>(i) * t_len + t] = held;
          out.missing[static_cast<size_t>(i) * t_len + t] = 1;
        }
      }
      break;
    }
    case ScenarioKind::kAnomalyBurst: {
      // Short spike bursts on a sensor subset; each burst flips sign at
      // random so anomalies do not average out into a level shift.
      for (int i : PickSensors(n, spec.fraction, &rng)) {
        int t = onset;
        while (t < end) {
          if (rng.Bernoulli(0.08)) {
            const int burst = rng.Int(1, 4);
            const float sign = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
            for (int b = 0; b < burst && t + b < end; ++b) {
              values[static_cast<size_t>(i) * t_len + (t + b)] +=
                  sign * spec.magnitude * stds[static_cast<size_t>(i)];
              out.anomaly[static_cast<size_t>(i) * t_len + (t + b)] = 1;
            }
            t += burst;
          } else {
            ++t;
          }
        }
      }
      break;
    }
    case ScenarioKind::kConceptDrift: {
      // Gradual ramp from onset: reaches the full shift at `end`, then
      // holds — slow enough that a single-tick detector must integrate.
      const int ramp = std::max(end - onset, 1);
      for (int i = 0; i < n; ++i) {
        const float shift = spec.magnitude * stds[static_cast<size_t>(i)];
        for (int t = onset; t < t_len; ++t) {
          const float frac =
              std::min(1.0f, static_cast<float>(t - onset + 1) /
                                 static_cast<float>(ramp));
          values[static_cast<size_t>(i) * t_len + t] += frac * shift;
        }
      }
      break;
    }
  }

  auto observed = std::make_shared<CtsDataset>(
      std::string(clean->name()) + "+" + ScenarioKindName(spec.kind), n,
      t_len, 1, std::move(values), clean->adjacency());
  bool any_missing = false;
  for (uint8_t m : out.missing) any_missing |= (m != 0);
  if (any_missing) observed->SetMissing(out.missing);
  out.observed = std::move(observed);
  return out;
}

}  // namespace autocts
