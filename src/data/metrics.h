#ifndef REPRO_DATA_METRICS_H_
#define REPRO_DATA_METRICS_H_

#include <cstdint>
#include <vector>

namespace autocts {

/// Forecast accuracy metrics used in the paper's evaluation (§4.1.2):
/// MAE/RMSE/MAPE for multi-step forecasting, RRSE/CORR for single-step.
/// All take flat prediction/target vectors of equal length.

/// Mean absolute error.
double Mae(const std::vector<float>& pred, const std::vector<float>& target);

/// Root mean squared error.
double Rmse(const std::vector<float>& pred, const std::vector<float>& target);

/// Mean absolute percentage error in percent; targets with |y| below
/// `mask_threshold` are excluded (standard practice on traffic data, which
/// contains zeros).
double Mape(const std::vector<float>& pred, const std::vector<float>& target,
            float mask_threshold = 1e-3f);

/// Root relative squared error: RMSE of the forecast relative to predicting
/// the target mean.
double Rrse(const std::vector<float>& pred, const std::vector<float>& target);

/// Empirical correlation coefficient averaged over series; `stride` gives
/// the per-series length (0 = treat as a single series).
double Corr(const std::vector<float>& pred, const std::vector<float>& target,
            int stride = 0);

/// Spearman's rank correlation between two score vectors (used by the task
/// similarity study, Table 4).
double SpearmanRho(const std::vector<double>& a, const std::vector<double>& b);

/// Masked metric variants for the streaming evaluator: `skip` marks points
/// to exclude (non-zero = excluded — missing sensor readings, injected
/// anomalies); an empty `skip` includes every point. When every point is
/// skipped the metrics return 0 rather than dividing by zero — a fully
/// masked tick contributes nothing to the online-error window.
double MaskedMae(const std::vector<float>& pred,
                 const std::vector<float>& target,
                 const std::vector<uint8_t>& skip);
double MaskedRmse(const std::vector<float>& pred,
                  const std::vector<float>& target,
                  const std::vector<uint8_t>& skip);
double MaskedMape(const std::vector<float>& pred,
                  const std::vector<float>& target,
                  const std::vector<uint8_t>& skip,
                  float mask_threshold = 1e-3f);

/// Summary of one evaluation pass.
struct ForecastMetrics {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;
  double rrse = 0.0;
  double corr = 0.0;
};

/// Computes every metric at once. `series_stride` is the per-series length
/// used by CORR (0 = single series).
ForecastMetrics EvaluateForecast(const std::vector<float>& pred,
                                 const std::vector<float>& target,
                                 int series_stride = 0);

}  // namespace autocts

#endif  // REPRO_DATA_METRICS_H_
