#include "data/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace autocts {

double Mae(const std::vector<float>& pred, const std::vector<float>& target) {
  CHECK_EQ(pred.size(), target.size());
  CHECK(!pred.empty());
  double sum = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    sum += std::fabs(static_cast<double>(pred[i]) - target[i]);
  }
  return sum / static_cast<double>(pred.size());
}

double Rmse(const std::vector<float>& pred, const std::vector<float>& target) {
  CHECK_EQ(pred.size(), target.size());
  CHECK(!pred.empty());
  double sum = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = static_cast<double>(pred[i]) - target[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(pred.size()));
}

double Mape(const std::vector<float>& pred, const std::vector<float>& target,
            float mask_threshold) {
  CHECK_EQ(pred.size(), target.size());
  double sum = 0.0;
  int64_t count = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (std::fabs(target[i]) <= mask_threshold) continue;
    sum += std::fabs((static_cast<double>(pred[i]) - target[i]) / target[i]);
    ++count;
  }
  if (count == 0) return 0.0;
  return 100.0 * sum / static_cast<double>(count);
}

double MaskedMae(const std::vector<float>& pred,
                 const std::vector<float>& target,
                 const std::vector<uint8_t>& skip) {
  CHECK_EQ(pred.size(), target.size());
  if (!skip.empty()) CHECK_EQ(skip.size(), pred.size());
  double sum = 0.0;
  int64_t count = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (!skip.empty() && skip[i] != 0) continue;
    sum += std::fabs(static_cast<double>(pred[i]) - target[i]);
    ++count;
  }
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

double MaskedRmse(const std::vector<float>& pred,
                  const std::vector<float>& target,
                  const std::vector<uint8_t>& skip) {
  CHECK_EQ(pred.size(), target.size());
  if (!skip.empty()) CHECK_EQ(skip.size(), pred.size());
  double sum = 0.0;
  int64_t count = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (!skip.empty() && skip[i] != 0) continue;
    double d = static_cast<double>(pred[i]) - target[i];
    sum += d * d;
    ++count;
  }
  if (count == 0) return 0.0;
  return std::sqrt(sum / static_cast<double>(count));
}

double MaskedMape(const std::vector<float>& pred,
                  const std::vector<float>& target,
                  const std::vector<uint8_t>& skip, float mask_threshold) {
  CHECK_EQ(pred.size(), target.size());
  if (!skip.empty()) CHECK_EQ(skip.size(), pred.size());
  double sum = 0.0;
  int64_t count = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (!skip.empty() && skip[i] != 0) continue;
    if (std::fabs(target[i]) <= mask_threshold) continue;
    sum += std::fabs((static_cast<double>(pred[i]) - target[i]) / target[i]);
    ++count;
  }
  if (count == 0) return 0.0;
  return 100.0 * sum / static_cast<double>(count);
}

double Rrse(const std::vector<float>& pred, const std::vector<float>& target) {
  CHECK_EQ(pred.size(), target.size());
  CHECK(!pred.empty());
  double mean = std::accumulate(target.begin(), target.end(), 0.0) /
                static_cast<double>(target.size());
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = static_cast<double>(pred[i]) - target[i];
    num += d * d;
    double m = static_cast<double>(target[i]) - mean;
    den += m * m;
  }
  if (den <= 0.0) return 0.0;
  return std::sqrt(num / den);
}

namespace {

double PearsonCorr(const float* a, const float* b, size_t n) {
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double da = a[i] - ma, db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 1e-12 || vb <= 1e-12) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace

double Corr(const std::vector<float>& pred, const std::vector<float>& target,
            int stride) {
  CHECK_EQ(pred.size(), target.size());
  CHECK(!pred.empty());
  if (stride <= 0) {
    return PearsonCorr(pred.data(), target.data(), pred.size());
  }
  CHECK_EQ(pred.size() % static_cast<size_t>(stride), 0u);
  size_t series = pred.size() / static_cast<size_t>(stride);
  double total = 0.0;
  int counted = 0;
  for (size_t s = 0; s < series; ++s) {
    double c = PearsonCorr(pred.data() + s * stride, target.data() + s * stride,
                           static_cast<size_t>(stride));
    total += c;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

namespace {

std::vector<double> Ranks(const std::vector<double>& v) {
  std::vector<size_t> order(v.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(v.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    double rank = (static_cast<double>(i) + j) / 2.0 + 1.0;  // Average ties.
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanRho(const std::vector<double>& a, const std::vector<double>& b) {
  CHECK_EQ(a.size(), b.size());
  CHECK_GE(a.size(), 2u);
  std::vector<double> ra = Ranks(a), rb = Ranks(b);
  std::vector<float> fa(ra.begin(), ra.end()), fb(rb.begin(), rb.end());
  return PearsonCorr(fa.data(), fb.data(), fa.size());
}

ForecastMetrics EvaluateForecast(const std::vector<float>& pred,
                                 const std::vector<float>& target,
                                 int series_stride) {
  ForecastMetrics m;
  m.mae = Mae(pred, target);
  m.rmse = Rmse(pred, target);
  // Masked MAPE excluding |y| < 1 — standard practice on traffic/demand
  // data where near-zero targets make percentage errors meaningless.
  m.mape = Mape(pred, target, 1.0f);
  m.rrse = Rrse(pred, target);
  m.corr = Corr(pred, target, series_stride);
  return m;
}

}  // namespace autocts
