#include "data/task.h"

#include <algorithm>
#include <numeric>

namespace autocts {

std::string ForecastTask::name() const {
  std::string label = data->name() + " P" + std::to_string(p);
  if (single_step) {
    label += "/Q-1(" + std::to_string(q) + "rd)";
  } else {
    label += "/Q" + std::to_string(q);
  }
  return label;
}

int ForecastTask::num_windows() const {
  // A window needs p inputs plus q future steps (the q-th step for
  // single-step forecasting is also q steps ahead).
  int n = data->num_steps() - p - q + 1;
  return std::max(n, 0);
}

std::vector<int> ForecastTask::SplitStarts(int split) const {
  CHECK_GE(split, 0);
  CHECK_LE(split, 2);
  int total = num_windows();
  CHECK_GT(total, 0) << "dataset too short for P=" << p << " Q=" << q;
  int train_end = static_cast<int>(total * train_ratio);
  int val_end = static_cast<int>(total * (train_ratio + val_ratio));
  train_end = std::clamp(train_end, 1, total);
  val_end = std::clamp(val_end, train_end, total);
  int begin = split == 0 ? 0 : (split == 1 ? train_end : val_end);
  int end = split == 0 ? train_end : (split == 1 ? val_end : total);
  if (begin >= end) {  // Degenerate tiny datasets: fall back to all windows.
    begin = 0;
    end = total;
  }
  std::vector<int> starts(static_cast<size_t>(end - begin));
  std::iota(starts.begin(), starts.end(), begin);
  return starts;
}

WindowProvider::WindowProvider(const ForecastTask& task) : task_(task) {
  CHECK(task_.data != nullptr);
  task_.data->MeanStd(task_.train_ratio, &mean_, &std_);
  if (std_ < 1e-6f) std_ = 1.0f;
}

WindowBatch WindowProvider::MakeBatch(const std::vector<int>& starts) const {
  CHECK(!starts.empty());
  const CtsDataset& d = *task_.data;
  const int b = static_cast<int>(starts.size());
  const int n = d.num_series();
  const int f = d.num_features();
  const int p = task_.p;
  const int q_out = task_.single_step ? 1 : task_.q;
  std::vector<float> xv(static_cast<size_t>(b) * n * p * f);
  std::vector<float> yv(static_cast<size_t>(b) * n * q_out * f);
  for (int bi = 0; bi < b; ++bi) {
    int s = starts[static_cast<size_t>(bi)];
    CHECK_GE(s, 0);
    CHECK_LE(s + task_.p + task_.q, d.num_steps());
    for (int ni = 0; ni < n; ++ni) {
      for (int t = 0; t < p; ++t) {
        for (int fi = 0; fi < f; ++fi) {
          xv[((static_cast<size_t>(bi) * n + ni) * p + t) * f + fi] =
              (d.value(ni, s + t, fi) - mean_) / std_;
        }
      }
      for (int t = 0; t < q_out; ++t) {
        // Multi-step targets are steps s+p .. s+p+q-1; the single-step
        // target is the q-th future step s+p+q-1.
        int src_t = task_.single_step ? s + p + task_.q - 1 : s + p + t;
        for (int fi = 0; fi < f; ++fi) {
          yv[((static_cast<size_t>(bi) * n + ni) * q_out + t) * f + fi] =
              d.value(ni, src_t, fi);
        }
      }
    }
  }
  WindowBatch batch;
  batch.x = Tensor::FromVector({b, n, p, f}, std::move(xv));
  batch.y = Tensor::FromVector({b, n, q_out, f}, std::move(yv));
  return batch;
}

WindowBatch WindowProvider::SampleTrainBatch(int batch_size, Rng* rng) const {
  std::vector<int> train = task_.SplitStarts(0);
  std::vector<int> starts(static_cast<size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) starts[static_cast<size_t>(i)] = rng->Choice(train);
  return MakeBatch(starts);
}

std::vector<int> WindowProvider::Starts(int split, int max_windows) const {
  std::vector<int> starts = task_.SplitStarts(split);
  if (max_windows > 0 && static_cast<int>(starts.size()) > max_windows) {
    // Evenly spaced subsample keeps coverage of the whole split.
    std::vector<int> picked;
    picked.reserve(static_cast<size_t>(max_windows));
    double step = static_cast<double>(starts.size()) / max_windows;
    for (int i = 0; i < max_windows; ++i) {
      picked.push_back(starts[static_cast<size_t>(i * step)]);
    }
    return picked;
  }
  return starts;
}

ForecastTask DeriveSubsetTask(const CtsDatasetPtr& source, int p, int q,
                              bool single_step, Rng* rng) {
  const CtsDataset& d = *source;
  // Guideline 1 (Fig. 5): temporal continuity — a contiguous slice whose
  // length fits the forecasting horizon (longer horizons need more steps).
  int min_len = std::max(8 * (p + q), d.num_steps() / 4);
  int len = std::min(d.num_steps(), rng->Int(min_len, std::max(min_len, d.num_steps() / 2 * 2)));
  len = std::min(len, d.num_steps());
  int t0 = rng->Int(0, d.num_steps() - len);
  // Guideline 2: random sensor subset with re-projected adjacency.
  int keep = std::max(2, d.num_series() / 2 + rng->Int(-1, d.num_series() / 4));
  keep = std::min(keep, d.num_series());
  std::vector<int> sensors(static_cast<size_t>(d.num_series()));
  std::iota(sensors.begin(), sensors.end(), 0);
  rng->Shuffle(&sensors);
  sensors.resize(static_cast<size_t>(keep));
  std::sort(sensors.begin(), sensors.end());
  auto subset = std::make_shared<CtsDataset>(
      d.TemporalSlice(t0, len).SelectSensors(sensors));
  ForecastTask task;
  task.data = subset;
  task.p = p;
  task.q = q;
  task.single_step = single_step;
  task.train_ratio = 0.7;
  task.val_ratio = 0.1;
  return task;
}

}  // namespace autocts
