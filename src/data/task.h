#ifndef REPRO_DATA_TASK_H_
#define REPRO_DATA_TASK_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/cts_dataset.h"
#include "tensor/tensor.h"

namespace autocts {

/// A CTS forecasting task T = (D, P, Q, M) per paper Eq. 3: a dataset, the
/// input length P, the output length (or single-step horizon) Q, and the
/// mode M (multi-step vs single-step).
struct ForecastTask {
  CtsDatasetPtr data;
  int p = 12;
  /// Multi-step: predict the next q steps. Single-step: predict only the
  /// q-th future step (e.g., "P-168/Q-1 (3rd)" has p=168, q=3, single_step).
  int q = 12;
  bool single_step = false;
  /// Train/validation fractions (Table 3 split ratios); test is the rest.
  double train_ratio = 0.7;
  double val_ratio = 0.1;

  /// "PEMS-BAY P12/Q12" style label.
  std::string name() const;

  /// Number of valid window start positions.
  int num_windows() const;

  /// Window starts of one split. `split` is 0=train, 1=val, 2=test.
  std::vector<int> SplitStarts(int split) const;
};

/// Dense window batch for model training: inputs are z-scored with the
/// train-split scaler, targets stay on the original scale (the trainer
/// inverse-transforms predictions before the loss, as Graph WaveNet does).
struct WindowBatch {
  Tensor x;  ///< [B, N, P, F], scaled.
  Tensor y;  ///< [B, N, Q_out, F], original scale (Q_out = q or 1).
};

/// Assembles batches of forecasting windows from a task.
class WindowProvider {
 public:
  explicit WindowProvider(const ForecastTask& task);

  /// Scaler fitted on the train fraction.
  float mean() const { return mean_; }
  float std() const { return std_; }

  /// Builds a batch from explicit window starts.
  WindowBatch MakeBatch(const std::vector<int>& starts) const;

  /// Draws `batch_size` random train-split windows.
  WindowBatch SampleTrainBatch(int batch_size, Rng* rng) const;

  /// All windows of a split, chunked to at most `max_windows` (0 = all).
  std::vector<int> Starts(int split, int max_windows = 0) const;

  const ForecastTask& task() const { return task_; }

 private:
  ForecastTask task_;
  float mean_ = 0.0f;
  float std_ = 1.0f;
};

/// Derives an enriched source task per the paper's Fig. 5 guidelines: a
/// temporally contiguous slice, a random sensor subset with re-projected
/// adjacency, and P/Q compatible with the subset length (short datasets get
/// short horizons).
ForecastTask DeriveSubsetTask(const CtsDatasetPtr& source, int p, int q,
                              bool single_step, Rng* rng);

}  // namespace autocts

#endif  // REPRO_DATA_TASK_H_
