#ifndef REPRO_DATA_SYNTHETIC_H_
#define REPRO_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/scale_config.h"
#include "common/status.h"
#include "data/cts_dataset.h"

namespace autocts {

/// Domain flavour of a synthetic CTS generator. Each flavour reproduces the
/// signature statistics of the corresponding real dataset family (see
/// DESIGN.md, substitution table): periodic structure, value range, noise
/// character, and spatial-correlation strength.
enum class Domain {
  kTrafficSpeed,   ///< METR-LA, PEMS-BAY, PEMSD7(M), Los-Loop: bounded speeds
                   ///< with rush-hour congestion dips.
  kTrafficFlow,    ///< PEMS03/04/07/08: non-negative volumes, high variance.
  kElectricity,    ///< Electricity: strong daily+weekly load cycles.
  kEtt,            ///< ETTh1/2, ETTm1/2: transformer temperature, slow drift.
  kSolar,          ///< Solar-Energy: day-time production bell, zero at night.
  kExchangeRate,   ///< ExchangeRate: near-unit random walk, no seasonality.
  kDemandCount,    ///< NYC-TAXI/BIKE, SZ-TAXI: non-negative demand counts.
};

/// Fully specifies one synthetic dataset.
struct DatasetProfile {
  std::string name;
  Domain domain = Domain::kTrafficSpeed;
  int num_series = 8;
  int num_steps = 400;
  int period = 48;             ///< Primary (daily-analog) period in steps.
  int period2 = 0;             ///< Secondary (weekly-analog) period; 0 = none.
  float spatial_strength = 0.5f;  ///< Diffusion mixing of the latent noise.
  float noise = 0.1f;          ///< Noise std relative to the signal scale.
  float scale = 1.0f;          ///< Output amplitude.
  float offset = 0.0f;         ///< Base level.
  float trend = 0.0f;          ///< Linear drift over the whole series.
  uint64_t seed = 0;           ///< Generator seed (deterministic per name).
};

/// Names of the eleven source datasets (used for T-AHC pre-training).
std::vector<std::string> SourceDatasetNames();

/// Names of the seven unseen target datasets (Table 3).
std::vector<std::string> TargetDatasetNames();

/// Profile for a named dataset scaled to `cfg`. Unknown names are an
/// expected failure (the name typically arrives from a CLI flag or config
/// file), so per the status.h contract this returns an error Status rather
/// than CHECK-failing; the message lists the known names.
StatusOr<DatasetProfile> ProfileFor(const std::string& name,
                                    const ScaleConfig& cfg);

/// Generates a synthetic dataset from a profile (deterministic).
CtsDatasetPtr GenerateSynthetic(const DatasetProfile& profile);

/// Convenience: ProfileFor + GenerateSynthetic.
StatusOr<CtsDatasetPtr> MakeSyntheticDataset(const std::string& name,
                                             const ScaleConfig& cfg);

/// Robustness scenario flavours layered on top of a clean synthetic series
/// (the streaming engine's test diet — see DESIGN.md "Streaming &
/// drift-triggered re-search").
enum class ScenarioKind {
  kStationary,    ///< No fault — the drift detector's false-positive guard.
  kRegimeShift,   ///< Abrupt level shift of every series at `onset`.
  kSensorDropout, ///< A sensor subset goes missing for `duration` ticks.
  kAnomalyBurst,  ///< Short spike bursts on random sensors.
  kConceptDrift,  ///< Gradual level ramp from `onset` over `duration`.
};

const char* ScenarioKindName(ScenarioKind kind);

/// Deterministic, seed-driven specification of one scenario overlay.
struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kStationary;
  int onset = 0;          ///< First faulted tick.
  int duration = 0;       ///< Fault extent in ticks (0 = until the end).
  float magnitude = 1.0f; ///< Shift/spike size in units of the series std.
  float fraction = 0.3f;  ///< Fraction of sensors hit (dropout/anomaly).
  uint64_t seed = 1234;   ///< Drives sensor choice and spike placement.
};

/// A scenario stream: faulted observations plus the ground truth and masks
/// the streaming evaluator scores against. All layouts match
/// CtsDataset::values() ([n][t], single feature).
struct ScenarioData {
  CtsDatasetPtr observed;        ///< What the stream sees (faults applied;
                                 ///< dropouts imputed, mask set).
  CtsDatasetPtr clean;           ///< Fault-free ground truth.
  std::vector<uint8_t> missing;  ///< Non-zero = reading was dropped.
  std::vector<uint8_t> anomaly;  ///< Non-zero = reading is an injected spike.
};

/// Applies `spec` to a clean dataset. Deterministic in (clean, spec): the
/// overlay draws only from spec.seed, never from the clean generator state.
ScenarioData ApplyScenario(const CtsDatasetPtr& clean,
                           const ScenarioSpec& spec);

}  // namespace autocts

#endif  // REPRO_DATA_SYNTHETIC_H_
