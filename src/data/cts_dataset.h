#ifndef REPRO_DATA_CTS_DATASET_H_
#define REPRO_DATA_CTS_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"

namespace autocts {

/// A correlated time series dataset: N series × T steps × F features plus an
/// N×N adjacency matrix capturing spatial correlation strength (paper §2.1).
class CtsDataset {
 public:
  CtsDataset(std::string name, int num_series, int num_steps, int num_features,
             std::vector<float> values, std::vector<float> adjacency);

  const std::string& name() const { return name_; }
  int num_series() const { return num_series_; }
  int num_steps() const { return num_steps_; }
  int num_features() const { return num_features_; }

  /// Value of series n at time t, feature f.
  float value(int n, int t, int f) const {
    return values_[FlatIndex(n, t, f)];
  }

  /// Raw storage, row-major [n][t][f].
  const std::vector<float>& values() const { return values_; }

  /// Row-major N×N adjacency (self-loops included, weights in [0,1]).
  const std::vector<float>& adjacency() const { return adjacency_; }
  float adjacency(int i, int j) const {
    return adjacency_[static_cast<size_t>(i) * num_series_ + j];
  }

  /// Optional per-point missing mask, same layout as values() (non-zero =
  /// the reading is missing and values() holds an imputation placeholder).
  /// Empty for fully observed datasets — the common case pays no storage.
  const std::vector<uint8_t>& missing() const { return missing_; }
  bool has_missing() const { return !missing_.empty(); }
  bool is_missing(int n, int t, int f) const {
    return !missing_.empty() && missing_[FlatIndex(n, t, f)] != 0;
  }

  /// Attaches a missing mask (values().size() entries, or empty to clear).
  void SetMissing(std::vector<uint8_t> missing);

  /// Mean and (population) standard deviation of values over the first
  /// `fraction` of time steps (used to fit the scaler on the train split
  /// only, never on validation/test).
  void MeanStd(double fraction, float* mean, float* std) const;

  /// Temporally contiguous subset [t0, t0+length) — keeps temporal
  /// continuity as required by the task-enrichment guidelines (Fig. 5).
  CtsDataset TemporalSlice(int t0, int length) const;

  /// Subset of sensors with the adjacency re-projected onto them — keeps
  /// spatial correlation structure as required by Fig. 5.
  CtsDataset SelectSensors(const std::vector<int>& sensors) const;

 private:
  size_t FlatIndex(int n, int t, int f) const {
    CHECK_GE(n, 0);
    CHECK_LT(n, num_series_);
    CHECK_GE(t, 0);
    CHECK_LT(t, num_steps_);
    CHECK_GE(f, 0);
    CHECK_LT(f, num_features_);
    return (static_cast<size_t>(n) * num_steps_ + t) * num_features_ + f;
  }

  std::string name_;
  int num_series_;
  int num_steps_;
  int num_features_;
  std::vector<float> values_;
  std::vector<float> adjacency_;
  std::vector<uint8_t> missing_;
};

using CtsDatasetPtr = std::shared_ptr<const CtsDataset>;

}  // namespace autocts

#endif  // REPRO_DATA_CTS_DATASET_H_
