#ifndef REPRO_DATA_CSV_LOADER_H_
#define REPRO_DATA_CSV_LOADER_H_

#include <string>

#include "common/status.h"
#include "data/cts_dataset.h"

namespace autocts {

/// Options for reading a CTS dataset from CSV.
struct CsvOptions {
  /// First row holds column (series) names and is skipped.
  bool has_header = true;
  /// Value separator.
  char delimiter = ',';
  /// Path of an optional N×N adjacency CSV (no header). When empty, the
  /// dataset gets an all-ones adjacency and models rely on their learned
  /// self-adaptive adjacency instead.
  std::string adjacency_path;
  /// When set, empty cells and non-finite values ("nan"/"inf") in the data
  /// matrix become explicit missing entries: the dataset carries a missing
  /// mask (CtsDataset::missing()) and the masked values are imputed with
  /// the last observed value of the same series (series mean before the
  /// first observation). Off by default — strict mode keeps rejecting such
  /// cells with a locatable error, so existing pipelines cannot silently
  /// train on holes. Adjacency parsing is always strict.
  bool allow_missing = false;
};

/// Loads a dataset whose rows are time steps and whose columns are series
/// (the layout PEMS/METR-LA/Electricity CSV exports use). Fails with a
/// descriptive Status on ragged rows, non-numeric cells, or empty input.
StatusOr<CtsDataset> LoadCtsCsv(const std::string& path,
                                const CsvOptions& options = {});

/// Writes a dataset back out in the same layout (time-major, one column
/// per series; a header with the dataset name + series index).
Status SaveCtsCsv(const CtsDataset& dataset, const std::string& path,
                  char delimiter = ',');

}  // namespace autocts

#endif  // REPRO_DATA_CSV_LOADER_H_
