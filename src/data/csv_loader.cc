#include "data/csv_loader.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace autocts {
namespace {

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, delim)) cells.push_back(cell);
  // A trailing delimiter means a final empty cell.
  if (!line.empty() && line.back() == delim) cells.push_back("");
  return cells;
}

StatusOr<float> ParseCell(const std::string& cell, int row, size_t col) {
  char* end = nullptr;
  float v = std::strtof(cell.c_str(), &end);
  // Allow surrounding whitespace; reject anything else.
  while (end != nullptr && (*end == ' ' || *end == '\t' || *end == '\r')) {
    ++end;
  }
  if (cell.empty() || end == cell.c_str() || (end != nullptr && *end != '\0')) {
    return Status::Error("non-numeric cell '" + cell + "' at row " +
                         std::to_string(row) + ", column " +
                         std::to_string(col));
  }
  // strtof happily parses "nan"/"inf" (and overflows to inf); either would
  // poison the z-score normalization and every window cut from the series,
  // so reject at the gate with a locatable message.
  if (!std::isfinite(v)) {
    return Status::Error("non-finite value '" + cell + "' at row " +
                         std::to_string(row) + ", column " +
                         std::to_string(col));
  }
  return v;
}

/// Reads a CSV into row-major floats. When `missing_rows` is non-null,
/// cells that strict mode rejects for being empty or non-finite become
/// missing entries (value 0 placeholder, mask 1) instead of errors;
/// genuinely malformed cells ("abc") still fail either way.
/// True for cells the missing-value mode absorbs: empty / whitespace-only
/// cells and tokens that parse as a non-finite float ("nan", "inf", values
/// that overflowed). Malformed text stays an error in both modes.
bool IsMissingCell(const std::string& cell) {
  size_t i = 0;
  while (i < cell.size() &&
         (cell[i] == ' ' || cell[i] == '\t' || cell[i] == '\r')) {
    ++i;
  }
  if (i == cell.size()) return true;  // Empty or all-whitespace.
  char* end = nullptr;
  float v = std::strtof(cell.c_str(), &end);
  while (end != nullptr && (*end == ' ' || *end == '\t' || *end == '\r')) {
    ++end;
  }
  if (end == cell.c_str() || (end != nullptr && *end != '\0')) return false;
  return !std::isfinite(v);
}

StatusOr<std::vector<std::vector<float>>> ReadMatrix(
    const std::string& path, char delim, bool skip_header,
    std::vector<std::vector<uint8_t>>* missing_rows = nullptr) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open " + path);
  std::vector<std::vector<float>> rows;
  std::string line;
  int row_number = 0;
  bool first = true;
  while (std::getline(in, line)) {
    ++row_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    std::vector<std::string> cells = SplitLine(line, delim);
    std::vector<float> values;
    std::vector<uint8_t> missing;
    values.reserve(cells.size());
    if (missing_rows != nullptr) missing.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      StatusOr<float> v = ParseCell(cells[c], row_number, c);
      if (!v.ok()) {
        if (missing_rows != nullptr && IsMissingCell(cells[c])) {
          values.push_back(0.0f);
          missing.push_back(1);
          continue;
        }
        return v.status();
      }
      values.push_back(v.value());
      if (missing_rows != nullptr) missing.push_back(0);
    }
    if (missing_rows != nullptr) missing_rows->push_back(std::move(missing));
    if (!rows.empty() && values.size() != rows.front().size()) {
      return Status::Error("ragged row " + std::to_string(row_number) +
                           ": expected " +
                           std::to_string(rows.front().size()) + " cells, got " +
                           std::to_string(values.size()));
    }
    rows.push_back(std::move(values));
  }
  if (rows.empty()) return Status::Error(path + " holds no data rows");
  return rows;
}

}  // namespace

StatusOr<CtsDataset> LoadCtsCsv(const std::string& path,
                                const CsvOptions& options) {
  std::vector<std::vector<uint8_t>> missing_rows;
  StatusOr<std::vector<std::vector<float>>> matrix =
      ReadMatrix(path, options.delimiter, options.has_header,
                 options.allow_missing ? &missing_rows : nullptr);
  if (!matrix.ok()) return matrix.status();
  const auto& rows = matrix.value();
  const int t = static_cast<int>(rows.size());
  const int n = static_cast<int>(rows.front().size());
  // CSV is time-major; CtsDataset stores series-major [n][t][f=1].
  std::vector<float> values(static_cast<size_t>(n) * t);
  std::vector<uint8_t> missing;
  if (options.allow_missing) missing.assign(values.size(), 0);
  bool any_missing = false;
  for (int ti = 0; ti < t; ++ti) {
    for (int ni = 0; ni < n; ++ni) {
      values[static_cast<size_t>(ni) * t + ti] =
          rows[static_cast<size_t>(ti)][static_cast<size_t>(ni)];
      if (options.allow_missing &&
          missing_rows[static_cast<size_t>(ti)][static_cast<size_t>(ni)]) {
        missing[static_cast<size_t>(ni) * t + ti] = 1;
        any_missing = true;
      }
    }
  }
  if (any_missing) {
    // Impute holes with last-observed-carry-forward per series so windows
    // cut from the values stay finite; leading holes take the series mean
    // of the observed points (0 if the whole series is missing). The mask
    // still marks them so scalers and masked metrics can skip them.
    for (int ni = 0; ni < n; ++ni) {
      float* v = values.data() + static_cast<size_t>(ni) * t;
      const uint8_t* m = missing.data() + static_cast<size_t>(ni) * t;
      double sum = 0.0;
      int64_t count = 0;
      for (int ti = 0; ti < t; ++ti) {
        if (!m[ti]) {
          sum += v[ti];
          ++count;
        }
      }
      const float fallback =
          count > 0 ? static_cast<float>(sum / static_cast<double>(count))
                    : 0.0f;
      float last = fallback;
      for (int ti = 0; ti < t; ++ti) {
        if (m[ti]) {
          v[ti] = last;
        } else {
          last = v[ti];
        }
      }
    }
  }
  std::vector<float> adjacency;
  if (!options.adjacency_path.empty()) {
    StatusOr<std::vector<std::vector<float>>> adj =
        ReadMatrix(options.adjacency_path, options.delimiter,
                   /*skip_header=*/false);
    if (!adj.ok()) return adj.status();
    if (static_cast<int>(adj.value().size()) != n ||
        static_cast<int>(adj.value().front().size()) != n) {
      return Status::Error("adjacency must be " + std::to_string(n) + "x" +
                           std::to_string(n));
    }
    for (const auto& row : adj.value()) {
      adjacency.insert(adjacency.end(), row.begin(), row.end());
    }
  } else {
    adjacency.assign(static_cast<size_t>(n) * n, 1.0f);
  }
  // Strip directory + extension for the dataset name.
  std::string name = path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  CtsDataset dataset(name, n, t, /*num_features=*/1, std::move(values),
                     std::move(adjacency));
  if (any_missing) dataset.SetMissing(std::move(missing));
  return dataset;
}

Status SaveCtsCsv(const CtsDataset& dataset, const std::string& path,
                  char delimiter) {
  if (dataset.num_features() != 1) {
    return Status::Error("CSV export supports single-feature datasets");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Error("cannot open " + path + " for writing");
  for (int n = 0; n < dataset.num_series(); ++n) {
    if (n > 0) out << delimiter;
    out << dataset.name() << "_" << n;
  }
  out << "\n";
  for (int t = 0; t < dataset.num_steps(); ++t) {
    for (int n = 0; n < dataset.num_series(); ++n) {
      if (n > 0) out << delimiter;
      out << dataset.value(n, t, 0);
    }
    out << "\n";
  }
  if (!out) return Status::Error("write failed for " + path);
  return Status::Ok();
}

}  // namespace autocts
