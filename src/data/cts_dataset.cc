#include "data/cts_dataset.h"

#include <cmath>

namespace autocts {

CtsDataset::CtsDataset(std::string name, int num_series, int num_steps,
                       int num_features, std::vector<float> values,
                       std::vector<float> adjacency)
    : name_(std::move(name)),
      num_series_(num_series),
      num_steps_(num_steps),
      num_features_(num_features),
      values_(std::move(values)),
      adjacency_(std::move(adjacency)) {
  CHECK_GT(num_series_, 0);
  CHECK_GT(num_steps_, 0);
  CHECK_GT(num_features_, 0);
  CHECK_EQ(values_.size(), static_cast<size_t>(num_series_) * num_steps_ *
                               num_features_);
  CHECK_EQ(adjacency_.size(),
           static_cast<size_t>(num_series_) * num_series_);
}

void CtsDataset::SetMissing(std::vector<uint8_t> missing) {
  if (!missing.empty()) CHECK_EQ(missing.size(), values_.size());
  missing_ = std::move(missing);
}

void CtsDataset::MeanStd(double fraction, float* mean, float* std) const {
  int t_max = std::max(1, static_cast<int>(num_steps_ * fraction));
  double sum = 0.0, sq = 0.0;
  int64_t count = 0;
  for (int n = 0; n < num_series_; ++n) {
    for (int t = 0; t < t_max; ++t) {
      for (int f = 0; f < num_features_; ++f) {
        // Missing readings hold placeholder values; letting them into the
        // scaler would bias it toward the imputation constant.
        if (is_missing(n, t, f)) continue;
        double v = value(n, t, f);
        sum += v;
        sq += v * v;
        ++count;
      }
    }
  }
  if (count == 0) {  // Fully masked train split: fall back to identity.
    *mean = 0.0f;
    *std = 1.0f;
    return;
  }
  double mu = sum / static_cast<double>(count);
  double var = std::max(sq / static_cast<double>(count) - mu * mu, 1e-8);
  *mean = static_cast<float>(mu);
  *std = static_cast<float>(std::sqrt(var));
}

CtsDataset CtsDataset::TemporalSlice(int t0, int length) const {
  CHECK_GE(t0, 0);
  CHECK_GT(length, 0);
  CHECK_LE(t0 + length, num_steps_);
  std::vector<float> sliced(static_cast<size_t>(num_series_) * length *
                            num_features_);
  for (int n = 0; n < num_series_; ++n) {
    for (int t = 0; t < length; ++t) {
      for (int f = 0; f < num_features_; ++f) {
        sliced[(static_cast<size_t>(n) * length + t) * num_features_ + f] =
            value(n, t0 + t, f);
      }
    }
  }
  CtsDataset out(name_ + "[t" + std::to_string(t0) + "+" +
                     std::to_string(length) + "]",
                 num_series_, length, num_features_, std::move(sliced),
                 adjacency_);
  if (!missing_.empty()) {
    std::vector<uint8_t> mask(static_cast<size_t>(num_series_) * length *
                              num_features_);
    for (int n = 0; n < num_series_; ++n) {
      for (int t = 0; t < length; ++t) {
        for (int f = 0; f < num_features_; ++f) {
          mask[(static_cast<size_t>(n) * length + t) * num_features_ + f] =
              missing_[FlatIndex(n, t0 + t, f)];
        }
      }
    }
    out.SetMissing(std::move(mask));
  }
  return out;
}

CtsDataset CtsDataset::SelectSensors(const std::vector<int>& sensors) const {
  CHECK(!sensors.empty());
  int m = static_cast<int>(sensors.size());
  std::vector<float> sub_values(static_cast<size_t>(m) * num_steps_ *
                                num_features_);
  for (int i = 0; i < m; ++i) {
    int n = sensors[static_cast<size_t>(i)];
    CHECK_GE(n, 0);
    CHECK_LT(n, num_series_);
    for (int t = 0; t < num_steps_; ++t) {
      for (int f = 0; f < num_features_; ++f) {
        sub_values[(static_cast<size_t>(i) * num_steps_ + t) * num_features_ +
                   f] = value(n, t, f);
      }
    }
  }
  std::vector<float> sub_adj(static_cast<size_t>(m) * m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      sub_adj[static_cast<size_t>(i) * m + j] =
          adjacency(sensors[static_cast<size_t>(i)],
                    sensors[static_cast<size_t>(j)]);
    }
  }
  CtsDataset out(name_ + "[n" + std::to_string(m) + "]", m, num_steps_,
                 num_features_, std::move(sub_values), std::move(sub_adj));
  if (!missing_.empty()) {
    std::vector<uint8_t> mask(static_cast<size_t>(m) * num_steps_ *
                              num_features_);
    for (int i = 0; i < m; ++i) {
      int n = sensors[static_cast<size_t>(i)];
      for (int t = 0; t < num_steps_; ++t) {
        for (int f = 0; f < num_features_; ++f) {
          mask[(static_cast<size_t>(i) * num_steps_ + t) * num_features_ + f] =
              missing_[FlatIndex(n, t, f)];
        }
      }
    }
    out.SetMissing(std::move(mask));
  }
  return out;
}

}  // namespace autocts
