#ifndef REPRO_SUPERNET_SUPERNET_H_
#define REPRO_SUPERNET_SUPERNET_H_

#include <memory>
#include <vector>

#include "common/scale_config.h"
#include "data/task.h"
#include "model/forecaster.h"
#include "model/operators.h"
#include "searchspace/arch_hyper.h"

namespace autocts {

/// Configuration of a supernet search (the fully-supervised baseline
/// framework of paper §2.3, used by AutoCTS and AutoSTG+).
struct SupernetOptions {
  /// Node count C is fixed up front — the limitation AutoCTS+ lifts.
  /// Defaults to 5 so derived arch-hypers stay inside the joint space.
  int num_nodes = 5;
  int num_blocks = 2;
  int hidden_dim = 32;   ///< Paper-scale value; divided by hidden_divisor.
  int output_dim = 64;
  /// Alternating optimization epochs (weights on train, α on validation).
  int epochs = 4;
  int batch_size = 8;
  int batches_per_epoch = 8;
  float weight_lr = 1e-3f;
  float alpha_lr = 3e-3f;
  uint64_t seed = 29;
};

/// A differentiable supernet over one task: every ordered node pair (i, j)
/// carries all |O| candidate operators, combined with softmax(α) weights
/// (Eq. 5); each node sums its incoming mixed edges (Eq. 6).
class Supernet : public Forecaster {
 public:
  Supernet(const SupernetOptions& options, const ForecasterSpec& spec,
           const ScaleConfig& scale);

  Tensor Forward(const Tensor& x) const override;
  std::string name() const override { return "Supernet"; }

  /// Architecture parameters α (one [|O|] vector per node pair, shared
  /// across blocks, as in DARTS/AutoCTS).
  std::vector<Tensor> ArchParameters() const { return alphas_; }

  /// Network weights (everything except α).
  std::vector<Tensor> WeightParameters() const;

  /// Discretizes the supernet: per node keep the top-2 incoming edges by
  /// maximum operator weight, each edge keeping its argmax operator.
  ArchSpec DeriveArch() const;

 private:
  SupernetOptions options_;
  ForecasterSpec spec_;
  int hidden_;
  int output_hidden_;
  int time_pool_;
  int pooled_len_;
  mutable Rng rng_;
  std::unique_ptr<Linear> input_proj_;
  /// operators_[pair][op]; pair index = EdgeIndex(i, j). Shared by blocks?
  /// No — each block owns its operator weights; α is shared.
  std::vector<std::vector<std::vector<std::unique_ptr<StOperator>>>>
      block_ops_;  ///< [block][pair][op]
  std::vector<Tensor> alphas_;  ///< [pair] -> shape {kNumOpTypes}
  std::vector<std::unique_ptr<LayerNorm>> block_norms_;
  std::unique_ptr<Linear> out1_;
  std::unique_ptr<Linear> out2_;

  int EdgeIndex(int i, int j) const;
  int NumPairs() const;
};

/// Runs the full supernet-based search on a task: alternating optimization
/// of weights and α, then architecture derivation. Returns the derived
/// arch paired with the fixed hyperparameters — exactly the
/// "architecture-only, predefined hyperparameters" regime of AutoCTS.
ArchHyper SupernetSearch(const ForecastTask& task,
                         const SupernetOptions& options,
                         const ScaleConfig& scale);

}  // namespace autocts

#endif  // REPRO_SUPERNET_SUPERNET_H_
