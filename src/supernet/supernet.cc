#include "supernet/supernet.h"

#include <algorithm>

#include "model/searched_model.h"
#include "model/trainer.h"
#include "nn/optimizer.h"
#include "tensor/fused.h"
#include "tensor/ops.h"

namespace autocts {

Supernet::Supernet(const SupernetOptions& options, const ForecasterSpec& spec,
                   const ScaleConfig& scale)
    : options_(options), spec_(spec), rng_(options.seed) {
  hidden_ = std::max(4, options.hidden_dim / scale.hidden_divisor);
  output_hidden_ = std::max(8, options.output_dim / scale.hidden_divisor);
  time_pool_ = (spec.input_len + kMaxModelTime - 1) / kMaxModelTime;
  pooled_len_ = spec.input_len / time_pool_;

  input_proj_ = std::make_unique<Linear>(spec.num_features, hidden_, &rng_);
  AddChild(input_proj_.get());

  OperatorContext ctx;
  ctx.num_sensors = spec.num_sensors;
  ctx.hidden_dim = hidden_;
  ctx.adjacency = spec.adjacency;
  ctx.rng = &rng_;

  block_ops_.resize(static_cast<size_t>(options.num_blocks));
  for (int b = 0; b < options.num_blocks; ++b) {
    auto& pairs = block_ops_[static_cast<size_t>(b)];
    pairs.resize(static_cast<size_t>(NumPairs()));
    for (int i = 0; i < options.num_nodes; ++i) {
      for (int j = i + 1; j < options.num_nodes; ++j) {
        auto& ops = pairs[static_cast<size_t>(EdgeIndex(i, j))];
        for (int o = 0; o < kNumOpTypes; ++o) {
          ops.push_back(MakeOperator(static_cast<OpType>(o), ctx, j - 1));
          AddChild(ops.back().get());
        }
      }
    }
  }
  for (int b = 0; b < options.num_blocks; ++b) {
    block_norms_.push_back(std::make_unique<LayerNorm>(hidden_));
    AddChild(block_norms_.back().get());
  }
  // α initialized near zero → near-uniform mixture at the start.
  for (int p = 0; p < NumPairs(); ++p) {
    alphas_.push_back(AddParameter(
        Tensor::Randn({kNumOpTypes}, &rng_, 1e-3f, /*requires_grad=*/true)));
  }

  out1_ = std::make_unique<Linear>(2 * hidden_, output_hidden_, &rng_);
  out2_ = std::make_unique<Linear>(
      output_hidden_, spec.output_len * spec.num_features, &rng_);
  AddChild(out1_.get());
  AddChild(out2_.get());
}

int Supernet::EdgeIndex(int i, int j) const {
  CHECK_LT(i, j);
  // Pairs ordered (0,1),(0,2),(1,2),(0,3),(1,3),(2,3),...
  return j * (j - 1) / 2 + i;
}

int Supernet::NumPairs() const {
  return options_.num_nodes * (options_.num_nodes - 1) / 2;
}

std::vector<Tensor> Supernet::WeightParameters() const {
  std::vector<Tensor> all = Parameters();
  // Everything AddParameter'd directly on this module is an α; children
  // hold the weights. Filter by identity against alphas_.
  std::vector<Tensor> weights;
  for (const Tensor& p : all) {
    bool is_alpha = false;
    for (const Tensor& a : alphas_) {
      if (p.impl() == a.impl()) is_alpha = true;
    }
    if (!is_alpha) weights.push_back(p);
  }
  return weights;
}

Tensor Supernet::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 4);
  const int b = x.dim(0);
  Tensor h = x;
  if (time_pool_ > 1) {
    int keep = pooled_len_ * time_pool_;
    if (keep < spec_.input_len) h = Slice(h, 2, spec_.input_len - keep, keep);
    h = Mean(Reshape(h, {b, spec_.num_sensors, pooled_len_, time_pool_,
                         spec_.num_features}),
             3);
  }
  h = input_proj_->Forward(h);

  for (int blk = 0; blk < options_.num_blocks; ++blk) {
    const auto& pairs = block_ops_[static_cast<size_t>(blk)];
    std::vector<Tensor> nodes(static_cast<size_t>(options_.num_nodes));
    nodes[0] = h;
    for (int j = 1; j < options_.num_nodes; ++j) {
      Tensor acc;
      for (int i = 0; i < j; ++i) {
        const auto& ops = pairs[static_cast<size_t>(EdgeIndex(i, j))];
        // Architecture weights are 1-D, so axis 0 is the last axis and the
        // fused last-axis softmax applies.
        Tensor weights =
            FusedSoftmax(alphas_[static_cast<size_t>(EdgeIndex(i, j))], 1.0f);
        Tensor mixed;
        for (int o = 0; o < kNumOpTypes; ++o) {
          Tensor w = Slice(weights, 0, o, 1);  // [1], broadcasts everywhere
          Tensor term = Mul(ops[static_cast<size_t>(o)]->Forward(
                                nodes[static_cast<size_t>(i)]),
                            w);
          mixed = mixed.defined() ? Add(mixed, term) : term;
        }
        acc = acc.defined() ? Add(acc, mixed) : mixed;
      }
      nodes[static_cast<size_t>(j)] = acc;
    }
    h = block_norms_[static_cast<size_t>(blk)]->Forward(
        h, nodes[static_cast<size_t>(options_.num_nodes - 1)]);
  }

  Tensor last = Slice(h, 2, pooled_len_ - 1, 1);
  Tensor mean = Mean(h, 2, /*keepdim=*/true);
  Tensor feats = Reshape(Concat({last, mean}, 3),
                         {b, spec_.num_sensors, 2 * hidden_});
  Tensor out = out2_->Forward(out1_->Forward(feats, FusedAct::kRelu));
  return Reshape(out,
                 {b, spec_.num_sensors, spec_.output_len, spec_.num_features});
}

ArchSpec Supernet::DeriveArch() const {
  ArchSpec arch;
  arch.num_nodes = options_.num_nodes;
  for (int j = 1; j < options_.num_nodes; ++j) {
    // Rank incoming edges by their strongest operator weight.
    std::vector<std::pair<float, std::pair<int, OpType>>> ranked;
    for (int i = 0; i < j; ++i) {
      const Tensor& alpha = alphas_[static_cast<size_t>(EdgeIndex(i, j))];
      // Softmax is monotone; argmax over raw α works on data directly.
      int best_op = 0;
      float best = alpha.at(0);
      for (int o = 1; o < kNumOpTypes; ++o) {
        if (alpha.at(o) > best) {
          best = alpha.at(o);
          best_op = o;
        }
      }
      ranked.push_back({best, {i, static_cast<OpType>(best_op)}});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    int keep = std::min<int>(2, static_cast<int>(ranked.size()));
    for (int k = 0; k < keep; ++k) {
      arch.edges.push_back(
          {ranked[static_cast<size_t>(k)].second.first, j,
           ranked[static_cast<size_t>(k)].second.second});
    }
  }
  std::sort(arch.edges.begin(), arch.edges.end(),
            [](const ArchEdge& a, const ArchEdge& b) {
              return std::pair(a.dst, a.src) < std::pair(b.dst, b.src);
            });
  return arch;
}

ArchHyper SupernetSearch(const ForecastTask& task,
                         const SupernetOptions& options,
                         const ScaleConfig& scale) {
  ForecasterSpec spec = MakeForecasterSpec(task);
  Supernet supernet(options, spec, scale);
  WindowProvider provider(task);
  Rng rng(options.seed + 1);

  Adam::Options w_opt;
  w_opt.lr = options.weight_lr;
  Adam weight_adam(supernet.WeightParameters(), w_opt);
  Adam::Options a_opt;
  a_opt.lr = options.alpha_lr;
  Adam alpha_adam(supernet.ArchParameters(), a_opt);

  const float mean = provider.mean();
  const float std = provider.std();
  std::vector<int> val_starts = provider.Starts(1, 64);
  auto step = [&](Adam* adam, const WindowBatch& batch) {
    supernet.ZeroGrad();
    Tensor pred = AddScalar(MulScalar(supernet.Forward(batch.x), std), mean);
    Tensor loss = MaeLoss(pred, batch.y);
    loss.Backward();
    adam->Step();
    // Recycle the step's graph storage through the buffer pool.
    loss.ReleaseTape();
  };
  // First-order alternating optimization (DARTS style): weights on the
  // train split, architecture parameters on the validation split.
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (int it = 0; it < options.batches_per_epoch; ++it) {
      step(&weight_adam, provider.SampleTrainBatch(options.batch_size, &rng));
      std::vector<int> vb;
      for (int k = 0; k < options.batch_size; ++k) {
        vb.push_back(rng.Choice(val_starts));
      }
      step(&alpha_adam, provider.MakeBatch(vb));
    }
  }

  ArchHyper ah;
  ah.arch = supernet.DeriveArch();
  ah.hyper.num_blocks = options.num_blocks;
  ah.hyper.num_nodes = options.num_nodes;
  ah.hyper.hidden_dim = options.hidden_dim;
  ah.hyper.output_dim = options.output_dim;
  ah.hyper.output_mode = 0;
  ah.hyper.dropout = 0;
  return ah;
}

}  // namespace autocts
