#include "stream/ring_window.h"

#include "common/check.h"

namespace autocts {
namespace stream {

RingWindow::RingWindow(int num_series, int window_len)
    : num_series_(num_series), window_len_(window_len) {
  CHECK_GT(num_series_, 0);
  CHECK_GT(window_len_, 0);
  ring_.assign(static_cast<size_t>(num_series_) * 2 * window_len_, 0.0f);
  last_.assign(static_cast<size_t>(num_series_), 0.0f);
}

void RingWindow::Push(const float* values, const uint8_t* missing) {
  const int idx = static_cast<int>(ticks_ % window_len_);
  for (int n = 0; n < num_series_; ++n) {
    float v;
    if (missing != nullptr && missing[n] != 0) {
      v = last_[static_cast<size_t>(n)];  // LOCF imputation.
    } else {
      v = values[n];
      last_[static_cast<size_t>(n)] = v;
    }
    float* ring = ring_.data() + static_cast<size_t>(n) * 2 * window_len_;
    ring[idx] = v;
    ring[idx + window_len_] = v;
  }
  ++ticks_;
}

const float* RingWindow::window(int n) const {
  CHECK_GE(n, 0);
  CHECK_LT(n, num_series_);
  CHECK(full()) << "window() before " << window_len_ << " ticks";
  // After Push the newest value sits at idx = (ticks-1) mod P (and at
  // idx + P); the P values ending there start at idx + 1 in the doubled
  // buffer.
  const int start = static_cast<int>((ticks_ - 1) % window_len_) + 1;
  return ring_.data() + static_cast<size_t>(n) * 2 * window_len_ + start;
}

}  // namespace stream
}  // namespace autocts
