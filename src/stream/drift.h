#ifndef REPRO_STREAM_DRIFT_H_
#define REPRO_STREAM_DRIFT_H_

#include <cstdint>

namespace autocts {
namespace stream {

/// Page–Hinkley mean-shift detector over the online one-step forecast error
/// (see DESIGN.md "Streaming & drift-triggered re-search").
///
/// The raw error scale depends on the dataset, so the detector first
/// observes `warmup` ticks and freezes their mean as a baseline; every
/// subsequent error is normalized by it (x_t = e_t / baseline, ≈1 while the
/// model still fits). The Page–Hinkley statistic then accumulates the
/// deviation of x_t above its running mean minus a per-tick slack `delta`:
///
///   m_t  = m_{t-1} + (x_t - mean_t - delta),   m_0 = 0
///   PH_t = m_t - min_{s<=t} m_s
///
/// and triggers when PH_t > lambda. On a stationary stream x_t hovers
/// around its own mean, so the increment averages -delta and m_t drifts
/// downward with the running minimum — PH stays near zero and the detector
/// never fires (the false-positive guard stream_test enforces). A genuine
/// error shift pushes x_t above mean_t persistently, PH grows linearly, and
/// the trigger fires after about lambda / (shift - delta) ticks — detection
/// latency scales inversely with how bad the degradation is.
///
/// The detector is a pure function of the error sequence: no wall clock, no
/// randomness, so every run over the same stream triggers at the same tick.
class PageHinkleyDetector {
 public:
  PageHinkleyDetector(int warmup, float delta, float lambda);

  /// Feeds one online error observation; true when drift triggers this
  /// tick. Never triggers during warm-up. The caller decides whether to
  /// Reset() after a trigger (the engine resets on model swap).
  bool Update(double error);

  /// Forgets everything, including the frozen baseline — the detector
  /// re-warms against the swapped-in model's own error level.
  void Reset();

  bool warmed() const { return warmed_; }
  /// Mean warm-up error the normalization divides by (0 until warmed).
  double baseline() const { return warmed_ ? baseline_ : 0.0; }
  /// Current Page–Hinkley statistic (0 until warmed).
  double statistic() const;
  uint64_t observed() const { return observed_; }

 private:
  int warmup_;
  double delta_;
  double lambda_;

  uint64_t observed_ = 0;
  double warmup_sum_ = 0.0;
  bool warmed_ = false;
  double baseline_ = 1.0;
  uint64_t count_ = 0;   ///< Normalized observations since warm-up.
  double mean_ = 0.0;    ///< Running mean of normalized errors.
  double m_ = 0.0;       ///< Cumulative deviation.
  double min_m_ = 0.0;   ///< Running minimum of m_.
};

}  // namespace stream
}  // namespace autocts

#endif  // REPRO_STREAM_DRIFT_H_
