#ifndef REPRO_STREAM_RING_WINDOW_H_
#define REPRO_STREAM_RING_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autocts {
namespace stream {

/// Fixed-length sliding window over a live multi-series stream, maintained
/// with the doubled-buffer ring trick: each series owns 2P slots and every
/// new value is written at positions `idx` and `idx + P` (idx = tick mod P),
/// so the most recent P values are ALWAYS contiguous at offset `idx + 1`.
/// Advancing the window costs two scalar writes per series instead of the
/// P-element shift (or full window rebuild) a naive sliding window pays —
/// the incremental-update half of the streaming StepPlan path, which copies
/// each series' contiguous window straight into the plan's captured input
/// buffer (see StreamEngine).
///
/// Missing values are imputed at ingest with the series' last observed
/// value (0 before the first observation) — the stream must keep serving
/// through dropouts, never abort. The per-tick missing flags are the
/// caller's to retain; the ring only stores the imputed values.
class RingWindow {
 public:
  RingWindow(int num_series, int window_len);

  /// Ingests one tick: `values[n]` per series, `missing[n]` non-zero when
  /// series n did not report (nullptr = fully observed tick). Missing
  /// entries ignore `values` and repeat the last observation.
  void Push(const float* values, const uint8_t* missing);

  /// True once `window_len` ticks have been ingested.
  bool full() const { return ticks_ >= static_cast<int64_t>(window_len_); }
  int64_t ticks() const { return ticks_; }
  int num_series() const { return num_series_; }
  int window_len() const { return window_len_; }

  /// The last `window_len` (imputed) values of series `n`, oldest first,
  /// contiguous. Valid until the next Push.
  const float* window(int n) const;

  /// Latest imputed value of series `n` (the LOCF state).
  float last(int n) const { return last_[static_cast<size_t>(n)]; }

 private:
  int num_series_;
  int window_len_;
  int64_t ticks_ = 0;
  std::vector<float> ring_;  ///< [num_series][2 * window_len].
  std::vector<float> last_;  ///< Last observed (or imputed) value per series.
};

}  // namespace stream
}  // namespace autocts

#endif  // REPRO_STREAM_RING_WINDOW_H_
