#ifndef REPRO_STREAM_STREAM_H_
#define REPRO_STREAM_STREAM_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/runtime_config.h"
#include "common/status.h"
#include "data/cts_dataset.h"
#include "model/forecaster.h"
#include "stream/drift.h"
#include "stream/ring_window.h"

namespace autocts {
namespace stream {

/// The forecast model a stream serves, bundled with the scaler it was
/// trained under. The bundle swaps as ONE unit: a tick either sees the old
/// (model, mean, std) triple or the new one, never a mix — the "never serve
/// a half-swapped model" guarantee.
struct StreamModel {
  std::shared_ptr<const Forecaster> model;
  float mean = 0.0f;
  float std = 1.0f;
  /// Arch-hyper signature (or family name) for reporting.
  std::string arch;
};

/// Zero-shot re-search hook: given the stream's recent history (missing
/// mask attached when the stream saw dropouts) and a content-derived seed,
/// produce a replacement model trained on that history. Invoked on a
/// background thread; must be self-contained (own ExecContext, no shared
/// mutable state) and return an error Status on failure — the engine keeps
/// serving the old model either way. The indirection keeps src/stream free
/// of the search/serve layers: RecommendationService plugs in the full
/// rank-then-train pipeline, tests plug in cheap trainers.
using Researcher =
    std::function<StatusOr<StreamModel>(const CtsDatasetPtr& recent,
                                        uint64_t seed)>;

/// Knobs of one streaming session. Detector and recovery defaults come
/// from the AUTOCTS_STREAM_* environment via FromConfig.
struct StreamOptions {
  int num_series = 0;  ///< N (required).
  int p = 12;          ///< Input window length.
  /// Row-major N×N adjacency handed to re-search tasks (empty = all-ones).
  std::vector<float> adjacency;
  /// Ticks of raw history retained for re-search (also the re-search
  /// training window). Must comfortably exceed p + q.
  int history = 256;
  /// Seed folded with the history content hash into re-search seeds.
  uint64_t seed = 9001;

  // Drift detector (see drift.h).
  int warmup = 64;
  float ph_delta = 0.05f;
  float ph_lambda = 8.0f;
  /// Rolling window of recent online errors (TickResult::recent_mae).
  int error_window = 128;

  // Recovery policy.
  bool recovery = true;        ///< Master switch (degraded-baseline mode off).
  int research_retries = 2;    ///< Extra attempts after the first failure.
  int research_backoff = 16;   ///< Ticks before a retry (doubles per failure).
  int research_deadline = 32;  ///< Ticks a background re-search may run
                               ///< before the engine collects it (the swap
                               ///< point; the old model serves until then).
  /// Ticks between a drift trigger and the re-search launch. The detector
  /// typically fires within a few ticks of a regime change, when the
  /// retained history still holds mostly pre-drift data — a model trained
  /// on that snapshot learns the OLD regime. Delaying the launch lets the
  /// history ring refill with post-drift ticks first (size it so
  /// delay ≈ history keeps the snapshot fresh). 0 = launch immediately.
  int research_delay = 0;

  /// Detector + recovery knobs from a RuntimeConfig snapshot.
  static StreamOptions FromConfig(const RuntimeConfig& config);
};

/// What one Push produced.
struct TickResult {
  /// Next-step forecast per series (unscaled), made AFTER ingesting this
  /// tick; empty until the window has filled (the first p ticks).
  std::vector<float> forecast;
  /// Masked MAE of the previous tick's forecast against this tick's
  /// observations (missing series skipped); valid when `scored`.
  double error = 0.0;
  bool scored = false;
  /// Mean online error over the last `error_window` scored ticks.
  double recent_mae = 0.0;
  bool drift = false;    ///< Detector fired on this tick.
  bool swapped = false;  ///< A re-searched model was installed this tick.
  uint64_t generation = 0;  ///< Model generation serving this tick.
};

/// Lifetime counters of one engine (mirrored into ServeStats by the
/// serving layer's per-tenant sessions).
struct StreamEngineStats {
  uint64_t ticks = 0;
  uint64_t scored_ticks = 0;
  uint64_t imputed_points = 0;       ///< Missing readings imputed at ingest.
  uint64_t drifts = 0;               ///< Detector triggers.
  uint64_t research_launched = 0;    ///< Background re-search attempts.
  uint64_t research_failures = 0;    ///< Attempts that errored (incl. the
                                     ///< kStreamResearchFail injection).
  uint64_t swap_stalls = 0;          ///< Ready models discarded as stale
                                     ///< (kStreamSwapStall injection).
  uint64_t swaps = 0;                ///< Models installed.
  uint64_t generation = 0;           ///< Current model generation.
};

/// Online forecasting engine: one logical stream of N-series ticks.
///
/// Per tick (Push): ingest into the ring window (missing values imputed
/// last-observation-carried-forward), score the previous forecast against
/// the new observations (masked MAE), feed the drift detector, run the
/// recovery state machine, and forecast the next step — through a captured
/// inference StepPlan whose input buffer the engine updates in place
/// (RingWindow + StepPlan::BeginStepInPlace; falls back to eager execution
/// when plans are disabled, with bit-identical results).
///
/// Recovery: a detector trigger launches the Researcher on a background
/// thread over the retained history. The old model serves every tick while
/// the search runs; after `research_deadline` ticks the engine collects the
/// result and either installs it — atomically, between two ticks — or
/// records the failure and retries with doubled backoff, up to
/// `research_retries` extra attempts, then gives up and keeps the old
/// model. Re-search failures NEVER propagate out of Push.
///
/// Determinism: tick count is the engine's only clock — launch, collect,
/// swap, and backoff all happen at tick boundaries, and collection blocks
/// on the background result at the deadline tick, so the tick at which a
/// swap lands is a pure function of the input stream (given a deterministic
/// Researcher), independent of wall clock, kernel thread count, and plan
/// on/off. stream_test enforces this bit-exactly.
///
/// Threading: Push is not re-entrant (one tick at a time); successive
/// pushes may come from different threads (captured plans are per-thread,
/// keyed by engine id). Destruction waits for any in-flight re-search.
class StreamEngine {
 public:
  /// `initial.model` must match (num_series, p) and must be trained for
  /// the horizon the caller scores; `researcher` may be null only when
  /// options.recovery is false.
  StreamEngine(StreamOptions options, StreamModel initial,
               Researcher researcher);
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Ingests one tick: `values[n]` per series; `missing[n]` non-zero when
  /// series n did not report this tick (nullptr = fully observed).
  TickResult Push(const float* values, const uint8_t* missing = nullptr);

  StreamEngineStats stats() const { return stats_; }
  const StreamOptions& options() const { return options_; }
  uint64_t generation() const { return stats_.generation; }
  const std::string& arch() const { return current_.arch; }

 private:
  enum class RecoveryState { kIdle, kSearching, kBackoff };

  /// Scores prev_forecast_ against this tick's observations.
  void Score(const float* values, const uint8_t* missing, TickResult* out);
  /// Launches (or injects the failure of) one re-search attempt.
  void LaunchResearch();
  /// Collects the in-flight re-search at the deadline tick.
  void CollectResearch(TickResult* out);
  /// One failed attempt: budget bookkeeping, backoff or give up.
  void ResearchAttemptFailed();
  /// Builds the re-search dataset from the retained history.
  CtsDatasetPtr HistorySnapshot() const;
  /// Forecasts the next step from the current ring window.
  void Forecast(TickResult* out);
  /// Writes the scaled [1, N, P, 1] window into `dst` (plan input buffer
  /// or a fresh tensor's storage — the single fill path both share, so
  /// plan and eager inputs are bit-identical).
  void FillScaledWindow(float* dst) const;

  StreamOptions options_;
  StreamModel current_;
  Researcher researcher_;
  const uint64_t engine_id_;  ///< Process-unique; keys per-thread plans.

  RingWindow ring_;
  /// Raw history ring, series-major snapshot source: [history][N] values
  /// plus missing flags, indexed by tick % history.
  std::vector<float> hist_values_;
  std::vector<uint8_t> hist_missing_;

  std::vector<float> prev_forecast_;  ///< Next-step forecast per series.
  bool have_forecast_ = false;

  PageHinkleyDetector detector_;
  std::vector<double> recent_errors_;  ///< Ring of the last error_window.
  size_t recent_head_ = 0;
  size_t recent_count_ = 0;
  double recent_sum_ = 0.0;

  RecoveryState recovery_state_ = RecoveryState::kIdle;
  std::future<StatusOr<StreamModel>> inflight_;
  int ticks_waiting_ = 0;
  int attempts_left_ = 0;
  int backoff_ticks_ = 0;
  int backoff_wait_ = 0;
  int64_t research_ordinal_ = 0;  ///< kStreamResearchFail fault address.
  int64_t swap_ordinal_ = 0;      ///< kStreamSwapStall fault address.

  StreamEngineStats stats_;
};

}  // namespace stream
}  // namespace autocts

#endif  // REPRO_STREAM_STREAM_H_
