#include "stream/drift.h"

#include <algorithm>

#include "common/check.h"

namespace autocts {
namespace stream {

PageHinkleyDetector::PageHinkleyDetector(int warmup, float delta, float lambda)
    : warmup_(warmup), delta_(delta), lambda_(lambda) {
  CHECK_GT(warmup_, 0);
  CHECK_GE(delta_, 0.0);
  CHECK_GT(lambda_, 0.0);
}

bool PageHinkleyDetector::Update(double error) {
  ++observed_;
  if (!warmed_) {
    warmup_sum_ += error;
    if (observed_ >= static_cast<uint64_t>(warmup_)) {
      // Floor the baseline: a perfect warm-up (error 0 on a constant
      // series) must not turn every later error into an infinite ratio.
      baseline_ = std::max(warmup_sum_ / static_cast<double>(warmup_), 1e-9);
      warmed_ = true;
    }
    return false;
  }
  const double x = error / baseline_;
  ++count_;
  mean_ += (x - mean_) / static_cast<double>(count_);
  m_ += x - mean_ - delta_;
  min_m_ = std::min(min_m_, m_);
  return m_ - min_m_ > lambda_;
}

void PageHinkleyDetector::Reset() {
  observed_ = 0;
  warmup_sum_ = 0.0;
  warmed_ = false;
  baseline_ = 1.0;
  count_ = 0;
  mean_ = 0.0;
  m_ = 0.0;
  min_m_ = 0.0;
}

double PageHinkleyDetector::statistic() const {
  return warmed_ ? m_ - min_m_ : 0.0;
}

}  // namespace stream
}  // namespace autocts
