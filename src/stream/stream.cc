#include "stream/stream.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "data/metrics.h"
#include "tensor/plan.h"

namespace autocts {
namespace stream {
namespace {

/// Process-unique engine ids: keys of the per-thread plan cache below. An
/// atomic counter, not the engine address, so an id is never reused — a
/// recycled allocation cannot alias a dead engine's cached plan.
std::atomic<uint64_t> g_engine_ids{1};

/// Per-thread cache of captured stream-forecast plans, keyed by engine id.
/// A StepPlan must replay (and die) on its capture thread, while successive
/// pushes of one engine may come from different threads — so each pushing
/// thread captures its own plan per engine and invalidates it locally when
/// the engine's model generation moves past it. Capped: least-recently-used
/// entries are destroyed (safely: this thread owns them) to bound pinned
/// model memory when one thread serves many streams.
struct TlsPlanEntry {
  std::unique_ptr<StepPlan> plan;
  uint64_t generation = ~uint64_t{0};
  int num_series = 0;
  int p = 0;
  uint64_t last_use = 0;
};

struct TlsStreamPlans {
  std::map<uint64_t, TlsPlanEntry> by_engine;
  uint64_t use_clock = 0;
};

thread_local TlsStreamPlans t_stream_plans;
constexpr size_t kMaxStreamPlansPerThread = 8;

TlsPlanEntry& PlanEntryFor(uint64_t engine_id) {
  TlsStreamPlans& tls = t_stream_plans;
  auto it = tls.by_engine.find(engine_id);
  if (it == tls.by_engine.end()) {
    if (tls.by_engine.size() >= kMaxStreamPlansPerThread) {
      auto victim = tls.by_engine.begin();
      for (auto jt = tls.by_engine.begin(); jt != tls.by_engine.end(); ++jt) {
        if (jt->second.last_use < victim->second.last_use) victim = jt;
      }
      tls.by_engine.erase(victim);
    }
    it = tls.by_engine.emplace(engine_id, TlsPlanEntry{}).first;
    it->second.plan = std::make_unique<StepPlan>();
  }
  it->second.last_use = ++tls.use_clock;
  return it->second;
}

/// FNV-1a over raw float bytes — the content half of re-search seeds, so a
/// re-search over the same history is the same search wherever it runs.
uint64_t HashFloats(const std::vector<float>& v) {
  uint64_t h = 1469598103934665603ull;
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(v.data());
  for (size_t i = 0; i < v.size() * sizeof(float); ++i) {
    h ^= static_cast<uint64_t>(bytes[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

StreamOptions StreamOptions::FromConfig(const RuntimeConfig& config) {
  StreamOptions o;
  o.warmup = config.stream_warmup;
  o.ph_delta = config.stream_ph_delta;
  o.ph_lambda = config.stream_ph_lambda;
  o.error_window = config.stream_error_window;
  o.recovery = config.stream_recovery;
  o.research_retries = config.stream_research_retries;
  o.research_backoff = config.stream_research_backoff;
  o.research_deadline = config.stream_research_deadline;
  o.research_delay = config.stream_research_delay;
  return o;
}

StreamEngine::StreamEngine(StreamOptions options, StreamModel initial,
                           Researcher researcher)
    : options_(std::move(options)),
      current_(std::move(initial)),
      researcher_(std::move(researcher)),
      engine_id_(g_engine_ids.fetch_add(1, std::memory_order_relaxed)),
      ring_(options_.num_series, options_.p),
      detector_(options_.warmup, options_.ph_delta, options_.ph_lambda) {
  CHECK_GT(options_.num_series, 0);
  CHECK_GT(options_.p, 0);
  CHECK_GT(options_.history, options_.p);
  CHECK_GT(options_.error_window, 0);
  CHECK_GT(options_.research_backoff, 0);
  CHECK_GT(options_.research_deadline, 0);
  CHECK_GE(options_.research_delay, 0);
  CHECK(current_.model != nullptr) << "stream engine needs an initial model";
  CHECK(!options_.recovery || researcher_ != nullptr)
      << "recovery enabled but no researcher injected";
  if (!options_.adjacency.empty()) {
    CHECK_EQ(options_.adjacency.size(),
             static_cast<size_t>(options_.num_series) * options_.num_series);
  }
  hist_values_.assign(
      static_cast<size_t>(options_.history) * options_.num_series, 0.0f);
  hist_missing_.assign(hist_values_.size(), 0);
  recent_errors_.assign(static_cast<size_t>(options_.error_window), 0.0);
}

StreamEngine::~StreamEngine() {
  if (inflight_.valid()) inflight_.wait();
}

TickResult StreamEngine::Push(const float* values, const uint8_t* missing) {
  TickResult out;
  const int n = options_.num_series;

  // 1. Score the previous forecast against this tick's observations —
  //    BEFORE ingesting, so the target is the genuinely new data.
  Score(values, missing, &out);

  // 2. Ingest: ring window (LOCF imputation) + raw history ring.
  const int64_t tick = ring_.ticks();  // This tick's index.
  ring_.Push(values, missing);
  float* hrow = hist_values_.data() +
                static_cast<size_t>(tick % options_.history) * n;
  uint8_t* hmiss = hist_missing_.data() +
                   static_cast<size_t>(tick % options_.history) * n;
  for (int i = 0; i < n; ++i) {
    const bool miss = missing != nullptr && missing[i] != 0;
    // History holds the imputed value for missing points (ring_.last was
    // just refreshed), so re-search trains on the same finite series the
    // forecaster saw — the mask still marks the hole.
    hrow[i] = miss ? ring_.last(i) : values[i];
    hmiss[i] = miss ? 1 : 0;
    if (miss) ++stats_.imputed_points;
  }
  ++stats_.ticks;

  // 3. Recovery state machine, clocked purely by ticks. Runs BEFORE drift
  //    detection so a launch tick (either path) never counts toward its own
  //    deadline: a search launched at tick T is collected exactly at tick
  //    T + research_deadline.
  if (recovery_state_ == RecoveryState::kSearching) {
    if (++ticks_waiting_ >= options_.research_deadline) {
      CollectResearch(&out);
    }
  } else if (recovery_state_ == RecoveryState::kBackoff) {
    if (--backoff_wait_ <= 0) LaunchResearch();
  }

  // 4. Drift detection over the online error. A swap tick's error was
  //    scored against the OLD model's forecast — keep it out of the new
  //    model's fresh warm-up.
  if (out.scored && !out.swapped) {
    if (detector_.Update(out.error)) {
      out.drift = true;
      ++stats_.drifts;
      // Re-warm: the statistic stays above lambda once crossed, and after
      // recovery the baseline must re-freeze against the new model's error
      // level anyway.
      detector_.Reset();
      if (options_.recovery && recovery_state_ == RecoveryState::kIdle) {
        attempts_left_ = options_.research_retries + 1;
        backoff_ticks_ = options_.research_backoff;
        if (options_.research_delay > 0) {
          // Collection delay: reuse the backoff countdown so the launch
          // lands at exactly trigger + research_delay, once the history
          // ring has refilled with post-drift ticks.
          recovery_state_ = RecoveryState::kBackoff;
          backoff_wait_ = options_.research_delay;
        } else {
          LaunchResearch();
        }
      }
    }
  }

  // 5. Forecast the next step once the window has filled.
  if (ring_.full()) Forecast(&out);

  out.generation = stats_.generation;
  return out;
}

void StreamEngine::Score(const float* values, const uint8_t* missing,
                         TickResult* out) {
  if (!have_forecast_) return;
  const int n = options_.num_series;
  std::vector<float> target(values, values + n);
  std::vector<uint8_t> skip;
  int observed = n;
  if (missing != nullptr) {
    skip.assign(missing, missing + n);
    for (int i = 0; i < n; ++i) {
      if (skip[static_cast<size_t>(i)] != 0) --observed;
    }
  }
  if (observed == 0) return;  // Fully masked tick: nothing to score.
  out->error = MaskedMae(prev_forecast_, target, skip);
  out->scored = true;
  ++stats_.scored_ticks;

  // Rolling recent-MAE window.
  const size_t cap = recent_errors_.size();
  if (recent_count_ == cap) {
    recent_sum_ -= recent_errors_[recent_head_];
  } else {
    ++recent_count_;
  }
  recent_errors_[recent_head_] = out->error;
  recent_head_ = (recent_head_ + 1) % cap;
  recent_sum_ += out->error;
  out->recent_mae = recent_sum_ / static_cast<double>(recent_count_);
}

void StreamEngine::LaunchResearch() {
  CHECK_GT(attempts_left_, 0);
  --attempts_left_;
  ++stats_.research_launched;
  const int64_t ordinal = research_ordinal_++;
  // Probed on the push thread at launch so an injected failure lands at a
  // deterministic tick regardless of background scheduling.
  if (FaultFires(FaultPoint::kStreamResearchFail, ordinal)) {
    ++stats_.research_failures;
    ResearchAttemptFailed();
    return;
  }
  CtsDatasetPtr snapshot = HistorySnapshot();
  const uint64_t seed =
      options_.seed ^ HashFloats(snapshot->values()) ^ stats_.generation;
  Researcher researcher = researcher_;
  inflight_ = std::async(std::launch::async,
                         [researcher = std::move(researcher), snapshot,
                          seed]() -> StatusOr<StreamModel> {
                           return researcher(snapshot, seed);
                         });
  recovery_state_ = RecoveryState::kSearching;
  ticks_waiting_ = 0;
}

void StreamEngine::CollectResearch(TickResult* out) {
  // Blocking at the deadline tick is the determinism anchor: the swap (or
  // failure) lands at tick trigger+deadline whatever the background
  // thread's actual pace. A slow search costs latency on this one tick,
  // never correctness.
  StatusOr<StreamModel> result = inflight_.get();
  if (!result.ok() || result.value().model == nullptr) {
    ++stats_.research_failures;
    ResearchAttemptFailed();
    return;
  }
  const int64_t swap_ordinal = swap_ordinal_++;
  if (FaultFires(FaultPoint::kStreamSwapStall, swap_ordinal)) {
    // The replacement is treated as having stalled past its deadline: too
    // stale to install. The old bundle keeps serving untouched — there is
    // no partial installation to unwind, the swap below is all-or-nothing.
    ++stats_.swap_stalls;
    ResearchAttemptFailed();
    return;
  }
  // Atomic hot-swap between two ticks: model, scaler, and arch move as one
  // bundle; the next Forecast() sees the complete new state.
  current_ = std::move(result).value();
  ++stats_.swaps;
  ++stats_.generation;
  out->swapped = true;
  recovery_state_ = RecoveryState::kIdle;
  // The new model starts with a clean slate: fresh detector warm-up at its
  // own error level, fresh recent-error window, and no carried-over
  // forecast from the old model.
  detector_.Reset();
  recent_head_ = 0;
  recent_count_ = 0;
  recent_sum_ = 0.0;
  have_forecast_ = false;
}

void StreamEngine::ResearchAttemptFailed() {
  if (attempts_left_ > 0) {
    recovery_state_ = RecoveryState::kBackoff;
    backoff_wait_ = backoff_ticks_;
    backoff_ticks_ *= 2;
  } else {
    // Out of budget: keep the old model, record the degradation, move on.
    // The detector was reset at trigger time, so a persisting regime shift
    // re-triggers after re-warm-up and earns a fresh retry budget.
    recovery_state_ = RecoveryState::kIdle;
  }
}

CtsDatasetPtr StreamEngine::HistorySnapshot() const {
  const int n = options_.num_series;
  const int64_t ticks = ring_.ticks();
  const int h =
      static_cast<int>(std::min<int64_t>(ticks, options_.history));
  CHECK_GT(h, 0);
  const int64_t start = ticks - h;
  std::vector<float> values(static_cast<size_t>(n) * h);
  std::vector<uint8_t> mask(values.size(), 0);
  bool any_missing = false;
  for (int t = 0; t < h; ++t) {
    const size_t row =
        static_cast<size_t>((start + t) % options_.history) * n;
    for (int i = 0; i < n; ++i) {
      values[static_cast<size_t>(i) * h + t] = hist_values_[row + i];
      if (hist_missing_[row + i] != 0) {
        mask[static_cast<size_t>(i) * h + t] = 1;
        any_missing = true;
      }
    }
  }
  std::vector<float> adjacency = options_.adjacency;
  if (adjacency.empty()) {
    adjacency.assign(static_cast<size_t>(n) * n, 1.0f);
  }
  auto data = std::make_shared<CtsDataset>(
      "stream-g" + std::to_string(stats_.generation), n, h, 1,
      std::move(values), std::move(adjacency));
  if (any_missing) data->SetMissing(std::move(mask));
  return data;
}

void StreamEngine::FillScaledWindow(float* dst) const {
  const int n = options_.num_series;
  const int p = options_.p;
  const float inv_std = current_.std != 0.0f ? 1.0f / current_.std : 1.0f;
  for (int i = 0; i < n; ++i) {
    const float* w = ring_.window(i);
    float* d = dst + static_cast<size_t>(i) * p;
    for (int t = 0; t < p; ++t) {
      d[t] = (w[t] - current_.mean) * inv_std;
    }
  }
}

void StreamEngine::Forecast(TickResult* out) {
  const int n = options_.num_series;
  const int p = options_.p;
  NoGradScope no_grad;

  TlsPlanEntry& entry = PlanEntryFor(engine_id_);
  StepPlan& plan = *entry.plan;
  if (entry.generation != stats_.generation || entry.num_series != n ||
      entry.p != p) {
    if (plan.ready()) plan.Invalidate();
    entry.generation = stats_.generation;
    entry.num_series = n;
    entry.p = p;
  }

  const Tensor* y = nullptr;
  Tensor y_eager;
  if (plan::PlansEnabled() && !plan.capture_failed()) {
    if (plan.ready()) {
      // Structurally on the capture thread (thread-local entry); the CHECK
      // enforces plan.h's affinity invariant all the same.
      const Status thread_ok = plan.ValidateReplayThread();
      CHECK(thread_ok.ok()) << thread_ok.message();
      float* dst = plan.input_data(0);
      if (dst != nullptr) {
        // The streaming fast path: refresh the captured input buffer in
        // place from the ring window — no tensor build, no BeginStep copy.
        FillScaledWindow(dst);
        plan.BeginStepInPlace();
      } else {
        // Degenerate capture whose input no op reads; feed it the slow way.
        std::vector<float> xv(static_cast<size_t>(n) * p);
        FillScaledWindow(xv.data());
        plan.BeginStep({Tensor::FromVector({1, n, p, 1}, std::move(xv))});
      }
      plan.RunForward();
      y = &plan.output(0);
    } else {
      std::vector<float> xv(static_cast<size_t>(n) * p);
      FillScaledWindow(xv.data());
      Tensor x = Tensor::FromVector({1, n, p, 1}, std::move(xv));
      const bool capture =
          LiveTapeNodesThisThread() == plan::PinnedTapeNodesThisThread();
      if (capture) plan.BeginCapture({x}, "stream_forecast");
      y_eager = current_.model->Forward(x);
      if (capture) {
        plan.AddOutput(y_eager);
        plan.EndCapture();  // Poisoned captures fall back to eager forever.
      }
      y = &y_eager;
    }
  } else {
    std::vector<float> xv(static_cast<size_t>(n) * p);
    FillScaledWindow(xv.data());
    Tensor x = Tensor::FromVector({1, n, p, 1}, std::move(xv));
    y_eager = current_.model->Forward(x);
    y = &y_eager;
  }

  // [1, N, Q_out, 1] scaled -> unscaled next-step forecast per series.
  const auto& yd = y->data();
  CHECK_EQ(yd.size() % static_cast<size_t>(n), 0u);
  const size_t q_out = yd.size() / static_cast<size_t>(n);
  prev_forecast_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    prev_forecast_[static_cast<size_t>(i)] =
        yd[static_cast<size_t>(i) * q_out] * current_.std + current_.mean;
  }
  have_forecast_ = true;
  out->forecast = prev_forecast_;
}

}  // namespace stream
}  // namespace autocts
