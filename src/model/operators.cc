#include "model/operators.h"

#include <cmath>

#include "tensor/fused.h"
#include "tensor/ops.h"

namespace autocts {
namespace {

/// Heads for the attention operators: H' is small after scaling, so use 2
/// heads when divisible, else 1.
int HeadsFor(int hidden) { return hidden % 2 == 0 ? 2 : 1; }

/// Row-normalizes an [N, N] adjacency tensor into a diffusion support.
Tensor NormalizeSupport(const Tensor& adjacency) {
  CHECK_EQ(adjacency.ndim(), 2);
  int n = adjacency.dim(0);
  CHECK_EQ(adjacency.dim(1), n);
  std::vector<float> data = adjacency.data();
  for (int i = 0; i < n; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) sum += data[static_cast<size_t>(i) * n + j];
    if (sum > 0.0f) {
      for (int j = 0; j < n; ++j) data[static_cast<size_t>(i) * n + j] /= sum;
    }
  }
  return Tensor::FromVector({n, n}, std::move(data));
}

}  // namespace

GdccOp::GdccOp(const OperatorContext& ctx, int dilation)
    : filter_conv_(ctx.hidden_dim, ctx.hidden_dim, /*kernel=*/2, dilation,
                   ctx.rng),
      gate_conv_(ctx.hidden_dim, ctx.hidden_dim, /*kernel=*/2, dilation,
                 ctx.rng) {
  AddChild(&filter_conv_);
  AddChild(&gate_conv_);
}

Tensor GdccOp::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 4);
  const int b = x.dim(0), n = x.dim(1), t = x.dim(2), h = x.dim(3);
  Tensor rows = Reshape(x, {b * n, t, h});
  Tensor y =
      FusedGlu(filter_conv_.Forward(rows), gate_conv_.Forward(rows));
  return Reshape(y, {b, n, t, h});
}

InfTOp::InfTOp(const OperatorContext& ctx)
    : attention_(ctx.hidden_dim, HeadsFor(ctx.hidden_dim), ctx.rng,
                 /*prob_sparse=*/true),
      norm_(ctx.hidden_dim) {
  AddChild(&attention_);
  AddChild(&norm_);
}

Tensor InfTOp::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 4);
  const int b = x.dim(0), n = x.dim(1), t = x.dim(2), h = x.dim(3);
  Tensor rows = Reshape(x, {b * n, t, h});  // Attention along time.
  // Residual add fused into the post-norm (FusedAddLayerNorm).
  Tensor y = norm_.Forward(rows, attention_.Forward(rows));
  return Reshape(y, {b, n, t, h});
}

DgcnOp::DgcnOp(const OperatorContext& ctx, int diffusion_steps,
               int node_embedding_dim)
    : diffusion_steps_(diffusion_steps) {
  CHECK_GT(ctx.num_sensors, 0);
  CHECK(ctx.adjacency.defined());
  support_ = NormalizeSupport(ctx.adjacency);
  node_emb1_ = AddParameter(Tensor::Randn(
      {ctx.num_sensors, node_embedding_dim}, ctx.rng, 0.5f, true));
  node_emb2_ = AddParameter(Tensor::Randn(
      {ctx.num_sensors, node_embedding_dim}, ctx.rng, 0.5f, true));
  // One projection per diffusion step per support (predefined + adaptive),
  // plus the k=0 self term.
  int num_proj = 1 + 2 * diffusion_steps_;
  step_projections_.reserve(static_cast<size_t>(num_proj));
  for (int i = 0; i < num_proj; ++i) {
    step_projections_.push_back(std::make_unique<Linear>(
        ctx.hidden_dim, ctx.hidden_dim, ctx.rng, /*bias=*/i == 0));
    AddChild(step_projections_.back().get());
  }
}

Tensor DgcnOp::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 4);
  const int b = x.dim(0), n = x.dim(1), t = x.dim(2), h = x.dim(3);
  // [B, N, T, H] -> [B, T, N, H] so adjacency multiplies the sensor axis.
  Tensor xt = Transpose(x, 1, 2);
  // Self-adaptive adjacency: softmax(relu(E1 E2ᵀ)) rows.
  Tensor adaptive =
      FusedReluSoftmax(MatMul(node_emb1_, Transpose(node_emb2_, 0, 1)));
  // Diffusion sum taped as ONE FusedAddN node (parts listed in the left-fold
  // order of the Add chain it replaces).
  std::vector<Tensor> parts;
  parts.reserve(static_cast<size_t>(1 + 2 * diffusion_steps_));
  parts.push_back(step_projections_[0]->Forward(xt));
  Tensor z_pre = xt;
  Tensor z_ada = xt;
  size_t proj = 1;
  for (int k = 1; k <= diffusion_steps_; ++k) {
    z_pre = MatMul(support_, z_pre);   // [N,N] x [B,T,N,H]
    parts.push_back(step_projections_[proj++]->Forward(z_pre));
    z_ada = MatMul(adaptive, z_ada);
    parts.push_back(step_projections_[proj++]->Forward(z_ada));
  }
  Tensor y = Relu(FusedAddN(parts));
  (void)b;
  (void)t;
  (void)n;
  (void)h;
  return Transpose(y, 1, 2);
}

InfSOp::InfSOp(const OperatorContext& ctx)
    : attention_(ctx.hidden_dim, HeadsFor(ctx.hidden_dim), ctx.rng,
                 /*prob_sparse=*/false),
      norm_(ctx.hidden_dim) {
  AddChild(&attention_);
  AddChild(&norm_);
}

Tensor InfSOp::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 4);
  const int b = x.dim(0), n = x.dim(1), t = x.dim(2), h = x.dim(3);
  // [B, N, T, H] -> [B, T, N, H] -> rows of sensors per (batch, time).
  Tensor rows = FusedTransposeReshape(x, 1, 2, {b * t, n, h});
  // Residual add fused into the post-norm (FusedAddLayerNorm).
  Tensor y = norm_.Forward(rows, attention_.Forward(rows));
  return FusedReshapeTranspose(y, {b, t, n, h}, 1, 2);
}

std::unique_ptr<StOperator> MakeOperator(OpType type,
                                         const OperatorContext& ctx,
                                         int position) {
  switch (type) {
    case OpType::kIdentity:
      return std::make_unique<IdentityOp>();
    case OpType::kGdcc: {
      int dilation = 1 << (position % 3);  // 1, 2, 4 cycling by position.
      return std::make_unique<GdccOp>(ctx, dilation);
    }
    case OpType::kInfT:
      return std::make_unique<InfTOp>(ctx);
    case OpType::kDgcn:
      return std::make_unique<DgcnOp>(ctx);
    case OpType::kInfS:
      return std::make_unique<InfSOp>(ctx);
  }
  CHECK(false) << "unknown operator";
  return nullptr;
}

}  // namespace autocts
