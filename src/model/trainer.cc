#include "model/trainer.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "common/fault.h"
#include "common/guard.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "tensor/plan.h"

namespace autocts {

ForecasterSpec MakeForecasterSpec(const ForecastTask& task) {
  ForecasterSpec spec;
  spec.num_sensors = task.data->num_series();
  spec.input_len = task.p;
  spec.output_len = task.single_step ? 1 : task.q;
  spec.num_features = task.data->num_features();
  spec.adjacency = Tensor::FromVector(
      {spec.num_sensors, spec.num_sensors}, task.data->adjacency());
  return spec;
}

ModelTrainer::ModelTrainer(const ForecastTask& task, TrainOptions options,
                           ExecContext ctx)
    : task_(task), options_(options), ctx_(ctx), provider_(task) {}

Status ModelTrainer::RunEpochs(Forecaster* model, int epochs, float lr_scale,
                               std::vector<double>* losses) const {
  Rng rng(options_.seed);
  Adam::Options opt;
  opt.lr = options_.lr * lr_scale;
  opt.weight_decay = options_.weight_decay;
  Adam adam(model->Parameters(), opt);
  model->SetTraining(true);
  const float mean = provider_.mean();
  const float std = provider_.std();
  // One captured step plan per RunEpochs call. The first eager step is
  // recorded; every following step replays it (no tape nodes, no shape
  // inference, no pool round-trips). The plan is local on purpose: a
  // NaN-quarantine retry re-enters RunEpochs with a halved lr and naturally
  // recaptures against the reset parameters.
  StepPlan plan;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (int step = 0; step < options_.batches_per_epoch; ++step) {
      WindowBatch batch =
          provider_.SampleTrainBatch(options_.batch_size, &rng);
      std::vector<Tensor> step_inputs = {batch.x, batch.y};
      if (plan.ready() && !plan.MatchesInputs(step_inputs)) plan.Invalidate();
      if (plan.ready()) {
        // ---- Replay path: same observable sequence as the eager step.
        plan.BeginStep(step_inputs);
        plan.RunForward();
        float observed = plan.LossValue();
        if (AnyFaultArmed() && FaultFiresNanLoss()) {
          observed = std::numeric_limits<float>::quiet_NaN();
        }
        // Loss guardrail (see the eager branch). Replay has no per-step
        // tape to release — the graph stays pinned in the plan.
        if (GuardsEnabled() && !std::isfinite(observed)) {
          return Status::Error("non-finite loss at epoch " +
                               std::to_string(epoch) + ", step " +
                               std::to_string(step));
        }
        epoch_loss += observed;
        plan.RunBackward();
        const int64_t skipped_before = adam.skipped_steps();
        adam.Step();
        if (adam.skipped_steps() > skipped_before) {
          return Status::Error("non-finite gradient norm at epoch " +
                               std::to_string(epoch) + ", step " +
                               std::to_string(step));
        }
        continue;
      }
      const bool capture =
          plan::PlansEnabled() && !plan.capture_failed() && !plan.capturing();
      if (capture) plan.BeginCapture(step_inputs, "train_step");
      adam.ZeroGrad();
      Tensor pred_scaled = model->Forward(batch.x);
      // Inverse transform inside the graph; loss on the original scale.
      Tensor pred = AddScalar(MulScalar(pred_scaled, std), mean);
      Tensor loss = MaeLoss(pred, batch.y);
      float observed = loss.item();
      if (AnyFaultArmed() && FaultFiresNanLoss()) {
        observed = std::numeric_limits<float>::quiet_NaN();
      }
      // Loss guardrail: a non-finite loss means the model state is already
      // garbage — stop before the backward pass spreads it further. The
      // tape is released so the aborted step leaks no graph storage.
      if (GuardsEnabled() && !std::isfinite(observed)) {
        if (capture) plan.AbortCapture();
        loss.ReleaseTape();
        return Status::Error("non-finite loss at epoch " +
                             std::to_string(epoch) + ", step " +
                             std::to_string(step));
      }
      epoch_loss += observed;
      loss.Backward();
      const int64_t skipped_before = adam.skipped_steps();
      adam.Step();
      bool pinned_by_plan = false;
      if (capture) {
        plan.SetLoss(loss);
        // On success the plan pins the step graph (closures and buffers are
        // replayed in place), so the tape must NOT be released. A poisoned
        // capture falls through to the normal per-step release and every
        // later step stays eager.
        pinned_by_plan = plan.EndCapture();
      }
      // Sever the step's graph so its buffers go back to the pool now
      // (pred/pred_scaled handles would otherwise keep nodes alive until
      // they are reassigned next iteration).
      if (!pinned_by_plan) loss.ReleaseTape();
      // Gradient guardrail: Adam refused the update because the post-clip
      // gradient norm was non-finite. Parameters are still clean (the skip
      // mutates nothing), but continuing would just repeat the overflow.
      if (adam.skipped_steps() > skipped_before) {
        return Status::Error("non-finite gradient norm at epoch " +
                             std::to_string(epoch) + ", step " +
                             std::to_string(step));
      }
    }
    if (losses != nullptr) {
      losses->push_back(epoch_loss / options_.batches_per_epoch);
    }
  }
  return Status::Ok();
}

TrainReport ModelTrainer::Train(Forecaster* model) const {
  ExecScope scope(ctx_);
  TrainReport report;
  auto start = std::chrono::steady_clock::now();
  report.status =
      RunEpochs(model, options_.epochs, 1.0f, &report.epoch_train_loss);
  report.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!report.status.ok()) return report;  // Metrics would be garbage.
  report.val = Evaluate(*model, 1);
  report.test = Evaluate(*model, 2);
  return report;
}

double ModelTrainer::EarlyValidationError(Forecaster* model,
                                          int k_epochs) const {
  StatusOr<double> r = TryEarlyValidationError(model, k_epochs);
  return r.ok() ? r.value() : std::numeric_limits<double>::quiet_NaN();
}

StatusOr<double> ModelTrainer::TryEarlyValidationError(Forecaster* model,
                                                       int k_epochs,
                                                       float lr_scale) const {
  ExecScope scope(ctx_);
  Status s = RunEpochs(model, k_epochs, lr_scale, nullptr);
  if (!s.ok()) return s;
  double mae = Evaluate(*model, 1).mae;
  if (GuardsEnabled() && !std::isfinite(mae)) {
    return Status::Error("non-finite early-validation MAE");
  }
  return mae;
}

ForecastMetrics ModelTrainer::Evaluate(const Forecaster& model,
                                       int split) const {
  ExecScope scope(ctx_);
  // SetTraining is non-const by design; evaluation flips the flag briefly.
  Forecaster& mutable_model = const_cast<Forecaster&>(model);
  bool was_training = model.training();
  mutable_model.SetTraining(false);
  // Forward-only: skip the autograd tape entirely (values are unchanged).
  NoGradScope no_grad;

  std::vector<int> starts = provider_.Starts(split, options_.max_eval_windows);
  const float mean = provider_.mean();
  const float std = provider_.std();
  const int n = task_.data->num_series();
  const int q_out = task_.single_step ? 1 : task_.q;
  const int f = task_.data->num_features();
  const int per_window = q_out * f;
  const int total_windows = static_cast<int>(starts.size());

  // Sensor-major layout so CORR gets contiguous per-series vectors.
  std::vector<float> preds(static_cast<size_t>(n) * total_windows * per_window);
  std::vector<float> targets(preds.size());

  int done = 0;
  while (done < total_windows) {
    int take = std::min(options_.batch_size, total_windows - done);
    std::vector<int> chunk(starts.begin() + done, starts.begin() + done + take);
    WindowBatch batch = provider_.MakeBatch(chunk);
    Tensor pred = model.Forward(batch.x);
    const auto& pv = pred.data();
    const auto& tv = batch.y.data();
    for (int bi = 0; bi < take; ++bi) {
      for (int ni = 0; ni < n; ++ni) {
        for (int k = 0; k < per_window; ++k) {
          size_t src = (static_cast<size_t>(bi) * n + ni) * per_window + k;
          size_t dst = (static_cast<size_t>(ni) * total_windows + done + bi) *
                           per_window + k;
          preds[dst] = pv[src] * std + mean;
          targets[dst] = tv[src];
        }
      }
    }
    done += take;
  }
  mutable_model.SetTraining(was_training);
  return EvaluateForecast(preds, targets, total_windows * per_window);
}

}  // namespace autocts
