#include "model/searched_model.h"

#include <algorithm>

#include "tensor/fused.h"
#include "tensor/ops.h"

namespace autocts {

StBlock::StBlock(const ArchSpec& arch, int output_mode,
                 const OperatorContext& ctx)
    : arch_(arch), output_mode_(output_mode) {
  operators_.reserve(arch_.edges.size());
  for (size_t e = 0; e < arch_.edges.size(); ++e) {
    operators_.push_back(
        MakeOperator(arch_.edges[e].op, ctx, static_cast<int>(e)));
    AddChild(operators_.back().get());
  }
}

Tensor StBlock::Forward(const Tensor& x) const {
  std::vector<Tensor> nodes(static_cast<size_t>(arch_.num_nodes));
  nodes[0] = x;
  for (int j = 1; j < arch_.num_nodes; ++j) {
    Tensor acc;
    for (size_t e = 0; e < arch_.edges.size(); ++e) {
      const ArchEdge& edge = arch_.edges[e];
      if (edge.dst != j) continue;
      Tensor contribution =
          operators_[e]->Forward(nodes[static_cast<size_t>(edge.src)]);
      acc = acc.defined() ? Add(acc, contribution) : contribution;
    }
    CHECK(acc.defined()) << "node " << j << " has no incoming edge";
    nodes[static_cast<size_t>(j)] = acc;
  }
  if (output_mode_ == 0) {
    return nodes[static_cast<size_t>(arch_.num_nodes - 1)];
  }
  // U=1: sum of all non-input nodes (Graph WaveNet style skip sum),
  // taped as one FusedAddN node instead of an Add chain.
  return FusedAddN(
      std::vector<Tensor>(nodes.begin() + 1, nodes.end()));
}

SearchedModel::SearchedModel(const ArchHyper& ah, const ForecasterSpec& spec,
                             const ScaleConfig& scale, uint64_t seed)
    : arch_hyper_(ah), spec_(spec), rng_(seed) {
  Status valid = ValidateArchHyper(ah);
  CHECK(valid.ok()) << valid.message();
  hidden_ = std::max(4, ah.hyper.hidden_dim / scale.hidden_divisor);
  output_hidden_ = std::max(8, ah.hyper.output_dim / scale.hidden_divisor);
  // Long inputs are average-pooled down to at most kMaxModelTime steps.
  time_pool_ = (spec.input_len + kMaxModelTime - 1) / kMaxModelTime;
  pooled_len_ = spec.input_len / time_pool_;
  CHECK_GT(pooled_len_, 0);

  input_proj_ = std::make_unique<Linear>(spec.num_features, hidden_, &rng_);
  AddChild(input_proj_.get());

  OperatorContext ctx;
  ctx.num_sensors = spec.num_sensors;
  ctx.hidden_dim = hidden_;
  ctx.adjacency = spec.adjacency;
  ctx.rng = &rng_;
  for (int b = 0; b < ah.hyper.num_blocks; ++b) {
    blocks_.push_back(
        std::make_unique<StBlock>(ah.arch, ah.hyper.output_mode, ctx));
    AddChild(blocks_.back().get());
    block_norms_.push_back(std::make_unique<LayerNorm>(hidden_));
    AddChild(block_norms_.back().get());
  }
  block_dropout_ = std::make_unique<DropoutLayer>(
      ah.hyper.dropout == 1 ? 0.1f : 0.0f, &rng_);
  AddChild(block_dropout_.get());

  out1_ = std::make_unique<Linear>(2 * hidden_, output_hidden_, &rng_);
  out2_ = std::make_unique<Linear>(
      output_hidden_, spec.output_len * spec.num_features, &rng_);
  AddChild(out1_.get());
  AddChild(out2_.get());
}

Tensor SearchedModel::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 4);
  const int b = x.dim(0);
  CHECK_EQ(x.dim(1), spec_.num_sensors);
  CHECK_EQ(x.dim(2), spec_.input_len);
  CHECK_EQ(x.dim(3), spec_.num_features);

  Tensor h = x;
  if (time_pool_ > 1) {
    int keep = pooled_len_ * time_pool_;
    if (keep < spec_.input_len) {
      // Drop the oldest steps so the length divides evenly.
      h = Slice(h, 2, spec_.input_len - keep, keep);
    }
    h = Mean(Reshape(h, {b, spec_.num_sensors, pooled_len_, time_pool_,
                         spec_.num_features}),
             3);
  }
  h = input_proj_->Forward(h);  // [B, N, T', H']

  for (size_t b = 0; b < blocks_.size(); ++b) {
    Tensor y = blocks_[b]->Forward(h);
    // Residual backbone with post-norm: stable regardless of how many
    // operators the sampled block stacks. The residual add is fused into
    // the norm (FusedAddLayerNorm).
    h = block_dropout_->Forward(block_norms_[b]->Forward(h, y));
  }

  // Output module: last time step ⊕ temporal mean → MLP → Q_out·F.
  Tensor last = Slice(h, 2, pooled_len_ - 1, 1);       // [B, N, 1, H']
  Tensor mean = Mean(h, 2, /*keepdim=*/true);          // [B, N, 1, H']
  Tensor feats = Reshape(Concat({last, mean}, 3),
                         {b, spec_.num_sensors, 2 * hidden_});
  Tensor out = out2_->Forward(out1_->Forward(feats, FusedAct::kRelu));
  return Reshape(out,
                 {b, spec_.num_sensors, spec_.output_len, spec_.num_features});
}

std::unique_ptr<SearchedModel> BuildSearchedModel(const ArchHyper& ah,
                                                  const ForecasterSpec& spec,
                                                  const ScaleConfig& scale,
                                                  uint64_t seed) {
  return std::make_unique<SearchedModel>(ah, spec, scale, seed);
}

}  // namespace autocts
