#ifndef REPRO_MODEL_OPERATORS_H_
#define REPRO_MODEL_OPERATORS_H_

#include <memory>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "searchspace/arch_hyper.h"
#include "tensor/tensor.h"

namespace autocts {

/// Context shared by all operators of one model instance.
struct OperatorContext {
  int num_sensors = 0;    ///< N of the task's dataset.
  int hidden_dim = 0;     ///< Compiled hidden width H'.
  Tensor adjacency;       ///< [N, N] predefined adjacency (constant).
  Rng* rng = nullptr;     ///< Init + dropout randomness.
};

/// Common interface of the candidate S/T-operators (paper §3.1.1). Every
/// operator maps a latent representation [B, N, T, H'] to the same shape so
/// that DAG nodes can sum their incoming edges (Eq. 6).
class StOperator : public Module {
 public:
  virtual Tensor Forward(const Tensor& x) const = 0;
};

/// Skip connection.
class IdentityOp : public StOperator {
 public:
  Tensor Forward(const Tensor& x) const override { return x; }
};

/// Gated Dilated Causal Convolution (GDCC): tanh(conv) ⊙ sigmoid(conv),
/// the Graph WaveNet temporal operator for short-term dependencies.
class GdccOp : public StOperator {
 public:
  GdccOp(const OperatorContext& ctx, int dilation);

  Tensor Forward(const Tensor& x) const override;

 private:
  CausalConv filter_conv_;
  CausalConv gate_conv_;
};

/// Informer temporal attention (INF-T): ProbSparse multi-head attention
/// along the time axis per sensor, for long-term dependencies.
class InfTOp : public StOperator {
 public:
  explicit InfTOp(const OperatorContext& ctx);

  Tensor Forward(const Tensor& x) const override;

 private:
  MultiHeadAttention attention_;
  LayerNorm norm_;
};

/// Diffusion Graph Convolution (DGCN): K-step diffusion over both the
/// predefined adjacency and a learned self-adaptive adjacency
/// softmax(relu(E1·E2ᵀ)), for static spatial correlations.
class DgcnOp : public StOperator {
 public:
  DgcnOp(const OperatorContext& ctx, int diffusion_steps = 2,
         int node_embedding_dim = 4);

  Tensor Forward(const Tensor& x) const override;

 private:
  int diffusion_steps_;
  Tensor support_;      ///< Row-normalized predefined adjacency, constant.
  Tensor node_emb1_;    ///< [N, d] learnable.
  Tensor node_emb2_;    ///< [N, d] learnable.
  std::vector<std::unique_ptr<Linear>> step_projections_;
};

/// Informer spatial attention (INF-S): attention across sensors per time
/// step, for dynamic spatial correlations.
class InfSOp : public StOperator {
 public:
  explicit InfSOp(const OperatorContext& ctx);

  Tensor Forward(const Tensor& x) const override;

 private:
  MultiHeadAttention attention_;
  LayerNorm norm_;
};

/// Factory used by the ST-block compiler. `position` indexes the edge
/// within its block and sets the GDCC dilation (1, 2, 4, ... cycling).
std::unique_ptr<StOperator> MakeOperator(OpType type,
                                         const OperatorContext& ctx,
                                         int position);

}  // namespace autocts

#endif  // REPRO_MODEL_OPERATORS_H_
