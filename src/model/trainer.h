#ifndef REPRO_MODEL_TRAINER_H_
#define REPRO_MODEL_TRAINER_H_

#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "data/metrics.h"
#include "data/task.h"
#include "model/forecaster.h"

namespace autocts {

/// Knobs for one model-training run (paper §4.1.4: Adam, lr 1e-3, weight
/// decay 1e-4, MAE objective, batch 64 — batch and epochs are scaled).
struct TrainOptions {
  int epochs = 6;
  int batch_size = 8;
  int batches_per_epoch = 10;
  float lr = 1e-3f;
  float weight_decay = 1e-4f;
  /// Evaluation subsamples each split to at most this many windows (0=all).
  int max_eval_windows = 64;
  uint64_t seed = 17;
};

/// Outcome of a training run.
struct TrainReport {
  ForecastMetrics val;
  ForecastMetrics test;
  double train_seconds = 0.0;
  std::vector<double> epoch_train_loss;
  /// OK for a clean run. Non-OK when a guardrail tripped (non-finite loss
  /// or gradient norm): training stopped at that step and the metrics are
  /// meaningless — callers must exclude the run, not compare it.
  Status status;

  bool diverged() const { return !status.ok(); }
};

/// Builds the geometry a Forecaster is compiled against from a task.
ForecasterSpec MakeForecasterSpec(const ForecastTask& task);

/// Trains and evaluates forecasting models on one task. Handles scaling:
/// models operate in z-scored space; predictions are inverse-transformed
/// before the (original-scale) MAE loss and all metrics, as in Graph
/// WaveNet and the paper's setup.
class ModelTrainer {
 public:
  /// `ctx` selects the thread pool the tensor kernels run on; the default
  /// context uses the process-wide pool. Training math is identical for
  /// every pool size (see DESIGN.md "Threading model & determinism").
  ModelTrainer(const ForecastTask& task, TrainOptions options,
               ExecContext ctx = {});

  /// Full training run followed by val/test evaluation. A tripped
  /// guardrail (non-finite loss or gradient norm) stops training and is
  /// reported in TrainReport::status instead of poisoning the metrics.
  TrainReport Train(Forecaster* model) const;

  /// Early-validation metric R' (paper Eq. 22): validation MAE after only
  /// `k_epochs` epochs of training — the cheap label source for AHC/T-AHC
  /// pre-training. Lower is better. Returns quiet NaN when training
  /// diverged (prefer TryEarlyValidationError, which says why).
  double EarlyValidationError(Forecaster* model, int k_epochs) const;

  /// Status-propagating variant of EarlyValidationError: a guardrail trip
  /// becomes a descriptive error instead of a NaN label. `lr_scale`
  /// multiplies the configured learning rate — the quarantine policy's
  /// lr-halved retry passes 0.5 without rebuilding the trainer.
  StatusOr<double> TryEarlyValidationError(Forecaster* model, int k_epochs,
                                           float lr_scale = 1.0f) const;

  /// Metrics of the (already trained) model on split 0/1/2.
  ForecastMetrics Evaluate(const Forecaster& model, int split) const;

  const WindowProvider& provider() const { return provider_; }

 private:
  /// Runs the training loop; non-OK when a guardrail tripped. `lr_scale`
  /// multiplies options_.lr for this run only.
  Status RunEpochs(Forecaster* model, int epochs, float lr_scale,
                   std::vector<double>* losses) const;

  ForecastTask task_;
  TrainOptions options_;
  ExecContext ctx_;
  WindowProvider provider_;
};

}  // namespace autocts

#endif  // REPRO_MODEL_TRAINER_H_
