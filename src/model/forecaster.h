#ifndef REPRO_MODEL_FORECASTER_H_
#define REPRO_MODEL_FORECASTER_H_

#include <string>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace autocts {

/// Common interface of every CTS forecasting model in the repo — searched
/// ST-backbones and the manually designed baselines alike.
///
/// Input is a scaled window batch [B, N, P, F]; output is the scaled
/// prediction [B, N, Q_out, F] (Q_out = Q for multi-step, 1 for
/// single-step). The trainer owns (un)scaling.
class Forecaster : public Module {
 public:
  virtual Tensor Forward(const Tensor& x) const = 0;

  /// Human-readable model family name for tables.
  virtual std::string name() const = 0;
};

/// Geometry every forecaster is compiled against.
struct ForecasterSpec {
  int num_sensors = 0;   ///< N
  int input_len = 12;    ///< P
  int output_len = 12;   ///< Q_out (1 for single-step)
  int num_features = 1;  ///< F
  Tensor adjacency;      ///< [N, N] predefined adjacency (constant).
};

}  // namespace autocts

#endif  // REPRO_MODEL_FORECASTER_H_
