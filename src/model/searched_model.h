#ifndef REPRO_MODEL_SEARCHED_MODEL_H_
#define REPRO_MODEL_SEARCHED_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/scale_config.h"
#include "model/forecaster.h"
#include "model/operators.h"
#include "nn/layers.h"
#include "searchspace/arch_hyper.h"

namespace autocts {

/// One ST-block compiled from an ArchSpec: latent node h_j is the sum of
/// op(h_i) over the block's incoming edges (Eq. 6 with the supernet
/// replaced by the selected operator). Output mode U selects the last node
/// (AutoCTS style) or the sum of all non-input nodes (Graph WaveNet style).
class StBlock : public Module {
 public:
  StBlock(const ArchSpec& arch, int output_mode, const OperatorContext& ctx);

  /// [B, N, T, H'] -> [B, N, T, H'].
  Tensor Forward(const Tensor& x) const;

 private:
  ArchSpec arch_;
  int output_mode_;
  std::vector<std::unique_ptr<StOperator>> operators_;  // One per edge.
};

/// A complete CTS forecasting model compiled from an arch-hyper: input
/// module (time pooling + linear embed), B sequential ST-blocks with
/// residual connections and optional dropout (δ), and an output module
/// (last + mean time features → I' → Q_out·F).
class SearchedModel : public Forecaster {
 public:
  SearchedModel(const ArchHyper& ah, const ForecasterSpec& spec,
                const ScaleConfig& scale, uint64_t seed);

  Tensor Forward(const Tensor& x) const override;
  std::string name() const override { return display_name_; }
  /// Overrides the table label (e.g. "AutoCTS" for a transferred model).
  void set_display_name(std::string name) { display_name_ = std::move(name); }

  const ArchHyper& arch_hyper() const { return arch_hyper_; }
  /// Compiled hidden width H' = H / hidden_divisor (floored at 4).
  int compiled_hidden() const { return hidden_; }
  /// Temporal pooling factor applied by the input module (1 = none).
  int time_pool() const { return time_pool_; }

 private:
  ArchHyper arch_hyper_;
  ForecasterSpec spec_;
  std::string display_name_ = "Searched";
  int hidden_;
  int output_hidden_;
  int time_pool_;
  int pooled_len_;
  mutable Rng rng_;
  std::unique_ptr<Linear> input_proj_;
  std::vector<std::unique_ptr<StBlock>> blocks_;
  /// Post-residual layer norms keep deep sampled backbones (B=6, C=7)
  /// numerically stable on CPU-scale training budgets.
  std::vector<std::unique_ptr<LayerNorm>> block_norms_;
  std::unique_ptr<DropoutLayer> block_dropout_;
  std::unique_ptr<Linear> out1_;
  std::unique_ptr<Linear> out2_;
};

/// Compiles an arch-hyper into a ready-to-train forecasting model.
std::unique_ptr<SearchedModel> BuildSearchedModel(const ArchHyper& ah,
                                                  const ForecasterSpec& spec,
                                                  const ScaleConfig& scale,
                                                  uint64_t seed);

/// Largest time length the compiled models attend over; longer inputs are
/// average-pooled by the input module (documented substitution: keeps the
/// P-168 single-step setting tractable on CPU).
inline constexpr int kMaxModelTime = 48;

}  // namespace autocts

#endif  // REPRO_MODEL_SEARCHED_MODEL_H_
