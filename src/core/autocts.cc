#include "core/autocts.h"

#include <chrono>
#include <sstream>

#include <cstdlib>
#include <filesystem>

#include "common/fault.h"
#include "common/runtime_config.h"
#include "data/synthetic.h"
#include "model/searched_model.h"
#include "shard/shard.h"

namespace autocts {
namespace {

double Seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from)
      .count();
}

/// Fingerprint of everything a Pretrain() run's results depend on: the
/// options that shape RNG consumption or sample labeling, and the task
/// identities. Deliberately excludes num_threads and num_shard_workers
/// (results are invariant to thread and worker-process count, so a
/// checkpoint written at -j1 must resume at 4 shard workers and vice versa)
/// and purely cosmetic knobs.
uint64_t PretrainConfigHash(const AutoCtsOptions& o,
                            const std::vector<ForecastTask>& tasks) {
  std::ostringstream key;
  key << o.seed << '|' << o.use_mlp_encoder << '|' << o.ts2vec.repr_dim << ','
      << o.ts2vec.hidden << '|' << o.ts2vec_pretrain.epochs << ','
      << o.ts2vec_pretrain.batches_per_epoch << ','
      << o.ts2vec_pretrain.batch_size << ','
      << o.ts2vec_pretrain.crop_len << '|' << o.comparator.repr_dim
      << ',' << o.comparator.f1 << ',' << o.comparator.f2 << ','
      << o.comparator.task_aware << '|' << o.collect.seed << ','
      << o.collect.shared_count << ',' << o.collect.random_count << ','
      << o.collect.early_validation_epochs << ',' << o.collect.windows_per_task
      << ',' << o.collect.train.epochs << ',' << o.collect.train.batch_size
      << ',' << o.collect.train.batches_per_epoch << ','
      << o.collect.train.lr << ',' << o.collect.train.seed << '|'
      << o.pretrain.seed << ',' << o.pretrain.epochs << ','
      << o.pretrain.batch_size << ',' << o.pretrain.lr << '|'
      << o.scale.hidden_divisor << ',' << o.scale.batch_size;
  for (const ForecastTask& t : tasks) {
    key << '|' << t.name() << ':' << t.p << ':' << t.q << ':'
        << t.data->num_series() << ':' << t.data->num_steps();
  }
  const std::string bytes = key.str();
  uint64_t h = 1469598103934665603ull;
  for (char c : bytes) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

/// mt19937_64 text round-trip is exact, so a restored stream continues
/// with precisely the draws the interrupted run would have made.
std::string SerializeRngState(Rng* rng) {
  std::ostringstream os;
  os << rng->engine();
  return os.str();
}

Status RestoreRngState(const std::string& state, Rng* rng) {
  std::istringstream is(state);
  is >> rng->engine();
  if (is.fail()) {
    return Status::Error("checkpoint holds an unreadable RNG state");
  }
  return Status::Ok();
}

/// Recomputes PretrainReport's ranking-accuracy summary from a restored
/// bank + comparator (the per-epoch losses of the original run are not
/// checkpointed — only results the rest of the pipeline depends on are).
double BankPairwiseAccuracy(const Comparator& comparator,
                            const std::vector<TaskSampleSet>& data) {
  double correct = 0.0;
  int total = 0;
  for (const TaskSampleSet& set : data) {
    double acc = PairwiseAccuracy(comparator, set);
    int n = 0;
    for (const LabeledSample& s : set.samples) {
      if (s.usable()) ++n;
    }
    int pairs_n = n * (n - 1);
    correct += acc * pairs_n;
    total += pairs_n;
  }
  return total > 0 ? correct / total : 0.0;
}

}  // namespace

AutoCtsOptions AutoCtsOptions::ForScale(const ScaleConfig& scale) {
  AutoCtsOptions o;
  o.scale = scale;
  o.ts2vec.repr_dim = 8;
  o.ts2vec.hidden = 8;
  o.comparator.repr_dim = o.ts2vec.repr_dim;
  o.comparator.gin.embed_dim = 16;
  o.comparator.f1 = 16;
  o.comparator.f2 = 8;
  o.collect.shared_count = scale.samples_per_task;
  o.collect.random_count = scale.samples_per_task;
  o.collect.early_validation_epochs = scale.early_validation_epochs;
  o.collect.windows_per_task = scale.windows_per_task;
  o.collect.train.batch_size = scale.batch_size;
  o.search.ranking_pool = scale.ranking_pool;
  o.search.population = scale.population;
  o.search.top_k = scale.top_k;
  o.pretrain.epochs = 16;
  o.final_train.epochs = scale.train_epochs;
  o.final_train.batch_size = scale.batch_size;
  o.final_train.max_eval_windows = 48;
  return o;
}

AutoCtsPlusPlus::AutoCtsPlusPlus(const AutoCtsOptions& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      rng_(options.seed) {
  CHECK_EQ(options_.comparator.repr_dim, options_.ts2vec.repr_dim)
      << "comparator must consume the encoder's representation size";
  if (options_.use_mlp_encoder) {
    encoder_ = std::make_unique<MlpEncoder>(1, options_.ts2vec.repr_dim,
                                            &rng_);
  } else {
    encoder_ = std::make_unique<Ts2Vec>(1, options_.ts2vec, &rng_);
  }
  comparator_ =
      std::make_unique<Comparator>(options_.comparator, rng_.Fork());
}

PretrainReport AutoCtsPlusPlus::Pretrain(
    const std::vector<ForecastTask>& source_tasks) {
  StatusOr<PretrainReport> report = TryPretrain(source_tasks);
  CHECK(report.ok()) << report.status().message();
  return std::move(report).value();
}

StatusOr<PretrainReport> AutoCtsPlusPlus::TryPretrain(
    const std::vector<ForecastTask>& source_tasks) {
  CHECK(!source_tasks.empty());
  ExecContext ctx = exec_context();
  ExecScope scope(ctx);
  std::unique_ptr<PipelineCheckpoint> ckpt;
  if (!options_.checkpoint.dir.empty()) {
    ckpt = std::make_unique<PipelineCheckpoint>(
        options_.checkpoint.dir,
        PretrainConfigHash(options_, source_tasks));
    if (options_.checkpoint.resume) {
      Status s = ckpt->Load();
      if (!s.ok()) return s;
    }
  }

  // Stage 1: contrastive pre-training of TS2Vec on the source corpora
  // (skipped for the MLP ablation encoder, which is trained implicitly by
  // virtue of being random-projection features — as in the paper's
  // ablation, it simply lacks the semantic pre-training).
  MaybeInjectKill(FaultPoint::kKillBeforeStage, kStageEncoder);
  if (ckpt != nullptr && ckpt->stage_done() >= kStageEncoder) {
    // The encoder's parameters round-trip as raw float bytes and the RNG
    // stream continues from its serialized state, so everything downstream
    // sees exactly what the interrupted run produced.
    if (auto* ts2vec = dynamic_cast<Ts2Vec*>(encoder_.get())) {
      (void)ts2vec;
      Status s = LoadParameters(encoder_.get(), ckpt->EncoderPath());
      if (!s.ok()) return s;
    }
    Status s = RestoreRngState(ckpt->rng_state(), &rng_);
    if (!s.ok()) return s;
  } else {
    if (auto* ts2vec = dynamic_cast<Ts2Vec*>(encoder_.get())) {
      std::vector<CtsDatasetPtr> corpora;
      for (const ForecastTask& t : source_tasks) corpora.push_back(t.data);
      PretrainTs2Vec(ts2vec, corpora, options_.ts2vec_pretrain, &rng_);
      if (ckpt != nullptr) {
        Status s = SaveParameters(*encoder_, ckpt->EncoderPath());
        ckpt->NoteArtifactWrite(s);
        // Committing the stage without its parameter file would make the
        // manifest lie; degrade to "stage not persisted" instead.
        if (s.ok()) ckpt->CommitStage(kStageEncoder, SerializeRngState(&rng_));
      }
    } else if (ckpt != nullptr) {
      // MLP ablation: no training, but the RNG snapshot still marks the
      // stage boundary so later stages resume uniformly.
      ckpt->CommitStage(kStageEncoder, SerializeRngState(&rng_));
    }
  }

  // Stage 2: label collection (Alg. 1 lines 1–7). The checkpoint hook
  // restores already-labeled samples and persists each new fate; the
  // serial draw pass is recomputed every run (cheap and deterministic), so
  // only fates need storing.
  MaybeInjectKill(FaultPoint::kKillBeforeStage, kStageSamples);
  if (options_.num_shard_workers > 1) {
    // Sharded collection: fork worker processes and coordinate them over
    // sockets (DESIGN.md "Sharded pretraining"). Bit-identical to the
    // in-process path below — the branch is a throughput choice, not a
    // semantic one — so it shares the checkpoint hook and config hash.
    const RuntimeConfig& rc = GlobalRuntimeConfig();
    ShardOptions shard;
    shard.num_workers = options_.num_shard_workers;
    shard.worker_threads = options_.num_threads;
    shard.config_hash = PretrainConfigHash(options_, source_tasks);
    shard.heartbeat_ms = rc.shard_heartbeat_ms;
    shard.steal_timeout_ms = rc.shard_steal_timeout_ms;
    const bool scratch = options_.checkpoint.dir.empty();
    if (scratch) {
      // No checkpoint dir to anchor shard banks in: use a throwaway scratch
      // directory (nothing to resume from without a checkpoint anyway).
      std::string tmpl = (std::filesystem::temp_directory_path() /
                          "autocts-shards-XXXXXX")
                             .string();
      if (::mkdtemp(tmpl.data()) == nullptr) {
        return Status::Error("cannot create shard scratch directory");
      }
      shard.dir = tmpl;
    } else {
      shard.dir = options_.checkpoint.dir + "/shards";
    }
    StatusOr<std::vector<TaskSampleSet>> sets =
        ShardedCollectSamples(source_tasks, space_, *encoder_, options_.scale,
                              options_.collect, shard, ctx, ckpt.get());
    if (scratch) {
      std::error_code ec;
      std::filesystem::remove_all(shard.dir, ec);
    }
    if (!sets.ok()) return sets.status();
    collected_ = std::move(sets).value();
  } else {
    collected_ = CollectSamples(source_tasks, space_, *encoder_,
                                options_.scale, options_.collect, ctx,
                                ckpt.get());
  }
  if (ckpt != nullptr && ckpt->stage_done() < kStageSamples) {
    ckpt->CommitStage(kStageSamples);
  }

  // Stage 3: curriculum + dynamic-pairing pre-training (lines 8–18). Not
  // checkpointed mid-epoch: it is the cheap stage and replays bit-exactly
  // from its own seed and the (restored) bank. Pre-training iterates the
  // borrowed preliminary embeddings epoch after epoch, so tell the kernel
  // to read the mapping ahead sequentially — out-of-core banks stream
  // instead of faulting page by page.
  if (ckpt != nullptr && ckpt->bank() != nullptr) {
    ckpt->bank()->AdviseSequentialAll();
  }
  MaybeInjectKill(FaultPoint::kKillBeforeStage, kStageComparator);
  PretrainReport report;
  if (ckpt != nullptr && ckpt->stage_done() >= kStageComparator) {
    Status s = LoadParameters(comparator_.get(), ckpt->ComparatorPath());
    if (!s.ok()) return s;
    comparator_->SetTraining(false);
    report.robustness = ScanSampleBank(collected_);
    report.final_accuracy = BankPairwiseAccuracy(*comparator_, collected_);
  } else {
    report = PretrainComparator(comparator_.get(), collected_,
                                options_.pretrain, ctx);
    if (ckpt != nullptr) {
      Status s = SaveParameters(*comparator_, ckpt->ComparatorPath());
      ckpt->NoteArtifactWrite(s);
      if (s.ok()) ckpt->CommitStage(kStageComparator);
    }
  }
  if (ckpt != nullptr) report.robustness.Merge(ckpt->robustness());
  pretrained_ = true;
  return report;
}

PretrainReport AutoCtsPlusPlus::RetrainWithSamples(
    std::vector<TaskSampleSet> extra) {
  CHECK(pretrained_) << "RetrainWithSamples extends a prior Pretrain()";
  CHECK(!collected_.empty())
      << "no sample bank (checkpoints carry parameters, not samples)";
  collected_.insert(collected_.end(),
                    std::make_move_iterator(extra.begin()),
                    std::make_move_iterator(extra.end()));
  // Fresh comparator, trained on old + new samples: T-AHC training is the
  // cheap step, so retraining from scratch avoids stale-optimum drift.
  comparator_ =
      std::make_unique<Comparator>(options_.comparator, rng_.Fork());
  return PretrainComparator(comparator_.get(), collected_, options_.pretrain,
                            exec_context());
}

Status AutoCtsPlusPlus::SaveCheckpoint(const std::string& path) const {
  Status s = SaveParameters(*encoder_, path + ".encoder");
  if (!s.ok()) return s;
  return SaveParameters(*comparator_, path + ".tahc");
}

Status AutoCtsPlusPlus::LoadCheckpoint(const std::string& path) {
  Status s = LoadParameters(encoder_.get(), path + ".encoder");
  if (!s.ok()) return s;
  s = LoadParameters(comparator_.get(), path + ".tahc");
  if (!s.ok()) return s;
  pretrained_ = true;
  return Status::Ok();
}

Tensor AutoCtsPlusPlus::EmbedTask(const ForecastTask& task) {
  ExecScope scope(exec_context());
  Tensor preliminary = PreliminaryTaskEmbedding(
      *encoder_, task, options_.collect.windows_per_task, &rng_);
  return comparator_->EmbedTask(preliminary).Detach();
}

std::vector<ArchHyper> AutoCtsPlusPlus::RankTopK(const ForecastTask& task) {
  return RankTopK(task, options_.search);
}

std::vector<ArchHyper> AutoCtsPlusPlus::RankTopK(const ForecastTask& task,
                                                 const SearchOptions& search) {
  CHECK(pretrained_) << "call Pretrain() before searching";
  Tensor task_embed = EmbedTask(task);
  EvolutionarySearcher searcher(comparator_.get(), &space_, exec_context());
  // Each task searches its own sampled slice of the joint space: mix the
  // task identity into the seed (the paper samples K_s candidates fresh
  // per task too). Still deterministic for a given task.
  SearchOptions task_search = search;
  uint64_t h = 1469598103934665603ull;
  for (char c : task.name()) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  task_search.seed ^= h;
  return searcher.SearchTopK(task_embed, task_search);
}

SearchOutcome AutoCtsPlusPlus::SearchAndTrain(const ForecastTask& task) {
  CHECK(pretrained_) << "call Pretrain() before searching";
  auto t0 = std::chrono::steady_clock::now();
  Tensor task_embed = EmbedTask(task);
  double embed_seconds = Seconds(t0);

  auto t1 = std::chrono::steady_clock::now();
  EvolutionarySearcher searcher(comparator_.get(), &space_, exec_context());
  std::vector<ArchHyper> top_k =
      searcher.SearchTopK(task_embed, options_.search);
  double rank_seconds = Seconds(t1);

  SearchOutcome outcome =
      TrainTopKAndSelect(top_k, task, options_.final_train, options_.scale,
                         exec_context().WithSeed(rng_.Fork()));
  outcome.embed_seconds = embed_seconds;
  outcome.rank_seconds = rank_seconds;
  outcome.robustness.nonfinite_comparisons = searcher.nonfinite_comparisons();
  return outcome;
}

AutoCtsPlus::AutoCtsPlus(const AutoCtsOptions& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {}

SearchOutcome AutoCtsPlus::SearchAndTrain(const ForecastTask& task) {
  ExecContext ctx{pool_.get(), options_.seed};
  ExecScope scope(ctx);
  Rng rng(options_.seed);
  // Fully supervised: labels come from the *target* task itself — this is
  // what costs GPU hours per task and what AutoCTS++ amortizes away.
  auto t0 = std::chrono::steady_clock::now();
  Comparator::Options comp_opts = options_.comparator;
  comp_opts.task_aware = false;
  Comparator ahc(comp_opts, rng.Fork());
  SampleCollectionOptions collect = options_.collect;
  // AHC needs no task embedding, but CollectSamples computes one; reuse an
  // untrained MLP encoder as a cheap stand-in.
  MlpEncoder stub_encoder(1, options_.ts2vec.repr_dim, &rng);
  std::vector<TaskSampleSet> data = CollectSamples(
      {task}, space_, stub_encoder, options_.scale, collect, ctx);
  PretrainOptions pre = options_.pretrain;
  pre.initial_random_fraction = 1.0f;  // No curriculum on a single task.
  PretrainReport fit = PretrainComparator(&ahc, data, pre, ctx);
  double label_and_fit_seconds = Seconds(t0);

  auto t1 = std::chrono::steady_clock::now();
  EvolutionarySearcher searcher(&ahc, &space_, ctx);
  std::vector<ArchHyper> top_k =
      searcher.SearchTopK(Tensor(), options_.search);
  double rank_seconds = Seconds(t1);

  SearchOutcome outcome = TrainTopKAndSelect(top_k, task, options_.final_train,
                                             options_.scale,
                                             ctx.WithSeed(rng.Fork()));
  // For AutoCTS+ the per-task supervision is part of the search cost.
  outcome.embed_seconds = label_and_fit_seconds;
  outcome.rank_seconds = rank_seconds;
  outcome.robustness.nonfinite_comparisons = searcher.nonfinite_comparisons();
  outcome.robustness.Merge(fit.robustness);
  return outcome;
}

SearchOutcome TrainTopKAndSelect(const std::vector<ArchHyper>& top_k,
                                 const ForecastTask& task,
                                 const TrainOptions& train,
                                 const ScaleConfig& scale,
                                 const ExecContext& ctx) {
  CHECK(!top_k.empty());
  ExecScope scope(ctx);
  auto t0 = std::chrono::steady_clock::now();
  SearchOutcome outcome;
  outcome.top_k = top_k;
  ForecasterSpec spec = MakeForecasterSpec(task);
  ModelTrainer trainer(task, train, ctx);
  // Candidates are independent runs (seed = ctx.seed + i), so they fan out
  // across the pool; the winner is selected serially afterwards with the
  // original first-wins tie-break.
  std::vector<TrainReport> reports(top_k.size());
  ParallelFor(0, static_cast<int64_t>(top_k.size()), 1,
              [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i) {
                  auto model = BuildSearchedModel(
                      top_k[static_cast<size_t>(i)], spec, scale,
                      ctx.seed + static_cast<uint64_t>(i));
                  reports[static_cast<size_t>(i)] =
                      trainer.Train(model.get());
                }
              });
  // Winner selection skips diverged candidates: their metrics are
  // default-initialized (0.0 would always "win") and meaningless. If every
  // candidate diverged, the first one is reported — its non-OK status
  // tells the caller no usable model exists.
  double best_val = 0.0;
  bool first = true;
  for (size_t i = 0; i < top_k.size(); ++i) {
    if (reports[i].diverged()) {
      ++outcome.robustness.diverged_candidates;
      continue;
    }
    if (first || reports[i].val.mae < best_val) {
      first = false;
      best_val = reports[i].val.mae;
      outcome.best = top_k[i];
      outcome.best_report = reports[i];
    }
  }
  if (first) {
    outcome.best = top_k.front();
    outcome.best_report = reports.front();
  }
  outcome.train_seconds = Seconds(t0);
  return outcome;
}

}  // namespace autocts
