#include "core/checkpoint.h"

#include <cmath>
#include <filesystem>
#include <utility>

#include "common/binio.h"
#include "common/crc32.h"
#include "common/fileio.h"

namespace autocts {
namespace {

/// Manifest frame: magic, CRC32 of everything after the CRC field, payload.
constexpr uint64_t kManifestMagic = 0x41435453434b5031ull;  // "ACTSCKP1"

uint64_t Fnv1a(const std::string& bytes, uint64_t h = 1469598103934665603ull) {
  for (char c : bytes) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

PipelineCheckpoint::PipelineCheckpoint(std::string dir, uint64_t config_hash)
    : dir_(std::move(dir)), config_hash_(config_hash) {
  CHECK(!dir_.empty()) << "checkpoint directory must be set";
  // Failure to create the directory is not fatal here: every subsequent
  // write degrades to a counted failure, which is the documented policy.
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string PipelineCheckpoint::ManifestPath() const {
  return dir_ + "/pipeline.manifest";
}

std::string PipelineCheckpoint::EncoderPath() const {
  return dir_ + "/encoder.params";
}

std::string PipelineCheckpoint::ComparatorPath() const {
  return dir_ + "/tahc.params";
}

uint64_t PipelineCheckpoint::SampleSignature(const LabeledSample& sample) {
  return Fnv1a(sample.shared ? "S" : "R",
               Fnv1a(sample.arch_hyper.Signature()));
}

Status PipelineCheckpoint::Load() {
  const std::string path = ManifestPath();
  StatusOr<std::string> contents = ReadFileToString(path);
  // A missing manifest is simply "nothing done yet" — the normal state of
  // a first run launched with --resume for crash-safety.
  if (!contents.ok()) return Status::Ok();
  const std::string& bytes = contents.value();

  FrameReader reader(bytes, 0);
  uint64_t magic = 0;
  uint32_t crc = 0;
  if (!reader.Read(&magic) || !reader.Read(&crc)) {
    return Status::Error("truncated checkpoint manifest " + path);
  }
  if (magic != kManifestMagic) {
    return Status::Error("bad magic in checkpoint manifest " + path);
  }
  const size_t payload_offset = sizeof(uint64_t) + sizeof(uint32_t);
  if (Crc32(bytes.data() + payload_offset, bytes.size() - payload_offset) !=
      crc) {
    return Status::Error("CRC mismatch in checkpoint manifest " + path +
                         " (corrupt or torn file)");
  }

  // Parse into locals: nothing below may touch members until the whole
  // manifest verified, so a rejected file leaves this object unchanged.
  uint64_t config_hash = 0;
  uint32_t stage = 0;
  std::string rng_state;
  uint64_t num_fates = 0;
  if (!reader.Read(&config_hash) || !reader.Read(&stage) ||
      !reader.ReadString(&rng_state) || !reader.Read(&num_fates)) {
    return Status::Error("truncated checkpoint manifest " + path);
  }
  if (config_hash != config_hash_) {
    return Status::Error(
        "checkpoint manifest " + path +
        " was written under a different configuration; refusing to resume");
  }
  if (stage > static_cast<uint32_t>(kStageComparator)) {
    return Status::Error("checkpoint manifest " + path +
                         " records unknown stage " + std::to_string(stage));
  }
  std::map<std::pair<int, int>, SampleFate> fates;
  for (uint64_t i = 0; i < num_fates; ++i) {
    int32_t task = 0, slot = 0, retries = 0;
    uint8_t quarantined = 0;
    SampleFate fate;
    if (!reader.Read(&task) || !reader.Read(&slot) ||
        !reader.Read(&fate.signature) || !reader.Read(&fate.r_prime) ||
        !reader.Read(&quarantined) || !reader.Read(&retries) ||
        !reader.ReadString(&fate.note)) {
      return Status::Error("truncated checkpoint manifest " + path +
                           " (sample record " + std::to_string(i) + ")");
    }
    fate.quarantined = quarantined != 0;
    fate.retries = retries;
    fates[{task, slot}] = std::move(fate);
  }
  if (reader.remaining() != 0) {
    return Status::Error(std::to_string(reader.remaining()) +
                         " trailing bytes in checkpoint manifest " + path);
  }

  stage_done_ = static_cast<int>(stage);
  rng_state_ = std::move(rng_state);
  fates_ = std::move(fates);
  return Status::Ok();
}

void PipelineCheckpoint::WriteManifest() {
  std::string payload;
  AppendPod(&payload, config_hash_);
  AppendPod(&payload, static_cast<uint32_t>(stage_done_));
  AppendString(&payload, rng_state_);
  AppendPod(&payload, static_cast<uint64_t>(fates_.size()));
  for (const auto& [key, fate] : fates_) {
    AppendPod(&payload, static_cast<int32_t>(key.first));
    AppendPod(&payload, static_cast<int32_t>(key.second));
    AppendPod(&payload, fate.signature);
    AppendPod(&payload, fate.r_prime);
    AppendPod(&payload, static_cast<uint8_t>(fate.quarantined ? 1 : 0));
    AppendPod(&payload, static_cast<int32_t>(fate.retries));
    AppendString(&payload, fate.note);
  }
  std::string frame;
  frame.reserve(sizeof(uint64_t) + sizeof(uint32_t) + payload.size());
  AppendPod(&frame, kManifestMagic);
  AppendPod(&frame, Crc32(payload.data(), payload.size()));
  frame += payload;
  ++robustness_.checkpoint_writes;
  if (!AtomicWriteFile(ManifestPath(), frame).ok()) {
    ++robustness_.checkpoint_write_failures;
  }
}

void PipelineCheckpoint::CommitStage(int stage, const std::string& rng_state) {
  if (stage > stage_done_) stage_done_ = stage;
  if (!rng_state.empty()) rng_state_ = rng_state;
  WriteManifest();
}

void PipelineCheckpoint::NoteArtifactWrite(const Status& status) {
  ++robustness_.checkpoint_writes;
  if (!status.ok()) ++robustness_.checkpoint_write_failures;
}

bool PipelineCheckpoint::Restore(int task, int slot, LabeledSample* sample) {
  auto it = fates_.find({task, slot});
  if (it == fates_.end()) return false;
  // The caller pre-filled arch_hyper/shared from its deterministic serial
  // pass; a signature mismatch means the manifest belongs to a different
  // draw (stale file, edited options) — retrain rather than mislabel.
  if (it->second.signature != SampleSignature(*sample)) return false;
  sample->r_prime = it->second.r_prime;
  sample->quarantined = it->second.quarantined;
  sample->retries = it->second.retries;
  sample->note = it->second.note;
  ++robustness_.resumed_samples;
  return true;
}

void PipelineCheckpoint::Commit(int task, int slot,
                                const LabeledSample& sample) {
  SampleFate fate;
  fate.signature = SampleSignature(sample);
  fate.r_prime = sample.r_prime;
  fate.quarantined = sample.quarantined;
  fate.retries = sample.retries;
  fate.note = sample.note;
  fates_[{task, slot}] = std::move(fate);
  WriteManifest();
}

}  // namespace autocts
