#include "core/checkpoint.h"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/binio.h"
#include "common/crc32.h"
#include "common/fileio.h"

namespace autocts {
namespace {

/// Manifest frame: magic, CRC32 of everything after the CRC field, payload.
/// v1 ("ACTSCKP1") inlines every sample fate and is rewritten per commit;
/// v2 ("ACTSCKP2") carries only config hash, stage, and RNG state — fates
/// and embeddings live in the append-only sample bank next to it. v2 is
/// written whenever the bank is enabled; v1 manifests still load (their
/// fates migrate into the bank) and are still written with the bank
/// disabled.
constexpr uint64_t kManifestMagicV1 = 0x41435453434b5031ull;  // "ACTSCKP1"
constexpr uint64_t kManifestMagicV2 = 0x41435453434b5032ull;  // "ACTSCKP2"

}  // namespace

PipelineCheckpoint::PipelineCheckpoint(std::string dir, uint64_t config_hash)
    : dir_(std::move(dir)), config_hash_(config_hash) {
  CHECK(!dir_.empty()) << "checkpoint directory must be set";
  // Failure to create the directory is not fatal here: every subsequent
  // write degrades to a counted failure, which is the documented policy.
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string PipelineCheckpoint::ManifestPath() const {
  return dir_ + "/pipeline.manifest";
}

std::string PipelineCheckpoint::BankPath() const {
  return dir_ + "/pipeline.bank";
}

std::string PipelineCheckpoint::EncoderPath() const {
  return dir_ + "/encoder.params";
}

std::string PipelineCheckpoint::ComparatorPath() const {
  return dir_ + "/tahc.params";
}

uint64_t PipelineCheckpoint::SampleSignature(const LabeledSample& sample) {
  return SampleFateSignature(sample);
}

Status PipelineCheckpoint::Load() {
  const std::string path = ManifestPath();
  StatusOr<std::string> contents = ReadFileToString(path);
  // A missing manifest is simply "nothing done yet" — the normal state of
  // a first run launched with --resume for crash-safety. The bank may
  // still exist (commits land before the first stage commit), so it is
  // opened either way.
  const bool have_manifest = contents.ok();

  // Parse into locals: nothing below may touch members until manifest AND
  // bank verified, so a rejected file leaves this object unchanged.
  uint32_t stage = 0;
  std::string rng_state;
  bool manifest_is_v1 = false;
  std::map<std::pair<int, int>, SampleFate> manifest_fates;
  if (have_manifest) {
    const std::string& bytes = contents.value();
    FrameReader reader(bytes, 0);
    uint64_t magic = 0;
    uint32_t crc = 0;
    if (!reader.Read(&magic) || !reader.Read(&crc)) {
      return Status::Error("truncated checkpoint manifest " + path);
    }
    if (magic != kManifestMagicV1 && magic != kManifestMagicV2) {
      return Status::Error("bad magic in checkpoint manifest " + path);
    }
    manifest_is_v1 = magic == kManifestMagicV1;
    const size_t payload_offset = sizeof(uint64_t) + sizeof(uint32_t);
    if (Crc32(bytes.data() + payload_offset, bytes.size() - payload_offset) !=
        crc) {
      return Status::Error("CRC mismatch in checkpoint manifest " + path +
                           " (corrupt or torn file)");
    }
    uint64_t config_hash = 0;
    if (!reader.Read(&config_hash) || !reader.Read(&stage) ||
        !reader.ReadString(&rng_state)) {
      return Status::Error("truncated checkpoint manifest " + path);
    }
    if (config_hash != config_hash_) {
      return Status::Error(
          "checkpoint manifest " + path +
          " was written under a different configuration; refusing to resume");
    }
    if (stage > static_cast<uint32_t>(kStageComparator)) {
      return Status::Error("checkpoint manifest " + path +
                           " records unknown stage " + std::to_string(stage));
    }
    if (manifest_is_v1) {
      uint64_t num_fates = 0;
      if (!reader.Read(&num_fates)) {
        return Status::Error("truncated checkpoint manifest " + path);
      }
      for (uint64_t i = 0; i < num_fates; ++i) {
        int32_t task = 0, slot = 0, retries = 0;
        uint8_t quarantined = 0;
        SampleFate fate;
        if (!reader.Read(&task) || !reader.Read(&slot) ||
            !reader.Read(&fate.signature) || !reader.Read(&fate.r_prime) ||
            !reader.Read(&quarantined) || !reader.Read(&retries) ||
            !reader.ReadString(&fate.note)) {
          return Status::Error("truncated checkpoint manifest " + path +
                               " (sample record " + std::to_string(i) + ")");
        }
        fate.quarantined = quarantined != 0;
        fate.retries = retries;
        manifest_fates[{task, slot}] = std::move(fate);
      }
    }
    if (reader.remaining() != 0) {
      return Status::Error(std::to_string(reader.remaining()) +
                           " trailing bytes in checkpoint manifest " + path);
    }
  }

  // The bank is authoritative for fates in v2 mode; open it (append mode,
  // recovering a torn tail) before mutating anything so bank corruption is
  // all-or-nothing too.
  std::unique_ptr<SampleBank> bank;
  std::map<std::pair<int, int>, SampleFate> bank_fates;
  std::error_code ec;
  if (SampleBankEnabled() && std::filesystem::exists(BankPath(), ec)) {
    StatusOr<std::unique_ptr<SampleBank>> opened =
        SampleBank::Open(BankPath(), config_hash_, SampleBank::Mode::kAppend);
    if (!opened.ok()) return opened.status();
    bank = std::move(opened).value();
    for (const BankRecord& r : bank->records()) {
      SampleFate fate;
      fate.signature = r.signature;
      fate.r_prime = r.r_prime;
      fate.shared = r.shared;
      fate.quarantined = r.quarantined;
      fate.retries = r.retries;
      fate.note = r.note;
      fate.arch = r.arch;
      bank_fates[{r.task, r.slot}] = std::move(fate);
    }
  }

  if (!have_manifest && bank == nullptr) return Status::Ok();

  stage_done_ = static_cast<int>(stage);
  rng_state_ = std::move(rng_state);
  fates_ = std::move(manifest_fates);
  for (const auto& [key, fate] : bank_fates) fates_[key] = fate;
  bank_ = std::move(bank);

  // One-shot v1 migration: fates that only the legacy manifest knows move
  // into the bank now, so the next resume reads them from the mapping and
  // this manifest can be rewritten fate-free at the next stage commit.
  // Fates the bank already holds (a previous partially-completed
  // migration) are not re-appended.
  if (manifest_is_v1 && SampleBankEnabled()) {
    for (const auto& [key, fate] : fates_) {
      if (bank_fates.find(key) != bank_fates.end()) continue;
      AppendFateToBank(key.first, key.second, fate);
    }
  }
  return Status::Ok();
}

void PipelineCheckpoint::WriteManifest() {
  // With the bank enabled, the manifest carries only stage progress — the
  // fates live in the append-only bank, so this write is O(1) instead of
  // O(samples). The legacy mode inlines every fate (v1 layout).
  const bool v1 = !SampleBankEnabled();
  std::string payload;
  AppendPod(&payload, config_hash_);
  AppendPod(&payload, static_cast<uint32_t>(stage_done_));
  AppendString(&payload, rng_state_);
  if (v1) {
    AppendPod(&payload, static_cast<uint64_t>(fates_.size()));
    for (const auto& [key, fate] : fates_) {
      AppendPod(&payload, static_cast<int32_t>(key.first));
      AppendPod(&payload, static_cast<int32_t>(key.second));
      AppendPod(&payload, fate.signature);
      AppendPod(&payload, fate.r_prime);
      AppendPod(&payload, static_cast<uint8_t>(fate.quarantined ? 1 : 0));
      AppendPod(&payload, static_cast<int32_t>(fate.retries));
      AppendString(&payload, fate.note);
    }
  }
  std::string frame;
  frame.reserve(sizeof(uint64_t) + sizeof(uint32_t) + payload.size());
  AppendPod(&frame, v1 ? kManifestMagicV1 : kManifestMagicV2);
  AppendPod(&frame, Crc32(payload.data(), payload.size()));
  frame += payload;
  ++robustness_.checkpoint_writes;
  if (!AtomicWriteFile(ManifestPath(), frame).ok()) {
    ++robustness_.checkpoint_write_failures;
  }
}

bool PipelineCheckpoint::EnsureBankWriter() {
  if (bank_ != nullptr) return true;
  StatusOr<std::unique_ptr<SampleBank>> opened =
      SampleBank::Open(BankPath(), config_hash_, SampleBank::Mode::kAppend);
  if (!opened.ok()) return false;
  bank_ = std::move(opened).value();
  return true;
}

void PipelineCheckpoint::AppendFateToBank(int task, int slot,
                                          const SampleFate& fate) {
  ++robustness_.checkpoint_writes;
  if (!EnsureBankWriter()) {
    ++robustness_.checkpoint_write_failures;
    return;
  }
  BankRecord record;
  record.task = task;
  record.slot = slot;
  record.signature = fate.signature;
  record.r_prime = fate.r_prime;
  record.shared = fate.shared;
  record.quarantined = fate.quarantined;
  record.retries = fate.retries;
  record.note = fate.note;
  record.arch = fate.arch;
  if (!bank_->AppendRecord(record).ok()) {
    ++robustness_.checkpoint_write_failures;
  }
}

bool PipelineCheckpoint::SameFate(const SampleFate& a, const SampleFate& b) {
  uint64_t ra = 0, rb = 0;
  static_assert(sizeof(ra) == sizeof(a.r_prime));
  std::memcpy(&ra, &a.r_prime, sizeof(ra));
  std::memcpy(&rb, &b.r_prime, sizeof(rb));
  return a.signature == b.signature && ra == rb &&
         a.quarantined == b.quarantined && a.retries == b.retries &&
         a.note == b.note;
}

void PipelineCheckpoint::CommitStage(int stage, const std::string& rng_state) {
  if (stage > stage_done_) stage_done_ = stage;
  if (!rng_state.empty()) rng_state_ = rng_state;
  WriteManifest();
}

void PipelineCheckpoint::NoteArtifactWrite(const Status& status) {
  ++robustness_.checkpoint_writes;
  if (!status.ok()) ++robustness_.checkpoint_write_failures;
}

bool PipelineCheckpoint::Restore(int task, int slot, LabeledSample* sample) {
  auto it = fates_.find({task, slot});
  if (it == fates_.end()) return false;
  // The caller pre-filled arch_hyper/shared from its deterministic serial
  // pass; a signature mismatch means the manifest belongs to a different
  // draw (stale file, edited options) — retrain rather than mislabel.
  if (it->second.signature != SampleSignature(*sample)) return false;
  sample->r_prime = it->second.r_prime;
  sample->quarantined = it->second.quarantined;
  sample->retries = it->second.retries;
  sample->note = it->second.note;
  ++robustness_.resumed_samples;
  return true;
}

void PipelineCheckpoint::Commit(int task, int slot,
                                const LabeledSample& sample) {
  SampleFate fate;
  fate.signature = SampleSignature(sample);
  fate.r_prime = sample.r_prime;
  fate.shared = sample.shared;
  fate.quarantined = sample.quarantined;
  fate.retries = sample.retries;
  fate.note = sample.note;
  fate.arch = sample.arch_hyper.Signature();
  // The collector commits restored samples too; an identical fate is
  // already durable, and skipping it keeps a resumed run's bank file
  // byte-identical to the uninterrupted one instead of growing duplicate
  // records.
  auto it = fates_.find({task, slot});
  if (it != fates_.end() && SameFate(it->second, fate)) return;
  fates_[{task, slot}] = std::move(fate);
  if (!SampleBankEnabled()) {
    WriteManifest();
    return;
  }
  AppendFateToBank(task, slot, fates_[{task, slot}]);
}

bool PipelineCheckpoint::RestoreTaskSection(int task, uint64_t key,
                                            Tensor* preliminary) {
  if (bank_ == nullptr) return false;
  const BankSection* section = bank_->FindSection(task, key);
  if (section == nullptr) return false;
  bank_->AdviseWillNeed(*section);
  *preliminary = bank_->BorrowSection(*section);
  ++robustness_.resumed_task_embeddings;
  return true;
}

void PipelineCheckpoint::CommitTaskSection(int task, uint64_t key,
                                           const ForecastTask& forecast_task,
                                           const Tensor& preliminary) {
  if (!SampleBankEnabled()) return;
  ++robustness_.checkpoint_writes;
  if (!EnsureBankWriter()) {
    ++robustness_.checkpoint_write_failures;
    return;
  }
  Status appended = bank_->AppendSection(
      task, key, forecast_task.name(), preliminary.shape(),
      preliminary.data().data());
  if (!appended.ok()) ++robustness_.checkpoint_write_failures;
}

}  // namespace autocts
