#ifndef REPRO_CORE_CHECKPOINT_H_
#define REPRO_CORE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/guard.h"
#include "common/status.h"
#include "comparator/bank_file.h"
#include "comparator/pretrain.h"

namespace autocts {

/// Where (and whether) the pre-training pipeline persists its progress.
struct CheckpointOptions {
  /// Directory for the manifest and parameter files. Empty disables
  /// checkpointing entirely (the default — zero overhead, zero files).
  std::string dir;
  /// Load an existing manifest before running and skip completed work.
  /// A missing manifest is a fresh start, not an error; a corrupt or
  /// configuration-mismatched one is an error.
  bool resume = false;
};

/// Pipeline progress markers. A stage is recorded only after its outputs
/// (parameters, sample fates) are durably on disk, so "done" always means
/// "reproducible from the files next to the manifest".
enum PipelineStage : int {
  kStageNone = 0,      ///< Nothing persisted yet.
  kStageEncoder = 1,   ///< TS2Vec pre-training done; encoder + RNG saved.
  kStageSamples = 2,   ///< Sample bank fully labeled.
  kStageComparator = 3 ///< T-AHC pre-training done; whole pipeline complete.
};

/// Durable record of one Pretrain() run: a stage manifest (config hash,
/// completed stage, serialized RNG stream), the mmap sample bank holding
/// per-sample fates and preliminary task embeddings, and the encoder /
/// T-AHC parameter files written at stage boundaries. Manifest writes are
/// atomic (tmp + rename) and CRC32-framed; sample fates and embeddings go
/// to the bank as appended CRC-framed records — O(1) IO per sample instead
/// of rewriting the whole manifest — and the bank's torn-tail recovery
/// keeps a kill at any instant from losing completed work.
///
/// With the bank disabled (AUTOCTS_BANK_DISABLE=1) the manifest falls back
/// to the legacy v1 layout that inlines every fate; v1 manifests load
/// either way and migrate their fates into the bank on the next resume.
///
/// Doubles as the SampleBankHook for CollectSamples: Restore() answers
/// per-sample "already labeled?" queries from the loaded state (after
/// verifying the sample's signature still matches), Commit() appends each
/// freshly decided fate, and RestoreTaskSection/CommitTaskSection do the
/// same for preliminary embeddings (restored ones are zero-copy borrows
/// from the bank mapping).
///
/// Write failures never abort the pipeline — they degrade to counters in
/// robustness() (a long run must not die because its checkpoint could not
/// be persisted; it just loses resumability).
class PipelineCheckpoint : public SampleBankHook {
 public:
  /// `config_hash` fingerprints everything the run's determinism depends
  /// on (options + task identities); Load() rejects a manifest written
  /// under a different fingerprint.
  PipelineCheckpoint(std::string dir, uint64_t config_hash);

  std::string ManifestPath() const;
  std::string BankPath() const;
  std::string EncoderPath() const;
  std::string ComparatorPath() const;

  /// Loads and verifies the manifest. All-or-nothing: on any error
  /// (truncation, CRC mismatch, bad magic, config-hash drift) the
  /// in-memory state is left exactly as before the call.
  Status Load();

  /// Highest completed PipelineStage.
  int stage_done() const { return stage_done_; }

  /// Serialized mt19937_64 state captured when kStageEncoder committed
  /// (empty before that).
  const std::string& rng_state() const { return rng_state_; }

  /// Records `stage` (and, when non-empty, the RNG stream snapshot) and
  /// rewrites the manifest. Never lowers a previously recorded stage.
  void CommitStage(int stage, const std::string& rng_state = "");

  /// Folds a parameter-file save outcome into the counters.
  void NoteArtifactWrite(const Status& status);

  /// Signature of a sample as stored in the manifest — a stable hash of
  /// the arch-hyper's canonical string and the shared flag. Exposed so
  /// tests can forge mismatches.
  static uint64_t SampleSignature(const LabeledSample& sample);

  // SampleBankHook:
  bool Restore(int task, int slot, LabeledSample* sample) override;
  void Commit(int task, int slot, const LabeledSample& sample) override;
  bool RestoreTaskSection(int task, uint64_t key,
                          Tensor* preliminary) override;
  void CommitTaskSection(int task, uint64_t key,
                         const ForecastTask& forecast_task,
                         const Tensor& preliminary) override;

  /// The open sample bank (null before Load, with the bank disabled, or
  /// when no bank exists yet). Exposed for streaming hints and inspection.
  const SampleBank* bank() const { return bank_.get(); }

  /// Checkpoint-side counters: manifest writes attempted/failed and
  /// samples restored instead of retrained.
  const RobustnessReport& robustness() const { return robustness_; }

 private:
  /// One labeled sample's persisted fate. `shared` and `arch` only feed
  /// the bank record (inspection); the v1 manifest stores neither.
  struct SampleFate {
    uint64_t signature = 0;
    double r_prime = 0.0;
    bool shared = false;
    bool quarantined = false;
    int retries = 0;
    std::string note;
    std::string arch;
  };

  void WriteManifest();
  /// Lazily opens (creating if needed) the bank for appending. False — and
  /// a null bank_ — when the open/create failed; the caller counts that as
  /// one write failure.
  bool EnsureBankWriter();
  /// Appends one fate to the bank, degrading failures to counters.
  void AppendFateToBank(int task, int slot, const SampleFate& fate);
  /// True when the two fates describe the same decided outcome (bitwise on
  /// r_prime so quarantined NaNs compare equal).
  static bool SameFate(const SampleFate& a, const SampleFate& b);

  std::string dir_;
  uint64_t config_hash_ = 0;
  int stage_done_ = kStageNone;
  std::string rng_state_;
  std::map<std::pair<int, int>, SampleFate> fates_;  ///< Key: (task, slot).
  std::unique_ptr<SampleBank> bank_;
  RobustnessReport robustness_;
};

}  // namespace autocts

#endif  // REPRO_CORE_CHECKPOINT_H_
