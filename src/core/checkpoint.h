#ifndef REPRO_CORE_CHECKPOINT_H_
#define REPRO_CORE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/guard.h"
#include "common/status.h"
#include "comparator/pretrain.h"

namespace autocts {

/// Where (and whether) the pre-training pipeline persists its progress.
struct CheckpointOptions {
  /// Directory for the manifest and parameter files. Empty disables
  /// checkpointing entirely (the default — zero overhead, zero files).
  std::string dir;
  /// Load an existing manifest before running and skip completed work.
  /// A missing manifest is a fresh start, not an error; a corrupt or
  /// configuration-mismatched one is an error.
  bool resume = false;
};

/// Pipeline progress markers. A stage is recorded only after its outputs
/// (parameters, sample fates) are durably on disk, so "done" always means
/// "reproducible from the files next to the manifest".
enum PipelineStage : int {
  kStageNone = 0,      ///< Nothing persisted yet.
  kStageEncoder = 1,   ///< TS2Vec pre-training done; encoder + RNG saved.
  kStageSamples = 2,   ///< Sample bank fully labeled.
  kStageComparator = 3 ///< T-AHC pre-training done; whole pipeline complete.
};

/// Durable record of one Pretrain() run: a stage manifest (config hash,
/// completed stage, serialized RNG stream, per-sample completion map with
/// label fates) plus the encoder / T-AHC parameter files written at stage
/// boundaries. All writes are atomic (tmp + rename) and CRC32-framed, so a
/// kill at any instant leaves either the previous or the next complete
/// version on disk — never a torn one.
///
/// Doubles as the SampleBankHook for CollectSamples: Restore() answers
/// per-sample "already labeled?" queries from the loaded manifest (after
/// verifying the sample's signature still matches), and Commit() folds each
/// freshly decided fate back into the manifest.
///
/// Write failures never abort the pipeline — they degrade to counters in
/// robustness() (a long run must not die because its checkpoint could not
/// be persisted; it just loses resumability).
class PipelineCheckpoint : public SampleBankHook {
 public:
  /// `config_hash` fingerprints everything the run's determinism depends
  /// on (options + task identities); Load() rejects a manifest written
  /// under a different fingerprint.
  PipelineCheckpoint(std::string dir, uint64_t config_hash);

  std::string ManifestPath() const;
  std::string EncoderPath() const;
  std::string ComparatorPath() const;

  /// Loads and verifies the manifest. All-or-nothing: on any error
  /// (truncation, CRC mismatch, bad magic, config-hash drift) the
  /// in-memory state is left exactly as before the call.
  Status Load();

  /// Highest completed PipelineStage.
  int stage_done() const { return stage_done_; }

  /// Serialized mt19937_64 state captured when kStageEncoder committed
  /// (empty before that).
  const std::string& rng_state() const { return rng_state_; }

  /// Records `stage` (and, when non-empty, the RNG stream snapshot) and
  /// rewrites the manifest. Never lowers a previously recorded stage.
  void CommitStage(int stage, const std::string& rng_state = "");

  /// Folds a parameter-file save outcome into the counters.
  void NoteArtifactWrite(const Status& status);

  /// Signature of a sample as stored in the manifest — a stable hash of
  /// the arch-hyper's canonical string and the shared flag. Exposed so
  /// tests can forge mismatches.
  static uint64_t SampleSignature(const LabeledSample& sample);

  // SampleBankHook:
  bool Restore(int task, int slot, LabeledSample* sample) override;
  void Commit(int task, int slot, const LabeledSample& sample) override;

  /// Checkpoint-side counters: manifest writes attempted/failed and
  /// samples restored instead of retrained.
  const RobustnessReport& robustness() const { return robustness_; }

 private:
  /// One labeled sample's persisted fate.
  struct SampleFate {
    uint64_t signature = 0;
    double r_prime = 0.0;
    bool quarantined = false;
    int retries = 0;
    std::string note;
  };

  void WriteManifest();

  std::string dir_;
  uint64_t config_hash_ = 0;
  int stage_done_ = kStageNone;
  std::string rng_state_;
  std::map<std::pair<int, int>, SampleFate> fates_;  ///< Key: (task, slot).
  RobustnessReport robustness_;
};

}  // namespace autocts

#endif  // REPRO_CORE_CHECKPOINT_H_
