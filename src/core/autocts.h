#ifndef REPRO_CORE_AUTOCTS_H_
#define REPRO_CORE_AUTOCTS_H_

#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/scale_config.h"
#include "comparator/pretrain.h"
#include "core/checkpoint.h"
#include "nn/serialize.h"
#include "search/evolutionary.h"

namespace autocts {

/// Everything configurable about the framework, with scaled defaults that
/// mirror the paper's setup (§4.1.4).
struct AutoCtsOptions {
  ScaleConfig scale;
  Ts2Vec::Options ts2vec;
  Ts2VecPretrainOptions ts2vec_pretrain;
  Comparator::Options comparator;
  SampleCollectionOptions collect;
  PretrainOptions pretrain;
  SearchOptions search;
  /// Full training of the final top-K candidates.
  TrainOptions final_train;
  /// Ablation (§4.2.3, "w/o TS2Vec"): encode tasks with a plain MLP.
  bool use_mlp_encoder = false;
  /// Pipeline checkpoint/resume (see PipelineCheckpoint). Off by default.
  CheckpointOptions checkpoint;
  uint64_t seed = 1234;
  /// Execution lanes for tensor kernels and coarse-grained phases (sample
  /// collection, ranking, top-K training). `<= 0` means hardware
  /// concurrency; `1` reproduces the single-threaded behavior bit-for-bit
  /// — and so does every other value, by the determinism contract in
  /// DESIGN.md "Threading model & determinism".
  int num_threads = 0;
  /// Sample-collection worker *processes* (fork/exec-free fork model; see
  /// DESIGN.md "Sharded pretraining"). `<= 1` collects in-process; larger
  /// values fan the source tasks out over that many forked workers via the
  /// socket coordinator — the merged sample bank and the pretrained
  /// comparator are bit-identical either way. Excluded from the checkpoint
  /// config hash, like num_threads.
  int num_shard_workers = 0;

  /// Defaults consistent across sub-configs for a given scale preset.
  static AutoCtsOptions ForScale(const ScaleConfig& scale);
};

/// Outcome of one search-and-train run on a task.
struct SearchOutcome {
  std::vector<ArchHyper> top_k;   ///< Ranked candidates, best-ranked first.
  ArchHyper best;                 ///< Winner by validation accuracy.
  TrainReport best_report;        ///< Val/test metrics of the winner.
  double embed_seconds = 0.0;     ///< Task-embedding phase (Fig. 7).
  double rank_seconds = 0.0;      ///< Ranking/evolution phase (Fig. 7).
  double train_seconds = 0.0;     ///< Final top-K training phase (Fig. 7).
  /// What the guardrails absorbed during this search: non-finite
  /// comparator logits and diverged final-candidate trainings.
  RobustnessReport robustness;
};

/// AutoCTS++: zero-shot joint neural architecture and hyperparameter
/// search. Pre-train T-AHC once on a collection of source tasks; then any
/// unseen task costs only minutes (embedding + comparator-guided ranking +
/// training of the few top-ranked candidates).
class AutoCtsPlusPlus {
 public:
  explicit AutoCtsPlusPlus(const AutoCtsOptions& options);

  /// Pre-trains the TS2Vec encoder (contrastive) and T-AHC (Alg. 1) on the
  /// source tasks. Must be called once before any search. CHECK-fails on
  /// checkpoint errors; prefer TryPretrain when options_.checkpoint is set.
  PretrainReport Pretrain(const std::vector<ForecastTask>& source_tasks);

  /// Status-returning Pretrain. When `options().checkpoint.dir` is set, the
  /// three pipeline stages (TS2Vec, sample collection, T-AHC) persist their
  /// progress there after every completed unit of work; with
  /// `checkpoint.resume` also set, completed work is restored instead of
  /// recomputed and the run continues from the first unfinished sample.
  /// The resumed run is bit-identical to an uninterrupted one: same sample
  /// bank, same parameters, same downstream search results, at any thread
  /// count (see DESIGN.md "Fault tolerance & checkpointing"). Errors only
  /// on unusable checkpoints (corrupt manifest, config drift, unreadable
  /// parameter files) — checkpoint *write* failures degrade to counters in
  /// the report's RobustnessReport.
  StatusOr<PretrainReport> TryPretrain(
      const std::vector<ForecastTask>& source_tasks);

  /// Re-trains T-AHC on the union of the previously collected samples and
  /// `extra` — the sample-reuse workflow of paper §3.1.1 ("the samples
  /// collected before can be reused when retraining T-AHC", e.g. after
  /// extending the operator set or adding source tasks). Requires a prior
  /// Pretrain() in this process (loaded checkpoints carry no sample bank).
  PretrainReport RetrainWithSamples(std::vector<TaskSampleSet> extra);

  /// The labeled sample bank from the last Pretrain() call.
  const std::vector<TaskSampleSet>& collected_samples() const {
    return collected_;
  }

  /// Zero-shot search on an unseen task (Alg. 2) followed by full training
  /// of the top-K candidates; returns the validation winner.
  SearchOutcome SearchAndTrain(const ForecastTask& task);

  /// Task vector E' of an unseen task (embedding phase only).
  Tensor EmbedTask(const ForecastTask& task);

  /// Ranking phase only: top-K arch-hypers without training them.
  std::vector<ArchHyper> RankTopK(const ForecastTask& task);
  std::vector<ArchHyper> RankTopK(const ForecastTask& task,
                                  const SearchOptions& search);

  /// Persists the pre-trained encoder + T-AHC parameters; LoadCheckpoint
  /// restores them into an identically configured instance and marks it
  /// pretrained. Lets one pre-training run serve many search sessions.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

  Comparator* comparator() { return comparator_.get(); }
  TaskEncoder* encoder() { return encoder_.get(); }
  const JointSearchSpace& space() const { return space_; }
  const AutoCtsOptions& options() const { return options_; }
  bool pretrained() const { return pretrained_; }
  /// The execution context (pool + base seed) this instance runs on.
  ExecContext exec_context() const { return ExecContext{pool_.get(), options_.seed}; }

 private:
  AutoCtsOptions options_;
  std::unique_ptr<ThreadPool> pool_;  ///< Sized from options_.num_threads.
  Rng rng_;
  JointSearchSpace space_;
  std::unique_ptr<TaskEncoder> encoder_;
  std::unique_ptr<Comparator> comparator_;
  std::vector<TaskSampleSet> collected_;
  bool pretrained_ = false;
};

/// AutoCTS+ (the SIGMOD 2023 preliminary system): fully-supervised joint
/// search for a single given task — collects (ah, R') samples on that very
/// task, trains a task-blind AHC on them, and searches. No transfer.
class AutoCtsPlus {
 public:
  explicit AutoCtsPlus(const AutoCtsOptions& options);

  SearchOutcome SearchAndTrain(const ForecastTask& task);

 private:
  AutoCtsOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  JointSearchSpace space_;
};

/// Trains every candidate in `top_k` fully on the task and returns the
/// outcome with the validation winner. Shared by both frameworks and the
/// benchmark harnesses. Candidates train concurrently on `ctx`'s pool
/// (model seeds derive from `ctx.seed` by candidate index, so the outcome
/// is identical for any pool size); the winner is picked serially with
/// first-wins tie-breaking.
SearchOutcome TrainTopKAndSelect(const std::vector<ArchHyper>& top_k,
                                 const ForecastTask& task,
                                 const TrainOptions& train,
                                 const ScaleConfig& scale,
                                 const ExecContext& ctx);

}  // namespace autocts

#endif  // REPRO_CORE_AUTOCTS_H_
