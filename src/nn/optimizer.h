#ifndef REPRO_NN_OPTIMIZER_H_
#define REPRO_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace autocts {

/// Adam optimizer [Kingma & Ba 2014] with decoupled-style L2 weight decay
/// applied to the gradient (the paper trains both forecasting models and
/// T-AHC with Adam + weight decay).
class Adam {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
    /// Gradients are clipped to this L2 norm when > 0 (stabilizes the
    /// small-batch CPU training runs).
    float clip_norm = 5.0f;
  };

  Adam(std::vector<Tensor> params, Options options);

  /// Applies one update from the accumulated gradients.
  ///
  /// Non-finite guardrail: when guards are on (see common/guard.h), a
  /// non-finite global gradient norm — NaN/Inf anywhere in any gradient —
  /// skips the update entirely, leaving parameters, moments, and the
  /// bias-correction powers untouched, and increments skipped_steps().
  /// The check rides on the clip-norm reduction the step computes anyway;
  /// with clipping disabled it falls back to a blocked isfinite sweep.
  void Step();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  int64_t step_count() const { return step_; }
  /// Updates the guardrail refused because the gradient was non-finite.
  int64_t skipped_steps() const { return skipped_; }
  /// Mutable options. Changing beta1/beta2 after the first Step() is not
  /// supported: the bias-correction powers are tracked incrementally.
  Options& options() { return options_; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  Options options_;
  int64_t step_ = 0;
  int64_t skipped_ = 0;
  /// beta^step accumulated in double (see Step for why not std::pow).
  double beta1_pow_ = 1.0;
  double beta2_pow_ = 1.0;
};

}  // namespace autocts

#endif  // REPRO_NN_OPTIMIZER_H_
