#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace autocts {

Adam::Adam(std::vector<Tensor> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    CHECK(p.defined());
    m_.emplace_back(p.data().size(), 0.0f);
    v_.emplace_back(p.data().size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_;
  // Optional global-norm gradient clipping.
  if (options_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (Tensor& p : params_) {
      for (float g : p.grad()) sq += static_cast<double>(g) * g;
    }
    double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) {
      float scale = options_.clip_norm / static_cast<float>(norm);
      for (Tensor& p : params_) {
        for (float& g : p.grad()) g *= scale;
      }
    }
  }
  const float b1 = options_.beta1, b2 = options_.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    auto& grad = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j] + options_.weight_decay * data[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      float m_hat = m[j] / bc1;
      float v_hat = v[j] / bc2;
      data[j] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

void Adam::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

}  // namespace autocts
