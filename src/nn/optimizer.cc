#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/guard.h"
#include "common/parallel.h"

namespace autocts {
namespace {

/// Deterministic squared L2 norm of `g`: double partial sums over fixed
/// 4096-element blocks (parallel, disjoint), combined serially in ascending
/// block order — the result depends only on the data, never on thread
/// count. One pass; the old implementation's serial whole-model fold was a
/// second full traversal of every gradient before the update even started.
double SquaredNormBlocked(const float* g, int64_t n) {
  constexpr int64_t kBlock = 4096;
  const int64_t num_blocks = (n + kBlock - 1) / kBlock;
  if (num_blocks <= 1) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += static_cast<double>(g[i]) * g[i];
    }
    return acc;
  }
  std::vector<double> partial(static_cast<size_t>(num_blocks), 0.0);
  ParallelFor(0, num_blocks, 4, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const int64_t lo = b * kBlock;
      const int64_t hi = std::min(n, lo + kBlock);
      double acc = 0.0;
      for (int64_t i = lo; i < hi; ++i) {
        acc += static_cast<double>(g[i]) * g[i];
      }
      partial[static_cast<size_t>(b)] = acc;
    }
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace

Adam::Adam(std::vector<Tensor> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    CHECK(p.defined());
    m_.emplace_back(p.data().size(), 0.0f);
    v_.emplace_back(p.data().size(), 0.0f);
  }
}

void Adam::Step() {
  // Optional global-norm gradient clipping. The scale folds into the update
  // pass below instead of rewriting every gradient buffer in place; when no
  // clipping triggers, scale stays exactly 1.0f and g * 1.0f is bit-exact.
  // The same reduction doubles as the non-finite guardrail: NaN/Inf in any
  // gradient poisons the norm, and both the check and the skip happen
  // before any optimizer state mutates, so a refused step is a true no-op.
  float scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (Tensor& p : params_) {
      const auto& g = p.grad();
      sq += SquaredNormBlocked(g.data(), static_cast<int64_t>(g.size()));
    }
    double norm = std::sqrt(sq);
    if (GuardsEnabled() && !std::isfinite(norm)) {
      ++skipped_;
      return;
    }
    if (norm > options_.clip_norm) {
      scale = options_.clip_norm / static_cast<float>(norm);
    }
  } else if (GuardsEnabled()) {
    for (Tensor& p : params_) {
      const auto& g = p.grad();
      if (!AllFiniteBlocked(g.data(), static_cast<int64_t>(g.size()))) {
        ++skipped_;
        return;
      }
    }
  }
  ++step_;
  // pow(beta, step) tracked incrementally in double: the old
  // std::pow(b1, static_cast<float>(step_)) evaluated the float overload,
  // whose error grows with the step count right where 1 - beta^t needs the
  // most precision (beta2 = 0.999 leaves bc2 ~ t/1000 for small t).
  beta1_pow_ *= static_cast<double>(options_.beta1);
  beta2_pow_ *= static_cast<double>(options_.beta2);
  const float b1 = options_.beta1, b2 = options_.beta2;
  const float bc1 = static_cast<float>(1.0 - beta1_pow_);
  const float bc2 = static_cast<float>(1.0 - beta2_pow_);
  const float lr = options_.lr, eps = options_.eps;
  const float wd = options_.weight_decay;
  for (size_t i = 0; i < params_.size(); ++i) {
    float* data = params_[i].data().data();
    float* grad = params_[i].grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = static_cast<int64_t>(params_[i].data().size());
    // One fused pass: clip scaling, weight decay, moment updates, bias
    // correction, and the parameter update. Every slot is written by
    // exactly one index, so chunking is free of cross-thread effects.
    ParallelFor(0, n, kParallelGrainWork / 8, [&](int64_t j0, int64_t j1) {
      for (int64_t j = j0; j < j1; ++j) {
        const float g = grad[j] * scale + wd * data[j];
        m[j] = b1 * m[j] + (1.0f - b1) * g;
        v[j] = b2 * v[j] + (1.0f - b2) * g * g;
        const float m_hat = m[j] / bc1;
        const float v_hat = v[j] / bc2;
        data[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
    });
  }
}

void Adam::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

}  // namespace autocts
