#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/crc32.h"
#include "common/fileio.h"

namespace autocts {
namespace {

/// Legacy frame (PR 0): magic, count, tensors — no checksum, and a reader
/// that trusted the stream. Still readable for old checkpoints.
constexpr uint64_t kMagicV1 = 0x4155544f43545321ull;  // "AUTOCTS!"
/// Current frame: magic, CRC32 of everything after the CRC field, count,
/// tensors. Written atomically (tmp + rename).
constexpr uint64_t kMagicV2 = 0x4155544f43545332ull;  // "AUTOCTS2"

/// Parses the tensor list of either frame version into staged buffers.
/// Validates count/shape against the module and rejects both truncation
/// (reader runs dry) and trailing garbage (bytes left after the last
/// tensor — the classic symptom of a torn or concatenated write).
Status ParseTensors(const std::string& bytes, size_t offset,
                    const std::vector<Tensor>& params,
                    const std::string& path,
                    std::vector<std::vector<float>>* staged) {
  FrameReader reader(bytes, offset);
  uint64_t count = 0;
  if (!reader.Read(&count)) {
    return Status::Error("truncated checkpoint " + path +
                         " (missing tensor count)");
  }
  if (count != params.size()) {
    return Status::Error("checkpoint holds " + std::to_string(count) +
                         " tensors, module has " +
                         std::to_string(params.size()));
  }
  staged->reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    uint64_t numel = 0;
    if (!reader.Read(&numel)) {
      return Status::Error("truncated checkpoint " + path + " (tensor " +
                           std::to_string(i) + " header)");
    }
    if (numel != static_cast<uint64_t>(params[i].numel())) {
      return Status::Error("tensor " + std::to_string(i) + " in " + path +
                           " holds " + std::to_string(numel) +
                           " elements, module expects " +
                           std::to_string(params[i].numel()));
    }
    std::vector<float> buf;
    if (!reader.ReadFloats(&buf, numel)) {
      return Status::Error("truncated checkpoint " + path + " (tensor " +
                           std::to_string(i) + " data)");
    }
    staged->push_back(std::move(buf));
  }
  if (reader.remaining() != 0) {
    return Status::Error(std::to_string(reader.remaining()) +
                         " trailing bytes after the last tensor in " + path);
  }
  return Status::Ok();
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::vector<Tensor> params = module.Parameters();
  std::string payload;
  AppendPod(&payload, static_cast<uint64_t>(params.size()));
  for (const Tensor& p : params) {
    AppendPod(&payload, static_cast<uint64_t>(p.numel()));
    AppendRaw(&payload, p.data().data(), p.data().size() * sizeof(float));
  }
  std::string frame;
  frame.reserve(sizeof(uint64_t) + sizeof(uint32_t) + payload.size());
  AppendPod(&frame, kMagicV2);
  AppendPod(&frame, Crc32(payload.data(), payload.size()));
  frame += payload;
  return AtomicWriteFile(path, frame);
}

Status LoadParameters(Module* module, const std::string& path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& bytes = contents.value();
  FrameReader header(bytes, 0);
  uint64_t magic = 0;
  if (!header.Read(&magic)) {
    return Status::Error("truncated checkpoint " + path + " (no magic)");
  }
  std::vector<Tensor> params = module->Parameters();
  std::vector<std::vector<float>> staged;
  if (magic == kMagicV2) {
    uint32_t crc = 0;
    if (!header.Read(&crc)) {
      return Status::Error("truncated checkpoint " + path + " (no CRC)");
    }
    const size_t payload_offset = sizeof(uint64_t) + sizeof(uint32_t);
    uint32_t actual = Crc32(bytes.data() + payload_offset,
                            bytes.size() - payload_offset);
    if (actual != crc) {
      return Status::Error("CRC mismatch in " + path +
                           " (corrupt or torn checkpoint)");
    }
    Status s = ParseTensors(bytes, payload_offset, params, path, &staged);
    if (!s.ok()) return s;
  } else if (magic == kMagicV1) {
    // Legacy frame: no checksum to verify, but the strict parse still
    // rejects truncation, shape drift, and trailing garbage.
    Status s = ParseTensors(bytes, sizeof(uint64_t), params, path, &staged);
    if (!s.ok()) return s;
  } else {
    return Status::Error("bad checkpoint magic in " + path);
  }
  // All-or-nothing commit: nothing above touched the module.
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data() = std::move(staged[i]);
  }
  return Status::Ok();
}

}  // namespace autocts
