#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace autocts {
namespace {

constexpr uint64_t kMagic = 0x4155544f43545321ull;  // "AUTOCTS!"

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Error("cannot open " + path + " for writing");
  std::vector<Tensor> params = module.Parameters();
  uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    uint64_t numel = static_cast<uint64_t>(p.numel());
    out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(numel * sizeof(float)));
  }
  if (!out) return Status::Error("write failed for " + path);
  return Status::Ok();
}

Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Error("cannot open " + path);
  uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) return Status::Error("bad checkpoint magic");
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::vector<Tensor> params = module->Parameters();
  if (count != params.size()) {
    return Status::Error("checkpoint holds " + std::to_string(count) +
                         " tensors, module has " +
                         std::to_string(params.size()));
  }
  // Stage into buffers first so a truncated file cannot half-update.
  std::vector<std::vector<float>> staged;
  staged.reserve(params.size());
  for (const Tensor& p : params) {
    uint64_t numel = 0;
    in.read(reinterpret_cast<char*>(&numel), sizeof(numel));
    if (!in || numel != static_cast<uint64_t>(p.numel())) {
      return Status::Error("tensor size mismatch in " + path);
    }
    std::vector<float> buf(numel);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in) return Status::Error("truncated checkpoint " + path);
    staged.push_back(std::move(buf));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data() = std::move(staged[i]);
  }
  return Status::Ok();
}

}  // namespace autocts
