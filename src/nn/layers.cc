#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "tensor/plan.h"

namespace autocts {
namespace {

/// Glorot/Xavier uniform initialization.
Tensor XavierWeight(std::vector<int> shape, int fan_in, int fan_out,
                    Rng* rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(std::move(shape), rng, -limit, limit,
                      /*requires_grad=*/true);
}

}  // namespace

Linear::Linear(int in_dim, int out_dim, Rng* rng, bool bias)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight_ = AddParameter(XavierWeight({in_dim, out_dim}, in_dim, out_dim, rng));
  if (bias) {
    bias_ = AddParameter(Tensor::Zeros({out_dim}, /*requires_grad=*/true));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  CHECK_EQ(x.dim(-1), in_dim_);
  Tensor y;
  if (x.ndim() == 1) {
    y = MatMul(Reshape(x, {1, in_dim_}), weight_);
    y = Reshape(y, {out_dim_});
  } else {
    y = MatMul(x, weight_);
  }
  if (bias_.defined()) y = Add(y, bias_);
  return y;
}

Tensor Linear::Forward(const Tensor& x, FusedAct act) const {
  CHECK_EQ(x.dim(-1), in_dim_);
  Tensor y;
  if (x.ndim() == 1) {
    y = MatMul(Reshape(x, {1, in_dim_}), weight_);
    y = Reshape(y, {out_dim_});
  } else {
    y = MatMul(x, weight_);
  }
  if (bias_.defined()) return FusedBiasAct(y, bias_, act);
  return ApplyFusedAct(y, act);
}

CausalConv::CausalConv(int c_in, int c_out, int kernel, int dilation, Rng* rng,
                       bool bias)
    : dilation_(dilation) {
  CHECK_GE(kernel, 1);
  CHECK_GE(dilation, 1);
  weight_ = AddParameter(
      XavierWeight({kernel, c_in, c_out}, kernel * c_in, c_out, rng));
  if (bias) {
    bias_ = AddParameter(Tensor::Zeros({c_out}, /*requires_grad=*/true));
  }
}

Tensor CausalConv::Forward(const Tensor& x) const {
  return CausalConv1d(x, weight_, bias_, dilation_);
}

LayerNorm::LayerNorm(int dim, float eps) : eps_(eps) {
  gamma_ = AddParameter(Tensor::Full({dim}, 1.0f, /*requires_grad=*/true));
  beta_ = AddParameter(Tensor::Zeros({dim}, /*requires_grad=*/true));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  // One tape node; bit-exact against the nine-node op-graph composition
  // (LayerNormReference, which this dispatches to when fusion is off).
  return FusedLayerNorm(x, gamma_, beta_, eps_);
}

Tensor LayerNorm::Forward(const Tensor& a, const Tensor& b) const {
  return FusedAddLayerNorm(a, b, gamma_, beta_, eps_);
}

Mlp::Mlp(int in_dim, int hidden_dim, int out_dim, Rng* rng)
    : fc1_(in_dim, hidden_dim, rng), fc2_(hidden_dim, out_dim, rng) {
  AddChild(&fc1_);
  AddChild(&fc2_);
}

Tensor Mlp::Forward(const Tensor& x) const {
  return fc2_.Forward(fc1_.Forward(x, FusedAct::kRelu));
}

GruCell::GruCell(int in_dim, int hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim),
      gates_x_(in_dim, 3 * hidden_dim, rng),
      gates_h_(hidden_dim, 3 * hidden_dim, rng, /*bias=*/false) {
  AddChild(&gates_x_);
  AddChild(&gates_h_);
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  Tensor gx = gates_x_.Forward(x);  // [B, 3H]
  Tensor gh = gates_h_.Forward(h);
  int hd = hidden_dim_;
  Tensor r = FusedAddAct(Slice(gx, 1, 0, hd), Slice(gh, 1, 0, hd),
                         FusedAct::kSigmoid);
  Tensor z = FusedAddAct(Slice(gx, 1, hd, hd), Slice(gh, 1, hd, hd),
                         FusedAct::kSigmoid);
  Tensor n = FusedAddAct(Slice(gx, 1, 2 * hd, hd),
                         Mul(r, Slice(gh, 1, 2 * hd, hd)), FusedAct::kTanh);
  // h' = (1-z)*n + z*h
  return Add(Mul(AddScalar(Neg(z), 1.0f), n), Mul(z, h));
}

MultiHeadAttention::MultiHeadAttention(int dim, int heads, Rng* rng,
                                       bool prob_sparse, float dropout)
    : dim_(dim),
      heads_(heads),
      prob_sparse_(prob_sparse),
      q_proj_(dim, dim, rng),
      k_proj_(dim, dim, rng),
      v_proj_(dim, dim, rng),
      out_proj_(dim, dim, rng),
      attn_dropout_(dropout, rng),
      rng_(rng) {
  CHECK_EQ(dim % heads, 0) << "dim must divide evenly into heads";
  AddChild(&q_proj_);
  AddChild(&k_proj_);
  AddChild(&v_proj_);
  AddChild(&out_proj_);
  AddChild(&attn_dropout_);
}

Tensor MultiHeadAttention::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 3);
  const int b = x.dim(0), l = x.dim(1);
  CHECK_EQ(x.dim(2), dim_);
  const int dh = dim_ / heads_;
  auto split_heads = [&](const Tensor& t) {
    // [B, L, D] -> [B, H, L, Dh], one gather instead of reshape + transpose.
    return FusedReshapeTranspose(t, {b, l, heads_, dh}, 1, 2);
  };
  Tensor q = split_heads(q_proj_.Forward(x));
  Tensor k = split_heads(k_proj_.Forward(x));
  Tensor v = split_heads(v_proj_.Forward(x));
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  // The 1/sqrt(dh) scaling is folded into the softmax kernel; `scores` stays
  // raw, and the off-tape sparsity measurement below multiplies by `scale`
  // inline — the same product the old MulScalar node materialized.
  Tensor scores = MatMul(q, Transpose(k, -2, -1));
  Tensor attn = attn_dropout_.Forward(FusedSoftmax(scores, scale));
  Tensor out = MatMul(attn, v);  // [B, H, L, Dh]

  if (prob_sparse_ && l > 2) {
    // Sparsity measurement M(q_i) = max_j s_ij - mean_j s_ij per (b, h),
    // computed off-tape; only the top-u queries keep their attention
    // output, the rest fall back to mean(V).
    int u = std::max(1, static_cast<int>(std::ceil(std::log2(l))));
    if (u < l) {
      const int heads = heads_;
      const int64_t mask_n = static_cast<int64_t>(b) * heads * l;
      // The mask is a deterministic function of `scores`, so a recording
      // plan replays it as a compute thunk (zero-fill included — replay
      // reuses the buffer). Each (batch, head) writes a disjoint slice;
      // the scratch vector lives inside the chunk so lanes never share it.
      auto mask_kernel = [b, heads, l, u, scale, mask_n](const float* sd,
                                                         float* mp) {
        std::fill(mp, mp + mask_n, 0.0f);
        ParallelFor(
            0, static_cast<int64_t>(b) * heads,
            GrainFor(static_cast<int64_t>(l) * l), [&](int64_t g0, int64_t g1) {
              std::vector<std::pair<float, int>> m(static_cast<size_t>(l));
              for (int64_t gi = g0; gi < g1; ++gi) {
                int64_t base = gi * static_cast<int64_t>(l) * l;
                for (int i = 0; i < l; ++i) {
                  float mx = -1e30f, mean = 0.0f;
                  for (int j = 0; j < l; ++j) {
                    float s = sd[static_cast<size_t>(
                                  base + static_cast<int64_t>(i) * l + j)] *
                              scale;
                    mx = std::max(mx, s);
                    mean += s;
                  }
                  mean /= static_cast<float>(l);
                  m[static_cast<size_t>(i)] = {mx - mean, i};
                }
                std::partial_sort(
                    m.begin(), m.begin() + u, m.end(),
                    [](auto& a2, auto& b2) { return a2.first > b2.first; });
                for (int t = 0; t < u; ++t) {
                  mp[static_cast<size_t>(gi * l +
                                         m[static_cast<size_t>(t)].second)] =
                      1.0f;
                }
              }
            });
      };
      std::vector<float> mask_data(static_cast<size_t>(mask_n));
      mask_kernel(scores.data().data(), mask_data.data());
      Tensor mask = Tensor::FromVector({b, heads_, l, 1}, std::move(mask_data));
      if (plan::Recording()) {
        const int is = plan::In(scores), im = plan::Out(mask);
        plan::Commit([mask_kernel, is, im](float* const* bufs) {
          mask_kernel(bufs[is], bufs[im]);
        });
      }
      Tensor mean_v = Mean(v, 2, /*keepdim=*/true);  // [B, H, 1, Dh]
      Tensor inv_mask = AddScalar(Neg(mask), 1.0f);
      out = Add(Mul(mask, out), Mul(inv_mask, mean_v));
    }
  }

  // [B, H, L, Dh] -> [B, L, D]
  Tensor merged = FusedTransposeReshape(out, 1, 2, {b, l, dim_});
  return out_proj_.Forward(merged);
}

}  // namespace autocts
