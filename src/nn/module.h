#ifndef REPRO_NN_MODULE_H_
#define REPRO_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace autocts {

/// Base class for neural-network building blocks.
///
/// A Module owns trainable parameters (registered with AddParameter) and may
/// contain child modules (registered with AddChild; children are members of
/// the subclass, the registry is non-owning). Parameters(), SetTraining()
/// and ZeroGrad() recurse through children. Forward signatures differ per
/// subclass, so there is no virtual Forward here.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its descendants.
  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> out = params_;
    for (const Module* child : children_) {
      std::vector<Tensor> sub = child->Parameters();
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }

  /// Total number of scalar parameters (reported in case studies).
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const Tensor& p : Parameters()) n += p.numel();
    return n;
  }

  /// Switches train/eval behaviour (dropout etc.) recursively.
  void SetTraining(bool training) {
    training_ = training;
    for (Module* child : children_) child->SetTraining(training);
  }

  bool training() const { return training_; }

  /// Zeroes every parameter gradient recursively.
  void ZeroGrad() {
    for (Tensor& p : params_) p.ZeroGrad();
    for (Module* child : children_) child->ZeroGrad();
  }

 protected:
  Module() = default;

  /// Registers a trainable parameter and returns the (aliasing) handle.
  Tensor AddParameter(Tensor t) {
    CHECK(t.defined());
    CHECK(t.requires_grad()) << "parameters must require grad";
    params_.push_back(t);
    return t;
  }

  /// Registers a child module (must outlive this module; typically a member).
  void AddChild(Module* child) {
    CHECK(child != nullptr);
    children_.push_back(child);
  }

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;
  bool training_ = true;
};

}  // namespace autocts

#endif  // REPRO_NN_MODULE_H_
