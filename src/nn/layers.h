#ifndef REPRO_NN_LAYERS_H_
#define REPRO_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/fused.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace autocts {

/// Fully connected layer: y = x·W + b for x of shape [..., in_dim].
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, Rng* rng, bool bias = true);

  Tensor Forward(const Tensor& x) const;

  /// y = act(x·W + b): the bias add and the activation run as one fused
  /// epilogue kernel (FusedBiasAct) instead of two tape nodes.
  Tensor Forward(const Tensor& x, FusedAct act) const;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

  /// Read-only parameter views for off-tape inference paths (e.g. the
  /// quantized comparator, comparator/quant.h, which snapshots weights).
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int in_dim_;
  int out_dim_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

/// Causal dilated temporal convolution over x of shape [rows, T, c_in].
class CausalConv : public Module {
 public:
  CausalConv(int c_in, int c_out, int kernel, int dilation, Rng* rng,
             bool bias = true);

  Tensor Forward(const Tensor& x) const;

  int dilation() const { return dilation_; }

 private:
  int dilation_;
  Tensor weight_;  // [kernel, c_in, c_out]
  Tensor bias_;    // [c_out] or undefined
};

/// Layer normalization over the last dimension with learnable affine.
class LayerNorm : public Module {
 public:
  LayerNorm(int dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

  /// LayerNorm(a + b) — the residual post-norm pattern, fused so the Add
  /// never tapes (FusedAddLayerNorm).
  Tensor Forward(const Tensor& a, const Tensor& b) const;

 private:
  float eps_;
  Tensor gamma_;  // [dim]
  Tensor beta_;   // [dim]
};

/// Inverted dropout keyed off the enclosing module's training flag.
class DropoutLayer : public Module {
 public:
  DropoutLayer(float p, Rng* rng) : p_(p), rng_(rng) {}

  Tensor Forward(const Tensor& x) const {
    return Dropout(x, p_, rng_, training());
  }

 private:
  float p_;
  Rng* rng_;
};

/// Two-layer perceptron with ReLU, the classifier workhorse of AHC/T-AHC.
class Mlp : public Module {
 public:
  Mlp(int in_dim, int hidden_dim, int out_dim, Rng* rng);

  Tensor Forward(const Tensor& x) const;

  /// Read-only layer views for off-tape inference paths.
  const Linear& fc1() const { return fc1_; }
  const Linear& fc2() const { return fc2_; }

 private:
  Linear fc1_;
  Linear fc2_;
};

/// Gated recurrent unit cell: h' = GRU(x, h) for x [B, in], h [B, hidden].
class GruCell : public Module {
 public:
  GruCell(int in_dim, int hidden_dim, Rng* rng);

  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  Linear gates_x_;  // in -> 3*hidden (reset, update, candidate)
  Linear gates_h_;  // hidden -> 3*hidden
};

/// Multi-head scaled-dot-product self-attention over x [B, L, D].
///
/// With `prob_sparse` set, only the top-u queries (largest max-mean score
/// sparsity measurement, computed off-tape) attend; the remaining positions
/// output the mean of V — the Informer approximation [Zhou et al. 2021].
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int dim, int heads, Rng* rng, bool prob_sparse = false,
                     float dropout = 0.0f);

  Tensor Forward(const Tensor& x) const;

 private:
  int dim_;
  int heads_;
  bool prob_sparse_;
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
  Linear out_proj_;
  DropoutLayer attn_dropout_;
  Rng* rng_;
};

}  // namespace autocts

#endif  // REPRO_NN_LAYERS_H_
