#ifndef REPRO_NN_SERIALIZE_H_
#define REPRO_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace autocts {

/// Writes all parameters of a module (recursively, in registration order)
/// to a binary file: a magic header, the tensor count, then each tensor's
/// element count and raw float data. Architecture is NOT stored — loading
/// requires an identically constructed module.
Status SaveParameters(const Module& module, const std::string& path);

/// Restores parameters written by SaveParameters. Fails (without partial
/// mutation of later tensors) on magic/count/shape mismatch.
Status LoadParameters(Module* module, const std::string& path);

}  // namespace autocts

#endif  // REPRO_NN_SERIALIZE_H_
