#ifndef REPRO_NN_SERIALIZE_H_
#define REPRO_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace autocts {

/// Writes all parameters of a module (recursively, in registration order)
/// to a binary file: a magic header, a CRC32 of the payload, the tensor
/// count, then each tensor's element count and raw float data. The write is
/// atomic (tmp file + rename), so a crash mid-save leaves the previous
/// checkpoint intact. Architecture is NOT stored — loading requires an
/// identically constructed module.
Status SaveParameters(const Module& module, const std::string& path);

/// Restores parameters written by SaveParameters. Fails — without touching
/// the module at all — on magic/count/shape mismatch, CRC mismatch,
/// truncation, or trailing garbage. Checkpoints from the pre-CRC frame
/// (old magic) still load, minus the checksum verification.
Status LoadParameters(Module* module, const std::string& path);

}  // namespace autocts

#endif  // REPRO_NN_SERIALIZE_H_
