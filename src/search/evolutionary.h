#ifndef REPRO_SEARCH_EVOLUTIONARY_H_
#define REPRO_SEARCH_EVOLUTIONARY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "comparator/comparator.h"
#include "comparator/quant.h"
#include "searchspace/search_space.h"

namespace autocts {

/// Knobs of the zero-shot search (paper §3.3 / Alg. 2 and §4.1.4).
struct SearchOptions {
  /// K_s: candidates sampled from the joint space for the initial ranking
  /// (paper default 300,000; scaled down by default here).
  int ranking_pool = 600;
  /// Opponents per candidate for the initial sparse-tournament ranking.
  /// (A full K_s² round-robin is infeasible at paper scale too.)
  int opponents_per_candidate = 8;
  int population = 8;        ///< k_p.
  int generations = 5;       ///< Evolution steps.
  float crossover_prob = 0.8f;  ///< p1.
  float mutation_prob = 0.2f;   ///< p2.
  int top_k = 2;             ///< Final candidates to fully train.
  int compare_batch = 64;    ///< Comparator minibatch for ranking.
  uint64_t seed = 303;
};

/// Comparator-guided evolutionary search over the joint search space for a
/// fixed task embedding (undefined tensor for a plain, task-blind AHC).
class EvolutionarySearcher {
 public:
  /// `ctx` selects the thread pool: comparator inference batches fan out
  /// across it when the comparator is in eval mode (batch outcomes don't
  /// depend on each other, so results are identical for any pool size).
  EvolutionarySearcher(const Comparator* comparator,
                       const JointSearchSpace* space, ExecContext ctx = {});

  /// Runs Alg. 2 and returns the top-K arch-hypers, best first.
  std::vector<ArchHyper> SearchTopK(const Tensor& task_embed,
                                    const SearchOptions& options) const;

  /// Win counts of each candidate against `opponents` random others —
  /// the sparse-tournament ranking of the initial pool. Exposed for tests
  /// and benchmarks.
  std::vector<int> SparseWinCounts(const std::vector<ArchHyper>& pool,
                                   const Tensor& task_embed, int opponents,
                                   int compare_batch, Rng* rng) const;

  /// Full round-robin win counts (Alg. 2's transitivity-free top-K rule);
  /// use only on small candidate sets.
  std::vector<int> RoundRobinWins(const std::vector<ArchHyper>& candidates,
                                  const Tensor& task_embed,
                                  int compare_batch) const;

  /// Comparator logits that came back NaN/inf across this searcher's
  /// lifetime (guardrail counter; each such duel deterministically falls to
  /// the second candidate). Thread-safe.
  int64_t nonfinite_comparisons() const {
    return nonfinite_comparisons_.load(std::memory_order_relaxed);
  }

 private:
  /// Batched "first beats second" decisions for index pairs into `enc`.
  std::vector<bool> ComparePairs(
      const std::vector<ArchHyperEncoding>& enc,
      const std::vector<std::pair<int, int>>& pairs, const Tensor& task_embed,
      int compare_batch) const;

  /// The lazily built quantized comparator snapshot serving eval-mode
  /// ComparePairs when ctx_.effective_config().comparator_precision is bf16
  /// or int8. Weights are snapshotted at first quantized use — valid here
  /// because the searcher holds the comparator const, so weights cannot
  /// change across a search. Guarded: ComparePairs fans out across the pool.
  const QuantizedComparator* Quantized(ComparatorPrecision precision) const;

  /// EncodeArchHyper memoized on ArchHyper::Signature() (equal signatures
  /// ⇔ equal arch-hypers ⇒ equal encodings). Population survivors re-enter
  /// every generation's round-robin, so most encodings repeat many times.
  ArchHyperEncoding CachedEncoding(const ArchHyper& ah) const;

  /// ComparePairs with duplicate (first, second) *encodings* collapsed:
  /// each signature-distinct ordered pair's logit is computed once and the
  /// outcome broadcast to every duplicate duel. Bit-safe because every
  /// comparator op is row-local, so a logit does not depend on which batch
  /// rows surround it.
  std::vector<bool> DedupedOutcomes(const std::vector<ArchHyper>& items,
                                    const std::vector<ArchHyperEncoding>& enc,
                                    const std::vector<std::pair<int, int>>& pairs,
                                    const Tensor& task_embed,
                                    int compare_batch) const;

  const Comparator* comparator_;
  const JointSearchSpace* space_;
  ExecContext ctx_;
  /// Mutable: ComparePairs is logically const; the counter is telemetry.
  mutable std::atomic<int64_t> nonfinite_comparisons_{0};
  /// Signature -> encoding memo (guarded; searchers may be shared).
  mutable std::mutex encode_mu_;
  mutable std::unordered_map<std::string, ArchHyperEncoding> encode_cache_;
  /// Quantized comparator snapshot (see Quantized()).
  mutable std::mutex quant_mu_;
  mutable std::unique_ptr<QuantizedComparator> quant_;
};

}  // namespace autocts

#endif  // REPRO_SEARCH_EVOLUTIONARY_H_
