#include "search/evolutionary.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>

#include "common/guard.h"
#include "tensor/ops.h"
#include "tensor/plan.h"

namespace autocts {

namespace {

/// Per-thread cache of compiled comparator-inference plans, one per batch
/// size, valid for one (comparator, task embedding) context. Thread-local
/// because a StepPlan must replay on the thread that captured it, and
/// ComparePairs fans batches out across the pool.
struct TlsCompareCache {
  const void* comparator = nullptr;
  const void* task_embed = nullptr;
  /// Pins the task embedding's storage so `task_embed` can never be a
  /// recycled-address false match (ABA) while this cache context is live.
  Tensor task_embed_keep;
  /// Constant [1, f2] view of the embedding, shared by every captured plan.
  Tensor task_row;
  std::map<int, std::unique_ptr<StepPlan>> by_batch;
};

thread_local TlsCompareCache t_compare_cache;

}  // namespace

EvolutionarySearcher::EvolutionarySearcher(const Comparator* comparator,
                                           const JointSearchSpace* space,
                                           ExecContext ctx)
    : comparator_(comparator), space_(space), ctx_(ctx) {
  CHECK(comparator_ != nullptr);
  CHECK(space_ != nullptr);
}

std::vector<bool> EvolutionarySearcher::ComparePairs(
    const std::vector<ArchHyperEncoding>& enc,
    const std::vector<std::pair<int, int>>& pairs, const Tensor& task_embed,
    int compare_batch) const {
  std::vector<bool> wins(pairs.size());
  const bool task_aware = comparator_->options().task_aware;
  const int f2 = comparator_->options().f2;
  if (task_aware) CHECK(task_embed.defined());
  auto record_raw = [&](size_t begin, int m, const float* logits) {
    for (int i = 0; i < m; ++i) {
      const float logit = logits[i];
      if (GuardsEnabled() && !std::isfinite(logit)) {
        // A NaN/inf logit carries no preference; count it and fall back to
        // the deterministic "second wins" outcome (same verdict NaN >= 0
        // would yield, but now observable in the RobustnessReport).
        nonfinite_comparisons_.fetch_add(1, std::memory_order_relaxed);
        wins[begin + static_cast<size_t>(i)] = false;
        continue;
      }
      wins[begin + static_cast<size_t>(i)] = logit >= 0.0f;
    }
  };
  auto record_logits = [&](size_t begin, int m, const Tensor& logits) {
    record_raw(begin, m, logits.data().data());
  };
  auto stack_batch = [&](size_t begin, size_t end, EncodingBatch* b1,
                         EncodingBatch* b2) {
    std::vector<ArchHyperEncoding> first, second;
    for (size_t p = begin; p < end; ++p) {
      first.push_back(enc[static_cast<size_t>(pairs[p].first)]);
      second.push_back(enc[static_cast<size_t>(pairs[p].second)]);
    }
    *b1 = StackEncodings(first);
    *b2 = StackEncodings(second);
  };
  const int64_t num_batches =
      (static_cast<int64_t>(pairs.size()) + compare_batch - 1) / compare_batch;
  const ComparatorPrecision precision =
      ctx_.effective_config().comparator_precision;
  if (!comparator_->training() && precision != ComparatorPrecision::kFp32) {
    // Quantized inference path (AUTOCTS_COMPARATOR_PRECISION=bf16|int8):
    // off-tape raw-buffer forward through the active kernel backend's
    // quantized GEMMs — no tape, no plans, so it bypasses the plan cache
    // entirely. Batches stay independent, so the same fan-out applies.
    const QuantizedComparator* quant = Quantized(precision);
    ExecScope scope(ctx_);
    ParallelFor(0, num_batches, 1, [&](int64_t b0, int64_t b1r) {
      NoGradScope no_grad;
      Tensor task_row;
      if (task_aware) task_row = Reshape(task_embed, {1, f2});
      for (int64_t bi = b0; bi < b1r; ++bi) {
        const size_t begin =
            static_cast<size_t>(bi) * static_cast<size_t>(compare_batch);
        const size_t end =
            std::min(pairs.size(), begin + static_cast<size_t>(compare_batch));
        const int m = static_cast<int>(end - begin);
        EncodingBatch eb1, eb2;
        stack_batch(begin, end, &eb1, &eb2);
        Tensor task_embeds;
        if (task_aware) {
          std::vector<Tensor> rows(static_cast<size_t>(m), task_row);
          task_embeds = Concat(rows, 0);
        }
        const std::vector<float> logits =
            quant->CompareLogits(eb1, eb2, task_embeds);
        record_raw(begin, m, logits.data());
      }
    });
    return wins;
  }
  if (!comparator_->training()) {
    // Eval-mode inference is pure (dropout is a no-op, so no shared RNG),
    // and batches are independent — fan them out across the pool. Each
    // worker compiles one inference plan per batch size (captured under
    // NoGradScope, so pure intermediates live in the plan's bump arena) and
    // replays it for every later batch of that size.
    ExecScope scope(ctx_);
    ParallelFor(0, num_batches, 1, [&](int64_t b0, int64_t b1r) {
      NoGradScope no_grad;
      TlsCompareCache& cache = t_compare_cache;
      const void* embed_key = task_aware
                                  ? static_cast<const void*>(task_embed.impl())
                                  : nullptr;
      if (cache.comparator != static_cast<const void*>(comparator_) ||
          cache.task_embed != embed_key) {
        cache.by_batch.clear();
        cache.comparator = comparator_;
        cache.task_embed = embed_key;
        cache.task_embed_keep = task_aware ? task_embed : Tensor();
        cache.task_row =
            task_aware ? Reshape(task_embed, {1, f2}) : Tensor();
      }
      for (int64_t bi = b0; bi < b1r; ++bi) {
        const size_t begin =
            static_cast<size_t>(bi) * static_cast<size_t>(compare_batch);
        const size_t end =
            std::min(pairs.size(), begin + static_cast<size_t>(compare_batch));
        const int m = static_cast<int>(end - begin);
        EncodingBatch eb1, eb2;
        stack_batch(begin, end, &eb1, &eb2);
        std::vector<Tensor> step_inputs = {eb1.adjacency, eb1.op_onehot,
                                           eb1.hyper,     eb2.adjacency,
                                           eb2.op_onehot, eb2.hyper};
        std::unique_ptr<StepPlan>& plan = cache.by_batch[m];
        if (plan == nullptr) plan = std::make_unique<StepPlan>();
        if (plan->ready() && !plan->MatchesInputs(step_inputs)) {
          plan->Invalidate();
        }
        if (plan->ready()) {
          plan->BeginStep(step_inputs);
          plan->RunForward();
          record_logits(begin, m, plan->output(0));
          continue;
        }
        const bool capture =
            plan::PlansEnabled() && !plan->capture_failed() &&
            LiveTapeNodesThisThread() == plan::PinnedTapeNodesThisThread();
        if (capture) plan->BeginCapture(step_inputs, "compare_logits");
        Tensor task_embeds;
        if (task_aware) {
          std::vector<Tensor> rows(static_cast<size_t>(m), cache.task_row);
          task_embeds = Concat(rows, 0);
        }
        Tensor logits = comparator_->CompareLogits(eb1, eb2, task_embeds);
        if (capture) {
          plan->AddOutput(logits);
          plan->EndCapture();
        }
        record_logits(begin, m, logits);
      }
    });
  } else {
    // Training mode shares one dropout RNG; keep the sequential draw order
    // and stay eager (the graph must re-tape every step).
    Tensor task_row;
    if (task_aware) task_row = Reshape(task_embed, {1, f2});
    for (int64_t bi = 0; bi < num_batches; ++bi) {
      const size_t begin =
          static_cast<size_t>(bi) * static_cast<size_t>(compare_batch);
      const size_t end =
          std::min(pairs.size(), begin + static_cast<size_t>(compare_batch));
      const int m = static_cast<int>(end - begin);
      EncodingBatch eb1, eb2;
      stack_batch(begin, end, &eb1, &eb2);
      Tensor task_embeds;
      if (task_aware) {
        std::vector<Tensor> rows(static_cast<size_t>(m), task_row);
        task_embeds = Concat(rows, 0);
      }
      Tensor logits = comparator_->CompareLogits(eb1, eb2, task_embeds);
      record_logits(begin, m, logits);
    }
  }
  return wins;
}

const QuantizedComparator* EvolutionarySearcher::Quantized(
    ComparatorPrecision precision) const {
  std::lock_guard<std::mutex> lock(quant_mu_);
  if (quant_ == nullptr || quant_->precision() != precision) {
    quant_ = std::make_unique<QuantizedComparator>(*comparator_, precision);
  }
  return quant_.get();
}

ArchHyperEncoding EvolutionarySearcher::CachedEncoding(
    const ArchHyper& ah) const {
  const std::string key = ah.Signature();
  {
    std::lock_guard<std::mutex> lock(encode_mu_);
    auto it = encode_cache_.find(key);
    if (it != encode_cache_.end()) return it->second;
  }
  // Encode outside the lock; a racing duplicate encode is harmless (both
  // produce identical tensors, the first insert wins).
  ArchHyperEncoding enc = EncodeArchHyper(ah);
  std::lock_guard<std::mutex> lock(encode_mu_);
  return encode_cache_.try_emplace(key, std::move(enc)).first->second;
}

std::vector<bool> EvolutionarySearcher::DedupedOutcomes(
    const std::vector<ArchHyper>& items,
    const std::vector<ArchHyperEncoding>& enc,
    const std::vector<std::pair<int, int>>& pairs, const Tensor& task_embed,
    int compare_batch) const {
  // Canonical representative per signature: crossover/mutation churn yields
  // duplicate arch-hypers across generations, so round-robins repeat many
  // (first, second) encoding pairs verbatim.
  std::unordered_map<std::string, int> canon_by_sig;
  std::vector<int> canon(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    auto it = canon_by_sig.try_emplace(items[i].Signature(),
                                       static_cast<int>(i));
    canon[i] = it.first->second;
  }
  std::map<std::pair<int, int>, int> slot_of;
  std::vector<std::pair<int, int>> unique_pairs;
  std::vector<int> pair_slot(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    const std::pair<int, int> cp = {canon[static_cast<size_t>(pairs[p].first)],
                                    canon[static_cast<size_t>(pairs[p].second)]};
    auto it = slot_of.try_emplace(cp, static_cast<int>(unique_pairs.size()));
    if (it.second) unique_pairs.push_back(cp);
    pair_slot[p] = it.first->second;
  }
  // Bit-safe broadcast: every comparator op is row-local, so a pair's logit
  // does not depend on which other rows share its batch.
  std::vector<bool> unique_outcomes =
      ComparePairs(enc, unique_pairs, task_embed, compare_batch);
  std::vector<bool> outcomes(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    outcomes[p] = unique_outcomes[static_cast<size_t>(pair_slot[p])];
  }
  return outcomes;
}

std::vector<int> EvolutionarySearcher::SparseWinCounts(
    const std::vector<ArchHyper>& pool, const Tensor& task_embed,
    int opponents, int compare_batch, Rng* rng) const {
  const int n = static_cast<int>(pool.size());
  std::vector<ArchHyperEncoding> enc;
  enc.reserve(pool.size());
  for (const ArchHyper& ah : pool) enc.push_back(CachedEncoding(ah));
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < n; ++i) {
    for (int o = 0; o < opponents; ++o) {
      int j = rng->Int(0, n - 1);
      if (j == i) j = (j + 1) % n;
      pairs.push_back({i, j});
    }
  }
  std::vector<bool> outcomes =
      DedupedOutcomes(pool, enc, pairs, task_embed, compare_batch);
  std::vector<int> wins(static_cast<size_t>(n), 0);
  for (size_t p = 0; p < pairs.size(); ++p) {
    // Credit both sides: the winner of each duel gets a point.
    if (outcomes[p]) {
      ++wins[static_cast<size_t>(pairs[p].first)];
    } else {
      ++wins[static_cast<size_t>(pairs[p].second)];
    }
  }
  return wins;
}

std::vector<int> EvolutionarySearcher::RoundRobinWins(
    const std::vector<ArchHyper>& candidates, const Tensor& task_embed,
    int compare_batch) const {
  const int n = static_cast<int>(candidates.size());
  std::vector<ArchHyperEncoding> enc;
  enc.reserve(candidates.size());
  for (const ArchHyper& ah : candidates) enc.push_back(CachedEncoding(ah));
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) pairs.push_back({i, j});
    }
  }
  std::vector<bool> outcomes =
      DedupedOutcomes(candidates, enc, pairs, task_embed, compare_batch);
  std::vector<int> wins(static_cast<size_t>(n), 0);
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (outcomes[p]) ++wins[static_cast<size_t>(pairs[p].first)];
  }
  return wins;
}

namespace {

/// Indices of the top-k values, descending.
std::vector<int> TopIndices(const std::vector<int>& scores, int k) {
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
  });
  order.resize(static_cast<size_t>(std::min<int>(k, static_cast<int>(order.size()))));
  return order;
}

}  // namespace

std::vector<ArchHyper> EvolutionarySearcher::SearchTopK(
    const Tensor& task_embed, const SearchOptions& options) const {
  Rng rng(options.seed);
  // Stage 1: sample K_s candidates and rank them by sparse tournament.
  std::vector<ArchHyper> pool =
      space_->SampleDistinct(options.ranking_pool, &rng);
  std::vector<int> wins =
      SparseWinCounts(pool, task_embed, options.opponents_per_candidate,
                      options.compare_batch, &rng);
  std::vector<ArchHyper> population;
  for (int idx : TopIndices(wins, options.population)) {
    population.push_back(pool[static_cast<size_t>(idx)]);
  }

  // Stage 2: evolution — offspring via crossover/mutation, survivors by
  // comparator round-robin within the (small) population.
  for (int gen = 0; gen < options.generations; ++gen) {
    std::vector<ArchHyper> offspring;
    for (const ArchHyper& parent : population) {
      ArchHyper child = parent;
      if (rng.Bernoulli(options.crossover_prob)) {
        const ArchHyper& other = rng.Choice(population);
        child = space_->Crossover(child, other, &rng);
      }
      if (rng.Bernoulli(options.mutation_prob)) {
        child = space_->Mutate(child, &rng);
      }
      offspring.push_back(std::move(child));
    }
    std::vector<ArchHyper> merged = population;
    merged.insert(merged.end(), offspring.begin(), offspring.end());
    std::vector<int> rr =
        RoundRobinWins(merged, task_embed, options.compare_batch);
    std::vector<ArchHyper> next;
    for (int idx : TopIndices(rr, options.population)) {
      next.push_back(merged[static_cast<size_t>(idx)]);
    }
    population = std::move(next);
  }

  // Stage 3: transitivity-free top-K by round-robin wins (Alg. 2).
  std::vector<int> final_wins =
      RoundRobinWins(population, task_embed, options.compare_batch);
  std::vector<ArchHyper> top;
  for (int idx : TopIndices(final_wins, options.top_k)) {
    top.push_back(population[static_cast<size_t>(idx)]);
  }
  return top;
}

}  // namespace autocts
