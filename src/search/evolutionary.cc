#include "search/evolutionary.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/guard.h"
#include "tensor/ops.h"

namespace autocts {

EvolutionarySearcher::EvolutionarySearcher(const Comparator* comparator,
                                           const JointSearchSpace* space,
                                           ExecContext ctx)
    : comparator_(comparator), space_(space), ctx_(ctx) {
  CHECK(comparator_ != nullptr);
  CHECK(space_ != nullptr);
}

std::vector<bool> EvolutionarySearcher::ComparePairs(
    const std::vector<ArchHyperEncoding>& enc,
    const std::vector<std::pair<int, int>>& pairs, const Tensor& task_embed,
    int compare_batch) const {
  std::vector<bool> wins(pairs.size());
  const bool task_aware = comparator_->options().task_aware;
  const int f2 = comparator_->options().f2;
  Tensor task_row;
  if (task_aware) {
    CHECK(task_embed.defined());
    task_row = Reshape(task_embed, {1, f2});
  }
  auto run_batch = [&](size_t begin) {
    size_t end =
        std::min(pairs.size(), begin + static_cast<size_t>(compare_batch));
    std::vector<ArchHyperEncoding> first, second;
    for (size_t p = begin; p < end; ++p) {
      first.push_back(enc[static_cast<size_t>(pairs[p].first)]);
      second.push_back(enc[static_cast<size_t>(pairs[p].second)]);
    }
    const int m = static_cast<int>(end - begin);
    Tensor task_embeds;
    if (task_aware) {
      std::vector<Tensor> rows(static_cast<size_t>(m), task_row);
      task_embeds = Concat(rows, 0);
    }
    Tensor logits = comparator_->CompareLogits(
        StackEncodings(first), StackEncodings(second), task_embeds);
    for (int i = 0; i < m; ++i) {
      const float logit = logits.at(i);
      if (GuardsEnabled() && !std::isfinite(logit)) {
        // A NaN/inf logit carries no preference; count it and fall back to
        // the deterministic "second wins" outcome (same verdict NaN >= 0
        // would yield, but now observable in the RobustnessReport).
        nonfinite_comparisons_.fetch_add(1, std::memory_order_relaxed);
        wins[begin + static_cast<size_t>(i)] = false;
        continue;
      }
      wins[begin + static_cast<size_t>(i)] = logit >= 0.0f;
    }
  };
  const int64_t num_batches =
      (static_cast<int64_t>(pairs.size()) + compare_batch - 1) / compare_batch;
  if (!comparator_->training()) {
    // Eval-mode inference is pure (dropout is a no-op, so no shared RNG),
    // and batches are independent — fan them out across the pool.
    ExecScope scope(ctx_);
    ParallelFor(0, num_batches, 1, [&](int64_t b0, int64_t b1) {
      for (int64_t bi = b0; bi < b1; ++bi) {
        run_batch(static_cast<size_t>(bi) *
                  static_cast<size_t>(compare_batch));
      }
    });
  } else {
    // Training mode shares one dropout RNG; keep the sequential draw order.
    for (int64_t bi = 0; bi < num_batches; ++bi) {
      run_batch(static_cast<size_t>(bi) * static_cast<size_t>(compare_batch));
    }
  }
  return wins;
}

std::vector<int> EvolutionarySearcher::SparseWinCounts(
    const std::vector<ArchHyper>& pool, const Tensor& task_embed,
    int opponents, int compare_batch, Rng* rng) const {
  const int n = static_cast<int>(pool.size());
  std::vector<ArchHyperEncoding> enc;
  enc.reserve(pool.size());
  for (const ArchHyper& ah : pool) enc.push_back(EncodeArchHyper(ah));
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < n; ++i) {
    for (int o = 0; o < opponents; ++o) {
      int j = rng->Int(0, n - 1);
      if (j == i) j = (j + 1) % n;
      pairs.push_back({i, j});
    }
  }
  std::vector<bool> outcomes =
      ComparePairs(enc, pairs, task_embed, compare_batch);
  std::vector<int> wins(static_cast<size_t>(n), 0);
  for (size_t p = 0; p < pairs.size(); ++p) {
    // Credit both sides: the winner of each duel gets a point.
    if (outcomes[p]) {
      ++wins[static_cast<size_t>(pairs[p].first)];
    } else {
      ++wins[static_cast<size_t>(pairs[p].second)];
    }
  }
  return wins;
}

std::vector<int> EvolutionarySearcher::RoundRobinWins(
    const std::vector<ArchHyper>& candidates, const Tensor& task_embed,
    int compare_batch) const {
  const int n = static_cast<int>(candidates.size());
  std::vector<ArchHyperEncoding> enc;
  enc.reserve(candidates.size());
  for (const ArchHyper& ah : candidates) enc.push_back(EncodeArchHyper(ah));
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) pairs.push_back({i, j});
    }
  }
  std::vector<bool> outcomes =
      ComparePairs(enc, pairs, task_embed, compare_batch);
  std::vector<int> wins(static_cast<size_t>(n), 0);
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (outcomes[p]) ++wins[static_cast<size_t>(pairs[p].first)];
  }
  return wins;
}

namespace {

/// Indices of the top-k values, descending.
std::vector<int> TopIndices(const std::vector<int>& scores, int k) {
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
  });
  order.resize(static_cast<size_t>(std::min<int>(k, static_cast<int>(order.size()))));
  return order;
}

}  // namespace

std::vector<ArchHyper> EvolutionarySearcher::SearchTopK(
    const Tensor& task_embed, const SearchOptions& options) const {
  Rng rng(options.seed);
  // Stage 1: sample K_s candidates and rank them by sparse tournament.
  std::vector<ArchHyper> pool =
      space_->SampleDistinct(options.ranking_pool, &rng);
  std::vector<int> wins =
      SparseWinCounts(pool, task_embed, options.opponents_per_candidate,
                      options.compare_batch, &rng);
  std::vector<ArchHyper> population;
  for (int idx : TopIndices(wins, options.population)) {
    population.push_back(pool[static_cast<size_t>(idx)]);
  }

  // Stage 2: evolution — offspring via crossover/mutation, survivors by
  // comparator round-robin within the (small) population.
  for (int gen = 0; gen < options.generations; ++gen) {
    std::vector<ArchHyper> offspring;
    for (const ArchHyper& parent : population) {
      ArchHyper child = parent;
      if (rng.Bernoulli(options.crossover_prob)) {
        const ArchHyper& other = rng.Choice(population);
        child = space_->Crossover(child, other, &rng);
      }
      if (rng.Bernoulli(options.mutation_prob)) {
        child = space_->Mutate(child, &rng);
      }
      offspring.push_back(std::move(child));
    }
    std::vector<ArchHyper> merged = population;
    merged.insert(merged.end(), offspring.begin(), offspring.end());
    std::vector<int> rr =
        RoundRobinWins(merged, task_embed, options.compare_batch);
    std::vector<ArchHyper> next;
    for (int idx : TopIndices(rr, options.population)) {
      next.push_back(merged[static_cast<size_t>(idx)]);
    }
    population = std::move(next);
  }

  // Stage 3: transitivity-free top-K by round-robin wins (Alg. 2).
  std::vector<int> final_wins =
      RoundRobinWins(population, task_embed, options.compare_batch);
  std::vector<ArchHyper> top;
  for (int idx : TopIndices(final_wins, options.top_k)) {
    top.push_back(population[static_cast<size_t>(idx)]);
  }
  return top;
}

}  // namespace autocts
