#ifndef REPRO_EMBEDDING_TS2VEC_H_
#define REPRO_EMBEDDING_TS2VEC_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/task.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace autocts {

/// Interface of the per-timestep time-series encoders that produce the
/// preliminary task embeddings (paper Eq. 9). Implemented by the TS2Vec
/// encoder and by the plain MLP used in the "w/o TS2Vec" ablation.
class TaskEncoder : public Module {
 public:
  /// [R, S, F] -> [R, S, repr_dim].
  virtual Tensor Encode(const Tensor& x) const = 0;
  virtual int repr_dim() const = 0;
};

/// TS2Vec-style encoder [Yue et al. 2022]: input projection followed by a
/// stack of dilated causal convolutions with residual connections, giving a
/// representation for every time step of a window.
class Ts2Vec : public TaskEncoder {
 public:
  struct Options {
    int repr_dim = 16;
    int hidden = 16;
    int layers = 3;  ///< Dilations 1, 2, 4, ...
  };

  Ts2Vec(int in_features, const Options& options, Rng* rng);

  Tensor Encode(const Tensor& x) const override;
  int repr_dim() const override { return options_.repr_dim; }

 private:
  Options options_;
  Linear input_proj_;
  std::vector<std::unique_ptr<CausalConv>> convs_;
  Linear output_proj_;
};

/// Plain per-timestep MLP encoder — the "w/o TS2Vec" ablation (§4.2.3).
class MlpEncoder : public TaskEncoder {
 public:
  MlpEncoder(int in_features, int repr_dim, Rng* rng);

  Tensor Encode(const Tensor& x) const override;
  int repr_dim() const override { return repr_dim_; }

 private:
  int repr_dim_;
  Mlp mlp_;
};

/// Pre-training knobs for the hierarchical contrastive objective.
struct Ts2VecPretrainOptions {
  int epochs = 2;
  int batches_per_epoch = 8;
  int batch_size = 8;
  int crop_len = 24;       ///< Segment length sampled from each series.
  float mask_prob = 0.15f; ///< Timestamp masking rate for the two views.
  float lr = 1e-3f;
  float temperature = 0.5f;
};

/// Pre-trains a TS2Vec encoder with temporal + instance contrastive losses
/// over two independently masked context views of random segments drawn
/// from the given corpora. Returns the mean loss of the final epoch.
double PretrainTs2Vec(Ts2Vec* encoder,
                      const std::vector<CtsDatasetPtr>& corpora,
                      const Ts2VecPretrainOptions& options, Rng* rng);

/// Computes the preliminary embedding of a task (Eq. 9–10): samples
/// `num_windows` sliding windows of length S = P+Q, encodes every series,
/// and averages over the N series. Result: a constant [W, S, repr] tensor.
Tensor PreliminaryTaskEmbedding(const TaskEncoder& encoder,
                                const ForecastTask& task, int num_windows,
                                Rng* rng);

/// Consumes exactly the RNG draws PreliminaryTaskEmbedding would have made
/// for this task, without the encoder forward. Used when the embedding is
/// restored from the sample bank: the serial draw stream must stay
/// bit-identical to an uninterrupted run for everything sampled after it.
void SkipPreliminaryEmbeddingDraws(const ForecastTask& task, int num_windows,
                                   Rng* rng);

}  // namespace autocts

#endif  // REPRO_EMBEDDING_TS2VEC_H_
