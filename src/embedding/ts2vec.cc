#include "embedding/ts2vec.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "tensor/fused.h"
#include "tensor/ops.h"

namespace autocts {

Ts2Vec::Ts2Vec(int in_features, const Options& options, Rng* rng)
    : options_(options),
      input_proj_(in_features, options.hidden, rng),
      output_proj_(options.hidden, options.repr_dim, rng) {
  AddChild(&input_proj_);
  for (int l = 0; l < options.layers; ++l) {
    convs_.push_back(std::make_unique<CausalConv>(options.hidden,
                                                  options.hidden, 2, 1 << l,
                                                  rng));
    AddChild(convs_.back().get());
  }
  AddChild(&output_proj_);
}

Tensor Ts2Vec::Encode(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 3);
  Tensor h = input_proj_.Forward(x);
  for (const auto& conv : convs_) {
    h = Add(h, Relu(conv->Forward(h)));  // Residual dilated stack.
  }
  return output_proj_.Forward(h);
}

MlpEncoder::MlpEncoder(int in_features, int repr_dim, Rng* rng)
    : repr_dim_(repr_dim), mlp_(in_features, 2 * repr_dim, repr_dim, rng) {
  AddChild(&mlp_);
}

Tensor MlpEncoder::Encode(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 3);
  return mlp_.Forward(x);
}

namespace {

/// Draws a [batch, crop, 1] segment batch of z-scored series values.
Tensor SampleSegments(const std::vector<CtsDatasetPtr>& corpora,
                      int batch_size, int crop_len, Rng* rng) {
  std::vector<float> data(static_cast<size_t>(batch_size) * crop_len);
  for (int b = 0; b < batch_size; ++b) {
    const CtsDataset& d =
        *corpora[static_cast<size_t>(rng->Int(0, static_cast<int>(corpora.size()) - 1))];
    int series = rng->Int(0, d.num_series() - 1);
    int max_start = std::max(0, d.num_steps() - crop_len);
    int start = rng->Int(0, max_start);
    float mean, std;
    d.MeanStd(1.0, &mean, &std);
    for (int t = 0; t < crop_len; ++t) {
      int src = std::min(start + t, d.num_steps() - 1);
      data[static_cast<size_t>(b) * crop_len + t] =
          (d.value(series, src, 0) - mean) / std;
    }
  }
  return Tensor::FromVector({batch_size, crop_len, 1}, std::move(data));
}

/// Random timestamp masking: zeroes whole time steps with prob p.
Tensor MaskView(const Tensor& x, float p, Rng* rng) {
  const int b = x.dim(0), l = x.dim(1);
  std::vector<float> mask(static_cast<size_t>(b) * l);
  for (auto& m : mask) m = rng->Bernoulli(p) ? 0.0f : 1.0f;
  return Mul(x, Tensor::FromVector({b, l, 1}, std::move(mask)));
}

/// -mean(log diag(softmax(S, -1))) where S is [..., M, M]: InfoNCE with the
/// matching element as the positive.
Tensor DiagonalNce(const Tensor& scores) {
  int m = scores.dim(-1);
  CHECK_EQ(scores.dim(-2), m);
  std::vector<float> eye(static_cast<size_t>(m) * m, 0.0f);
  for (int i = 0; i < m; ++i) eye[static_cast<size_t>(i) * m + i] = 1.0f;
  Tensor identity = Tensor::FromVector({m, m}, std::move(eye));
  Tensor probs = FusedSoftmax(scores, 1.0f);
  Tensor diag = Sum(Mul(probs, identity), -1);  // [..., M]
  return Neg(MeanAll(Log(diag, 1e-7f)));
}

}  // namespace

double PretrainTs2Vec(Ts2Vec* encoder,
                      const std::vector<CtsDatasetPtr>& corpora,
                      const Ts2VecPretrainOptions& options, Rng* rng) {
  CHECK(!corpora.empty());
  Adam::Options adam_opts;
  adam_opts.lr = options.lr;
  Adam adam(encoder->Parameters(), adam_opts);
  encoder->SetTraining(true);
  const float inv_temp =
      1.0f / (options.temperature *
              std::sqrt(static_cast<float>(encoder->repr_dim())));
  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (int step = 0; step < options.batches_per_epoch; ++step) {
      Tensor x = SampleSegments(corpora, options.batch_size, options.crop_len,
                                rng);
      Tensor z1 = encoder->Encode(MaskView(x, options.mask_prob, rng));
      Tensor z2 = encoder->Encode(MaskView(x, options.mask_prob, rng));
      // Temporal contrast: same instance, timestamps against each other.
      Tensor st = MulScalar(MatMul(z1, Transpose(z2, -2, -1)), inv_temp);
      Tensor temporal_loss = DiagonalNce(st);
      // Instance contrast: same timestamp, instances against each other.
      Tensor z1t = Transpose(z1, 0, 1);  // [L, B, D]
      Tensor z2t = Transpose(z2, 0, 1);
      Tensor si = MulScalar(MatMul(z1t, Transpose(z2t, -2, -1)), inv_temp);
      Tensor instance_loss = DiagonalNce(si);
      Tensor loss = Add(temporal_loss, instance_loss);
      adam.ZeroGrad();
      loss.Backward();
      adam.Step();
      epoch_loss += loss.item();
      // Recycle the step's graph storage through the buffer pool.
      loss.ReleaseTape();
    }
    last_epoch_loss = epoch_loss / options.batches_per_epoch;
  }
  encoder->SetTraining(false);
  return last_epoch_loss;
}

Tensor PreliminaryTaskEmbedding(const TaskEncoder& encoder,
                                const ForecastTask& task, int num_windows,
                                Rng* rng) {
  const CtsDataset& d = *task.data;
  const int s = task.p + task.q;
  const int n = d.num_series();
  CHECK_GT(num_windows, 0);
  float mean, std;
  d.MeanStd(1.0, &mean, &std);
  if (std < 1e-6f) std = 1.0f;
  int max_start = std::max(0, d.num_steps() - s);
  // Encode all series of all sampled windows in one batch: [W*N, S, F].
  std::vector<float> data(static_cast<size_t>(num_windows) * n * s);
  for (int w = 0; w < num_windows; ++w) {
    int start = rng->Int(0, max_start);
    for (int ni = 0; ni < n; ++ni) {
      for (int t = 0; t < s; ++t) {
        int src = std::min(start + t, d.num_steps() - 1);
        data[(static_cast<size_t>(w) * n + ni) * s + t] =
            (d.value(ni, src, 0) - mean) / std;
      }
    }
  }
  Tensor x = Tensor::FromVector({num_windows * n, s, 1}, std::move(data));
  Tensor encoded = encoder.Encode(x);  // [W*N, S, D]
  // Mean over the N series of each window (Eq. 10).
  Tensor grouped =
      Reshape(encoded, {num_windows, n, s, encoder.repr_dim()});
  return Mean(grouped, 1).Detach();  // [W, S, D], constant thereafter.
}

void SkipPreliminaryEmbeddingDraws(const ForecastTask& task, int num_windows,
                                   Rng* rng) {
  // Must mirror PreliminaryTaskEmbedding draw-for-draw: one Int(0,
  // max_start) per window, nothing else touches the stream.
  const CtsDataset& d = *task.data;
  const int s = task.p + task.q;
  CHECK_GT(num_windows, 0);
  int max_start = std::max(0, d.num_steps() - s);
  for (int w = 0; w < num_windows; ++w) {
    (void)rng->Int(0, max_start);
  }
}

}  // namespace autocts
