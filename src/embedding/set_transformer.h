#ifndef REPRO_EMBEDDING_SET_TRANSFORMER_H_
#define REPRO_EMBEDDING_SET_TRANSFORMER_H_

#include <memory>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace autocts {

/// Pooling-by-Multihead-Attention (PMA) block of the Set-Transformer
/// [Lee et al. 2019]: a learnable seed vector attends over the elements of
/// a set, producing a permutation-invariant fixed-size summary.
class SetPool : public Module {
 public:
  SetPool(int in_dim, int out_dim, Rng* rng);

  /// [B, M, in_dim] -> [B, out_dim] (order of the M elements irrelevant).
  Tensor Forward(const Tensor& x) const;

 private:
  int in_dim_;
  int out_dim_;
  Tensor seed_;  ///< [1, in_dim] learnable query.
  Linear k_proj_;
  Linear v_proj_;
  Linear out_proj_;
  std::unique_ptr<Mlp> ffn_;
  LayerNorm norm_;
};

/// The task embedding learning module of T-AHC (paper Eq. 10–12): two
/// stacked Set-Transformer pools. IntraSetPool summarizes each window's
/// time dimension, InterSetPool aggregates the window summaries into one
/// task vector E'. Trained end-to-end with the comparator.
class TaskEmbedModule : public Module {
 public:
  /// `repr_dim` is the TS2Vec F'; `f1` and `f2` the paper's F'_1 and F'_2.
  TaskEmbedModule(int repr_dim, int f1, int f2, Rng* rng);

  /// Preliminary embedding [W, S, repr] -> task vector [f2].
  Tensor Forward(const Tensor& preliminary) const;

  /// The "w/o Set-Transformer" ablation path: plain mean pooling over both
  /// time and windows followed by the same output projection size.
  Tensor MeanPoolForward(const Tensor& preliminary) const;

  int output_dim() const { return f2_; }

 private:
  int f1_;
  int f2_;
  SetPool intra_;
  SetPool inter_;
  Linear mean_proj_;  ///< Used only by MeanPoolForward.
};

}  // namespace autocts

#endif  // REPRO_EMBEDDING_SET_TRANSFORMER_H_
