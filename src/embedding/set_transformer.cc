#include "embedding/set_transformer.h"

#include <cmath>

#include "tensor/fused.h"
#include "tensor/ops.h"

namespace autocts {

SetPool::SetPool(int in_dim, int out_dim, Rng* rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      k_proj_(in_dim, in_dim, rng),
      v_proj_(in_dim, in_dim, rng),
      out_proj_(in_dim, out_dim, rng),
      norm_(out_dim) {
  seed_ = AddParameter(Tensor::Randn({1, in_dim}, rng, 0.5f, true));
  ffn_ = std::make_unique<Mlp>(out_dim, 2 * out_dim, out_dim, rng);
  AddChild(&k_proj_);
  AddChild(&v_proj_);
  AddChild(&out_proj_);
  AddChild(ffn_.get());
  AddChild(&norm_);
}

Tensor SetPool::Forward(const Tensor& x) const {
  CHECK_EQ(x.ndim(), 3);
  CHECK_EQ(x.dim(2), in_dim_);
  Tensor k = k_proj_.Forward(x);  // [B, M, D]
  Tensor v = v_proj_.Forward(x);
  float scale = 1.0f / std::sqrt(static_cast<float>(in_dim_));
  // Seed [1, D] against keys: scores [B, 1, M]; the 1/sqrt(D) scaling is
  // folded into the fused softmax.
  Tensor attn = FusedSoftmax(MatMul(seed_, Transpose(k, -2, -1)), scale);
  Tensor pooled = Reshape(MatMul(attn, v), {x.dim(0), in_dim_});  // [B, D]
  Tensor y = out_proj_.Forward(pooled);
  return norm_.Forward(y, ffn_->Forward(y));
}

TaskEmbedModule::TaskEmbedModule(int repr_dim, int f1, int f2, Rng* rng)
    : f1_(f1),
      f2_(f2),
      intra_(repr_dim, f1, rng),
      inter_(f1, f2, rng),
      mean_proj_(repr_dim, f2, rng) {
  AddChild(&intra_);
  AddChild(&inter_);
  AddChild(&mean_proj_);
}

Tensor TaskEmbedModule::Forward(const Tensor& preliminary) const {
  CHECK_EQ(preliminary.ndim(), 3);  // [W, S, repr]
  Tensor window_summaries = intra_.Forward(preliminary);  // [W, f1]
  const int w = preliminary.dim(0);
  Tensor task_vec = inter_.Forward(Reshape(window_summaries, {1, w, f1_}));
  return Reshape(task_vec, {f2_});
}

Tensor TaskEmbedModule::MeanPoolForward(const Tensor& preliminary) const {
  CHECK_EQ(preliminary.ndim(), 3);
  Tensor mean = Mean(Mean(preliminary, 1), 0);  // [repr]
  return mean_proj_.Forward(mean);
}

}  // namespace autocts
