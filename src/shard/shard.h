#ifndef REPRO_SHARD_SHARD_H_
#define REPRO_SHARD_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/runtime_stats.h"
#include "common/status.h"
#include "comparator/pretrain.h"

namespace autocts {

/// Knobs of the sharded sample-collection run (seeded from AUTOCTS_SHARD_*
/// via RuntimeConfig; AutoCtsOptions and the CLI override).
struct ShardOptions {
  /// Worker processes to fork. Values <= 1 still run the full coordinator
  /// path with one worker — the configuration every multi-worker run must
  /// be bit-identical to.
  int num_workers = 1;
  /// Threads per worker's private pool (0 = hardware concurrency). Workers
  /// never touch the coordinator's pools: threads do not survive fork.
  int worker_threads = 1;
  /// Scratch + output directory: per-worker `bank.shard-K` files and the
  /// canonical `merged.bank` live here. Required.
  std::string dir;
  /// Config hash stamped into every bank file (PretrainConfigHash upstream;
  /// shard banks from a different configuration are deleted on sight).
  uint64_t config_hash = 0;
  /// Minimum interval between a worker's progress heartbeats.
  int heartbeat_ms = 250;
  /// Silence on a worker's channel after which its in-flight shard becomes
  /// stealable by an idle worker. Must exceed the worst-case wall time of
  /// one sample training plus one heartbeat interval, or healthy slow
  /// workers get (harmlessly, but wastefully) stolen from.
  int steal_timeout_ms = 10000;
  /// Replacement workers forked after deaths across the whole run
  /// (-1 = num_workers).
  int max_worker_restarts = -1;
  /// Bounded reclaim: a shard reassigned more than this many times fails
  /// the run instead of looping forever on a poisonous task.
  int max_shard_reassign = 5;
};

/// The canonical merged-bank path of a shard run over `dir` — what
/// determinism tests memcmp across worker counts.
std::string MergedBankPath(const std::string& dir);

/// CollectSamples, fanned out over `shard.num_workers` forked worker
/// processes coordinated over per-worker Unix-domain socket pairs.
///
/// Every process (coordinator and workers alike) rebuilds the identical
/// CollectPlan from the same inputs — planning burns the whole RNG stream
/// serially, so the pending list, model seeds, and preliminary embeddings
/// are bit-equal everywhere. One shard = one task. Workers claim shards
/// over the socket protocol, train the claimed pending range with their
/// private thread pool, and append the task's section plus each sample's
/// fate to their own `bank.shard-K` (exclusively flocked); the coordinator
/// work-steals shards from dead or silent workers, then rescans the shard
/// banks and writes `merged.bank` in canonical (task, slot) order from the
/// plan plus the signature-verified fates. Merged-bank bytes and the
/// returned TaskSampleSets therefore depend only on the plan — not on
/// worker count, thread count, kills, steals, or resume history.
///
/// Resume: shard banks found in `dir` (from a crashed coordinator) are
/// recovered (torn tails truncated) and their fates counted before any
/// worker is forked; `hook` (the pipeline checkpoint) is consulted for
/// fates and task sections first, and every final fate is committed back
/// through it in canonical order.
///
/// Throws InjectedKill when FaultPoint::kShardWorkerKill fires at
/// kShardCoordinatorAddress (children are killed and reaped first); real
/// coordination failures return an error Status.
StatusOr<std::vector<TaskSampleSet>> ShardedCollectSamples(
    const std::vector<ForecastTask>& tasks, const JointSearchSpace& space,
    const TaskEncoder& encoder, const ScaleConfig& scale,
    const SampleCollectionOptions& options, const ShardOptions& shard,
    const ExecContext& ctx = {}, SampleBankHook* hook = nullptr);

/// Process-lifetime shard counters (also registered as the RuntimeStats
/// "shard" provider on first sharded run). Only the coordinator process
/// accumulates them.
ShardStats CurrentShardStats();

}  // namespace autocts

#endif  // REPRO_SHARD_SHARD_H_
