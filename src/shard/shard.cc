#include "shard/shard.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/binio.h"
#include "common/fault.h"
#include "common/socketio.h"
#include "common/subprocess.h"
#include "comparator/bank_file.h"

namespace autocts {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

// ---- counters (the RuntimeStats "shard" family) --------------------------

struct ShardCounters {
  std::atomic<uint64_t> runs{0};
  std::atomic<uint64_t> shards_total{0};
  std::atomic<uint64_t> shards_done{0};
  std::atomic<uint64_t> shards_resumed{0};
  std::atomic<uint64_t> shards_stolen{0};
  std::atomic<uint64_t> shards_reclaimed{0};
  std::atomic<uint64_t> worker_restarts{0};
  std::atomic<uint64_t> heartbeats{0};
  std::atomic<uint64_t> corrupt_frames{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
};

ShardCounters& Counters() {
  static ShardCounters* counters = new ShardCounters();
  return *counters;
}

ShardStats SnapshotCounters() {
  const ShardCounters& c = Counters();
  ShardStats s;
  s.runs = c.runs.load(std::memory_order_relaxed);
  s.shards_total = c.shards_total.load(std::memory_order_relaxed);
  s.shards_done = c.shards_done.load(std::memory_order_relaxed);
  s.shards_resumed = c.shards_resumed.load(std::memory_order_relaxed);
  s.shards_stolen = c.shards_stolen.load(std::memory_order_relaxed);
  s.shards_reclaimed = c.shards_reclaimed.load(std::memory_order_relaxed);
  s.worker_restarts = c.worker_restarts.load(std::memory_order_relaxed);
  s.heartbeats = c.heartbeats.load(std::memory_order_relaxed);
  s.corrupt_frames = c.corrupt_frames.load(std::memory_order_relaxed);
  s.bytes_in = c.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = c.bytes_out.load(std::memory_order_relaxed);
  return s;
}

void EnsureProviderRegistered() {
  static bool registered = [] {
    RegisterShardStatsProvider(&SnapshotCounters);
    return true;
  }();
  (void)registered;
}

// ---- wire protocol -------------------------------------------------------
//
// Frame kinds over each worker's socketpair (payloads built/parsed with the
// common/binio.h helpers; the transport framing and CRC live in
// common/socketio.h). The full frame table is documented in DESIGN.md
// "Sharded pretraining".

enum ShardMsg : uint32_t {
  kMsgHello = 1,      ///< worker -> coord: u32 ordinal. Sent once on start.
  kMsgRequest = 2,    ///< worker -> coord: u32 ordinal. "Give me a shard."
  kMsgAssign = 3,     ///< coord -> worker: u32 task. "Train this shard."
  kMsgNoWork = 4,     ///< coord -> worker: empty. "Everything done; exit."
  kMsgHeartbeat = 5,  ///< worker -> coord: u32 ordinal, u32 task, u64 done.
  kMsgDone = 6,       ///< worker -> coord: u32 ordinal, u32 task.
};

constexpr size_t kWireFrameHeaderBytes =
    sizeof(uint32_t) * 2 + sizeof(uint64_t);

std::string ShardBankPath(const std::string& dir, int ordinal) {
  return dir + "/bank.shard-" + std::to_string(ordinal);
}

BankRecord RecordFromSample(int task, int slot, const LabeledSample& sample) {
  BankRecord r;
  r.task = task;
  r.slot = slot;
  r.signature = SampleFateSignature(sample);
  r.r_prime = sample.r_prime;
  r.shared = sample.shared;
  r.quarantined = sample.quarantined;
  r.retries = sample.retries;
  r.note = sample.note;
  r.arch = sample.arch_hyper.Signature();
  return r;
}

// ---- worker process ------------------------------------------------------

/// The worker-side persistence hook: fates land in the worker's own
/// exclusively-flocked `bank.shard-K`, with restore served from whatever
/// that file already held (a previous incarnation's work, after a
/// coordinator resume re-used the ordinal). Each commit doubles as the
/// heartbeat tick and the kShardWorkerKill probe site — a killed worker
/// leaves every committed sample on disk and nothing else, exactly like a
/// real SIGKILL.
class WorkerBankHook : public SampleBankHook {
 public:
  WorkerBankHook(SampleBank* bank, FrameChannel* channel, int ordinal,
                 int heartbeat_ms)
      : bank_(bank),
        channel_(channel),
        ordinal_(ordinal),
        heartbeat_ms_(heartbeat_ms) {
    for (const BankRecord& r : bank->records()) {
      known_[{r.task, r.slot}] = r;
    }
  }

  void set_current_task(int task) { current_task_ = task; }

  bool Restore(int task, int slot, LabeledSample* sample) override {
    auto it = known_.find({task, slot});
    if (it == known_.end()) return false;
    if (it->second.signature != SampleFateSignature(*sample)) return false;
    sample->r_prime = it->second.r_prime;
    sample->quarantined = it->second.quarantined;
    sample->retries = it->second.retries;
    sample->note = it->second.note;
    return true;
  }

  void Commit(int task, int slot, const LabeledSample& sample) override {
    // Injected worker death, probed per spawn ordinal: everything committed
    // so far is on disk, this sample is not.
    if (AnyFaultArmed() &&
        FaultFires(FaultPoint::kShardWorkerKill, ordinal_)) {
      ::_exit(137);
    }
    if (known_.count({task, slot}) != 0) return;  // restored; already banked
    if (!bank_->AppendRecord(RecordFromSample(task, slot, sample)).ok()) {
      ::_exit(3);
    }
    ++samples_done_;
    const Clock::time_point now = Clock::now();
    if (!heartbeat_sent_ ||
        now - last_heartbeat_ >= std::chrono::milliseconds(heartbeat_ms_)) {
      std::string payload;
      AppendPod(&payload, static_cast<uint32_t>(ordinal_));
      AppendPod(&payload, static_cast<uint32_t>(current_task_));
      AppendPod(&payload, samples_done_);
      (void)channel_->Send(kMsgHeartbeat, payload);
      last_heartbeat_ = now;
      heartbeat_sent_ = true;
    }
  }

 private:
  SampleBank* bank_;
  FrameChannel* channel_;
  int ordinal_;
  int heartbeat_ms_;
  int current_task_ = -1;
  uint64_t samples_done_ = 0;
  std::map<std::pair<int, int>, BankRecord> known_;
  Clock::time_point last_heartbeat_{};
  bool heartbeat_sent_ = false;
};

/// Body of one forked worker. Rebuilds the identical plan (hook-free: the
/// serial pass is cheap next to one training, and recomputing keeps workers
/// independent of the coordinator's checkpoint files), then claims shards
/// until the coordinator says NoWork. Exit codes: 0 clean, 2 setup failure,
/// 3 protocol/IO failure, 137 injected kill.
int RunShardWorker(int fd, int ordinal, const std::vector<ForecastTask>& tasks,
                   const JointSearchSpace& space, const TaskEncoder& encoder,
                   const ScaleConfig& scale,
                   const SampleCollectionOptions& options,
                   const ShardOptions& shard, uint64_t seed) {
  SetFrameFaultAddress(ordinal);
  FrameChannel channel(fd);
  ThreadPool pool(shard.worker_threads);
  ExecContext wctx{&pool, seed};
  CollectPlan plan =
      PlanCollectSamples(tasks, space, encoder, scale, options, wctx, nullptr);
  StatusOr<std::unique_ptr<SampleBank>> bank_or = SampleBank::Open(
      ShardBankPath(shard.dir, ordinal), shard.config_hash,
      SampleBank::Mode::kAppend);
  if (!bank_or.ok()) return 2;
  SampleBank* bank = bank_or.value().get();
  std::set<std::pair<int, uint64_t>> have_sections;
  for (const BankSection& s : bank->sections()) {
    have_sections.insert({s.task, s.key});
  }
  WorkerBankHook hook(bank, &channel, ordinal, shard.heartbeat_ms);
  std::string ident;
  AppendPod(&ident, static_cast<uint32_t>(ordinal));
  if (!channel.Send(kMsgHello, ident).ok()) return 3;
  for (;;) {
    if (!channel.Send(kMsgRequest, ident).ok()) return 3;
    StatusOr<SocketFrame> frame = channel.Recv(-1);
    if (!frame.ok()) return 3;  // coordinator gone or frame corrupted
    if (frame.value().kind == kMsgNoWork) break;
    if (frame.value().kind != kMsgAssign) return 3;
    FrameReader reader(frame.value().payload, 0);
    uint32_t task = 0;
    if (!reader.Read(&task) || task >= tasks.size()) return 3;
    const int t = static_cast<int>(task);
    const uint64_t key = TaskSectionKey(tasks[t], options.windows_per_task);
    if (have_sections.count({t, key}) == 0) {
      const Tensor& pre = plan.sets[t].preliminary;
      if (!bank->AppendSection(t, key, tasks[t].name(), pre.shape(),
                               pre.data().data())
               .ok()) {
        return 3;
      }
      have_sections.insert({t, key});
    }
    hook.set_current_task(t);
    const std::pair<int64_t, int64_t> range = plan.TaskRange(t);
    TrainPlannedSamples(&plan, range.first, range.second, wctx, &hook);
    std::string done = ident;
    AppendPod(&done, task);
    if (!channel.Send(kMsgDone, done).ok()) return 3;
  }
  return 0;
}

// ---- coordinator ---------------------------------------------------------

struct ShardState {
  enum class S { kNeeded, kAssigned, kDone };
  S state = S::kNeeded;
  int owner = -1;  ///< Spawn ordinal of the assigned worker.
  Clock::time_point last_progress{};
  int reassignments = 0;
};

struct WorkerProc {
  pid_t pid = -1;
  int ordinal = -1;
  std::unique_ptr<FrameChannel> channel;
  bool connected = false;  ///< Channel open and believed healthy.
  bool reaped = false;
  bool parked = false;  ///< Sent Request; waiting for work to exist.
  int current_shard = -1;
};

/// Owns the worker processes for the duration of a coordinated run. The
/// destructor is the single cleanup path — on any exit (success, error
/// Status, or a thrown InjectedKill modelling a coordinator crash) every
/// still-running child is SIGKILLed and reaped, so no worker outlives the
/// coordinator and no flock outlives a worker.
class WorkerGroup {
 public:
  ~WorkerGroup() {
    for (WorkerProc& w : workers) {
      if (w.channel) w.channel->Close();
      if (!w.reaped && w.pid > 0) {
        KillChild(w.pid);
        w.reaped = true;
      }
    }
  }

  // A deque, not a vector: the poll sweep holds WorkerProc* across
  // spawn_worker() calls (replacement workers forked mid-sweep), and deque
  // push_back never invalidates references to existing elements.
  std::deque<WorkerProc> workers;
};

/// The shard fates accumulated from checkpoint restores and shard-bank
/// scans, keyed by canonical (task, slot).
using FateMap = std::map<std::pair<int, int>, LabeledSample>;

LabeledSample ExpectedSample(const PendingSample& ps) {
  LabeledSample s;
  s.arch_hyper = ps.arch_hyper;
  s.shared = ps.shared;
  return s;
}

/// True when a SampleBank::Open failure positively identifies the file as
/// unusable for this run — written under another configuration, or
/// structurally corrupt beyond the torn tails kAppend already recovers.
/// Matches the error strings bank_file.cc emits for exactly those states;
/// everything else (held append lock, EMFILE/EIO/permission trouble from
/// the mmap or writer open) may be transient and must not condemn the file.
bool BankOpenIdentifiesStaleState(const std::string& msg) {
  return msg.find("different configuration") != std::string::npos ||
         msg.find("bad magic") != std::string::npos ||
         msg.find("unsupported version") != std::string::npos ||
         msg.find("header CRC mismatch") != std::string::npos ||
         msg.find("at offset") != std::string::npos;  // frame-scan corruption
}

/// Scans every `bank.shard-*` in the run directory and absorbs
/// signature-verified fates. Opening kAppend recovers torn tails (the
/// after-kill state of a worker bank); a bank that provably belongs to a
/// different configuration (or is corrupt past recovery) is deleted so a
/// worker can recreate the path, while any other open failure — lock held,
/// transient IO — skips the file and leaves its committed work on disk for
/// a later pass. Dedup: the first fate absorbed for a (task, slot) wins —
/// duplicates from stolen shards are bit-identical by the determinism
/// contract, so "first wins" is a no-double-count rule, not a tie-break.
void AbsorbShardBanks(const ShardOptions& shard, const CollectPlan& plan,
                      const std::map<std::pair<int, int>, size_t>& slots,
                      FateMap* fates) {
  std::error_code ec;
  std::vector<fs::path> paths;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(shard.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("bank.shard-", 0) == 0) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    StatusOr<std::unique_ptr<SampleBank>> bank = SampleBank::Open(
        path.string(), shard.config_hash, SampleBank::Mode::kAppend);
    if (!bank.ok()) {
      if (BankOpenIdentifiesStaleState(bank.status().message())) {
        fs::remove(path, ec);
      }
      continue;
    }
    for (const BankRecord& r : bank.value()->records()) {
      const std::pair<int, int> key{r.task, r.slot};
      if (fates->count(key) != 0) continue;
      auto it = slots.find(key);
      if (it == slots.end()) continue;
      LabeledSample s = ExpectedSample(plan.pending[it->second]);
      if (r.signature != SampleFateSignature(s)) continue;
      s.r_prime = r.r_prime;
      s.quarantined = r.quarantined;
      s.retries = r.retries;
      s.note = r.note;
      (*fates)[key] = s;
    }
  }
}

/// Rebuilds `merged.bank` from the plan and the verified fates in canonical
/// order — section then records per task, tasks ascending, slots ascending.
/// Every byte depends only on (plan, fates), both of which are worker-count
/// invariant, so this file memcmp-matches across any execution history.
Status WriteMergedBank(const ShardOptions& shard, const CollectPlan& plan,
                       const std::vector<ForecastTask>& tasks,
                       const SampleCollectionOptions& options,
                       const FateMap& fates) {
  const std::string path = MergedBankPath(shard.dir);
  std::error_code ec;
  fs::remove(path, ec);
  StatusOr<std::unique_ptr<SampleBank>> bank =
      SampleBank::Open(path, shard.config_hash, SampleBank::Mode::kAppend);
  if (!bank.ok()) return bank.status();
  for (size_t t = 0; t < tasks.size(); ++t) {
    const Tensor& pre = plan.sets[t].preliminary;
    Status appended = bank.value()->AppendSection(
        static_cast<int>(t),
        TaskSectionKey(tasks[t], options.windows_per_task), tasks[t].name(),
        pre.shape(), pre.data().data());
    if (!appended.ok()) return appended;
    for (size_t slot = 0; slot < plan.sets[t].samples.size(); ++slot) {
      auto it = fates.find({static_cast<int>(t), static_cast<int>(slot)});
      if (it == fates.end()) {
        return Status::Error("merge missing fate for task " +
                             std::to_string(t) + " slot " +
                             std::to_string(slot));
      }
      appended = bank.value()->AppendRecord(RecordFromSample(
          static_cast<int>(t), static_cast<int>(slot), it->second));
      if (!appended.ok()) return appended;
    }
  }
  return Status::Ok();
}

/// Forks workers and serves shards until every needed shard is done (or the
/// run cannot make progress). Single-threaded poll loop; all socket IO goes
/// through here.
Status RunCoordinatorLoop(const std::vector<ForecastTask>& tasks,
                          const JointSearchSpace& space,
                          const TaskEncoder& encoder, const ScaleConfig& scale,
                          const SampleCollectionOptions& options,
                          const ShardOptions& shard, uint64_t seed,
                          std::vector<ShardState>* states) {
  SetFrameFaultAddress(kShardCoordinatorAddress);
  int needed = 0;
  for (const ShardState& s : *states) {
    if (s.state != ShardState::S::kDone) ++needed;
  }
  if (needed == 0) return Status::Ok();
  const int num_workers = std::max(1, std::min(shard.num_workers, needed));
  const int max_restarts = shard.max_worker_restarts < 0
                               ? num_workers
                               : shard.max_worker_restarts;
  WorkerGroup group;
  int next_ordinal = 0;
  int restarts_used = 0;

  auto spawn_worker = [&]() -> Status {
    int fds[2];
    Status made = MakeSocketPair(fds);
    if (!made.ok()) return made;
    const int ordinal = next_ordinal++;
    StatusOr<pid_t> pid = SpawnChild([&, ordinal, fds]() -> int {
      // The child inherited every earlier worker's parent-side fd; close
      // them all so a sibling's EOF detection only depends on the
      // coordinator, then run with our own end.
      for (const WorkerProc& other : group.workers) {
        if (other.channel) ::close(other.channel->fd());
      }
      ::close(fds[0]);
      return RunShardWorker(fds[1], ordinal, tasks, space, encoder, scale,
                            options, shard, seed);
    });
    if (!pid.ok()) {
      ::close(fds[0]);
      ::close(fds[1]);
      return pid.status();
    }
    ::close(fds[1]);
    WorkerProc w;
    w.pid = pid.value();
    w.ordinal = ordinal;
    w.channel = std::make_unique<FrameChannel>(fds[0]);
    w.connected = true;
    group.workers.push_back(std::move(w));
    return Status::Ok();
  };

  auto send_to = [&](WorkerProc* w, uint32_t kind,
                     const std::string& payload) -> bool {
    if (!w->connected) return false;
    if (!w->channel->Send(kind, payload).ok()) return false;
    Counters().bytes_out.fetch_add(kWireFrameHeaderBytes + payload.size(),
                                   std::memory_order_relaxed);
    return true;
  };

  // Puts a worker's in-flight shard back on the needed list. `stolen`
  // distinguishes a live-but-silent worker (work stealing) from a dead or
  // dropped one (reclaim); the no-double-count guarantee comes from the
  // merge-time signature dedup, not from preventing double training.
  auto release_shard = [&](WorkerProc* w, bool stolen) {
    const int t = w->current_shard;
    w->current_shard = -1;
    if (t < 0) return;
    ShardState& st = (*states)[t];
    if (st.state != ShardState::S::kAssigned || st.owner != w->ordinal) return;
    st.state = ShardState::S::kNeeded;
    st.owner = -1;
    ++st.reassignments;
    if (stolen) {
      Counters().shards_stolen.fetch_add(1, std::memory_order_relaxed);
    } else {
      Counters().shards_reclaimed.fetch_add(1, std::memory_order_relaxed);
    }
  };

  auto drop_worker = [&](WorkerProc* w) {
    if (w->channel) w->channel->Close();
    w->connected = false;
    w->parked = false;
    release_shard(w, /*stolen=*/false);
    int code = 0;
    if (!w->reaped && TryReapChild(w->pid, &code)) w->reaped = true;
  };

  auto all_done = [&]() {
    for (const ShardState& s : *states) {
      if (s.state != ShardState::S::kDone) return false;
    }
    return true;
  };

  // Serves one parked/requesting worker: an Assign when a shard is needed,
  // NoWork when everything is done, or stays parked while all remaining
  // shards are assigned elsewhere (the steal pass un-parks it later).
  auto serve_request = [&](WorkerProc* w) -> Status {
    int pick = -1;
    for (size_t t = 0; t < states->size(); ++t) {
      if ((*states)[t].state == ShardState::S::kNeeded) {
        pick = static_cast<int>(t);
        break;
      }
    }
    if (pick >= 0) {
      ShardState& st = (*states)[pick];
      if (st.reassignments > shard.max_shard_reassign) {
        return Status::Error("shard " + std::to_string(pick) +
                             " exceeded its reassignment bound (" +
                             std::to_string(shard.max_shard_reassign) + ")");
      }
      std::string payload;
      AppendPod(&payload, static_cast<uint32_t>(pick));
      if (!send_to(w, kMsgAssign, payload)) {
        drop_worker(w);
        return Status::Ok();
      }
      st.state = ShardState::S::kAssigned;
      st.owner = w->ordinal;
      st.last_progress = Clock::now();
      w->current_shard = pick;
      w->parked = false;
      return Status::Ok();
    }
    if (all_done()) {
      (void)send_to(w, kMsgNoWork, std::string());
      w->parked = false;
      // The worker exits on NoWork; the channel close below makes that
      // independent of whether it ever reads the frame.
      w->channel->Close();
      w->connected = false;
      return Status::Ok();
    }
    w->parked = true;
    return Status::Ok();
  };

  auto find_worker = [&](int ordinal) -> WorkerProc* {
    for (WorkerProc& w : group.workers) {
      if (w.ordinal == ordinal) return &w;
    }
    return nullptr;
  };

  for (int i = 0; i < num_workers; ++i) {
    Status s = spawn_worker();
    if (!s.ok() && group.workers.empty()) return s;
  }

  while (!all_done()) {
    // Liveness: without a connected worker (and with restarts exhausted)
    // the remaining shards can never complete.
    std::vector<WorkerProc*> connected;
    for (WorkerProc& w : group.workers) {
      if (w.connected) connected.push_back(&w);
    }
    if (connected.empty()) {
      if (restarts_used >= max_restarts) {
        return Status::Error(
            "sharded collection stalled: all workers lost and restart "
            "budget exhausted");
      }
      ++restarts_used;
      Counters().worker_restarts.fetch_add(1, std::memory_order_relaxed);
      Status s = spawn_worker();
      if (!s.ok()) return s;
      continue;
    }

    std::vector<struct pollfd> pfds;
    pfds.reserve(connected.size());
    for (WorkerProc* w : connected) {
      pfds.push_back({w->channel->fd(), POLLIN, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), 50);
    if (ready < 0 && errno != EINTR) {
      return Status::Error("coordinator poll failed");
    }
    for (size_t i = 0; i < pfds.size(); ++i) {
      WorkerProc* w = connected[i];
      if (!w->connected) continue;  // dropped earlier this sweep
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      // Workers write whole frames in one send(), so a readable fd that
      // cannot produce a complete frame within one loop cadence means the
      // peer died mid-write or the length word is garbage. Keep the
      // timeout at the 50ms tick: blocking longer here would stall
      // assignment, heartbeats, and steals for every other worker.
      StatusOr<SocketFrame> frame = w->channel->Recv(50);
      if (!frame.ok()) {
        // EOF, CRC mismatch, framing damage, or a mid-frame stall: either
        // way this channel cannot be trusted any more (framing cannot
        // resync). Reclaim and let the restart/steal machinery cover the
        // shard.
        if (frame.status().message().find("CRC") != std::string::npos ||
            frame.status().message().find("corrupt") != std::string::npos) {
          Counters().corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        }
        drop_worker(w);
        if (restarts_used < max_restarts && !all_done()) {
          ++restarts_used;
          Counters().worker_restarts.fetch_add(1, std::memory_order_relaxed);
          Status s = spawn_worker();
          if (!s.ok()) return s;
        }
        continue;
      }
      Counters().bytes_in.fetch_add(
          kWireFrameHeaderBytes + frame.value().payload.size(),
          std::memory_order_relaxed);
      FrameReader reader(frame.value().payload, 0);
      switch (frame.value().kind) {
        case kMsgHello:
          break;  // identity is implicit in the per-worker channel
        case kMsgRequest: {
          Status served = serve_request(w);
          if (!served.ok()) return served;
          break;
        }
        case kMsgHeartbeat: {
          uint32_t ordinal = 0, task = 0;
          uint64_t done = 0;
          if (reader.Read(&ordinal) && reader.Read(&task) &&
              reader.Read(&done)) {
            Counters().heartbeats.fetch_add(1, std::memory_order_relaxed);
            if (task < states->size()) {
              ShardState& st = (*states)[task];
              if (st.state == ShardState::S::kAssigned &&
                  st.owner == w->ordinal) {
                st.last_progress = Clock::now();
              }
            }
          }
          break;
        }
        case kMsgDone: {
          uint32_t ordinal = 0, task = 0;
          if (!reader.Read(&ordinal) || !reader.Read(&task) ||
              task >= states->size()) {
            drop_worker(w);
            break;
          }
          if (w->current_shard == static_cast<int>(task)) {
            w->current_shard = -1;
          }
          ShardState& st = (*states)[task];
          if (st.state != ShardState::S::kDone) {
            st.state = ShardState::S::kDone;
            st.owner = -1;
            Counters().shards_done.fetch_add(1, std::memory_order_relaxed);
            // Simulated coordinator crash at a shard boundary: the guard
            // kills the workers, the shard banks stay, and the next run
            // resumes from them.
            MaybeInjectKill(FaultPoint::kShardWorkerKill,
                            kShardCoordinatorAddress);
          }
          break;
        }
        default:
          drop_worker(w);
          break;
      }
    }

    // Steal pass: a shard whose owner has been silent past the timeout goes
    // back on the needed list the moment a parked worker could take it.
    const Clock::time_point now = Clock::now();
    bool any_parked = false;
    for (WorkerProc& w : group.workers) {
      any_parked = any_parked || (w.connected && w.parked);
    }
    if (any_parked) {
      for (size_t t = 0; t < states->size(); ++t) {
        ShardState& st = (*states)[t];
        if (st.state != ShardState::S::kAssigned) continue;
        if (now - st.last_progress <
            std::chrono::milliseconds(shard.steal_timeout_ms)) {
          continue;
        }
        WorkerProc* owner = find_worker(st.owner);
        if (owner != nullptr) release_shard(owner, /*stolen=*/true);
      }
      for (WorkerProc& w : group.workers) {
        if (!w.connected || !w.parked) continue;
        Status served = serve_request(&w);
        if (!served.ok()) return served;
      }
    }
  }

  // Everything is done. Parked workers (whose Request arrived while every
  // remaining shard was assigned elsewhere) get their NoWork now...
  for (WorkerProc& w : group.workers) {
    if (w.connected && w.parked) {
      Status served = serve_request(&w);
      if (!served.ok()) return served;
    }
  }
  // ...then a short grace window drains the final Request -> NoWork
  // handshakes still in flight; stragglers (workers duplicating a stolen
  // shard) are killed by the group destructor — their partial appends are
  // torn tails the next bank open truncates away, and their completed
  // duplicates dedup at merge.
  const Clock::time_point grace_end =
      Clock::now() + std::chrono::milliseconds(2000);
  while (Clock::now() < grace_end) {
    std::vector<WorkerProc*> connected;
    for (WorkerProc& w : group.workers) {
      if (w.connected) connected.push_back(&w);
    }
    if (connected.empty()) break;
    std::vector<struct pollfd> pfds;
    for (WorkerProc* w : connected) {
      pfds.push_back({w->channel->fd(), POLLIN, 0});
    }
    if (::poll(pfds.data(), pfds.size(), 50) <= 0) continue;
    for (size_t i = 0; i < pfds.size(); ++i) {
      WorkerProc* w = connected[i];
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      StatusOr<SocketFrame> frame = w->channel->Recv(200);
      if (!frame.ok()) {
        drop_worker(w);
        continue;
      }
      Counters().bytes_in.fetch_add(
          kWireFrameHeaderBytes + frame.value().payload.size(),
          std::memory_order_relaxed);
      if (frame.value().kind == kMsgRequest) {
        (void)send_to(w, kMsgNoWork, std::string());
        w->channel->Close();
        w->connected = false;
      }
    }
  }
  for (WorkerProc& w : group.workers) {
    if (w.connected) {
      w.channel->Close();
      w.connected = false;
    }
    if (!w.reaped && w.pid > 0) {
      KillChild(w.pid);
      w.reaped = true;
    }
  }
  return Status::Ok();
}

}  // namespace

std::string MergedBankPath(const std::string& dir) {
  return dir + "/merged.bank";
}

ShardStats CurrentShardStats() { return SnapshotCounters(); }

StatusOr<std::vector<TaskSampleSet>> ShardedCollectSamples(
    const std::vector<ForecastTask>& tasks, const JointSearchSpace& space,
    const TaskEncoder& encoder, const ScaleConfig& scale,
    const SampleCollectionOptions& options, const ShardOptions& shard,
    const ExecContext& ctx, SampleBankHook* hook) {
  EnsureProviderRegistered();
  if (shard.dir.empty()) {
    return Status::Error("ShardOptions.dir must be set");
  }
  std::error_code ec;
  fs::create_directories(shard.dir, ec);
  if (ec) {
    return Status::Error("cannot create shard dir " + shard.dir + ": " +
                         ec.message());
  }
  Counters().runs.fetch_add(1, std::memory_order_relaxed);

  // The coordinator's plan is the source of truth: canonical task order,
  // expected (task, slot) signatures, and the preliminary-embedding bytes
  // the merged bank is rebuilt from. Workers rebuild the identical plan
  // after fork.
  CollectPlan plan =
      PlanCollectSamples(tasks, space, encoder, scale, options, ctx, hook);
  Counters().shards_total.fetch_add(tasks.size(), std::memory_order_relaxed);

  std::map<std::pair<int, int>, size_t> slots;
  for (size_t p = 0; p < plan.pending.size(); ++p) {
    slots[{plan.pending[p].task, plan.pending[p].slot}] = p;
  }

  // Fates already decided by previous runs: the pipeline checkpoint first
  // (its pipeline.bank survives unsharded runs too), then any shard banks a
  // crashed coordinator left behind.
  FateMap fates;
  if (hook != nullptr) {
    for (const auto& [key, p] : slots) {
      LabeledSample s = ExpectedSample(plan.pending[p]);
      if (hook->Restore(key.first, key.second, &s)) fates[key] = s;
    }
  }
  AbsorbShardBanks(shard, plan, slots, &fates);

  auto shard_complete = [&](int t) {
    for (size_t slot = 0; slot < plan.sets[t].samples.size(); ++slot) {
      if (fates.count({t, static_cast<int>(slot)}) == 0) return false;
    }
    return true;
  };

  std::vector<ShardState> states(tasks.size());
  bool any_needed = false;
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (shard_complete(static_cast<int>(t))) {
      states[t].state = ShardState::S::kDone;
      // Resumed shards count as done too, so shards_done / shards_total is
      // the completion figure even after a resume; shards_resumed breaks
      // out how many of those were already on disk at start.
      Counters().shards_resumed.fetch_add(1, std::memory_order_relaxed);
      Counters().shards_done.fetch_add(1, std::memory_order_relaxed);
    } else {
      any_needed = true;
    }
  }

  if (any_needed) {
    Status run = RunCoordinatorLoop(tasks, space, encoder, scale, options,
                                    shard, ctx.seed, &states);
    if (!run.ok()) return run;
    AbsorbShardBanks(shard, plan, slots, &fates);
    for (size_t t = 0; t < tasks.size(); ++t) {
      if (!shard_complete(static_cast<int>(t))) {
        return Status::Error("shard " + std::to_string(t) +
                             " incomplete after coordination");
      }
    }
  }

  Status merged = WriteMergedBank(shard, plan, tasks, options, fates);
  if (!merged.ok()) return merged;

  // Canonical-order fill + forward: the inner hook (the pipeline
  // checkpoint) sees every fate exactly as the unsharded collector would
  // have committed it; identical fates are skipped by its own dedup, so a
  // resumed pipeline.bank stays byte-stable.
  for (const PendingSample& ps : plan.pending) {
    const LabeledSample& s = fates.at({ps.task, ps.slot});
    plan.sets[ps.task].samples[ps.slot] = s;
    if (hook != nullptr) hook->Commit(ps.task, ps.slot, s);
  }
  return std::move(plan.sets);
}

}  // namespace autocts
