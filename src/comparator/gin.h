#ifndef REPRO_COMPARATOR_GIN_H_
#define REPRO_COMPARATOR_GIN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "searchspace/encoding.h"

namespace autocts {

/// Graph Isomorphism Network encoder for arch-hyper graphs (paper Eq. 13–14
/// plus the learnable input projections of Eq. 7–8).
///
/// Input features per node: one-hot operator id projected by W_e for the
/// operator nodes, the normalized hyperparameter vector projected by W_c
/// for the Hyper node. Each GIN layer computes
///   H^(k) = MLP^(k)((1 + ε^(k))·H^(k-1) + A·H^(k-1)).
/// The arch-hyper representation l_a is the Hyper node's row of the final
/// layer (that node connects to every operator node).
class GinEncoder : public Module {
 public:
  struct Options {
    int layers = 3;     ///< L_n (paper uses 4; scaled down).
    int embed_dim = 16; ///< D (paper uses 128; scaled down).
  };

  GinEncoder(const Options& options, Rng* rng);

  /// [B, 14, 14] adjacency + features -> arch-hyper embeddings [B, D].
  Tensor Forward(const EncodingBatch& batch) const;

  int embed_dim() const { return options_.embed_dim; }

  /// Read-only structure views for off-tape inference paths
  /// (comparator/quant.cc replays this encoder with quantized weights).
  int layers() const { return static_cast<int>(mlps_.size()); }
  const Linear& op_proj() const { return op_proj_; }
  const Linear& hyper_proj() const { return hyper_proj_; }
  float epsilon(int layer) const { return epsilons_[layer].data()[0]; }
  const Mlp& layer_mlp(int layer) const { return *mlps_[layer]; }

 private:
  Options options_;
  Linear op_proj_;     ///< W_e: one-hot |O| -> D.
  Linear hyper_proj_;  ///< W_c: normalized r=6 vector -> D.
  std::vector<Tensor> epsilons_;           ///< One trainable ε per layer.
  std::vector<std::unique_ptr<Mlp>> mlps_; ///< One MLP per layer.
};

}  // namespace autocts

#endif  // REPRO_COMPARATOR_GIN_H_
