#ifndef REPRO_COMPARATOR_BANK_FILE_H_
#define REPRO_COMPARATOR_BANK_FILE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mmap_file.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace autocts {

/// ---- Live toggles (seeded from AUTOCTS_BANK_* via RuntimeConfig) --------

/// Whether sample-fate persistence goes through the mmap bank (default) or
/// the legacy wholesale manifest. AUTOCTS_BANK_DISABLE=1 flips the default.
bool SampleBankEnabled();
void SetSampleBankEnabled(bool enabled);

/// Whether bank readers issue madvise prefetch hints for out-of-core
/// streaming. AUTOCTS_BANK_NO_MADVISE=1 flips the default.
bool SampleBankMadviseEnabled();
void SetSampleBankMadviseEnabled(bool enabled);

/// Whether opening a bank CRC-verifies every section payload up front.
/// Off by default — sections are verified on scrub (VerifyAll, the CLI
/// fsck) rather than on map, which is what keeps open cost independent of
/// bank size. AUTOCTS_BANK_VERIFY=1 flips the default.
bool SampleBankVerifyOnOpen();
void SetSampleBankVerifyOnOpen(bool enabled);

/// ---- On-disk format -----------------------------------------------------
///
/// A sample bank is a 64-byte header followed by a stream of CRC32-framed,
/// 64-byte-aligned append-only frames (full layout: DESIGN.md
/// "Memory-mapped sample bank"). Two frame kinds exist: task sections
/// (task metadata + a raw fp32 preliminary-embedding tensor, padded so the
/// floats sit at a 64-byte-aligned file offset for zero-copy borrowing)
/// and sample records (one labeled sample's fate). Integers and floats are
/// native-endian: banks are host-local artifacts like every other
/// checkpoint file in this repo, not interchange formats.

/// One labeled sample's persisted fate, as stored in (and parsed back out
/// of) a record frame. `signature` is PipelineCheckpoint::SampleSignature;
/// `arch` keeps the human-readable arch-hyper signature for inspection.
struct BankRecord {
  int task = 0;
  int slot = 0;
  uint64_t signature = 0;
  double r_prime = 0.0;
  bool shared = false;
  bool quarantined = false;
  int retries = 0;
  std::string note;
  std::string arch;
};

/// One task section discovered at open time: metadata plus the location of
/// the raw fp32 tensor payload inside the mapping.
struct BankSection {
  int task = 0;
  uint64_t key = 0;  ///< TaskSectionKey of the owning task + window count.
  std::string name;
  std::vector<int> shape;       ///< Preliminary embedding dims [W, S, F'].
  uint64_t float_offset = 0;    ///< 64-byte-aligned file offset of the data.
  uint64_t float_count = 0;
};

/// An open sample-bank file.
///
/// kReadOnly maps the file zero-copy and is strict: any structural damage
/// (bad magic, stale version, truncated frame, torn tail, record CRC
/// mismatch) is a Status error. kAppend additionally opens an append
/// descriptor, and treats an incomplete final frame as a torn append —
/// the expected after-kill state — recovering by truncating back to the
/// last complete frame; everything before it must still verify.
///
/// Concurrency: one writer, any number of read-only openers (in any mix of
/// processes — the mapping is MAP_SHARED on a read-only file). Readers see
/// the frames that existed when they opened; appends land beyond their
/// mapping and are picked up by reopening.
class SampleBank {
 public:
  enum class Mode { kReadOnly, kAppend };

  /// Opens (kAppend: creating if absent) the bank at `path`. When
  /// `expected_config_hash` is set, a bank written under a different
  /// configuration is rejected; pass nullopt to inspect any bank (CLI).
  /// A legacy wholesale-serialized bank at `path` is transparently
  /// migrated: the converted mmap-format file is written next to it at
  /// `path + ".mmap"` (the wholesale original is never modified) and
  /// opened instead.
  static StatusOr<std::unique_ptr<SampleBank>> Open(
      const std::string& path, std::optional<uint64_t> expected_config_hash,
      Mode mode);

  /// Appends one task section (kAppend only). All-or-nothing: on failure
  /// the file is unchanged.
  Status AppendSection(int task, uint64_t key, const std::string& name,
                       const std::vector<int>& shape, const float* data);

  /// Appends one sample record (kAppend only). All-or-nothing.
  Status AppendRecord(const BankRecord& record);

  /// Records discovered at open, in file order (a later record for the
  /// same (task, slot) supersedes an earlier one).
  const std::vector<BankRecord>& records() const { return records_; }

  /// Sections discovered at open (sections appended through this handle
  /// are not borrowable until the file is reopened).
  const std::vector<BankSection>& sections() const { return sections_; }
  const BankSection* FindSection(int task, uint64_t key) const;

  /// Zero-copy view of a section's tensor. The mapping is pinned by the
  /// returned tensor's keepalive, so the view stays valid after this bank
  /// handle is destroyed.
  Tensor BorrowSection(const BankSection& section) const;

  /// CRC-verifies every frame payload against the mapping — the fsck the
  /// CLI runs, and the full-verification mode of open.
  Status VerifyAll() const;

  /// Streaming hints for out-of-core iteration (no-ops when madvise is
  /// disabled or there is no mapping).
  void AdviseSequentialAll() const;
  void AdviseWillNeed(const BankSection& section) const;

  uint64_t config_hash() const { return config_hash_; }
  const std::string& path() const { return path_; }
  /// Bytes of validated content (header + complete frames).
  uint64_t size() const;

 private:
  struct Frame {
    uint32_t kind = 0;
    uint32_t crc = 0;
    uint64_t payload_offset = 0;
    uint64_t payload_bytes = 0;
  };

  SampleBank() = default;

  static StatusOr<std::unique_ptr<SampleBank>> OpenMmapFormat(
      const std::string& path, std::optional<uint64_t> expected_config_hash,
      Mode mode);

  Mode mode_ = Mode::kReadOnly;
  std::string path_;
  uint64_t config_hash_ = 0;
  std::shared_ptr<MmapFile> mapping_;       ///< Null for a fresh kAppend bank.
  std::shared_ptr<AppendFile> writer_;      ///< Null in kReadOnly mode.
  uint64_t valid_end_ = 0;                  ///< Mapping bytes that verified.
  std::vector<BankSection> sections_;
  std::vector<BankRecord> records_;
  std::vector<Frame> frames_;
};

/// ---- Legacy wholesale format (read path kept for one release) -----------

/// The pre-mmap bank image: everything materialized in memory, serialized
/// as one CRC-framed blob. The parser stays so existing banks keep
/// loading (SampleBank::Open migrates them on sight); the serializer
/// survives only as the migration-test and resume-benchmark baseline.
struct BankImage {
  uint64_t config_hash = 0;
  struct Task {
    int task = 0;
    uint64_t key = 0;
    std::string name;
    std::vector<int> shape;
    std::vector<float> floats;
  };
  std::vector<Task> sections;
  std::vector<BankRecord> records;
};

std::string SerializeBankWholesale(const BankImage& image);
StatusOr<BankImage> ParseBankWholesale(const std::string& bytes);

/// True when the file at `path` starts with the wholesale magic.
bool IsWholesaleBankFile(const std::string& path);

}  // namespace autocts

#endif  // REPRO_COMPARATOR_BANK_FILE_H_
