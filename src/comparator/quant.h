#ifndef REPRO_COMPARATOR_QUANT_H_
#define REPRO_COMPARATOR_QUANT_H_

#include <cstdint>
#include <vector>

#include "common/runtime_config.h"
#include "comparator/comparator.h"

namespace autocts {

/// Quantized inference twin of Comparator::CompareLogits.
///
/// The evolutionary search spends most comparator time in eval-mode
/// CompareLogits calls whose weights never change between pretraining and
/// the end of the search. This class snapshots those weights ONCE (bf16 or
/// per-channel symmetric int8, per AUTOCTS_COMPARATOR_PRECISION) and
/// replays the forward pass off-tape through the active kernel backend's
/// quantized GEMMs (tensor/backend.h) — no tape nodes, no plan capture, no
/// Tensor allocations on the hot path.
///
/// Scope is deliberately narrow: ONLY comparator inference is quantized.
/// Comparator training, the forecaster, and every other eval path stay
/// fp32. The search consumes comparator outputs solely through pairwise
/// orderings (Eq. 21's 0.5 threshold), so the accuracy bar is RANK
/// agreement with fp32, not logit closeness; comparator_quant_test holds
/// this path to >= 99% pairwise agreement and identical top-K selections.
///
/// What is quantized: the GIN layer MLPs and the four head FC layers (the
/// GEMM-dominated work). The tiny input projections (one-hot gather + the
/// 6-wide hyper vector) and the adjacency aggregation stay fp32 — they are
/// a vanishing fraction of the FLOPs and the first layer is where
/// quantization noise compounds the most.
///
/// int8 scheme: weights per-output-channel symmetric (scale_j =
/// max_i|W_ij| / 127), activations per-row dynamic AFFINE (the row's
/// [min, max] range maps onto the full int8 range, so post-ReLU rows —
/// whose negative half is empty — keep 8 bits of resolution instead of 7;
/// the zero point folds out of the GEMM exactly via precomputed per-column
/// weight sums), int32 accumulation (exact), dequantized by one scale
/// multiply at the output.
/// bf16 scheme: weights narrowed round-to-nearest-even, fp32 ascending-k
/// accumulation. Both are bit-identical across kernel backends (see
/// backend.h); kFp32 is also accepted and replays the same off-tape path
/// unquantized (used by tests as the agreement oracle).
class QuantizedComparator {
 public:
  /// Snapshots `comparator`'s weights at the given precision. The
  /// comparator must outlive nothing — all weights are copied. Re-quantize
  /// (construct a new instance) after any further comparator training.
  QuantizedComparator(const Comparator& comparator,
                      ComparatorPrecision precision);

  /// Logits for a batch of comparisons; mirrors eval-mode
  /// Comparator::CompareLogits. `task_embeds` is [M, f2] when the source
  /// comparator is task-aware, ignored otherwise. Returns M logits.
  std::vector<float> CompareLogits(const EncodingBatch& first,
                                   const EncodingBatch& second,
                                   const Tensor& task_embeds) const;

  ComparatorPrecision precision() const { return precision_; }

 private:
  /// One snapshotted FC layer. Exactly one of the weight arrays is
  /// populated, matching `mode`.
  struct QLinear {
    ComparatorPrecision mode = ComparatorPrecision::kFp32;
    int in = 0;
    int out = 0;
    std::vector<float> bias;        ///< Empty when the layer has no bias.
    std::vector<float> w_f32;       ///< [in*out] (fp32 mode).
    std::vector<uint16_t> w_bf16;   ///< [in*out] (bf16 mode).
    std::vector<int8_t> w_s8;       ///< [in*out] (int8 mode).
    std::vector<float> w_scale;     ///< [out] per-channel scales (int8).
    /// [out] per-column sums of w_s8 — folds the activation zero point out
    /// of the int8 GEMM exactly: sum_k (q_k - zp) W_kj = acc_j - zp*sum_j.
    std::vector<int32_t> w_colsum;
  };

  QLinear Snapshot(const Linear& layer, ComparatorPrecision mode) const;
  /// y[rows, q.out] = (relu? relu : id)(x[rows, q.in] · W + b).
  void Apply(const QLinear& q, const float* x, int rows, float* y,
             bool relu) const;
  /// Replays GinEncoder::Forward; returns row-major [B, embed_dim_].
  std::vector<float> GinForward(const EncodingBatch& batch) const;

  ComparatorPrecision precision_;
  bool task_aware_ = false;
  int embed_dim_ = 0;
  int fc_dim_ = 0;
  int f2_ = 0;

  // GIN encoder snapshot (input projections stay fp32 by design).
  QLinear op_proj_;
  QLinear hyper_proj_;
  std::vector<float> epsilons_;
  std::vector<QLinear> gin_fc1_;
  std::vector<QLinear> gin_fc2_;

  // Head FC snapshot.
  QLinear fc_pair_;
  QLinear fc_task_;  ///< Unused when !task_aware_.
  QLinear fc_o_;
  QLinear fc_out_;
};

}  // namespace autocts

#endif  // REPRO_COMPARATOR_QUANT_H_
