#ifndef REPRO_COMPARATOR_PRETRAIN_H_
#define REPRO_COMPARATOR_PRETRAIN_H_

#include <vector>

#include "common/parallel.h"
#include "common/scale_config.h"
#include "comparator/comparator.h"
#include "data/task.h"
#include "embedding/ts2vec.h"
#include "model/trainer.h"
#include "searchspace/search_space.h"

namespace autocts {

/// One labeled pre-training sample: an arch-hyper and its early-validation
/// error R' (Eq. 22) on the owning task. `shared` marks members of the
/// cross-task shared set S_0 (§3.2.4 "Selecting Shared Samples").
struct LabeledSample {
  ArchHyper arch_hyper;
  double r_prime = 0.0;  ///< Validation MAE after k epochs; lower is better.
  bool shared = false;
};

/// All pre-training material of one source task.
struct TaskSampleSet {
  ForecastTask task;
  Tensor preliminary;  ///< TS2Vec preliminary embedding [W, S, F'], constant.
  std::vector<LabeledSample> samples;
};

/// Knobs for sample collection (Alg. 1, lines 1–7).
struct SampleCollectionOptions {
  int shared_count = 5;            ///< L shared arch-hypers (same for all).
  int random_count = 5;            ///< L per-task random arch-hypers.
  int early_validation_epochs = 2; ///< k of Eq. 22.
  int windows_per_task = 8;        ///< Windows for the preliminary embedding.
  TrainOptions train;              ///< Template for the k-epoch trainings.
  uint64_t seed = 101;
};

/// Trains and early-validates the shared pool plus per-task random
/// arch-hypers on every task, and computes each task's preliminary
/// embedding. This is the expensive, GPU-hours-in-the-paper step, so the
/// per-sample trainings fan out across `ctx`'s pool: all RNG streams are
/// forked up front in the serial draw order, which makes the collected
/// samples identical for every pool size.
std::vector<TaskSampleSet> CollectSamples(
    const std::vector<ForecastTask>& tasks, const JointSearchSpace& space,
    const TaskEncoder& encoder, const ScaleConfig& scale,
    const SampleCollectionOptions& options, const ExecContext& ctx = {});

/// Knobs for T-AHC pre-training (Alg. 1, lines 8–18).
struct PretrainOptions {
  int epochs = 8;
  int batch_size = 16;
  float lr = 1e-3f;
  float weight_decay = 5e-4f;
  /// Curriculum: the fraction of random samples admitted grows linearly
  /// from this value to 1 across epochs (Δ schedule).
  float initial_random_fraction = 0.0f;
  uint64_t seed = 202;
};

/// Pre-training outcome.
struct PretrainReport {
  std::vector<double> epoch_loss;
  /// Pairwise-ranking accuracy over all training pairs after the last
  /// epoch (sanity signal; ~0.5 means the comparator learned nothing).
  double final_accuracy = 0.0;
  int total_pairs_trained = 0;
};

/// Algorithm 1: data-level curriculum (shared samples first, random samples
/// phased in), dynamic pairing re-drawn every epoch, BCE objective.
PretrainReport PretrainComparator(Comparator* comparator,
                                  const std::vector<TaskSampleSet>& data,
                                  const PretrainOptions& options,
                                  const ExecContext& ctx = {});

/// Ranking quality of a comparator on a labeled set: fraction of ordered
/// pairs it classifies consistently with the R' labels.
double PairwiseAccuracy(const Comparator& comparator,
                        const TaskSampleSet& task_set);

}  // namespace autocts

#endif  // REPRO_COMPARATOR_PRETRAIN_H_
