#ifndef REPRO_COMPARATOR_PRETRAIN_H_
#define REPRO_COMPARATOR_PRETRAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/guard.h"
#include "common/parallel.h"
#include "common/scale_config.h"
#include "comparator/comparator.h"
#include "data/task.h"
#include "embedding/ts2vec.h"
#include "model/trainer.h"
#include "searchspace/search_space.h"

namespace autocts {

/// One labeled pre-training sample: an arch-hyper and its early-validation
/// error R' (Eq. 22) on the owning task. `shared` marks members of the
/// cross-task shared set S_0 (§3.2.4 "Selecting Shared Samples").
struct LabeledSample {
  ArchHyper arch_hyper;
  double r_prime = 0.0;  ///< Validation MAE after k epochs; lower is better.
  bool shared = false;
  /// Training diverged twice (original lr, then the lr-halved retry); the
  /// sample carries no usable label and is excluded from pairing.
  bool quarantined = false;
  /// lr-halved retries consumed (0 or 1).
  int retries = 0;
  /// Why the sample was quarantined (empty otherwise).
  std::string note;

  /// True when the sample may enter the comparator's label set.
  bool usable() const;
};

/// All pre-training material of one source task.
struct TaskSampleSet {
  ForecastTask task;
  Tensor preliminary;  ///< TS2Vec preliminary embedding [W, S, F'], constant.
  std::vector<LabeledSample> samples;
};

/// Knobs for sample collection (Alg. 1, lines 1–7).
struct SampleCollectionOptions {
  int shared_count = 5;            ///< L shared arch-hypers (same for all).
  int random_count = 5;            ///< L per-task random arch-hypers.
  int early_validation_epochs = 2; ///< k of Eq. 22.
  int windows_per_task = 8;        ///< Windows for the preliminary embedding.
  TrainOptions train;              ///< Template for the k-epoch trainings.
  uint64_t seed = 101;
};

/// Per-sample persistence hook for CollectSamples — the seam the
/// checkpoint/resume subsystem plugs into without the collector knowing
/// about files. Both methods are invoked with the (task, slot) coordinates
/// of the serial draw order, which are identical across runs and thread
/// counts, so restored labels land in exactly the slots they came from.
class SampleBankHook {
 public:
  virtual ~SampleBankHook() = default;

  /// Returns true and fills the fate fields (r_prime, quarantined, retries,
  /// note) when (task, slot) was already labeled by a previous run;
  /// `sample->arch_hyper` and `shared` are pre-filled by the caller and
  /// may be used to verify alignment. False means "train it".
  virtual bool Restore(int task, int slot, LabeledSample* sample) = 0;

  /// Called after a sample's fate is decided (trained, retried, or
  /// quarantined). Serialized by the collector — implementations need no
  /// locking of their own.
  virtual void Commit(int task, int slot, const LabeledSample& sample) = 0;

  /// Returns true and fills `preliminary` (typically a zero-copy borrow
  /// from the mmap sample bank) when the task's preliminary embedding was
  /// persisted by a previous run under `key` (see TaskSectionKey). The
  /// collector then skips the encoder forward but still burns the RNG draws
  /// it would have made, keeping the serial stream bit-identical. Called
  /// from the serial pass only. Default: nothing persisted.
  virtual bool RestoreTaskSection(int task, uint64_t key, Tensor* preliminary) {
    (void)task;
    (void)key;
    (void)preliminary;
    return false;
  }

  /// Called from the serial pass right after a preliminary embedding was
  /// computed fresh, so the persistence layer can append it to the bank.
  /// Default: discard.
  virtual void CommitTaskSection(int task, uint64_t key,
                                 const ForecastTask& forecast_task,
                                 const Tensor& preliminary) {
    (void)task;
    (void)key;
    (void)forecast_task;
    (void)preliminary;
  }
};

/// Stable identity of a task's preliminary-embedding section in the sample
/// bank: a hash of the task label, window geometry, and window count —
/// everything the embedding's content depends on besides the encoder
/// parameters (which the config hash covers).
uint64_t TaskSectionKey(const ForecastTask& task, int windows_per_task);

/// Stable signature of a sample's identity — a hash of the arch-hyper's
/// canonical string and the shared flag. The checkpoint manifest stores it
/// per fate (PipelineCheckpoint::SampleSignature delegates here) and the
/// shard merge uses it to verify that a persisted fate belongs to the
/// (task, slot) it claims before counting it.
uint64_t SampleFateSignature(const LabeledSample& sample);

/// One unit of deferred training work: the (task, slot) coordinates in the
/// serial draw order, the arch-hyper to evaluate, and the model seed forked
/// for it. The pending index of an entry in CollectPlan::pending is the
/// canonical fault/work address used everywhere (kKillBeforeSample,
/// kNanLoss scoping, shard assignment).
struct PendingSample {
  int task = 0;
  int slot = 0;  ///< Index into the task's sample list.
  ArchHyper arch_hyper;
  uint64_t model_seed = 0;
  bool shared = false;
};

/// The deterministic prelude of CollectSamples, materialized: every RNG
/// draw (shared pool, preliminary embeddings, per-task arch-hypers, model
/// seeds) already consumed in the exact single-threaded order, with the
/// expensive trainings still pending. Because planning is cheap and
/// bit-reproducible from (tasks, encoder, options), independent processes
/// can each build the identical plan and train disjoint pending ranges —
/// the seam the sharded execution layer (src/shard) is built on.
struct CollectPlan {
  /// Per-task output skeletons: task + preliminary embedding filled,
  /// samples sized but unlabeled until trained.
  std::vector<TaskSampleSet> sets;
  /// All trainings, task-major and slot-minor — entries of one task are
  /// contiguous (see TaskRange).
  std::vector<PendingSample> pending;
  std::vector<std::unique_ptr<ModelTrainer>> trainers;  ///< One per task.
  std::vector<ForecasterSpec> specs;                    ///< One per task.
  ScaleConfig scale;
  SampleCollectionOptions options;

  /// Pending-index range [first, second) holding task `t`'s samples.
  std::pair<int64_t, int64_t> TaskRange(int task) const;
};

/// Runs the serial pass only: burns the full RNG stream, computes (or
/// restores via `hook`) the preliminary embeddings, and returns the pending
/// work list. `hook` is consulted for task sections exactly as in
/// CollectSamples; sample fates are untouched.
CollectPlan PlanCollectSamples(const std::vector<ForecastTask>& tasks,
                               const JointSearchSpace& space,
                               const TaskEncoder& encoder,
                               const ScaleConfig& scale,
                               const SampleCollectionOptions& options,
                               const ExecContext& ctx = {},
                               SampleBankHook* hook = nullptr);

/// Trains pending entries [begin, end) across `ctx`'s pool and writes their
/// fates into plan->sets. The retry/quarantine policy, hook consultation
/// (Restore before, Commit after, both serialized), and fault addressing
/// are identical to CollectSamples — which is exactly this over the full
/// range. Pass the same `ctx` the plan was built with (the per-task
/// trainers captured it).
void TrainPlannedSamples(CollectPlan* plan, int64_t begin, int64_t end,
                         const ExecContext& ctx = {},
                         SampleBankHook* hook = nullptr);

/// Trains and early-validates the shared pool plus per-task random
/// arch-hypers on every task, and computes each task's preliminary
/// embedding. This is the expensive, GPU-hours-in-the-paper step, so the
/// per-sample trainings fan out across `ctx`'s pool: all RNG streams are
/// forked up front in the serial draw order, which makes the collected
/// samples identical for every pool size.
///
/// Fault tolerance: a sample whose training trips the non-finite
/// guardrails is retried once at half the learning rate (same model seed);
/// if the retry diverges too, the sample is quarantined — kept in the bank
/// with a reason but excluded from the comparator's label set. `hook`, when
/// given, is consulted before each training (checkpoint resume) and
/// notified after each completed sample (checkpoint write).
std::vector<TaskSampleSet> CollectSamples(
    const std::vector<ForecastTask>& tasks, const JointSearchSpace& space,
    const TaskEncoder& encoder, const ScaleConfig& scale,
    const SampleCollectionOptions& options, const ExecContext& ctx = {},
    SampleBankHook* hook = nullptr);

/// Robustness counters derivable from a collected bank: quarantined and
/// retried samples, the non-finite events they imply, and one reason line
/// per quarantined sample.
RobustnessReport ScanSampleBank(const std::vector<TaskSampleSet>& data);

/// Knobs for T-AHC pre-training (Alg. 1, lines 8–18).
struct PretrainOptions {
  int epochs = 8;
  int batch_size = 16;
  float lr = 1e-3f;
  float weight_decay = 5e-4f;
  /// Curriculum: the fraction of random samples admitted grows linearly
  /// from this value to 1 across epochs (Δ schedule).
  float initial_random_fraction = 0.0f;
  uint64_t seed = 202;
};

/// Pre-training outcome.
struct PretrainReport {
  std::vector<double> epoch_loss;
  /// Pairwise-ranking accuracy over all training pairs after the last
  /// epoch (sanity signal; ~0.5 means the comparator learned nothing).
  double final_accuracy = 0.0;
  int total_pairs_trained = 0;
  /// What the guardrails absorbed across the whole pipeline (sample
  /// collection quarantines, excluded labels, checkpoint writes).
  RobustnessReport robustness;
};

/// Algorithm 1: data-level curriculum (shared samples first, random samples
/// phased in), dynamic pairing re-drawn every epoch, BCE objective.
PretrainReport PretrainComparator(Comparator* comparator,
                                  const std::vector<TaskSampleSet>& data,
                                  const PretrainOptions& options,
                                  const ExecContext& ctx = {});

/// Ranking quality of a comparator on a labeled set: fraction of ordered
/// pairs it classifies consistently with the R' labels. Quarantined and
/// non-finite-labeled samples are excluded from the pairing.
double PairwiseAccuracy(const Comparator& comparator,
                        const TaskSampleSet& task_set);

}  // namespace autocts

#endif  // REPRO_COMPARATOR_PRETRAIN_H_
