#ifndef REPRO_COMPARATOR_COMPARATOR_H_
#define REPRO_COMPARATOR_COMPARATOR_H_

#include <memory>
#include <vector>

#include "comparator/gin.h"
#include "embedding/set_transformer.h"
#include "searchspace/encoding.h"

namespace autocts {

/// The (Task-aware) Architecture-Hyperparameter Comparator.
///
/// Plain AHC (AutoCTS+): two arch-hypers enter through a shared GIN, their
/// embeddings are concatenated, refined by FC layers, and classified —
/// output 1 means "the first arch-hyper is at least as accurate".
///
/// T-AHC (AutoCTS++, Fig. 4) additionally embeds the task: the TS2Vec
/// preliminary embedding passes through the two-stage Set-Transformer
/// (Eq. 10–12) and an FC, and joins the pair embedding before the
/// classifier. Construct with `task_aware = false` for plain AHC and with
/// `mean_pool_tasks = true` for the "w/o Set-Transformer" ablation.
class Comparator : public Module {
 public:
  struct Options {
    GinEncoder::Options gin;
    int repr_dim = 16;   ///< TS2Vec F' (must match the task encoder).
    int f1 = 16;         ///< IntraSetPool output F'_1.
    int f2 = 8;          ///< InterSetPool output F'_2 (task vector size).
    int fc_dim = 32;     ///< Width of the FC refinement layers.
    bool task_aware = true;
    bool mean_pool_tasks = false;  ///< Ablation: mean-pool instead of PMA.
  };

  Comparator(const Options& options, uint64_t seed);

  /// Embeds a task's preliminary embedding [W, S, F'] into E' [f2].
  /// Requires task_aware.
  Tensor EmbedTask(const Tensor& preliminary) const;

  /// Logits for a batch of comparisons. `task_embeds` is [M, f2] (aligned
  /// with the pairs) when task_aware, ignored otherwise. Output [M].
  Tensor CompareLogits(const EncodingBatch& first, const EncodingBatch& second,
                       const Tensor& task_embeds) const;

  /// Probability that `first` is at least as accurate as `second` on the
  /// task (single pair, eval mode).
  double CompareProb(const ArchHyperEncoding& first,
                     const ArchHyperEncoding& second,
                     const Tensor& task_embed) const;

  /// Binary decision with the paper's 0.5 threshold (Eq. 21).
  bool Prefers(const ArchHyperEncoding& first, const ArchHyperEncoding& second,
               const Tensor& task_embed) const {
    return CompareProb(first, second, task_embed) >= 0.5;
  }

  const Options& options() const { return options_; }

  /// Read-only submodule views for off-tape inference paths
  /// (comparator/quant.h snapshots these weights once at quantize time).
  const GinEncoder& gin() const { return gin_; }
  const Linear& fc_pair() const { return *fc_pair_; }
  const Linear* fc_task() const { return fc_task_.get(); }  ///< Null if !task_aware.
  const Linear& fc_o() const { return *fc_o_; }
  const Linear& fc_out() const { return *fc_out_; }

 private:
  Options options_;
  mutable Rng rng_;
  GinEncoder gin_;
  std::unique_ptr<TaskEmbedModule> task_module_;  // Null when !task_aware.
  std::unique_ptr<Linear> fc_pair_;   ///< FC_L (Eq. 17).
  std::unique_ptr<Linear> fc_task_;   ///< FC_E (Eq. 18).
  std::unique_ptr<Linear> fc_o_;      ///< First classifier layer (Eq. 20).
  std::unique_ptr<Linear> fc_out_;    ///< Final logit layer (Eq. 21).
};

}  // namespace autocts

#endif  // REPRO_COMPARATOR_COMPARATOR_H_
