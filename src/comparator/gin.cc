#include "comparator/gin.h"

#include "tensor/fused.h"
#include "tensor/ops.h"

namespace autocts {

GinEncoder::GinEncoder(const Options& options, Rng* rng)
    : options_(options),
      op_proj_(kNumOpTypes, options.embed_dim, rng, /*bias=*/false),
      hyper_proj_(6, options.embed_dim, rng) {
  AddChild(&op_proj_);
  AddChild(&hyper_proj_);
  for (int l = 0; l < options.layers; ++l) {
    epsilons_.push_back(
        AddParameter(Tensor::Zeros({1}, /*requires_grad=*/true)));
    mlps_.push_back(std::make_unique<Mlp>(
        options.embed_dim, 2 * options.embed_dim, options.embed_dim, rng));
    AddChild(mlps_.back().get());
  }
}

Tensor GinEncoder::Forward(const EncodingBatch& batch) const {
  const int b = batch.adjacency.dim(0);
  const int d = options_.embed_dim;
  // Initial node features: projected one-hots for operator nodes (padding
  // rows stay zero because op_proj_ is bias-free) with the projected hyper
  // vector in the last (hyper) slot.
  Tensor op_features = op_proj_.Forward(batch.op_onehot);  // [B, 14, D]
  Tensor hyper_feature =
      Reshape(hyper_proj_.Forward(batch.hyper), {b, 1, d});  // [B, 1, D]
  Tensor h = Concat(
      {Slice(op_features, 1, 0, kEncodingNodes - 1), hyper_feature}, 1);
  for (size_t l = 0; l < mlps_.size(); ++l) {
    Tensor scaled = FusedScalarScale(h, epsilons_[l], 1.0f);  // (1+ε)·H
    Tensor aggregated = MatMul(batch.adjacency, h);         // A·H
    h = mlps_[l]->Forward(Add(scaled, aggregated));
  }
  // Readout: the hyper node's row (it connects to all operator nodes).
  return Reshape(Slice(h, 1, kEncodingNodes - 1, 1), {b, d});
}

}  // namespace autocts
