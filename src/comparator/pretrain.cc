#include "comparator/pretrain.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>

#include <map>

#include "common/fault.h"
#include "model/searched_model.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "tensor/plan.h"

namespace autocts {

bool LabeledSample::usable() const {
  return !quarantined && std::isfinite(r_prime);
}

namespace {

uint64_t Fnv1aHash(const std::string& bytes,
                   uint64_t h = 1469598103934665603ull) {
  for (char c : bytes) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

uint64_t TaskSectionKey(const ForecastTask& task, int windows_per_task) {
  std::string id = task.name();
  id += '|';
  id += std::to_string(task.p);
  id += '|';
  id += std::to_string(task.q);
  id += '|';
  id += std::to_string(windows_per_task);
  return Fnv1aHash(id);
}

uint64_t SampleFateSignature(const LabeledSample& sample) {
  return Fnv1aHash(sample.shared ? "S" : "R",
                   Fnv1aHash(sample.arch_hyper.Signature()));
}

std::pair<int64_t, int64_t> CollectPlan::TaskRange(int task) const {
  // Entries are task-major by construction, so the range is one contiguous
  // run; a scan keeps this robust to tasks with differing sample counts.
  int64_t first = static_cast<int64_t>(pending.size());
  int64_t last = 0;
  for (size_t p = 0; p < pending.size(); ++p) {
    if (pending[p].task != task) continue;
    first = std::min(first, static_cast<int64_t>(p));
    last = std::max(last, static_cast<int64_t>(p) + 1);
  }
  if (first >= last) return {0, 0};
  return {first, last};
}

CollectPlan PlanCollectSamples(const std::vector<ForecastTask>& tasks,
                               const JointSearchSpace& space,
                               const TaskEncoder& encoder,
                               const ScaleConfig& scale,
                               const SampleCollectionOptions& options,
                               const ExecContext& ctx, SampleBankHook* hook) {
  CHECK(!tasks.empty());
  ExecScope scope(ctx);
  CollectPlan plan;
  plan.scale = scale;
  plan.options = options;
  Rng rng(options.seed);
  // Shared set S_0: the same L arch-hypers are evaluated on every task so
  // the comparator can observe how rankings shift across tasks.
  std::vector<ArchHyper> shared_pool =
      space.SampleDistinct(options.shared_count, &rng);

  // Serial pass: every RNG draw (embeddings, arch-hyper sampling, model
  // seeds) happens here in the exact single-threaded order, so the pending
  // work list is independent of how it later fans out — across pool sizes
  // and across processes rebuilding the same plan.
  std::vector<TaskSampleSet>& out = plan.sets;
  out.resize(tasks.size());
  std::vector<std::unique_ptr<ModelTrainer>>& trainers = plan.trainers;
  std::vector<PendingSample>& pending = plan.pending;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const ForecastTask& task = tasks[ti];
    TaskSampleSet& set = out[ti];
    set.task = task;
    // The preliminary embedding is the expensive part of resume: when a
    // previous run banked it, borrow that (zero-copy) and burn the draws
    // the encoder path would have consumed, so every later sample in the
    // serial stream is unchanged.
    const uint64_t section_key = TaskSectionKey(task, options.windows_per_task);
    if (hook != nullptr && hook->RestoreTaskSection(static_cast<int>(ti),
                                                    section_key,
                                                    &set.preliminary)) {
      SkipPreliminaryEmbeddingDraws(task, options.windows_per_task, &rng);
    } else {
      set.preliminary = PreliminaryTaskEmbedding(
          encoder, task, options.windows_per_task, &rng);
      if (hook != nullptr) {
        hook->CommitTaskSection(static_cast<int>(ti), section_key, task,
                                set.preliminary);
      }
    }
    set.samples.resize(shared_pool.size() +
                       static_cast<size_t>(options.random_count));
    trainers.push_back(
        std::make_unique<ModelTrainer>(task, options.train, ctx));
    int slot = 0;
    for (const ArchHyper& ah : shared_pool) {
      pending.push_back({static_cast<int>(ti), slot++, ah, rng.Fork(), true});
    }
    for (int i = 0; i < options.random_count; ++i) {
      ArchHyper ah = space.Sample(&rng);
      pending.push_back(
          {static_cast<int>(ti), slot++, std::move(ah), rng.Fork(), false});
    }
  }
  for (const ForecastTask& task : tasks) {
    plan.specs.push_back(MakeForecasterSpec(task));
  }
  return plan;
}

void TrainPlannedSamples(CollectPlan* plan, int64_t begin, int64_t end,
                         const ExecContext& ctx, SampleBankHook* hook) {
  ExecScope scope(ctx);
  const SampleCollectionOptions& options = plan->options;
  const ScaleConfig& scale = plan->scale;
  const std::vector<PendingSample>& pending = plan->pending;
  const std::vector<ForecasterSpec>& specs = plan->specs;
  std::vector<std::unique_ptr<ModelTrainer>>& trainers = plan->trainers;
  std::vector<TaskSampleSet>& out = plan->sets;
  begin = std::max<int64_t>(begin, 0);
  end = std::min<int64_t>(end, static_cast<int64_t>(pending.size()));
  // Parallel pass: each pending sample trains its own model and writes its
  // own slot. The trainers are shared per task but their methods are pure
  // (fresh RNG + optimizer per call).
  // Serializes hook->Commit calls; everything else in the loop is
  // per-sample private.
  std::mutex hook_mu;
  ParallelFor(
      begin, end, 1,
      [&](int64_t p0, int64_t p1) {
        for (int64_t p = p0; p < p1; ++p) {
          const PendingSample& ps = pending[static_cast<size_t>(p)];
          ModelTrainer* trainer = trainers[static_cast<size_t>(ps.task)].get();
          // Simulated process death: anything committed so far is on disk,
          // this sample and later ones are not. The exception drains the
          // pool and reaches the caller (see ThreadPool::RunChunks).
          MaybeInjectKill(FaultPoint::kKillBeforeSample, p);
          LabeledSample sample;
          sample.arch_hyper = ps.arch_hyper;
          sample.shared = ps.shared;
          bool restored = false;
          if (hook != nullptr) {
            std::lock_guard<std::mutex> lock(hook_mu);
            restored = hook->Restore(ps.task, ps.slot, &sample);
          }
          if (!restored) {
            // Scope the training under this sample's pending index so the
            // kNanLoss fault point can address exactly one sample.
            FaultAddressScope fault_scope(p);
            auto build = [&] {
              return BuildSearchedModel(
                  ps.arch_hyper, specs[static_cast<size_t>(ps.task)], scale,
                  ps.model_seed);
            };
            auto model = build();
            StatusOr<double> r = trainer->TryEarlyValidationError(
                model.get(), options.early_validation_epochs);
            if (!r.ok()) {
              // Quarantine policy: one retry from the same init at half the
              // learning rate (divergence is usually an lr problem at this
              // scale); a second failure excludes the sample.
              sample.retries = 1;
              auto retry_model = build();
              StatusOr<double> retry = trainer->TryEarlyValidationError(
                  retry_model.get(), options.early_validation_epochs, 0.5f);
              if (retry.ok()) {
                sample.r_prime = retry.value();
              } else {
                sample.quarantined = true;
                sample.r_prime = std::numeric_limits<double>::quiet_NaN();
                sample.note = r.status().message() + "; retry at lr/2: " +
                              retry.status().message();
              }
            } else {
              sample.r_prime = r.value();
            }
          }
          out[static_cast<size_t>(ps.task)]
              .samples[static_cast<size_t>(ps.slot)] = sample;
          if (hook != nullptr) {
            std::lock_guard<std::mutex> lock(hook_mu);
            hook->Commit(ps.task, ps.slot, sample);
          }
        }
      });
}

std::vector<TaskSampleSet> CollectSamples(
    const std::vector<ForecastTask>& tasks, const JointSearchSpace& space,
    const TaskEncoder& encoder, const ScaleConfig& scale,
    const SampleCollectionOptions& options, const ExecContext& ctx,
    SampleBankHook* hook) {
  CollectPlan plan =
      PlanCollectSamples(tasks, space, encoder, scale, options, ctx, hook);
  TrainPlannedSamples(&plan, 0, static_cast<int64_t>(plan.pending.size()), ctx,
                      hook);
  return std::move(plan.sets);
}

RobustnessReport ScanSampleBank(const std::vector<TaskSampleSet>& data) {
  RobustnessReport report;
  for (size_t t = 0; t < data.size(); ++t) {
    for (size_t i = 0; i < data[t].samples.size(); ++i) {
      const LabeledSample& s = data[t].samples[i];
      // Each divergence is one event: a recovered retry is one, a
      // quarantined sample is two (original attempt + failed retry).
      report.nonfinite_events += s.retries + (s.quarantined ? 1 : 0);
      if (s.quarantined) {
        ++report.quarantined_samples;
        report.quarantine_reasons.push_back(
            data[t].task.name() + " sample #" + std::to_string(i) + ": " +
            (s.note.empty() ? "diverged twice" : s.note));
      } else if (s.retries > 0) {
        ++report.retried_samples;
      }
    }
  }
  return report;
}

namespace {

/// A training pair: indices into one task's sample list.
struct Pair {
  int task = 0;
  int first = 0;
  int second = 0;
};

/// A cached pre-training step plan. Keyed by (batch size, per-row task id
/// sequence): the recorded graph bakes in which rows share which EmbedTask
/// result, so only a batch with the identical task layout can replay it.
struct PretrainPlanEntry {
  int sightings = 0;
  std::unique_ptr<StepPlan> plan;
};

/// Distinct batch layouts worth compiling; rarer layouts stay eager.
constexpr int kMaxPretrainPlans = 4;

}  // namespace

PretrainReport PretrainComparator(Comparator* comparator,
                                  const std::vector<TaskSampleSet>& data,
                                  const PretrainOptions& options,
                                  const ExecContext& ctx) {
  CHECK(!data.empty());
  // The pairing curriculum is a sequential RNG stream and the optimizer
  // steps are ordered, so the epoch loop stays serial; the scope still lets
  // the tensor kernels under each batch fan out.
  ExecScope scope(ctx);
  Rng rng(options.seed);
  Adam::Options adam_opts;
  adam_opts.lr = options.lr;
  adam_opts.weight_decay = options.weight_decay;
  Adam adam(comparator->Parameters(), adam_opts);
  comparator->SetTraining(true);

  // Pre-encode every sample once (encodings are constants).
  std::vector<std::vector<ArchHyperEncoding>> encodings(data.size());
  for (size_t t = 0; t < data.size(); ++t) {
    for (const LabeledSample& s : data[t].samples) {
      encodings[t].push_back(EncodeArchHyper(s.arch_hyper));
    }
  }

  PretrainReport report;
  report.robustness = ScanSampleBank(data);
  // Compiled step plans, keyed by batch layout. A layout is captured on its
  // second sighting (one-off tail batches never pay the capture cost) and
  // replayed from then on.
  std::map<std::pair<int, std::vector<int>>, PretrainPlanEntry> plan_cache;
  int plans_allocated = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Curriculum (Alg. 1, line 12): shared samples are always in; the
    // admitted fraction Δ of random samples grows linearly to 1.
    float frac = options.epochs <= 1
                     ? 1.0f
                     : options.initial_random_fraction +
                           (1.0f - options.initial_random_fraction) *
                               static_cast<float>(epoch) /
                               static_cast<float>(options.epochs - 1);
    // Dynamic pairing (line 13): fresh random pairs every epoch.
    std::vector<Pair> pairs;
    for (size_t t = 0; t < data.size(); ++t) {
      std::vector<int> pool;
      std::vector<int> randoms;
      for (size_t i = 0; i < data[t].samples.size(); ++i) {
        // Quarantined / non-finite-labeled samples never enter the label
        // set — a NaN R' would poison every BCE target it touches.
        if (!data[t].samples[i].usable()) continue;
        if (data[t].samples[i].shared) {
          pool.push_back(static_cast<int>(i));
        } else {
          randoms.push_back(static_cast<int>(i));
        }
      }
      rng.Shuffle(&randoms);
      int admit = static_cast<int>(std::round(frac * randoms.size()));
      pool.insert(pool.end(), randoms.begin(), randoms.begin() + admit);
      if (pool.size() < 2) continue;
      rng.Shuffle(&pool);
      for (size_t i = 0; i < pool.size(); ++i) {
        pairs.push_back({static_cast<int>(t), pool[i],
                         pool[(i + 1) % pool.size()]});
      }
    }
    rng.Shuffle(&pairs);

    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t begin = 0; begin < pairs.size();
         begin += static_cast<size_t>(options.batch_size)) {
      size_t end = std::min(pairs.size(),
                            begin + static_cast<size_t>(options.batch_size));
      std::vector<ArchHyperEncoding> first, second;
      std::vector<float> labels;
      std::vector<int> task_seq;
      for (size_t p = begin; p < end; ++p) {
        const Pair& pair = pairs[p];
        const TaskSampleSet& set = data[static_cast<size_t>(pair.task)];
        first.push_back(encodings[static_cast<size_t>(pair.task)]
                                 [static_cast<size_t>(pair.first)]);
        second.push_back(encodings[static_cast<size_t>(pair.task)]
                                  [static_cast<size_t>(pair.second)]);
        labels.push_back(
            set.samples[static_cast<size_t>(pair.first)].r_prime <=
                    set.samples[static_cast<size_t>(pair.second)].r_prime
                ? 1.0f
                : 0.0f);
        if (comparator->options().task_aware) task_seq.push_back(pair.task);
      }
      const int m = static_cast<int>(labels.size());
      EncodingBatch b1 = StackEncodings(first);
      EncodingBatch b2 = StackEncodings(second);
      Tensor target = Tensor::FromVector({m}, std::move(labels));
      std::vector<Tensor> step_inputs = {b1.adjacency, b1.op_onehot, b1.hyper,
                                         b2.adjacency, b2.op_onehot, b2.hyper,
                                         target};
      PretrainPlanEntry& entry = plan_cache[{m, task_seq}];
      ++entry.sightings;
      StepPlan* plan = entry.plan.get();
      if (plan != nullptr && plan->ready() &&
          !plan->MatchesInputs(step_inputs)) {
        plan->Invalidate();
      }
      if (plan != nullptr && plan->ready()) {
        // Replay: BeginStep's grad zeroing is the eager ZeroGrad, the
        // recorded thunks are the eager forward (EmbedTask, Concat and
        // CompareLogits included), the recorded closures the eager backward.
        plan->BeginStep(step_inputs);
        plan->RunForward();
        plan->RunBackward();
        adam.Step();
        epoch_loss += plan->LossValue();
        ++batches;
        report.total_pairs_trained += m;
        continue;
      }
      if (plan == nullptr && entry.sightings >= 2 && plan::PlansEnabled() &&
          plans_allocated < kMaxPretrainPlans) {
        entry.plan = std::make_unique<StepPlan>();
        plan = entry.plan.get();
        ++plans_allocated;
      }
      const bool capture =
          plan != nullptr && plan::PlansEnabled() && !plan->capture_failed();
      if (capture) plan->BeginCapture(step_inputs, "pretrain_step");
      // Task embeddings are trainable; compute one per task per batch
      // (inside the capture — the rows are recorded ops).
      std::vector<Tensor> task_rows;
      std::vector<Tensor> cached_embeds(data.size());
      for (size_t p = begin; p < end; ++p) {
        const Pair& pair = pairs[p];
        if (!comparator->options().task_aware) break;
        Tensor& cached = cached_embeds[static_cast<size_t>(pair.task)];
        if (!cached.defined()) {
          cached = comparator->EmbedTask(
              data[static_cast<size_t>(pair.task)].preliminary);
        }
        task_rows.push_back(Reshape(cached, {1, comparator->options().f2}));
      }
      Tensor task_embeds;
      if (!task_rows.empty()) task_embeds = Concat(task_rows, 0);
      Tensor logits = comparator->CompareLogits(b1, b2, task_embeds);
      Tensor loss = BceLoss(Sigmoid(logits), target);
      adam.ZeroGrad();
      loss.Backward();
      adam.Step();
      epoch_loss += loss.item();
      bool pinned_by_plan = false;
      if (capture) {
        plan->SetLoss(loss);
        pinned_by_plan = plan->EndCapture();
      }
      // Recycle the step's graph storage through the buffer pool (a frozen
      // plan keeps it pinned for replay instead).
      if (!pinned_by_plan) loss.ReleaseTape();
      ++batches;
      report.total_pairs_trained += m;
    }
    report.epoch_loss.push_back(batches > 0 ? epoch_loss / batches : 0.0);
  }
  report.robustness.skipped_optimizer_steps = adam.skipped_steps();
  comparator->SetTraining(false);

  // Final training-set accuracy over all ordered pairs of usable samples.
  double correct = 0.0;
  int total = 0;
  for (const TaskSampleSet& set : data) {
    double acc = PairwiseAccuracy(*comparator, set);
    int n = 0;
    for (const LabeledSample& s : set.samples) {
      if (s.usable()) ++n;
    }
    int pairs_n = n * (n - 1);
    correct += acc * pairs_n;
    total += pairs_n;
  }
  report.final_accuracy = total > 0 ? correct / total : 0.0;
  return report;
}

double PairwiseAccuracy(const Comparator& comparator,
                        const TaskSampleSet& task_set) {
  // Only samples with a trustworthy R' can anchor a ground-truth ordering.
  std::vector<int> usable;
  for (size_t i = 0; i < task_set.samples.size(); ++i) {
    if (task_set.samples[i].usable()) usable.push_back(static_cast<int>(i));
  }
  const int n = static_cast<int>(usable.size());
  if (n < 2) return 1.0;
  Tensor task_embed;
  if (comparator.options().task_aware) {
    task_embed = comparator.EmbedTask(task_set.preliminary).Detach();
  }
  std::vector<ArchHyperEncoding> enc;
  for (int idx : usable) {
    enc.push_back(
        EncodeArchHyper(task_set.samples[static_cast<size_t>(idx)].arch_hyper));
  }
  int correct = 0, total = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      bool label =
          task_set.samples[static_cast<size_t>(usable[static_cast<size_t>(i)])]
              .r_prime <=
          task_set.samples[static_cast<size_t>(usable[static_cast<size_t>(j)])]
              .r_prime;
      bool pred = comparator.Prefers(enc[static_cast<size_t>(i)],
                                     enc[static_cast<size_t>(j)], task_embed);
      if (pred == label) ++correct;
      ++total;
    }
  }
  return static_cast<double>(correct) / total;
}

}  // namespace autocts
