#include "comparator/quant.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/backend.h"

namespace autocts {
namespace {

/// Per-row dynamic affine int8 quantization: the row's [min, max] range —
/// widened to include 0 so zeros quantize exactly — maps onto [-127, 127]
/// with scale = (max - min) / 254 and zero point zp = -127 - round(min /
/// scale), q = clamp(round(v / scale) + zp). Affine keeps the full 8 bits
/// of resolution for post-ReLU rows (whose negative half-range is empty;
/// symmetric quantization would waste it) and degenerates to ~symmetric
/// for centered rows. The zero point folds out of the GEMM exactly via the
/// per-column weight sums precomputed at snapshot (see Apply). All-zero
/// rows get scale 1 / zp 0 so the division is defined; the quantized row
/// is all zeros either way.
void QuantizeRowsAffine(const float* x, int rows, int cols, int8_t* q,
                        float* scales, int32_t* zero_points) {
  for (int r = 0; r < rows; ++r) {
    const float* row = x + static_cast<int64_t>(r) * cols;
    float rmin = 0.0f, rmax = 0.0f;
    for (int c = 0; c < cols; ++c) {
      rmin = std::min(rmin, row[c]);
      rmax = std::max(rmax, row[c]);
    }
    int8_t* qrow = q + static_cast<int64_t>(r) * cols;
    if (rmax == rmin) {  // Both 0: the range was widened to include 0.
      std::fill(qrow, qrow + cols, static_cast<int8_t>(0));
      scales[r] = 1.0f;
      zero_points[r] = 0;
      continue;
    }
    const float scale = (rmax - rmin) / 254.0f;
    const float inv = 1.0f / scale;
    const float zp = -127.0f - std::nearbyint(rmin * inv);
    for (int c = 0; c < cols; ++c) {
      const float v = std::nearbyint(row[c] * inv) + zp;
      qrow[c] = static_cast<int8_t>(std::clamp(v, -127.0f, 127.0f));
    }
    scales[r] = scale;
    zero_points[r] = static_cast<int32_t>(zp);
  }
}

}  // namespace

QuantizedComparator::QuantizedComparator(const Comparator& comparator,
                                         ComparatorPrecision precision)
    : precision_(precision) {
  const Comparator::Options& opt = comparator.options();
  task_aware_ = opt.task_aware;
  embed_dim_ = opt.gin.embed_dim;
  fc_dim_ = opt.fc_dim;
  f2_ = opt.f2;

  const GinEncoder& gin = comparator.gin();
  // Input projections stay fp32 regardless of precision (see quant.h).
  op_proj_ = Snapshot(gin.op_proj(), ComparatorPrecision::kFp32);
  hyper_proj_ = Snapshot(gin.hyper_proj(), ComparatorPrecision::kFp32);
  for (int l = 0; l < gin.layers(); ++l) {
    epsilons_.push_back(gin.epsilon(l));
    gin_fc1_.push_back(Snapshot(gin.layer_mlp(l).fc1(), precision_));
    gin_fc2_.push_back(Snapshot(gin.layer_mlp(l).fc2(), precision_));
  }
  fc_pair_ = Snapshot(comparator.fc_pair(), precision_);
  if (task_aware_) fc_task_ = Snapshot(*comparator.fc_task(), precision_);
  fc_o_ = Snapshot(comparator.fc_o(), precision_);
  fc_out_ = Snapshot(comparator.fc_out(), precision_);
}

QuantizedComparator::QLinear QuantizedComparator::Snapshot(
    const Linear& layer, ComparatorPrecision mode) const {
  QLinear q;
  q.mode = mode;
  q.in = layer.in_dim();
  q.out = layer.out_dim();
  const auto& w = layer.weight().data();
  CHECK_EQ(static_cast<int64_t>(w.size()),
           static_cast<int64_t>(q.in) * q.out);
  if (layer.bias().defined()) q.bias = layer.bias().data();
  switch (mode) {
    case ComparatorPrecision::kFp32:
      q.w_f32 = w;
      break;
    case ComparatorPrecision::kBf16:
      q.w_bf16.resize(w.size());
      for (size_t i = 0; i < w.size(); ++i) {
        q.w_bf16[i] = kernels::Bf16FromF32(w[i]);
      }
      break;
    case ComparatorPrecision::kInt8: {
      // Per-output-channel symmetric: channel j lives in column j of the
      // [in, out] row-major weight.
      q.w_scale.assign(q.out, 0.0f);
      for (int i = 0; i < q.in; ++i) {
        for (int j = 0; j < q.out; ++j) {
          q.w_scale[j] =
              std::max(q.w_scale[j], std::fabs(w[static_cast<size_t>(i) * q.out + j]));
        }
      }
      for (int j = 0; j < q.out; ++j) {
        q.w_scale[j] = q.w_scale[j] > 0.0f ? q.w_scale[j] / 127.0f : 1.0f;
      }
      q.w_s8.resize(w.size());
      for (int i = 0; i < q.in; ++i) {
        for (int j = 0; j < q.out; ++j) {
          const size_t idx = static_cast<size_t>(i) * q.out + j;
          const float v = std::nearbyint(w[idx] / q.w_scale[j]);
          q.w_s8[idx] = static_cast<int8_t>(std::clamp(v, -127.0f, 127.0f));
        }
      }
      q.w_colsum.assign(q.out, 0);
      for (int i = 0; i < q.in; ++i) {
        for (int j = 0; j < q.out; ++j) {
          q.w_colsum[j] += q.w_s8[static_cast<size_t>(i) * q.out + j];
        }
      }
      break;
    }
  }
  return q;
}

void QuantizedComparator::Apply(const QLinear& q, const float* x, int rows,
                                float* y, bool relu) const {
  const kernels::Backend& backend = kernels::ActiveBackend();
  switch (q.mode) {
    case ComparatorPrecision::kFp32: {
      // Plain ascending-k accumulate; same order as every backend GEMM.
      for (int r = 0; r < rows; ++r) {
        float* yrow = y + static_cast<int64_t>(r) * q.out;
        for (int j = 0; j < q.out; ++j) yrow[j] = 0.0f;
        const float* xrow = x + static_cast<int64_t>(r) * q.in;
        for (int k = 0; k < q.in; ++k) {
          const float av = xrow[k];
          const float* wrow = q.w_f32.data() + static_cast<int64_t>(k) * q.out;
          for (int j = 0; j < q.out; ++j) yrow[j] += av * wrow[j];
        }
      }
      break;
    }
    case ComparatorPrecision::kBf16:
      kernels::counters::NoteQgemmBf16();
      backend.qgemm_bf16(x, q.w_bf16.data(), y, rows, q.in, q.out);
      break;
    case ComparatorPrecision::kInt8: {
      std::vector<int8_t> xq(static_cast<size_t>(rows) * q.in);
      std::vector<float> xs(rows);
      std::vector<int32_t> zps(rows);
      QuantizeRowsAffine(x, rows, q.in, xq.data(), xs.data(), zps.data());
      std::vector<int32_t> acc(static_cast<size_t>(rows) * q.out);
      kernels::counters::NoteQgemmS8();
      backend.qgemm_s8(xq.data(), q.w_s8.data(), acc.data(), rows, q.in,
                       q.out);
      for (int r = 0; r < rows; ++r) {
        const float row_scale = xs[r];
        const int32_t zp = zps[r];
        const int32_t* arow = acc.data() + static_cast<int64_t>(r) * q.out;
        float* yrow = y + static_cast<int64_t>(r) * q.out;
        for (int j = 0; j < q.out; ++j) {
          // The zero-point correction stays in exact int32 before the one
          // float rescale, so the result is backend-invariant.
          yrow[j] = static_cast<float>(arow[j] - zp * q.w_colsum[j]) *
                    row_scale * q.w_scale[j];
        }
      }
      break;
    }
  }
  const bool has_bias = !q.bias.empty();
  if (has_bias || relu) {
    for (int r = 0; r < rows; ++r) {
      float* yrow = y + static_cast<int64_t>(r) * q.out;
      for (int j = 0; j < q.out; ++j) {
        float v = has_bias ? yrow[j] + q.bias[j] : yrow[j];
        yrow[j] = relu ? std::max(v, 0.0f) : v;
      }
    }
  }
}

std::vector<float> QuantizedComparator::GinForward(
    const EncodingBatch& batch) const {
  const int b = batch.adjacency.dim(0);
  const int d = embed_dim_;
  const int nodes = kEncodingNodes;
  const auto& adj = batch.adjacency.data();   // [b,14,14]
  const auto& hyper = batch.hyper.data();     // [b,6]

  // Initial node features, mirroring GinEncoder::Forward: projected one-hot
  // rows 0..nodes-2 (padding rows stay zero — op_proj_ is bias-free), the
  // projected hyper vector in the last slot.
  std::vector<float> h(static_cast<size_t>(b) * nodes * d);
  std::vector<float> op_feat(static_cast<size_t>(b) * nodes * d);
  Apply(op_proj_, batch.op_onehot.data().data(), b * nodes, op_feat.data(),
        /*relu=*/false);
  std::vector<float> hyper_feat(static_cast<size_t>(b) * d);
  Apply(hyper_proj_, hyper.data(), b, hyper_feat.data(), /*relu=*/false);
  for (int bi = 0; bi < b; ++bi) {
    float* dst = h.data() + static_cast<int64_t>(bi) * nodes * d;
    const float* src = op_feat.data() + static_cast<int64_t>(bi) * nodes * d;
    std::copy(src, src + static_cast<int64_t>(nodes - 1) * d, dst);
    std::copy(hyper_feat.data() + static_cast<int64_t>(bi) * d,
              hyper_feat.data() + static_cast<int64_t>(bi + 1) * d,
              dst + static_cast<int64_t>(nodes - 1) * d);
  }

  // GIN layers: x = (1+eps)·H + A·H, then H = fc2(relu(fc1(x))).
  std::vector<float> x(h.size());
  std::vector<float> mid(static_cast<size_t>(b) * nodes * gin_fc1_[0].out);
  for (size_t l = 0; l < gin_fc1_.size(); ++l) {
    const float scale = 1.0f + epsilons_[l];
    for (int bi = 0; bi < b; ++bi) {
      const float* arow = adj.data() + static_cast<int64_t>(bi) * nodes * nodes;
      const float* hb = h.data() + static_cast<int64_t>(bi) * nodes * d;
      float* xb = x.data() + static_cast<int64_t>(bi) * nodes * d;
      for (int i = 0; i < nodes; ++i) {
        float* xrow = xb + static_cast<int64_t>(i) * d;
        for (int c = 0; c < d; ++c) {
          xrow[c] = scale * hb[static_cast<int64_t>(i) * d + c];
        }
        for (int nnode = 0; nnode < nodes; ++nnode) {
          const float a = arow[static_cast<int64_t>(i) * nodes + nnode];
          if (a == 0.0f) continue;
          const float* hrow = hb + static_cast<int64_t>(nnode) * d;
          for (int c = 0; c < d; ++c) xrow[c] += a * hrow[c];
        }
      }
    }
    Apply(gin_fc1_[l], x.data(), b * nodes, mid.data(), /*relu=*/true);
    Apply(gin_fc2_[l], mid.data(), b * nodes, h.data(), /*relu=*/false);
  }

  // Readout: the hyper node's row.
  std::vector<float> out(static_cast<size_t>(b) * d);
  for (int bi = 0; bi < b; ++bi) {
    const float* src = h.data() + (static_cast<int64_t>(bi) * nodes + nodes - 1) * d;
    std::copy(src, src + d, out.data() + static_cast<int64_t>(bi) * d);
  }
  return out;
}

std::vector<float> QuantizedComparator::CompareLogits(
    const EncodingBatch& first, const EncodingBatch& second,
    const Tensor& task_embeds) const {
  const int m = first.adjacency.dim(0);
  CHECK_EQ(second.adjacency.dim(0), m);
  const int d = embed_dim_;
  const std::vector<float> l1 = GinForward(first);
  const std::vector<float> l2 = GinForward(second);

  std::vector<float> pair_in(static_cast<size_t>(m) * 2 * d);
  for (int r = 0; r < m; ++r) {
    std::copy(l1.begin() + static_cast<int64_t>(r) * d,
              l1.begin() + static_cast<int64_t>(r + 1) * d,
              pair_in.begin() + static_cast<int64_t>(r) * 2 * d);
    std::copy(l2.begin() + static_cast<int64_t>(r) * d,
              l2.begin() + static_cast<int64_t>(r + 1) * d,
              pair_in.begin() + static_cast<int64_t>(r) * 2 * d + d);
  }
  std::vector<float> pair(static_cast<size_t>(m) * fc_dim_);
  Apply(fc_pair_, pair_in.data(), m, pair.data(), /*relu=*/true);

  std::vector<float> o;
  int o_cols = fc_dim_;
  if (task_aware_) {
    CHECK(task_embeds.defined());
    CHECK_EQ(task_embeds.dim(0), m);
    std::vector<float> te(static_cast<size_t>(m) * fc_dim_);
    Apply(fc_task_, task_embeds.data().data(), m, te.data(), /*relu=*/true);
    o_cols = 2 * fc_dim_;
    o.resize(static_cast<size_t>(m) * o_cols);
    for (int r = 0; r < m; ++r) {
      std::copy(pair.begin() + static_cast<int64_t>(r) * fc_dim_,
                pair.begin() + static_cast<int64_t>(r + 1) * fc_dim_,
                o.begin() + static_cast<int64_t>(r) * o_cols);
      std::copy(te.begin() + static_cast<int64_t>(r) * fc_dim_,
                te.begin() + static_cast<int64_t>(r + 1) * fc_dim_,
                o.begin() + static_cast<int64_t>(r) * o_cols + fc_dim_);
    }
  } else {
    o = std::move(pair);
  }

  std::vector<float> hidden(static_cast<size_t>(m) * fc_dim_);
  Apply(fc_o_, o.data(), m, hidden.data(), /*relu=*/true);
  std::vector<float> logits(m);
  Apply(fc_out_, hidden.data(), m, logits.data(), /*relu=*/false);
  return logits;
}

}  // namespace autocts
