#include "comparator/comparator.h"

#include "tensor/fused.h"
#include "tensor/ops.h"

namespace autocts {

Comparator::Comparator(const Options& options, uint64_t seed)
    : options_(options), rng_(seed), gin_(options.gin, &rng_) {
  AddChild(&gin_);
  const int d = options.gin.embed_dim;
  if (options.task_aware) {
    task_module_ = std::make_unique<TaskEmbedModule>(options.repr_dim,
                                                     options.f1, options.f2,
                                                     &rng_);
    AddChild(task_module_.get());
    fc_task_ = std::make_unique<Linear>(options.f2, options.fc_dim, &rng_);
    AddChild(fc_task_.get());
  }
  fc_pair_ = std::make_unique<Linear>(2 * d, options.fc_dim, &rng_);
  AddChild(fc_pair_.get());
  const int o_in = options.task_aware ? 2 * options.fc_dim : options.fc_dim;
  fc_o_ = std::make_unique<Linear>(o_in, options.fc_dim, &rng_);
  fc_out_ = std::make_unique<Linear>(options.fc_dim, 1, &rng_);
  AddChild(fc_o_.get());
  AddChild(fc_out_.get());
}

Tensor Comparator::EmbedTask(const Tensor& preliminary) const {
  CHECK(options_.task_aware) << "plain AHC has no task path";
  return options_.mean_pool_tasks
             ? task_module_->MeanPoolForward(preliminary)
             : task_module_->Forward(preliminary);
}

Tensor Comparator::CompareLogits(const EncodingBatch& first,
                                 const EncodingBatch& second,
                                 const Tensor& task_embeds) const {
  const int m = first.adjacency.dim(0);
  Tensor l1 = gin_.Forward(first);   // [M, D]
  Tensor l2 = gin_.Forward(second);  // [M, D]
  Tensor pair =
      fc_pair_->Forward(Concat({l1, l2}, -1), FusedAct::kRelu);  // Eq. 16–17.
  Tensor o = pair;
  if (options_.task_aware) {
    CHECK(task_embeds.defined());
    CHECK_EQ(task_embeds.dim(0), m);
    Tensor te = fc_task_->Forward(task_embeds, FusedAct::kRelu);  // Eq. 18.
    o = Concat({pair, te}, -1);                                   // Eq. 19.
  }
  Tensor hidden = fc_o_->Forward(o, FusedAct::kRelu);  // Eq. 20.
  return Reshape(fc_out_->Forward(hidden), {m});       // Logits (Eq. 21).
}

double Comparator::CompareProb(const ArchHyperEncoding& first,
                               const ArchHyperEncoding& second,
                               const Tensor& task_embed) const {
  EncodingBatch b1 = StackEncodings({first});
  EncodingBatch b2 = StackEncodings({second});
  Tensor te;
  if (options_.task_aware) {
    CHECK(task_embed.defined());
    te = Reshape(task_embed, {1, options_.f2});
  }
  Tensor logits = CompareLogits(b1, b2, te);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logits.item())));
}

}  // namespace autocts
