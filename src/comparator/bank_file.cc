#include "comparator/bank_file.h"

#include <atomic>
#include <cstring>
#include <utility>

#include "common/binio.h"
#include "common/check.h"
#include "common/crc32.h"
#include "common/fileio.h"
#include "common/runtime_config.h"

namespace autocts {
namespace {

std::atomic<bool> g_bank_enabled{GlobalRuntimeConfig().sample_bank};
std::atomic<bool> g_bank_madvise{GlobalRuntimeConfig().bank_madvise};
std::atomic<bool> g_bank_verify{GlobalRuntimeConfig().bank_verify_on_open};

/// "ACTSBNK2" — the mmap format. "ACTSBNK1" is the legacy wholesale blob.
constexpr uint64_t kBankMagic = 0x41435453424e4b32ull;
constexpr uint64_t kWholesaleMagic = 0x41435453424e4b31ull;
constexpr uint32_t kBankVersion = 2;

constexpr uint64_t kHeaderBytes = 64;
constexpr uint64_t kFrameHeaderBytes = 32;
constexpr uint64_t kAlign = 64;
constexpr uint32_t kKindSection = 1;
constexpr uint32_t kKindRecord = 2;
/// Sanity bound on one frame's payload (a preliminary embedding is a few
/// hundred KB at paper scale; 1 TiB catches garbage lengths immediately).
constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 40;

uint64_t Align64(uint64_t n) { return (n + (kAlign - 1)) & ~(kAlign - 1); }

/// The fixed 64-byte file header. header_crc covers bytes [16, 64) — the
/// config hash and reserved tail — so a bit flip anywhere in the header is
/// caught by either the magic/version match or the CRC.
std::string EncodeHeader(uint64_t config_hash) {
  std::string out;
  AppendPod(&out, kBankMagic);
  AppendPod(&out, kBankVersion);
  const size_t crc_pos = out.size();
  AppendPod(&out, uint32_t{0});
  AppendPod(&out, config_hash);
  out.resize(kHeaderBytes, '\0');
  const uint32_t crc = Crc32(out.data() + 16, kHeaderBytes - 16);
  std::memcpy(&out[crc_pos], &crc, sizeof(crc));
  return out;
}

/// A complete frame: 32-byte header, payload, zero pad to a 64-byte
/// multiple. Frames always start 64-aligned (the header is 64 bytes and
/// every frame's length is a 64 multiple), so in-frame alignment equals
/// file alignment.
std::string EncodeFrame(uint32_t kind, uint64_t key, uint32_t task,
                        uint32_t slot, const std::string& payload) {
  std::string out;
  AppendPod(&out, kind);
  AppendPod(&out, Crc32(payload.data(), payload.size()));
  AppendPod(&out, static_cast<uint64_t>(payload.size()));
  AppendPod(&out, key);
  AppendPod(&out, task);
  AppendPod(&out, slot);
  CHECK_EQ(out.size(), kFrameHeaderBytes);
  out += payload;
  out.resize(Align64(out.size()), '\0');
  return out;
}

/// Section payload: metadata, zero pad placing the floats at a 64-aligned
/// in-frame (= in-file) offset, then the raw fp32 tensor.
std::string EncodeSectionPayload(const std::string& name,
                                 const std::vector<int>& shape,
                                 const float* data) {
  std::string p;
  AppendString(&p, name);
  AppendPod(&p, static_cast<uint32_t>(shape.size()));
  uint64_t count = 1;
  for (int d : shape) {
    AppendPod(&p, static_cast<int32_t>(d));
    count *= static_cast<uint64_t>(d);
  }
  p.resize(Align64(kFrameHeaderBytes + p.size()) - kFrameHeaderBytes, '\0');
  AppendRaw(&p, data, count * sizeof(float));
  return p;
}

std::string EncodeRecordPayload(const BankRecord& r) {
  std::string p;
  AppendPod(&p, r.signature);
  AppendPod(&p, r.r_prime);
  AppendPod(&p, static_cast<uint8_t>(r.shared ? 1 : 0));
  AppendPod(&p, static_cast<uint8_t>(r.quarantined ? 1 : 0));
  AppendPod(&p, static_cast<int32_t>(r.retries));
  AppendString(&p, r.note);
  AppendString(&p, r.arch);
  return p;
}

template <typename T>
void ReadPodAt(const char* base, uint64_t* off, T* out) {
  std::memcpy(out, base + *off, sizeof(T));
  *off += sizeof(T);
}

Status CorruptError(const std::string& path, uint64_t offset,
                    const std::string& what) {
  return Status::Error("sample bank " + path + ": " + what + " at offset " +
                       std::to_string(offset));
}

/// Frame-scan output, converted to SampleBank::Frame by the caller (the
/// nested struct is private to SampleBank).
struct ScannedFrame {
  uint32_t kind = 0;
  uint32_t crc = 0;
  uint64_t payload_offset = 0;
  uint64_t payload_bytes = 0;
};

/// Walks the frame stream of a mapped bank. `allow_torn_tail` (append
/// mode) stops cleanly at an incomplete final frame — the state a killed
/// append leaves — reporting how far the file verified; read-only mode
/// treats the same state as an error. A structurally complete frame whose
/// record payload fails its CRC is corruption in both modes.
Status ScanFrames(const std::string& path, const char* base, uint64_t size,
                  bool verify_sections, bool allow_torn_tail,
                  uint64_t* valid_end, std::vector<ScannedFrame>* frames,
                  std::vector<BankSection>* sections,
                  std::vector<BankRecord>* records) {
  uint64_t off = kHeaderBytes;
  *valid_end = off;
  while (off < size) {
    if (size - off < kFrameHeaderBytes) {
      if (allow_torn_tail) break;
      return CorruptError(path, off, "torn frame header");
    }
    uint64_t pos = off;
    uint32_t kind = 0, crc = 0, task = 0, slot = 0;
    uint64_t payload_bytes = 0, key = 0;
    ReadPodAt(base, &pos, &kind);
    ReadPodAt(base, &pos, &crc);
    ReadPodAt(base, &pos, &payload_bytes);
    ReadPodAt(base, &pos, &key);
    ReadPodAt(base, &pos, &task);
    ReadPodAt(base, &pos, &slot);
    if (kind != kKindSection && kind != kKindRecord) {
      return CorruptError(path, off,
                          "unknown frame kind " + std::to_string(kind));
    }
    if (payload_bytes > kMaxPayloadBytes) {
      return CorruptError(path, off, "implausible frame length");
    }
    const uint64_t frame_end = off + Align64(kFrameHeaderBytes + payload_bytes);
    if (frame_end > size) {
      if (allow_torn_tail) break;
      return CorruptError(path, off, "truncated frame");
    }
    const char* payload = base + off + kFrameHeaderBytes;
    if (kind == kKindRecord) {
      // Record payloads are small; their CRC is always verified so a
      // resumed run can never mislabel a sample from a corrupt fate.
      if (Crc32(payload, payload_bytes) != crc) {
        return CorruptError(path, off, "record CRC mismatch");
      }
      const std::string bytes(payload, payload_bytes);
      FrameReader reader(bytes, 0);
      BankRecord rec;
      rec.task = static_cast<int>(task);
      rec.slot = static_cast<int>(slot);
      uint8_t shared = 0, quarantined = 0;
      int32_t retries = 0;
      if (!reader.Read(&rec.signature) || !reader.Read(&rec.r_prime) ||
          !reader.Read(&shared) || !reader.Read(&quarantined) ||
          !reader.Read(&retries) || !reader.ReadString(&rec.note) ||
          !reader.ReadString(&rec.arch) || reader.remaining() != 0) {
        return CorruptError(path, off, "malformed record payload");
      }
      rec.shared = shared != 0;
      rec.quarantined = quarantined != 0;
      rec.retries = retries;
      records->push_back(std::move(rec));
    } else {
      if (verify_sections && Crc32(payload, payload_bytes) != crc) {
        return CorruptError(path, off, "section CRC mismatch");
      }
      // Metadata is a short prefix of the payload; copy just enough of it
      // to parse (the tensor body stays untouched in the mapping).
      const std::string meta(payload,
                             std::min<uint64_t>(payload_bytes, uint64_t{4096}));
      FrameReader reader(meta, 0);
      BankSection sec;
      sec.task = static_cast<int>(task);
      sec.key = key;
      uint32_t ndim = 0;
      if (!reader.ReadString(&sec.name) || !reader.Read(&ndim) || ndim > 8) {
        return CorruptError(path, off, "malformed section metadata");
      }
      uint64_t count = 1;
      for (uint32_t i = 0; i < ndim; ++i) {
        int32_t d = 0;
        if (!reader.Read(&d) || d < 0) {
          return CorruptError(path, off, "malformed section shape");
        }
        sec.shape.push_back(d);
        count *= static_cast<uint64_t>(d);
      }
      const uint64_t meta_bytes = meta.size() - reader.remaining();
      const uint64_t floats_rel =
          Align64(kFrameHeaderBytes + meta_bytes) - kFrameHeaderBytes;
      if (payload_bytes != floats_rel + count * sizeof(float)) {
        return CorruptError(path, off, "section length mismatch");
      }
      sec.float_offset = off + kFrameHeaderBytes + floats_rel;
      sec.float_count = count;
      sections->push_back(std::move(sec));
    }
    ScannedFrame f;
    f.kind = kind;
    f.crc = crc;
    f.payload_offset = off + kFrameHeaderBytes;
    f.payload_bytes = payload_bytes;
    frames->push_back(f);
    off = frame_end;
    *valid_end = off;
  }
  return Status::Ok();
}

}  // namespace

bool SampleBankEnabled() {
  return g_bank_enabled.load(std::memory_order_relaxed);
}
void SetSampleBankEnabled(bool enabled) {
  g_bank_enabled.store(enabled, std::memory_order_relaxed);
}
bool SampleBankMadviseEnabled() {
  return g_bank_madvise.load(std::memory_order_relaxed);
}
void SetSampleBankMadviseEnabled(bool enabled) {
  g_bank_madvise.store(enabled, std::memory_order_relaxed);
}
bool SampleBankVerifyOnOpen() {
  return g_bank_verify.load(std::memory_order_relaxed);
}
void SetSampleBankVerifyOnOpen(bool enabled) {
  g_bank_verify.store(enabled, std::memory_order_relaxed);
}

bool IsWholesaleBankFile(const std::string& path) {
  StatusOr<std::shared_ptr<MmapFile>> f = MmapFile::OpenReadOnly(path);
  if (!f.ok() || f.value()->size() < sizeof(uint64_t)) return false;
  uint64_t magic = 0;
  std::memcpy(&magic, f.value()->data(), sizeof(magic));
  return magic == kWholesaleMagic;
}

StatusOr<std::unique_ptr<SampleBank>> SampleBank::Open(
    const std::string& path, std::optional<uint64_t> expected_config_hash,
    Mode mode) {
  if (!IsWholesaleBankFile(path)) {
    return OpenMmapFormat(path, expected_config_hash, mode);
  }
  // One-shot migration: parse the wholesale blob and write the converted
  // mmap-format bank next to it. The wholesale original is never touched
  // (its read path is kept for one release); all subsequent traffic —
  // including this open — goes through the converted file.
  const std::string converted = path + ".mmap";
  StatusOr<std::shared_ptr<MmapFile>> existing =
      MmapFile::OpenReadOnly(converted);
  bool have_converted = false;
  if (existing.ok() && existing.value()->size() >= sizeof(uint64_t)) {
    uint64_t magic = 0;
    std::memcpy(&magic, existing.value()->data(), sizeof(magic));
    have_converted = magic == kBankMagic;
  }
  if (!have_converted) {
    StatusOr<std::string> bytes = ReadFileToString(path);
    if (!bytes.ok()) return bytes.status();
    StatusOr<BankImage> image = ParseBankWholesale(bytes.value());
    if (!image.ok()) return image.status();
    const BankImage& img = image.value();
    if (expected_config_hash.has_value() &&
        img.config_hash != *expected_config_hash) {
      return Status::Error(
          "legacy sample bank " + path +
          " was written under a different configuration; refusing to "
          "migrate");
    }
    std::string out = EncodeHeader(img.config_hash);
    for (const BankImage::Task& t : img.sections) {
      out += EncodeFrame(kKindSection, t.key, static_cast<uint32_t>(t.task), 0,
                         EncodeSectionPayload(t.name, t.shape,
                                              t.floats.data()));
    }
    for (const BankRecord& r : img.records) {
      out += EncodeFrame(kKindRecord, 0, static_cast<uint32_t>(r.task),
                         static_cast<uint32_t>(r.slot),
                         EncodeRecordPayload(r));
    }
    Status written = AtomicWriteFile(converted, out);
    if (!written.ok()) return written;
  }
  return OpenMmapFormat(converted, expected_config_hash, mode);
}

StatusOr<std::unique_ptr<SampleBank>> SampleBank::OpenMmapFormat(
    const std::string& path, std::optional<uint64_t> expected_config_hash,
    Mode mode) {
  auto bank = std::unique_ptr<SampleBank>(new SampleBank());
  bank->mode_ = mode;
  bank->path_ = path;

  StatusOr<std::shared_ptr<MmapFile>> mapped = MmapFile::OpenReadOnly(path);
  const bool exists = mapped.ok();
  const uint64_t file_size = exists ? mapped.value()->size() : 0;

  if (mode == Mode::kReadOnly) {
    if (!exists) return mapped.status();
    if (file_size < kHeaderBytes) {
      return Status::Error("sample bank " + path + " is truncated (" +
                           std::to_string(file_size) + " bytes)");
    }
  }

  if (!exists || file_size < kHeaderBytes) {
    // Fresh bank, or a kill mid-header-creation: append mode starts over
    // with a new header so even an immediately killed run leaves a
    // self-describing file.
    CHECK(mode == Mode::kAppend);
    CHECK(expected_config_hash.has_value())
        << "creating a sample bank requires a config hash";
    StatusOr<std::shared_ptr<AppendFile>> writer =
        AppendFile::Open(path, /*exclusive=*/true);
    if (!writer.ok()) return writer.status();
    if (writer.value()->size() > 0) {
      Status truncated = writer.value()->Truncate(0);
      if (!truncated.ok()) return truncated;
    }
    const std::string header = EncodeHeader(*expected_config_hash);
    Status appended = writer.value()->Append(header.data(), header.size());
    if (!appended.ok()) return appended;
    bank->writer_ = writer.value();
    bank->config_hash_ = *expected_config_hash;
    bank->valid_end_ = kHeaderBytes;
    return StatusOr<std::unique_ptr<SampleBank>>(std::move(bank));
  }

  const char* base = mapped.value()->data();
  uint64_t magic = 0;
  uint32_t version = 0, header_crc = 0;
  uint64_t config_hash = 0;
  uint64_t pos = 0;
  ReadPodAt(base, &pos, &magic);
  ReadPodAt(base, &pos, &version);
  ReadPodAt(base, &pos, &header_crc);
  ReadPodAt(base, &pos, &config_hash);
  if (magic != kBankMagic) {
    return Status::Error(path + " is not a sample bank (bad magic)");
  }
  if (version != kBankVersion) {
    return Status::Error("sample bank " + path + " has unsupported version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kBankVersion) + ")");
  }
  if (Crc32(base + 16, kHeaderBytes - 16) != header_crc) {
    return Status::Error("sample bank " + path + " header CRC mismatch");
  }
  if (expected_config_hash.has_value() &&
      config_hash != *expected_config_hash) {
    return Status::Error(
        "sample bank " + path +
        " was written under a different configuration; refusing to open");
  }

  uint64_t valid_end = kHeaderBytes;
  std::vector<ScannedFrame> scanned;
  Status status = ScanFrames(path, base, file_size, SampleBankVerifyOnOpen(),
                             /*allow_torn_tail=*/mode == Mode::kAppend,
                             &valid_end, &scanned, &bank->sections_,
                             &bank->records_);
  if (!status.ok()) return status;
  if (mode == Mode::kReadOnly && valid_end != file_size) {
    return Status::Error("sample bank " + path + " has a torn tail (" +
                         std::to_string(file_size - valid_end) +
                         " trailing bytes); reopen for append to recover");
  }
  bank->frames_.reserve(scanned.size());
  for (const ScannedFrame& f : scanned) {
    Frame frame;
    frame.kind = f.kind;
    frame.crc = f.crc;
    frame.payload_offset = f.payload_offset;
    frame.payload_bytes = f.payload_bytes;
    bank->frames_.push_back(frame);
  }

  bank->mapping_ = mapped.value();
  bank->config_hash_ = config_hash;
  bank->valid_end_ = valid_end;
  if (mode == Mode::kAppend) {
    // The exclusive flock is what lets sharded collection hand every worker
    // its own bank file and still catch two processes racing one path.
    StatusOr<std::shared_ptr<AppendFile>> writer =
        AppendFile::Open(path, /*exclusive=*/true);
    if (!writer.ok()) return writer.status();
    // Torn-tail recovery: drop the incomplete append. Pages below
    // valid_end are unaffected by the truncation, so borrowed sections
    // stay valid.
    Status truncated = writer.value()->Truncate(valid_end);
    if (!truncated.ok()) return truncated;
    bank->writer_ = writer.value();
  }
  return StatusOr<std::unique_ptr<SampleBank>>(std::move(bank));
}

Status SampleBank::AppendSection(int task, uint64_t key,
                                 const std::string& name,
                                 const std::vector<int>& shape,
                                 const float* data) {
  CHECK(mode_ == Mode::kAppend && writer_ != nullptr);
  const std::string frame =
      EncodeFrame(kKindSection, key, static_cast<uint32_t>(task), 0,
                  EncodeSectionPayload(name, shape, data));
  return writer_->Append(frame.data(), frame.size());
}

Status SampleBank::AppendRecord(const BankRecord& record) {
  CHECK(mode_ == Mode::kAppend && writer_ != nullptr);
  const std::string frame = EncodeFrame(
      kKindRecord, 0, static_cast<uint32_t>(record.task),
      static_cast<uint32_t>(record.slot), EncodeRecordPayload(record));
  return writer_->Append(frame.data(), frame.size());
}

const BankSection* SampleBank::FindSection(int task, uint64_t key) const {
  // Last match wins, mirroring the record-supersede rule.
  const BankSection* found = nullptr;
  for (const BankSection& s : sections_) {
    if (s.task == task && s.key == key) found = &s;
  }
  return found;
}

Tensor SampleBank::BorrowSection(const BankSection& section) const {
  CHECK(mapping_ != nullptr) << "section borrowing needs a mapped bank";
  CHECK_LE(section.float_offset + section.float_count * sizeof(float),
           valid_end_);
  const float* data =
      reinterpret_cast<const float*>(mapping_->data() + section.float_offset);
  return Tensor::FromExternal(section.shape, data, section.float_count,
                              mapping_);
}

Status SampleBank::VerifyAll() const {
  if (mapping_ == nullptr) return Status::Ok();
  const char* base = mapping_->data();
  for (const Frame& f : frames_) {
    if (Crc32(base + f.payload_offset, f.payload_bytes) != f.crc) {
      return CorruptError(path_, f.payload_offset - kFrameHeaderBytes,
                          f.kind == kKindSection ? "section CRC mismatch"
                                                 : "record CRC mismatch");
    }
  }
  return Status::Ok();
}

void SampleBank::AdviseSequentialAll() const {
  if (mapping_ == nullptr || !SampleBankMadviseEnabled()) return;
  mapping_->AdviseSequential(0, valid_end_);
}

void SampleBank::AdviseWillNeed(const BankSection& section) const {
  if (mapping_ == nullptr || !SampleBankMadviseEnabled()) return;
  mapping_->AdviseWillNeed(section.float_offset,
                           section.float_count * sizeof(float));
}

uint64_t SampleBank::size() const {
  return writer_ != nullptr ? writer_->size() : valid_end_;
}

std::string SerializeBankWholesale(const BankImage& image) {
  std::string payload;
  AppendPod(&payload, image.config_hash);
  AppendPod(&payload, static_cast<uint64_t>(image.sections.size()));
  for (const BankImage::Task& t : image.sections) {
    AppendPod(&payload, static_cast<int32_t>(t.task));
    AppendPod(&payload, t.key);
    AppendString(&payload, t.name);
    AppendPod(&payload, static_cast<uint32_t>(t.shape.size()));
    for (int d : t.shape) AppendPod(&payload, static_cast<int32_t>(d));
    AppendPod(&payload, static_cast<uint64_t>(t.floats.size()));
    AppendRaw(&payload, t.floats.data(), t.floats.size() * sizeof(float));
  }
  AppendPod(&payload, static_cast<uint64_t>(image.records.size()));
  for (const BankRecord& r : image.records) {
    AppendPod(&payload, static_cast<int32_t>(r.task));
    AppendPod(&payload, static_cast<int32_t>(r.slot));
    AppendPod(&payload, r.signature);
    AppendPod(&payload, r.r_prime);
    AppendPod(&payload, static_cast<uint8_t>(r.shared ? 1 : 0));
    AppendPod(&payload, static_cast<uint8_t>(r.quarantined ? 1 : 0));
    AppendPod(&payload, static_cast<int32_t>(r.retries));
    AppendString(&payload, r.note);
    AppendString(&payload, r.arch);
  }
  std::string out;
  AppendPod(&out, kWholesaleMagic);
  AppendPod(&out, Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

StatusOr<BankImage> ParseBankWholesale(const std::string& bytes) {
  FrameReader reader(bytes, 0);
  uint64_t magic = 0;
  uint32_t crc = 0;
  if (!reader.Read(&magic) || !reader.Read(&crc)) {
    return Status::Error("truncated wholesale sample bank");
  }
  if (magic != kWholesaleMagic) {
    return Status::Error("not a wholesale sample bank (bad magic)");
  }
  const size_t payload_offset = sizeof(uint64_t) + sizeof(uint32_t);
  if (Crc32(bytes.data() + payload_offset, bytes.size() - payload_offset) !=
      crc) {
    return Status::Error("wholesale sample bank CRC mismatch");
  }
  BankImage image;
  uint64_t num_sections = 0;
  if (!reader.Read(&image.config_hash) || !reader.Read(&num_sections)) {
    return Status::Error("truncated wholesale sample bank");
  }
  for (uint64_t i = 0; i < num_sections; ++i) {
    BankImage::Task t;
    int32_t task = 0;
    uint32_t ndim = 0;
    if (!reader.Read(&task) || !reader.Read(&t.key) ||
        !reader.ReadString(&t.name) || !reader.Read(&ndim) || ndim > 8) {
      return Status::Error("malformed wholesale section " + std::to_string(i));
    }
    t.task = task;
    for (uint32_t d = 0; d < ndim; ++d) {
      int32_t dim = 0;
      if (!reader.Read(&dim) || dim < 0) {
        return Status::Error("malformed wholesale section " +
                             std::to_string(i));
      }
      t.shape.push_back(dim);
    }
    uint64_t count = 0;
    if (!reader.Read(&count) || !reader.ReadFloats(&t.floats, count)) {
      return Status::Error("malformed wholesale section " + std::to_string(i));
    }
    image.sections.push_back(std::move(t));
  }
  uint64_t num_records = 0;
  if (!reader.Read(&num_records)) {
    return Status::Error("truncated wholesale sample bank");
  }
  for (uint64_t i = 0; i < num_records; ++i) {
    BankRecord r;
    int32_t task = 0, slot = 0, retries = 0;
    uint8_t shared = 0, quarantined = 0;
    if (!reader.Read(&task) || !reader.Read(&slot) ||
        !reader.Read(&r.signature) || !reader.Read(&r.r_prime) ||
        !reader.Read(&shared) || !reader.Read(&quarantined) ||
        !reader.Read(&retries) || !reader.ReadString(&r.note) ||
        !reader.ReadString(&r.arch)) {
      return Status::Error("malformed wholesale record " + std::to_string(i));
    }
    r.task = task;
    r.slot = slot;
    r.shared = shared != 0;
    r.quarantined = quarantined != 0;
    r.retries = retries;
    image.records.push_back(std::move(r));
  }
  if (reader.remaining() != 0) {
    return Status::Error("trailing bytes in wholesale sample bank");
  }
  return image;
}

}  // namespace autocts
