#ifndef REPRO_COMMON_CHECK_H_
#define REPRO_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace autocts {
namespace internal {

/// Accumulates a fatal-error message and aborts the process when destroyed.
/// Used by the CHECK family of macros; never instantiate directly.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed expression into void so both ternary branches match.
/// operator& binds looser than operator<<, so the whole message chain runs
/// before voidification.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace autocts

/// Aborts with a message if `cond` is false. Streams extra context:
///   CHECK(i < n) << "index " << i << " out of range";
#define CHECK(cond)               \
  (cond) ? (void)0                \
         : ::autocts::internal::Voidify() &                            \
               ::autocts::internal::FatalMessage(__FILE__, __LINE__, #cond) \
                   .stream()

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // REPRO_COMMON_CHECK_H_
