#include "common/guard.h"

#include <atomic>
#include <cmath>

#include "common/parallel.h"
#include "common/runtime_config.h"

namespace autocts {
namespace {

std::atomic<bool> g_guards_enabled{GlobalRuntimeConfig().guards};

std::atomic<uint64_t> g_finite_checks{0};
std::atomic<uint64_t> g_nonfinite_detected{0};

}  // namespace

bool GuardsEnabled() {
  return g_guards_enabled.load(std::memory_order_relaxed);
}

void SetGuardsEnabled(bool enabled) {
  g_guards_enabled.store(enabled, std::memory_order_relaxed);
}

GuardStats CurrentGuardStats() {
  GuardStats s;
  s.finite_checks = g_finite_checks.load(std::memory_order_relaxed);
  s.nonfinite_detected = g_nonfinite_detected.load(std::memory_order_relaxed);
  return s;
}

void NoteNonfiniteDetected() {
  g_nonfinite_detected.fetch_add(1, std::memory_order_relaxed);
}

bool AllFiniteBlocked(const float* x, int64_t n) {
  g_finite_checks.fetch_add(1, std::memory_order_relaxed);
  constexpr int64_t kBlock = 4096;
  const int64_t num_blocks = (n + kBlock - 1) / kBlock;
  auto block_finite = [&](int64_t b) {
    const int64_t lo = b * kBlock;
    const int64_t hi = std::min(n, lo + kBlock);
    // Summing |x| in double lets the loop vectorize and cannot itself
    // overflow (4096 * FLT_MAX << DBL_MAX), so the sum is non-finite iff
    // some element is (no cancellation: all terms are non-negative).
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      acc += std::fabs(static_cast<double>(x[i]));
    }
    return std::isfinite(acc);
  };
  bool finite;
  if (num_blocks <= 1) {
    finite = n == 0 || block_finite(0);
  } else {
    std::atomic<bool> all_finite{true};
    ParallelFor(0, num_blocks, 4, [&](int64_t b0, int64_t b1) {
      for (int64_t b = b0; b < b1; ++b) {
        if (!all_finite.load(std::memory_order_relaxed)) return;
        if (!block_finite(b)) {
          all_finite.store(false, std::memory_order_relaxed);
          return;
        }
      }
    });
    finite = all_finite.load(std::memory_order_relaxed);
  }
  if (!finite) NoteNonfiniteDetected();
  return finite;
}

void RobustnessReport::Merge(const RobustnessReport& other) {
  nonfinite_events += other.nonfinite_events;
  retried_samples += other.retried_samples;
  quarantined_samples += other.quarantined_samples;
  resumed_samples += other.resumed_samples;
  resumed_task_embeddings += other.resumed_task_embeddings;
  skipped_optimizer_steps += other.skipped_optimizer_steps;
  nonfinite_comparisons += other.nonfinite_comparisons;
  diverged_candidates += other.diverged_candidates;
  checkpoint_writes += other.checkpoint_writes;
  checkpoint_write_failures += other.checkpoint_write_failures;
  quarantine_reasons.insert(quarantine_reasons.end(),
                            other.quarantine_reasons.begin(),
                            other.quarantine_reasons.end());
}

}  // namespace autocts
