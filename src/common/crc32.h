#ifndef REPRO_COMMON_CRC32_H_
#define REPRO_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace autocts {

namespace internal {

/// Table for the reflected CRC-32 (IEEE 802.3 polynomial 0xEDB88320) — the
/// same checksum zlib/PNG use, so frames are verifiable with external tools.
inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

/// CRC-32 of a byte range; pass the previous value via `seed` to checksum a
/// stream incrementally (seed 0 starts a fresh checksum).
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const auto& table = internal::Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace autocts

#endif  // REPRO_COMMON_CRC32_H_
