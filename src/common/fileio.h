#ifndef REPRO_COMMON_FILEIO_H_
#define REPRO_COMMON_FILEIO_H_

#include <string>

#include "common/status.h"

namespace autocts {

/// Reads a whole binary file. Errors on missing/unreadable paths.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` atomically: the bytes go to `path + ".tmp"` first and
/// are renamed over `path` only after the write fully succeeded, so a crash
/// (or an injected kIoWriteFail fault) can never leave a torn file at
/// `path` — readers see either the previous complete version or the new
/// one. The temp file is removed on failure.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

}  // namespace autocts

#endif  // REPRO_COMMON_FILEIO_H_
