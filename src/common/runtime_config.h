#ifndef REPRO_COMMON_RUNTIME_CONFIG_H_
#define REPRO_COMMON_RUNTIME_CONFIG_H_

#include <cstdint>
#include <string>

namespace autocts {

/// Numeric precision of comparator *inference* (CompareLogits during
/// zero-shot ranking). Training and forecaster evaluation always run fp32;
/// pairwise ranking tolerates reduced precision as long as rank agreement
/// holds (validated by comparator_quant_test and the ablation bench).
enum class ComparatorPrecision {
  kFp32 = 0,  ///< The tensor-graph fp32 path (default).
  kBf16,      ///< Weights rounded to bfloat16, fp32 accumulation.
  kInt8,      ///< Per-channel int8 weights, dynamic per-row activations,
              ///< int32 accumulation.
};

const char* ComparatorPrecisionName(ComparatorPrecision p);

/// The process runtime configuration: every AUTOCTS_* knob, parsed from the
/// environment exactly once (see FromEnv) instead of ad-hoc getenv calls
/// sprinkled through the subsystems. Subsystems seed their live toggles from
/// GlobalRuntimeConfig() on first use; the existing in-process setters
/// (SetFusedKernelsEnabled, plan::SetPlansEnabled, SetGuardsEnabled,
/// kernels::SetActiveBackend, ...) still override afterwards — the struct is
/// the startup snapshot and the single parse point, not a live registry.
///
/// ExecContext carries an optional pointer to one of these so pipeline code
/// can thread a non-global configuration (tests, multi-tenant servers)
/// through the same plumbing as pools and seeds.
struct RuntimeConfig {
  /// AUTOCTS_NUM_THREADS: size of the process-default thread pool
  /// (0 = hardware concurrency).
  int num_threads = 0;
  /// AUTOCTS_POOL_MB: buffer-pool capacity cap in bytes (default 256 MiB).
  uint64_t pool_capacity_bytes = uint64_t{256} << 20;
  /// AUTOCTS_NO_FUSED=1 routes fused kernels through their op-graph
  /// reference compositions.
  bool fused_kernels = true;
  /// AUTOCTS_NO_PLAN=1 disables step-plan capture/replay.
  bool step_plans = true;
  /// AUTOCTS_NO_GUARDS=1 disarms the non-finite guardrails.
  bool guards = true;
  /// AUTOCTS_BACKEND: SIMD kernel backend ("" = auto-detect per CPU;
  /// "scalar", "avx2", "avx512", "neon" force one, and forcing an
  /// unavailable backend falls back to the best available with a warning).
  std::string backend;
  /// AUTOCTS_COMPARATOR_PRECISION: "fp32" (default), "bf16", or "int8".
  ComparatorPrecision comparator_precision = ComparatorPrecision::kFp32;
  /// AUTOCTS_SERVE_PORT: TCP port of `autocts_cli serve` (0 = ephemeral).
  int serve_port = 8080;
  /// AUTOCTS_SERVE_WORKERS: serving worker threads (0 = one per core, capped
  /// at 8 — serving workers run kernels inline, so more rarely helps).
  int serve_workers = 2;
  /// AUTOCTS_SERVE_MAX_BATCH: requests coalesced into one micro-batch.
  int serve_max_batch = 8;
  /// AUTOCTS_SERVE_MAX_DELAY_US: straggler wait after the first request of a
  /// micro-batch.
  int serve_max_delay_us = 200;
  /// AUTOCTS_SERVE_EMBED_CACHE: resident task embeddings (0 disables).
  int serve_embed_cache_entries = 64;
  /// AUTOCTS_BANK_DISABLE=1 routes sample-fate persistence through the
  /// legacy wholesale checkpoint manifest instead of the mmap sample bank.
  bool sample_bank = true;
  /// AUTOCTS_BANK_NO_MADVISE=1 suppresses madvise streaming hints on bank
  /// mappings.
  bool bank_madvise = true;
  /// AUTOCTS_BANK_VERIFY=1 CRC-verifies every section payload when a bank
  /// is opened (default: sections verify on scrub only, keeping open cost
  /// independent of bank size).
  bool bank_verify_on_open = false;
  /// AUTOCTS_STREAM_WARMUP: ticks the drift detector observes before its
  /// error baseline freezes and triggering becomes possible.
  int stream_warmup = 64;
  /// AUTOCTS_STREAM_PH_DELTA: Page–Hinkley drift tolerance — per-tick slack
  /// subtracted from the normalized-error deviation before it accumulates.
  float stream_ph_delta = 0.05f;
  /// AUTOCTS_STREAM_PH_LAMBDA: Page–Hinkley trigger threshold on the
  /// accumulated deviation (larger = less sensitive).
  float stream_ph_lambda = 8.0f;
  /// AUTOCTS_STREAM_ERROR_WINDOW: rolling online-error window length used
  /// for the recent-MAE estimate reported per tick.
  int stream_error_window = 128;
  /// AUTOCTS_STREAM_RESEARCH_RETRIES: re-search attempts per drift trigger
  /// before the engine gives up and keeps the degraded model.
  int stream_research_retries = 2;
  /// AUTOCTS_STREAM_RESEARCH_BACKOFF: ticks between re-search retries
  /// (doubles per consecutive failure).
  int stream_research_backoff = 16;
  /// AUTOCTS_STREAM_RESEARCH_DEADLINE: ticks after which an outstanding
  /// background re-search is collected (the swap point; the old model
  /// serves every tick until then).
  int stream_research_deadline = 32;
  /// AUTOCTS_STREAM_RESEARCH_DELAY: ticks between a drift trigger and the
  /// re-search launch, letting the history ring refill with post-drift
  /// data before the training snapshot is taken (0 = launch immediately).
  int stream_research_delay = 0;
  /// AUTOCTS_STREAM_NO_RECOVERY=1 disables drift-triggered re-search and
  /// hot-swap; the detector still counts drifts (degraded-baseline mode).
  bool stream_recovery = true;
  /// AUTOCTS_SHARD_WORKERS: worker processes for sharded sample collection
  /// (0 or 1 = collect in-process, no coordinator; the CLI --workers flag
  /// overrides).
  int shard_workers = 0;
  /// AUTOCTS_SHARD_HEARTBEAT_MS: how often an idle-but-training worker is
  /// expected to report progress to the coordinator.
  int shard_heartbeat_ms = 250;
  /// AUTOCTS_SHARD_STEAL_TIMEOUT_MS: silence on a worker's channel after
  /// which its in-flight shard becomes stealable by an idle worker.
  int shard_steal_timeout_ms = 10000;

  /// Parses every knob from the environment. Unparseable values keep their
  /// defaults (matching the historical per-site getenv behaviour).
  static RuntimeConfig FromEnv();

  /// One-line-per-knob JSON object (shared serializer, see common/jsonio.h).
  std::string ToJson() const;
};

/// The configuration this process started with: FromEnv(), parsed once on
/// first call. This is the single environment entry point — subsystem code
/// must consult this (or the ExecContext-carried override) instead of
/// calling getenv.
const RuntimeConfig& GlobalRuntimeConfig();

}  // namespace autocts

#endif  // REPRO_COMMON_RUNTIME_CONFIG_H_
