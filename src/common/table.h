#ifndef REPRO_COMMON_TABLE_H_
#define REPRO_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace autocts {

/// Minimal fixed-width text table used by the benchmark harnesses to print
/// paper-style result tables to stdout.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with column-aligned cells and a separator rule.
  std::string ToString() const;

  /// Formats a float with fixed precision (default 3 decimals).
  static std::string Num(double v, int precision = 3);

  /// Formats "mean±std" the way the paper reports results.
  static std::string MeanStd(double mean, double std, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autocts

#endif  // REPRO_COMMON_TABLE_H_
