#include "common/runtime_config.h"

#include <cstdlib>
#include <cstring>

#include "common/jsonio.h"

namespace autocts {
namespace {

/// The historical truthiness of the AUTOCTS_NO_* knobs: unset, empty, or
/// "0" means "feature stays on".
bool DisableFlagSet(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

const char* ComparatorPrecisionName(ComparatorPrecision p) {
  switch (p) {
    case ComparatorPrecision::kFp32: return "fp32";
    case ComparatorPrecision::kBf16: return "bf16";
    case ComparatorPrecision::kInt8: return "int8";
  }
  return "fp32";
}

RuntimeConfig RuntimeConfig::FromEnv() {
  RuntimeConfig cfg;
  if (const char* env = std::getenv("AUTOCTS_NUM_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) cfg.num_threads = n;
  }
  if (const char* env = std::getenv("AUTOCTS_POOL_MB")) {
    long mb = std::atol(env);
    if (mb >= 0) cfg.pool_capacity_bytes = static_cast<uint64_t>(mb) << 20;
  }
  cfg.fused_kernels = !DisableFlagSet("AUTOCTS_NO_FUSED");
  cfg.step_plans = !DisableFlagSet("AUTOCTS_NO_PLAN");
  cfg.guards = !DisableFlagSet("AUTOCTS_NO_GUARDS");
  if (const char* env = std::getenv("AUTOCTS_BACKEND")) {
    cfg.backend = env;
  }
  if (const char* env = std::getenv("AUTOCTS_COMPARATOR_PRECISION")) {
    if (std::strcmp(env, "bf16") == 0) {
      cfg.comparator_precision = ComparatorPrecision::kBf16;
    } else if (std::strcmp(env, "int8") == 0) {
      cfg.comparator_precision = ComparatorPrecision::kInt8;
    }
    // Anything else (incl. "fp32") keeps the fp32 default.
  }
  if (const char* env = std::getenv("AUTOCTS_SERVE_PORT")) {
    int n = std::atoi(env);
    if (n >= 0 && n <= 65535) cfg.serve_port = n;
  }
  if (const char* env = std::getenv("AUTOCTS_SERVE_WORKERS")) {
    int n = std::atoi(env);
    if (n >= 0) cfg.serve_workers = n;
  }
  if (const char* env = std::getenv("AUTOCTS_SERVE_MAX_BATCH")) {
    int n = std::atoi(env);
    if (n > 0) cfg.serve_max_batch = n;
  }
  if (const char* env = std::getenv("AUTOCTS_SERVE_MAX_DELAY_US")) {
    int n = std::atoi(env);
    if (n >= 0) cfg.serve_max_delay_us = n;
  }
  cfg.sample_bank = !DisableFlagSet("AUTOCTS_BANK_DISABLE");
  cfg.bank_madvise = !DisableFlagSet("AUTOCTS_BANK_NO_MADVISE");
  cfg.bank_verify_on_open = DisableFlagSet("AUTOCTS_BANK_VERIFY");
  if (const char* env = std::getenv("AUTOCTS_STREAM_WARMUP")) {
    int n = std::atoi(env);
    if (n > 0) cfg.stream_warmup = n;
  }
  if (const char* env = std::getenv("AUTOCTS_STREAM_PH_DELTA")) {
    char* end = nullptr;
    const float v = std::strtof(env, &end);
    if (end != env && v >= 0.0f) cfg.stream_ph_delta = v;
  }
  if (const char* env = std::getenv("AUTOCTS_STREAM_PH_LAMBDA")) {
    char* end = nullptr;
    const float v = std::strtof(env, &end);
    if (end != env && v > 0.0f) cfg.stream_ph_lambda = v;
  }
  if (const char* env = std::getenv("AUTOCTS_STREAM_ERROR_WINDOW")) {
    int n = std::atoi(env);
    if (n > 0) cfg.stream_error_window = n;
  }
  if (const char* env = std::getenv("AUTOCTS_STREAM_RESEARCH_RETRIES")) {
    // 0 legitimately means "one attempt, no retries".
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n >= 0) cfg.stream_research_retries = static_cast<int>(n);
  }
  if (const char* env = std::getenv("AUTOCTS_STREAM_RESEARCH_BACKOFF")) {
    int n = std::atoi(env);
    if (n > 0) cfg.stream_research_backoff = n;
  }
  if (const char* env = std::getenv("AUTOCTS_STREAM_RESEARCH_DEADLINE")) {
    int n = std::atoi(env);
    if (n > 0) cfg.stream_research_deadline = n;
  }
  if (const char* env = std::getenv("AUTOCTS_STREAM_RESEARCH_DELAY")) {
    // 0 legitimately means "snapshot at the trigger tick".
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n >= 0) cfg.stream_research_delay = static_cast<int>(n);
  }
  cfg.stream_recovery = !DisableFlagSet("AUTOCTS_STREAM_NO_RECOVERY");
  if (const char* env = std::getenv("AUTOCTS_SHARD_WORKERS")) {
    // 0 legitimately means "no sharding", so unparseable input must be told
    // apart from a parsed zero.
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n >= 0) cfg.shard_workers = static_cast<int>(n);
  }
  if (const char* env = std::getenv("AUTOCTS_SHARD_HEARTBEAT_MS")) {
    int n = std::atoi(env);
    if (n > 0) cfg.shard_heartbeat_ms = n;
  }
  if (const char* env = std::getenv("AUTOCTS_SHARD_STEAL_TIMEOUT_MS")) {
    int n = std::atoi(env);
    if (n > 0) cfg.shard_steal_timeout_ms = n;
  }
  if (const char* env = std::getenv("AUTOCTS_SERVE_EMBED_CACHE")) {
    // 0 legitimately disables caching, so unparseable input must be told
    // apart from a parsed zero.
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n >= 0) {
      cfg.serve_embed_cache_entries = static_cast<size_t>(n);
    }
  }
  return cfg;
}

std::string RuntimeConfig::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("num_threads", num_threads);
  w.Field("pool_capacity_bytes", pool_capacity_bytes);
  w.Field("fused_kernels", fused_kernels);
  w.Field("step_plans", step_plans);
  w.Field("guards", guards);
  w.Field("backend", backend.empty() ? "auto" : backend);
  w.Field("comparator_precision",
          ComparatorPrecisionName(comparator_precision));
  w.Field("serve_port", serve_port);
  w.Field("serve_workers", serve_workers);
  w.Field("serve_max_batch", serve_max_batch);
  w.Field("serve_max_delay_us", serve_max_delay_us);
  w.Field("serve_embed_cache_entries", serve_embed_cache_entries);
  w.Field("sample_bank", sample_bank);
  w.Field("bank_madvise", bank_madvise);
  w.Field("bank_verify_on_open", bank_verify_on_open);
  w.Field("stream_warmup", stream_warmup);
  w.Field("stream_ph_delta", stream_ph_delta);
  w.Field("stream_ph_lambda", stream_ph_lambda);
  w.Field("stream_error_window", stream_error_window);
  w.Field("stream_research_retries", stream_research_retries);
  w.Field("stream_research_backoff", stream_research_backoff);
  w.Field("stream_research_deadline", stream_research_deadline);
  w.Field("stream_research_delay", stream_research_delay);
  w.Field("stream_recovery", stream_recovery);
  w.Field("shard_workers", shard_workers);
  w.Field("shard_heartbeat_ms", shard_heartbeat_ms);
  w.Field("shard_steal_timeout_ms", shard_steal_timeout_ms);
  w.EndObject();
  return w.str();
}

const RuntimeConfig& GlobalRuntimeConfig() {
  // Parsed exactly once, on first use; leaked so late static destructors
  // can still read it.
  static const RuntimeConfig* config = new RuntimeConfig(RuntimeConfig::FromEnv());
  return *config;
}

}  // namespace autocts
