#include "common/socketio.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/binio.h"
#include "common/crc32.h"
#include "common/fault.h"

namespace autocts {
namespace {

constexpr size_t kFrameHeaderBytes = sizeof(uint32_t) * 2 + sizeof(uint64_t);

/// Frames are control-plane messages (assignments, heartbeats), not data;
/// anything huge means a corrupted length word, and rejecting it keeps a
/// bit-flipped header from triggering a multi-gigabyte allocation.
constexpr uint64_t kMaxFramePayloadBytes = uint64_t{64} << 20;

/// The sending actor's shard identity for corrupt-frame probes; forked
/// children inherit the parent's value along with any armed fault and
/// overwrite it with their own ordinal on startup.
std::atomic<int64_t> g_frame_fault_address{kAnyAddress};

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

int64_t RemainingMs(std::chrono::steady_clock::time_point deadline,
                    bool has_deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  return left < 0 ? 0 : left;
}

}  // namespace

Status FrameChannel::Send(uint32_t kind, const std::string& payload) {
  if (fd_ < 0) return Status::Error("send on closed channel");
  if (payload.size() > kMaxFramePayloadBytes) {
    return Status::Error("frame payload too large");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendPod(&frame, kind);
  AppendPod(&frame, Crc32(payload.data(), payload.size()));
  AppendPod(&frame, static_cast<uint64_t>(payload.size()));
  frame.append(payload);
  if (AnyFaultArmed() &&
      FaultFires(FaultPoint::kShardMsgCorrupt,
                 g_frame_fault_address.load(std::memory_order_relaxed))) {
    // Flip one bit after the CRC was computed: the receiver sees a checksum
    // mismatch (or, for an empty payload, a kind it cannot trust).
    frame[frame.size() - 1] ^= 0x40;
  }
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + written,
                             frame.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Error(ErrnoMessage("frame send failed"));
    }
    written += static_cast<size_t>(n);
  }
  bytes_sent_ += frame.size();
  return Status::Ok();
}

StatusOr<SocketFrame> FrameChannel::Recv(int timeout_ms) {
  if (fd_ < 0) return Status::Error("recv on closed channel");
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
  std::string buffer;
  uint64_t need = kFrameHeaderBytes;
  bool have_header = false;
  uint32_t kind = 0;
  uint32_t crc = 0;
  while (buffer.size() < need || !have_header) {
    if (have_header && buffer.size() >= need) break;
    struct pollfd pfd{fd_, POLLIN, 0};
    const int64_t wait = RemainingMs(deadline, has_deadline);
    const int ready =
        ::poll(&pfd, 1, wait < 0 ? -1 : static_cast<int>(wait));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Error(ErrnoMessage("frame poll failed"));
    }
    if (ready == 0) return Status::Error("recv timeout on frame channel");
    char chunk[4096];
    const size_t want =
        std::min(static_cast<uint64_t>(sizeof(chunk)), need - buffer.size());
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n == 0) return Status::Error("peer closed frame channel");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error(ErrnoMessage("frame recv failed"));
    }
    buffer.append(chunk, static_cast<size_t>(n));
    bytes_received_ += static_cast<uint64_t>(n);
    if (!have_header && buffer.size() >= kFrameHeaderBytes) {
      FrameReader reader(buffer, 0);
      uint64_t payload_bytes = 0;
      reader.Read(&kind);
      reader.Read(&crc);
      reader.Read(&payload_bytes);
      if (reader.failed() || payload_bytes > kMaxFramePayloadBytes) {
        return Status::Error("corrupt frame header on channel");
      }
      need = kFrameHeaderBytes + payload_bytes;
      have_header = true;
    }
  }
  SocketFrame frame;
  frame.kind = kind;
  frame.payload = buffer.substr(kFrameHeaderBytes);
  if (Crc32(frame.payload.data(), frame.payload.size()) != crc) {
    return Status::Error("frame CRC mismatch on channel");
  }
  return frame;
}

void FrameChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status MakeSocketPair(int fds[2]) {
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    return Status::Error(ErrnoMessage("socketpair failed"));
  }
  return Status::Ok();
}

void SetFrameFaultAddress(int64_t address) {
  g_frame_fault_address.store(address, std::memory_order_relaxed);
}

}  // namespace autocts
