#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>

#include "common/runtime_config.h"

namespace autocts {
namespace {

/// Set while the current thread executes a ParallelFor chunk.
thread_local bool t_in_parallel_region = false;

/// ExecScope-installed pool for the current thread (null = default pool).
thread_local ThreadPool* t_scope_pool = nullptr;

/// Marks a chunk execution; restores the previous state on scope exit so
/// top-level calls on worker threads behave like nested calls.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard() : previous_(t_in_parallel_region) {
    t_in_parallel_region = true;
  }
  ~ParallelRegionGuard() { t_in_parallel_region = previous_; }

 private:
  bool previous_;
};

int ResolveThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

/// All fields are guarded by the owning pool's mu_ — chunks are coarse
/// (at most a few per lane), so per-claim locking costs nothing measurable.
struct ThreadPool::Job {
  int num_chunks = 0;
  int next = 0;       ///< First unclaimed chunk.
  int completed = 0;  ///< Chunks fully executed.
  const std::function<void(int)>* fn = nullptr;
  std::exception_ptr error;
  int error_chunk = std::numeric_limits<int>::max();
  std::condition_variable done;
};

ThreadPool::ThreadPool(int num_threads) {
  int lanes = ResolveThreads(num_threads);
  workers_.reserve(static_cast<size_t>(lanes - 1));
  for (int i = 0; i < lanes - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    wake_.wait(lock, [this] {
      return shutdown_ || (job_ != nullptr && job_->next < job_->num_chunks);
    });
    if (shutdown_) return;
    Job* job = job_;
    while (job_ == job && job->next < job->num_chunks) {
      int chunk = job->next++;
      lock.unlock();
      std::exception_ptr error;
      {
        ParallelRegionGuard region;
        try {
          (*job->fn)(chunk);
        } catch (...) {
          error = std::current_exception();
        }
      }
      lock.lock();
      if (error && chunk < job->error_chunk) {
        job->error = error;
        job->error_chunk = chunk;
      }
      if (++job->completed == job->num_chunks) job->done.notify_all();
    }
  }
}

void ThreadPool::RunChunks(int num_chunks, const std::function<void(int)>& fn) {
  CHECK_GT(num_chunks, 0);
  Job job;
  job.num_chunks = num_chunks;
  job.fn = &fn;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // One bulk job at a time; a second caller queues behind the first.
    wake_.wait(lock, [this] { return job_ == nullptr; });
    job_ = &job;
  }
  wake_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (job.next < job.num_chunks) {
      int chunk = job.next++;
      lock.unlock();
      std::exception_ptr error;
      {
        ParallelRegionGuard region;
        try {
          fn(chunk);
        } catch (...) {
          error = std::current_exception();
        }
      }
      lock.lock();
      if (error && chunk < job.error_chunk) {
        job.error = error;
        job.error_chunk = chunk;
      }
      ++job.completed;
    }
    job.done.wait(lock, [&job] { return job.completed == job.num_chunks; });
    job_ = nullptr;
  }
  // A waiting RunChunks caller (queued above) may need the slot.
  wake_.notify_all();
  if (job.error) std::rethrow_exception(job.error);
}

bool InParallelRegion() { return t_in_parallel_region; }

namespace {

std::unique_ptr<ThreadPool>& DefaultPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& DefaultPoolMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool* DefaultPool() {
  std::lock_guard<std::mutex> lock(DefaultPoolMutex());
  std::unique_ptr<ThreadPool>& pool = DefaultPoolSlot();
  if (pool == nullptr) {
    pool = std::make_unique<ThreadPool>(GlobalRuntimeConfig().num_threads);
  }
  return pool.get();
}

void SetDefaultPoolThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(DefaultPoolMutex());
  DefaultPoolSlot() = std::make_unique<ThreadPool>(num_threads);
}

ThreadPool* CurrentPool() {
  return t_scope_pool != nullptr ? t_scope_pool : DefaultPool();
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  // Nested and single-lane calls run inline: the serial path *is* the
  // parallel path with one chunk, which is what makes num_threads=1
  // byte-identical to the pre-threading code.
  if (t_in_parallel_region || range <= grain) {
    fn(begin, end);
    return;
  }
  ThreadPool* pool = CurrentPool();
  const int lanes = pool->num_threads();
  if (lanes <= 1) {
    fn(begin, end);
    return;
  }
  int64_t chunks = std::min<int64_t>(static_cast<int64_t>(lanes) * 4,
                                     (range + grain - 1) / grain);
  pool->RunChunks(static_cast<int>(chunks), [&](int i) {
    int64_t c0 = begin + range * i / chunks;
    int64_t c1 = begin + range * (i + 1) / chunks;
    if (c0 < c1) fn(c0, c1);
  });
}

namespace {

/// Installed by tensor/buffer_pool.cc at static-init time (function-local
/// atomic so unsynchronized early reads are safe).
std::atomic<PoolStatsProvider>& PoolStatsProviderSlot() {
  static std::atomic<PoolStatsProvider> provider{nullptr};
  return provider;
}

/// Installed by tensor/plan.cc at static-init time.
std::atomic<PlanStatsProvider>& PlanStatsProviderSlot() {
  static std::atomic<PlanStatsProvider> provider{nullptr};
  return provider;
}

}  // namespace

void RegisterPoolStatsProvider(PoolStatsProvider provider) {
  PoolStatsProviderSlot().store(provider, std::memory_order_release);
}

void RegisterPlanStatsProvider(PlanStatsProvider provider) {
  PlanStatsProviderSlot().store(provider, std::memory_order_release);
}

PoolStats ExecContext::pool_stats() const {
  PoolStatsProvider provider =
      PoolStatsProviderSlot().load(std::memory_order_acquire);
  return provider != nullptr ? provider() : PoolStats{};
}

PlanStats ExecContext::plan_stats() const {
  PlanStatsProvider provider =
      PlanStatsProviderSlot().load(std::memory_order_acquire);
  return provider != nullptr ? provider() : PlanStats{};
}

std::vector<uint64_t> ForkSeeds(Rng* rng, int n) {
  CHECK_GE(n, 0);
  std::vector<uint64_t> seeds(static_cast<size_t>(n));
  for (uint64_t& s : seeds) s = rng->Fork();
  return seeds;
}

ExecScope::ExecScope(const ExecContext& ctx) : previous_(t_scope_pool) {
  t_scope_pool = ctx.effective_pool();
}

ExecScope::~ExecScope() { t_scope_pool = previous_; }

}  // namespace autocts
