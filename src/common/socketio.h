#ifndef REPRO_COMMON_SOCKETIO_H_
#define REPRO_COMMON_SOCKETIO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace autocts {

/// One message on a FrameChannel: an application-defined kind tag plus an
/// opaque payload (built and parsed with the common/binio.h helpers).
struct SocketFrame {
  uint32_t kind = 0;
  std::string payload;
};

/// A length-framed, CRC-checked message channel over one end of a connected
/// AF_UNIX/SOCK_STREAM socket. Wire layout per frame (native endianness,
/// host-local like every other binary artifact in this repo):
///
///   u32 kind | u32 crc32(payload) | u64 payload_bytes | payload bytes
///
/// The CRC covers the payload only; a corrupted frame surfaces as an error
/// Status from Recv, and the caller is expected to treat the peer as dead —
/// stream framing cannot resynchronize after a bad length word, so the only
/// safe recovery is dropping the connection (the shard coordinator then
/// reclaims the worker's shards).
///
/// Sends probe FaultPoint::kShardMsgCorrupt addressed by this process's
/// frame fault address (see SetFrameFaultAddress); when the fault fires
/// one payload byte is flipped after the CRC is computed, modelling
/// in-flight corruption. The armed fires budget bounds how many frames the
/// addressed actor corrupts.
class FrameChannel {
 public:
  /// Takes ownership of `fd` (closed on destruction).
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel() { Close(); }
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Writes one frame, retrying short writes. Errors mean the peer is gone
  /// (EPIPE et al.) — the channel is unusable afterwards.
  Status Send(uint32_t kind, const std::string& payload);

  /// Reads one full frame. `timeout_ms` bounds the total wait (-1 blocks
  /// forever); hitting it mid-frame is an error ("recv timeout"), as is a
  /// clean peer close ("peer closed") or a CRC mismatch.
  StatusOr<SocketFrame> Recv(int timeout_ms);

  /// Closes the fd early (the peer sees EOF). Idempotent.
  void Close();

  int fd() const { return fd_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  int fd_ = -1;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

/// Creates a connected AF_UNIX/SOCK_STREAM pair (CLOEXEC on both ends).
/// The shard layer makes one per worker before forking: the parent keeps
/// fds[0], the child keeps fds[1], each closes the other — no filesystem
/// socket path to create, collide on, or leak.
Status MakeSocketPair(int fds[2]);

/// Installs this process's identity for kShardMsgCorrupt probes: shard
/// workers set their spawn ordinal, the coordinator sets
/// kShardCoordinatorAddress. Arming the fault at that address corrupts
/// frames sent by exactly that actor. Default: kAnyAddress, which only an
/// any-address arm matches.
void SetFrameFaultAddress(int64_t address);

}  // namespace autocts

#endif  // REPRO_COMMON_SOCKETIO_H_
