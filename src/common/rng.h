#ifndef REPRO_COMMON_RNG_H_
#define REPRO_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace autocts {

/// Deterministic random source threaded explicitly through every stochastic
/// component (no global RNG state anywhere in the library). Same seed, same
/// platform, same results.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal (mean 0, stddev 1) scaled/shifted.
  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int Int(int lo, int hi) {
    CHECK_LE(lo, hi);
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    CHECK(!items.empty());
    return items[static_cast<size_t>(Int(0, static_cast<int>(items.size()) - 1))];
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  /// A derived seed; lets one top-level seed fan out to independent streams.
  uint64_t Fork() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace autocts

#endif  // REPRO_COMMON_RNG_H_
