#ifndef REPRO_COMMON_MMAP_FILE_H_
#define REPRO_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace autocts {

/// RAII read-only memory mapping of a whole file (PROT_READ, MAP_SHARED).
///
/// The mapping is immutable from this process's point of view: writes
/// through the mapped range fault, which is exactly the contract borrowed
/// tensors need (see FloatStorage). Handles are created as shared_ptr so a
/// consumer that outlives the opener — a Tensor borrowing a section, a
/// StepPlan that pinned one — keeps the pages mapped via its keepalive.
///
/// Because the mapping is MAP_SHARED on a read-only file, any number of
/// processes opening the same file share one set of physical pages; pages
/// are evictable page cache, so resident size is working-set-sized rather
/// than file-sized.
class MmapFile {
 public:
  /// Maps `path` read-only. An empty file maps to a null, zero-length
  /// region (a valid handle). Missing or unmappable paths are errors.
  static StatusOr<std::shared_ptr<MmapFile>> OpenReadOnly(
      const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// madvise prefetch hints for out-of-core streaming. Offsets are clamped
  /// to the mapping and rounded down to page boundaries; hints are
  /// best-effort (errors ignored — they only cost prefetch, not
  /// correctness).
  void AdviseSequential(size_t offset, size_t length) const;
  void AdviseWillNeed(size_t offset, size_t length) const;

 private:
  MmapFile() = default;

  std::string path_;
  char* data_ = nullptr;
  size_t size_ = 0;
};

/// Append-side companion of MmapFile: an fd held open on a growing file,
/// with all-or-nothing appends. Every append first consults the injected
/// IO-fault probe (FaultFiresIoWrite) and, on a short or failed write,
/// truncates the file back to its pre-append length — so a failed append
/// never leaves a partial record behind (readers see either the previous
/// or the next complete frame sequence).
class AppendFile {
 public:
  /// Opens (creating if absent) `path` for appending; the write position
  /// starts at the current end of file. With `exclusive` set the opener
  /// takes a non-blocking flock(LOCK_EX) on the fd: a second process (or a
  /// second open in this process — locks are per open-file-description)
  /// gets a clear Status instead of the chance to interleave appends. The
  /// lock lives exactly as long as the fd, so a killed process releases it
  /// implicitly.
  static StatusOr<std::shared_ptr<AppendFile>> Open(const std::string& path,
                                                    bool exclusive = false);

  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Appends all of `size` bytes or none of them.
  Status Append(const void* data, size_t size);

  /// Drops everything at and past `size` (torn-tail recovery on open).
  Status Truncate(uint64_t size);

  /// Current end-of-file offset (the next append's position).
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  AppendFile() = default;

  std::string path_;
  int fd_ = -1;
  uint64_t size_ = 0;
};

}  // namespace autocts

#endif  // REPRO_COMMON_MMAP_FILE_H_
