#ifndef REPRO_COMMON_RUNTIME_STATS_H_
#define REPRO_COMMON_RUNTIME_STATS_H_

#include <cstdint>
#include <string>

#include "common/guard.h"
#include "common/parallel.h"

namespace autocts {

/// Counters of the runtime-dispatched kernel backend layer (see
/// tensor/backend.h). `active` names the backend serving dispatched kernels
/// at snapshot time; the call counters are process-wide totals across all
/// backends that ran (switching backends does not reset them).
struct BackendStats {
  std::string active;             ///< "scalar", "avx2", "avx512", "neon".
  uint64_t gemm_micro_calls = 0;  ///< Blocked-GEMM dispatches (micro path).
  uint64_t gemm_small_calls = 0;  ///< Small-problem GEMM dispatches.
  uint64_t qgemm_s8_calls = 0;    ///< int8 quantized GEMM dispatches.
  uint64_t qgemm_bf16_calls = 0;  ///< bf16-weight GEMM dispatches.
};

/// Hook tensor/backend.cc installs so RuntimeStats::Snapshot() works
/// without a common -> tensor dependency (same pattern as the pool and plan
/// providers in common/parallel.h).
using BackendStatsProvider = BackendStats (*)();
void RegisterBackendStatsProvider(BackendStatsProvider provider);

/// Counters of the recommendation serving layer (src/serve). All zeros when
/// no RecommendationService is live in the process.
struct ServeStats {
  uint64_t requests = 0;          ///< Requests admitted to the queue.
  uint64_t rejected = 0;          ///< TrySubmit refusals (queue full/stopping).
  uint64_t batches = 0;           ///< Micro-batches processed by workers.
  uint64_t batched_requests = 0;  ///< Requests served through those batches.
  uint64_t queue_highwater = 0;   ///< Deepest queue observed since Start().
  uint64_t embed_hits = 0;        ///< Task-embedding cache hits.
  uint64_t embed_misses = 0;      ///< Task-embedding cache misses.
  uint64_t embed_entries = 0;     ///< Resident task embeddings right now.
  uint64_t embed_evictions = 0;   ///< Embeddings dropped by LRU capacity.
  uint64_t duel_rows = 0;           ///< Comparator duels requested (pre-dedup).
  uint64_t duel_rows_evaluated = 0; ///< Duel rows actually run (post-dedup).
  uint64_t models_trained = 0;    ///< Forecast models trained on demand.
  uint64_t forecasts = 0;         ///< Forecasts served (trained or cached).
  uint64_t stream_sessions = 0;   ///< Stream sessions opened since Start().
  uint64_t stream_ticks = 0;      ///< Observations pushed across sessions.
  uint64_t stream_drifts = 0;     ///< Drift-detector triggers.
  uint64_t stream_swaps = 0;      ///< Model hot-swaps installed.
  uint64_t stream_research_failures = 0;  ///< Re-search attempts that failed.
  uint64_t stream_swap_stalls = 0;        ///< Ready models discarded as stale.

  /// Requests coalesced per micro-batch, on average.
  double mean_batch_size() const {
    return batches == 0 ? 0.0 : static_cast<double>(batched_requests) /
                                    static_cast<double>(batches);
  }
  /// Fraction of embedding lookups served from the cache.
  double embed_hit_rate() const {
    const uint64_t total = embed_hits + embed_misses;
    return total == 0 ? 0.0 : static_cast<double>(embed_hits) /
                                  static_cast<double>(total);
  }
};

/// Hook serve/service.cc installs so RuntimeStats::Snapshot() works without
/// a common -> serve dependency (the live RecommendationService registers
/// itself; the last one started wins).
using ServeStatsProvider = ServeStats (*)();
void RegisterServeStatsProvider(ServeStatsProvider provider);

/// Counters of the sharded-collection coordinator (src/shard). All zeros
/// when no sharded run has happened in the process; totals accumulate
/// across runs. Only the coordinator process ever has nonzero values —
/// worker processes die before anyone snapshots them.
struct ShardStats {
  uint64_t runs = 0;              ///< Sharded collection runs coordinated.
  uint64_t shards_total = 0;      ///< Shards across all runs (= tasks).
  uint64_t shards_done = 0;       ///< Shards complete (live workers + resumed).
  uint64_t shards_resumed = 0;    ///< Of shards_done: already on disk at start.
  uint64_t shards_stolen = 0;     ///< Reassignments from slow/live workers.
  uint64_t shards_reclaimed = 0;  ///< Reassignments from dead workers.
  uint64_t worker_restarts = 0;   ///< Replacement workers forked after deaths.
  uint64_t heartbeats = 0;        ///< Progress frames received.
  uint64_t corrupt_frames = 0;    ///< Frames dropped for CRC/framing errors.
  uint64_t bytes_in = 0;          ///< Socket bytes received by the coordinator.
  uint64_t bytes_out = 0;         ///< Socket bytes sent by the coordinator.
};

/// Hook shard/shard.cc installs so RuntimeStats::Snapshot() works without a
/// common -> shard dependency (same pattern as the backend provider).
using ShardStatsProvider = ShardStats (*)();
void RegisterShardStatsProvider(ShardStatsProvider provider);

/// One unified snapshot of every process-wide runtime counter family:
/// buffer pool, step plans, guardrails, and the kernel-backend dispatch
/// layer. This is THE stats surface — benches, stats dumps, and the CLI all
/// serialize this struct through its single JSON serializer instead of
/// hand-formatting their own field subsets.
struct RuntimeStats {
  PoolStats pool;
  PlanStats plan;
  GuardStats guard;
  BackendStats backend;
  ServeStats serve;
  ShardStats shard;

  /// Gathers all six counter families (families whose subsystem is not
  /// linked in stay at their zero defaults).
  static RuntimeStats Snapshot();

  /// Nested JSON object: {"pool": {...}, "plan": {...}, "guard": {...},
  /// "backend": {...}, "serve": {...}, "shard": {...}} via the shared
  /// JsonWriter.
  std::string ToJson() const;
};

}  // namespace autocts

#endif  // REPRO_COMMON_RUNTIME_STATS_H_
