#ifndef REPRO_COMMON_RUNTIME_STATS_H_
#define REPRO_COMMON_RUNTIME_STATS_H_

#include <cstdint>
#include <string>

#include "common/guard.h"
#include "common/parallel.h"

namespace autocts {

/// Counters of the runtime-dispatched kernel backend layer (see
/// tensor/backend.h). `active` names the backend serving dispatched kernels
/// at snapshot time; the call counters are process-wide totals across all
/// backends that ran (switching backends does not reset them).
struct BackendStats {
  std::string active;             ///< "scalar", "avx2", "avx512", "neon".
  uint64_t gemm_micro_calls = 0;  ///< Blocked-GEMM dispatches (micro path).
  uint64_t gemm_small_calls = 0;  ///< Small-problem GEMM dispatches.
  uint64_t qgemm_s8_calls = 0;    ///< int8 quantized GEMM dispatches.
  uint64_t qgemm_bf16_calls = 0;  ///< bf16-weight GEMM dispatches.
};

/// Hook tensor/backend.cc installs so RuntimeStats::Snapshot() works
/// without a common -> tensor dependency (same pattern as the pool and plan
/// providers in common/parallel.h).
using BackendStatsProvider = BackendStats (*)();
void RegisterBackendStatsProvider(BackendStatsProvider provider);

/// One unified snapshot of every process-wide runtime counter family:
/// buffer pool, step plans, guardrails, and the kernel-backend dispatch
/// layer. This is THE stats surface — benches, stats dumps, and the CLI all
/// serialize this struct through its single JSON serializer instead of
/// hand-formatting their own field subsets.
struct RuntimeStats {
  PoolStats pool;
  PlanStats plan;
  GuardStats guard;
  BackendStats backend;

  /// Gathers all four counter families (families whose subsystem is not
  /// linked in stay at their zero defaults).
  static RuntimeStats Snapshot();

  /// Nested JSON object: {"pool": {...}, "plan": {...}, "guard": {...},
  /// "backend": {...}} via the shared JsonWriter.
  std::string ToJson() const;
};

}  // namespace autocts

#endif  // REPRO_COMMON_RUNTIME_STATS_H_
