#ifndef REPRO_COMMON_SUBPROCESS_H_
#define REPRO_COMMON_SUBPROCESS_H_

#include <sys/types.h>

#include <functional>

#include "common/status.h"

namespace autocts {

/// fork()-based child processes for the sharded execution layer (MPI-free:
/// plain fork, no exec, so children inherit the loaded model code, the
/// encoder parameters, and any armed fault state by construction).
///
/// The child runs `body()` and _exit()s with its return value — no atexit
/// handlers, no static destructors, no test-framework teardown run twice.
/// The child must not touch the parent's thread pools (threads do not
/// survive fork); shard workers build their own pools under an ExecScope.
StatusOr<pid_t> SpawnChild(const std::function<int()>& body);

/// Non-blocking reap. Returns true when the child has exited (or was
/// killed), with `*exit_code` set to the exit status, or 128 + signal for a
/// signal death. Returns false while the child still runs.
bool TryReapChild(pid_t pid, int* exit_code);

/// Blocking reap; same exit-code convention. Returns -1 when `pid` is not
/// a live child of this process.
int ReapChild(pid_t pid);

/// SIGKILL followed by a blocking reap — the unwind path when a coordinator
/// dies with workers still alive. Safe on already-dead children.
void KillChild(pid_t pid);

}  // namespace autocts

#endif  // REPRO_COMMON_SUBPROCESS_H_
