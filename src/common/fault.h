#ifndef REPRO_COMMON_FAULT_H_
#define REPRO_COMMON_FAULT_H_

#include <cstdint>
#include <exception>
#include <limits>

namespace autocts {

/// Deterministic fault-injection harness.
///
/// Production code declares *injection points* — named places where a fault
/// could strike (a loss turning NaN, a checkpoint write failing, the process
/// dying). Tests arm a point at a specific *address* (sample index, write
/// ordinal, stage number); when execution reaches that point with that
/// address, the fault fires. Addresses derive from the pipeline's own
/// deterministic counters, never from wall clock or scheduling, so an
/// injected fault reproduces bit-exactly across runs and thread counts.
///
/// When nothing is armed every probe is a single relaxed atomic load of a
/// process-wide counter — cheap enough to leave the points compiled into
/// release builds permanently.
enum class FaultPoint : int {
  /// The training loss observed by the trainer's guardrail becomes NaN.
  /// Addressed by the ambient FaultAddressScope (the sample's pending index
  /// during CollectSamples; -1 outside any scope).
  kNanLoss = 0,
  /// AtomicWriteFile fails with an IO error Status. Addressed by the
  /// process-wide write ordinal (0 = first atomic write after arming).
  kIoWriteFail = 1,
  /// Simulated SIGKILL immediately before a sample's training starts.
  /// Addressed by the sample's pending index; throws InjectedKill.
  kKillBeforeSample = 2,
  /// Simulated SIGKILL at a pipeline stage boundary. Addressed by the
  /// PipelineCheckpoint stage number about to start; throws InjectedKill.
  kKillBeforeStage = 3,
  /// The streaming engine's drift-triggered zero-shot re-search fails with
  /// an error Status instead of producing a replacement model. Addressed by
  /// the engine's re-search ordinal (0 = first re-search attempt after
  /// arming); the engine keeps serving the old model and counts the
  /// failure.
  kStreamResearchFail = 4,
  /// A completed re-search result stalls past the engine's swap deadline:
  /// the ready model is discarded as too stale to install. Addressed by the
  /// engine's swap ordinal. Exercises the "never serve a half-swapped
  /// model" guarantee — the old model serves every tick until a full
  /// replacement is installed atomically.
  kStreamSwapStall = 5,
  /// A sharded-collection process dies with SIGKILL semantics. Addressed by
  /// the worker's spawn ordinal (0 = first worker forked): the worker probes
  /// before committing each sample and _exit(137)s when it fires, leaving
  /// its shard bank exactly as a real kill would. Address
  /// `kShardCoordinatorAddress` is probed by the coordinator after each
  /// shard completes and throws InjectedKill there instead, modelling a
  /// coordinator crash the next run resumes from.
  kShardWorkerKill = 6,
  /// A frame on the coordinator/worker socket is corrupted in flight: the
  /// sender flips one payload byte after computing the CRC, so the receiver
  /// sees a checksum mismatch and treats the peer as dead. Addressed by the
  /// sending actor's shard identity — a worker's spawn ordinal or
  /// kShardCoordinatorAddress (see SetFrameFaultAddress in
  /// common/socketio.h); the fires budget bounds how many frames that
  /// actor corrupts. Armed state is inherited across fork.
  kShardMsgCorrupt = 7,
};

inline constexpr int kNumFaultPoints = 8;

/// The pseudo-ordinal that addresses the coordinator process at
/// kShardWorkerKill probes (workers use their real spawn ordinals >= 0;
/// kAnyAddress = -1 is taken).
inline constexpr int64_t kShardCoordinatorAddress = -2;

/// Thrown by the kill points to model a process death the enclosing test
/// observes without actually losing the process. Everything written to disk
/// before the throw is exactly what a real SIGKILL would have left behind.
class InjectedKill : public std::exception {
 public:
  explicit InjectedKill(FaultPoint point, int64_t address)
      : point_(point), address_(address) {}
  const char* what() const noexcept override {
    return "injected kill (fault harness)";
  }
  FaultPoint point() const { return point_; }
  int64_t address() const { return address_; }

 private:
  FaultPoint point_;
  int64_t address_;
};

/// Arms `point` to fire when probed with `address` (`kAnyAddress` matches
/// every probe). The fault fires at most `fires` times, then disarms itself
/// — `fires = 1` models a transient fault (e.g. a NaN whose lr-halved retry
/// succeeds), the default models a persistent one. Arming is test-only and
/// not thread-safe against concurrent Arm/Disarm; probing is thread-safe.
inline constexpr int64_t kAnyAddress = -1;
void ArmFault(FaultPoint point, int64_t address,
              int fires = std::numeric_limits<int>::max());

/// Disarms every point and resets the kIoWriteFail write ordinal.
void DisarmAllFaults();

/// True when any point is armed — the fast-path gate every probe checks
/// first (relaxed atomic load; no synchronization cost when disarmed).
bool AnyFaultArmed();

/// Probes `point` with an explicit address. Returns true — and consumes one
/// armed fire — when the fault strikes. Never returns true when disarmed.
bool FaultFires(FaultPoint point, int64_t address);

/// Probes a kill point: throws InjectedKill when the fault strikes.
void MaybeInjectKill(FaultPoint point, int64_t address);

/// Probes kNanLoss at the ambient scope address (see FaultAddressScope).
bool FaultFiresNanLoss();

/// Probes kIoWriteFail at the next write ordinal (post-incremented per
/// probe, so "fail the 3rd checkpoint write" is address 2).
bool FaultFiresIoWrite();

/// Installs a fault address for the current thread (RAII): code below the
/// scope probes kNanLoss without knowing which pipeline item it serves.
/// CollectSamples scopes each sample's training under its pending index.
class FaultAddressScope {
 public:
  explicit FaultAddressScope(int64_t address);
  ~FaultAddressScope();

  FaultAddressScope(const FaultAddressScope&) = delete;
  FaultAddressScope& operator=(const FaultAddressScope&) = delete;

 private:
  int64_t previous_;
};

/// The current thread's ambient fault address (-1 outside any scope).
int64_t CurrentFaultAddress();

}  // namespace autocts

#endif  // REPRO_COMMON_FAULT_H_
