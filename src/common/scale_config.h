#ifndef REPRO_COMMON_SCALE_CONFIG_H_
#define REPRO_COMMON_SCALE_CONFIG_H_

namespace autocts {

/// Central scale knobs that map the paper's GPU-scale experiment sizes onto
/// CPU-minutes. Every benchmark reads one of these presets so the whole
/// harness can be grown or shrunk coherently. The *ratios* between settings
/// (e.g., the K_s sweep of Table 13) follow the paper; absolute magnitudes
/// are divided by a common factor.
struct ScaleConfig {
  /// Number of sensors per synthetic dataset (paper: 156–325).
  int num_sensors = 12;
  /// Number of time steps per synthetic dataset (paper: 2,016–52,116).
  int num_steps = 720;
  /// Hidden-dimension divisor applied to the paper's {32,48,64} grid.
  int hidden_divisor = 8;
  /// Epochs for fully training a selected forecasting model.
  int train_epochs = 5;
  /// Early-validation epochs k when labeling comparator samples (paper: 5).
  int early_validation_epochs = 2;
  /// Source tasks used to pre-train T-AHC (paper: 200).
  int num_source_tasks = 8;
  /// Shared + random samples per task, i.e., L (paper: ~25 per side).
  int samples_per_task = 5;
  /// Candidates ranked during zero-shot search, i.e., K_s (paper: 300,000;
  /// the bench preset divides by 1,000).
  int ranking_pool = 300;
  /// Evolutionary population size k_p (paper: 10).
  int population = 8;
  /// Top-K arch-hypers trained at the end of a search (paper: 3).
  int top_k = 2;
  /// Mini-batch size for model training.
  int batch_size = 8;
  /// Windows drawn per dataset when embedding a task.
  int windows_per_task = 16;

  /// Default preset: used by the benchmark binaries. Minutes per bench.
  static ScaleConfig Bench() { return ScaleConfig{}; }

  /// Tiny preset: used by unit/integration tests. Seconds per test.
  static ScaleConfig Test() {
    ScaleConfig c;
    c.num_sensors = 4;
    c.num_steps = 160;
    c.hidden_divisor = 8;
    c.train_epochs = 2;
    c.early_validation_epochs = 1;
    c.num_source_tasks = 2;
    c.samples_per_task = 2;
    c.ranking_pool = 24;
    c.population = 4;
    c.top_k = 1;
    c.batch_size = 4;
    c.windows_per_task = 4;
    return c;
  }
};

}  // namespace autocts

#endif  // REPRO_COMMON_SCALE_CONFIG_H_
