#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault.h"

namespace autocts {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

StatusOr<std::shared_ptr<MmapFile>> MmapFile::OpenReadOnly(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::Error(Errno("cannot open", path));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status s = Status::Error(Errno("cannot stat", path));
    ::close(fd);
    return s;
  }
  auto file = std::shared_ptr<MmapFile>(new MmapFile());
  file->path_ = path;
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ > 0) {
    void* addr = ::mmap(nullptr, file->size_, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      Status s = Status::Error(Errno("cannot mmap", path));
      ::close(fd);
      return s;
    }
    file->data_ = static_cast<char*>(addr);
  }
  // The mapping outlives the descriptor; closing early keeps fd pressure
  // independent of how many banks a process has open.
  ::close(fd);
  return file;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

namespace {

/// Clamps [offset, offset+length) to [0, size) and rounds the start down
/// to a page boundary (madvise requires page-aligned addresses).
bool ClampToPages(const char* base, size_t size, size_t offset, size_t length,
                  void** addr, size_t* len) {
  if (base == nullptr || offset >= size || length == 0) return false;
  length = std::min(length, size - offset);
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t start = offset & ~(page - 1);
  *addr = const_cast<char*>(base) + start;
  *len = length + (offset - start);
  return true;
}

}  // namespace

void MmapFile::AdviseSequential(size_t offset, size_t length) const {
  void* addr = nullptr;
  size_t len = 0;
  if (ClampToPages(data_, size_, offset, length, &addr, &len)) {
    (void)::madvise(addr, len, MADV_SEQUENTIAL);
  }
}

void MmapFile::AdviseWillNeed(size_t offset, size_t length) const {
  void* addr = nullptr;
  size_t len = 0;
  if (ClampToPages(data_, size_, offset, length, &addr, &len)) {
    (void)::madvise(addr, len, MADV_WILLNEED);
  }
}

StatusOr<std::shared_ptr<AppendFile>> AppendFile::Open(
    const std::string& path, bool exclusive) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Status::Error(Errno("cannot open", path));
  if (exclusive && ::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    Status s = (errno == EWOULDBLOCK || errno == EAGAIN)
                   ? Status::Error("another process holds the append lock on " +
                                   path)
                   : Status::Error(Errno("cannot lock", path));
    ::close(fd);
    return s;
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    Status s = Status::Error(Errno("cannot seek", path));
    ::close(fd);
    return s;
  }
  auto file = std::shared_ptr<AppendFile>(new AppendFile());
  file->path_ = path;
  file->fd_ = fd;
  file->size_ = static_cast<uint64_t>(end);
  return file;
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Append(const void* data, size_t size) {
  // The injected-fault probe fires before any byte moves, mirroring
  // AtomicWriteFile: a "failed" append is indistinguishable from a full
  // disk and must leave the file exactly as it was.
  if (FaultFiresIoWrite()) {
    return Status::Error("injected IO failure appending to " + path_);
  }
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd_, p + written, size - written);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Roll back the partial tail so no torn record survives the failure.
      (void)::ftruncate(fd_, static_cast<off_t>(size_));
      (void)::lseek(fd_, static_cast<off_t>(size_), SEEK_SET);
      return Status::Error(Errno("append failed for", path_));
    }
    written += static_cast<size_t>(n);
  }
  size_ += size;
  return Status::Ok();
}

Status AppendFile::Truncate(uint64_t size) {
  if (size >= size_) return Status::Ok();
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::Error(Errno("cannot truncate", path_));
  }
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return Status::Error(Errno("cannot seek", path_));
  }
  size_ = size;
  return Status::Ok();
}

}  // namespace autocts
