#ifndef REPRO_COMMON_STATUS_H_
#define REPRO_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace autocts {

/// Lightweight error signal for operations whose failure is an expected
/// outcome (parsing, validation of externally supplied specs). Programmer
/// errors use CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status carrying a human-readable message.
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Holds either a value or an error Status, mirroring absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: the common, successful path.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. CHECK-fails if the status is OK (an OK
  /// StatusOr must carry a value).
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    CHECK(!status_.ok()) << "OK status requires a value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; CHECK-fails if this holds an error.
  const T& value() const& {
    CHECK(ok()) << status_.message();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << status_.message();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << status_.message();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace autocts

#endif  // REPRO_COMMON_STATUS_H_
