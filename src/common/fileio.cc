#include "common/fileio.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fault.h"

namespace autocts {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Error("read failed for " + path);
  return std::move(buffer).str();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  if (FaultFiresIoWrite()) {
    return Status::Error("injected IO failure writing " + path);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Error("cannot open " + tmp + " for writing");
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Error("write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

}  // namespace autocts
