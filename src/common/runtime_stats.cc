#include "common/runtime_stats.h"

#include <atomic>

#include "common/jsonio.h"

namespace autocts {
namespace {

std::atomic<BackendStatsProvider> g_backend_provider{nullptr};
std::atomic<ServeStatsProvider> g_serve_provider{nullptr};
std::atomic<ShardStatsProvider> g_shard_provider{nullptr};

}  // namespace

void RegisterBackendStatsProvider(BackendStatsProvider provider) {
  g_backend_provider.store(provider, std::memory_order_release);
}

void RegisterServeStatsProvider(ServeStatsProvider provider) {
  g_serve_provider.store(provider, std::memory_order_release);
}

void RegisterShardStatsProvider(ShardStatsProvider provider) {
  g_shard_provider.store(provider, std::memory_order_release);
}

RuntimeStats RuntimeStats::Snapshot() {
  RuntimeStats s;
  ExecContext ctx;
  s.pool = ctx.pool_stats();
  s.plan = ctx.plan_stats();
  s.guard = CurrentGuardStats();
  if (BackendStatsProvider p =
          g_backend_provider.load(std::memory_order_acquire)) {
    s.backend = p();
  }
  if (ServeStatsProvider p = g_serve_provider.load(std::memory_order_acquire)) {
    s.serve = p();
  }
  if (ShardStatsProvider p = g_shard_provider.load(std::memory_order_acquire)) {
    s.shard = p();
  }
  return s;
}

std::string RuntimeStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("pool");
  w.BeginObject();
  w.Field("hits", pool.hits);
  w.Field("misses", pool.misses);
  w.Field("releases", pool.releases);
  w.Field("dropped", pool.dropped);
  w.Field("bypassed", pool.bypassed);
  w.Field("bytes_pooled", pool.bytes_pooled);
  w.Field("hit_rate", pool.hit_rate());
  w.EndObject();
  w.Key("plan");
  w.BeginObject();
  w.Field("captures", plan.captures);
  w.Field("replays", plan.replays);
  w.Field("invalidations", plan.invalidations);
  w.Field("poisoned", plan.poisoned);
  w.Field("arena_bytes", plan.arena_bytes);
  w.Field("pinned_bytes", plan.pinned_bytes);
  w.EndObject();
  w.Key("guard");
  w.BeginObject();
  w.Field("finite_checks", guard.finite_checks);
  w.Field("nonfinite_detected", guard.nonfinite_detected);
  w.EndObject();
  w.Key("backend");
  w.BeginObject();
  w.Field("active", backend.active.empty() ? "unlinked" : backend.active);
  w.Field("gemm_micro_calls", backend.gemm_micro_calls);
  w.Field("gemm_small_calls", backend.gemm_small_calls);
  w.Field("qgemm_s8_calls", backend.qgemm_s8_calls);
  w.Field("qgemm_bf16_calls", backend.qgemm_bf16_calls);
  w.EndObject();
  w.Key("serve");
  w.BeginObject();
  w.Field("requests", serve.requests);
  w.Field("rejected", serve.rejected);
  w.Field("batches", serve.batches);
  w.Field("batched_requests", serve.batched_requests);
  w.Field("mean_batch_size", serve.mean_batch_size());
  w.Field("queue_highwater", serve.queue_highwater);
  w.Field("embed_hits", serve.embed_hits);
  w.Field("embed_misses", serve.embed_misses);
  w.Field("embed_hit_rate", serve.embed_hit_rate());
  w.Field("embed_entries", serve.embed_entries);
  w.Field("embed_evictions", serve.embed_evictions);
  w.Field("duel_rows", serve.duel_rows);
  w.Field("duel_rows_evaluated", serve.duel_rows_evaluated);
  w.Field("models_trained", serve.models_trained);
  w.Field("forecasts", serve.forecasts);
  w.Field("stream_sessions", serve.stream_sessions);
  w.Field("stream_ticks", serve.stream_ticks);
  w.Field("stream_drifts", serve.stream_drifts);
  w.Field("stream_swaps", serve.stream_swaps);
  w.Field("stream_research_failures", serve.stream_research_failures);
  w.Field("stream_swap_stalls", serve.stream_swap_stalls);
  w.EndObject();
  w.Key("shard");
  w.BeginObject();
  w.Field("runs", shard.runs);
  w.Field("shards_total", shard.shards_total);
  w.Field("shards_done", shard.shards_done);
  w.Field("shards_resumed", shard.shards_resumed);
  w.Field("shards_stolen", shard.shards_stolen);
  w.Field("shards_reclaimed", shard.shards_reclaimed);
  w.Field("worker_restarts", shard.worker_restarts);
  w.Field("heartbeats", shard.heartbeats);
  w.Field("corrupt_frames", shard.corrupt_frames);
  w.Field("bytes_in", shard.bytes_in);
  w.Field("bytes_out", shard.bytes_out);
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace autocts
