#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace autocts {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    out << " |\n";
  };
  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::Num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string TextTable::MeanStd(double mean, double std, int precision) {
  return Num(mean, precision) + "±" + Num(std, precision);
}

}  // namespace autocts
