#ifndef REPRO_COMMON_JSONIO_H_
#define REPRO_COMMON_JSONIO_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace autocts {

/// Minimal ordered JSON writer — the one serializer behind RuntimeConfig,
/// the RuntimeStats snapshot, and the bench report files, so every JSON
/// artifact this repo emits formats numbers and escapes strings the same
/// way instead of each call site hand-concatenating its own fields.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Field("op", "matmul");
///   w.Field("gflops", 12.5);
///   w.Key("pool"); w.BeginObject(); ... w.EndObject();
///   w.EndObject();
///   std::string json = w.str();
///
/// Commas are inserted automatically; keys must be plain ASCII.
class JsonWriter {
 public:
  void BeginObject() { Sep(); out_ << '{'; first_ = true; }
  void EndObject() { out_ << '}'; first_ = false; }
  void BeginArray() { Sep(); out_ << '['; first_ = true; }
  void EndArray() { out_ << ']'; first_ = false; }

  /// Emits `"key": ` and leaves the writer expecting a value.
  void Key(const std::string& key) {
    Sep();
    Escaped(key);
    out_ << ": ";
    first_ = true;  // The upcoming value must not be comma-prefixed.
  }

  /// Emits pre-serialized JSON verbatim — for embedding the output of
  /// another serializer (e.g. RuntimeConfig::ToJson) as a nested value.
  void Raw(const std::string& json) { Sep(); out_ << json; }

  void Value(const std::string& v) { Sep(); Escaped(v); }
  void Value(const char* v) { Value(std::string(v)); }
  void Value(bool v) { Sep(); out_ << (v ? "true" : "false"); }
  void Value(double v) { Sep(); out_ << v; }
  void Value(int v) { Sep(); out_ << v; }
  void Value(int64_t v) { Sep(); out_ << v; }
  void Value(uint64_t v) { Sep(); out_ << v; }

  template <typename T>
  void Field(const std::string& key, const T& v) {
    Key(key);
    Value(v);
  }

  std::string str() const { return out_.str(); }

 private:
  void Sep() {
    if (!first_) out_ << ", ";
    first_ = false;
  }
  void Escaped(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        default: out_ << c;
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  bool first_ = true;
};

}  // namespace autocts

#endif  // REPRO_COMMON_JSONIO_H_
