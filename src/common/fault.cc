#include "common/fault.h"

#include <atomic>
#include <mutex>

namespace autocts {
namespace {

struct ArmedFault {
  bool armed = false;
  int64_t address = kAnyAddress;
  int fires_left = 0;
};

/// Number of armed points — the lock-free gate. The mutex below guards the
/// slow path only; probes that find the counter at zero never take it.
std::atomic<int> g_armed_count{0};
std::mutex g_mu;
ArmedFault g_faults[kNumFaultPoints];
/// kIoWriteFail ordinal; reset by DisarmAllFaults so each test counts its
/// own writes from zero.
std::atomic<int64_t> g_write_ordinal{0};

thread_local int64_t t_fault_address = kAnyAddress;

}  // namespace

void ArmFault(FaultPoint point, int64_t address, int fires) {
  std::lock_guard<std::mutex> lock(g_mu);
  ArmedFault& f = g_faults[static_cast<int>(point)];
  if (!f.armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  f.armed = true;
  f.address = address;
  f.fires_left = fires;
}

void DisarmAllFaults() {
  std::lock_guard<std::mutex> lock(g_mu);
  for (ArmedFault& f : g_faults) f = ArmedFault{};
  g_armed_count.store(0, std::memory_order_relaxed);
  g_write_ordinal.store(0, std::memory_order_relaxed);
}

bool AnyFaultArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

bool FaultFires(FaultPoint point, int64_t address) {
  if (!AnyFaultArmed()) return false;
  std::lock_guard<std::mutex> lock(g_mu);
  ArmedFault& f = g_faults[static_cast<int>(point)];
  if (!f.armed || f.fires_left <= 0) return false;
  if (f.address != kAnyAddress && f.address != address) return false;
  if (--f.fires_left == 0) {
    f.armed = false;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

void MaybeInjectKill(FaultPoint point, int64_t address) {
  if (FaultFires(point, address)) throw InjectedKill(point, address);
}

bool FaultFiresNanLoss() {
  if (!AnyFaultArmed()) return false;
  return FaultFires(FaultPoint::kNanLoss, t_fault_address);
}

bool FaultFiresIoWrite() {
  if (!AnyFaultArmed()) return false;
  int64_t ordinal = g_write_ordinal.fetch_add(1, std::memory_order_relaxed);
  return FaultFires(FaultPoint::kIoWriteFail, ordinal);
}

FaultAddressScope::FaultAddressScope(int64_t address)
    : previous_(t_fault_address) {
  t_fault_address = address;
}

FaultAddressScope::~FaultAddressScope() { t_fault_address = previous_; }

int64_t CurrentFaultAddress() { return t_fault_address; }

}  // namespace autocts
