#ifndef REPRO_COMMON_PARALLEL_H_
#define REPRO_COMMON_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/runtime_config.h"

namespace autocts {

/// A fixed-size pool of worker threads for data-parallel kernels.
///
/// The pool only runs bulk jobs (see ParallelFor): there is no general task
/// queue, which keeps the synchronization cheap enough for tensor-op-sized
/// work items. A pool of size 1 never spawns a thread and runs everything
/// inline on the caller, so `num_threads = 1` is byte-identical to the
/// pre-threading serial implementation.
class ThreadPool {
 public:
  /// `num_threads <= 0` means std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(chunk)` for every chunk in [0, num_chunks) across the workers
  /// and the calling thread; returns when all chunks finished. Chunks are
  /// claimed dynamically but the mapping chunk -> work must not depend on
  /// which thread runs it (determinism contract). If any chunk throws, the
  /// first exception (in chunk order) is rethrown on the caller after all
  /// chunks drained.
  void RunChunks(int num_chunks, const std::function<void(int)>& fn);

 private:
  struct Job;

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;
  Job* job_ = nullptr;   // Current bulk job; null when idle.
  bool shutdown_ = false;
};

/// True while the current thread is executing a ParallelFor chunk. Nested
/// ParallelFor calls observe this and run inline (no worker re-entry, no
/// deadlock).
bool InParallelRegion();

/// The process-wide default pool, sized to hardware concurrency on first
/// use (override with SetDefaultPoolThreads before first use or any time
/// after; recreating the pool is cheap relative to any workload).
ThreadPool* DefaultPool();

/// Resizes the default pool. `num_threads <= 0` restores hardware
/// concurrency. Not thread-safe against concurrent ParallelFor calls on the
/// default pool.
void SetDefaultPoolThreads(int num_threads);

/// The pool ParallelFor uses on this thread: the ExecScope-installed pool
/// if one is active, the default pool otherwise.
ThreadPool* CurrentPool();

/// Runs `fn(begin, end)` over a deterministic contiguous partition of
/// [begin, end). Guarantees:
///   - every index is covered exactly once;
///   - partition boundaries depend only on (range, grain, lane count), never
///     on scheduling, so any per-chunk accumulation order is reproducible;
///   - ranges of at most `grain` elements, nested calls, and 1-lane pools
///     run inline on the caller — the serial path is the parallel path with
///     one chunk, so results are independent of thread count whenever each
///     output element is produced by exactly one index;
///   - exceptions thrown by `fn` propagate to the caller.
/// `grain` is the minimum number of indices worth shipping to a worker.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Minimum work (in touched scalars) per ParallelFor chunk; below this the
/// dispatch overhead beats the win and loops should run inline.
constexpr int64_t kParallelGrainWork = 1 << 14;

/// Grain (in outer-loop iterations) for loops whose body touches
/// `work_per_item` scalars per iteration.
inline int64_t GrainFor(int64_t work_per_item) {
  return std::max<int64_t>(
      1, kParallelGrainWork / std::max<int64_t>(1, work_per_item));
}

/// True when a ParallelFor over `items` would actually fan out. Kernels with
/// a cheaper fused serial variant use this to pick between the two paths
/// (both variants accumulate each element in the same order, so the choice
/// never changes results — see DESIGN.md "Threading model & determinism").
inline bool WillParallelize(int64_t items, int64_t work_per_item) {
  return !InParallelRegion() && items > GrainFor(work_per_item) &&
         CurrentPool()->num_threads() > 1;
}

/// `n` seeds drawn sequentially from `rng` — the deterministic fan-out used
/// to give every parallel work item its own RNG stream: seeds depend only
/// on the parent stream, never on thread count or scheduling.
std::vector<uint64_t> ForkSeeds(Rng* rng, int n);

/// Counters of the tensor-layer buffer pool (see tensor/buffer_pool.h).
/// Observable from any ExecContext so pipeline code and benches can track
/// allocator pressure without depending on the tensor layer.
struct PoolStats {
  uint64_t hits = 0;      ///< Acquires served from the free-list.
  uint64_t misses = 0;    ///< Acquires that had to allocate.
  uint64_t releases = 0;  ///< Buffers parked for reuse.
  uint64_t dropped = 0;   ///< Releases freed (over capacity / too small).
  uint64_t bypassed = 0;  ///< Acquires below the minimum pooled size.
  uint64_t bytes_pooled = 0;  ///< Bytes currently held by the free-list.

  /// Fraction of pooled acquires served without allocating.
  double hit_rate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
  /// Heap allocations attributable to tensor buffers.
  uint64_t allocations() const { return misses + bypassed; }
};

/// Hook the tensor layer installs so ExecContext::pool_stats() works without
/// a common -> tensor dependency. Later backends (device allocators) can
/// install their own provider.
using PoolStatsProvider = PoolStats (*)();
void RegisterPoolStatsProvider(PoolStatsProvider provider);

/// Counters of the step-plan capture/replay layer (see tensor/plan.h).
/// Process-wide, like PoolStats; exposed on ExecContext so pipeline code and
/// benches can watch plan-cache behaviour without a common -> tensor
/// dependency.
struct PlanStats {
  uint64_t captures = 0;       ///< Steps successfully frozen into a plan.
  uint64_t replays = 0;        ///< Steps executed by replaying a plan.
  uint64_t invalidations = 0;  ///< Frozen plans dropped (shape/knob change).
  uint64_t poisoned = 0;       ///< Captures abandoned (fell back to eager).
  uint64_t arena_bytes = 0;    ///< Bytes in live plans' intermediate arenas.
  uint64_t pinned_bytes = 0;   ///< Bytes pinned by live plans (data + grad).
};

/// Hook tensor/plan.cc installs so ExecContext::plan_stats() works without a
/// common -> tensor dependency.
using PlanStatsProvider = PlanStats (*)();
void RegisterPlanStatsProvider(PlanStatsProvider provider);

/// Execution context threaded through the trainer, the evolutionary search,
/// and both frameworks: which pool to run kernels on and the base seed that
/// per-worker RNG streams derive from. Passing contexts (instead of ad-hoc
/// pool/seed/thread-count parameters) lets future backends slot in without
/// signature churn.
struct ExecContext {
  /// Null means the process default pool.
  ThreadPool* pool = nullptr;
  /// Base seed for stochastic phases that fork per-item streams.
  uint64_t seed = 0;
  /// Runtime configuration override; null means the process-wide
  /// environment-parsed configuration (GlobalRuntimeConfig). Must outlive
  /// the context. Lets tests and multi-tenant callers thread a non-global
  /// configuration (backend choice, comparator precision, knobs) through
  /// the same plumbing as pools and seeds.
  const RuntimeConfig* config = nullptr;

  ThreadPool* effective_pool() const {
    return pool != nullptr ? pool : DefaultPool();
  }
  int num_threads() const { return effective_pool()->num_threads(); }
  const RuntimeConfig& effective_config() const {
    return config != nullptr ? *config : GlobalRuntimeConfig();
  }
  ExecContext WithSeed(uint64_t s) const {
    ExecContext c = *this;
    c.seed = s;
    return c;
  }
  /// Counters of the process-wide tensor buffer pool (all zeros when no
  /// provider is linked in). The pool is shared, not per-context; contexts
  /// expose it so observability travels with the execution plumbing.
  PoolStats pool_stats() const;
  /// Counters of the process-wide step-plan layer (all zeros when no
  /// provider is linked in).
  PlanStats plan_stats() const;
};

/// Installs `ctx`'s pool as the current pool for the enclosing scope, so
/// every ParallelFor below (tensor kernels included) runs on it. Scopes
/// nest; each restores the previous pool on destruction.
class ExecScope {
 public:
  explicit ExecScope(const ExecContext& ctx);
  ~ExecScope();

  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace autocts

#endif  // REPRO_COMMON_PARALLEL_H_
