#include "common/subprocess.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace autocts {
namespace {

int DecodeWaitStatus(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

}  // namespace

StatusOr<pid_t> SpawnChild(const std::function<int()>& body) {
  // Buffered stdio would otherwise be flushed once per process, duplicating
  // any pending test/bench output in every child.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Error(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    int code = 1;
    try {
      code = body();
    } catch (...) {
      code = 1;
    }
    ::_exit(code);
  }
  return pid;
}

bool TryReapChild(pid_t pid, int* exit_code) {
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  if (r != pid) return false;
  *exit_code = DecodeWaitStatus(status);
  return true;
}

int ReapChild(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) != pid) {
    if (errno != EINTR) return -1;
  }
  return DecodeWaitStatus(status);
}

void KillChild(pid_t pid) {
  if (pid <= 0) return;
  (void)::kill(pid, SIGKILL);
  (void)ReapChild(pid);
}

}  // namespace autocts
