#ifndef REPRO_COMMON_GUARD_H_
#define REPRO_COMMON_GUARD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace autocts {

/// Whether the non-finite guardrails (loss/gradient isfinite sweeps, the
/// Adam skip, the comparator logit check) are active. Defaults to on;
/// AUTOCTS_NO_GUARDS=1 in the environment disables them — the knob the
/// guardrail-overhead benchmark A/Bs against. SetGuardsEnabled overrides the
/// environment for the current process (benches toggle it in-process).
bool GuardsEnabled();
void SetGuardsEnabled(bool enabled);

/// Process-wide counters of guardrail activity, folded into the
/// RuntimeStats snapshot (see common/runtime_stats.h). Cheap relaxed
/// atomics; the counts are telemetry, not control flow.
struct GuardStats {
  uint64_t finite_checks = 0;      ///< AllFiniteBlocked sweeps run.
  uint64_t nonfinite_detected = 0; ///< Non-finite events guardrails caught.
};
GuardStats CurrentGuardStats();

/// Bumps GuardStats::nonfinite_detected — call sites that catch a
/// non-finite value by other means than AllFiniteBlocked (loss probes,
/// logit checks) record it here so the snapshot sees every event.
void NoteNonfiniteDetected();

/// True when every element of `x` is finite. Blocked sweep: fixed
/// 4096-element blocks checked independently (fanning out across the
/// current pool when large enough), so the verdict — a pure property of the
/// data — is identical for every thread count. Vectorizes to an order of
/// magnitude below the cost of the passes that produced the data.
bool AllFiniteBlocked(const float* x, int64_t n);

/// Fault-tolerance counters of one pipeline run, surfaced on
/// PretrainReport and SearchOutcome so callers can see what the guardrails
/// absorbed instead of silently losing (or poisoning) work.
struct RobustnessReport {
  /// Non-finite losses or gradient norms the trainer guardrails caught.
  int nonfinite_events = 0;
  /// Samples that diverged once but recovered on the lr-halved retry.
  int retried_samples = 0;
  /// Samples excluded from the label set after retry also diverged.
  int quarantined_samples = 0;
  /// Labeled samples restored from a checkpoint instead of retrained.
  int resumed_samples = 0;
  /// Preliminary task embeddings borrowed zero-copy from the mmap sample
  /// bank instead of recomputed through the encoder.
  int resumed_task_embeddings = 0;
  /// Optimizer updates skipped because the gradient norm was non-finite.
  int64_t skipped_optimizer_steps = 0;
  /// Non-finite comparator logits treated as "no preference" during search.
  int64_t nonfinite_comparisons = 0;
  /// Final top-K candidate trainings that diverged (excluded from winner
  /// selection unless every candidate diverged).
  int diverged_candidates = 0;
  /// Pipeline checkpoint writes attempted / failed (failures degrade to
  /// counters: a full run must never die because its checkpoint could not
  /// be persisted).
  int checkpoint_writes = 0;
  int checkpoint_write_failures = 0;
  /// One human-readable line per quarantined sample.
  std::vector<std::string> quarantine_reasons;

  /// Merges another report's counters into this one (reason lists append).
  void Merge(const RobustnessReport& other);
};

}  // namespace autocts

#endif  // REPRO_COMMON_GUARD_H_
