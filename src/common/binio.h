#ifndef REPRO_COMMON_BINIO_H_
#define REPRO_COMMON_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace autocts {

/// Appends raw bytes to a growing binary frame.
inline void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

/// Appends one trivially-copyable value (native endianness — checkpoints
/// are host-local artifacts, not interchange formats).
template <typename T>
void AppendPod(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(value));
}

/// Appends a length-prefixed byte string.
inline void AppendString(std::string* out, const std::string& s) {
  AppendPod(out, static_cast<uint64_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over an in-memory frame. Every primitive read
/// fails (sticky) instead of walking past the end, so a truncated file is
/// reported as such rather than partially parsed.
class FrameReader {
 public:
  FrameReader(const std::string& bytes, size_t offset)
      : bytes_(bytes), pos_(offset) {}

  template <typename T>
  bool Read(T* value) {
    if (failed_ || bytes_.size() - pos_ < sizeof(T)) {
      failed_ = true;
      return false;
    }
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadFloats(std::vector<float>* out, uint64_t count) {
    const uint64_t bytes_needed = count * sizeof(float);
    if (failed_ || bytes_.size() - pos_ < bytes_needed) {
      failed_ = true;
      return false;
    }
    out->resize(count);
    std::memcpy(out->data(), bytes_.data() + pos_, bytes_needed);
    pos_ += bytes_needed;
    return true;
  }

  /// Reads a length-prefixed byte string written by AppendString.
  bool ReadString(std::string* out) {
    uint64_t size = 0;
    if (!Read(&size)) return false;
    if (bytes_.size() - pos_ < size) {
      failed_ = true;
      return false;
    }
    out->assign(bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  size_t remaining() const { return bytes_.size() - pos_; }
  bool failed() const { return failed_; }

 private:
  const std::string& bytes_;
  size_t pos_;
  bool failed_ = false;
};

}  // namespace autocts

#endif  // REPRO_COMMON_BINIO_H_
