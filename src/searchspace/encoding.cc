#include "searchspace/encoding.h"

#include "common/check.h"

namespace autocts {

ArchHyperEncoding EncodeArchHyper(const ArchHyper& ah) {
  Status valid = ValidateArchHyper(ah);
  CHECK(valid.ok()) << valid.message();
  const int n_ops = static_cast<int>(ah.arch.edges.size());
  const int n = n_ops + 1;  // + hyper node
  CHECK_LE(n, kEncodingNodes) << "arch-hyper exceeds encoding padding";

  ArchHyperEncoding enc;
  enc.num_nodes = n;
  enc.hyper_index = kEncodingNodes - 1;
  enc.adjacency.assign(static_cast<size_t>(kEncodingNodes) * kEncodingNodes,
                       0.0f);
  enc.op_onehot.assign(static_cast<size_t>(kEncodingNodes) * kNumOpTypes,
                       0.0f);
  enc.hyper_features = ah.hyper.Normalized();

  auto set_adj = [&](int i, int j) {
    enc.adjacency[static_cast<size_t>(i) * kEncodingNodes + j] = 1.0f;
  };
  // Dual graph: operator u feeds operator v iff u's destination latent node
  // is v's source latent node.
  for (int u = 0; u < n_ops; ++u) {
    set_adj(u, u);  // self-loop
    enc.op_onehot[static_cast<size_t>(u) * kNumOpTypes +
                  static_cast<int>(ah.arch.edges[static_cast<size_t>(u)].op)] =
        1.0f;
    for (int v = 0; v < n_ops; ++v) {
      if (u == v) continue;
      if (ah.arch.edges[static_cast<size_t>(u)].dst ==
          ah.arch.edges[static_cast<size_t>(v)].src) {
        set_adj(u, v);
      }
    }
  }
  // The Hyper node connects (symmetrically) to every operator node.
  set_adj(enc.hyper_index, enc.hyper_index);
  for (int u = 0; u < n_ops; ++u) {
    set_adj(enc.hyper_index, u);
    set_adj(u, enc.hyper_index);
  }
  return enc;
}

EncodingBatch StackEncodings(const std::vector<ArchHyperEncoding>& encodings) {
  CHECK(!encodings.empty());
  const int b = static_cast<int>(encodings.size());
  std::vector<float> adj;
  std::vector<float> ops;
  std::vector<float> hyper;
  adj.reserve(static_cast<size_t>(b) * kEncodingNodes * kEncodingNodes);
  ops.reserve(static_cast<size_t>(b) * kEncodingNodes * kNumOpTypes);
  hyper.reserve(static_cast<size_t>(b) * 6);
  for (const ArchHyperEncoding& e : encodings) {
    adj.insert(adj.end(), e.adjacency.begin(), e.adjacency.end());
    ops.insert(ops.end(), e.op_onehot.begin(), e.op_onehot.end());
    hyper.insert(hyper.end(), e.hyper_features.begin(),
                 e.hyper_features.end());
  }
  EncodingBatch batch;
  batch.adjacency =
      Tensor::FromVector({b, kEncodingNodes, kEncodingNodes}, std::move(adj));
  batch.op_onehot =
      Tensor::FromVector({b, kEncodingNodes, kNumOpTypes}, std::move(ops));
  batch.hyper = Tensor::FromVector({b, 6}, std::move(hyper));
  return batch;
}

}  // namespace autocts
