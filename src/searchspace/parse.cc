#include "searchspace/parse.h"

#include <cctype>
#include <cstdlib>

namespace autocts {
namespace {

/// Splits "s" on a delimiter.
std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= s.size()) {
    size_t end = s.find(delim, begin);
    if (end == std::string::npos) {
      out.push_back(s.substr(begin));
      break;
    }
    out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

/// Reads the integer following prefix `tag` at position `*pos`; advances.
bool ReadTaggedInt(const std::string& s, size_t* pos, char tag, int* value) {
  if (*pos >= s.size() || s[*pos] != tag) return false;
  ++*pos;
  size_t digits = 0;
  int v = 0;
  while (*pos + digits < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[*pos + digits]))) {
    v = v * 10 + (s[*pos + digits] - '0');
    ++digits;
  }
  if (digits == 0) return false;
  *pos += digits;
  *value = v;
  return true;
}

}  // namespace

StatusOr<OpType> ParseOpName(const std::string& name) {
  for (int o = 0; o < kNumOpTypes; ++o) {
    OpType op = static_cast<OpType>(o);
    if (name == OpName(op)) return op;
  }
  return Status::Error("unknown operator name '" + name + "'");
}

StatusOr<ArchHyper> ParseArchHyper(const std::string& signature) {
  std::vector<std::string> halves = Split(signature, '|');
  if (halves.size() != 2) {
    return Status::Error("signature must contain exactly one '|'");
  }
  ArchHyper ah;
  const std::string& hyper = halves[0];
  size_t pos = 0;
  if (!ReadTaggedInt(hyper, &pos, 'B', &ah.hyper.num_blocks) ||
      !ReadTaggedInt(hyper, &pos, 'C', &ah.hyper.num_nodes) ||
      !ReadTaggedInt(hyper, &pos, 'H', &ah.hyper.hidden_dim) ||
      !ReadTaggedInt(hyper, &pos, 'I', &ah.hyper.output_dim) ||
      !ReadTaggedInt(hyper, &pos, 'U', &ah.hyper.output_mode) ||
      !ReadTaggedInt(hyper, &pos, 'd', &ah.hyper.dropout) ||
      pos != hyper.size()) {
    return Status::Error("malformed hyperparameter prefix '" + hyper + "'");
  }
  ah.arch.num_nodes = ah.hyper.num_nodes;
  if (!halves[1].empty()) {
    for (const std::string& edge_str : Split(halves[1], ',')) {
      // "src-dst:OPNAME"
      size_t dash = edge_str.find('-');
      size_t colon = edge_str.find(':');
      if (dash == std::string::npos || colon == std::string::npos ||
          colon < dash) {
        return Status::Error("malformed edge '" + edge_str + "'");
      }
      ArchEdge edge;
      char* end = nullptr;
      edge.src = static_cast<int>(
          std::strtol(edge_str.substr(0, dash).c_str(), &end, 10));
      edge.dst = static_cast<int>(std::strtol(
          edge_str.substr(dash + 1, colon - dash - 1).c_str(), &end, 10));
      StatusOr<OpType> op = ParseOpName(edge_str.substr(colon + 1));
      if (!op.ok()) return op.status();
      edge.op = op.value();
      ah.arch.edges.push_back(edge);
    }
  }
  Status valid = ValidateArchHyper(ah);
  if (!valid.ok()) {
    return Status::Error("parsed arch-hyper invalid: " + valid.message());
  }
  return ah;
}

}  // namespace autocts
