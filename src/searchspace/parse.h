#ifndef REPRO_SEARCHSPACE_PARSE_H_
#define REPRO_SEARCHSPACE_PARSE_H_

#include <string>

#include "common/status.h"
#include "searchspace/arch_hyper.h"

namespace autocts {

/// Parses the compact signature produced by ArchHyper::Signature(), e.g.
///   "B4C5H32I64U1d0|0-1:GDCC,0-2:DGCN,2-3:INF-T,3-4:INF-S"
/// back into an ArchHyper. The result is validated (Table-2 domains,
/// topology rules); malformed or invalid inputs yield an error Status.
/// Round trip: ParseArchHyper(ah.Signature()) == ah for every valid ah.
StatusOr<ArchHyper> ParseArchHyper(const std::string& signature);

/// Parses one operator name as printed by OpName ("ID", "GDCC", "INF-T",
/// "DGCN", "INF-S").
StatusOr<OpType> ParseOpName(const std::string& name);

}  // namespace autocts

#endif  // REPRO_SEARCHSPACE_PARSE_H_
