#ifndef REPRO_SEARCHSPACE_SEARCH_SPACE_H_
#define REPRO_SEARCHSPACE_SEARCH_SPACE_H_

#include <vector>

#include "common/rng.h"
#include "searchspace/arch_hyper.h"

namespace autocts {

/// The joint architecture–hyperparameter search space (paper §3.1): uniform
/// sampling, mutation, and crossover over valid arch-hypers. All sampled
/// candidates satisfy ValidateArchHyper and contain at least one spatial
/// and one temporal operator (the pruning rule of §3.3).
class JointSearchSpace {
 public:
  JointSearchSpace() = default;

  /// Uniformly samples a valid arch-hyper.
  ArchHyper Sample(Rng* rng) const;

  /// Samples `count` distinct arch-hypers (by signature).
  std::vector<ArchHyper> SampleDistinct(int count, Rng* rng) const;

  /// Evolutionary mutation: perturbs one hyperparameter or one edge. When
  /// the node count C changes, the architecture is resampled with the new
  /// C (the spaces are coupled through C).
  ArchHyper Mutate(const ArchHyper& parent, Rng* rng) const;

  /// Evolutionary crossover: each hyperparameter gene comes from a random
  /// parent; the architecture comes from the parent whose C won.
  ArchHyper Crossover(const ArchHyper& a, const ArchHyper& b, Rng* rng) const;

  /// Random architecture for a fixed node count.
  ArchSpec SampleArch(int num_nodes, Rng* rng) const;

  /// Random hyperparameter setting.
  HyperParams SampleHyper(Rng* rng) const;

  /// Log10 of the total number of arch-hypers in the space (for reporting;
  /// the paper's space holds ~10^10 candidates).
  double Log10Size() const;
};

}  // namespace autocts

#endif  // REPRO_SEARCHSPACE_SEARCH_SPACE_H_
