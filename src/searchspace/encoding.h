#ifndef REPRO_SEARCHSPACE_ENCODING_H_
#define REPRO_SEARCHSPACE_ENCODING_H_

#include <vector>

#include "searchspace/arch_hyper.h"
#include "tensor/tensor.h"

namespace autocts {

/// Nodes of every encoded arch-hyper graph are padded to this size so that
/// batches of differently sized ST-blocks share one adjacency shape (the
/// paper pads to 14: up to 12 operator nodes for C=7 plus the Hyper node).
inline constexpr int kEncodingNodes = 14;

/// Graph encoding of an arch-hyper (paper §3.1.3, Fig. 3).
///
/// The architecture DAG is converted to its dual graph — operator nodes,
/// information-flow edges — and a "Hyper" node connected to every operator
/// node is appended. The result is expressed as a padded adjacency matrix
/// (self-loops included) plus raw node features: a one-hot operator id per
/// operator node and the min-max-normalized r=6 hyperparameter vector for
/// the Hyper node. The learnable projections W_e and W_c (Eq. 7–8) live in
/// the comparator, not here.
struct ArchHyperEncoding {
  /// Real node count (operator nodes + 1 hyper node) before padding.
  int num_nodes = 0;
  /// Index of the hyper node. Fixed at kEncodingNodes-1 for every sample so
  /// batched GIN readout can use one slot regardless of architecture size.
  int hyper_index = kEncodingNodes - 1;
  /// [kEncodingNodes * kEncodingNodes], row-major, 0/1 with self-loops.
  std::vector<float> adjacency;
  /// [kEncodingNodes * kNumOpTypes]; zero rows for hyper node and padding.
  std::vector<float> op_onehot;
  /// [6]; min-max normalized hyperparameter vector (Eq. 7 input).
  std::vector<float> hyper_features;
};

/// Encodes one arch-hyper. CHECK-fails on invalid specs.
ArchHyperEncoding EncodeArchHyper(const ArchHyper& ah);

/// Stacks encodings into batch tensors for the comparator's GIN:
///   adjacency [B, kEncodingNodes, kEncodingNodes]
///   op_onehot [B, kEncodingNodes, kNumOpTypes]
///   hyper     [B, 6]
struct EncodingBatch {
  Tensor adjacency;
  Tensor op_onehot;
  Tensor hyper;
};
EncodingBatch StackEncodings(const std::vector<ArchHyperEncoding>& encodings);

}  // namespace autocts

#endif  // REPRO_SEARCHSPACE_ENCODING_H_
