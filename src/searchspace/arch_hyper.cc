#include "searchspace/arch_hyper.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace autocts {

const char* OpName(OpType op) {
  switch (op) {
    case OpType::kIdentity:
      return "ID";
    case OpType::kGdcc:
      return "GDCC";
    case OpType::kInfT:
      return "INF-T";
    case OpType::kDgcn:
      return "DGCN";
    case OpType::kInfS:
      return "INF-S";
  }
  return "?";
}

bool IsTemporalOp(OpType op) {
  return op == OpType::kGdcc || op == OpType::kInfT;
}

bool IsSpatialOp(OpType op) {
  return op == OpType::kDgcn || op == OpType::kInfS;
}

const std::vector<int>& HyperParams::BlockChoices() {
  static const std::vector<int> kChoices = {2, 4, 6};
  return kChoices;
}
const std::vector<int>& HyperParams::NodeChoices() {
  static const std::vector<int> kChoices = {5, 7};
  return kChoices;
}
const std::vector<int>& HyperParams::HiddenChoices() {
  static const std::vector<int> kChoices = {32, 48, 64};
  return kChoices;
}
const std::vector<int>& HyperParams::OutputChoices() {
  static const std::vector<int> kChoices = {64, 128, 256};
  return kChoices;
}
const std::vector<int>& HyperParams::ModeChoices() {
  static const std::vector<int> kChoices = {0, 1};
  return kChoices;
}
const std::vector<int>& HyperParams::DropoutChoices() {
  static const std::vector<int> kChoices = {0, 1};
  return kChoices;
}

namespace {

float MinMax(int value, const std::vector<int>& choices) {
  int lo = choices.front(), hi = choices.back();
  if (hi == lo) return 0.0f;
  return static_cast<float>(value - lo) / static_cast<float>(hi - lo);
}

}  // namespace

std::vector<float> HyperParams::Normalized() const {
  return {MinMax(num_blocks, BlockChoices()),
          MinMax(num_nodes, NodeChoices()),
          MinMax(hidden_dim, HiddenChoices()),
          MinMax(output_dim, OutputChoices()),
          MinMax(output_mode, ModeChoices()),
          MinMax(dropout, DropoutChoices())};
}

std::string ArchHyper::Signature() const {
  std::ostringstream out;
  out << "B" << hyper.num_blocks << "C" << hyper.num_nodes << "H"
      << hyper.hidden_dim << "I" << hyper.output_dim << "U"
      << hyper.output_mode << "d" << hyper.dropout << "|";
  for (size_t i = 0; i < arch.edges.size(); ++i) {
    if (i > 0) out << ",";
    const ArchEdge& e = arch.edges[i];
    out << e.src << "-" << e.dst << ":" << OpName(e.op);
  }
  return out.str();
}

namespace {

bool Contains(const std::vector<int>& choices, int v) {
  return std::find(choices.begin(), choices.end(), v) != choices.end();
}

}  // namespace

Status ValidateArchHyper(const ArchHyper& ah) {
  const HyperParams& h = ah.hyper;
  if (!Contains(HyperParams::BlockChoices(), h.num_blocks)) {
    return Status::Error("B outside Table-2 domain");
  }
  if (!Contains(HyperParams::NodeChoices(), h.num_nodes)) {
    return Status::Error("C outside Table-2 domain");
  }
  if (!Contains(HyperParams::HiddenChoices(), h.hidden_dim)) {
    return Status::Error("H outside Table-2 domain");
  }
  if (!Contains(HyperParams::OutputChoices(), h.output_dim)) {
    return Status::Error("I outside Table-2 domain");
  }
  if (!Contains(HyperParams::ModeChoices(), h.output_mode)) {
    return Status::Error("U outside Table-2 domain");
  }
  if (!Contains(HyperParams::DropoutChoices(), h.dropout)) {
    return Status::Error("dropout outside Table-2 domain");
  }
  const ArchSpec& a = ah.arch;
  if (a.num_nodes != h.num_nodes) {
    return Status::Error("arch node count disagrees with hyperparameter C");
  }
  std::vector<int> in_degree(static_cast<size_t>(a.num_nodes), 0);
  std::vector<std::vector<bool>> used(
      static_cast<size_t>(a.num_nodes),
      std::vector<bool>(static_cast<size_t>(a.num_nodes), false));
  for (const ArchEdge& e : a.edges) {
    if (e.src < 0 || e.dst >= a.num_nodes || e.src >= e.dst) {
      return Status::Error("edge violates forward-flow rule");
    }
    if (used[static_cast<size_t>(e.src)][static_cast<size_t>(e.dst)]) {
      return Status::Error("duplicate edge between node pair");
    }
    used[static_cast<size_t>(e.src)][static_cast<size_t>(e.dst)] = true;
    ++in_degree[static_cast<size_t>(e.dst)];
  }
  for (int j = 1; j < a.num_nodes; ++j) {
    if (in_degree[static_cast<size_t>(j)] < 1) {
      return Status::Error("node " + std::to_string(j) + " has no input");
    }
    if (in_degree[static_cast<size_t>(j)] > 2) {
      return Status::Error("node " + std::to_string(j) +
                           " exceeds two incoming edges");
    }
  }
  // Canonical ordering keeps signatures unique.
  for (size_t i = 1; i < a.edges.size(); ++i) {
    const ArchEdge& prev = a.edges[i - 1];
    const ArchEdge& cur = a.edges[i];
    if (std::pair(prev.dst, prev.src) >= std::pair(cur.dst, cur.src)) {
      return Status::Error("edges not in canonical (dst, src) order");
    }
  }
  return Status::Ok();
}

bool HasSpatialAndTemporal(const ArchSpec& arch) {
  bool spatial = false, temporal = false;
  for (const ArchEdge& e : arch.edges) {
    spatial = spatial || IsSpatialOp(e.op);
    temporal = temporal || IsTemporalOp(e.op);
  }
  return spatial && temporal;
}

}  // namespace autocts
