#ifndef REPRO_SEARCHSPACE_ARCH_HYPER_H_
#define REPRO_SEARCHSPACE_ARCH_HYPER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace autocts {

/// Candidate S/T-operators of the architecture search space (paper §3.1.1).
enum class OpType {
  kIdentity = 0,  ///< Skip connection.
  kGdcc,          ///< Gated dilated causal convolution (T, short-term).
  kInfT,          ///< Informer attention over time (T, long-term).
  kDgcn,          ///< Diffusion graph convolution (S, static correlations).
  kInfS,          ///< Informer attention over sensors (S, dynamic).
};

inline constexpr int kNumOpTypes = 5;

const char* OpName(OpType op);
bool IsTemporalOp(OpType op);
bool IsSpatialOp(OpType op);

/// One directed edge of an ST-block DAG: `op` transforms node `src` into a
/// contribution to node `dst` (src < dst; node 0 is the block input).
struct ArchEdge {
  int src = 0;
  int dst = 0;
  OpType op = OpType::kIdentity;

  friend bool operator==(const ArchEdge&, const ArchEdge&) = default;
};

/// The architecture half of an arch-hyper: a DAG over `num_nodes` latent
/// representations obeying the topology rules of §3.1.1 — at most one edge
/// per ordered pair, forward-only edges, and (following AutoCTS) at most
/// two incoming edges per node, at least one.
struct ArchSpec {
  int num_nodes = 5;
  std::vector<ArchEdge> edges;  ///< Sorted by (dst, src).

  friend bool operator==(const ArchSpec&, const ArchSpec&) = default;
};

/// The hyperparameter half (Table 2). Values are the paper's raw domains;
/// the model compiler rescales H and I by ScaleConfig::hidden_divisor.
struct HyperParams {
  int num_blocks = 2;      ///< B ∈ {2, 4, 6}
  int num_nodes = 5;       ///< C ∈ {5, 7}
  int hidden_dim = 32;     ///< H ∈ {32, 48, 64}
  int output_dim = 64;     ///< I ∈ {64, 128, 256}
  int output_mode = 0;     ///< U ∈ {0: last node, 1: sum of nodes}
  int dropout = 0;         ///< δ ∈ {0, 1}

  static const std::vector<int>& BlockChoices();
  static const std::vector<int>& NodeChoices();
  static const std::vector<int>& HiddenChoices();
  static const std::vector<int>& OutputChoices();
  static const std::vector<int>& ModeChoices();
  static const std::vector<int>& DropoutChoices();

  /// Min-max normalized r=6 feature vector (paper Eq. 7 input).
  std::vector<float> Normalized() const;

  friend bool operator==(const HyperParams&, const HyperParams&) = default;
};

/// A point of the joint search space: an architecture plus its accompanying
/// hyperparameter setting ("arch-hyper", paper §3.1).
struct ArchHyper {
  ArchSpec arch;
  HyperParams hyper;

  /// Compact canonical string, e.g. "B4C5H32I64U1d0|0-1:GDCC,0-2:DGCN,...".
  /// Equal signatures ⇔ equal arch-hypers; used for dedup and case studies.
  std::string Signature() const;

  friend bool operator==(const ArchHyper&, const ArchHyper&) = default;
};

/// Structural validity rules shared by sampling, mutation, and decoding.
Status ValidateArchHyper(const ArchHyper& ah);

/// True when the architecture has at least one spatial and one temporal
/// operator — the paper prunes candidates without both (§3.3).
bool HasSpatialAndTemporal(const ArchSpec& arch);

}  // namespace autocts

#endif  // REPRO_SEARCHSPACE_ARCH_HYPER_H_
