#include "searchspace/search_space.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace autocts {
namespace {

OpType RandomOp(Rng* rng) {
  return static_cast<OpType>(rng->Int(0, kNumOpTypes - 1));
}

void SortEdges(std::vector<ArchEdge>* edges) {
  std::sort(edges->begin(), edges->end(),
            [](const ArchEdge& a, const ArchEdge& b) {
              return std::pair(a.dst, a.src) < std::pair(b.dst, b.src);
            });
}

}  // namespace

ArchSpec JointSearchSpace::SampleArch(int num_nodes, Rng* rng) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    ArchSpec arch;
    arch.num_nodes = num_nodes;
    for (int j = 1; j < num_nodes; ++j) {
      int in_degree = j == 1 ? 1 : rng->Int(1, 2);
      std::vector<int> sources(static_cast<size_t>(j));
      for (int s = 0; s < j; ++s) sources[static_cast<size_t>(s)] = s;
      rng->Shuffle(&sources);
      in_degree = std::min(in_degree, j);
      for (int e = 0; e < in_degree; ++e) {
        arch.edges.push_back(
            {sources[static_cast<size_t>(e)], j, RandomOp(rng)});
      }
    }
    SortEdges(&arch.edges);
    if (HasSpatialAndTemporal(arch)) return arch;
  }
  // Degenerate RNG streaks cannot persist for 64 attempts with 5 op types;
  // force the property on the last sample instead of looping forever.
  ArchSpec arch;
  arch.num_nodes = num_nodes;
  for (int j = 1; j < num_nodes; ++j) {
    arch.edges.push_back({j - 1, j, j % 2 == 1 ? OpType::kGdcc : OpType::kDgcn});
  }
  SortEdges(&arch.edges);
  return arch;
}

HyperParams JointSearchSpace::SampleHyper(Rng* rng) const {
  HyperParams h;
  h.num_blocks = rng->Choice(HyperParams::BlockChoices());
  h.num_nodes = rng->Choice(HyperParams::NodeChoices());
  h.hidden_dim = rng->Choice(HyperParams::HiddenChoices());
  h.output_dim = rng->Choice(HyperParams::OutputChoices());
  h.output_mode = rng->Choice(HyperParams::ModeChoices());
  h.dropout = rng->Choice(HyperParams::DropoutChoices());
  return h;
}

ArchHyper JointSearchSpace::Sample(Rng* rng) const {
  ArchHyper ah;
  ah.hyper = SampleHyper(rng);
  ah.arch = SampleArch(ah.hyper.num_nodes, rng);
  CHECK(ValidateArchHyper(ah).ok());
  return ah;
}

std::vector<ArchHyper> JointSearchSpace::SampleDistinct(int count,
                                                        Rng* rng) const {
  std::vector<ArchHyper> out;
  std::unordered_set<std::string> seen;
  int attempts = 0;
  while (static_cast<int>(out.size()) < count && attempts < count * 50) {
    ++attempts;
    ArchHyper ah = Sample(rng);
    if (seen.insert(ah.Signature()).second) out.push_back(std::move(ah));
  }
  CHECK_EQ(static_cast<int>(out.size()), count)
      << "search space too small for " << count << " distinct samples";
  return out;
}

ArchHyper JointSearchSpace::Mutate(const ArchHyper& parent, Rng* rng) const {
  ArchHyper child = parent;
  // Gene classes: 0..5 hyperparameters, 6 edge-op flip, 7 edge rewire.
  int gene = rng->Int(0, 7);
  switch (gene) {
    case 0:
      child.hyper.num_blocks = rng->Choice(HyperParams::BlockChoices());
      break;
    case 1: {
      int c = rng->Choice(HyperParams::NodeChoices());
      if (c != child.hyper.num_nodes) {
        child.hyper.num_nodes = c;
        child.arch = SampleArch(c, rng);
      }
      break;
    }
    case 2:
      child.hyper.hidden_dim = rng->Choice(HyperParams::HiddenChoices());
      break;
    case 3:
      child.hyper.output_dim = rng->Choice(HyperParams::OutputChoices());
      break;
    case 4:
      child.hyper.output_mode = rng->Choice(HyperParams::ModeChoices());
      break;
    case 5:
      child.hyper.dropout = rng->Choice(HyperParams::DropoutChoices());
      break;
    case 6: {
      // Flip the operator of a random edge, keeping S+T coverage.
      for (int attempt = 0; attempt < 16; ++attempt) {
        ArchSpec trial = parent.arch;
        size_t e = static_cast<size_t>(
            rng->Int(0, static_cast<int>(trial.edges.size()) - 1));
        trial.edges[e].op = RandomOp(rng);
        if (HasSpatialAndTemporal(trial)) {
          child.arch = trial;
          break;
        }
      }
      break;
    }
    case 7: {
      // Rewire a random edge to a different valid source.
      for (int attempt = 0; attempt < 16; ++attempt) {
        ArchSpec trial = parent.arch;
        size_t e = static_cast<size_t>(
            rng->Int(0, static_cast<int>(trial.edges.size()) - 1));
        int dst = trial.edges[e].dst;
        int new_src = rng->Int(0, dst - 1);
        bool duplicate = false;
        for (size_t k = 0; k < trial.edges.size(); ++k) {
          if (k != e && trial.edges[k].dst == dst &&
              trial.edges[k].src == new_src) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        trial.edges[e].src = new_src;
        std::sort(trial.edges.begin(), trial.edges.end(),
                  [](const ArchEdge& a, const ArchEdge& b) {
                    return std::pair(a.dst, a.src) < std::pair(b.dst, b.src);
                  });
        child.arch = trial;
        break;
      }
      break;
    }
    default:
      break;
  }
  Status valid = ValidateArchHyper(child);
  if (!valid.ok() || !HasSpatialAndTemporal(child.arch)) return parent;
  return child;
}

ArchHyper JointSearchSpace::Crossover(const ArchHyper& a, const ArchHyper& b,
                                      Rng* rng) const {
  ArchHyper child;
  child.hyper.num_blocks =
      rng->Bernoulli(0.5) ? a.hyper.num_blocks : b.hyper.num_blocks;
  child.hyper.hidden_dim =
      rng->Bernoulli(0.5) ? a.hyper.hidden_dim : b.hyper.hidden_dim;
  child.hyper.output_dim =
      rng->Bernoulli(0.5) ? a.hyper.output_dim : b.hyper.output_dim;
  child.hyper.output_mode =
      rng->Bernoulli(0.5) ? a.hyper.output_mode : b.hyper.output_mode;
  child.hyper.dropout = rng->Bernoulli(0.5) ? a.hyper.dropout : b.hyper.dropout;
  const ArchHyper& arch_parent = rng->Bernoulli(0.5) ? a : b;
  const ArchHyper& other = &arch_parent == &a ? b : a;
  child.hyper.num_nodes = arch_parent.hyper.num_nodes;
  child.arch = arch_parent.arch;
  if (arch_parent.hyper.num_nodes == other.hyper.num_nodes) {
    // Same topology size: node-wise mixing of incoming edge sets.
    std::vector<ArchEdge> mixed;
    for (int j = 1; j < child.arch.num_nodes; ++j) {
      const ArchSpec& donor =
          rng->Bernoulli(0.5) ? arch_parent.arch : other.arch;
      for (const ArchEdge& e : donor.edges) {
        if (e.dst == j) mixed.push_back(e);
      }
    }
    std::sort(mixed.begin(), mixed.end(),
              [](const ArchEdge& x, const ArchEdge& y) {
                return std::pair(x.dst, x.src) < std::pair(y.dst, y.src);
              });
    ArchSpec trial;
    trial.num_nodes = child.arch.num_nodes;
    trial.edges = std::move(mixed);
    ArchHyper candidate = child;
    candidate.arch = trial;
    if (ValidateArchHyper(candidate).ok() &&
        HasSpatialAndTemporal(trial)) {
      child.arch = trial;
    }
  }
  CHECK(ValidateArchHyper(child).ok());
  return child;
}

double JointSearchSpace::Log10Size() const {
  // Architectures per C: node j has j choices of 1 in-edge or C(j,2) of 2,
  // each edge one of |O| ops. Multiply by hyper domain sizes (excluding C,
  // which is counted by the per-C sum).
  double total = 0.0;
  for (int c : HyperParams::NodeChoices()) {
    double archs = 1.0;
    for (int j = 1; j < c; ++j) {
      double one = static_cast<double>(j) * kNumOpTypes;
      double two = j >= 2 ? (static_cast<double>(j) * (j - 1) / 2.0) *
                                kNumOpTypes * kNumOpTypes
                          : 0.0;
      archs *= (one + two);
    }
    total += archs;
  }
  double hyper = static_cast<double>(HyperParams::BlockChoices().size()) *
                 HyperParams::HiddenChoices().size() *
                 HyperParams::OutputChoices().size() *
                 HyperParams::ModeChoices().size() *
                 HyperParams::DropoutChoices().size();
  return std::log10(total * hyper);
}

}  // namespace autocts
