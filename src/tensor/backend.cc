#include "tensor/backend.h"

#include <atomic>
#include <cstdio>

#include "common/runtime_config.h"
#include "common/runtime_stats.h"

namespace autocts {
namespace kernels {

// Backend factories, one per compiled-in translation unit. Explicit externs
// (rather than static self-registration) because these live in a static
// library: an unreferenced registrar object's TU is never pulled in by the
// linker, while these references force every compiled backend into any
// binary that dispatches kernels.
const Backend& ScalarBackend();
#if AUTOCTS_HAVE_AVX2_BACKEND
const Backend& Avx2Backend();
#endif
#if AUTOCTS_HAVE_AVX512_BACKEND
const Backend& Avx512Backend();
#endif
#if AUTOCTS_HAVE_NEON_BACKEND
const Backend& NeonBackend();
#endif

namespace {

/// All compiled-in backends, widest ISA first; the scalar fallback is always
/// last and always present.
const std::vector<const Backend*>& CompiledBackends() {
  static const std::vector<const Backend*> all = [] {
    std::vector<const Backend*> v;
#if AUTOCTS_HAVE_AVX512_BACKEND
    v.push_back(&Avx512Backend());
#endif
#if AUTOCTS_HAVE_AVX2_BACKEND
    v.push_back(&Avx2Backend());
#endif
#if AUTOCTS_HAVE_NEON_BACKEND
    v.push_back(&NeonBackend());
#endif
    v.push_back(&ScalarBackend());
    return v;
  }();
  return all;
}

std::atomic<const Backend*> g_active{nullptr};

/// Startup choice: the configured backend when it names one that is
/// compiled in and CPU-supported, otherwise the widest supported backend
/// (with a stderr note when a configured choice had to be ignored).
const Backend* ResolveStartupBackend() {
  const std::vector<const Backend*> avail = AvailableBackends();
  const std::string& want = GlobalRuntimeConfig().backend;
  if (!want.empty()) {
    for (const Backend* b : avail) {
      if (want == b->name) return b;
    }
    std::fprintf(stderr,
                 "[autocts] AUTOCTS_BACKEND=%s is not available on this "
                 "host; falling back to '%s'\n",
                 want.c_str(), avail.front()->name);
  }
  return avail.front();
}

std::atomic<uint64_t> g_gemm_micro_calls{0};
std::atomic<uint64_t> g_gemm_small_calls{0};
std::atomic<uint64_t> g_qgemm_s8_calls{0};
std::atomic<uint64_t> g_qgemm_bf16_calls{0};

BackendStats CollectBackendStats() {
  BackendStats s;
  s.active = ActiveBackend().name;
  s.gemm_micro_calls = g_gemm_micro_calls.load(std::memory_order_relaxed);
  s.gemm_small_calls = g_gemm_small_calls.load(std::memory_order_relaxed);
  s.qgemm_s8_calls = g_qgemm_s8_calls.load(std::memory_order_relaxed);
  s.qgemm_bf16_calls = g_qgemm_bf16_calls.load(std::memory_order_relaxed);
  return s;
}

// Installed at static-init time: this TU is linked into any binary that
// dispatches kernels (they all reference ActiveBackend), so unlike a
// backend registrar this initializer cannot be dropped without the provider
// being moot anyway.
struct StatsProviderRegistrar {
  StatsProviderRegistrar() { RegisterBackendStatsProvider(&CollectBackendStats); }
} g_stats_registrar;

}  // namespace

const Backend& ActiveBackend() {
  const Backend* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    static const Backend* const startup = ResolveStartupBackend();
    const Backend* expected = nullptr;
    g_active.compare_exchange_strong(expected, startup,
                                     std::memory_order_acq_rel);
    active = g_active.load(std::memory_order_acquire);
  }
  return *active;
}

bool SetActiveBackend(const std::string& name) {
  for (const Backend* b : AvailableBackends()) {
    if (name == b->name) {
      g_active.store(b, std::memory_order_release);
      return true;
    }
  }
  return false;
}

std::vector<const Backend*> AvailableBackends() {
  std::vector<const Backend*> avail;
  for (const Backend* b : CompiledBackends()) {
    if (b->supported()) avail.push_back(b);
  }
  return avail;
}

namespace counters {
void NoteGemmMicro() {
  g_gemm_micro_calls.fetch_add(1, std::memory_order_relaxed);
}
void NoteGemmSmall() {
  g_gemm_small_calls.fetch_add(1, std::memory_order_relaxed);
}
void NoteQgemmS8() {
  g_qgemm_s8_calls.fetch_add(1, std::memory_order_relaxed);
}
void NoteQgemmBf16() {
  g_qgemm_bf16_calls.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace counters

}  // namespace kernels
}  // namespace autocts
