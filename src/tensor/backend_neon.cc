// NEON kernel backend stub, compiled only on aarch64 builds (see
// src/tensor/CMakeLists.txt). NEON is baseline on aarch64, so no extra ISA
// flags or cpuid gate are needed; the generic kernel bodies autovectorize
// to NEON under the default target. A hand-tiled q-register micro-kernel
// can replace GenericGemmMicro here without touching the dispatch layer —
// any replacement must keep the per-element ascending-k accumulation order
// (see backend.h) to stay bit-identical with the other backends.

#include "tensor/backend.h"

namespace autocts {
namespace kernels {
namespace {

#include "tensor/backend_kernels.inc"

bool NeonSupported() {
#if defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

const Backend kNeonBackend = {
    "neon",            &NeonSupported,  &GenericGemmMicro,
    &GenericGemmSmall, &GenericQgemmS8, &GenericQgemmBf16,
};

}  // namespace

const Backend& NeonBackend() { return kNeonBackend; }

}  // namespace kernels
}  // namespace autocts
