#include "tensor/gradcheck.h"

#include <cmath>

#include "common/check.h"

namespace autocts {

GradCheckResult GradCheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double epsilon, double tolerance) {
  // Analytic pass.
  for (Tensor& in : inputs) {
    CHECK(in.requires_grad()) << "gradcheck inputs must require grad";
    in.ZeroGrad();
  }
  Tensor loss = fn(inputs);
  CHECK_EQ(loss.numel(), 1) << "gradcheck expects a scalar loss";
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (Tensor& in : inputs) analytic.push_back(in.grad());

  GradCheckResult result;
  for (size_t ii = 0; ii < inputs.size(); ++ii) {
    Tensor& in = inputs[ii];
    for (int64_t e = 0; e < in.numel(); ++e) {
      float original = in.data()[static_cast<size_t>(e)];
      in.data()[static_cast<size_t>(e)] =
          original + static_cast<float>(epsilon);
      double plus = fn(inputs).item();
      in.data()[static_cast<size_t>(e)] =
          original - static_cast<float>(epsilon);
      double minus = fn(inputs).item();
      in.data()[static_cast<size_t>(e)] = original;
      double numeric = (plus - minus) / (2.0 * epsilon);
      double got = analytic[ii][static_cast<size_t>(e)];
      double rel =
          std::fabs(got - numeric) / std::max(1.0, std::fabs(numeric));
      if (rel > result.max_relative_error) {
        result.max_relative_error = rel;
        result.worst_input = static_cast<int>(ii);
        result.worst_element = e;
      }
    }
  }
  result.ok = result.max_relative_error <= tolerance;
  return result;
}

}  // namespace autocts
