#ifndef REPRO_TENSOR_OPS_H_
#define REPRO_TENSOR_OPS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace autocts {

/// Differentiable tensor operations. All ops return fresh tensors on the
/// autograd tape (when any input requires grad) and CHECK-fail on shape
/// mismatches. Elementwise binaries follow numpy broadcasting.

/// ---- Elementwise binary (broadcasting) ----------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// ---- Scalar variants -----------------------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

/// ---- Elementwise unary ----------------------------------------------------
Tensor Neg(const Tensor& x);
Tensor Exp(const Tensor& x);
/// Natural log of max(x, eps) for numeric safety.
Tensor Log(const Tensor& x, float eps = 1e-12f);
Tensor Sqrt(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Relu(const Tensor& x);
Tensor LeakyRelu(const Tensor& x, float slope = 0.01f);
Tensor Abs(const Tensor& x);
Tensor Square(const Tensor& x);

/// ---- Linear algebra -------------------------------------------------------

/// Matrix product. Supports [m,k]x[k,n], and batched [B...,m,k]x[B...,k,n]
/// with identical batch dims; a 2-D operand broadcasts across the other's
/// batch dims.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Swaps dimensions d0 and d1 (materializing; negative indices allowed).
Tensor Transpose(const Tensor& x, int d0, int d1);

/// ---- Shape --------------------------------------------------------------

/// Reshapes to `shape`; a single -1 entry is inferred.
Tensor Reshape(const Tensor& x, std::vector<int> shape);

/// Concatenates tensors along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

/// Contiguous sub-range [start, start+length) along `axis`.
Tensor Slice(const Tensor& x, int axis, int start, int length);

/// Rows of `x` along `axis` at the given indices (duplicates allowed).
/// Backward scatter-adds, so it doubles as embedding lookup.
Tensor IndexSelect(const Tensor& x, int axis, const std::vector<int>& indices);

/// ---- Reductions -----------------------------------------------------------

/// Sum over one axis. With keepdim the axis stays with size 1.
Tensor Sum(const Tensor& x, int axis, bool keepdim = false);
Tensor Mean(const Tensor& x, int axis, bool keepdim = false);
/// Sum/mean of all elements → scalar (shape {1}).
Tensor SumAll(const Tensor& x);
Tensor MeanAll(const Tensor& x);

/// Numerically stable softmax along `axis`.
Tensor Softmax(const Tensor& x, int axis);

/// ---- Convolution -----------------------------------------------------------

/// Causal dilated 1-D convolution.
///   x: [rows, T, c_in]   w: [kernel, c_in, c_out]   b: [c_out] or undefined
/// Tap k of the kernel reads x at time t - k*dilation (zero-padded), so the
/// output never looks into the future and keeps length T.
Tensor CausalConv1d(const Tensor& x, const Tensor& w, const Tensor& b,
                    int dilation);

/// ---- Regularization ---------------------------------------------------------

/// Inverted dropout: keeps each element with prob 1-p and rescales by
/// 1/(1-p). Identity when !training or p == 0.
Tensor Dropout(const Tensor& x, float p, Rng* rng, bool training);

/// ---- Losses (scalar outputs) -------------------------------------------------

/// Mean absolute error between pred and target (same shape).
Tensor MaeLoss(const Tensor& pred, const Tensor& target);
/// Mean squared error.
Tensor MseLoss(const Tensor& pred, const Tensor& target);
/// Binary cross entropy on probabilities in (0,1); target in [0,1].
Tensor BceLoss(const Tensor& prob, const Tensor& target);

}  // namespace autocts

#endif  // REPRO_TENSOR_OPS_H_
