#include "tensor/fused.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/runtime_config.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/plan.h"

// Same internal 32-byte vector type as gemm.cc; ABI warning is noise.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace autocts {
namespace {

/// 8-wide float vector (see tensor/gemm.cc). Used only for elementwise
/// passes — per-lane mul/div/add with no horizontal reduction — so lane j
/// runs exactly the scalar op sequence for element j and vectorization
/// cannot change a single bit. Reductions (means, variances, softmax
/// denominators, parameter-gradient sums) stay scalar in ascending index
/// order: that *is* the order the op-graph composition accumulates in, and
/// it is what makes the kernels thread-count invariant.
typedef float v8 __attribute__((vector_size(32)));
typedef float v8u __attribute__((vector_size(32), aligned(4)));

inline v8 Load8(const float* p) { return *reinterpret_cast<const v8u*>(p); }
inline void Store8(float* p, v8 v) { *reinterpret_cast<v8u*>(p) = v; }
inline v8 Splat(float x) { return v8{x, x, x, x, x, x, x, x}; }

constexpr int64_t kElemGrain = kParallelGrainWork;

std::atomic<bool> g_fused_enabled{GlobalRuntimeConfig().fused_kernels};

/// Rows x n geometry of a tensor normalized/activated over its last dim.
void LastAxisGeometry(const Tensor& x, int64_t* rows, int* n) {
  CHECK_GE(x.ndim(), 1);
  *n = x.dim(-1);
  CHECK_GT(*n, 0);
  *rows = x.numel() / *n;
}

/// Forward value of `act` — the same expressions as the UnaryOp lambdas in
/// tensor/ops.cc (bit-exactness depends on it).
inline float ActForward(FusedAct act, float v, float slope) {
  switch (act) {
    case FusedAct::kRelu:
      return v > 0.0f ? v : 0.0f;
    case FusedAct::kLeakyRelu:
      return v > 0.0f ? v : slope * v;
    case FusedAct::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case FusedAct::kTanh:
      return std::tanh(v);
  }
  return v;  // Unreachable.
}

/// Local derivative of `act`, taking the pre-activation v and the stored
/// output y — mirroring which of the two each UnaryOp's dydx actually reads.
inline float ActBackward(FusedAct act, float v, float y, float slope) {
  switch (act) {
    case FusedAct::kRelu:
      return v > 0.0f ? 1.0f : 0.0f;
    case FusedAct::kLeakyRelu:
      return v > 0.0f ? 1.0f : slope;
    case FusedAct::kSigmoid:
      return y * (1.0f - y);
    case FusedAct::kTanh:
      return 1.0f - y * y;
  }
  return 1.0f;  // Unreachable.
}

/// Flat index map of a d0<->d1 transpose: output index i (row-major in the
/// transposed shape) reads source index Src(i) (row-major in `view_shape`).
/// Identical arithmetic to MapOffset + permuted strides in ops.cc Transpose.
struct PermuteMap {
  std::vector<int> out_shape;
  std::vector<int64_t> out_strides;
  std::vector<int64_t> src_strides;

  PermuteMap(const std::vector<int>& view_shape, int d0, int d1) {
    out_shape = view_shape;
    std::swap(out_shape[static_cast<size_t>(d0)],
              out_shape[static_cast<size_t>(d1)]);
    out_strides = Strides(out_shape);
    src_strides = Strides(view_shape);
    std::swap(src_strides[static_cast<size_t>(d0)],
              src_strides[static_cast<size_t>(d1)]);
  }

  int64_t Src(int64_t i) const {
    int64_t off = 0;
    for (size_t d = 0; d < out_shape.size(); ++d) {
      off += ((i / out_strides[d]) % out_shape[d]) * src_strides[d];
    }
    return off;
  }
};

/// Shared core of the two permute-pair fusions: one gather node whose flat
/// output order is Transpose(view, d0, d1) of a tensor flat-identical to x,
/// reinterpreted as `final_shape`. Reshape is a flat copy, so composing it
/// with the transpose on either side only relabels the shape — the element
/// permutation (and therefore every float) is untouched. The backward
/// scatter inverts a bijection: disjoint writes, safely parallel.
Tensor PermutedCopy(const Tensor& x, const std::vector<int>& view_shape,
                    int d0, int d1, std::vector<int> final_shape) {
  const int64_t count = x.numel();
  CHECK_EQ(NumElements(view_shape), count);
  CHECK_EQ(NumElements(final_shape), count);
  const int nd = static_cast<int>(view_shape.size());
  if (d0 < 0) d0 += nd;
  if (d1 < 0) d1 += nd;
  CHECK_GE(d0, 0);
  CHECK_LT(d0, nd);
  CHECK_GE(d1, 0);
  CHECK_LT(d1, nd);
  PermuteMap map(view_shape, d0, d1);
  std::vector<float> out = BufferPool::Global().Acquire(count);
  auto kernel = [map, count](const float* xp, float* op) {
    ParallelFor(0, count, kElemGrain / 4, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) op[i] = xp[map.Src(i)];
    });
  };
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, map, count](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    float* gx = tx.grad().data();
    ParallelFor(0, count, kElemGrain / 4, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) gx[map.Src(i)] += g[i];
    });
  };
  Tensor result = Tensor::MakeFromOp(std::move(final_shape), std::move(out),
                                     {x}, std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

Tensor ApplyActOp(const Tensor& x, FusedAct act, float slope) {
  switch (act) {
    case FusedAct::kRelu:
      return Relu(x);
    case FusedAct::kLeakyRelu:
      return LeakyRelu(x, slope);
    case FusedAct::kSigmoid:
      return Sigmoid(x);
    case FusedAct::kTanh:
      return Tanh(x);
  }
  return x;  // Unreachable.
}

}  // namespace

bool FusedKernelsEnabled() {
  return g_fused_enabled.load(std::memory_order_relaxed);
}

void SetFusedKernelsEnabled(bool enabled) {
  g_fused_enabled.store(enabled, std::memory_order_relaxed);
}

Tensor ApplyFusedAct(const Tensor& x, FusedAct act, float slope) {
  return ApplyActOp(x, act, slope);
}

/// ---- Reference compositions -----------------------------------------------

Tensor LayerNormReference(const Tensor& x, const Tensor& gamma,
                          const Tensor& beta, float eps) {
  Tensor mu = Mean(x, -1, /*keepdim=*/true);
  Tensor centered = Sub(x, mu);
  Tensor var = Mean(Square(centered), -1, /*keepdim=*/true);
  Tensor norm = Div(centered, Sqrt(AddScalar(var, eps)));
  return Add(Mul(norm, gamma), beta);
}

Tensor GluReference(const Tensor& a, const Tensor& b) {
  return Mul(Tanh(a), Sigmoid(b));
}

Tensor SoftmaxScaleReference(const Tensor& x, float scale) {
  if (scale == 1.0f) return Softmax(x, -1);
  return Softmax(MulScalar(x, scale), -1);
}

Tensor BiasActReference(const Tensor& x, const Tensor& bias, FusedAct act,
                        float slope) {
  return ApplyActOp(Add(x, bias), act, slope);
}

Tensor AddActReference(const Tensor& a, const Tensor& b, FusedAct act,
                       float slope) {
  return ApplyActOp(Add(a, b), act, slope);
}

Tensor ScalarScaleReference(const Tensor& x, const Tensor& s, float shift) {
  return Mul(x, AddScalar(s, shift));
}

Tensor ReshapeTransposeReference(const Tensor& x, std::vector<int> mid_shape,
                                 int d0, int d1) {
  return Transpose(Reshape(x, std::move(mid_shape)), d0, d1);
}

Tensor TransposeReshapeReference(const Tensor& x, int d0, int d1,
                                 std::vector<int> out_shape) {
  return Reshape(Transpose(x, d0, d1), std::move(out_shape));
}

Tensor AddNReference(const std::vector<Tensor>& parts) {
  CHECK(!parts.empty());
  Tensor acc = parts[0];
  for (size_t p = 1; p < parts.size(); ++p) acc = Add(acc, parts[p]);
  return acc;
}

Tensor AddLayerNormReference(const Tensor& a, const Tensor& b,
                             const Tensor& gamma, const Tensor& beta,
                             float eps) {
  return LayerNormReference(Add(a, b), gamma, beta, eps);
}

Tensor ReluSoftmaxReference(const Tensor& x) {
  return Softmax(Relu(x), -1);
}

Tensor MaeLossReference(const Tensor& pred, const Tensor& target) {
  return MeanAll(Abs(Sub(pred, target)));
}

/// ---- FusedLayerNorm -------------------------------------------------------
///
/// The composition is 9 tape nodes (Sum, MulScalar, Sub, Square, Sum,
/// MulScalar, AddScalar+Sqrt inside the Div chain, Mul, Add). Its backward
/// replay, in reverse topological order, executes:
///   Add -> Mul -> Div -> Sqrt -> AddScalar -> MulScalar -> Sum(sq)
///   -> Square -> Sub -> MulScalar -> Sum(x)
/// The fused kernel transcribes that sequence literally per row:
///   gnorm_j = (g_j * 1) * gamma_j            (Add, Mul backward)
///   gsd     = sum_j gnorm_j * (-c_j/sd^2)    (Div, ascending j)
///   gs2     = gsd * (0.5/max(sd,1e-12)) * invn
///   gc_j    = gnorm_j * (1/sd) + gs2 * 2c_j  (Div + Square, in that order)
///   gx_j   += gc_j;  gmu = sum_j gc_j * -1   (Sub, ascending j)
///   gx_j   += gmu * invn                     (Sum(x), second pass)
/// dgamma_j / dbeta_j fold rows in ascending order per column — the exact
/// order the serial broadcast backward of Mul/Add visits them.

Tensor FusedLayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                      float eps) {
  if (!FusedKernelsEnabled()) return LayerNormReference(x, gamma, beta, eps);
  int64_t rows;
  int n;
  LastAxisGeometry(x, &rows, &n);
  CHECK_EQ(gamma.ndim(), 1);
  CHECK_EQ(gamma.dim(0), n);
  CHECK_EQ(beta.ndim(), 1);
  CHECK_EQ(beta.dim(0), n);
  const float invn = 1.0f / static_cast<float>(n);
  BufferPool& pool = BufferPool::Global();
  std::vector<float> out = pool.Acquire(x.numel());
  // Per-row (mean, stddev) cached for backward. Wrapped in a Tensor (created
  // up front so a recording plan can bind it as a second output of this op's
  // thunk) so the buffer rides the closure's lifetime and returns to the
  // pool with it.
  Tensor stats_t = Tensor::FromVector({static_cast<int>(rows), 2},
                                      pool.Acquire(rows * 2));
  auto kernel = [rows, n, invn, eps](const float* xd, const float* gd,
                                     const float* bd, float* od, float* st) {
    ParallelFor(0, rows, GrainFor(4 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = xd + r * n;
        float* orow = od + r * n;
        float sum = 0.0f;
        for (int j = 0; j < n; ++j) sum += xr[j];
        const float mu = sum * invn;
        float sq = 0.0f;
        for (int j = 0; j < n; ++j) {
          const float c = xr[j] - mu;
          orow[j] = c;  // Stash centered values; overwritten below.
          sq += c * c;
        }
        const float sd = std::sqrt(sq * invn + eps);
        st[2 * r] = mu;
        st[2 * r + 1] = sd;
        const v8 vsd = Splat(sd);
        int j = 0;
        for (; j + 8 <= n; j += 8) {
          Store8(orow + j,
                 (Load8(orow + j) / vsd) * Load8(gd + j) + Load8(bd + j));
        }
        for (; j < n; ++j) orow[j] = (orow[j] / sd) * gd[j] + bd[j];
      }
    });
  };
  kernel(x.data().data(), gamma.data().data(), beta.data().data(), out.data(),
         stats_t.data().data());
  Tensor tx = x, tgamma = gamma, tbeta = beta;
  auto backward = [tx, tgamma, tbeta, stats_t, rows, n,
                   invn](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    const float* xd = tx.data().data();
    const float* gd = tgamma.data().data();
    const float* st = stats_t.data().data();
    float* gx = tx.grad().data();
    // dX: rows are independent (disjoint writes per chunk).
    ParallelFor(0, rows, GrainFor(6 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float mu = st[2 * r];
        const float sd = st[2 * r + 1];
        const float q = 1.0f / sd;
        const float sd2 = sd * sd;
        const float* gr = g + r * n;
        const float* xr = xd + r * n;
        float* gxr = gx + r * n;
        float gsd = 0.0f;
        for (int j = 0; j < n; ++j) {
          const float gn = gr[j] * gd[j];
          const float c = xr[j] - mu;
          gsd += gn * (-c / sd2);
        }
        const float gs2 = (gsd * (0.5f / std::max(sd, 1e-12f))) * invn;
        float gmu = 0.0f;
        for (int j = 0; j < n; ++j) {
          const float gn = gr[j] * gd[j];
          const float c = xr[j] - mu;
          const float gc = gn * q + gs2 * (2.0f * c);
          gxr[j] += gc;
          gmu += gc * -1.0f;
        }
        const float gs1 = gmu * invn;
        for (int j = 0; j < n; ++j) gxr[j] += gs1;
      }
    });
    // dGamma/dBeta: one slot per column; parallel over columns with a fixed
    // ascending-row fold per slot (the serial broadcast backward's order).
    float* gg = tgamma.grad().data();
    float* gb = tbeta.grad().data();
    ParallelFor(0, n, GrainFor(2 * rows), [&](int64_t j0, int64_t j1) {
      for (int64_t j = j0; j < j1; ++j) {
        float accg = gg[j];
        float accb = gb[j];
        for (int64_t r = 0; r < rows; ++r) {
          const float gv = g[r * n + j];
          const float c = xd[r * n + j] - st[2 * r];
          accg += gv * (c / st[2 * r + 1]);
          accb += gv;
        }
        gg[j] = accg;
        gb[j] = accb;
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(x.shape(), std::move(out),
                                     {x, gamma, beta}, std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), ig = plan::In(gamma), ib = plan::In(beta);
    const int io = plan::Out(result), is = plan::Out(stats_t);
    plan::Commit([kernel, ix, ig, ib, io, is](float* const* bufs) {
      kernel(bufs[ix], bufs[ig], bufs[ib], bufs[io], bufs[is]);
    });
  }
  return result;
}

/// ---- FusedGlu -------------------------------------------------------------

Tensor FusedGlu(const Tensor& a, const Tensor& b) {
  if (!FusedKernelsEnabled()) return GluReference(a, b);
  CHECK(a.shape() == b.shape());
  const int64_t count = a.numel();
  std::vector<float> out = BufferPool::Global().Acquire(count);
  auto kernel = [count](const float* ad, const float* bd, float* od) {
    ParallelFor(0, count, kElemGrain / 4, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float t = std::tanh(ad[i]);
        const float s = 1.0f / (1.0f + std::exp(-bd[i]));
        od[i] = t * s;
      }
    });
  };
  kernel(a.data().data(), b.data().data(), out.data());
  Tensor ta = a, tb = b;
  auto backward = [ta, tb, count](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    const float* ad = ta.data().data();
    const float* bd = tb.data().data();
    float* ga = ta.grad().data();
    float* gb = tb.grad().data();
    ParallelFor(0, count, kElemGrain / 4, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float t = std::tanh(ad[i]);
        const float s = 1.0f / (1.0f + std::exp(-bd[i]));
        // Mul backward hands g*s to Tanh and g*t to Sigmoid; each then
        // multiplies its local derivative — same expressions as ops.cc.
        ga[i] += (g[i] * s) * (1.0f - t * t);
        gb[i] += (g[i] * t) * (s * (1.0f - s));
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(a.shape(), std::move(out), {a, b},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ia = plan::In(a), ib = plan::In(b), io = plan::Out(result);
    plan::Commit([kernel, ia, ib, io](float* const* bufs) {
      kernel(bufs[ia], bufs[ib], bufs[io]);
    });
  }
  return result;
}

/// ---- FusedSoftmax ---------------------------------------------------------

Tensor FusedSoftmax(const Tensor& x, float scale) {
  if (!FusedKernelsEnabled()) return SoftmaxScaleReference(x, scale);
  int64_t rows;
  int n;
  LastAxisGeometry(x, &rows, &n);
  std::vector<float> out = BufferPool::Global().Acquire(x.numel());
  auto kernel = [rows, n, scale](const float* xd, float* od) {
    ParallelFor(0, rows, GrainFor(3 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = xd + r * n;
        float* orow = od + r * n;
        // Scale into the output buffer (x * 1.0f is exact, so scale == 1
        // reproduces the plain Softmax bit-for-bit), tracking the max with
        // the same ascending std::max fold as the unfused kernel.
        float mx = -std::numeric_limits<float>::infinity();
        for (int j = 0; j < n; ++j) {
          const float v = xr[j] * scale;
          orow[j] = v;
          mx = std::max(mx, v);
        }
        float denom = 0.0f;
        for (int j = 0; j < n; ++j) {
          orow[j] = std::exp(orow[j] - mx);
          denom += orow[j];
        }
        const v8 vden = Splat(denom);
        int j = 0;
        for (; j + 8 <= n; j += 8) Store8(orow + j, Load8(orow + j) / vden);
        for (; j < n; ++j) orow[j] /= denom;
      }
    });
  };
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, rows, n, scale](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    const float* y = node.data.data();
    float* gx = tx.grad().data();
    ParallelFor(0, rows, GrainFor(2 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* gr = g + r * n;
        const float* yr = y + r * n;
        float* gxr = gx + r * n;
        float dot = 0.0f;
        for (int j = 0; j < n; ++j) dot += gr[j] * yr[j];
        for (int j = 0; j < n; ++j) {
          gxr[j] += (yr[j] * (gr[j] - dot)) * scale;
        }
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(x.shape(), std::move(out), {x},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

/// ---- FusedBiasAct ---------------------------------------------------------

Tensor FusedBiasAct(const Tensor& x, const Tensor& bias, FusedAct act,
                    float slope) {
  if (!FusedKernelsEnabled()) return BiasActReference(x, bias, act, slope);
  int64_t rows;
  int n;
  LastAxisGeometry(x, &rows, &n);
  CHECK_EQ(bias.ndim(), 1);
  CHECK_EQ(bias.dim(0), n);
  std::vector<float> out = BufferPool::Global().Acquire(x.numel());
  auto kernel = [rows, n, act, slope](const float* xd, const float* bd,
                                      float* od) {
    ParallelFor(0, rows, GrainFor(2 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = xd + r * n;
        float* orow = od + r * n;
        for (int j = 0; j < n; ++j) {
          orow[j] = ActForward(act, xr[j] + bd[j], slope);
        }
      }
    });
  };
  kernel(x.data().data(), bias.data().data(), out.data());
  Tensor tx = x, tbias = bias;
  auto backward = [tx, tbias, rows, n, act,
                   slope](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    const float* y = node.data.data();
    const float* xd = tx.data().data();
    const float* bd = tbias.data().data();
    float* gx = tx.grad().data();
    // dX: elementwise, disjoint writes.
    ParallelFor(0, rows, GrainFor(3 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* gr = g + r * n;
        const float* yr = y + r * n;
        const float* xr = xd + r * n;
        float* gxr = gx + r * n;
        for (int j = 0; j < n; ++j) {
          gxr[j] += gr[j] * ActBackward(act, xr[j] + bd[j], yr[j], slope);
        }
      }
    });
    // dBias: one slot per column, ascending-row fold (the order the serial
    // broadcast Add backward visits it).
    float* gb = tbias.grad().data();
    ParallelFor(0, n, GrainFor(2 * rows), [&](int64_t j0, int64_t j1) {
      for (int64_t j = j0; j < j1; ++j) {
        float acc = gb[j];
        for (int64_t r = 0; r < rows; ++r) {
          const int64_t i = r * n + j;
          acc += g[i] * ActBackward(act, xd[i] + bd[j], y[i], slope);
        }
        gb[j] = acc;
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(x.shape(), std::move(out), {x, bias},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), ib = plan::In(bias), io = plan::Out(result);
    plan::Commit([kernel, ix, ib, io](float* const* bufs) {
      kernel(bufs[ix], bufs[ib], bufs[io]);
    });
  }
  return result;
}

/// ---- FusedAddAct ----------------------------------------------------------

Tensor FusedAddAct(const Tensor& a, const Tensor& b, FusedAct act,
                   float slope) {
  if (!FusedKernelsEnabled()) return AddActReference(a, b, act, slope);
  CHECK(a.shape() == b.shape());
  const int64_t count = a.numel();
  std::vector<float> out = BufferPool::Global().Acquire(count);
  auto kernel = [count, act, slope](const float* ad, const float* bd,
                                    float* od) {
    ParallelFor(0, count, kElemGrain / 2, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        od[i] = ActForward(act, ad[i] + bd[i], slope);
      }
    });
  };
  kernel(a.data().data(), b.data().data(), out.data());
  Tensor ta = a, tb = b;
  auto backward = [ta, tb, count, act,
                   slope](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    const float* y = node.data.data();
    const float* ad = ta.data().data();
    const float* bd = tb.data().data();
    float* ga = ta.grad().data();
    float* gb = tb.grad().data();
    ParallelFor(0, count, kElemGrain / 2, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float gv = g[i] * ActBackward(act, ad[i] + bd[i], y[i], slope);
        ga[i] += gv;
        gb[i] += gv;
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(a.shape(), std::move(out), {a, b},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ia = plan::In(a), ib = plan::In(b), io = plan::Out(result);
    plan::Commit([kernel, ia, ib, io](float* const* bufs) {
      kernel(bufs[ia], bufs[ib], bufs[io]);
    });
  }
  return result;
}

/// ---- FusedScalarScale -----------------------------------------------------

Tensor FusedScalarScale(const Tensor& x, const Tensor& s, float shift) {
  if (!FusedKernelsEnabled()) return ScalarScaleReference(x, s, shift);
  CHECK_EQ(s.numel(), 1);
  const int64_t count = x.numel();
  std::vector<float> out = BufferPool::Global().Acquire(count);
  // The scalar is read at call time (sd[0]), not frozen into the lambda: s
  // is typically a learnable parameter, so a replaying plan must see the
  // value the optimizer last wrote — same for the backward closure below.
  auto kernel = [count, shift](const float* xd, const float* sd, float* od) {
    const float t = sd[0] + shift;
    const v8 vt = Splat(t);
    ParallelFor(0, count, kElemGrain, [&](int64_t i0, int64_t i1) {
      int64_t i = i0;
      for (; i + 8 <= i1; i += 8) Store8(od + i, Load8(xd + i) * vt);
      for (; i < i1; ++i) od[i] = xd[i] * t;
    });
  };
  kernel(x.data().data(), s.data().data(), out.data());
  Tensor tx = x, ts = s;
  auto backward = [tx, ts, count, shift](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    const float* xd = tx.data().data();
    float* gx = tx.grad().data();
    const float t = ts.data()[0] + shift;
    const v8 vt = Splat(t);
    ParallelFor(0, count, kElemGrain, [&](int64_t i0, int64_t i1) {
      int64_t i = i0;
      for (; i + 8 <= i1; i += 8) {
        Store8(gx + i, Load8(gx + i) + Load8(g + i) * vt);
      }
      for (; i < i1; ++i) gx[i] += g[i] * t;
    });
    // dS folds every element into one slot; the broadcast Mul backward it
    // replaces was fully serial ascending, so this stays serial ascending.
    float acc = 0.0f;
    for (int64_t i = 0; i < count; ++i) acc += g[i] * xd[i];
    ts.grad()[0] += acc * 1.0f;
  };
  Tensor result = Tensor::MakeFromOp(x.shape(), std::move(out), {x, s},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), is = plan::In(s), io = plan::Out(result);
    plan::Commit([kernel, ix, is, io](float* const* bufs) {
      kernel(bufs[ix], bufs[is], bufs[io]);
    });
  }
  return result;
}

/// ---- Permute-pair fusions -------------------------------------------------
///
/// Reshape is a full flat copy and Transpose a full permuted copy — the
/// composition moves every element twice and tapes two nodes. Each fusion
/// below is one gather node: pure data movement, so bit-exactness needs no
/// argument beyond "same permutation".

Tensor FusedReshapeTranspose(const Tensor& x, std::vector<int> mid_shape,
                             int d0, int d1) {
  if (!FusedKernelsEnabled()) {
    return ReshapeTransposeReference(x, std::move(mid_shape), d0, d1);
  }
  // Output shape is mid_shape with d0/d1 swapped; flat order is the
  // transpose's gather over the (flat-identical to x) reshaped view.
  const int nd = static_cast<int>(mid_shape.size());
  int p0 = d0 < 0 ? d0 + nd : d0;
  int p1 = d1 < 0 ? d1 + nd : d1;
  std::vector<int> final_shape = mid_shape;
  std::swap(final_shape[static_cast<size_t>(p0)],
            final_shape[static_cast<size_t>(p1)]);
  return PermutedCopy(x, mid_shape, d0, d1, std::move(final_shape));
}

Tensor FusedTransposeReshape(const Tensor& x, int d0, int d1,
                             std::vector<int> out_shape) {
  if (!FusedKernelsEnabled()) {
    return TransposeReshapeReference(x, d0, d1, std::move(out_shape));
  }
  // The transpose permutes x's own shape; the trailing reshape only
  // relabels the result, so the caller's out_shape is the node's shape.
  return PermutedCopy(x, x.shape(), d0, d1, std::move(out_shape));
}

/// ---- FusedAddN -------------------------------------------------------------

Tensor FusedAddN(const std::vector<Tensor>& parts) {
  CHECK(!parts.empty());
  if (parts.size() == 1) return parts[0];
  if (!FusedKernelsEnabled()) return AddNReference(parts);
  const int64_t count = parts[0].numel();
  const size_t k = parts.size();
  std::vector<const float*> src;
  src.reserve(k);
  for (const Tensor& p : parts) {
    CHECK(p.shape() == parts[0].shape());
    src.push_back(p.data().data());
  }
  std::vector<float> out = BufferPool::Global().Acquire(count);
  auto kernel = [count, k](const float* const* sp, float* od) {
    ParallelFor(0, count, kElemGrain / 2, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        // The chained composition is the left fold ((p0 + p1) + p2) + ...
        float acc = sp[0][i] + sp[1][i];
        for (size_t p = 2; p < k; ++p) acc += sp[p][i];
        od[i] = acc;
      }
    });
  };
  kernel(src.data(), out.data());
  std::vector<Tensor> held = parts;
  auto backward = [held, count](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    // Each part's grad slot gets exactly one += g[i] * 1 from this node.
    // The Add chain delivers the same single contribution per part (in
    // reverse part order, which IEEE addition's commutativity makes
    // bit-irrelevant for a lone contribution). Caveat: listing the SAME
    // tensor three or more times would order >= 3 contributions into one
    // slot differently — no call site does that.
    for (Tensor& p : held) {
      float* gp = p.grad().data();
      ParallelFor(0, count, kElemGrain / 2, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) gp[i] += g[i] * 1.0f;
      });
    }
  };
  Tensor result = Tensor::MakeFromOp(parts[0].shape(), std::move(out), parts,
                                     std::move(backward));
  if (plan::Recording()) {
    std::vector<int> part_slots;
    part_slots.reserve(k);
    for (const Tensor& p : parts) part_slots.push_back(plan::In(p));
    const int io = plan::Out(result);
    plan::Commit([kernel, part_slots, io](float* const* bufs) {
      std::vector<const float*> sp;
      sp.reserve(part_slots.size());
      for (int slot : part_slots) sp.push_back(bufs[slot]);
      kernel(sp.data(), bufs[io]);
    });
  }
  return result;
}

/// ---- FusedAddLayerNorm ----------------------------------------------------
///
/// FusedLayerNorm with x_j = a_j + b_j computed inline (the residual Add
/// never materializes). The composition's Add backward hands the LN input
/// gradient (gc_j accumulated with gs1) to BOTH parents with partial 1, so
/// the only change from FusedLayerNorm's backward is the final pass: it
/// recomputes gc_j, forms gxv = gc_j + gs1, and adds gxv to ga and gb
/// instead of accumulating into a gx buffer in two passes. (0 + gc) + gs1
/// vs gc + gs1 differ only in the sign of an exact zero, which cannot
/// change any accumulated bits — see the determinism note in fused.h.

Tensor FusedAddLayerNorm(const Tensor& a, const Tensor& b,
                         const Tensor& gamma, const Tensor& beta, float eps) {
  if (!FusedKernelsEnabled()) {
    return AddLayerNormReference(a, b, gamma, beta, eps);
  }
  CHECK(a.shape() == b.shape());
  int64_t rows;
  int n;
  LastAxisGeometry(a, &rows, &n);
  CHECK_EQ(gamma.ndim(), 1);
  CHECK_EQ(gamma.dim(0), n);
  CHECK_EQ(beta.ndim(), 1);
  CHECK_EQ(beta.dim(0), n);
  const float invn = 1.0f / static_cast<float>(n);
  BufferPool& pool = BufferPool::Global();
  std::vector<float> out = pool.Acquire(a.numel());
  // Stats tensor created up front so a recording plan can bind it as a
  // second output of this op's thunk (see FusedLayerNorm).
  Tensor stats_t = Tensor::FromVector({static_cast<int>(rows), 2},
                                      pool.Acquire(rows * 2));
  auto kernel = [rows, n, invn, eps](const float* ad, const float* bd2,
                                     const float* gd, const float* bed,
                                     float* od, float* st) {
    ParallelFor(0, rows, GrainFor(5 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* ar = ad + r * n;
        const float* br = bd2 + r * n;
        float* orow = od + r * n;
        float sum = 0.0f;
        for (int j = 0; j < n; ++j) sum += ar[j] + br[j];
        const float mu = sum * invn;
        float sq = 0.0f;
        for (int j = 0; j < n; ++j) {
          const float c = (ar[j] + br[j]) - mu;
          orow[j] = c;  // Stash centered values; overwritten below.
          sq += c * c;
        }
        const float sd = std::sqrt(sq * invn + eps);
        st[2 * r] = mu;
        st[2 * r + 1] = sd;
        const v8 vsd = Splat(sd);
        int j = 0;
        for (; j + 8 <= n; j += 8) {
          Store8(orow + j,
                 (Load8(orow + j) / vsd) * Load8(gd + j) + Load8(bed + j));
        }
        for (; j < n; ++j) orow[j] = (orow[j] / sd) * gd[j] + bed[j];
      }
    });
  };
  kernel(a.data().data(), b.data().data(), gamma.data().data(),
         beta.data().data(), out.data(), stats_t.data().data());
  Tensor ta = a, tb = b, tgamma = gamma, tbeta = beta;
  auto backward = [ta, tb, tgamma, tbeta, stats_t, rows, n,
                   invn](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    const float* ad = ta.data().data();
    const float* bd2 = tb.data().data();
    const float* gd = tgamma.data().data();
    const float* st = stats_t.data().data();
    float* ga = ta.grad().data();
    float* gb2 = tb.grad().data();
    ParallelFor(0, rows, GrainFor(8 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float mu = st[2 * r];
        const float sd = st[2 * r + 1];
        const float q = 1.0f / sd;
        const float sd2 = sd * sd;
        const float* gr = g + r * n;
        const float* ar = ad + r * n;
        const float* br = bd2 + r * n;
        float* gar = ga + r * n;
        float* gbr = gb2 + r * n;
        float gsd = 0.0f;
        for (int j = 0; j < n; ++j) {
          const float gn = gr[j] * gd[j];
          const float c = (ar[j] + br[j]) - mu;
          gsd += gn * (-c / sd2);
        }
        const float gs2 = (gsd * (0.5f / std::max(sd, 1e-12f))) * invn;
        float gmu = 0.0f;
        for (int j = 0; j < n; ++j) {
          const float gn = gr[j] * gd[j];
          const float c = (ar[j] + br[j]) - mu;
          const float gc = gn * q + gs2 * (2.0f * c);
          gmu += gc * -1.0f;
        }
        const float gs1 = gmu * invn;
        for (int j = 0; j < n; ++j) {
          const float gn = gr[j] * gd[j];
          const float c = (ar[j] + br[j]) - mu;
          const float gc = gn * q + gs2 * (2.0f * c);
          const float gxv = gc + gs1;
          gar[j] += gxv * 1.0f;
          gbr[j] += gxv * 1.0f;
        }
      }
    });
    float* gg = tgamma.grad().data();
    float* gbe = tbeta.grad().data();
    ParallelFor(0, n, GrainFor(2 * rows), [&](int64_t j0, int64_t j1) {
      for (int64_t j = j0; j < j1; ++j) {
        float accg = gg[j];
        float accb = gbe[j];
        for (int64_t r = 0; r < rows; ++r) {
          const float gv = g[r * n + j];
          const float c = (ad[r * n + j] + bd2[r * n + j]) - st[2 * r];
          accg += gv * (c / st[2 * r + 1]);
          accb += gv;
        }
        gg[j] = accg;
        gbe[j] = accb;
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(a.shape(), std::move(out),
                                     {a, b, gamma, beta}, std::move(backward));
  if (plan::Recording()) {
    const int ia = plan::In(a), ib = plan::In(b);
    const int ig = plan::In(gamma), ie = plan::In(beta);
    const int io = plan::Out(result), is = plan::Out(stats_t);
    plan::Commit([kernel, ia, ib, ig, ie, io, is](float* const* bufs) {
      kernel(bufs[ia], bufs[ib], bufs[ig], bufs[ie], bufs[io], bufs[is]);
    });
  }
  return result;
}

/// ---- FusedReluSoftmax -----------------------------------------------------

Tensor FusedReluSoftmax(const Tensor& x) {
  if (!FusedKernelsEnabled()) return ReluSoftmaxReference(x);
  int64_t rows;
  int n;
  LastAxisGeometry(x, &rows, &n);
  std::vector<float> out = BufferPool::Global().Acquire(x.numel());
  auto kernel = [rows, n](const float* xd, float* od) {
    ParallelFor(0, rows, GrainFor(3 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* xr = xd + r * n;
        float* orow = od + r * n;
        // Relu into the output buffer, then the plain softmax sequence —
        // the same ascending folds as Softmax over the Relu'd values.
        float mx = -std::numeric_limits<float>::infinity();
        for (int j = 0; j < n; ++j) {
          const float v = xr[j] > 0.0f ? xr[j] : 0.0f;
          orow[j] = v;
          mx = std::max(mx, v);
        }
        float denom = 0.0f;
        for (int j = 0; j < n; ++j) {
          orow[j] = std::exp(orow[j] - mx);
          denom += orow[j];
        }
        const v8 vden = Splat(denom);
        int j = 0;
        for (; j + 8 <= n; j += 8) Store8(orow + j, Load8(orow + j) / vden);
        for (; j < n; ++j) orow[j] /= denom;
      }
    });
  };
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, rows, n](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    const float* y = node.data.data();
    const float* xd = tx.data().data();
    float* gx = tx.grad().data();
    ParallelFor(0, rows, GrainFor(3 * n), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* gr = g + r * n;
        const float* yr = y + r * n;
        const float* xr = xd + r * n;
        float* gxr = gx + r * n;
        float dot = 0.0f;
        for (int j = 0; j < n; ++j) dot += gr[j] * yr[j];
        // Softmax backward hands y*(g - dot) to Relu, whose local
        // derivative is the ops.cc step function.
        for (int j = 0; j < n; ++j) {
          gxr[j] += (yr[j] * (gr[j] - dot)) * (xr[j] > 0.0f ? 1.0f : 0.0f);
        }
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(x.shape(), std::move(out), {x},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

/// ---- FusedMaeLoss ---------------------------------------------------------
///
/// mean(|pred - target|) is Sub + Abs + SumAll + MulScalar: three full
/// elementwise passes, a serial fold, and four tape nodes. Fused: one
/// serial ascending fold (SumAll's exact order) for the forward, one
/// parallel elementwise pass for the backward.

Tensor FusedMaeLoss(const Tensor& pred, const Tensor& target) {
  if (!FusedKernelsEnabled()) return MaeLossReference(pred, target);
  CHECK(pred.shape() == target.shape());
  const int64_t count = pred.numel();
  const float invn = 1.0f / static_cast<float>(count);
  auto kernel = [count, invn](const float* pd, const float* td, float* op) {
    float total = 0.0f;
    for (int64_t i = 0; i < count; ++i) total += std::fabs(pd[i] - td[i]);
    op[0] = total * invn;
  };
  float loss = 0.0f;
  kernel(pred.data().data(), target.data().data(), &loss);
  Tensor tp = pred, tt = target;
  auto backward = [tp, tt, count, invn](internal::TensorImpl& node) mutable {
    // MulScalar then SumAll broadcast: every element sees g[0] * invn.
    const float base = node.grad[0] * invn;
    const float* pd = tp.data().data();
    const float* td = tt.data().data();
    float* gp = tp.grad().data();
    float* gt = tt.grad().data();
    ParallelFor(0, count, kElemGrain / 2, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float d = pd[i] - td[i];
        // Abs backward's sign, then Sub's +1 / -1 partials.
        const float s = d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f);
        const float gd = base * s;
        gp[i] += gd * 1.0f;
        gt[i] += gd * -1.0f;
      }
    });
  };
  Tensor result = Tensor::MakeFromOp({1}, {loss}, {pred, target},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ip = plan::In(pred), it = plan::In(target);
    const int io = plan::Out(result);
    plan::Commit([kernel, ip, it, io](float* const* bufs) {
      kernel(bufs[ip], bufs[it], bufs[io]);
    });
  }
  return result;
}

}  // namespace autocts
