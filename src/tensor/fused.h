#ifndef REPRO_TENSOR_FUSED_H_
#define REPRO_TENSOR_FUSED_H_

#include "tensor/tensor.h"

namespace autocts {

/// Fused forward/backward kernels for the composite ops that dominate the
/// training hot path between GEMMs.
///
/// Each Fused* op collapses a small op-graph composition (LayerNorm is 9
/// tape nodes, the GLU gate is 3, softmax-with-scale is 2, bias+activation
/// is 2) into ONE tape node with a single-pass vectorized kernel per
/// direction. That halves tape nodes and BufferPool round-trips per
/// training step and removes the per-node full-tensor memory passes — the
/// glue cost that dominates once GEMM itself is cache-blocked.
///
/// Determinism contract (same as tensor/gemm.h): every fused kernel
/// replays the *exact* per-element floating-point operation sequence of the
/// op-graph composition it replaces — same ops, same order, including the
/// ascending-index accumulation order of every reduction — so outputs AND
/// gradients are bit-identical to the unfused path (memcmp-checked in
/// tests/fused_ops_test.cc) and invariant to thread count. The only
/// parallelism is over disjoint output ranges; shared-slot reductions
/// (bias/affine parameter gradients) are chunked over the *parameter* axis
/// with a fixed ascending-row accumulation per slot.
///
/// The op-graph composition of each kernel is retained as a *Reference
/// function: it is the fallback when fusion is disabled (the baseline the
/// microbenchmarks compare against) and the oracle the tests memcmp
/// against. To add a fused kernel: write the Reference composition first,
/// derive the per-element op sequence of its forward and of its backward
/// replay (reverse topological order), transcribe both literally, and add
/// the memcmp + gradcheck + thread-invariance cases to fused_ops_test.

/// Activation applied by the fused bias/add kernels. Derivative handling
/// matches the corresponding UnaryOp in tensor/ops.cc exactly.
enum class FusedAct { kRelu, kLeakyRelu, kSigmoid, kTanh };

/// Process-wide switch. On by default; set AUTOCTS_NO_FUSED=1 (or call
/// SetFusedKernelsEnabled(false)) to route every Fused* call through its
/// op-graph Reference composition instead — the A/B the ST-block training
/// benchmark measures. Fused and unfused paths are bit-identical, so the
/// toggle can never change results, only speed.
bool FusedKernelsEnabled();
void SetFusedKernelsEnabled(bool enabled);

/// ---- Fused kernels --------------------------------------------------------

/// LayerNorm over the last dimension with learnable affine:
///   (x - mean) / sqrt(var + eps) * gamma + beta
/// One tape node instead of nine; forward is one pass over x plus a cached
/// (mean, stddev) pair per row, backward three row-local passes instead of
/// the composition's ~twelve (several of which were serial broadcast
/// scatters).
Tensor FusedLayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                      float eps);

/// Gated linear unit gate: tanh(a) * sigmoid(b), elementwise, same shapes.
Tensor FusedGlu(const Tensor& a, const Tensor& b);

/// Numerically stable softmax(x * scale) along the LAST axis (the only
/// axis the model zoo uses). scale = 1.0f fuses a plain softmax; any other
/// value additionally absorbs the attention MulScalar node (x * 1.0f is
/// exact, so one kernel serves both).
Tensor FusedSoftmax(const Tensor& x, float scale);

/// bias-add + activation: act(x + bias) with bias broadcast over the last
/// dimension — the Linear epilogue (MatMul output + bias + ReLU et al).
Tensor FusedBiasAct(const Tensor& x, const Tensor& bias, FusedAct act,
                    float slope = 0.01f);

/// Same-shape add + activation: act(a + b) — the GRU gate pattern.
Tensor FusedAddAct(const Tensor& a, const Tensor& b, FusedAct act,
                   float slope = 0.01f);

/// x * (s[0] + shift) for a scalar (shape {1}) tensor s — GIN's (1+eps)*H.
/// Replaces a broadcast Mul whose backward was a fully serial scatter.
Tensor FusedScalarScale(const Tensor& x, const Tensor& s, float shift);

/// Transpose(Reshape(x, mid_shape), d0, d1) as ONE gather node — the
/// attention split-heads pattern ([B,L,D] -> [B,H,L,Dh]). The composition
/// moves every element twice (a full reshape copy plus a permuted copy) and
/// tapes two nodes; this is one permuted copy. Pure data movement, so
/// bit-exactness is trivial; the backward scatter is a bijection (disjoint
/// writes, safely parallel).
Tensor FusedReshapeTranspose(const Tensor& x, std::vector<int> mid_shape,
                             int d0, int d1);

/// Reshape(Transpose(x, d0, d1), out_shape) as ONE gather node — the
/// merge-heads pattern and the [B,N,T,H] <-> rows plumbing around spatial
/// attention.
Tensor FusedTransposeReshape(const Tensor& x, int d0, int d1,
                             std::vector<int> out_shape);

/// Left-fold sum of same-shape tensors: ((p0 + p1) + p2) + ... as ONE node —
/// the ST-block skip sum and the DGCN diffusion accumulator, whose Add
/// chains tape (and fully re-walk) a full tensor per term.
Tensor FusedAddN(const std::vector<Tensor>& parts);

/// LayerNorm(a + b) — the residual + post-norm backbone pattern. Folds the
/// elementwise Add into the normalization passes.
Tensor FusedAddLayerNorm(const Tensor& a, const Tensor& b,
                         const Tensor& gamma, const Tensor& beta, float eps);

/// softmax(relu(x)) along the last axis — the self-adaptive adjacency of
/// DGCN/MTGNN/AGCRN.
Tensor FusedReluSoftmax(const Tensor& x);

/// mean(|pred - target|) — the forecasting training loss; 4 tape nodes and
/// three full passes collapsed into one of each.
Tensor FusedMaeLoss(const Tensor& pred, const Tensor& target);

/// The single-op activation for `act` (Relu/LeakyRelu/Sigmoid/Tanh from
/// tensor/ops.h). Not fused — for call sites whose producer has nothing to
/// fuse with (e.g. a bias-free Linear).
Tensor ApplyFusedAct(const Tensor& x, FusedAct act, float slope = 0.01f);

/// ---- Op-graph reference compositions --------------------------------------
/// The exact multi-node graphs each fused kernel replaces. Used as the
/// dispatch target when fusion is disabled and as the bit-exactness oracle
/// in tests.

Tensor LayerNormReference(const Tensor& x, const Tensor& gamma,
                          const Tensor& beta, float eps);
Tensor GluReference(const Tensor& a, const Tensor& b);
Tensor SoftmaxScaleReference(const Tensor& x, float scale);
Tensor BiasActReference(const Tensor& x, const Tensor& bias, FusedAct act,
                        float slope = 0.01f);
Tensor AddActReference(const Tensor& a, const Tensor& b, FusedAct act,
                       float slope = 0.01f);
Tensor ScalarScaleReference(const Tensor& x, const Tensor& s, float shift);
Tensor ReshapeTransposeReference(const Tensor& x, std::vector<int> mid_shape,
                                 int d0, int d1);
Tensor TransposeReshapeReference(const Tensor& x, int d0, int d1,
                                 std::vector<int> out_shape);
Tensor AddNReference(const std::vector<Tensor>& parts);
Tensor AddLayerNormReference(const Tensor& a, const Tensor& b,
                             const Tensor& gamma, const Tensor& beta,
                             float eps);
Tensor ReluSoftmaxReference(const Tensor& x);
Tensor MaeLossReference(const Tensor& pred, const Tensor& target);

}  // namespace autocts

#endif  // REPRO_TENSOR_FUSED_H_
