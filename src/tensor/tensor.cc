#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "tensor/buffer_pool.h"
#include "tensor/plan.h"

namespace autocts {

namespace {
/// Live tape nodes created on this thread; see LiveTapeNodesThisThread().
thread_local uint64_t t_live_tape_nodes = 0;
/// NoGradScope nesting depth on this thread.
thread_local int t_no_grad_depth = 0;
}  // namespace

namespace internal {

TensorImpl::~TensorImpl() {
  if (backward) --t_live_tape_nodes;
  BufferPool& pool = BufferPool::Global();
  // TakeOwned is empty for borrowed storage: external memory (and its
  // keepalive) is released to its owner, never to the pool.
  pool.Release(data.TakeOwned());
  pool.Release(std::move(grad));
}

void TensorImpl::EnsureGrad() {
  if (grad.size() != data.size()) {
    BufferPool& pool = BufferPool::Global();
    pool.Release(std::move(grad));
    grad = pool.AcquireZeroed(static_cast<int64_t>(data.size()));
  }
}

}  // namespace internal

int64_t NumElements(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) {
    CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::vector<int64_t> Strides(const std::vector<int>& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

namespace {

std::shared_ptr<internal::TensorImpl> NewImpl(std::vector<int> shape,
                                              std::vector<float> data,
                                              bool requires_grad) {
  CHECK_EQ(static_cast<int64_t>(data.size()), NumElements(shape));
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  return impl;
}

}  // namespace

Tensor Tensor::Zeros(std::vector<int> shape, bool requires_grad) {
  int64_t n = NumElements(shape);
  return Tensor(NewImpl(std::move(shape), BufferPool::Global().AcquireZeroed(n),
                        requires_grad));
}

Tensor Tensor::Full(std::vector<int> shape, float value, bool requires_grad) {
  int64_t n = NumElements(shape);
  std::vector<float> data = BufferPool::Global().Acquire(n);
  std::fill(data.begin(), data.end(), value);
  return Tensor(NewImpl(std::move(shape), std::move(data), requires_grad));
}

Tensor Tensor::FromVector(std::vector<int> shape, std::vector<float> data,
                          bool requires_grad) {
  return Tensor(NewImpl(std::move(shape), std::move(data), requires_grad));
}

Tensor Tensor::Randn(std::vector<int> shape, Rng* rng, float stddev,
                     bool requires_grad) {
  int64_t n = NumElements(shape);
  std::vector<float> data = BufferPool::Global().Acquire(n);
  for (auto& v : data) v = rng->Normal(0.0f, stddev);
  return Tensor(NewImpl(std::move(shape), std::move(data), requires_grad));
}

Tensor Tensor::Rand(std::vector<int> shape, Rng* rng, float lo, float hi,
                    bool requires_grad) {
  int64_t n = NumElements(shape);
  std::vector<float> data = BufferPool::Global().Acquire(n);
  for (auto& v : data) v = rng->Uniform(lo, hi);
  return Tensor(NewImpl(std::move(shape), std::move(data), requires_grad));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({1}, {value}, requires_grad);
}

Tensor Tensor::FromExternal(std::vector<int> shape, const float* data,
                            size_t size,
                            std::shared_ptr<const void> keepalive) {
  CHECK_EQ(static_cast<int64_t>(size), NumElements(shape));
  CHECK(size == 0 || data != nullptr);
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = FloatStorage::External(data, size, std::move(keepalive));
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

const std::vector<int>& Tensor::shape() const {
  CHECK(defined());
  return impl_->shape;
}

int Tensor::ndim() const { return static_cast<int>(shape().size()); }

int Tensor::dim(int i) const {
  int n = ndim();
  if (i < 0) i += n;
  CHECK_GE(i, 0);
  CHECK_LT(i, n);
  return impl_->shape[static_cast<size_t>(i)];
}

int64_t Tensor::numel() const {
  CHECK(defined());
  return static_cast<int64_t>(impl_->data.size());
}

FloatStorage& Tensor::data() {
  CHECK(defined());
  return impl_->data;
}

const FloatStorage& Tensor::data() const {
  CHECK(defined());
  return impl_->data;
}

std::vector<float>& Tensor::grad() {
  CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad;
}

const std::vector<float>& Tensor::grad() const {
  CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad;
}

bool Tensor::requires_grad() const {
  CHECK(defined());
  return impl_->requires_grad;
}

float Tensor::item() const {
  CHECK(defined());
  CHECK_EQ(numel(), 1) << "item() requires a single-element tensor";
  return impl_->data[0];
}

float Tensor::at(int64_t flat_index) const {
  CHECK(defined());
  CHECK_GE(flat_index, 0);
  CHECK_LT(flat_index, numel());
  return impl_->data[static_cast<size_t>(flat_index)];
}

void Tensor::Backward() {
  CHECK(defined());
  // Topological order over the tape via iterative post-order DFS. The DFS
  // scratch is hoisted to thread-local storage: a training loop calls
  // Backward once per step, and re-allocating the visited set plus two
  // vectors every call was measurable. clear() keeps the capacity (and the
  // hash table's buckets), so steady-state steps allocate nothing here.
  // Per-thread because sample collection trains whole models on pool
  // workers; Backward never runs reentrantly on one thread.
  thread_local std::vector<internal::TensorImpl*> order;
  thread_local std::unordered_set<internal::TensorImpl*> visited;
  thread_local std::vector<std::pair<internal::TensorImpl*, size_t>> stack;
  order.clear();
  visited.clear();
  stack.clear();
  if (order.capacity() == 0) {
    order.reserve(256);
    stack.reserve(256);
  }
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      internal::TensorImpl* child = node->parents[next_child].impl();
      ++next_child;
      if (child != nullptr && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Seed this node's gradient with ones and run closures root-to-leaf.
  impl_->EnsureGrad();
  std::fill(impl_->grad.begin(), impl_->grad.end(), 1.0f);
  // While a StepPlan is capturing, the exact invocation order of the
  // closures is recorded once; Replay() re-runs the same closures in the
  // same order without re-deriving it. The DFS order is structural (shapes
  // and graph topology only), so one recording is valid for every replay.
  const bool recording = plan::Recording();
  if (recording) plan::detail::NoteBackwardBegin(impl_.get());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward) {
      node->EnsureGrad();
      node->backward(*node);
      if (recording) plan::detail::NoteBackwardNode(node);
    }
  }
}

void Tensor::ReleaseTape() {
  if (!defined()) return;
  // Strong refs to every reachable node are collected before any edge is
  // cut, so no impl dies while its parents are still being walked. The
  // final teardown of `refs` is a flat loop over nodes whose parent links
  // are already gone, which also keeps deep graphs from overflowing the
  // stack the way recursive shared_ptr chain destruction can.
  std::vector<std::shared_ptr<internal::TensorImpl>> refs;
  std::unordered_set<internal::TensorImpl*> visited;
  refs.push_back(impl_);
  visited.insert(impl_.get());
  for (size_t i = 0; i < refs.size(); ++i) {
    for (const Tensor& p : refs[i]->parents) {
      if (p.impl() != nullptr && visited.insert(p.impl()).second) {
        refs.push_back(p.impl_);
      }
    }
  }
  for (const auto& node : refs) {
    node->parents.clear();
    if (node->backward) {
      --t_live_tape_nodes;
      node->backward = nullptr;
    }
  }
}

void Tensor::ZeroGrad() {
  CHECK(defined());
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::Detach() const {
  CHECK(defined());
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  // A pooled copy; keeps the detached view stable.
  impl->data = BufferPool::Global().Acquire(numel());
  std::copy(impl_->data.begin(), impl_->data.end(), impl->data.begin());
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::Clone() const {
  CHECK(defined());
  std::vector<float> data = BufferPool::Global().Acquire(numel());
  std::copy(impl_->data.begin(), impl_->data.end(), data.begin());
  return FromVector(impl_->shape, std::move(data), false);
}

std::string Tensor::ToString(int max_elements) const {
  if (!defined()) return "<undefined tensor>";
  std::ostringstream out;
  out << "<shape [";
  for (size_t i = 0; i < impl_->shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << impl_->shape[i];
  }
  out << "] data [";
  int64_t n = std::min<int64_t>(numel(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << impl_->data[static_cast<size_t>(i)];
  }
  if (n < numel()) out << ", ...";
  out << "]>";
  return out.str();
}

namespace {
std::atomic<uint64_t> g_tape_nodes_created{0};
}  // namespace

uint64_t TapeNodesCreated() {
  return g_tape_nodes_created.load(std::memory_order_relaxed);
}

uint64_t LiveTapeNodesThisThread() { return t_live_tape_nodes; }

NoGradScope::NoGradScope() { ++t_no_grad_depth; }

NoGradScope::~NoGradScope() { --t_no_grad_depth; }

bool GradTapeEnabled() { return t_no_grad_depth == 0; }

Tensor Tensor::MakeFromOp(std::vector<int> shape, std::vector<float> data,
                          std::vector<Tensor> parents,
                          std::function<void(internal::TensorImpl&)> backward) {
  bool any_grad = false;
  for (const Tensor& p : parents) {
    CHECK(p.defined());
    if (p.requires_grad() || p.impl()->backward) any_grad = true;
  }
  if (t_no_grad_depth > 0) any_grad = false;
  auto impl = NewImpl(std::move(shape), std::move(data), any_grad);
  if (any_grad) {
    impl->parents = std::move(parents);
    impl->backward = std::move(backward);
    g_tape_nodes_created.fetch_add(1, std::memory_order_relaxed);
    ++t_live_tape_nodes;
  }
  Tensor out(std::move(impl));
  // Every op output born during a capture must be bound to the recording
  // plan by its op site (plan::Out); EndCapture cross-checks this set so an
  // uninstrumented op poisons the capture instead of replaying garbage.
  if (plan::Recording()) plan::detail::NoteNodeCreated(out);
  return out;
}

}  // namespace autocts
