#ifndef REPRO_TENSOR_BACKEND_H_
#define REPRO_TENSOR_BACKEND_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace autocts {
namespace kernels {

/// ---------------------------------------------------------------------------
/// Runtime-dispatched SIMD kernel backends.
///
/// The float kernels used to hard-require AVX2+FMA at build time (the whole
/// tree compiled with -mavx2). Instead, the ISA-sensitive inner kernels now
/// live behind this dispatch seam: each backend is one translation unit
/// compiled with its own ISA flags (see src/tensor/CMakeLists.txt), the
/// rest of the tree builds generic, and the best backend the running CPU
/// supports is picked once at startup (overridable with AUTOCTS_BACKEND or
/// SetActiveBackend).
///
/// Determinism contract: every backend implements the same per-element
/// accumulation order (ascending-k, no horizontal reductions, and the build
/// compiles with -ffp-contract=off so no backend can fuse a*b+c), so
/// switching backends NEVER changes an output bit. backend_test memcmps
/// every dispatched kernel across backends; callers may switch backends
/// mid-run without invalidating captured step plans.
///
/// The integer (int8) and bf16 kernels back the quantized comparator
/// inference path (see comparator/quant.h): int32 accumulation is exact and
/// the bf16 path accumulates fp32 in ascending-k order, so those too are
/// bit-identical across backends.
/// ---------------------------------------------------------------------------

/// Register-tile geometry of the blocked GEMM micro-kernel. Shared between
/// tensor/gemm.cc (packing/blocking) and every backend's micro-kernel
/// implementation; see DESIGN.md "GEMM blocking & memory reuse".
inline constexpr int kGemmMr = 6;
inline constexpr int kGemmNr = 16;

/// One SIMD backend: a name plus the dispatched kernel entry points. All
/// function pointers are non-null.
struct Backend {
  /// "scalar", "avx2", "avx512", or "neon".
  const char* name;

  /// True when the running CPU can execute this backend's code. The scalar
  /// backend always returns true; SIMD backends query cpuid.
  bool (*supported)();

  /// Full kGemmMr x kGemmNr register tile of the blocked GEMM: loads C,
  /// accumulates all kb packed products per element in ascending-kk order,
  /// stores once. `ap` is a packed A strip (kb runs of kGemmMr), `bp` a
  /// packed B panel (kb rows of kGemmNr).
  void (*gemm_micro)(int kb, const float* ap, const float* bp, float* c,
                     int64_t ldc);

  /// Unblocked small-problem GEMM: C[m,n] += op_a(A)[m,k] * op_b(B)[k,n]
  /// (same operand semantics as GemmAcc in tensor/gemm.h).
  void (*gemm_small)(const float* a, int64_t lda, bool trans_a,
                     const float* b, int64_t ldb, bool trans_b, float* c,
                     int64_t ldc, int m, int k, int n);

  /// Quantized GEMM: C_i32[m,n] = sum_k A_s8[m,k] * B_s8[k,n], row-major,
  /// int32 accumulation (exact — overflow-free for k*127^2 < 2^31, i.e.
  /// k < ~133000, far above any layer here).
  void (*qgemm_s8)(const int8_t* a, const int8_t* b, int32_t* c, int m,
                   int k, int n);

  /// bf16-weight GEMM: C_f32[m,n] = sum_k A_f32[m,k] * f32(B_bf16[k,n]),
  /// fp32 accumulation in ascending-k order. The bf16 -> f32 widening is a
  /// bit shift, not arithmetic, so results are exact in the widened values.
  void (*qgemm_bf16)(const float* a, const uint16_t* b, float* c, int m,
                     int k, int n);
};

/// The backend serving dispatched kernels right now. First call resolves
/// the startup choice: AUTOCTS_BACKEND if set (falling back to the best
/// available, with a stderr warning, when that backend is missing or
/// unsupported on this CPU), otherwise the widest ISA the CPU supports.
const Backend& ActiveBackend();

/// Forces the named backend for the process. Returns false (and leaves the
/// active backend unchanged) when no compiled-in backend of that name is
/// supported on this CPU. Thread-safe; in-flight kernels finish on the
/// backend they dispatched with (bit-identical results either way).
bool SetActiveBackend(const std::string& name);

/// Every backend compiled into this binary and supported by this CPU, best
/// (widest ISA) first. The scalar backend is always present.
std::vector<const Backend*> AvailableBackends();

/// Dispatch counters (relaxed atomics), folded into RuntimeStats::backend.
/// Call sites in gemm.cc / quant.cc bump these once per dispatched call.
namespace counters {
void NoteGemmMicro();
void NoteGemmSmall();
void NoteQgemmS8();
void NoteQgemmBf16();
}  // namespace counters

/// bfloat16 <-> fp32 conversion helpers shared by the bf16 kernels and the
/// comparator weight quantizer. Round-to-nearest-even, the standard bf16
/// narrowing; NaN payloads may collapse but stay NaN.
inline uint16_t Bf16FromF32(float x) {
  uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const uint32_t rounding = 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

inline float F32FromBf16(uint16_t b) {
  const uint32_t bits = static_cast<uint32_t>(b) << 16;
  float x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

}  // namespace kernels
}  // namespace autocts

#endif  // REPRO_TENSOR_BACKEND_H_
