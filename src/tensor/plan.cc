#include "tensor/plan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/guard.h"
#include "common/parallel.h"
#include "common/runtime_config.h"
#include "tensor/buffer_pool.h"
#include "tensor/fused.h"

namespace autocts {

namespace plan {

namespace {

std::atomic<bool> g_plans_enabled{GlobalRuntimeConfig().step_plans};

std::atomic<uint64_t> g_captures{0};
std::atomic<uint64_t> g_replays{0};
std::atomic<uint64_t> g_invalidations{0};
std::atomic<uint64_t> g_poisoned{0};
std::atomic<int64_t> g_arena_bytes{0};
std::atomic<int64_t> g_pinned_bytes{0};

PlanStats CurrentPlanStats() {
  PlanStats s;
  s.captures = g_captures.load(std::memory_order_relaxed);
  s.replays = g_replays.load(std::memory_order_relaxed);
  s.invalidations = g_invalidations.load(std::memory_order_relaxed);
  s.poisoned = g_poisoned.load(std::memory_order_relaxed);
  s.arena_bytes =
      static_cast<uint64_t>(g_arena_bytes.load(std::memory_order_relaxed));
  s.pinned_bytes =
      static_cast<uint64_t>(g_pinned_bytes.load(std::memory_order_relaxed));
  return s;
}

struct PlanStatsRegistrar {
  PlanStatsRegistrar() { RegisterPlanStatsProvider(&CurrentPlanStats); }
} g_plan_stats_registrar;

/// Tape nodes pinned by frozen plans owned by this thread.
thread_local uint64_t t_pinned_tape_nodes = 0;

using Thunk = std::function<void(float* const*)>;

/// One buffer of the plan: a Tensor the recorded step touched.
struct RecSlot {
  Tensor keep;
  /// True when a committed op writes this buffer on replay.
  bool op_defined = false;
  int def_op = -1;   ///< Thunk index that produces the buffer.
  int last_use = -1; ///< Last thunk index that touches it.
};

/// Thread-local capture state; one per open BeginCapture.
class Recorder {
 public:
  explicit Recorder(std::string tag) : tag_(std::move(tag)) {}

  int SlotFor(const Tensor& t, bool as_output) {
    CHECK(t.defined());
    auto [it, fresh] =
        slot_of_.try_emplace(t.impl(), static_cast<int>(slots_.size()));
    if (fresh) slots_.push_back(RecSlot{t});
    RecSlot& s = slots_[static_cast<size_t>(it->second)];
    const int op = static_cast<int>(thunks_.size());
    s.last_use = op;
    if (as_output) {
      if (s.op_defined) {
        PoisonNow("buffer produced by two ops");
      } else {
        s.op_defined = true;
        s.def_op = op;
      }
    }
    return it->second;
  }

  void Commit(Thunk thunk) { thunks_.push_back(std::move(thunk)); }

  void PoisonNow(const char* reason) {
    if (!poisoned_) {
      poisoned_ = true;
      poison_reason_ = reason;
    }
  }

  std::string tag_;
  bool poisoned_ = false;
  std::string poison_reason_;
  std::vector<RecSlot> slots_;
  std::unordered_map<internal::TensorImpl*, int> slot_of_;
  std::vector<Thunk> thunks_;
  /// Every MakeFromOp result born during the capture (pinned so impl
  /// pointers stay unique until the EndCapture coverage check).
  std::vector<Tensor> fresh_nodes_;
  internal::TensorImpl* backward_root_ = nullptr;
  std::vector<internal::TensorImpl*> backward_order_;
};

thread_local Recorder* t_recorder = nullptr;

}  // namespace

bool PlansEnabled() { return g_plans_enabled.load(std::memory_order_relaxed); }

void SetPlansEnabled(bool enabled) {
  g_plans_enabled.store(enabled, std::memory_order_relaxed);
}

bool Recording() { return t_recorder != nullptr; }

int In(const Tensor& t) {
  CHECK(t_recorder != nullptr) << "plan::In outside a capture";
  return t_recorder->SlotFor(t, /*as_output=*/false);
}

int Out(const Tensor& t) {
  CHECK(t_recorder != nullptr) << "plan::Out outside a capture";
  return t_recorder->SlotFor(t, /*as_output=*/true);
}

void Commit(std::function<void(float* const*)> thunk) {
  CHECK(t_recorder != nullptr) << "plan::Commit outside a capture";
  t_recorder->Commit(std::move(thunk));
}

void Poison(const char* reason) {
  if (t_recorder != nullptr) t_recorder->PoisonNow(reason);
}

uint64_t PinnedTapeNodesThisThread() { return t_pinned_tape_nodes; }

namespace detail {

void NoteNodeCreated(const Tensor& t) {
  if (t_recorder != nullptr) t_recorder->fresh_nodes_.push_back(t);
}

void NoteBackwardBegin(internal::TensorImpl* root) {
  if (t_recorder == nullptr) return;
  if (t_recorder->backward_root_ != nullptr) {
    t_recorder->PoisonNow("two Backward() calls in one capture");
    return;
  }
  t_recorder->backward_root_ = root;
}

void NoteBackwardNode(internal::TensorImpl* node) {
  if (t_recorder != nullptr) t_recorder->backward_order_.push_back(node);
}

}  // namespace detail

}  // namespace plan

/// Frozen state of a plan plus the open-capture recorder.
struct StepPlan::Impl {
  // -- capture state --
  std::unique_ptr<plan::Recorder> rec;
  std::vector<Tensor> declared_inputs;
  Tensor loss;
  std::vector<Tensor> outputs;
  bool capture_failed = false;

  // -- frozen state --
  bool ready = false;
  std::vector<plan::Thunk> thunks;
  /// Slot index -> buffer. Pinned slots point at their impl's data (stable:
  /// data vectors are never reassigned while the plan holds the Tensor);
  /// arena slots point into `arena`.
  std::vector<float*> bufs;
  std::vector<Tensor> pinned;
  std::vector<float> arena;
  struct Span {
    float* p;
    int64_t n;
  };
  /// Gradients zeroed at BeginStep (replay equivalent of ZeroGrad plus
  /// fresh zeroed intermediate grads).
  std::vector<Span> grad_zero;
  struct InputBinding {
    float* dst = nullptr;  ///< Null when the input is unused by any op.
    int64_t n = 0;
    std::vector<int> shape;
  };
  std::vector<InputBinding> inputs;
  internal::TensorImpl* loss_impl = nullptr;
  std::vector<internal::TensorImpl*> backward_order;
  bool fused_snapshot = false;
  bool guards_snapshot = false;
  int64_t arena_bytes = 0;
  int64_t pinned_bytes = 0;
  uint64_t pinned_tape = 0;
  /// Thread that ran BeginCapture. Frozen plans are bound to it: replay
  /// thunks and the pinned-tape accounting (t_pinned_tape_nodes) are only
  /// valid there. See StepPlan's class comment and ValidateReplayThread().
  std::thread::id capture_thread;
  std::string tag;  ///< Capture tag, kept for error messages.

  void ReleaseFrozen() {
    if (!ready) return;
    ready = false;
    plan::t_pinned_tape_nodes -= pinned_tape;
    plan::g_arena_bytes.fetch_sub(arena_bytes, std::memory_order_relaxed);
    plan::g_pinned_bytes.fetch_sub(pinned_bytes, std::memory_order_relaxed);
    thunks.clear();
    bufs.clear();
    grad_zero.clear();
    inputs.clear();
    backward_order.clear();
    loss_impl = nullptr;
    // Sever the pinned graph's parent links while every node is still held
    // by `pinned` below — the flat teardown ReleaseTape exists for; without
    // it, clearing the keeps could cascade shared_ptr destruction down the
    // whole step graph recursively.
    loss.ReleaseTape();
    loss = Tensor();
    outputs.clear();
    declared_inputs.clear();
    pinned.clear();
    BufferPool::Global().Release(std::move(arena));
    arena = std::vector<float>();
    arena_bytes = 0;
    pinned_bytes = 0;
    pinned_tape = 0;
  }
};

StepPlan::StepPlan() : impl_(std::make_unique<Impl>()) {}

StepPlan::~StepPlan() { impl_->ReleaseFrozen(); }

void StepPlan::BeginCapture(std::vector<Tensor> inputs, std::string tag) {
  CHECK(!impl_->ready) << "BeginCapture on a frozen plan (Invalidate first)";
  CHECK(impl_->rec == nullptr) << "BeginCapture while already capturing";
  CHECK(plan::t_recorder == nullptr)
      << "nested plan captures on one thread are not supported";
#ifndef NDEBUG
  // The per-step ReleaseTape() convention means nothing but plan-pinned
  // nodes may be alive here; a stale graph would get silently frozen into
  // the plan (and replayed against dead state) otherwise.
  CHECK_EQ(LiveTapeNodesThisThread(), plan::PinnedTapeNodesThisThread())
      << "plan capture '" << tag << "' with a stale autograd tape alive";
#endif
  for (const Tensor& t : inputs) CHECK(t.defined());
  impl_->declared_inputs = std::move(inputs);
  impl_->loss = Tensor();
  impl_->outputs.clear();
  impl_->capture_thread = std::this_thread::get_id();
  impl_->tag = tag;
  impl_->rec = std::make_unique<plan::Recorder>(std::move(tag));
  plan::t_recorder = impl_->rec.get();
}

void StepPlan::SetLoss(const Tensor& loss) {
  CHECK(impl_->rec != nullptr) << "SetLoss outside a capture";
  CHECK(loss.defined());
  impl_->loss = loss;
}

void StepPlan::AddOutput(const Tensor& output) {
  CHECK(impl_->rec != nullptr) << "AddOutput outside a capture";
  CHECK(output.defined());
  impl_->outputs.push_back(output);
}

void StepPlan::AbortCapture() {
  if (impl_->rec == nullptr) return;
  plan::t_recorder = nullptr;
  impl_->rec.reset();
  impl_->declared_inputs.clear();
  impl_->loss = Tensor();
  impl_->outputs.clear();
}

bool StepPlan::EndCapture() {
  CHECK(impl_->rec != nullptr) << "EndCapture without BeginCapture";
  plan::t_recorder = nullptr;
  std::unique_ptr<plan::Recorder> rec = std::move(impl_->rec);

  // Coverage: every op output born during the capture must have been bound
  // by its op via plan::Out. A miss means an uninstrumented op — the frozen
  // thunk list would silently skip its computation.
  if (!rec->poisoned_) {
    for (const Tensor& t : rec->fresh_nodes_) {
      auto it = rec->slot_of_.find(t.impl());
      if (it == rec->slot_of_.end() ||
          !rec->slots_[static_cast<size_t>(it->second)].op_defined) {
        rec->PoisonNow("op output not bound to the plan (uninstrumented op)");
        break;
      }
    }
  }
  if (!rec->poisoned_ && impl_->loss.defined()) {
    if (rec->backward_order_.empty()) {
      rec->PoisonNow("training capture without a Backward()");
    } else if (rec->backward_root_ != impl_->loss.impl()) {
      rec->PoisonNow("Backward() root is not the declared loss");
    }
  }
  if (!rec->poisoned_) {
    for (const Tensor& out : impl_->outputs) {
      if (rec->slot_of_.find(out.impl()) == rec->slot_of_.end()) {
        rec->PoisonNow("declared output was not produced by a recorded op");
        break;
      }
    }
  }
  if (rec->poisoned_) {
    impl_->capture_failed = true;
    impl_->declared_inputs.clear();
    impl_->loss = Tensor();
    impl_->outputs.clear();
    plan::g_poisoned.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // `fresh_nodes_` holds an extra handle on every op output; drop them now
  // so use_count()==1 below really means "only the plan sees this buffer".
  rec->fresh_nodes_.clear();
  rec->fresh_nodes_.shrink_to_fit();

  Impl& f = *impl_;
  const bool training = f.loss.defined();
  const size_t num_slots = rec->slots_.size();
  f.thunks = std::move(rec->thunks_);
  f.bufs.assign(num_slots, nullptr);
  f.backward_order = std::move(rec->backward_order_);
  f.loss_impl = training ? f.loss.impl() : nullptr;

  std::unordered_set<internal::TensorImpl*> output_impls;
  for (const Tensor& out : f.outputs) output_impls.insert(out.impl());
  std::unordered_set<internal::TensorImpl*> input_impls;
  for (const Tensor& in : f.declared_inputs) input_impls.insert(in.impl());

  // Arena placement (inference plans): a pure intermediate — produced by a
  // recorded op, observed by nobody outside the plan, carrying no autograd
  // state — does not need its own buffer. Its slot gets an offset in one
  // shared arena, reused across slots whose [def_op, last_use] intervals
  // don't overlap (best-fit free list, 16-float granularity), and its
  // pooled buffer is returned to the BufferPool right here. Training plans
  // pin everything: the retained backward closures read impl storage.
  std::vector<int> arena_eligible;
  for (size_t i = 0; i < num_slots; ++i) {
    const plan::RecSlot& s = rec->slots_[i];
    internal::TensorImpl* im = s.keep.impl();
    const bool pure = !training && s.op_defined && s.keep.use_count() == 1 &&
                      im->backward == nullptr && im->parents.empty() &&
                      im->grad.empty() && output_impls.count(im) == 0 &&
                      input_impls.count(im) == 0;
    if (pure) arena_eligible.push_back(static_cast<int>(i));
  }
  if (!arena_eligible.empty()) {
    constexpr int64_t kAlign = 16;  // floats; keeps rows SIMD-friendly
    struct Block {
      int64_t off;
      int64_t size;
    };
    std::vector<Block> free_blocks;
    std::vector<int64_t> offset(num_slots, -1);
    std::vector<int64_t> rounded(num_slots, 0);
    int64_t top = 0;
    // Slots sorted by definition point = allocation order; frees happen
    // when the walk passes a slot's last use. Everything here is a pure
    // function of the recorded structure, so layout is deterministic.
    std::vector<int> by_def = arena_eligible;
    std::sort(by_def.begin(), by_def.end(), [&](int a, int b) {
      const auto& sa = rec->slots_[static_cast<size_t>(a)];
      const auto& sb = rec->slots_[static_cast<size_t>(b)];
      return sa.def_op != sb.def_op ? sa.def_op < sb.def_op : a < b;
    });
    std::vector<int> by_end = arena_eligible;
    std::sort(by_end.begin(), by_end.end(), [&](int a, int b) {
      const auto& sa = rec->slots_[static_cast<size_t>(a)];
      const auto& sb = rec->slots_[static_cast<size_t>(b)];
      return sa.last_use != sb.last_use ? sa.last_use < sb.last_use : a < b;
    });
    size_t next_free = 0;
    for (int idx : by_def) {
      const plan::RecSlot& s = rec->slots_[static_cast<size_t>(idx)];
      // Release every block whose slot died before this one is born.
      while (next_free < by_end.size() &&
             rec->slots_[static_cast<size_t>(by_end[next_free])].last_use <
                 s.def_op) {
        int dead = by_end[next_free++];
        free_blocks.push_back(
            Block{offset[static_cast<size_t>(dead)],
                  rounded[static_cast<size_t>(dead)]});
      }
      const int64_t need =
          (s.keep.numel() + kAlign - 1) / kAlign * kAlign;
      rounded[static_cast<size_t>(idx)] = need;
      // Best fit over the free list.
      int best = -1;
      for (size_t b = 0; b < free_blocks.size(); ++b) {
        if (free_blocks[b].size >= need &&
            (best < 0 ||
             free_blocks[b].size < free_blocks[static_cast<size_t>(best)].size))
          best = static_cast<int>(b);
      }
      if (best >= 0) {
        Block blk = free_blocks[static_cast<size_t>(best)];
        free_blocks.erase(free_blocks.begin() + best);
        offset[static_cast<size_t>(idx)] = blk.off;
        if (blk.size > need) {
          free_blocks.push_back(Block{blk.off + need, blk.size - need});
        }
      } else {
        offset[static_cast<size_t>(idx)] = top;
        top += need;
      }
    }
    f.arena = BufferPool::Global().Acquire(top);
    for (int idx : arena_eligible) {
      f.bufs[static_cast<size_t>(idx)] =
          f.arena.data() + offset[static_cast<size_t>(idx)];
    }
    f.arena_bytes = static_cast<int64_t>(f.arena.size() * sizeof(float));
  }

  // Pin everything that isn't arena-bound, cache buffer pointers, and
  // collect the gradient spans BeginStep must zero.
  for (size_t i = 0; i < num_slots; ++i) {
    if (f.bufs[i] != nullptr) continue;  // arena slot
    plan::RecSlot& s = rec->slots_[i];
    internal::TensorImpl* im = s.keep.impl();
    f.bufs[i] = im->data.data();
    f.pinned_bytes += static_cast<int64_t>(
        (im->data.size() + im->grad.size()) * sizeof(float));
    if (!im->grad.empty()) {
      f.grad_zero.push_back(
          Impl::Span{im->grad.data(), static_cast<int64_t>(im->grad.size())});
    }
    if (im->backward) ++f.pinned_tape;
    f.pinned.push_back(std::move(s.keep));
  }

  // Input bindings, in declaration order. An input the step never fed to an
  // op has no slot and nothing to refresh.
  for (const Tensor& in : f.declared_inputs) {
    Impl::InputBinding b;
    b.n = in.numel();
    b.shape = in.shape();
    auto it = rec->slot_of_.find(in.impl());
    if (it != rec->slot_of_.end()) {
      b.dst = f.bufs[static_cast<size_t>(it->second)];
    }
    f.inputs.push_back(std::move(b));
  }

  f.fused_snapshot = FusedKernelsEnabled();
  f.guards_snapshot = GuardsEnabled();
  f.ready = true;
  plan::t_pinned_tape_nodes += f.pinned_tape;
  plan::g_captures.fetch_add(1, std::memory_order_relaxed);
  plan::g_arena_bytes.fetch_add(f.arena_bytes, std::memory_order_relaxed);
  plan::g_pinned_bytes.fetch_add(f.pinned_bytes, std::memory_order_relaxed);
  return true;
}

bool StepPlan::capturing() const { return impl_->rec != nullptr; }

bool StepPlan::ready() const { return impl_->ready; }

bool StepPlan::capture_failed() const { return impl_->capture_failed; }

void StepPlan::Invalidate() {
  if (!impl_->ready) return;
  impl_->ReleaseFrozen();
  plan::g_invalidations.fetch_add(1, std::memory_order_relaxed);
}

Status StepPlan::ValidateReplayThread() const {
  const Impl& f = *impl_;
  if (!f.ready || std::this_thread::get_id() == f.capture_thread) {
    return Status::Ok();
  }
  std::ostringstream os;
  os << "StepPlan '" << f.tag << "' replayed on thread "
     << std::this_thread::get_id() << " but captured on thread "
     << f.capture_thread
     << "; plans are thread-local — replay (and destruction) must happen on "
        "the capture thread";
  return Status::Error(os.str());
}

bool StepPlan::MatchesInputs(const std::vector<Tensor>& inputs) const {
  const Impl& f = *impl_;
  if (!f.ready || !plan::PlansEnabled()) return false;
  if (f.fused_snapshot != FusedKernelsEnabled()) return false;
  if (f.guards_snapshot != GuardsEnabled()) return false;
  if (inputs.size() != f.inputs.size()) return false;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i].defined() || inputs[i].shape() != f.inputs[i].shape)
      return false;
  }
  return true;
}

void StepPlan::BeginStep(const std::vector<Tensor>& inputs) {
  Impl& f = *impl_;
  CHECK(f.ready) << "BeginStep on a plan that is not frozen";
#ifndef NDEBUG
  CHECK(ValidateReplayThread().ok()) << ValidateReplayThread().message();
#endif
  CHECK_EQ(inputs.size(), f.inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Impl::InputBinding& b = f.inputs[i];
    CHECK(inputs[i].shape() == b.shape) << "plan input shape changed";
    if (b.dst != nullptr && inputs[i].impl()->data.data() != b.dst) {
      std::memcpy(b.dst, inputs[i].data().data(),
                  static_cast<size_t>(b.n) * sizeof(float));
    }
  }
  for (const Impl::Span& z : f.grad_zero) {
    std::fill(z.p, z.p + z.n, 0.0f);
  }
}

float* StepPlan::input_data(size_t i) {
  Impl& f = *impl_;
  CHECK(f.ready) << "input_data on a plan that is not frozen";
  CHECK_LT(i, f.inputs.size());
  return f.inputs[i].dst;
}

int64_t StepPlan::input_size(size_t i) const {
  const Impl& f = *impl_;
  CHECK(f.ready) << "input_size on a plan that is not frozen";
  CHECK_LT(i, f.inputs.size());
  return f.inputs[i].n;
}

void StepPlan::BeginStepInPlace() {
  Impl& f = *impl_;
  CHECK(f.ready) << "BeginStepInPlace on a plan that is not frozen";
#ifndef NDEBUG
  CHECK(ValidateReplayThread().ok()) << ValidateReplayThread().message();
#endif
  for (const Impl::Span& z : f.grad_zero) {
    std::fill(z.p, z.p + z.n, 0.0f);
  }
}

void StepPlan::RunForward() {
  Impl& f = *impl_;
  CHECK(f.ready);
#ifndef NDEBUG
  CHECK(ValidateReplayThread().ok()) << ValidateReplayThread().message();
#endif
  float* const* bufs = f.bufs.data();
  for (const plan::Thunk& t : f.thunks) t(bufs);
  plan::g_replays.fetch_add(1, std::memory_order_relaxed);
}

float StepPlan::LossValue() const {
  CHECK(impl_->loss_impl != nullptr) << "LossValue on an inference plan";
  return impl_->loss_impl->data[0];
}

void StepPlan::RunBackward() {
  Impl& f = *impl_;
  CHECK(f.ready);
  CHECK(f.loss_impl != nullptr) << "RunBackward on an inference plan";
#ifndef NDEBUG
  CHECK(ValidateReplayThread().ok()) << ValidateReplayThread().message();
#endif
  // Grads were zeroed in BeginStep; seed the root exactly as Backward()
  // does and re-run the captured closures in the recorded order.
  std::fill(f.loss_impl->grad.begin(), f.loss_impl->grad.end(), 1.0f);
  for (internal::TensorImpl* node : f.backward_order) {
    node->backward(*node);
  }
}

const Tensor& StepPlan::output(size_t i) const {
  CHECK_LT(i, impl_->outputs.size());
  return impl_->outputs[i];
}

int64_t StepPlan::arena_bytes() const { return impl_->arena_bytes; }

int64_t StepPlan::pinned_bytes() const { return impl_->pinned_bytes; }

int64_t StepPlan::num_ops() const {
  return static_cast<int64_t>(impl_->thunks.size());
}

}  // namespace autocts
