#ifndef REPRO_TENSOR_GRADCHECK_H_
#define REPRO_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace autocts {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool ok = true;
  /// Largest |analytic - numeric| / max(1, |numeric|) over all inputs.
  double max_relative_error = 0.0;
  /// Flat index (input #, element #) where the worst error occurred.
  int worst_input = -1;
  int64_t worst_element = -1;
};

/// Verifies the autograd tape against central finite differences.
///
/// `fn` maps the given inputs to a scalar tensor. Each input must have
/// requires_grad set. Tolerance is relative; epsilon is the FD step.
GradCheckResult GradCheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double epsilon = 1e-3,
    double tolerance = 5e-2);

}  // namespace autocts

#endif  // REPRO_TENSOR_GRADCHECK_H_
