#ifndef REPRO_TENSOR_BUFFER_POOL_H_
#define REPRO_TENSOR_BUFFER_POOL_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/parallel.h"

namespace autocts {

/// A size-bucketed free-list for float buffers.
///
/// Every AutoCTS+ search step trains hundreds of short-lived autograd
/// graphs, and without pooling each op output, gradient buffer, and
/// backward temporary is a fresh heap allocation (plus page faults on
/// first touch). The pool recycles that storage: tensors acquire their
/// buffers here, and `internal::TensorImpl`'s destructor — the tape-release
/// hook that fires when a training step's graph is torn down — returns
/// them, so step N+1 reuses step N's memory instead of round-tripping the
/// allocator.
///
/// Buckets are powers of two (min 4 floats); a request is served from the
/// bucket of its rounded-up size, so any pooled buffer handed out has
/// enough capacity. The floor is low because comparator training is
/// dominated by tiny tensors (hidden dims of single digits); only
/// scalar-ish requests below it bypass the pool. Pooled bytes are capped
/// (`set_capacity_bytes`, default 256 MiB, env `AUTOCTS_POOL_MB`); releases
/// beyond the cap free the buffer instead.
///
/// Thread safety: all operations take one internal mutex. Acquires and
/// releases happen on whichever thread runs the op (sample collection
/// trains whole models on pool workers), so this must be — and is —
/// cross-thread safe; tests/buffer_pool_test.cc exercises it under TSan.
///
/// Pooling never changes numerics: `Acquire` contents are unspecified and
/// every caller either fully overwrites or asks for `AcquireZeroed`.
class BufferPool {
 public:
  /// The process-wide pool used by the tensor layer. Never destroyed
  /// (intentionally leaked) so tensors alive during static teardown can
  /// still release safely.
  static BufferPool& Global();

  BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer of size `n` with unspecified contents. The caller must
  /// overwrite every element (accumulating kernels want AcquireZeroed).
  std::vector<float> Acquire(int64_t n);

  /// A buffer of size `n`, all zeros.
  std::vector<float> AcquireZeroed(int64_t n);

  /// Returns a buffer to the pool (or frees it when over capacity / below
  /// the minimum bucket). Accepts any vector, pooled origin or not.
  void Release(std::vector<float>&& v);

  /// Snapshot of the counters (see PoolStats in common/parallel.h).
  PoolStats stats() const;

  /// Zeroes all counters (bytes_pooled reflects current holdings and is
  /// not reset).
  void ResetStats();

  /// Frees every pooled buffer (counters keep their values).
  void Clear();

  /// Caps the bytes held by the pool; releases beyond it free instead.
  void set_capacity_bytes(uint64_t bytes);

 private:
  /// Smallest pooled request: 2^2 = 4 floats (16 B).
  static constexpr int kMinBucketLog2 = 2;
  /// Largest bucket: 2^30 floats (4 GiB) — far above any tensor here.
  static constexpr int kNumBuckets = 29;

  mutable std::mutex mu_;
  std::vector<std::vector<float>> buckets_[kNumBuckets];
  uint64_t capacity_bytes_;
  PoolStats stats_;
};

}  // namespace autocts

#endif  // REPRO_TENSOR_BUFFER_POOL_H_
