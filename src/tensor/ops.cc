#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/parallel.h"
#include "tensor/buffer_pool.h"
#include "tensor/fused.h"
#include "tensor/gemm.h"
#include "tensor/plan.h"

namespace autocts {
namespace {

/// Alias for the shared grain constant (see common/parallel.h).
constexpr int64_t kElemGrain = kParallelGrainWork;

// Every op in this file follows the capture protocol from tensor/plan.h:
// the forward pass is a lambda over raw pointers, invoked once eagerly; if
// a StepPlan is recording, the same lambda is committed as the op's replay
// thunk over the plan's slot table. Replay therefore runs the identical
// kernel (same accumulation order, same ParallelFor partitioning) on the
// same buffers, which is what makes it memcmp-equal to eager execution.

/// Broadcast shape of two operand shapes (numpy rules).
std::vector<int> BroadcastShape(const std::vector<int>& a,
                                const std::vector<int>& b) {
  size_t n = std::max(a.size(), b.size());
  std::vector<int> out(n);
  for (size_t i = 0; i < n; ++i) {
    int da = i < n - a.size() ? 1 : a[i - (n - a.size())];
    int db = i < n - b.size() ? 1 : b[i - (n - b.size())];
    CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast dims " << da << " vs " << db;
    out[i] = std::max(da, db);
  }
  return out;
}

/// Strides of `shape` aligned to an out-shape of rank `out_rank`, with 0 for
/// broadcast (size-1 or missing) dimensions.
std::vector<int64_t> AlignedStrides(const std::vector<int>& shape,
                                    const std::vector<int>& out_shape) {
  std::vector<int64_t> strides(out_shape.size(), 0);
  std::vector<int64_t> own = Strides(shape);
  size_t off = out_shape.size() - shape.size();
  for (size_t i = 0; i < shape.size(); ++i) {
    strides[off + i] = (shape[i] == 1 && out_shape[off + i] != 1) ? 0 : own[i];
  }
  return strides;
}

int64_t MapOffset(int64_t out_idx, const std::vector<int>& out_shape,
                  const std::vector<int64_t>& out_strides,
                  const std::vector<int64_t>& op_strides) {
  int64_t off = 0;
  for (size_t d = 0; d < out_shape.size(); ++d) {
    int64_t coord = (out_idx / out_strides[d]) % out_shape[d];
    off += coord * op_strides[d];
  }
  return off;
}

/// Generic differentiable elementwise binary op with broadcasting.
/// fwd(av, bv) -> out value; da(av, bv) and db(av, bv) are local partials.
template <typename F, typename DA, typename DB>
Tensor BinaryOp(const Tensor& a, const Tensor& b, F fwd, DA da, DB db) {
  std::vector<int> out_shape = BroadcastShape(a.shape(), b.shape());
  int64_t n = NumElements(out_shape);
  // Pooled with unspecified contents: every index below is written exactly
  // once (same pattern in the other fully-overwriting ops in this file).
  std::vector<float> out = BufferPool::Global().Acquire(n);
  const bool same = a.shape() == b.shape();
  std::vector<int64_t> os, as, bs;
  if (!same) {
    os = Strides(out_shape);
    as = AlignedStrides(a.shape(), out_shape);
    bs = AlignedStrides(b.shape(), out_shape);
  }
  // Raw pointers hoisted out of the loops: indexing through the vector
  // references re-loads the data pointer every element because the
  // by-reference closure capture may alias anything the compiler can see.
  auto kernel = [n, same, fwd, out_shape, os, as,
                 bs](const float* ap, const float* bp, float* op) {
    if (same) {
      ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          op[i] = fwd(ap[i], bp[i]);
        }
      });
    } else {
      ParallelFor(0, n, kElemGrain / 4, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          op[i] = fwd(ap[MapOffset(i, out_shape, os, as)],
                      bp[MapOffset(i, out_shape, os, bs)]);
        }
      });
    }
  };
  kernel(a.data().data(), b.data().data(), out.data());
  Tensor ta = a, tb = b;
  auto backward = [ta, tb, out_shape, same, da,
                   db](internal::TensorImpl& node) mutable {
    const auto& g = node.grad;
    auto& ga = ta.grad();
    auto& gb = tb.grad();
    const auto& av = ta.data();
    const auto& bv = tb.data();
    if (same) {
      // Disjoint per-index writes into both grads — safe to chunk. Pointers
      // hoisted for the same reason as the forward pass.
      const float* gp = g.data();
      const float* ap = av.data();
      const float* bp = bv.data();
      float* gap = ga.data();
      float* gbp = gb.data();
      ParallelFor(0, static_cast<int64_t>(g.size()), kElemGrain / 2,
                  [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i) {
                      gap[i] += gp[i] * da(ap[i], bp[i]);
                      gbp[i] += gp[i] * db(ap[i], bp[i]);
                    }
                  });
    } else {
      // Broadcast (stride-0) operands fold many output indices into one
      // grad slot, so this path must stay serial.
      std::vector<int64_t> os = Strides(out_shape);
      std::vector<int64_t> as = AlignedStrides(ta.shape(), out_shape);
      std::vector<int64_t> bs = AlignedStrides(tb.shape(), out_shape);
      int64_t n2 = static_cast<int64_t>(g.size());
      for (int64_t i = 0; i < n2; ++i) {
        size_t ia = static_cast<size_t>(MapOffset(i, out_shape, os, as));
        size_t ib = static_cast<size_t>(MapOffset(i, out_shape, os, bs));
        ga[ia] += g[static_cast<size_t>(i)] * da(av[ia], bv[ib]);
        gb[ib] += g[static_cast<size_t>(i)] * db(av[ia], bv[ib]);
      }
    }
  };
  Tensor result = Tensor::MakeFromOp(std::move(out_shape), std::move(out),
                                     {a, b}, std::move(backward));
  if (plan::Recording()) {
    const int ia = plan::In(a), ib = plan::In(b), io = plan::Out(result);
    plan::Commit([kernel, ia, ib, io](float* const* bufs) {
      kernel(bufs[ia], bufs[ib], bufs[io]);
    });
  }
  return result;
}

/// Generic differentiable elementwise unary op. dydx receives (x, y).
template <typename F, typename D>
Tensor UnaryOp(const Tensor& x, F fwd, D dydx) {
  const int64_t n = x.numel();
  std::vector<float> out = BufferPool::Global().Acquire(n);
  auto kernel = [n, fwd](const float* xp, float* op) {
    ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) op[i] = fwd(xp[i]);
    });
  };
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, dydx](internal::TensorImpl& node) mutable {
    const float* g = node.grad.data();
    float* gx = tx.grad().data();
    const float* xd = tx.data().data();
    // node is the op's output, so node.data *is* y — no ops mutate tensor
    // storage in place, so reading it here replaces the per-op y copy the
    // closure used to capture.
    const float* yv = node.data.data();
    ParallelFor(0, static_cast<int64_t>(node.grad.size()), kElemGrain,
                [&](int64_t i0, int64_t i1) {
                  for (int64_t i = i0; i < i1; ++i) {
                    gx[i] += g[i] * dydx(xd[i], yv[i]);
                  }
                });
  };
  Tensor result =
      Tensor::MakeFromOp(x.shape(), std::move(out), {x}, std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; });
}

Tensor Neg(const Tensor& x) { return MulScalar(x, -1.0f); }

Tensor Exp(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& x, float eps) {
  return UnaryOp(
      x, [eps](float v) { return std::log(std::max(v, eps)); },
      [eps](float v, float) { return 1.0f / std::max(v, eps); });
}

Tensor Sqrt(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return std::sqrt(v); },
      [](float, float y) { return 0.5f / std::max(y, 1e-12f); });
}

Tensor Tanh(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Relu(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& x, float slope) {
  return UnaryOp(
      x, [slope](float v) { return v > 0.0f ? v : slope * v; },
      [slope](float v, float) { return v > 0.0f ? 1.0f : slope; });
}

Tensor Abs(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return std::fabs(v); },
      [](float v, float) { return v > 0.0f ? 1.0f : (v < 0.0f ? -1.0f : 0.0f); });
}

Tensor Square(const Tensor& x) {
  return UnaryOp(
      x, [](float v) { return v * v; },
      [](float v, float) { return 2.0f * v; });
}

namespace {

/// Parsed batched-matmul geometry shared by forward and backward.
struct MatMulPlan {
  int m = 0, k = 0, n = 0;
  int64_t batch = 1;        // Number of output batch matrices.
  bool a_broadcast = false;  // a is 2-D and reused for every batch.
  bool b_broadcast = false;
  std::vector<int> out_shape;
};

MatMulPlan PlanMatMul(const Tensor& a, const Tensor& b) {
  CHECK_GE(a.ndim(), 2);
  CHECK_GE(b.ndim(), 2);
  MatMulPlan p;
  p.m = a.dim(-2);
  p.k = a.dim(-1);
  CHECK_EQ(b.dim(-2), p.k) << "matmul inner dims";
  p.n = b.dim(-1);
  std::vector<int> a_batch(a.shape().begin(), a.shape().end() - 2);
  std::vector<int> b_batch(b.shape().begin(), b.shape().end() - 2);
  std::vector<int> out_batch;
  if (a_batch == b_batch) {
    out_batch = a_batch;
  } else if (a_batch.empty()) {
    out_batch = b_batch;
    p.a_broadcast = true;
  } else if (b_batch.empty()) {
    out_batch = a_batch;
    p.b_broadcast = true;
  } else {
    CHECK(false) << "matmul batch dims mismatch";
  }
  p.batch = NumElements(out_batch);
  p.out_shape = out_batch;
  p.out_shape.push_back(p.m);
  p.out_shape.push_back(p.n);
  return p;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MatMulPlan p = PlanMatMul(a, b);
  const int64_t total = NumElements(p.out_shape);
  std::vector<float> out = BufferPool::Global().Acquire(total);
  const int64_t a_stride = p.a_broadcast ? 0 : static_cast<int64_t>(p.m) * p.k;
  const int64_t b_stride = p.b_broadcast ? 0 : static_cast<int64_t>(p.k) * p.n;
  const int64_t c_stride = static_cast<int64_t>(p.m) * p.n;
  // Rows of the (flattened) output are independent, and GemmAcc
  // accumulates every element in ascending-k order regardless of how many
  // rows one call covers, so neither the chunk boundaries nor the
  // blocked/small kernel choice (pure function of the chunk's shape) can
  // change any output bit. The zero-fill lives inside the kernel so replay
  // (which reuses the buffer) accumulates from zero exactly like the
  // freshly zero-acquired eager buffer.
  auto kernel = [p, total, a_stride, b_stride,
                 c_stride](const float* ad, const float* bd, float* cd) {
    std::fill(cd, cd + total, 0.0f);
    const int64_t row_work = static_cast<int64_t>(p.k) * p.n;
    ParallelFor(0, p.batch * p.m, GrainFor(row_work),
                [&](int64_t r0, int64_t r1) {
                  for (int64_t r = r0; r < r1;) {
                    const int64_t bi = r / p.m;
                    const int64_t i = r % p.m;
                    const int64_t rows = std::min(r1 - r, p.m - i);
                    GemmAcc(ad + bi * a_stride + i * p.k, p.k, false,
                            bd + bi * b_stride, p.n, false,
                            cd + bi * c_stride + i * p.n, p.n,
                            static_cast<int>(rows), p.k, p.n);
                    r += rows;
                  }
                });
  };
  kernel(a.data().data(), b.data().data(), out.data());
  Tensor ta = a, tb = b;
  auto backward = [ta, tb, p, a_stride, b_stride,
                   c_stride](internal::TensorImpl& node) mutable {
    auto& ga = ta.grad();
    auto& gb = tb.grad();
    const float* ad = ta.data().data();
    const float* bd = tb.data().data();
    const float* dc_all = node.grad.data();
    // dA[m,k] += dC[m,n] · Bᵀ and dB[k,n] += Aᵀ · dC[m,n]; the transposes
    // are absorbed by GemmAcc's packing, never materialized. Chunking is
    // over rows of the *output* grad with the batch loop inside, so
    // broadcast operands (shared grad across batches) still get disjoint
    // writes per chunk and a fixed bi-ascending per-element order.
    const int64_t a_row_work = p.batch * static_cast<int64_t>(p.k) * p.n;
    ParallelFor(0, p.m, GrainFor(a_row_work), [&](int64_t i0, int64_t i1) {
      const int rows = static_cast<int>(i1 - i0);
      for (int64_t bi = 0; bi < p.batch; ++bi) {
        GemmAcc(dc_all + bi * c_stride + i0 * p.n, p.n, false,
                bd + bi * b_stride, p.n, true,
                ga.data() + bi * a_stride + i0 * p.k, p.k, rows, p.n, p.k);
      }
    });
    const int64_t b_row_work = p.batch * static_cast<int64_t>(p.m) * p.n;
    ParallelFor(0, p.k, GrainFor(b_row_work), [&](int64_t k0, int64_t k1) {
      const int rows = static_cast<int>(k1 - k0);
      for (int64_t bi = 0; bi < p.batch; ++bi) {
        // Offsetting the transposed A operand by k0 selects virtual rows
        // [k0, k1) of Aᵀ: element (r, c) reads a[c * lda + r + k0].
        GemmAcc(ad + bi * a_stride + k0, p.k, true, dc_all + bi * c_stride,
                p.n, false, gb.data() + bi * b_stride + k0 * p.n, p.n, rows,
                p.m, p.n);
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(p.out_shape, std::move(out), {a, b},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ia = plan::In(a), ib = plan::In(b), io = plan::Out(result);
    plan::Commit([kernel, ia, ib, io](float* const* bufs) {
      kernel(bufs[ia], bufs[ib], bufs[io]);
    });
  }
  return result;
}

Tensor Transpose(const Tensor& x, int d0, int d1) {
  int nd = x.ndim();
  if (d0 < 0) d0 += nd;
  if (d1 < 0) d1 += nd;
  CHECK_GE(d0, 0);
  CHECK_LT(d0, nd);
  CHECK_GE(d1, 0);
  CHECK_LT(d1, nd);
  std::vector<int> out_shape = x.shape();
  std::swap(out_shape[static_cast<size_t>(d0)],
            out_shape[static_cast<size_t>(d1)]);
  std::vector<int64_t> in_strides = Strides(x.shape());
  std::vector<int64_t> perm_strides = in_strides;
  std::swap(perm_strides[static_cast<size_t>(d0)],
            perm_strides[static_cast<size_t>(d1)]);
  std::vector<int64_t> out_strides = Strides(out_shape);
  int64_t n = x.numel();
  std::vector<float> out = BufferPool::Global().Acquire(n);
  auto kernel = [n, out_shape, out_strides,
                 perm_strides](const float* xp, float* op) {
    ParallelFor(0, n, kElemGrain / 4, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        op[i] = xp[MapOffset(i, out_shape, out_strides, perm_strides)];
      }
    });
  };
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, out_shape, out_strides,
                   perm_strides](internal::TensorImpl& node) mutable {
    auto& gx = tx.grad();
    int64_t n2 = static_cast<int64_t>(node.grad.size());
    // The index map is a bijection, so the scatter writes are disjoint.
    ParallelFor(0, n2, kElemGrain / 4, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        int64_t src = MapOffset(i, out_shape, out_strides, perm_strides);
        gx[static_cast<size_t>(src)] += node.grad[static_cast<size_t>(i)];
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(std::move(out_shape), std::move(out), {x},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

Tensor Reshape(const Tensor& x, std::vector<int> shape) {
  int64_t known = 1;
  int infer = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      CHECK_EQ(infer, -1) << "at most one -1 in reshape";
      infer = static_cast<int>(i);
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    CHECK_GT(known, 0);
    CHECK_EQ(x.numel() % known, 0);
    shape[static_cast<size_t>(infer)] = static_cast<int>(x.numel() / known);
  }
  CHECK_EQ(NumElements(shape), x.numel());
  Tensor tx = x;
  auto backward = [tx](internal::TensorImpl& node) mutable {
    auto& gx = tx.grad();
    for (size_t i = 0; i < node.grad.size(); ++i) gx[i] += node.grad[i];
  };
  const int64_t n = x.numel();
  std::vector<float> out = BufferPool::Global().Acquire(n);
  std::copy(x.data().begin(), x.data().end(), out.begin());
  Tensor result = Tensor::MakeFromOp(std::move(shape), std::move(out), {x},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([n, ix, io](float* const* bufs) {
      std::copy(bufs[ix], bufs[ix] + n, bufs[io]);
    });
  }
  return result;
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  CHECK(!parts.empty());
  int nd = parts[0].ndim();
  if (axis < 0) axis += nd;
  CHECK_GE(axis, 0);
  CHECK_LT(axis, nd);
  std::vector<int> out_shape = parts[0].shape();
  int total_axis = 0;
  for (const Tensor& p : parts) {
    CHECK_EQ(p.ndim(), nd);
    for (int d = 0; d < nd; ++d) {
      if (d != axis) CHECK_EQ(p.dim(d), out_shape[static_cast<size_t>(d)]);
    }
    total_axis += p.dim(axis);
  }
  out_shape[static_cast<size_t>(axis)] = total_axis;
  int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= out_shape[static_cast<size_t>(d)];
  for (int d = axis + 1; d < nd; ++d) inner *= out_shape[static_cast<size_t>(d)];
  std::vector<float> out = BufferPool::Global().Acquire(NumElements(out_shape));
  std::vector<int> axis_sizes;
  for (const Tensor& p : parts) axis_sizes.push_back(p.dim(axis));
  auto kernel = [outer, inner, total_axis,
                 axis_sizes](const float* const* srcs, size_t num_parts,
                             float* op) {
    for (int64_t o = 0; o < outer; ++o) {
      int64_t dst_axis_off = 0;
      for (size_t pi = 0; pi < num_parts; ++pi) {
        int an = axis_sizes[pi];
        const float* src = srcs[pi] + o * an * inner;
        float* dst = op + (o * total_axis + dst_axis_off) * inner;
        std::copy(src, src + an * inner, dst);
        dst_axis_off += an;
      }
    }
  };
  {
    std::vector<const float*> srcs;
    for (const Tensor& p : parts) srcs.push_back(p.data().data());
    kernel(srcs.data(), srcs.size(), out.data());
  }
  std::vector<Tensor> parents = parts;
  auto backward = [parents, axis_sizes, outer, inner,
                   total_axis](internal::TensorImpl& node) mutable {
    for (int64_t o = 0; o < outer; ++o) {
      int64_t src_axis_off = 0;
      for (size_t pi = 0; pi < parents.size(); ++pi) {
        auto& gp = parents[pi].grad();
        int an = axis_sizes[pi];
        const float* g =
            node.grad.data() + (o * total_axis + src_axis_off) * inner;
        float* dst = gp.data() + o * an * inner;
        for (int64_t i = 0; i < static_cast<int64_t>(an) * inner; ++i) {
          dst[i] += g[i];
        }
        src_axis_off += an;
      }
    }
  };
  Tensor result = Tensor::MakeFromOp(std::move(out_shape), std::move(out),
                                     std::move(parents), std::move(backward));
  if (plan::Recording()) {
    std::vector<int> part_slots;
    for (const Tensor& p : parts) part_slots.push_back(plan::In(p));
    const int io = plan::Out(result);
    plan::Commit([kernel, part_slots, io](float* const* bufs) {
      std::vector<const float*> srcs(part_slots.size());
      for (size_t pi = 0; pi < part_slots.size(); ++pi) {
        srcs[pi] = bufs[part_slots[static_cast<size_t>(pi)]];
      }
      kernel(srcs.data(), srcs.size(), bufs[io]);
    });
  }
  return result;
}

Tensor Slice(const Tensor& x, int axis, int start, int length) {
  int nd = x.ndim();
  if (axis < 0) axis += nd;
  CHECK_GE(axis, 0);
  CHECK_LT(axis, nd);
  int an = x.dim(axis);
  CHECK_GE(start, 0);
  CHECK_GT(length, 0);
  CHECK_LE(start + length, an);
  std::vector<int> out_shape = x.shape();
  out_shape[static_cast<size_t>(axis)] = length;
  int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= x.dim(d);
  for (int d = axis + 1; d < nd; ++d) inner *= x.dim(d);
  std::vector<float> out = BufferPool::Global().Acquire(NumElements(out_shape));
  auto kernel = [outer, inner, an, start, length](const float* xp, float* op) {
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = xp + (o * an + start) * inner;
      float* dst = op + o * length * inner;
      std::copy(src, src + static_cast<int64_t>(length) * inner, dst);
    }
  };
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, outer, inner, an, start,
                   length](internal::TensorImpl& node) mutable {
    auto& gx = tx.grad();
    for (int64_t o = 0; o < outer; ++o) {
      const float* g = node.grad.data() + o * length * inner;
      float* dst = gx.data() + (o * an + start) * inner;
      for (int64_t i = 0; i < static_cast<int64_t>(length) * inner; ++i) {
        dst[i] += g[i];
      }
    }
  };
  Tensor result = Tensor::MakeFromOp(std::move(out_shape), std::move(out), {x},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

Tensor IndexSelect(const Tensor& x, int axis, const std::vector<int>& indices) {
  int nd = x.ndim();
  if (axis < 0) axis += nd;
  CHECK_GE(axis, 0);
  CHECK_LT(axis, nd);
  int an = x.dim(axis);
  for (int idx : indices) {
    CHECK_GE(idx, 0);
    CHECK_LT(idx, an);
  }
  std::vector<int> out_shape = x.shape();
  out_shape[static_cast<size_t>(axis)] = static_cast<int>(indices.size());
  int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= x.dim(d);
  for (int d = axis + 1; d < nd; ++d) inner *= x.dim(d);
  std::vector<float> out = BufferPool::Global().Acquire(NumElements(out_shape));
  int64_t k = static_cast<int64_t>(indices.size());
  std::vector<int> idx = indices;
  auto kernel = [outer, inner, an, k, idx](const float* xp, float* op) {
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t j = 0; j < k; ++j) {
        const float* src = xp + (o * an + idx[static_cast<size_t>(j)]) * inner;
        float* dst = op + (o * k + j) * inner;
        std::copy(src, src + inner, dst);
      }
    }
  };
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, idx, outer, inner, an,
                   k](internal::TensorImpl& node) mutable {
    auto& gx = tx.grad();
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t j = 0; j < k; ++j) {
        const float* g = node.grad.data() + (o * k + j) * inner;
        float* dst = gx.data() + (o * an + idx[static_cast<size_t>(j)]) * inner;
        for (int64_t i = 0; i < inner; ++i) dst[i] += g[i];
      }
    }
  };
  Tensor result = Tensor::MakeFromOp(std::move(out_shape), std::move(out), {x},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

namespace {

/// Decomposes shape into [outer, axis, inner] around `axis` (normalized).
void AxisGeometry(const Tensor& x, int* axis, int64_t* outer, int64_t* n,
                  int64_t* inner) {
  int nd = x.ndim();
  if (*axis < 0) *axis += nd;
  CHECK_GE(*axis, 0);
  CHECK_LT(*axis, nd);
  *outer = 1;
  *inner = 1;
  for (int d = 0; d < *axis; ++d) *outer *= x.dim(d);
  *n = x.dim(*axis);
  for (int d = *axis + 1; d < nd; ++d) *inner *= x.dim(d);
}

}  // namespace

Tensor Sum(const Tensor& x, int axis, bool keepdim) {
  int ax = axis;
  int64_t outer, n, inner;
  AxisGeometry(x, &ax, &outer, &n, &inner);
  std::vector<int> out_shape;
  for (int d = 0; d < x.ndim(); ++d) {
    if (d == ax) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(x.dim(d));
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);
  std::vector<float> out = BufferPool::Global().Acquire(outer * inner);
  // Zero-fill inside the kernel so replay accumulates from zero too.
  auto kernel = [outer, n, inner](const float* xp, float* op) {
    std::fill(op, op + outer * inner, 0.0f);
    ParallelFor(0, outer, GrainFor(n * inner), [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        for (int64_t j = 0; j < n; ++j) {
          const float* src = xp + (o * n + j) * inner;
          float* dst = op + o * inner;
          for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
        }
      }
    });
  };
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, outer, n, inner](internal::TensorImpl& node) mutable {
    auto& gx = tx.grad();
    ParallelFor(0, outer, GrainFor(n * inner), [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        const float* g = node.grad.data() + o * inner;
        for (int64_t j = 0; j < n; ++j) {
          float* dst = gx.data() + (o * n + j) * inner;
          for (int64_t i = 0; i < inner; ++i) dst[i] += g[i];
        }
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(std::move(out_shape), std::move(out), {x},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

Tensor Mean(const Tensor& x, int axis, bool keepdim) {
  int ax = axis < 0 ? axis + x.ndim() : axis;
  float inv = 1.0f / static_cast<float>(x.dim(ax));
  return MulScalar(Sum(x, axis, keepdim), inv);
}

Tensor SumAll(const Tensor& x) {
  const int64_t n = x.numel();
  // Serial fold in flat index order (thread-count invariant by construction).
  auto kernel = [n](const float* xp, float* op) {
    float total = 0.0f;
    for (int64_t i = 0; i < n; ++i) total += xp[i];
    op[0] = total;
  };
  float total = 0.0f;
  kernel(x.data().data(), &total);
  Tensor tx = x;
  auto backward = [tx](internal::TensorImpl& node) mutable {
    auto& gx = tx.grad();
    float g = node.grad[0];
    for (auto& v : gx) v += g;
  };
  Tensor result = Tensor::MakeFromOp({1}, {total}, {x}, std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

Tensor MeanAll(const Tensor& x) {
  return MulScalar(SumAll(x), 1.0f / static_cast<float>(x.numel()));
}

Tensor Softmax(const Tensor& x, int axis) {
  int ax = axis;
  int64_t outer, n, inner;
  AxisGeometry(x, &ax, &outer, &n, &inner);
  std::vector<float> out = BufferPool::Global().Acquire(x.numel());
  auto kernel = [outer, n, inner](const float* xp, float* op) {
    ParallelFor(0, outer, GrainFor(n * inner), [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        for (int64_t i = 0; i < inner; ++i) {
          const int64_t base = o * n * inner + i;
          float mx = -std::numeric_limits<float>::infinity();
          for (int64_t j = 0; j < n; ++j) {
            mx = std::max(mx, xp[base + j * inner]);
          }
          float denom = 0.0f;
          for (int64_t j = 0; j < n; ++j) {
            const int64_t idx = base + j * inner;
            op[idx] = std::exp(xp[idx] - mx);
            denom += op[idx];
          }
          for (int64_t j = 0; j < n; ++j) op[base + j * inner] /= denom;
        }
      }
    });
  };
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, outer, n, inner](internal::TensorImpl& node) mutable {
    float* gx = tx.grad().data();
    const float* g = node.grad.data();
    // node.data is this op's output y (nothing mutates tensor storage in
    // place), so the closure needs no captured copy of it.
    const float* yv = node.data.data();
    ParallelFor(0, outer, GrainFor(n * inner), [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        for (int64_t i = 0; i < inner; ++i) {
          const int64_t base = o * n * inner + i;
          float dot = 0.0f;
          for (int64_t j = 0; j < n; ++j) {
            const int64_t idx = base + j * inner;
            dot += g[idx] * yv[idx];
          }
          for (int64_t j = 0; j < n; ++j) {
            const int64_t idx = base + j * inner;
            gx[idx] += yv[idx] * (g[idx] - dot);
          }
        }
      }
    });
  };
  Tensor result = Tensor::MakeFromOp(x.shape(), std::move(out), {x},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

Tensor CausalConv1d(const Tensor& x, const Tensor& w, const Tensor& b,
                    int dilation) {
  CHECK_EQ(x.ndim(), 3);
  CHECK_EQ(w.ndim(), 3);
  CHECK_GE(dilation, 1);
  const int rows = x.dim(0), t_len = x.dim(1), c_in = x.dim(2);
  const int kernel = w.dim(0), c_out = w.dim(2);
  CHECK_EQ(w.dim(1), c_in);
  if (b.defined()) {
    CHECK_EQ(b.ndim(), 1);
    CHECK_EQ(b.dim(0), c_out);
  }
  std::vector<int> out_shape = {rows, t_len, c_out};
  std::vector<float> out = BufferPool::Global().Acquire(NumElements(out_shape));
  const bool has_bias = b.defined();
  const int64_t conv_row_work =
      static_cast<int64_t>(t_len) * kernel * c_in * c_out;
  // With a bias every output slot is overwritten by the bias row before any
  // accumulation; without one the kernel zero-fills first so replay
  // accumulates from zero too. `bp` is null iff has_bias is false.
  auto fwd_kernel = [rows, t_len, c_in, kernel, c_out, dilation, has_bias,
                     conv_row_work](const float* xp, const float* wp,
                                    const float* bp, float* op) {
    if (!has_bias) {
      std::fill(op, op + static_cast<int64_t>(rows) * t_len * c_out, 0.0f);
    }
    ParallelFor(0, rows, GrainFor(conv_row_work), [&](int64_t r0, int64_t r1) {
      for (int r = static_cast<int>(r0); r < r1; ++r) {
        for (int t = 0; t < t_len; ++t) {
          float* dst = op + (static_cast<int64_t>(r) * t_len + t) * c_out;
          if (has_bias) {
            for (int o = 0; o < c_out; ++o) dst[o] = bp[o];
          }
          for (int k = 0; k < kernel; ++k) {
            int tau = t - k * dilation;
            if (tau < 0) continue;
            const float* src = xp + (static_cast<int64_t>(r) * t_len + tau) * c_in;
            const float* wk = wp + static_cast<int64_t>(k) * c_in * c_out;
            for (int ci = 0; ci < c_in; ++ci) {
              float sv = src[ci];
              if (sv == 0.0f) continue;
              const float* wrow = wk + static_cast<int64_t>(ci) * c_out;
              for (int o = 0; o < c_out; ++o) dst[o] += sv * wrow[o];
            }
          }
        }
      }
    });
  };
  fwd_kernel(x.data().data(), w.data().data(),
             has_bias ? b.data().data() : nullptr, out.data());
  Tensor tx = x, tw = w, tb = b;
  std::vector<Tensor> parents = {x, w};
  if (b.defined()) parents.push_back(b);
  auto backward = [tx, tw, tb, rows, t_len, c_in, kernel, c_out,
                   dilation](internal::TensorImpl& node) mutable {
    auto& gx = tx.grad();
    auto& gw = tw.grad();
    const auto& xv = tx.data();
    const auto& wv = tw.data();
    const auto& g = node.grad;
    const int64_t row_work = static_cast<int64_t>(t_len) * kernel * c_in * c_out;
    if (!WillParallelize(rows, row_work)) {
      // Fused single pass: dX and dW share the dC reads.
      for (int r = 0; r < rows; ++r) {
        for (int t = 0; t < t_len; ++t) {
          const float* grow =
              g.data() + (static_cast<int64_t>(r) * t_len + t) * c_out;
          for (int k = 0; k < kernel; ++k) {
            int tau = t - k * dilation;
            if (tau < 0) continue;
            const float* src =
                xv.data() + (static_cast<int64_t>(r) * t_len + tau) * c_in;
            float* gsrc =
                gx.data() + (static_cast<int64_t>(r) * t_len + tau) * c_in;
            const float* wk =
                wv.data() + static_cast<int64_t>(k) * c_in * c_out;
            float* gwk = gw.data() + static_cast<int64_t>(k) * c_in * c_out;
            for (int ci = 0; ci < c_in; ++ci) {
              const float* wrow = wk + static_cast<int64_t>(ci) * c_out;
              float* gwrow = gwk + static_cast<int64_t>(ci) * c_out;
              float acc = 0.0f;
              for (int o = 0; o < c_out; ++o) {
                acc += grow[o] * wrow[o];
                gwrow[o] += grow[o] * src[ci];
              }
              gsrc[ci] += acc;
            }
          }
        }
      }
    } else {
      // Parallel path, two passes with disjoint writes per chunk. Each grad
      // element keeps the fused pass's accumulation order — (t, k)-ascending
      // for dX, (r, t)-ascending for dW — so both paths are bit-identical.
      ParallelFor(0, rows, GrainFor(row_work), [&](int64_t r0, int64_t r1) {
        for (int r = static_cast<int>(r0); r < r1; ++r) {
          for (int t = 0; t < t_len; ++t) {
            const float* grow =
                g.data() + (static_cast<int64_t>(r) * t_len + t) * c_out;
            for (int k = 0; k < kernel; ++k) {
              int tau = t - k * dilation;
              if (tau < 0) continue;
              float* gsrc =
                  gx.data() + (static_cast<int64_t>(r) * t_len + tau) * c_in;
              const float* wk =
                  wv.data() + static_cast<int64_t>(k) * c_in * c_out;
              for (int ci = 0; ci < c_in; ++ci) {
                const float* wrow = wk + static_cast<int64_t>(ci) * c_out;
                float acc = 0.0f;
                for (int o = 0; o < c_out; ++o) acc += grow[o] * wrow[o];
                gsrc[ci] += acc;
              }
            }
          }
        }
      });
      const int64_t unit_work = static_cast<int64_t>(rows) * t_len * c_out;
      ParallelFor(0, static_cast<int64_t>(kernel) * c_in, GrainFor(unit_work),
                  [&](int64_t u0, int64_t u1) {
                    for (int64_t u = u0; u < u1; ++u) {
                      const int k = static_cast<int>(u / c_in);
                      const int ci = static_cast<int>(u % c_in);
                      float* gwrow = gw.data() + u * c_out;
                      for (int r = 0; r < rows; ++r) {
                        for (int t = 0; t < t_len; ++t) {
                          int tau = t - k * dilation;
                          if (tau < 0) continue;
                          const float* grow =
                              g.data() +
                              (static_cast<int64_t>(r) * t_len + t) * c_out;
                          float sv =
                              xv[static_cast<size_t>(
                                  (static_cast<int64_t>(r) * t_len + tau) *
                                      c_in +
                                  ci)];
                          for (int o = 0; o < c_out; ++o) {
                            gwrow[o] += grow[o] * sv;
                          }
                        }
                      }
                    }
                  });
    }
    if (tb.defined()) {
      auto& gb = tb.grad();
      for (int r = 0; r < rows; ++r) {
        for (int t = 0; t < t_len; ++t) {
          const float* grow =
              g.data() + (static_cast<int64_t>(r) * t_len + t) * c_out;
          for (int o = 0; o < c_out; ++o) gb[static_cast<size_t>(o)] += grow[o];
        }
      }
    }
  };
  Tensor result = Tensor::MakeFromOp(std::move(out_shape), std::move(out),
                                     std::move(parents), std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), iw = plan::In(w);
    const int ib = has_bias ? plan::In(b) : -1;
    const int io = plan::Out(result);
    plan::Commit([fwd_kernel, ix, iw, ib, io](float* const* bufs) {
      fwd_kernel(bufs[ix], bufs[iw], ib >= 0 ? bufs[ib] : nullptr, bufs[io]);
    });
  }
  return result;
}

Tensor Dropout(const Tensor& x, float p, Rng* rng, bool training) {
  // Inactive dropout is the identity: returning the input unchanged avoids
  // a full-tensor MulScalar(x, 1.0f) pass and its tape node. Gradients then
  // accumulate directly into x (x * 1.0f was already bit-exact, and every
  // dropout site feeds a single consumer, so the sum order is unchanged).
  if (!training || p <= 0.0f) return x;
  CHECK_LT(p, 1.0f);
  float scale = 1.0f / (1.0f - p);
  const size_t n = x.data().size();
  // The mask lives behind a shared_ptr so the replay thunk and the backward
  // closure observe the same draw: on every replay the thunk re-rolls the
  // mask from the SAME Rng in the same element order an eager step would
  // (the RNG stream stays bit-identical to eager execution), and the
  // retained backward closure reads the refreshed values through the
  // pointer instead of a frozen copy.
  auto mask = std::make_shared<std::vector<float>>(n);
  auto kernel = [mask, n, p, scale, rng](const float* xp, float* op) {
    float* mp = mask->data();
    for (size_t i = 0; i < n; ++i) mp[i] = rng->Bernoulli(p) ? 0.0f : scale;
    for (size_t i = 0; i < n; ++i) op[i] = xp[i] * mp[i];
  };
  std::vector<float> out =
      BufferPool::Global().Acquire(static_cast<int64_t>(n));
  kernel(x.data().data(), out.data());
  Tensor tx = x;
  auto backward = [tx, mask](internal::TensorImpl& node) mutable {
    auto& gx = tx.grad();
    const float* mp = mask->data();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      gx[i] += node.grad[i] * mp[i];
    }
  };
  Tensor result = Tensor::MakeFromOp(x.shape(), std::move(out), {x},
                                     std::move(backward));
  if (plan::Recording()) {
    const int ix = plan::In(x), io = plan::Out(result);
    plan::Commit([kernel, ix, io](float* const* bufs) {
      kernel(bufs[ix], bufs[io]);
    });
  }
  return result;
}

Tensor MaeLoss(const Tensor& pred, const Tensor& target) {
  CHECK(pred.shape() == target.shape());
  // One tape node (fused sub+abs+mean) instead of four; dispatches to the
  // op-graph composition when fusion is disabled.
  return FusedMaeLoss(pred, target);
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  CHECK(pred.shape() == target.shape());
  return MeanAll(Square(Sub(pred, target)));
}

Tensor BceLoss(const Tensor& prob, const Tensor& target) {
  CHECK(prob.shape() == target.shape());
  Tensor one_minus_p = AddScalar(Neg(prob), 1.0f);
  Tensor one_minus_t = AddScalar(Neg(target), 1.0f);
  Tensor ll = Add(Mul(target, Log(prob)), Mul(one_minus_t, Log(one_minus_p)));
  return Neg(MeanAll(ll));
}

}  // namespace autocts
