// AVX2 kernel backend. This translation unit alone is compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt); it must never be entered
// on a CPU without AVX2, which supported() guarantees via cpuid.
//
// The micro-kernel is the hand-tiled v8 kernel that previously lived in
// tensor/gemm.cc when the whole tree required AVX2. The generic bodies from
// backend_kernels.inc are also compiled here under AVX2 flags, so the
// small-GEMM and quantized paths autovectorize to ymm code while keeping
// the backend-invariant per-element accumulation order.

#include "tensor/backend.h"

// The 32-byte vector type below changes ABI when AVX is off; everything
// using it is internal and inlined, so the warning is noise.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace autocts {
namespace kernels {
namespace {

#include "tensor/backend_kernels.inc"

/// 8-wide float vector via the GCC/Clang vector extension: one ymm register
/// under AVX2. All uses are elementwise (mul/add per lane, no horizontal
/// reductions), so lane j of an accumulator is exactly the scalar sequence
/// for column j.
typedef float v8 __attribute__((vector_size(32)));
/// Same type with alignment 4 for unaligned loads/stores of C rows.
typedef float v8u __attribute__((vector_size(32), aligned(4)));

inline v8 Load8(const float* p) { return *reinterpret_cast<const v8u*>(p); }
inline void Store8(float* p, v8 v) { *reinterpret_cast<v8u*>(p) = v; }
inline v8 Splat(float x) { return v8{x, x, x, x, x, x, x, x}; }

/// Micro-kernel register tile: 6 rows x 16 columns of C = 12 named v8
/// accumulators, leaving registers for the two B vectors and the A
/// broadcast (15 of 16 ymm under AVX2). Named scalars instead of a 2-D
/// array because GCC only register-allocates the tile reliably this way.
/// Loads C into registers, accumulates all kb products per element in
/// ascending-kk order, stores once.
void Avx2GemmMicro(int kb, const float* __restrict ap,
                   const float* __restrict bp, float* c, int64_t ldc) {
  static_assert(kGemmMr == 6 && kGemmNr == 16,
                "register tile hard-codes the 6x16 geometry");
  v8 c00 = Load8(c + 0 * ldc), c01 = Load8(c + 0 * ldc + 8);
  v8 c10 = Load8(c + 1 * ldc), c11 = Load8(c + 1 * ldc + 8);
  v8 c20 = Load8(c + 2 * ldc), c21 = Load8(c + 2 * ldc + 8);
  v8 c30 = Load8(c + 3 * ldc), c31 = Load8(c + 3 * ldc + 8);
  v8 c40 = Load8(c + 4 * ldc), c41 = Load8(c + 4 * ldc + 8);
  v8 c50 = Load8(c + 5 * ldc), c51 = Load8(c + 5 * ldc + 8);
  for (int kk = 0; kk < kb; ++kk) {
    const float* arow = ap + kk * kGemmMr;
    const v8 b0 = Load8(bp + kk * kGemmNr);
    const v8 b1 = Load8(bp + kk * kGemmNr + 8);
    v8 a;
    a = Splat(arow[0]), c00 += a * b0, c01 += a * b1;
    a = Splat(arow[1]), c10 += a * b0, c11 += a * b1;
    a = Splat(arow[2]), c20 += a * b0, c21 += a * b1;
    a = Splat(arow[3]), c30 += a * b0, c31 += a * b1;
    a = Splat(arow[4]), c40 += a * b0, c41 += a * b1;
    a = Splat(arow[5]), c50 += a * b0, c51 += a * b1;
  }
  Store8(c + 0 * ldc, c00), Store8(c + 0 * ldc + 8, c01);
  Store8(c + 1 * ldc, c10), Store8(c + 1 * ldc + 8, c11);
  Store8(c + 2 * ldc, c20), Store8(c + 2 * ldc + 8, c21);
  Store8(c + 3 * ldc, c30), Store8(c + 3 * ldc + 8, c31);
  Store8(c + 4 * ldc, c40), Store8(c + 4 * ldc + 8, c41);
  Store8(c + 5 * ldc, c50), Store8(c + 5 * ldc + 8, c51);
}

bool Avx2Supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Backend kAvx2Backend = {
    "avx2",            &Avx2Supported,  &Avx2GemmMicro,
    &GenericGemmSmall, &GenericQgemmS8, &GenericQgemmBf16,
};

}  // namespace

const Backend& Avx2Backend() { return kAvx2Backend; }

}  // namespace kernels
}  // namespace autocts
