#include "tensor/buffer_pool.h"

#include <algorithm>

#include "common/runtime_config.h"

namespace autocts {
namespace {

/// floor(log2(x)) for x >= 1.
int FloorLog2(uint64_t x) {
  int b = 0;
  while (x >>= 1) ++b;
  return b;
}

/// ceil(log2(x)) for x >= 1.
int CeilLog2(uint64_t x) {
  int b = FloorLog2(x);
  return (uint64_t{1} << b) == x ? b : b + 1;
}

}  // namespace

BufferPool& BufferPool::Global() {
  static BufferPool* pool = new BufferPool;  // Leaked: see header.
  return *pool;
}

BufferPool::BufferPool()
    : capacity_bytes_(GlobalRuntimeConfig().pool_capacity_bytes) {}

std::vector<float> BufferPool::Acquire(int64_t n) {
  CHECK_GE(n, 0);
  const uint64_t un = static_cast<uint64_t>(n);
  if (un < (uint64_t{1} << kMinBucketLog2)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bypassed;
    return std::vector<float>(un);
  }
  const int bucket = CeilLog2(un) - kMinBucketLog2;
  if (bucket < kNumBuckets) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& list = buckets_[bucket];
    if (!list.empty()) {
      std::vector<float> v = std::move(list.back());
      list.pop_back();
      ++stats_.hits;
      stats_.bytes_pooled -= v.capacity() * sizeof(float);
      // Stored at full capacity (>= n), so this resize only shrinks: O(1),
      // no reallocation, existing contents untouched.
      v.resize(un);
      return v;
    }
    ++stats_.misses;
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
  }
  // Fresh buffer, rounded up to the bucket size so it re-pools cleanly
  // (oversize requests allocate exactly and land in the top bucket later).
  std::vector<float> v;
  if (bucket < kNumBuckets) {
    v.reserve(uint64_t{1} << (bucket + kMinBucketLog2));
  }
  v.resize(un);
  return v;
}

std::vector<float> BufferPool::AcquireZeroed(int64_t n) {
  std::vector<float> v = Acquire(n);
  std::fill(v.begin(), v.end(), 0.0f);
  return v;
}

void BufferPool::Release(std::vector<float>&& v) {
  const uint64_t cap = v.capacity();
  if (cap < (uint64_t{1} << kMinBucketLog2)) {
    if (cap != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.dropped;
    }
    return;  // Frees on scope exit.
  }
  const int bucket =
      std::min(FloorLog2(cap) - kMinBucketLog2, kNumBuckets - 1);
  const uint64_t bytes = cap * sizeof(float);
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.bytes_pooled + bytes > capacity_bytes_) {
    ++stats_.dropped;
    return;
  }
  // Park at full capacity so a later Acquire can shrink-resize for free.
  v.resize(cap);
  stats_.bytes_pooled += bytes;
  ++stats_.releases;
  buckets_[bucket].push_back(std::move(v));
}

PoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t held = stats_.bytes_pooled;
  stats_ = PoolStats{};
  stats_.bytes_pooled = held;
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& list : buckets_) list.clear();
  stats_.bytes_pooled = 0;
}

void BufferPool::set_capacity_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = bytes;
}

namespace {

/// Registers the global pool as ExecContext's stats provider (the common
/// layer cannot depend on tensor/, so the link is a function pointer).
const bool kStatsProviderRegistered = [] {
  RegisterPoolStatsProvider([] { return BufferPool::Global().stats(); });
  return true;
}();

}  // namespace

}  // namespace autocts
