#ifndef REPRO_TENSOR_PLAN_H_
#define REPRO_TENSOR_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace autocts {

/// ---------------------------------------------------------------------------
/// Graph capture & replay (see DESIGN.md "Graph capture & replay").
///
/// A StepPlan records one eager step — every op's forward kernel as a flat
/// "thunk" over a slot-indexed buffer table, plus (for training steps) the
/// exact backward-closure invocation order — and then replays it with zero
/// tape-node allocation, zero shape inference, and zero buffer-pool
/// round-trips. Replay is bit-exact versus eager execution: the thunks ARE
/// the eager kernels (same code, same accumulation order, same ParallelFor
/// partitioning contract), run over the same buffers in the same order.
///
/// Capture protocol (implemented by every op in ops.cc / fused.cc):
///
///   auto kernel = [geometry...](const float* a, float* out) { ... };
///   kernel(a_ptr, out_ptr);                       // eager execution
///   if (plan::Recording()) {
///     const int ia = plan::In(a), io = plan::Out(out_t);
///     plan::Commit([kernel, ia, io](float* const* b) {
///       kernel(b[ia], b[io]);
///     });
///   }
///
/// plan::In / plan::Out intern a Tensor into the recording plan's slot
/// table (Out additionally marks the slot as produced by this op);
/// plan::Commit appends the thunk. Tensor::MakeFromOp independently notes
/// every op output born during the capture, and EndCapture refuses to
/// freeze unless each one was bound via plan::Out — so an uninstrumented op
/// poisons the capture (the step falls back to eager, permanently for that
/// plan) instead of replaying a graph with a hole in it.
/// ---------------------------------------------------------------------------

namespace plan {

/// Whether step plans are captured/replayed at all. Defaults to on;
/// AUTOCTS_NO_PLAN=1 in the environment disables them (every step then runs
/// eagerly — the A/B knob for the plan benchmark). SetPlansEnabled overrides
/// the environment for the current process.
bool PlansEnabled();
void SetPlansEnabled(bool enabled);

/// True while a StepPlan capture is active on the current thread. Op
/// implementations use this to decide whether to record; everyone else can
/// ignore it. Captures never nest on one thread.
bool Recording();

/// Interns `t` as an input of the op being recorded; returns its slot index
/// in the plan's buffer table. The plan keeps `t`'s storage alive.
int In(const Tensor& t);

/// Interns `t` as an output of the op being recorded (the op's thunk writes
/// the slot's buffer on every replay); returns its slot index.
int Out(const Tensor& t);

/// Appends the recorded op's replay thunk. `thunk` receives the plan's
/// buffer table, indexed by the slots handed out by In/Out.
void Commit(std::function<void(float* const*)> thunk);

/// Marks the active capture as unusable (e.g. an op that cannot replay).
/// The eager step still completes; EndCapture will fail and the owning call
/// site keeps running eagerly. No-op when not recording.
void Poison(const char* reason);

/// Tape nodes currently pinned by frozen plans on this thread — the plans'
/// share of LiveTapeNodesThisThread(). The stale-tape capture assert checks
/// live == pinned: anything above what plans pin is a leaked step graph.
uint64_t PinnedTapeNodesThisThread();

namespace detail {
/// Capture hooks called by tensor.cc (only while Recording()).
void NoteNodeCreated(const Tensor& t);
void NoteBackwardBegin(internal::TensorImpl* root);
void NoteBackwardNode(internal::TensorImpl* node);
}  // namespace detail

}  // namespace plan

/// One captured step. Owns the recorded thunks, the pinned tensors of the
/// captured graph, and (for inference plans) the bump arena that replaces
/// pool-backed intermediates.
///
/// Training plans (SetLoss + a Backward during capture) keep every
/// intermediate pinned to its original impl-backed buffer — the retained
/// backward closures read node/parent storage directly — and replay both
/// passes; the optimizer step is already tape-free (fused Adam) and runs
/// unchanged. Inference plans (AddOutput, capture under NoGradScope) have
/// no closures to satisfy, so every pure intermediate is released back to
/// the buffer pool at freeze and its slot re-bound into a single arena with
/// liveness-based (def..last-use) offset reuse.
///
/// Replay sequence:
///   if (p.ready() && p.MatchesInputs(inputs)) {
///     p.BeginStep(inputs);   // memcpy fresh inputs, zero pinned grads
///     p.RunForward();        // flat thunk list
///     ... probe p.LossValue() / p.output(i), guard, fault-inject ...
///     p.RunBackward();       // training plans only
///   }
///
/// Not thread-safe: capture and every replay of one StepPlan must happen on
/// the thread that captured it (distinct plans on distinct threads are
/// fine; recording state is thread-local). This is a hard invariant, not
/// just a data race: frozen plans pin tape-node accounting in thread-local
/// counters, so a cross-thread replay (or destruction) corrupts another
/// thread's bookkeeping. The plan remembers its capture thread; debug
/// builds assert the invariant inside BeginStep/RunForward/RunBackward, and
/// ValidateReplayThread() reports a violation as a clear error Status for
/// release-mode callers (long-lived serving workers) that would otherwise
/// hit silent UB.
class StepPlan {
 public:
  StepPlan();
  ~StepPlan();

  StepPlan(const StepPlan&) = delete;
  StepPlan& operator=(const StepPlan&) = delete;

  /// ---- Capture ---------------------------------------------------------

  /// Starts recording the ops the current thread executes. `inputs` are the
  /// tensors refreshed with new data every step (batch x/y, stacked
  /// encodings, targets); everything else touched by the step is frozen as
  /// a constant or parameter of the plan. In debug builds, asserts that no
  /// stale (un-released, un-pinned) tape nodes exist on this thread.
  void BeginCapture(std::vector<Tensor> inputs, std::string tag);

  /// Declares the scalar loss of a training capture. Its Backward() must
  /// run while the capture is still open.
  void SetLoss(const Tensor& loss);

  /// Declares a tensor whose values callers read after each replay
  /// (inference plans). Output buffers are never arena-aliased.
  void AddOutput(const Tensor& output);

  /// Stops recording and freezes the plan. Returns false (and leaves the
  /// plan unusable but safe) when the capture was poisoned — the caller
  /// simply keeps running eagerly.
  bool EndCapture();

  /// Stops recording and discards everything (e.g. the eager step aborted
  /// on a guardrail mid-capture). The plan may capture again later.
  void AbortCapture();

  bool capturing() const;
  /// True when a frozen plan is loaded and replayable.
  bool ready() const;
  /// True when a capture attempt was poisoned; callers should stop trying
  /// to capture with this plan and stay eager.
  bool capture_failed() const;

  /// Drops the frozen plan (counts as an invalidation in PlanStats). The
  /// next step can recapture — this is the shape/knob-change and
  /// NaN-quarantine-recovery path.
  void Invalidate();

  /// ---- Replay ----------------------------------------------------------

  /// Ok when the calling thread is allowed to replay this plan — i.e. it is
  /// the thread that captured it, or the plan is not frozen. A descriptive
  /// error otherwise. Replaying (or destroying) a frozen plan on any other
  /// thread is UB; callers holding plans in long-lived worker threads should
  /// validate on re-entry paths where thread affinity is not structural.
  Status ValidateReplayThread() const;

  /// True when `inputs` have the captured shapes and the global knobs the
  /// plan was captured under (fused kernels, guardrails, plans enabled)
  /// still hold. On false the caller should Invalidate() and recapture.
  bool MatchesInputs(const std::vector<Tensor>& inputs) const;

  /// Copies this step's input values into the captured input buffers and
  /// zeroes every pinned gradient (the replay equivalent of fresh zeroed
  /// intermediate grads plus optimizer ZeroGrad).
  void BeginStep(const std::vector<Tensor>& inputs);

  /// Writable view of the `i`-th captured input buffer (the slot BeginStep
  /// memcpys into), or nullptr when no recorded op reads that input. The
  /// streaming engine maintains its window directly in this buffer —
  /// updating the few slots a new tick changes — and then replays via
  /// BeginStepInPlace(), skipping the full per-step window copy. The
  /// pointer is stable for the lifetime of the frozen plan (until
  /// Invalidate()); writing it from a thread other than the capture thread
  /// follows the same affinity rule as replay.
  float* input_data(size_t i);
  /// Element count of the `i`-th captured input buffer.
  int64_t input_size(size_t i) const;

  /// BeginStep for callers that already refreshed the input buffers via
  /// input_data(): zeroes pinned gradients only, copies nothing.
  void BeginStepInPlace();

  /// Executes the recorded forward thunks.
  void RunForward();

  /// The loss value after RunForward (training plans).
  float LossValue() const;

  /// Seeds the loss gradient and re-invokes the captured backward closures
  /// in the recorded order (training plans).
  void RunBackward();

  /// The `i`-th AddOutput tensor; its values are refreshed by RunForward.
  const Tensor& output(size_t i = 0) const;

  /// ---- Introspection ---------------------------------------------------

  /// Bytes of the replay arena (inference plans; 0 for training plans).
  int64_t arena_bytes() const;
  /// Bytes pinned to impl-backed buffers (data + grad) by the frozen plan.
  int64_t pinned_bytes() const;
  /// Recorded forward thunks in the frozen plan.
  int64_t num_ops() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace autocts

#endif  // REPRO_TENSOR_PLAN_H_
