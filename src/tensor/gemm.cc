#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "tensor/backend.h"

namespace autocts {
namespace {

/// Register-tile geometry, fixed across all kernel backends (see
/// tensor/backend.h). The packing below produces exactly the strip/panel
/// layout every backend's micro-kernel consumes.
constexpr int kMr = kernels::kGemmMr;
constexpr int kNr = kernels::kGemmNr;
/// Cache blocking (Goto-style): the packed A block (kMc x kKc = 144 KiB)
/// plus one B panel column (kKc x kNr = 24 KiB) target L2; a full packed B
/// panel (kKc x kNc = 1.5 MiB) stays in the outer cache across all A
/// blocks. Tuned on AVX2 (see DESIGN.md "GEMM blocking & memory reuse").
constexpr int kMc = 96;
constexpr int kKc = 384;
constexpr int kNc = 1024;
/// Below this many multiply-adds the packing overhead beats the win and a
/// plain loop is faster. Purely shape-dependent, so kernel choice can never
/// vary with thread count (and both kernels are bit-identical anyway).
constexpr int64_t kBlockedMinWork = 1 << 15;

inline float At(const float* x, int64_t ld, bool trans, int64_t r, int64_t c) {
  return trans ? x[c * ld + r] : x[r * ld + c];
}

/// Packs the A block rows [ic, ic+mb) x depth [pc, pc+kb) into kMr-row
/// strips: strip s holds kb runs of kMr values a(ic+s*kMr+ii, pc+kk), so the
/// micro-kernel reads A contiguously. Rows past mb are zero-padded; padded
/// lanes are never read by the tail kernel, so the zeros are hygiene, not
/// arithmetic (a padded product could flip -0.0 bits).
void PackA(float* dst, const float* a, int64_t lda, bool trans_a, int ic,
           int pc, int mb, int kb) {
  for (int ir = 0; ir < mb; ir += kMr) {
    const int mr = std::min(kMr, mb - ir);
    float* strip = dst + static_cast<int64_t>(ir / kMr) * kb * kMr;
    for (int kk = 0; kk < kb; ++kk) {
      float* run = strip + kk * kMr;
      for (int ii = 0; ii < mr; ++ii) {
        run[ii] = At(a, lda, trans_a, ic + ir + ii, pc + kk);
      }
      for (int ii = mr; ii < kMr; ++ii) run[ii] = 0.0f;
    }
  }
}

/// Packs the B panel depth [pc, pc+kb) x columns [jc, jc+nb) into kNr-wide
/// column panels: panel p holds kb rows of kNr values b(pc+kk, jc+p*kNr+jj).
/// Transposition of B is absorbed here — backward's dA += dC·Bᵀ reads B
/// column-wise exactly once, during packing.
void PackB(float* dst, const float* b, int64_t ldb, bool trans_b, int pc,
           int jc, int kb, int nb) {
  for (int jr = 0; jr < nb; jr += kNr) {
    const int nr = std::min(kNr, nb - jr);
    float* panel = dst + static_cast<int64_t>(jr / kNr) * kb * kNr;
    for (int kk = 0; kk < kb; ++kk) {
      float* row = panel + kk * kNr;
      if (!trans_b) {
        const float* src = b + static_cast<int64_t>(pc + kk) * ldb + jc + jr;
        for (int jj = 0; jj < nr; ++jj) row[jj] = src[jj];
      } else {
        for (int jj = 0; jj < nr; ++jj) {
          row[jj] = b[static_cast<int64_t>(jc + jr + jj) * ldb + pc + kk];
        }
      }
      for (int jj = nr; jj < kNr; ++jj) row[jj] = 0.0f;
    }
  }
}

/// Edge tile (mr < kMr and/or nr < kNr): accumulates straight into C, same
/// ascending-kk per-element order, touching only valid rows/columns. Shared
/// across backends — edge tiles are a vanishing fraction of the work, so
/// they stay scalar rather than living in every backend.
void MicroKernelTail(int kb, const float* ap, const float* bp, float* c,
                     int64_t ldc, int mr, int nr) {
  for (int kk = 0; kk < kb; ++kk) {
    const float* arow = ap + kk * kMr;
    const float* brow = bp + kk * kNr;
    for (int i = 0; i < mr; ++i) {
      const float av = arow[i];
      float* crow = c + i * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void GemmAccRef(const float* a, int64_t lda, bool trans_a, const float* b,
                int64_t ldb, bool trans_b, float* c, int64_t ldc, int m, int k,
                int n) {
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = At(a, lda, trans_a, i, kk);
      for (int j = 0; j < n; ++j) {
        c[i * ldc + j] += av * At(b, ldb, trans_b, kk, j);
      }
    }
  }
}

void GemmAcc(const float* a, int64_t lda, bool trans_a, const float* b,
             int64_t ldb, bool trans_b, float* c, int64_t ldc, int m, int k,
             int n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  // Resolve the backend once per call; full tiles below dispatch through it
  // (bit-identical across backends, so a concurrent backend switch is
  // benign — see backend.h).
  const kernels::Backend& backend = kernels::ActiveBackend();
  if (static_cast<int64_t>(m) * k * n < kBlockedMinWork) {
    kernels::counters::NoteGemmSmall();
    backend.gemm_small(a, lda, trans_a, b, ldb, trans_b, c, ldc, m, k, n);
    return;
  }
  kernels::counters::NoteGemmMicro();
  // Per-thread packing scratch; callers fan out over disjoint row ranges of
  // C, so each worker packs its own copies (read-only inputs, no sharing).
  // Strip/panel counts round up, so the scratch must too (kMr/kNr need not
  // divide kMc/kNc).
  thread_local std::vector<float> a_pack;
  thread_local std::vector<float> b_pack;
  a_pack.resize(static_cast<size_t>((kMc + kMr - 1) / kMr) * kMr * kKc);
  b_pack.resize(static_cast<size_t>((kNc + kNr - 1) / kNr) * kNr * kKc);
  for (int jc = 0; jc < n; jc += kNc) {
    const int nb = std::min(kNc, n - jc);
    // For one jc stripe, pc blocks complete in ascending order before any
    // other stripe touches these C columns — the per-element ascending-k
    // accumulation order the determinism contract requires.
    for (int pc = 0; pc < k; pc += kKc) {
      const int kb = std::min(kKc, k - pc);
      PackB(b_pack.data(), b, ldb, trans_b, pc, jc, kb, nb);
      for (int ic = 0; ic < m; ic += kMc) {
        const int mb = std::min(kMc, m - ic);
        PackA(a_pack.data(), a, lda, trans_a, ic, pc, mb, kb);
        for (int jr = 0; jr < nb; jr += kNr) {
          const int nr = std::min(kNr, nb - jr);
          const float* bp =
              b_pack.data() + static_cast<int64_t>(jr / kNr) * kb * kNr;
          for (int ir = 0; ir < mb; ir += kMr) {
            const int mr = std::min(kMr, mb - ir);
            const float* ap =
                a_pack.data() + static_cast<int64_t>(ir / kMr) * kb * kMr;
            float* cc = c + static_cast<int64_t>(ic + ir) * ldc + jc + jr;
            if (mr == kMr && nr == kNr) {
              backend.gemm_micro(kb, ap, bp, cc, ldc);
            } else {
              MicroKernelTail(kb, ap, bp, cc, ldc, mr, nr);
            }
          }
        }
      }
    }
  }
}

}  // namespace autocts
