#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

// The 32-byte vector type below changes ABI when AVX is off; everything
// using it is internal and inlined, so the warning is noise.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace autocts {
namespace {

/// 8-wide float vector via the GCC/Clang vector extension: one ymm register
/// under AVX2, a pair of xmm ops otherwise. All uses are elementwise
/// (mul/add per lane, no horizontal reductions), so vectorization cannot
/// change any per-element accumulation order — lane j of an accumulator is
/// exactly the scalar sequence for column j.
typedef float v8 __attribute__((vector_size(32)));
/// Same type with alignment 4 for unaligned loads/stores of C rows.
typedef float v8u __attribute__((vector_size(32), aligned(4)));

inline v8 Load8(const float* p) { return *reinterpret_cast<const v8u*>(p); }
inline void Store8(float* p, v8 v) { *reinterpret_cast<v8u*>(p) = v; }
inline v8 Splat(float x) { return v8{x, x, x, x, x, x, x, x}; }

/// Micro-kernel register tile: 6 rows x 16 columns of C = 12 named v8
/// accumulators, leaving registers for the two B vectors and the A
/// broadcast (15 of 16 ymm under AVX2). Named scalars instead of a 2-D
/// array because GCC only register-allocates the tile reliably this way.
constexpr int kMr = 6;
constexpr int kNr = 16;
/// Cache blocking (Goto-style): the packed A block (kMc x kKc = 144 KiB)
/// plus one B panel column (kKc x kNr = 24 KiB) target L2; a full packed B
/// panel (kKc x kNc = 1.5 MiB) stays in the outer cache across all A
/// blocks. Tuned on AVX2 (see DESIGN.md "GEMM blocking & memory reuse").
constexpr int kMc = 96;
constexpr int kKc = 384;
constexpr int kNc = 1024;
/// Below this many multiply-adds the packing overhead beats the win and a
/// plain loop is faster. Purely shape-dependent, so kernel choice can never
/// vary with thread count (and both kernels are bit-identical anyway).
constexpr int64_t kBlockedMinWork = 1 << 15;

inline float At(const float* x, int64_t ld, bool trans, int64_t r, int64_t c) {
  return trans ? x[c * ld + r] : x[r * ld + c];
}

/// Packs the A block rows [ic, ic+mb) x depth [pc, pc+kb) into kMr-row
/// strips: strip s holds kb runs of kMr values a(ic+s*kMr+ii, pc+kk), so the
/// micro-kernel reads A contiguously. Rows past mb are zero-padded; padded
/// lanes are never read by the tail kernel, so the zeros are hygiene, not
/// arithmetic (a padded product could flip -0.0 bits).
void PackA(float* dst, const float* a, int64_t lda, bool trans_a, int ic,
           int pc, int mb, int kb) {
  for (int ir = 0; ir < mb; ir += kMr) {
    const int mr = std::min(kMr, mb - ir);
    float* strip = dst + static_cast<int64_t>(ir / kMr) * kb * kMr;
    for (int kk = 0; kk < kb; ++kk) {
      float* run = strip + kk * kMr;
      for (int ii = 0; ii < mr; ++ii) {
        run[ii] = At(a, lda, trans_a, ic + ir + ii, pc + kk);
      }
      for (int ii = mr; ii < kMr; ++ii) run[ii] = 0.0f;
    }
  }
}

/// Packs the B panel depth [pc, pc+kb) x columns [jc, jc+nb) into kNr-wide
/// column panels: panel p holds kb rows of kNr values b(pc+kk, jc+p*kNr+jj).
/// Transposition of B is absorbed here — backward's dA += dC·Bᵀ reads B
/// column-wise exactly once, during packing.
void PackB(float* dst, const float* b, int64_t ldb, bool trans_b, int pc,
           int jc, int kb, int nb) {
  for (int jr = 0; jr < nb; jr += kNr) {
    const int nr = std::min(kNr, nb - jr);
    float* panel = dst + static_cast<int64_t>(jr / kNr) * kb * kNr;
    for (int kk = 0; kk < kb; ++kk) {
      float* row = panel + kk * kNr;
      if (!trans_b) {
        const float* src = b + static_cast<int64_t>(pc + kk) * ldb + jc + jr;
        for (int jj = 0; jj < nr; ++jj) row[jj] = src[jj];
      } else {
        for (int jj = 0; jj < nr; ++jj) {
          row[jj] = b[static_cast<int64_t>(jc + jr + jj) * ldb + pc + kk];
        }
      }
      for (int jj = nr; jj < kNr; ++jj) row[jj] = 0.0f;
    }
  }
}

/// Full kMr x kNr tile: loads C into registers, accumulates all kb products
/// per element in ascending-kk order, stores once. Per-element accumulation
/// order is therefore identical to the reference triple loop.
void MicroKernel(int kb, const float* __restrict ap, const float* __restrict bp,
                 float* c, int64_t ldc) {
  v8 c00 = Load8(c + 0 * ldc), c01 = Load8(c + 0 * ldc + 8);
  v8 c10 = Load8(c + 1 * ldc), c11 = Load8(c + 1 * ldc + 8);
  v8 c20 = Load8(c + 2 * ldc), c21 = Load8(c + 2 * ldc + 8);
  v8 c30 = Load8(c + 3 * ldc), c31 = Load8(c + 3 * ldc + 8);
  v8 c40 = Load8(c + 4 * ldc), c41 = Load8(c + 4 * ldc + 8);
  v8 c50 = Load8(c + 5 * ldc), c51 = Load8(c + 5 * ldc + 8);
  for (int kk = 0; kk < kb; ++kk) {
    const float* arow = ap + kk * kMr;
    const v8 b0 = Load8(bp + kk * kNr);
    const v8 b1 = Load8(bp + kk * kNr + 8);
    v8 a;
    a = Splat(arow[0]), c00 += a * b0, c01 += a * b1;
    a = Splat(arow[1]), c10 += a * b0, c11 += a * b1;
    a = Splat(arow[2]), c20 += a * b0, c21 += a * b1;
    a = Splat(arow[3]), c30 += a * b0, c31 += a * b1;
    a = Splat(arow[4]), c40 += a * b0, c41 += a * b1;
    a = Splat(arow[5]), c50 += a * b0, c51 += a * b1;
  }
  Store8(c + 0 * ldc, c00), Store8(c + 0 * ldc + 8, c01);
  Store8(c + 1 * ldc, c10), Store8(c + 1 * ldc + 8, c11);
  Store8(c + 2 * ldc, c20), Store8(c + 2 * ldc + 8, c21);
  Store8(c + 3 * ldc, c30), Store8(c + 3 * ldc + 8, c31);
  Store8(c + 4 * ldc, c40), Store8(c + 4 * ldc + 8, c41);
  Store8(c + 5 * ldc, c50), Store8(c + 5 * ldc + 8, c51);
}

/// Edge tile (mr < kMr and/or nr < kNr): accumulates straight into C, same
/// ascending-kk per-element order, touching only valid rows/columns.
void MicroKernelTail(int kb, const float* ap, const float* bp, float* c,
                     int64_t ldc, int mr, int nr) {
  for (int kk = 0; kk < kb; ++kk) {
    const float* arow = ap + kk * kMr;
    const float* brow = bp + kk * kNr;
    for (int i = 0; i < mr; ++i) {
      const float av = arow[i];
      float* crow = c + i * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Unblocked path for small problems. The no-transpose case is the
/// vectorizable axpy formulation; transposed operands read strided (small
/// shapes only, so the strides stay cache-resident).
void GemmSmall(const float* a, int64_t lda, bool trans_a, const float* b,
               int64_t ldb, bool trans_b, float* c, int64_t ldc, int m, int k,
               int n) {
  if (!trans_a && !trans_b) {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * ldc;
      for (int kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = b + kk * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }
  for (int i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (int kk = 0; kk < k; ++kk) {
      const float av = At(a, lda, trans_a, i, kk);
      if (!trans_b) {
        const float* brow = b + kk * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      } else {
        for (int j = 0; j < n; ++j) crow[j] += av * b[j * ldb + kk];
      }
    }
  }
}

}  // namespace

void GemmAccRef(const float* a, int64_t lda, bool trans_a, const float* b,
                int64_t ldb, bool trans_b, float* c, int64_t ldc, int m, int k,
                int n) {
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = At(a, lda, trans_a, i, kk);
      for (int j = 0; j < n; ++j) {
        c[i * ldc + j] += av * At(b, ldb, trans_b, kk, j);
      }
    }
  }
}

void GemmAcc(const float* a, int64_t lda, bool trans_a, const float* b,
             int64_t ldb, bool trans_b, float* c, int64_t ldc, int m, int k,
             int n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (static_cast<int64_t>(m) * k * n < kBlockedMinWork) {
    GemmSmall(a, lda, trans_a, b, ldb, trans_b, c, ldc, m, k, n);
    return;
  }
  // Per-thread packing scratch; callers fan out over disjoint row ranges of
  // C, so each worker packs its own copies (read-only inputs, no sharing).
  // Strip/panel counts round up, so the scratch must too (kMr/kNr need not
  // divide kMc/kNc).
  thread_local std::vector<float> a_pack;
  thread_local std::vector<float> b_pack;
  a_pack.resize(static_cast<size_t>((kMc + kMr - 1) / kMr) * kMr * kKc);
  b_pack.resize(static_cast<size_t>((kNc + kNr - 1) / kNr) * kNr * kKc);
  for (int jc = 0; jc < n; jc += kNc) {
    const int nb = std::min(kNc, n - jc);
    // For one jc stripe, pc blocks complete in ascending order before any
    // other stripe touches these C columns — the per-element ascending-k
    // accumulation order the determinism contract requires.
    for (int pc = 0; pc < k; pc += kKc) {
      const int kb = std::min(kKc, k - pc);
      PackB(b_pack.data(), b, ldb, trans_b, pc, jc, kb, nb);
      for (int ic = 0; ic < m; ic += kMc) {
        const int mb = std::min(kMc, m - ic);
        PackA(a_pack.data(), a, lda, trans_a, ic, pc, mb, kb);
        for (int jr = 0; jr < nb; jr += kNr) {
          const int nr = std::min(kNr, nb - jr);
          const float* bp =
              b_pack.data() + static_cast<int64_t>(jr / kNr) * kb * kNr;
          for (int ir = 0; ir < mb; ir += kMr) {
            const int mr = std::min(kMr, mb - ir);
            const float* ap =
                a_pack.data() + static_cast<int64_t>(ir / kMr) * kb * kMr;
            float* cc = c + static_cast<int64_t>(ic + ir) * ldc + jc + jr;
            if (mr == kMr && nr == kNr) {
              MicroKernel(kb, ap, bp, cc, ldc);
            } else {
              MicroKernelTail(kb, ap, bp, cc, ldc, mr, nr);
            }
          }
        }
      }
    }
  }
}

}  // namespace autocts
