#ifndef REPRO_TENSOR_GEMM_H_
#define REPRO_TENSOR_GEMM_H_

#include <cstdint>

namespace autocts {

/// Single-precision GEMM kernels behind MatMul's forward and backward.
///
/// Both entry points compute C[m,n] += op_a(A)[m,k] * op_b(B)[k,n] over
/// row-major storage, where op(X) is X or Xᵀ per the trans flag and the
/// leading dimension (`lda`/`ldb`/`ldc`) is the row stride of the
/// *untransposed* storage. Transposition happens inside the packing step of
/// the blocked kernel (and via strided reads in the reference), so callers
/// never materialize a transposed matrix — MatMul's backward passes
/// dA += dC·Bᵀ and dB += Aᵀ·dC hit this directly.
///
/// Determinism contract (load-bearing for parallel_test): every C element
/// accumulates its k products one at a time in ascending-k order, starting
/// from the value already in C. `GemmAcc` is bit-identical to `GemmAccRef`
/// by construction — blocking changes which products are *computed*
/// together, never the per-element accumulation order — so callers may
/// partition rows of C across threads arbitrarily without changing any
/// output bit. The build compiles with -ffp-contract=off so the compiler
/// cannot fuse a*b+c differently between the two kernels.

/// Cache-blocked, register-tiled kernel (Goto-style MC/KC/NC blocking with
/// packed A strips and B panels; 6x16 micro-kernel built on GCC vector
/// extensions so the C tile lives in registers). Falls back to a simple
/// loop for small problems where packing costs more than it saves.
void GemmAcc(const float* a, int64_t lda, bool trans_a, const float* b,
             int64_t ldb, bool trans_b, float* c, int64_t ldc, int m, int k,
             int n);

/// Reference kernel: plain i/kk/j triple loop, one add per product. Slow;
/// exists as the bit-exactness oracle for tests and benches.
void GemmAccRef(const float* a, int64_t lda, bool trans_a, const float* b,
                int64_t ldb, bool trans_b, float* c, int64_t ldc, int m, int k,
                int n);

}  // namespace autocts

#endif  // REPRO_TENSOR_GEMM_H_
