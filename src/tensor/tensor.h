#ifndef REPRO_TENSOR_TENSOR_H_
#define REPRO_TENSOR_TENSOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace autocts {

namespace internal {
struct TensorImpl;
}  // namespace internal

/// Storage behind a TensorImpl: either an owned, pool-recyclable
/// std::vector<float> (every tensor the ops produce) or a non-owning view
/// of externally managed read-only memory (Tensor::FromExternal — e.g. an
/// fp32 section of a memory-mapped sample bank). The surface mirrors the
/// vector subset the kernels use, so call sites are agnostic to the mode;
/// `keepalive` pins the external owner for as long as any handle references
/// this storage, which is what lets a borrowed tensor outlive the object
/// that produced it (lifetime rules: DESIGN.md "Memory-mapped sample
/// bank").
class FloatStorage {
 public:
  using value_type = float;
  using iterator = float*;
  using const_iterator = const float*;

  FloatStorage() = default;
  /// Owned mode; implicit so vector-producing code assigns straight in.
  FloatStorage(std::vector<float> owned)  // NOLINT(runtime/explicit)
      : owned_(std::move(owned)) {}

  /// Borrowed mode: a read-only view of `size` floats at `data`, kept
  /// valid by `keepalive` (typically a shared_ptr to an mmap region).
  static FloatStorage External(const float* data, size_t size,
                               std::shared_ptr<const void> keepalive) {
    FloatStorage s;
    s.ext_ = data;
    s.ext_size_ = size;
    s.keepalive_ = std::move(keepalive);
    return s;
  }

  /// Assigning an owned vector replaces the storage (drops any borrow).
  FloatStorage& operator=(std::vector<float> owned) {
    owned_ = std::move(owned);
    ext_ = nullptr;
    ext_size_ = 0;
    keepalive_.reset();
    return *this;
  }

  bool borrowed() const { return ext_ != nullptr; }
  size_t size() const { return borrowed() ? ext_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }

  const float* data() const { return borrowed() ? ext_ : owned_.data(); }
  /// Non-const access to borrowed storage yields the same read-only bytes;
  /// writing through it is a contract violation. Borrowed tensors are
  /// constant leaves and no op mutates its inputs' data, and the bank maps
  /// its file PROT_READ, so a violation faults loudly instead of silently
  /// corrupting the on-disk bank.
  float* data() { return borrowed() ? const_cast<float*>(ext_) : owned_.data(); }

  const float* begin() const { return data(); }
  const float* end() const { return data() + size(); }
  float* begin() { return data(); }
  float* end() { return data() + size(); }

  const float& operator[](size_t i) const { return data()[i]; }
  float& operator[](size_t i) { return data()[i]; }

  /// Moves out the owned buffer for pool recycling; empty when borrowed
  /// (external memory is never pooled). Leaves this storage empty.
  std::vector<float> TakeOwned() {
    ext_ = nullptr;
    ext_size_ = 0;
    keepalive_.reset();
    return std::move(owned_);
  }

  /// Materializes a copy — the pre-FloatStorage `std::vector<float>` value
  /// semantics, so sites that copied the data keep doing exactly that.
  operator std::vector<float>() const {  // NOLINT(runtime/explicit)
    return std::vector<float>(begin(), end());
  }

  friend bool operator==(const FloatStorage& a, const FloatStorage& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const FloatStorage& a, const std::vector<float>& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<float>& a, const FloatStorage& b) {
    return b == a;
  }

 private:
  std::vector<float> owned_;
  const float* ext_ = nullptr;
  size_t ext_size_ = 0;
  std::shared_ptr<const void> keepalive_;
};

/// A dense n-dimensional float tensor with reverse-mode autograd.
///
/// Tensor is a cheap, value-semantic handle (shared_ptr to the storage), so
/// copies alias the same buffer — the same convention as torch.Tensor. The
/// autograd tape is dynamic: every op that produces a Tensor records a
/// backward closure and its parents, and `Backward()` replays the tape in
/// reverse topological order, accumulating gradients into every node that
/// (transitively) requires them.
///
/// Scope: float32 only, contiguous row-major storage, CPU only. This is all
/// the AutoCTS++ reproduction needs; keeping the surface small keeps it
/// verifiable (see tests/tensor_gradcheck_test.cc).
class Tensor {
 public:
  /// An empty (undefined) tensor. Most APIs CHECK that operands are defined.
  Tensor() = default;

  /// ---- Factories -------------------------------------------------------

  static Tensor Zeros(std::vector<int> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int> shape, float value,
                     bool requires_grad = false);
  /// Takes ownership of `data`; its length must equal the shape's element
  /// count.
  static Tensor FromVector(std::vector<int> shape, std::vector<float> data,
                           bool requires_grad = false);
  /// I.i.d. normal entries.
  static Tensor Randn(std::vector<int> shape, Rng* rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor Rand(std::vector<int> shape, Rng* rng, float lo, float hi,
                     bool requires_grad = false);
  /// A scalar (shape {1}) tensor.
  static Tensor Scalar(float value, bool requires_grad = false);
  /// A constant leaf that borrows `size` floats of externally managed
  /// read-only memory instead of owning a buffer — the zero-copy path the
  /// memory-mapped sample bank hands its fp32 sections through. `keepalive`
  /// pins the owner (e.g. the mmap region) for the life of the storage; the
  /// borrowed bytes must stay valid and unchanged for that long. The
  /// result never requires grad and its buffer is never pool-recycled.
  static Tensor FromExternal(std::vector<int> shape, const float* data,
                             size_t size,
                             std::shared_ptr<const void> keepalive);

  /// ---- Introspection ---------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int>& shape() const;
  /// Number of dimensions.
  int ndim() const;
  /// Size along dimension `i`; negative indices count from the back.
  int dim(int i) const;
  /// Total number of elements.
  int64_t numel() const;

  FloatStorage& data();
  const FloatStorage& data() const;
  /// Gradient buffer (same length as data). Zeros until Backward() ran.
  std::vector<float>& grad();
  const std::vector<float>& grad() const;

  bool requires_grad() const;

  /// Single-element access for tests and glue code (row-major flat index).
  float item() const;
  float at(int64_t flat_index) const;

  /// ---- Autograd --------------------------------------------------------

  /// Runs reverse-mode differentiation from this tensor, seeding its own
  /// gradient with ones. Usually called on a scalar loss.
  void Backward();

  /// Clears this tensor's gradient buffer.
  void ZeroGrad();

  /// Severs this tensor's autograd graph: every reachable node's parent
  /// links and backward closure are cleared, so intermediate nodes that
  /// nothing else references are destroyed and their buffers return to the
  /// buffer pool immediately. Nodes still referenced elsewhere (parameters,
  /// cached activations) survive, gradients included — call this after the
  /// optimizer step to recycle the step's graph storage. Idempotent; no-op
  /// on undefined tensors.
  void ReleaseTape();

  /// A view of the same data that is cut off from the autograd tape.
  Tensor Detach() const;

  /// Deep copy of the data (not on the tape).
  Tensor Clone() const;

  /// "<shape [2, 3] data [ ... ]>" — for debugging and test failure output.
  std::string ToString(int max_elements = 16) const;

  /// ---- Internal (used by ops) ------------------------------------------

  /// Creates a tensor that is the result of an op. `parents` are the inputs
  /// whose gradients `backward` populates; `backward` receives the output
  /// node so it can read the upstream gradient. If no parent requires grad
  /// the closure is dropped and the result is a constant leaf.
  static Tensor MakeFromOp(std::vector<int> shape, std::vector<float> data,
                           std::vector<Tensor> parents,
                           std::function<void(internal::TensorImpl&)> backward);

  internal::TensorImpl* impl() const { return impl_.get(); }

  /// Number of Tensor handles sharing this storage (0 for undefined).
  /// StepPlan uses this at freeze time to prove an intermediate has no
  /// outside observers before aliasing its buffer into the replay arena.
  long use_count() const { return impl_.use_count(); }

 private:
  explicit Tensor(std::shared_ptr<internal::TensorImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::TensorImpl> impl_;
};

/// RAII scope that disables autograd taping on the current thread: while one
/// is alive, MakeFromOp drops parents/backward and returns constant leaves
/// even when inputs require grad (the torch.no_grad() idiom). Used by
/// inference paths — evaluation and comparator search — so forward passes
/// build no graph; forward values are unchanged. Scopes nest.
class NoGradScope {
 public:
  NoGradScope();
  ~NoGradScope();

  NoGradScope(const NoGradScope&) = delete;
  NoGradScope& operator=(const NoGradScope&) = delete;
};

/// False while a NoGradScope is alive on this thread.
bool GradTapeEnabled();

namespace internal {

/// Shared storage + tape node behind a Tensor handle.
struct TensorImpl {
  TensorImpl() = default;
  /// Returns data and grad to the global BufferPool — the tape-release hook:
  /// tearing down a step's graph (last handle dropped, or ReleaseTape)
  /// recycles every intermediate buffer for the next step.
  ~TensorImpl();

  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  std::vector<int> shape;
  /// Owned (pooled vector) or borrowed (external read-only view).
  FloatStorage data;
  /// Lazily sized to data.size() when gradients first flow. Always owned —
  /// even a borrowed-data tensor accumulates gradients locally.
  std::vector<float> grad;
  bool requires_grad = false;
  /// Inputs of the op that produced this node (empty for leaves).
  std::vector<Tensor> parents;
  /// Accumulates parent gradients given this node's grad; null for leaves.
  std::function<void(TensorImpl&)> backward;

  /// Sizes grad to data.size() (pool-backed, zero-filled) if it isn't yet.
  void EnsureGrad();
};

}  // namespace internal

/// Number of autograd tape nodes created since process start (op results
/// that recorded a backward closure; constant leaves don't count).
/// Monotonic and thread-safe — diff across a training step to measure the
/// step's tape size, as the fused-kernel benchmark does.
uint64_t TapeNodesCreated();

/// Number of tape nodes currently alive that were created on this thread
/// (created minus released/destroyed). By repo convention every training
/// step ends with ReleaseTape(), so this is zero between steps; StepPlan
/// capture asserts on it (debug builds) so a capture can never silently pin
/// a stale graph left over from an unreleased step. Per-thread because
/// graphs are built and torn down on the thread that trains the model (a
/// node released on a different thread would skew a global counter).
uint64_t LiveTapeNodesThisThread();

/// Number of elements implied by a shape.
int64_t NumElements(const std::vector<int>& shape);

/// Row-major strides for a shape.
std::vector<int64_t> Strides(const std::vector<int>& shape);

}  // namespace autocts

#endif  // REPRO_TENSOR_TENSOR_H_
