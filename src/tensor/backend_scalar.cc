// Scalar kernel backend: the portable fallback, compiled with the base
// project flags only (no ISA options), present in every build and supported
// on every CPU. Also the parity oracle backend_test memcmps the SIMD
// backends against.

#include "tensor/backend.h"

namespace autocts {
namespace kernels {
namespace {

#include "tensor/backend_kernels.inc"

bool ScalarSupported() { return true; }

const Backend kScalarBackend = {
    "scalar",          &ScalarSupported,  &GenericGemmMicro,
    &GenericGemmSmall, &GenericQgemmS8,   &GenericQgemmBf16,
};

}  // namespace

const Backend& ScalarBackend() { return kScalarBackend; }

}  // namespace kernels
}  // namespace autocts
