// AVX-512 kernel backend. This translation unit alone is compiled with
// -mavx512f (see src/tensor/CMakeLists.txt); supported() gates entry via
// cpuid so the binary stays runnable on narrower CPUs.
//
// With 64-byte vectors the kNr=16 tile is exactly one zmm register, so the
// micro-kernel needs 6 accumulators + 1 B vector + 1 broadcast = 8 of 32
// zmm — one B load per k step instead of AVX2's two. Per-element
// accumulation order is identical to the scalar and AVX2 kernels (lane j is
// the scalar chain for column j), so results are bit-identical.

#include "tensor/backend.h"

// 64-byte vector types change ABI without AVX-512; internal use only.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace autocts {
namespace kernels {
namespace {

#include "tensor/backend_kernels.inc"

/// 16-wide float vector: one zmm register under AVX-512F.
typedef float v16 __attribute__((vector_size(64)));
/// Same type with alignment 4 for unaligned loads/stores of C rows.
typedef float v16u __attribute__((vector_size(64), aligned(4)));

inline v16 Load16(const float* p) { return *reinterpret_cast<const v16u*>(p); }
inline void Store16(float* p, v16 v) { *reinterpret_cast<v16u*>(p) = v; }
inline v16 Splat16(float x) {
  return v16{x, x, x, x, x, x, x, x, x, x, x, x, x, x, x, x};
}

void Avx512GemmMicro(int kb, const float* __restrict ap,
                     const float* __restrict bp, float* c, int64_t ldc) {
  static_assert(kGemmMr == 6 && kGemmNr == 16,
                "register tile hard-codes the 6x16 geometry");
  v16 c0 = Load16(c + 0 * ldc);
  v16 c1 = Load16(c + 1 * ldc);
  v16 c2 = Load16(c + 2 * ldc);
  v16 c3 = Load16(c + 3 * ldc);
  v16 c4 = Load16(c + 4 * ldc);
  v16 c5 = Load16(c + 5 * ldc);
  for (int kk = 0; kk < kb; ++kk) {
    const float* arow = ap + kk * kGemmMr;
    const v16 b = Load16(bp + kk * kGemmNr);
    c0 += Splat16(arow[0]) * b;
    c1 += Splat16(arow[1]) * b;
    c2 += Splat16(arow[2]) * b;
    c3 += Splat16(arow[3]) * b;
    c4 += Splat16(arow[4]) * b;
    c5 += Splat16(arow[5]) * b;
  }
  Store16(c + 0 * ldc, c0);
  Store16(c + 1 * ldc, c1);
  Store16(c + 2 * ldc, c2);
  Store16(c + 3 * ldc, c3);
  Store16(c + 4 * ldc, c4);
  Store16(c + 5 * ldc, c5);
}

bool Avx512Supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

const Backend kAvx512Backend = {
    "avx512",          &Avx512Supported, &Avx512GemmMicro,
    &GenericGemmSmall, &GenericQgemmS8,  &GenericQgemmBf16,
};

}  // namespace

const Backend& Avx512Backend() { return kAvx512Backend; }

}  // namespace kernels
}  // namespace autocts
