// bench_bank — checkpoint-resume A/B for the memory-mapped sample bank
// (BENCH_PR8.json).
//
// Both legs open the same logical bank contents — a pretraining corpus of
// task sections (preliminary embeddings) plus sample-fate records — and
// make every sample usable again, which is exactly what a --resume run
// does before its first retrained sample:
//   * wholesale leg: read the legacy single-blob file, CRC-check it, parse
//     it, and materialize every float in heap memory (the pre-mmap resume
//     path, kept alive as this baseline).
//   * mmap leg: SampleBank::Open in read-only mode — map the file, scan
//     the frame headers, verify record CRCs — then borrow every section
//     zero-copy. No float is copied; untouched pages are never faulted in.
//
// Reported per leg: resume latency (mean/min/max over >=5 reps) and the
// resident-set growth the resume caused (/proc/self/statm delta — the RSS
// proxy for "does resume cost scale with bank size?"). The paired record
// bank_resume_mmap_vs_wholesale carries per-rep speedups; CI gates on its
// speedup_median. Smoke mode (--smoke or REPRO_SMOKE=1) shrinks the corpus
// from ~64MB to ~6MB but keeps >=5 reps so the median stays meaningful.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/harness.h"
#include "common/fileio.h"
#include "common/rng.h"
#include "comparator/bank_file.h"

namespace autocts {
namespace bench {
namespace {

struct BankConfig {
  int sections = 40;
  int windows = 32;    ///< W of each [W, S, F'] section.
  int steps = 24;      ///< S.
  int repr_dim = 512;  ///< F'.
  int records = 2000;
  int reps = 7;
};

/// Resident set size in bytes (statm field 2 × page size); 0 on failure.
double ResidentBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long total = 0, resident = 0;
  int got = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0.0;
  return static_cast<double>(resident) *
         static_cast<double>(sysconf(_SC_PAGESIZE));
}

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

BankImage MakeCorpus(const BankConfig& cfg) {
  BankImage image;
  image.config_hash = 4242;
  Rng rng(17);
  const int floats_per_section = cfg.windows * cfg.steps * cfg.repr_dim;
  for (int i = 0; i < cfg.sections; ++i) {
    BankImage::Task t;
    t.task = i;
    t.key = 1000u + static_cast<uint64_t>(i);
    t.name = "task" + std::to_string(i);
    t.shape = {cfg.windows, cfg.steps, cfg.repr_dim};
    t.floats.resize(static_cast<size_t>(floats_per_section));
    for (float& v : t.floats) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    image.sections.push_back(std::move(t));
  }
  for (int i = 0; i < cfg.records; ++i) {
    BankRecord r;
    r.task = i % cfg.sections;
    r.slot = i / cfg.sections;
    r.signature = static_cast<uint64_t>(rng.Int(0, 1 << 30));
    r.r_prime = rng.Uniform(0.0, 2.0);
    r.shared = (i % 3 == 0);
    r.retries = i % 17 == 0 ? 1 : 0;
    r.arch = "B2C5H32I64U1d0";
    image.records.push_back(std::move(r));
  }
  return image;
}

/// The volatile sink every leg folds one float per section into, so the
/// work cannot be optimized away.
volatile float g_sink = 0.0f;

struct LegResult {
  std::vector<double> ns;   ///< Per-rep resume latency.
  double rss_delta = 0.0;   ///< RSS growth across the first repetition.
};

LegResult RunWholesale(const std::string& path, const BankConfig& cfg) {
  LegResult result;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    double rss_before = ResidentBytes();
    double t0 = NowNs();
    StatusOr<std::string> bytes = ReadFileToString(path);
    if (!bytes.ok()) std::exit(1);
    StatusOr<BankImage> image = ParseBankWholesale(bytes.value());
    if (!image.ok()) std::exit(1);
    for (const BankImage::Task& t : image.value().sections) {
      g_sink = g_sink + t.floats.front() + t.floats.back();
    }
    if (image.value().records.empty()) std::exit(1);
    result.ns.push_back(NowNs() - t0);
    if (rep == 0) result.rss_delta = ResidentBytes() - rss_before;
  }
  return result;
}

LegResult RunMmap(const std::string& path, const BankConfig& cfg) {
  LegResult result;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    double rss_before = ResidentBytes();
    double t0 = NowNs();
    auto bank = SampleBank::Open(path, 4242, SampleBank::Mode::kReadOnly);
    if (!bank.ok()) {
      std::cerr << "mmap open failed: " << bank.status().message() << "\n";
      std::exit(1);
    }
    if (bank.value()->records().empty()) std::exit(1);
    for (const BankSection& s : bank.value()->sections()) {
      Tensor t = bank.value()->BorrowSection(s);
      g_sink = g_sink + t.data()[0] + t.data()[t.numel() - 1];
    }
    result.ns.push_back(NowNs() - t0);
    if (rep == 0) result.rss_delta = ResidentBytes() - rss_before;
  }
  return result;
}

MicroBenchRecord Record(const std::string& op, const LegResult& leg) {
  MicroBenchRecord rec;
  rec.op = op;
  double sum = 0.0;
  for (double v : leg.ns) sum += v;
  rec.resume_ns = sum / static_cast<double>(leg.ns.size());
  rec.ns_per_iter = rec.resume_ns;
  rec.ns_min = *std::min_element(leg.ns.begin(), leg.ns.end());
  rec.ns_max = *std::max_element(leg.ns.begin(), leg.ns.end());
  rec.rss_bytes = leg.rss_delta;
  return rec;
}

int Main(int argc, char** argv) {
  BankConfig cfg;
  bool smoke = std::getenv("REPRO_SMOKE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) {
    cfg.sections = 8;
    cfg.windows = 16;
    cfg.repr_dim = 256;
    cfg.records = 400;
    cfg.reps = 5;  // Keep >=5: the speedup median gate needs the spread.
  }

  const std::string dir = std::getenv("TMPDIR") != nullptr
                              ? std::string(std::getenv("TMPDIR"))
                              : std::string("/tmp");
  const std::string wholesale_path = dir + "/bench_bank_wholesale.bank";
  const std::string mmap_path = dir + "/bench_bank_mmap.bank";
  std::remove(mmap_path.c_str());

  BankImage corpus = MakeCorpus(cfg);
  if (!AtomicWriteFile(wholesale_path, SerializeBankWholesale(corpus)).ok()) {
    std::cerr << "cannot write " << wholesale_path << "\n";
    return 1;
  }
  {
    auto writer = SampleBank::Open(mmap_path, corpus.config_hash,
                                   SampleBank::Mode::kAppend);
    if (!writer.ok()) return 1;
    for (const BankImage::Task& t : corpus.sections) {
      if (!writer.value()
               ->AppendSection(t.task, t.key, t.name, t.shape,
                               t.floats.data())
               .ok()) {
        return 1;
      }
    }
    for (const BankRecord& r : corpus.records) {
      if (!writer.value()->AppendRecord(r).ok()) return 1;
    }
  }
  const double total_mb =
      static_cast<double>(cfg.sections) * cfg.windows * cfg.steps *
      cfg.repr_dim * 4.0 / (1024.0 * 1024.0);
  std::cout << "[bank] corpus: " << cfg.sections << " sections, "
            << cfg.records << " records, ~" << total_mb << " MB of floats\n";

  // mmap leg first: it touches almost nothing, so the wholesale leg's heap
  // growth cannot be mistaken for mapping cost.
  LegResult mmap_leg = RunMmap(mmap_path, cfg);
  LegResult wholesale_leg = RunWholesale(wholesale_path, cfg);

  std::vector<double> speedups;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    speedups.push_back(wholesale_leg.ns[static_cast<size_t>(rep)] /
                       mmap_leg.ns[static_cast<size_t>(rep)]);
  }
  std::sort(speedups.begin(), speedups.end());

  std::vector<MicroBenchRecord> records;
  records.push_back(Record("bank_resume_wholesale", wholesale_leg));
  records.push_back(Record("bank_resume_mmap", mmap_leg));
  {
    MicroBenchRecord ab = Record("bank_resume_mmap_vs_wholesale", mmap_leg);
    ab.speedup_min = speedups.front();
    ab.speedup_median = speedups[speedups.size() / 2];
    ab.speedup_max = speedups.back();
    // RSS ratio rides along: how much smaller the mmap leg's footprint is.
    ab.rss_bytes = mmap_leg.rss_delta;
    records.push_back(ab);
  }
  WriteBenchJson("BENCH_PR8.json", records);

  std::cout << "[bank] wholesale resume " << wholesale_leg.ns[0] / 1e6
            << " ms (rep 0), rss +" << wholesale_leg.rss_delta / 1e6
            << " MB\n[bank] mmap resume " << mmap_leg.ns[0] / 1e6
            << " ms (rep 0), rss +" << mmap_leg.rss_delta / 1e6
            << " MB\n[bank] speedup min " << speedups.front() << ", median "
            << speedups[speedups.size() / 2] << ", max " << speedups.back()
            << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main(int argc, char** argv) { return autocts::bench::Main(argc, argv); }
