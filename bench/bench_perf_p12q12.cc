// Regenerates Table 5: performance of P-12/Q-12 multi-step forecasting.
#include "bench/perf_table.h"

int main() {
  autocts::bench::RunPerfTable(12, 12, /*single_step=*/false, "Table 5");
  return 0;
}
