// bench_serving — closed- and open-loop load generator for the zero-shot
// serving layer (BENCH_PR7.json).
//
// Measures the two serving optimizations as A/B pairs:
//   * micro-batching: max_batch=8/max-delay admission vs max_batch=1, same
//     worker count and warm embed cache. The repeated-window multi-tenant
//     workload (few distinct windows across many concurrent clients) is the
//     serving regime the batcher targets — identical duels within one
//     micro-batch collapse into single comparator rows.
//   * embed cache: warm LRU cache vs caching disabled (capacity 0), same
//     admission policy.
//
// Per-request latency percentiles (p50/p95/p99), sustained QPS, and the
// per-repetition QPS speedup (min/median/max over REPS) land in
// BENCH_PR7.json through the shared MicroBenchRecord writer. CI smoke mode
// (--smoke or REPRO_SMOKE=1) shrinks the request count, keeps the shape.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "serve/service.h"

namespace autocts {
namespace bench {
namespace {

using serve::RecommendRequest;
using serve::RecommendationService;
using serve::ServeOptions;

struct LoadConfig {
  int distinct_windows = 4;  ///< Tenant diversity of the workload.
  int clients = 8;           ///< Concurrent closed-loop client threads.
  int requests = 256;        ///< Total requests per timed run.
  int reps = 5;              ///< A/B repetitions (>=5 for speedup stats).
  int num_series = 4;
  int num_steps = 48;
  /// Consecutive requests sharing one window. Multi-tenant serving sees
  /// correlated bursts (many tenants querying the popular dataset of the
  /// moment), which is exactly when intra-batch duel dedup pays; a block of
  /// max_batch keeps concurrent in-flight requests on the same window.
  int window_block = 8;
};

int WindowIndex(const LoadConfig& cfg, int request) {
  return (request / cfg.window_block) % cfg.distinct_windows;
}

struct LoadResult {
  std::vector<double> latency_ns;  ///< One entry per request.
  double wall_seconds = 0.0;
  double cache_hit_rate = 0.0;     ///< Embed-cache hit rate of the timed phase.
  double mean_batch = 0.0;
  uint64_t dedup_saved_rows = 0;   ///< Duel rows removed by packing/dedup.

  double qps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(latency_ns.size()) / wall_seconds
               : 0.0;
  }
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(values.size()) - 1.0,
                       p * static_cast<double>(values.size())));
  return values[idx];
}

/// The same small task-aware fixture the serving tests use: weights are
/// seeded (untrained) — latency does not care about recommendation quality.
Comparator::Options BenchComparator() {
  Comparator::Options opts;
  opts.gin.layers = 2;
  opts.gin.embed_dim = 8;
  opts.repr_dim = 4;
  opts.f1 = 8;
  opts.f2 = 4;
  opts.fc_dim = 16;
  opts.task_aware = true;
  return opts;
}

ServeOptions BenchServe(int max_batch, size_t embed_cache_entries) {
  ServeOptions o = ServeOptions::ForScale(ScaleConfig::Test());
  o.workers = 2;
  o.max_batch = max_batch;
  o.max_delay_us = 500;
  o.embed_cache_entries = embed_cache_entries;
  o.search.ranking_pool = 32;
  o.search.opponents_per_candidate = 2;
  o.search.population = 4;
  o.search.top_k = 4;
  o.windows_per_task = 3;
  return o;
}

std::vector<RecommendRequest> MakeWorkload(const LoadConfig& cfg) {
  std::vector<RecommendRequest> windows;
  for (int w = 0; w < cfg.distinct_windows; ++w) {
    RecommendRequest r;
    r.num_series = cfg.num_series;
    r.num_steps = cfg.num_steps;
    Rng rng(1000 + static_cast<uint64_t>(w));
    r.window.resize(static_cast<size_t>(cfg.num_series) *
                    static_cast<size_t>(cfg.num_steps));
    for (float& v : r.window) v = rng.Uniform(-1.0f, 1.0f);
    r.p = 8;
    r.q = 8;
    r.top_k = 2;
    windows.push_back(std::move(r));
  }
  return windows;
}

/// One closed-loop run: `clients` threads issue blocking Recommend calls
/// round-robin over the distinct windows until `requests` are served. The
/// service is warmed first (one pass over the windows primes the embed
/// cache and the workers' captured plans), so the timed phase measures
/// steady state — and so the cached arm's timed hit rate is exactly 1.0.
LoadResult RunClosedLoop(RecommendationService* service,
                         const std::vector<RecommendRequest>& windows,
                         const LoadConfig& cfg) {
  for (const RecommendRequest& w : windows) {
    StatusOr<serve::Recommendation> warm = service->Recommend(w);
    if (!warm.ok()) {
      std::cerr << "warm-up failed: " << warm.status().message() << "\n";
      std::exit(1);
    }
  }
  const ServeStats before = service->stats();

  LoadResult result;
  result.latency_ns.assign(static_cast<size_t>(cfg.requests), 0.0);
  std::atomic<int> next{0};
  auto client = [&] {
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= cfg.requests) return;
      const RecommendRequest& req =
          windows[static_cast<size_t>(WindowIndex(cfg, i))];
      const auto t0 = std::chrono::steady_clock::now();
      StatusOr<serve::Recommendation> rec = service->Recommend(req);
      const auto t1 = std::chrono::steady_clock::now();
      if (!rec.ok()) {
        std::cerr << "request failed: " << rec.status().message() << "\n";
        std::exit(1);
      }
      result.latency_ns[static_cast<size_t>(i)] =
          std::chrono::duration<double, std::nano>(t1 - t0).count();
    }
  };
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < cfg.clients; ++c) threads.emplace_back(client);
  for (std::thread& t : threads) t.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  const ServeStats after = service->stats();
  const uint64_t hits = after.embed_hits - before.embed_hits;
  const uint64_t misses = after.embed_misses - before.embed_misses;
  result.cache_hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  const uint64_t reqs = after.batched_requests - before.batched_requests;
  const uint64_t batches = after.batches - before.batches;
  result.mean_batch = batches == 0 ? 0.0
                                   : static_cast<double>(reqs) /
                                         static_cast<double>(batches);
  result.dedup_saved_rows = (after.duel_rows - before.duel_rows) -
                            (after.duel_rows_evaluated -
                             before.duel_rows_evaluated);
  return result;
}

/// Open-loop arm: every request is admitted up front through TrySubmit (the
/// overload-policy path) and latency includes queue wait. Shows tail
/// behavior under burst, complementing the closed-loop arms.
LoadResult RunOpenLoop(RecommendationService* service,
                       const std::vector<RecommendRequest>& windows,
                       const LoadConfig& cfg) {
  for (const RecommendRequest& w : windows) {
    (void)service->Recommend(w);  // Warm-up.
  }
  LoadResult result;
  std::vector<std::future<StatusOr<serve::Recommendation>>> futures;
  std::vector<std::chrono::steady_clock::time_point> submitted;
  futures.reserve(static_cast<size_t>(cfg.requests));
  const auto wall0 = std::chrono::steady_clock::now();
  int rejected = 0;
  for (int i = 0; i < cfg.requests; ++i) {
    std::future<StatusOr<serve::Recommendation>> f;
    const auto t0 = std::chrono::steady_clock::now();
    if (!service
             ->TrySubmit(windows[static_cast<size_t>(WindowIndex(cfg, i))], &f)
             .ok()) {
      ++rejected;  // Queue full: the burst outran capacity. Expected.
      continue;
    }
    submitted.push_back(t0);
    futures.push_back(std::move(f));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    StatusOr<serve::Recommendation> rec = futures[i].get();
    if (!rec.ok()) continue;
    result.latency_ns.push_back(std::chrono::duration<double, std::nano>(
                                    std::chrono::steady_clock::now() -
                                    submitted[i])
                                    .count());
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (rejected > 0) {
    std::cout << "[serving] open-loop burst: " << rejected
              << " requests rejected at admission (bounded queue)\n";
  }
  return result;
}

MicroBenchRecord Record(const std::string& op, const LoadResult& r,
                        int threads) {
  MicroBenchRecord rec;
  rec.op = op;
  rec.threads = threads;
  rec.ns_per_iter = Percentile(r.latency_ns, 0.5);
  rec.p50_ns = Percentile(r.latency_ns, 0.5);
  rec.p95_ns = Percentile(r.latency_ns, 0.95);
  rec.p99_ns = Percentile(r.latency_ns, 0.99);
  rec.qps = r.qps();
  rec.cache_hit_rate = r.cache_hit_rate;
  return rec;
}

int Main(int argc, char** argv) {
  LoadConfig cfg;
  bool smoke = std::getenv("REPRO_SMOKE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) {
    cfg.requests = 64;
    cfg.reps = 5;  // Keep >=5: the speedup median gate needs the spread.
  }

  Comparator comparator(BenchComparator(), 77);
  Rng enc_rng(78);
  Ts2Vec::Options enc_opts;
  enc_opts.repr_dim = 4;
  enc_opts.hidden = 4;
  enc_opts.layers = 1;
  Ts2Vec encoder(1, enc_opts, &enc_rng);
  JointSearchSpace space;
  const std::vector<RecommendRequest> windows = MakeWorkload(cfg);

  auto run_arm = [&](const ServeOptions& opts) {
    RecommendationService service(&comparator, &encoder, &space, opts);
    Status started = service.Start();
    if (!started.ok()) {
      std::cerr << "start failed: " << started.message() << "\n";
      std::exit(1);
    }
    LoadResult r = RunClosedLoop(&service, windows, cfg);
    service.Shutdown();
    return r;
  };

  // --- A/B 1: batched vs unbatched admission, warm cache both sides. -----
  std::vector<double> qps_speedups;
  LoadResult last_unbatched, last_batched;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    last_unbatched = run_arm(BenchServe(/*max_batch=*/1, 64));
    last_batched = run_arm(BenchServe(/*max_batch=*/8, 64));
    const double speedup = last_unbatched.qps() > 0.0
                               ? last_batched.qps() / last_unbatched.qps()
                               : 0.0;
    qps_speedups.push_back(speedup);
    std::cout << "[serving] rep " << rep << ": unbatched "
              << last_unbatched.qps() << " qps, batched "
              << last_batched.qps() << " qps (x" << speedup
              << ", mean batch " << last_batched.mean_batch
              << ", dedup saved " << last_batched.dedup_saved_rows
              << " duel rows)\n";
  }
  std::sort(qps_speedups.begin(), qps_speedups.end());

  // --- A/B 2: warm embed cache vs caching disabled. ----------------------
  LoadResult cached = run_arm(BenchServe(/*max_batch=*/8, 64));
  LoadResult cold = run_arm(BenchServe(/*max_batch=*/8, 0));
  std::cout << "[serving] embed cache: warm hit rate " << cached.cache_hit_rate
            << " @ " << cached.qps() << " qps; disabled " << cold.qps()
            << " qps\n";

  // --- Open-loop burst through the bounded queue. ------------------------
  LoadResult open_loop;
  {
    RecommendationService service(&comparator, &encoder, &space,
                                  BenchServe(/*max_batch=*/8, 64));
    if (!service.Start().ok()) return 1;
    open_loop = RunOpenLoop(&service, windows, cfg);
    service.Shutdown();
  }

  std::vector<MicroBenchRecord> records;
  records.push_back(Record("serve_closed_unbatched", last_unbatched,
                           cfg.clients));
  records.push_back(Record("serve_closed_batched", last_batched, cfg.clients));
  {
    MicroBenchRecord ab;
    ab.op = "serve_batched_vs_unbatched";
    ab.threads = cfg.clients;
    ab.qps = last_batched.qps();
    ab.speedup_min = qps_speedups.front();
    ab.speedup_median = qps_speedups[qps_speedups.size() / 2];
    ab.speedup_max = qps_speedups.back();
    ab.p99_ns = Percentile(last_batched.latency_ns, 0.99);
    records.push_back(ab);
  }
  records.push_back(Record("serve_embed_cache_warm", cached, cfg.clients));
  records.push_back(Record("serve_embed_cache_disabled", cold, cfg.clients));
  records.push_back(Record("serve_open_loop_burst", open_loop, 1));
  WriteBenchJson("BENCH_PR7.json", records);

  std::cout << "[serving] qps speedup (batched/unbatched) min "
            << qps_speedups.front() << ", median "
            << qps_speedups[qps_speedups.size() / 2] << ", max "
            << qps_speedups.back() << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main(int argc, char** argv) { return autocts::bench::Main(argc, argv); }
