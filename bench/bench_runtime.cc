// Regenerates Figure 7: runtime of the embedding, ranking, and training
// phases on every one of the 28 unseen tasks (7 datasets × 4 settings).
//
// Expected shape (paper): searching (embedding + ranking) stays flat at
// minutes-level across tasks regardless of dataset size and setting, while
// training time varies; at paper scale a fully-supervised search would
// instead cost GPU-hours per task.
#include <iostream>

#include "bench/harness.h"
#include "common/table.h"

namespace autocts {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  std::cout << "=== Figure 7 — per-task runtime of the zero-shot pipeline "
               "(seconds; paper reports GPU minutes) ===\n";
  AutoCtsOptions opts = env.autocts;
  opts.search.top_k = 1;  // One final model per task keeps the sweep tight.
  auto framework = PretrainedFramework(env, opts, "default");

  struct Setting {
    int p, q;
    bool single;
  };
  const Setting settings[] = {
      {12, 12, false}, {24, 24, false}, {48, 48, false}, {168, 3, true}};
  TextTable table({"Task", "Embed(s)", "Rank(s)", "Search(s)", "Train(s)"});
  double max_search = 0.0, min_search = 1e30;
  for (const Setting& s : settings) {
    for (const ForecastTask& task :
         MakeTargetTasks(s.p, s.q, s.single, env.scale)) {
      std::cerr << "[fig7] " << task.name() << "\n";
      SearchOutcome outcome = framework->SearchAndTrain(task);
      double search = outcome.embed_seconds + outcome.rank_seconds;
      max_search = std::max(max_search, search);
      min_search = std::min(min_search, search);
      table.AddRow({task.name(), TextTable::Num(outcome.embed_seconds, 2),
                    TextTable::Num(outcome.rank_seconds, 2),
                    TextTable::Num(search, 2),
                    TextTable::Num(outcome.train_seconds, 2)});
    }
  }
  std::cout << table.ToString();
  std::cout << "Search-time spread across the 28 tasks: min "
            << TextTable::Num(min_search, 2) << "s, max "
            << TextTable::Num(max_search, 2)
            << "s (paper shape: search time is stable across tasks while "
               "training time varies)\n";
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main() {
  autocts::bench::Run();
  return 0;
}
