// Regenerates Table 3: statistics and split ratios of the seven (synthetic
// stand-in) target datasets, plus the eleven source datasets and the size
// of the joint search space.
#include <iostream>

#include "bench/harness.h"
#include "common/table.h"
#include "searchspace/search_space.h"

namespace autocts {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  std::cout << "=== Table 3 — dataset statistics (synthetic stand-ins; "
               "paper values in DESIGN.md) ===\n";
  TextTable table({"Dataset", "N", "T", "Split (M)", "Split (S)", "Domain "
                   "signature (mean / std)"});
  for (const std::string& name : TargetDatasetNames()) {
    ForecastTask m = MakeTargetTask(name, 12, 12, false, env.scale);
    ForecastTask s = MakeTargetTask(name, 168, 3, true, env.scale);
    float mean, std;
    m.data->MeanStd(1.0, &mean, &std);
    auto ratio = [](const ForecastTask& t) {
      double test = 1.0 - t.train_ratio - t.val_ratio;
      return TextTable::Num(t.train_ratio * 10, 0) + ":" +
             TextTable::Num(t.val_ratio * 10, 0) + ":" +
             TextTable::Num(test * 10, 0);
    };
    table.AddRow({name, std::to_string(m.data->num_series()),
                  std::to_string(m.data->num_steps()), ratio(m), ratio(s),
                  TextTable::Num(mean, 1) + " / " + TextTable::Num(std, 1)});
  }
  std::cout << table.ToString();

  std::cout << "\nSource datasets (pre-training corpora):\n";
  TextTable sources({"Dataset", "N", "T"});
  for (const std::string& name : SourceDatasetNames()) {
    CtsDatasetPtr d = MakeSyntheticDataset(name, env.scale).value();
    sources.AddRow({name, std::to_string(d->num_series()),
                    std::to_string(d->num_steps())});
  }
  std::cout << sources.ToString();

  JointSearchSpace space;
  std::cout << "\nJoint search space size: 10^"
            << TextTable::Num(space.Log10Size(), 2)
            << " arch-hypers (paper: ~10^10+)\n";
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main() {
  autocts::bench::Run();
  return 0;
}
