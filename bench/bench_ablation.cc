// Regenerates Tables 9–12: ablation studies of the zero-shot framework.
//
// Variants (paper §4.2.3):
//   AutoCTS++            — the full framework.
//   w/o TS2Vec           — preliminary task embeddings from a plain MLP.
//   w/o Set-Transformer  — mean pooling instead of the two-stage PMA.
//   w/o shared samples   — pre-training on per-task random samples only.
//
// Each variant pre-trains its own T-AHC (cached across runs under a
// distinct checkpoint tag) and then zero-shot searches on every target
// dataset under all four forecasting settings: P-12/Q-12 (Table 9),
// P-24/Q-24 (Table 10), P-48/Q-48 (Table 11), P-168/Q-1 3rd (Table 12).
//
// PR 6 adds a comparator-precision ablation: pairwise rank agreement of
// the quantized bf16/int8 CompareLogits path vs fp32, measured on the full
// variant's pre-trained T-AHC with a real task embedding (the regime the
// ≥99% acceptance bar is defined in).
#include <algorithm>
#include <iostream>
#include <map>
#include <numeric>

#include "bench/harness.h"
#include "common/table.h"
#include "comparator/quant.h"
#include "tensor/ops.h"

namespace autocts {
namespace bench {
namespace {

struct Variant {
  std::string name;
  std::string tag;
};

AutoCtsOptions VariantOptions(const BenchEnv& env, const std::string& name) {
  AutoCtsOptions opts = env.autocts;
  // Ablations use a leaner search and a leaner label-collection diet so
  // the 4 variants × 4 settings × 7 datasets sweep stays in CPU-minutes.
  opts.search.ranking_pool = std::max(50, opts.search.ranking_pool / 2);
  opts.search.top_k = 1;
  opts.collect.train.batches_per_epoch = 6;
  if (name == "w/o TS2Vec") {
    opts.use_mlp_encoder = true;
  } else if (name == "w/o Set-Transformer") {
    opts.comparator.mean_pool_tasks = true;
  } else if (name == "w/o shared samples") {
    opts.collect.random_count += opts.collect.shared_count;
    opts.collect.shared_count = 0;
    opts.pretrain.initial_random_fraction = 1.0f;  // No curriculum anchor.
  }
  return opts;
}

/// Rank agreement of quantized comparator inference vs fp32, on the full
/// framework's pre-trained comparator: every ordered pair over `count`
/// sampled candidates, scored through the fp32 tensor path and through
/// QuantizedComparator at each reduced precision. Reports the fraction of
/// agreeing pairwise verdicts and whether the top win-count candidate
/// matches — the quantities that decide whether AUTOCTS_COMPARATOR_PRECISION
/// is safe to flip during zero-shot search.
void PrecisionAblation(AutoCtsPlusPlus* framework, const BenchEnv& env) {
  Comparator* comp = framework->comparator();
  comp->SetTraining(false);
  const bool task_aware = comp->options().task_aware;
  Tensor task_vec;
  if (task_aware) {
    ForecastTask task = MakeTargetTask("PEMS-BAY", 12, 12, false, env.scale);
    task_vec = Reshape(framework->EmbedTask(task), {1, comp->options().f2});
  }
  Rng rng(41);
  constexpr int kCount = 20;
  std::vector<ArchHyperEncoding> encs;
  for (int i = 0; i < kCount; ++i) {
    encs.push_back(EncodeArchHyper(framework->space().Sample(&rng)));
  }

  std::cout << "\n=== Comparator-precision ablation (quantized inference) "
               "===\n";
  TextTable table({"Precision", "Pairs", "Rank agreement", "Top-1 match"});
  NoGradScope no_grad;
  for (ComparatorPrecision precision :
       {ComparatorPrecision::kBf16, ComparatorPrecision::kInt8}) {
    QuantizedComparator quant(*comp, precision);
    int agree = 0, total = 0;
    std::vector<int> wins_fp32(kCount, 0), wins_quant(kCount, 0);
    for (int i = 0; i < kCount; ++i) {
      std::vector<ArchHyperEncoding> first, second;
      for (int j = 0; j < kCount; ++j) {
        if (j == i) continue;
        first.push_back(encs[static_cast<size_t>(i)]);
        second.push_back(encs[static_cast<size_t>(j)]);
      }
      const int m = static_cast<int>(first.size());
      EncodingBatch b1 = StackEncodings(first);
      EncodingBatch b2 = StackEncodings(second);
      Tensor te;
      if (task_aware) {
        std::vector<Tensor> rows(static_cast<size_t>(m), task_vec);
        te = Concat(rows, 0);
      }
      Tensor ref = comp->CompareLogits(b1, b2, te);
      std::vector<float> got = quant.CompareLogits(b1, b2, te);
      for (int r = 0; r < m; ++r) {
        const bool ref_win = ref.at(r) >= 0.0f;
        const bool got_win = got[static_cast<size_t>(r)] >= 0.0f;
        agree += ref_win == got_win ? 1 : 0;
        ++total;
        if (ref_win) ++wins_fp32[static_cast<size_t>(i)];
        if (got_win) ++wins_quant[static_cast<size_t>(i)];
      }
    }
    auto top1 = [](const std::vector<int>& wins) {
      return static_cast<int>(std::distance(
          wins.begin(), std::max_element(wins.begin(), wins.end())));
    };
    table.AddRow({ComparatorPrecisionName(precision), std::to_string(total),
                  TextTable::Num(static_cast<double>(agree) / total, 4),
                  top1(wins_fp32) == top1(wins_quant) ? "yes" : "NO"});
  }
  std::cout << table.ToString()
            << "(acceptance: agreement >= 0.99 with identical top-K; "
               "enforced per-seed by tests/comparator_quant_test.cc)\n";
}

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  std::vector<Variant> variants = {
      {"AutoCTS++", "ablation_full"},
      {"w/o TS2Vec", "ablation_no_ts2vec"},
      {"w/o Set-Transformer", "ablation_no_settrans"},
      {"w/o shared samples", "ablation_no_shared"},
  };
  std::map<std::string, std::unique_ptr<AutoCtsPlusPlus>> frameworks;
  BenchEnv lean_env = env;
  lean_env.scale.num_source_tasks = std::max(4, env.scale.num_source_tasks * 3 / 4);
  for (const Variant& v : variants) {
    std::cout << "-- pre-training variant: " << v.name << "\n";
    frameworks[v.name] =
        PretrainedFramework(lean_env, VariantOptions(env, v.name), v.tag);
  }
  PrecisionAblation(frameworks["AutoCTS++"].get(), env);

  struct Setting {
    const char* table;
    int p, q;
    bool single;
  };
  const Setting settings[] = {{"Table 9", 12, 12, false},
                              {"Table 10", 24, 24, false},
                              {"Table 11", 48, 48, false},
                              {"Table 12", 168, 3, true}};
  uint64_t seed = 5000;
  for (const Setting& s : settings) {
    std::cout << "\n=== " << s.table << " — ablation, P-" << s.p << "/Q-"
              << (s.single ? "1 (3rd)" : std::to_string(s.q)) << " ===\n";
    std::vector<std::string> metrics =
        s.single ? std::vector<std::string>{"RRSE", "CORR"}
                 : std::vector<std::string>{"MAE", "RMSE", "MAPE"};
    std::vector<std::string> header = {"Dataset", "Metric"};
    for (const Variant& v : variants) header.push_back(v.name);
    TextTable table(header);
    for (const ForecastTask& task :
         MakeTargetTasks(s.p, s.q, s.single, env.scale)) {
      std::cerr << "[ablation] " << task.name() << "\n";
      std::map<std::string, EvalResult> results;
      // One seed per task, shared by all variants: final-model training
      // noise would otherwise swamp the comparator-quality differences the
      // ablation is meant to expose.
      seed += 7;
      for (const Variant& v : variants) {
        BenchEnv variant_env = env;
        variant_env.autocts = VariantOptions(env, v.name);
        results[v.name] = EvaluateAutoCtsPlusPlus(
            frameworks[v.name].get(), task, variant_env, seed);
      }
      for (const std::string& metric : metrics) {
        std::vector<std::string> row = {task.data->name(), metric};
        int precision = s.single ? 4 : 3;
        for (const Variant& v : variants) {
          const EvalResult& r = results[v.name];
          double value = metric == "MAE"    ? r.mae.mean
                         : metric == "RMSE" ? r.rmse.mean
                         : metric == "MAPE" ? r.mape.mean
                         : metric == "RRSE" ? r.rrse.mean
                                            : r.corr.mean;
          row.push_back(TextTable::Num(value, precision));
        }
        table.AddRow(row);
      }
    }
    std::cout << table.ToString();
  }
  std::cout << "\n(paper shape: the full framework wins most cells; "
               "w/o Set-Transformer is usually the worst variant)\n";
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main() {
  autocts::bench::Run();
  return 0;
}
