// Regenerates Table 8: performance of P-168/Q-1 (3rd) single-step
// forecasting (RRSE / CORR).
#include "bench/perf_table.h"

int main() {
  autocts::bench::RunPerfTable(168, 3, /*single_step=*/true, "Table 8");
  return 0;
}
