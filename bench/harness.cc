#include "bench/harness.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "baselines/registry.h"
#include "common/jsonio.h"
#include "common/table.h"
#include "model/searched_model.h"

namespace autocts {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from)
      .count();
}

}  // namespace

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  env.scale = ScaleConfig::Bench();
  if (const char* seeds = std::getenv("REPRO_SEEDS")) {
    env.seeds = std::max(1, std::atoi(seeds));
  }
  env.autocts = AutoCtsOptions::ForScale(env.scale);
  return env;
}

ForecastTask MakeTargetTask(const std::string& dataset, int p, int q,
                            bool single_step, const ScaleConfig& scale) {
  ForecastTask task;
  task.data = MakeSyntheticDataset(dataset, scale).value();
  task.p = p;
  task.q = q;
  task.single_step = single_step;
  // Table 3 split ratios: 6:2:2 for single-step everywhere; multi-step is
  // 7:1:2 except PEMSD7M / NYC-TAXI / NYC-BIKE which use 6:2:2.
  if (single_step || dataset == "PEMSD7M" || dataset == "NYC-TAXI" ||
      dataset == "NYC-BIKE") {
    task.train_ratio = 0.6;
    task.val_ratio = 0.2;
  } else {
    task.train_ratio = 0.7;
    task.val_ratio = 0.1;
  }
  return task;
}

std::vector<ForecastTask> MakeTargetTasks(int p, int q, bool single_step,
                                          const ScaleConfig& scale) {
  std::vector<ForecastTask> tasks;
  for (const std::string& name : TargetDatasetNames()) {
    tasks.push_back(MakeTargetTask(name, p, q, single_step, scale));
  }
  return tasks;
}

std::vector<ForecastTask> MakeSourceTasks(int num_tasks,
                                          const ScaleConfig& scale,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names = SourceDatasetNames();
  std::vector<ForecastTask> tasks;
  for (int i = 0; i < num_tasks; ++i) {
    const std::string& name = names[static_cast<size_t>(i) % names.size()];
    CtsDatasetPtr source = MakeSyntheticDataset(name, scale).value();
    // Alternate the two pre-training settings P-12/Q-12 and P-48/Q-48.
    bool long_horizon = (i / names.size()) % 2 == 1 || rng.Bernoulli(0.5);
    int p = long_horizon ? 48 : 12;
    tasks.push_back(DeriveSubsetTask(source, p, p, /*single_step=*/false,
                                     &rng));
  }
  return tasks;
}

Aggregate Aggregated(const std::vector<double>& values) {
  Aggregate agg;
  if (values.empty()) return agg;
  for (double v : values) agg.mean += v;
  agg.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - agg.mean) * (v - agg.mean);
    agg.std = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return agg;
}

EvalResult AggregateMetrics(const std::vector<ForecastMetrics>& per_seed) {
  EvalResult r;
  r.per_seed = per_seed;
  std::vector<double> mae, rmse, mape, rrse, corr;
  for (const ForecastMetrics& m : per_seed) {
    mae.push_back(m.mae);
    rmse.push_back(m.rmse);
    mape.push_back(m.mape);
    rrse.push_back(m.rrse);
    corr.push_back(m.corr);
  }
  r.mae = Aggregated(mae);
  r.rmse = Aggregated(rmse);
  r.mape = Aggregated(mape);
  r.rrse = Aggregated(rrse);
  r.corr = Aggregated(corr);
  return r;
}

EvalResult EvaluateBaseline(const std::string& name, const ForecastTask& task,
                            const BenchEnv& env, bool grid_search,
                            uint64_t seed) {
  auto t0 = std::chrono::steady_clock::now();
  ForecasterSpec spec = MakeForecasterSpec(task);
  TrainOptions train = env.autocts.final_train;
  int best_hidden = 0, best_output = 0;
  if (grid_search) {
    // One-epoch early-validation over the paper's 2×2 grid.
    TrainOptions quick = train;
    quick.epochs = 1;
    ModelTrainer trainer(task, quick);
    double best = 0.0;
    bool first = true;
    // Two corners of the paper's 2x2 H-by-I grid: the small and the large
    // configuration (keeps the sweep CPU-cheap; widen for full fidelity).
    for (auto [hidden, output] : {std::pair{32, 64}, std::pair{64, 256}}) {
      auto model = MakeBaseline(name, spec, env.scale, seed, hidden, output);
      double err = trainer.EarlyValidationError(model.get(), 1);
      if (first || err < best) {
        first = false;
        best = err;
        best_hidden = hidden;
        best_output = output;
      }
    }
  }
  std::vector<ForecastMetrics> per_seed;
  ModelTrainer trainer(task, train);
  for (int s = 0; s < env.seeds; ++s) {
    auto model = MakeBaseline(name, spec, env.scale, seed + 1 + s,
                              best_hidden, best_output);
    per_seed.push_back(trainer.Train(model.get()).test);
  }
  EvalResult result = AggregateMetrics(per_seed);
  result.seconds = Seconds(t0);
  return result;
}

EvalResult EvaluateArchHyper(const ArchHyper& ah, const ForecastTask& task,
                             const BenchEnv& env, uint64_t seed) {
  auto t0 = std::chrono::steady_clock::now();
  ForecasterSpec spec = MakeForecasterSpec(task);
  ModelTrainer trainer(task, env.autocts.final_train);
  std::vector<ForecastMetrics> per_seed;
  for (int s = 0; s < env.seeds; ++s) {
    auto model = BuildSearchedModel(ah, spec, env.scale, seed + s);
    per_seed.push_back(trainer.Train(model.get()).test);
  }
  EvalResult result = AggregateMetrics(per_seed);
  result.seconds = Seconds(t0);
  return result;
}

EvalResult EvaluateAutoCtsPlusPlus(AutoCtsPlusPlus* framework,
                                   const ForecastTask& task,
                                   const BenchEnv& env, uint64_t seed) {
  auto t0 = std::chrono::steady_clock::now();
  std::vector<ArchHyper> top_k = framework->RankTopK(task);
  std::vector<ForecastMetrics> per_seed;
  for (int s = 0; s < env.seeds; ++s) {
    SearchOutcome outcome = TrainTopKAndSelect(
        top_k, task, env.autocts.final_train, env.scale,
        framework->exec_context().WithSeed(seed + s));
    per_seed.push_back(outcome.best_report.test);
  }
  EvalResult result = AggregateMetrics(per_seed);
  result.seconds = Seconds(t0);
  return result;
}

std::unique_ptr<AutoCtsPlusPlus> PretrainedFramework(
    const BenchEnv& env, const std::string& cache_tag) {
  return PretrainedFramework(env, env.autocts, cache_tag);
}

std::unique_ptr<AutoCtsPlusPlus> PretrainedFramework(
    const BenchEnv& env, AutoCtsOptions options,
    const std::string& cache_tag) {
  auto t0 = std::chrono::steady_clock::now();
  auto framework = std::make_unique<AutoCtsPlusPlus>(options);
  std::string ckpt;
  if (!cache_tag.empty()) {
    const char* dir = std::getenv("REPRO_CKPT_DIR");
    ckpt = std::string(dir != nullptr ? dir : ".") + "/autocts_" + cache_tag;
    if (framework->LoadCheckpoint(ckpt).ok()) {
      std::cout << "[pretrain] loaded cached checkpoint " << ckpt << "\n";
      return framework;
    }
  }
  std::vector<ForecastTask> source =
      MakeSourceTasks(env.scale.num_source_tasks, env.scale, /*seed=*/97);
  PretrainReport report = framework->Pretrain(source);
  std::cout << "[pretrain] " << source.size() << " source tasks, "
            << report.total_pairs_trained << " pairs, final accuracy "
            << TextTable::Num(report.final_accuracy, 3) << ", "
            << TextTable::Num(Seconds(t0), 1) << "s\n";
  if (!ckpt.empty()) {
    Status saved = framework->SaveCheckpoint(ckpt);
    if (!saved.ok()) std::cout << "[pretrain] cache save failed: " << saved.message() << "\n";
  }
  return framework;
}

std::string Cell(const Aggregate& agg, int precision) {
  return TextTable::MeanStd(agg.mean, agg.std, precision);
}

void WriteBenchJson(const std::string& path,
                    const std::vector<MicroBenchRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::cout << "[bench] cannot write " << path << "\n";
    return;
  }
  out << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const MicroBenchRecord& r = records[i];
    JsonWriter w;
    w.BeginObject();
    w.Field("op", r.op);
    w.Field("threads", r.threads);
    w.Field("gflops", r.gflops);
    w.Field("ns_per_iter", r.ns_per_iter);
    w.Field("pool_hit_rate", r.pool_hit_rate);
    w.Field("allocs_per_step", r.allocs_per_step);
    w.Field("tape_nodes_per_step", r.tape_nodes_per_step);
    w.Field("pool_roundtrips_per_step", r.pool_roundtrips_per_step);
    w.Field("overhead_pct", r.overhead_pct);
    w.Field("ns_min", r.ns_min);
    w.Field("ns_max", r.ns_max);
    w.Field("speedup_min", r.speedup_min);
    w.Field("speedup_median", r.speedup_median);
    w.Field("speedup_max", r.speedup_max);
    w.Field("arena_bytes", r.arena_bytes);
    w.Field("backend", r.backend);
    w.Field("rank_agreement", r.rank_agreement);
    w.Field("p50_ns", r.p50_ns);
    w.Field("p95_ns", r.p95_ns);
    w.Field("p99_ns", r.p99_ns);
    w.Field("qps", r.qps);
    w.Field("cache_hit_rate", r.cache_hit_rate);
    w.Field("rss_bytes", r.rss_bytes);
    w.Field("resume_ns", r.resume_ns);
    w.Field("mae_pre", r.mae_pre);
    w.Field("mae_degraded", r.mae_degraded);
    w.Field("mae_post", r.mae_post);
    w.Field("recovery_ticks", r.recovery_ticks);
    w.Field("recovery_ns", r.recovery_ns);
    w.Field("drifts", r.drifts);
    w.Field("swaps", r.swaps);
    w.Field("workers", r.workers);
    w.Field("samples_per_hour", r.samples_per_hour);
    w.EndObject();
    out << "  " << w.str() << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "[bench] wrote " << path << " (" << records.size()
            << " records)\n";
}

}  // namespace bench
}  // namespace autocts
