// bench_streaming — online-forecasting load bench for the streaming
// scenario engine (BENCH_PR9.json).
//
// Drives one serve-level stream session through a regime-shift scenario and
// reports segmented online MAE:
//   * pre     — ticks before the fault onset (the healthy baseline),
//   * degraded — onset up to the first hot-swap (the window the old model
//     keeps serving while re-search runs in the background),
//   * post    — after the swap (the re-searched model).
// Two arms run the identical tick sequence: recovery on (drift-triggered
// re-search + hot-swap) and recovery off (the degraded baseline CI compares
// against). CI gates post <= 1.15 * pre on the recovery arm while the
// no-recovery arm must stay degraded — see .github/workflows/ci.yml.
//
// Everything is seed-driven (scenario, weights, training), so the numbers
// reproduce bit-for-bit across runs and machines with the same flags.
// Smoke mode (--smoke or REPRO_SMOKE=1) shortens the live phase but keeps
// onset, detection, and recovery inside the run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "serve/service.h"
#include "stream/stream.h"

namespace autocts {
namespace bench {
namespace {

using serve::RecommendRequest;
using serve::RecommendationService;
using serve::ServeOptions;

struct StreamBenchConfig {
  int num_series = 2;
  int seed_steps = 64;  ///< Seed window replayed at StreamOpen.
  int ticks = 280;      ///< Live ticks pushed after the open.
  int onset = 30;       ///< First shifted live tick.
  float shift = 6.0f;   ///< Regime-shift magnitude (raw units).
};

/// Same tiny task-aware fixture the stream/serving tests use: quality comes
/// from the (deterministic, seeded) per-session training, not pre-training.
Comparator::Options BenchComparator() {
  Comparator::Options opts;
  opts.gin.layers = 2;
  opts.gin.embed_dim = 8;
  opts.repr_dim = 4;
  opts.f1 = 8;
  opts.f2 = 4;
  opts.fc_dim = 16;
  opts.task_aware = true;
  return opts;
}

Ts2Vec::Options BenchEncoder() {
  Ts2Vec::Options o;
  o.repr_dim = 4;
  o.hidden = 4;
  o.layers = 1;
  return o;
}

ServeOptions BenchServe() {
  ServeOptions o = ServeOptions::ForScale(ScaleConfig::Test());
  o.workers = 2;
  o.max_batch = 4;
  o.max_delay_us = 1000;
  o.search.ranking_pool = 8;
  o.search.opponents_per_candidate = 2;
  o.search.population = 2;
  o.search.top_k = 2;
  o.windows_per_task = 2;
  return o;
}

/// Detector/recovery knobs sized so onset -> detect -> swap fits well
/// inside the live phase. lambda=6 keeps the stationary seed replay and
/// pre-onset ticks trigger-free (verified by the drift counter below).
stream::StreamOptions BenchKnobs(bool recovery) {
  stream::StreamOptions k;
  k.warmup = 16;
  k.ph_delta = 0.05f;
  k.ph_lambda = 6.0f;
  k.error_window = 32;
  k.recovery = recovery;
  k.research_retries = 2;
  k.research_backoff = 8;
  k.research_deadline = 8;
  // The session's history ring is the seed window length (64 ticks); wait
  // until it has fully refilled with post-drift data before snapshotting,
  // so the replacement model (and its scaler) trains on the NEW regime
  // only — a mixed window inflates the scaler std and costs raw-unit
  // accuracy (see StreamOptions::research_delay).
  k.research_delay = 64;
  return k;
}

/// Smooth two-tone signal the tiny trainer fits well; tick index is global
/// (seed window occupies [0, seed_steps)).
float SignalAt(const StreamBenchConfig& cfg, int series, int global_t) {
  return std::sin(0.3f * static_cast<float>(global_t) +
                  static_cast<float>(series)) +
         0.1f * static_cast<float>(series);
}

RecommendRequest SeedRequest(const StreamBenchConfig& cfg) {
  RecommendRequest r;
  r.num_series = cfg.num_series;
  r.num_steps = cfg.seed_steps;
  r.p = 6;
  r.q = 6;
  r.top_k = 2;
  r.window.resize(static_cast<size_t>(cfg.num_series) * cfg.seed_steps);
  for (int n = 0; n < cfg.num_series; ++n) {
    for (int t = 0; t < cfg.seed_steps; ++t) {
      r.window[static_cast<size_t>(n) * cfg.seed_steps + t] =
          SignalAt(cfg, n, t);
    }
  }
  return r;
}

struct ArmResult {
  double mae_pre = 0.0;
  double mae_degraded = 0.0;
  double mae_post = 0.0;
  int first_swap_tick = -1;   ///< Live tick index of the first hot-swap.
  double recovery_ns = 0.0;   ///< Wall ns from the onset push to the swap.
  uint64_t drifts = 0;
  uint64_t pre_onset_drifts = 0;
  std::vector<double> push_ns;  ///< Per-push latency.
  stream::StreamEngineStats stats;
  bool ok = false;
};

ArmResult RunArm(const StreamBenchConfig& cfg, bool recovery) {
  ArmResult out;
  Rng rng(78);
  Comparator comparator(BenchComparator(), 77);
  Ts2Vec encoder(1, BenchEncoder(), &rng);
  JointSearchSpace space;
  RecommendationService service(&comparator, &encoder, &space, BenchServe());
  if (!service.Start().ok()) return out;
  StatusOr<uint64_t> id =
      service.StreamOpen(SeedRequest(cfg), BenchKnobs(recovery));
  if (!id.ok()) {
    std::cout << "[bench] StreamOpen failed: " << id.status().message()
              << "\n";
    service.Shutdown();
    return out;
  }

  double sum_pre = 0.0, sum_deg = 0.0, sum_post = 0.0;
  int n_pre = 0, n_deg = 0, n_post = 0;
  std::vector<float> tick(static_cast<size_t>(cfg.num_series));
  std::chrono::steady_clock::time_point onset_time;
  for (int t = 0; t < cfg.ticks; ++t) {
    const float shift = t >= cfg.onset ? cfg.shift : 0.0f;
    for (int n = 0; n < cfg.num_series; ++n) {
      tick[static_cast<size_t>(n)] =
          SignalAt(cfg, n, cfg.seed_steps + t) + shift;
    }
    if (t == cfg.onset) onset_time = std::chrono::steady_clock::now();
    const auto start = std::chrono::steady_clock::now();
    StatusOr<stream::TickResult> r = service.StreamPush(id.value(), tick);
    const auto end = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::cout << "[bench] StreamPush failed: " << r.status().message()
                << "\n";
      service.Shutdown();
      return out;
    }
    out.push_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count()));
    if (r.value().drift) {
      ++out.drifts;
      if (t < cfg.onset) ++out.pre_onset_drifts;
    }
    if (r.value().swapped && out.first_swap_tick < 0) {
      out.first_swap_tick = t;
      out.recovery_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                               onset_time)
              .count());
    }
    if (!r.value().scored) continue;
    if (t < cfg.onset) {
      sum_pre += r.value().error;
      ++n_pre;
    } else if (out.first_swap_tick < 0) {
      sum_deg += r.value().error;
      ++n_deg;
    } else if (t > out.first_swap_tick) {
      // The swap tick itself scored the old model's last forecast.
      sum_post += r.value().error;
      ++n_post;
    }
  }
  if (n_pre > 0) out.mae_pre = sum_pre / n_pre;
  if (n_deg > 0) out.mae_degraded = sum_deg / n_deg;
  if (n_post > 0) out.mae_post = sum_post / n_post;
  StatusOr<stream::StreamEngineStats> stats = service.StreamStats(id.value());
  if (stats.ok()) out.stats = stats.value();
  (void)service.StreamClose(id.value());
  service.Shutdown();
  out.ok = true;
  return out;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(values.size()) - 1.0,
                       p * static_cast<double>(values.size())));
  return values[idx];
}

MicroBenchRecord ToRecord(const std::string& op, const StreamBenchConfig& cfg,
                          const ArmResult& arm) {
  MicroBenchRecord rec;
  rec.op = op;
  rec.threads = 1;
  double sum = 0.0;
  for (double v : arm.push_ns) sum += v;
  rec.ns_per_iter = arm.push_ns.empty()
                        ? 0.0
                        : sum / static_cast<double>(arm.push_ns.size());
  rec.p50_ns = Percentile(arm.push_ns, 0.50);
  rec.p95_ns = Percentile(arm.push_ns, 0.95);
  rec.p99_ns = Percentile(arm.push_ns, 0.99);
  rec.mae_pre = arm.mae_pre;
  rec.mae_degraded = arm.mae_degraded;
  rec.mae_post = arm.mae_post;
  rec.recovery_ticks = arm.first_swap_tick >= 0
                           ? static_cast<double>(arm.first_swap_tick -
                                                 cfg.onset)
                           : 0.0;
  rec.recovery_ns = arm.recovery_ns;
  rec.drifts = static_cast<double>(arm.stats.drifts);
  rec.swaps = static_cast<double>(arm.stats.swaps);
  return rec;
}

int Main(int argc, char** argv) {
  bool smoke = std::getenv("REPRO_SMOKE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  StreamBenchConfig cfg;
  if (smoke) cfg.ticks = 160;

  std::cout << "[bench] streaming regime-shift scenario: " << cfg.ticks
            << " live ticks, onset " << cfg.onset << ", shift " << cfg.shift
            << (smoke ? " (smoke)" : "") << "\n";

  ArmResult with = RunArm(cfg, /*recovery=*/true);
  ArmResult without = RunArm(cfg, /*recovery=*/false);
  if (!with.ok || !without.ok) {
    std::cout << "[bench] arm failed; no JSON written\n";
    return 1;
  }

  std::cout << "[bench] recovery arm:    pre=" << with.mae_pre
            << " degraded=" << with.mae_degraded << " post=" << with.mae_post
            << " swap_tick=" << with.first_swap_tick
            << " recovery_ms=" << with.recovery_ns / 1e6
            << " drifts=" << with.stats.drifts
            << " swaps=" << with.stats.swaps << "\n";
  std::cout << "[bench] no-recovery arm: pre=" << without.mae_pre
            << " degraded=" << without.mae_degraded
            << " (stays on the stale model)\n";
  if (with.pre_onset_drifts > 0 || without.pre_onset_drifts > 0) {
    std::cout << "[bench] WARNING: detector triggered before onset "
              << "(false positive at these knobs)\n";
  }
  if (with.mae_pre > 0.0) {
    std::cout << "[bench] post/pre ratio = " << with.mae_post / with.mae_pre
              << " (CI gate: <= 1.15)\n";
  }

  std::vector<MicroBenchRecord> records;
  records.push_back(ToRecord("stream_regime_shift_recovery", cfg, with));
  records.push_back(ToRecord("stream_regime_shift_no_recovery", cfg, without));
  WriteBenchJson("BENCH_PR9.json", records);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main(int argc, char** argv) { return autocts::bench::Main(argc, argv); }
