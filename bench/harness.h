#ifndef REPRO_BENCH_HARNESS_H_
#define REPRO_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/autocts.h"
#include "data/synthetic.h"

namespace autocts {
namespace bench {

/// Shared environment of the paper-table benchmark binaries. Scale knobs
/// come from ScaleConfig::Bench(); the seed count is REPRO_SEEDS (default 1;
/// the paper uses 5 — raise it when you have the minutes to spare).
struct BenchEnv {
  ScaleConfig scale;
  int seeds = 1;
  AutoCtsOptions autocts;

  static BenchEnv FromEnv();
};

/// The seven unseen target tasks of one forecasting setting (Table 3 order).
std::vector<ForecastTask> MakeTargetTasks(int p, int q, bool single_step,
                                          const ScaleConfig& scale);
ForecastTask MakeTargetTask(const std::string& dataset, int p, int q,
                            bool single_step, const ScaleConfig& scale);

/// Source tasks for pre-training: subsets of the eleven source datasets
/// under P-12/Q-12 and P-48/Q-48 (paper §4.1.1; 200 tasks there, scaled
/// here to `num_tasks`).
std::vector<ForecastTask> MakeSourceTasks(int num_tasks,
                                          const ScaleConfig& scale,
                                          uint64_t seed);

/// Mean/stddev of a metric across seeds.
struct Aggregate {
  double mean = 0.0;
  double std = 0.0;
};
Aggregate Aggregated(const std::vector<double>& values);

/// Result of evaluating one method on one task across seeds.
struct EvalResult {
  std::vector<ForecastMetrics> per_seed;
  Aggregate mae, rmse, mape, rrse, corr;
  double seconds = 0.0;  ///< Total wall time including any grid search.
};
EvalResult AggregateMetrics(const std::vector<ForecastMetrics>& per_seed);

/// Trains a named baseline on the task. When `grid_search` is set, first
/// picks H ∈ {32, 64} × I ∈ {64, 256} by one-epoch early validation — the
/// hyperparameter grid the paper grants the baselines at unseen settings.
EvalResult EvaluateBaseline(const std::string& name, const ForecastTask& task,
                            const BenchEnv& env, bool grid_search,
                            uint64_t seed);

/// Trains a fixed arch-hyper on the task across seeds.
EvalResult EvaluateArchHyper(const ArchHyper& ah, const ForecastTask& task,
                             const BenchEnv& env, uint64_t seed);

/// Trains the AutoCTS++ top-K candidates and reports the winner, per seed.
EvalResult EvaluateAutoCtsPlusPlus(AutoCtsPlusPlus* framework,
                                   const ForecastTask& task,
                                   const BenchEnv& env, uint64_t seed);

/// Builds and pre-trains an AutoCTS++ instance on the standard source-task
/// mix, logging progress to stdout. When `cache_tag` is non-empty the
/// pre-trained parameters are cached under
/// $REPRO_CKPT_DIR/autocts_<tag>.{encoder,tahc} (default dir ".") so sibling
/// bench binaries reuse one pre-training run; delete the files to retrain.
std::unique_ptr<AutoCtsPlusPlus> PretrainedFramework(
    const BenchEnv& env, const std::string& cache_tag = "default");
std::unique_ptr<AutoCtsPlusPlus> PretrainedFramework(
    const BenchEnv& env, AutoCtsOptions options,
    const std::string& cache_tag);

/// "1.234±0.010" cell (matching the paper's mean±std presentation).
std::string Cell(const Aggregate& agg, int precision = 3);

/// One machine-readable micro-benchmark measurement. bench_micro emits a
/// list of these as BENCH_PR2.json / BENCH_PR3.json so CI can archive
/// kernel throughput and allocator pressure per commit. Fields that do not
/// apply to a given op stay at their zero defaults.
struct MicroBenchRecord {
  std::string op;             ///< e.g. "matmul_blocked_512".
  int threads = 1;
  double gflops = 0.0;        ///< Arithmetic throughput (0 if not a kernel).
  double ns_per_iter = 0.0;   ///< Mean wall time per iteration.
  double pool_hit_rate = 0.0;  ///< Buffer-pool hit rate over the timed run.
  double allocs_per_step = 0.0;  ///< Heap allocations per iteration.
  double tape_nodes_per_step = 0.0;  ///< Autograd nodes taped per iteration.
  /// Buffer-pool acquires (hits + misses) per iteration — every one is an
  /// acquire/release round-trip once the step's tape is torn down.
  double pool_roundtrips_per_step = 0.0;
  /// For derived A/B records: percent cost of the "on" leg over the "off"
  /// leg (used by the BENCH_PR4.json guardrail-overhead records).
  double overhead_pct = 0.0;
  /// Fastest/slowest repetition (0 when only the mean was measured).
  double ns_min = 0.0;
  double ns_max = 0.0;
  /// For paired A/B records over >=5 repetitions: per-repetition speedup of
  /// the fast leg over the baseline leg (BENCH_PR5.json plan-vs-eager).
  double speedup_min = 0.0;
  double speedup_median = 0.0;
  double speedup_max = 0.0;
  /// Plan arena footprint (bytes) live during the timed run, if any.
  double arena_bytes = 0.0;
  /// Kernel backend active during the measurement ("" when the op does not
  /// dispatch through tensor/backend.h or the backend is irrelevant).
  std::string backend;
  /// For quantized-vs-fp32 comparator A/B records: fraction of pairwise
  /// verdicts agreeing with fp32 over the measured sweep (0 if unmeasured).
  double rank_agreement = 0.0;
  /// Latency-distribution fields for serving-style records (BENCH_PR7.json):
  /// per-request latency percentiles over the measured run (0 when only a
  /// mean was measured) and sustained request throughput.
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double qps = 0.0;
  /// Cache hit rate observed over the run (embed cache for serving records;
  /// 0 when the record has no cache axis).
  double cache_hit_rate = 0.0;
  /// Resident-set growth attributable to the measured resume path
  /// (BENCH_PR8.json bank records; /proc/self/statm delta, 0 elsewhere).
  double rss_bytes = 0.0;
  /// Checkpoint-resume latency: open the bank and make every persisted
  /// sample/embedding usable again (mean over repetitions, 0 elsewhere).
  double resume_ns = 0.0;
  /// Streaming-scenario fields (BENCH_PR9.json): online MAE before the
  /// fault onset, between onset and the first hot-swap (or to the end when
  /// the arm never recovers), and after the first swap; how many ticks and
  /// wall ns the first recovery took (0 when no swap happened); and the
  /// session's drift/swap counters. 0 on non-streaming records.
  double mae_pre = 0.0;
  double mae_degraded = 0.0;
  double mae_post = 0.0;
  double recovery_ticks = 0.0;
  double recovery_ns = 0.0;
  double drifts = 0.0;
  double swaps = 0.0;
  /// Sharded-collection fields (BENCH_PR10.json): worker-process count of
  /// the measured run and sustained labeled-sample throughput. 0 on
  /// non-shard records.
  double workers = 0.0;
  double samples_per_hour = 0.0;
};

/// Writes `records` to `path` as a JSON array of flat objects.
void WriteBenchJson(const std::string& path,
                    const std::vector<MicroBenchRecord>& records);

}  // namespace bench
}  // namespace autocts

#endif  // REPRO_BENCH_HARNESS_H_
