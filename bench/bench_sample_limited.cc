// Regenerates Table 13: sample-limited performance study on P-24/Q-24.
//
// The candidate-pool size K_s is swept through the paper's ratios (600k /
// 300k / 150k / 75k / 37.5k, divided by 1,000 at bench scale; the main
// experiments use the 300k analog). For each K_s we report MAE/RMSE/MAPE
// and the search TIME. AutoCTS+ (fully supervised, per-task labeling) and
// PDFormer (with its H×I grid search) are the reference columns — their
// per-task cost is the paper's headline contrast.
#include <chrono>
#include <iostream>

#include "bench/harness.h"
#include "common/table.h"

namespace autocts {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from)
      .count();
}

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  std::cout << "=== Table 13 — sample-limited study, P-24/Q-24 "
               "(K_s = paper value / 1000) ===\n";
  auto framework = PretrainedFramework(env);
  const int base = env.scale.ranking_pool;  // 300 ≙ paper's 300,000.
  const std::vector<int> pools = {2 * base, base, base / 2, base / 4,
                                  base / 8};

  std::vector<std::string> header = {"Dataset", "Metric"};
  for (int p : pools) header.push_back("Ks=" + std::to_string(p) + "k'");
  header.push_back("AutoCTS+");
  header.push_back("PDFormer");
  TextTable table(header);

  uint64_t seed = 7000;
  for (const ForecastTask& task : MakeTargetTasks(24, 24, false, env.scale)) {
    std::cerr << "[table13] " << task.data->name() << "\n";
    std::vector<EvalResult> variant_results;
    std::vector<double> variant_times;
    for (int pool : pools) {
      SearchOptions search = env.autocts.search;
      search.ranking_pool = pool;
      search.top_k = 1;
      auto t0 = std::chrono::steady_clock::now();
      std::vector<ArchHyper> top = framework->RankTopK(task, search);
      double search_seconds = Seconds(t0);
      BenchEnv one_seed = env;
      EvalResult r = EvaluateArchHyper(top[0], task, one_seed, seed += 3);
      variant_results.push_back(r);
      variant_times.push_back(search_seconds);
    }
    // AutoCTS+ — fully supervised joint search on this task (its per-task
    // supervision time counts as its search time).
    AutoCtsOptions plus_opts = env.autocts;
    plus_opts.collect.shared_count = 2;
    plus_opts.collect.random_count = 2;
    plus_opts.collect.train.batches_per_epoch = 6;
    plus_opts.search.ranking_pool = env.scale.ranking_pool / 2;
    plus_opts.search.top_k = 1;
    plus_opts.seed = seed += 3;
    AutoCtsPlus plus(plus_opts);
    SearchOutcome plus_outcome = plus.SearchAndTrain(task);
    double plus_time = plus_outcome.embed_seconds + plus_outcome.rank_seconds;
    // PDFormer — grid-search time is its "search" cost.
    EvalResult pd = EvaluateBaseline("PDFormer", task, env,
                                     /*grid_search=*/true, seed += 3);

    auto metric_of = [&](const EvalResult& r, const std::string& m) {
      return m == "MAE" ? r.mae : (m == "RMSE" ? r.rmse : r.mape);
    };
    for (const std::string& metric : {"MAE", "RMSE", "MAPE"}) {
      std::vector<std::string> row = {task.data->name(), metric};
      for (const EvalResult& r : variant_results) {
        row.push_back(Cell(metric_of(r, metric)));
      }
      double plus_metric = metric == "MAE" ? plus_outcome.best_report.test.mae
                           : metric == "RMSE"
                               ? plus_outcome.best_report.test.rmse
                               : plus_outcome.best_report.test.mape;
      row.push_back(TextTable::Num(plus_metric, 3));
      row.push_back(Cell(metric_of(pd, metric)));
      table.AddRow(row);
    }
    std::vector<std::string> time_row = {task.data->name(), "TIME(s)"};
    for (double t : variant_times) time_row.push_back(TextTable::Num(t, 1));
    time_row.push_back(TextTable::Num(plus_time, 1));
    time_row.push_back(TextTable::Num(pd.seconds, 1));
    table.AddRow(time_row);
  }
  std::cout << table.ToString();
  std::cout << "(paper shape: accuracy degrades and search time shrinks as "
               "K_s drops; the knee sits at the main setting; AutoCTS+ and "
               "PDFormer cost 1–2 orders of magnitude more time per task)\n";
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main() {
  autocts::bench::Run();
  return 0;
}
