// Regenerates Table 7: performance of P-48/Q-48 multi-step forecasting.
#include "bench/perf_table.h"

int main() {
  autocts::bench::RunPerfTable(48, 48, /*single_step=*/false, "Table 7");
  return 0;
}
