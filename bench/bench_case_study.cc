// Regenerates Figures 8–9: the searched ST-blocks (arch-hypers) found for
// ten target dataset/setting combinations.
//
// Expected shape (paper §4.2.6): hyperparameters and architectures change
// across forecasting settings for the same dataset; datasets from similar
// domains (PEMS-BAY vs PEMSD7M; NYC-TAXI vs NYC-BIKE; Los-Loop vs SZ-TAXI)
// receive similar arch-hypers, while cross-domain pairs (Electricity vs
// PEMS-BAY) differ markedly.
#include <iostream>

#include "bench/harness.h"
#include "common/table.h"

namespace autocts {
namespace bench {
namespace {

void PrintArchHyper(const std::string& title, const ArchHyper& ah) {
  const HyperParams& h = ah.hyper;
  std::cout << "--- " << title << " ---\n";
  std::cout << "Hyper: B=" << h.num_blocks << ", C=" << h.num_nodes
            << ", H=" << h.hidden_dim << ", I=" << h.output_dim
            << ", U=" << h.output_mode << ", d=" << h.dropout << "\n";
  for (const ArchEdge& e : ah.arch.edges) {
    std::cout << "  h" << e.src << " --" << OpName(e.op) << "--> h" << e.dst
              << "\n";
  }
}

/// Fraction of shared edges+hypers between two arch-hypers (crude
/// similarity used to echo the paper's qualitative claims).
double Similarity(const ArchHyper& a, const ArchHyper& b) {
  int shared = 0;
  for (const ArchEdge& ea : a.arch.edges) {
    for (const ArchEdge& eb : b.arch.edges) {
      if (ea == eb) {
        ++shared;
        break;
      }
    }
  }
  double arch_sim = static_cast<double>(2 * shared) /
                    static_cast<double>(a.arch.edges.size() +
                                        b.arch.edges.size());
  int same_hyper = (a.hyper.num_blocks == b.hyper.num_blocks) +
                   (a.hyper.num_nodes == b.hyper.num_nodes) +
                   (a.hyper.hidden_dim == b.hyper.hidden_dim) +
                   (a.hyper.output_dim == b.hyper.output_dim) +
                   (a.hyper.output_mode == b.hyper.output_mode) +
                   (a.hyper.dropout == b.hyper.dropout);
  return 0.5 * arch_sim + 0.5 * same_hyper / 6.0;
}

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  std::cout << "=== Figures 8–9 — case study of searched ST-blocks ===\n";
  auto framework = PretrainedFramework(env);

  struct Case {
    const char* dataset;
    int p, q;
    bool single;
  };
  const Case cases[] = {
      // Figure 8: one dataset across settings + cross-domain contrast.
      {"PEMS-BAY", 12, 12, false},
      {"PEMS-BAY", 24, 24, false},
      {"PEMS-BAY", 48, 48, false},
      {"PEMS-BAY", 168, 3, true},
      {"PEMSD7M", 12, 12, false},
      {"Electricity", 12, 12, false},
      // Figure 9: same-scale dataset pairs.
      {"NYC-TAXI", 12, 12, false},
      {"NYC-BIKE", 12, 12, false},
      {"Los-Loop", 48, 48, false},
      {"SZ-TAXI", 48, 48, false},
  };
  std::vector<ArchHyper> found;
  std::vector<std::string> titles;
  for (const Case& c : cases) {
    ForecastTask task = MakeTargetTask(c.dataset, c.p, c.q, c.single,
                                       env.scale);
    SearchOptions search = env.autocts.search;
    search.top_k = 1;
    std::vector<ArchHyper> top = framework->RankTopK(task, search);
    found.push_back(top[0]);
    titles.push_back(task.name());
    PrintArchHyper(task.name(), top[0]);
  }

  std::cout << "\nPairwise structure similarity (1 = identical):\n";
  TextTable table({"Pair", "Similarity"});
  auto add = [&](int i, int j) {
    table.AddRow({titles[static_cast<size_t>(i)] + "  vs  " +
                      titles[static_cast<size_t>(j)],
                  TextTable::Num(Similarity(found[static_cast<size_t>(i)],
                                            found[static_cast<size_t>(j)]),
                                 3)});
  };
  add(0, 4);  // PEMS-BAY vs PEMSD7M (same domain, expect similar)
  add(0, 5);  // PEMS-BAY vs Electricity (cross domain, expect dissimilar)
  add(6, 7);  // NYC-TAXI vs NYC-BIKE (same scale/domain)
  add(8, 9);  // Los-Loop vs SZ-TAXI (same scale)
  add(0, 1);  // PEMS-BAY P12 vs P24 (setting shift)
  add(0, 2);  // PEMS-BAY P12 vs P48
  std::cout << table.ToString();
  std::cout << "(paper shape: same-domain pairs more similar than the "
               "cross-domain pair; settings shift the found arch-hyper)\n";
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main() {
  autocts::bench::Run();
  return 0;
}
