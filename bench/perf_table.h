#ifndef REPRO_BENCH_PERF_TABLE_H_
#define REPRO_BENCH_PERF_TABLE_H_

#include <string>

namespace autocts {
namespace bench {

/// Regenerates one of the paper's performance-comparison tables (5–8):
/// every target dataset × {AutoCTS++, 8 baselines}, test-set metrics,
/// mean±std over REPRO_SEEDS runs. `single_step` selects the RRSE/CORR
/// single-step protocol (Table 8); otherwise MAE/RMSE/MAPE (Tables 5–7).
/// Baselines receive the paper's H×I grid search at non-default settings.
void RunPerfTable(int p, int q, bool single_step,
                  const std::string& table_name);

}  // namespace bench
}  // namespace autocts

#endif  // REPRO_BENCH_PERF_TABLE_H_
