// Regenerates Table 4 (quantitative task-similarity analysis) and Figure 6
// (two-dimensional visualization of task embeddings).
//
// Table 4: the same shared arch-hypers are early-validated on three tasks —
// a (PEMS08-like subset, P-12/Q-12), b (METR-LA-like subset, P-12/Q-12) and
// c (Solar-like subset, P-48/Q-48). We report the MAE between normalized
// accuracy vectors and Spearman's ρ for each task pair. Expected shape:
// a↔b similar (low MAE, high ρ), both dissimilar from c.
//
// Figure 6: source-task embeddings from the pre-trained T-AHC projected to
// two PCA dimensions, printed as coordinates grouped by dataset family.
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "common/table.h"
#include "model/searched_model.h"
#include "searchspace/search_space.h"

namespace autocts {
namespace bench {
namespace {

/// Early-validation errors of `pool` on `task`, z-score normalized.
std::vector<double> NormalizedErrors(const std::vector<ArchHyper>& pool,
                                     const ForecastTask& task,
                                     const BenchEnv& env, uint64_t seed) {
  ForecasterSpec spec = MakeForecasterSpec(task);
  TrainOptions train = env.autocts.collect.train;
  ModelTrainer trainer(task, train);
  std::vector<double> errors;
  for (size_t i = 0; i < pool.size(); ++i) {
    auto model = BuildSearchedModel(pool[i], spec, env.scale, seed + i);
    errors.push_back(trainer.EarlyValidationError(
        model.get(), env.autocts.collect.early_validation_epochs));
  }
  double mean = 0.0;
  for (double e : errors) mean += e;
  mean /= static_cast<double>(errors.size());
  double var = 0.0;
  for (double e : errors) var += (e - mean) * (e - mean);
  double std_dev = std::sqrt(var / static_cast<double>(errors.size()));
  if (std_dev < 1e-12) std_dev = 1.0;
  for (double& e : errors) e = (e - mean) / std_dev;
  return errors;
}

double VectorMae(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

/// Projects row vectors to their two leading principal components (power
/// iteration with deflation; plenty for a scatter plot).
std::vector<std::pair<double, double>> PcaTwo(
    const std::vector<std::vector<double>>& rows) {
  const size_t n = rows.size(), d = rows[0].size();
  std::vector<double> mean(d, 0.0);
  for (const auto& r : rows) {
    for (size_t j = 0; j < d; ++j) mean[j] += r[j];
  }
  for (double& m : mean) m /= static_cast<double>(n);
  std::vector<std::vector<double>> centered = rows;
  for (auto& r : centered) {
    for (size_t j = 0; j < d; ++j) r[j] -= mean[j];
  }
  auto power_component = [&](const std::vector<std::vector<double>>& data) {
    std::vector<double> v(d, 1.0 / std::sqrt(static_cast<double>(d)));
    for (int it = 0; it < 64; ++it) {
      std::vector<double> next(d, 0.0);
      for (const auto& r : data) {
        double proj = 0.0;
        for (size_t j = 0; j < d; ++j) proj += r[j] * v[j];
        for (size_t j = 0; j < d; ++j) next[j] += proj * r[j];
      }
      double norm = 0.0;
      for (double x : next) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      for (size_t j = 0; j < d; ++j) v[j] = next[j] / norm;
    }
    return v;
  };
  std::vector<double> pc1 = power_component(centered);
  // Deflate and find the second component.
  std::vector<std::vector<double>> deflated = centered;
  for (auto& r : deflated) {
    double proj = 0.0;
    for (size_t j = 0; j < d; ++j) proj += r[j] * pc1[j];
    for (size_t j = 0; j < d; ++j) r[j] -= proj * pc1[j];
  }
  std::vector<double> pc2 = power_component(deflated);
  std::vector<std::pair<double, double>> coords;
  for (const auto& r : centered) {
    double x = 0.0, y = 0.0;
    for (size_t j = 0; j < d; ++j) {
      x += r[j] * pc1[j];
      y += r[j] * pc2[j];
    }
    coords.push_back({x, y});
  }
  return coords;
}

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Rng rng(407);
  JointSearchSpace space;

  // ---- Table 4 ----
  std::cout << "=== Table 4 — quantitative analysis of task similarities ===\n";
  const int pool_size = 12;  // Paper: 200 shared arch-hypers.
  std::vector<ArchHyper> pool = space.SampleDistinct(pool_size, &rng);
  ForecastTask a = DeriveSubsetTask(MakeSyntheticDataset("PEMS08", env.scale).value(),
                                    12, 12, false, &rng);
  ForecastTask b = DeriveSubsetTask(MakeSyntheticDataset("METR-LA", env.scale).value(),
                                    12, 12, false, &rng);
  ForecastTask c = DeriveSubsetTask(
      MakeSyntheticDataset("Solar-Energy", env.scale).value(), 48, 48, false, &rng);
  std::vector<double> ea = NormalizedErrors(pool, a, env, 11);
  std::vector<double> eb = NormalizedErrors(pool, b, env, 22);
  std::vector<double> ec = NormalizedErrors(pool, c, env, 33);
  TextTable table({"Pair", "MAE (normalized acc.)", "Spearman"});
  table.AddRow({"a (PEMS08) and b (METR-LA)", TextTable::Num(VectorMae(ea, eb), 4),
                TextTable::Num(SpearmanRho(ea, eb), 4)});
  table.AddRow({"a (PEMS08) and c (Solar)", TextTable::Num(VectorMae(ea, ec), 4),
                TextTable::Num(SpearmanRho(ea, ec), 4)});
  table.AddRow({"b (METR-LA) and c (Solar)", TextTable::Num(VectorMae(eb, ec), 4),
                TextTable::Num(SpearmanRho(eb, ec), 4)});
  std::cout << table.ToString();
  std::cout << "(paper shape: a~b most similar — lowest MAE, highest rho)\n\n";

  // ---- Figure 6 ----
  std::cout << "=== Figure 6 — 2-D PCA of task embeddings (pre-trained "
               "T-AHC) ===\n";
  auto framework = PretrainedFramework(env);
  std::vector<std::string> names = {"PEMS04", "PEMS08",       "METR-LA",
                                    "ETTh1",  "Solar-Energy", "ExchangeRate"};
  std::vector<std::string> labels;
  std::vector<std::vector<double>> embeds;
  for (const std::string& name : names) {
    CtsDatasetPtr d = MakeSyntheticDataset(name, env.scale).value();
    for (int p : {12, 48}) {
      for (int subset = 0; subset < 2; ++subset) {
        ForecastTask t = DeriveSubsetTask(d, p, p, false, &rng);
        Tensor e = framework->EmbedTask(t);
        std::vector<double> row(e.data().begin(), e.data().end());
        embeds.push_back(std::move(row));
        labels.push_back(name + (p == 12 ? " o P12" : " ^ P48"));
      }
    }
  }
  std::vector<std::pair<double, double>> coords = PcaTwo(embeds);
  TextTable scatter({"Task (o = P-12/Q-12, ^ = P-48/Q-48)", "PC1", "PC2"});
  for (size_t i = 0; i < coords.size(); ++i) {
    scatter.AddRow({labels[i], TextTable::Num(coords[i].first, 3),
                    TextTable::Num(coords[i].second, 3)});
  }
  std::cout << scatter.ToString();
  std::cout << "(paper shape: same-domain tasks cluster; P-12 vs P-48 of "
               "the same dataset separate)\n";
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main() {
  autocts::bench::Run();
  return 0;
}
