// Micro-benchmarks of the substrate (google-benchmark): tensor matmul,
// operator forwards, GIN inference, comparator ranking throughput, and a
// supernet training step. These pin the per-component costs that the
// paper's efficiency claims (Fig. 7, Table 13 TIME column) decompose into.
//
// After the google-benchmark pass, main() runs a small self-timed pass and
// writes BENCH_PR2.json (kernel throughput, buffer-pool hit rate, and
// allocations per training step), BENCH_PR3.json (fused vs op-graph
// ST-block A/B), and BENCH_PR4.json (guardrails armed vs disarmed, with
// the <2% overhead budget), BENCH_PR5.json (step-plan replay vs eager), and
// BENCH_PR6.json (per-backend GEMM throughput and the quantized-vs-fp32
// comparator ranking A/B) for CI to archive. AUTOCTS_BENCH_ITERS sets
// the iteration count (default 5; CI smoke uses 2).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/guard.h"
#include "common/parallel.h"
#include "common/runtime_stats.h"
#include "comparator/comparator.h"
#include "comparator/quant.h"
#include "data/synthetic.h"
#include "model/operators.h"
#include "model/trainer.h"
#include "model/searched_model.h"
#include "nn/optimizer.h"
#include "search/evolutionary.h"
#include "searchspace/parse.h"
#include "supernet/supernet.h"
#include "tensor/backend.h"
#include "tensor/buffer_pool.h"
#include "tensor/fused.h"
#include "tensor/ops.h"
#include "tensor/plan.h"
#include "tensor/tensor.h"

namespace autocts {
namespace {

// Kernel benches take a trailing thread-count argument: a local pool is
// installed for the timed region, so `--benchmark_filter=BM_MatMul` compares
// the serial path (1) against the fan-out path (4) on the same sizes.
void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<int>(state.range(1)));
  ExecScope scope(ExecContext{&pool, 0});
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->ArgsProduct({{16, 64, 128, 256}, {1, 4}});

void BM_MatMulBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<int>(state.range(1)));
  ExecScope scope(ExecContext{&pool, 0});
  Rng rng(2);
  Tensor a = Tensor::Randn({n, n}, &rng, 1.0f, true);
  Tensor b = Tensor::Randn({n, n}, &rng, 1.0f, true);
  for (auto _ : state) {
    Tensor loss = SumAll(MatMul(a, b));
    loss.Backward();
    a.ZeroGrad();
    b.ZeroGrad();
  }
}
BENCHMARK(BM_MatMulBackward)->ArgsProduct({{16, 64, 128}, {1, 4}});

void BM_CausalConv(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<int>(state.range(1)));
  ExecScope scope(ExecContext{&pool, 0});
  Rng rng(6);
  Tensor x = Tensor::Randn({rows, 64, 8}, &rng);
  Tensor w = Tensor::Randn({3, 8, 16}, &rng);
  Tensor b = Tensor::Randn({16}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CausalConv1d(x, w, b, /*dilation=*/2).data().data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{rows} * 64 * 3 * 8 * 16);
}
BENCHMARK(BM_CausalConv)->ArgsProduct({{8, 32}, {1, 4}});

void BM_CausalConvBackward(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<int>(state.range(1)));
  ExecScope scope(ExecContext{&pool, 0});
  Rng rng(8);
  Tensor x = Tensor::Randn({rows, 64, 8}, &rng, 1.0f, true);
  Tensor w = Tensor::Randn({3, 8, 16}, &rng, 1.0f, true);
  Tensor b = Tensor::Randn({16}, &rng, 1.0f, true);
  for (auto _ : state) {
    Tensor loss = SumAll(CausalConv1d(x, w, b, /*dilation=*/2));
    loss.Backward();
    x.ZeroGrad();
    w.ZeroGrad();
    b.ZeroGrad();
  }
}
BENCHMARK(BM_CausalConvBackward)->ArgsProduct({{8, 32}, {1, 4}});

OperatorContext MicroContext(Rng* rng) {
  OperatorContext ctx;
  ctx.num_sensors = 10;
  ctx.hidden_dim = 4;
  std::vector<float> adj(100, 0.2f);
  for (int i = 0; i < 10; ++i) adj[static_cast<size_t>(i) * 10 + i] = 1.0f;
  ctx.adjacency = Tensor::FromVector({10, 10}, std::move(adj));
  ctx.rng = rng;
  return ctx;
}

void BM_OperatorForward(benchmark::State& state) {
  Rng rng(3);
  OperatorContext ctx = MicroContext(&rng);
  auto op = MakeOperator(static_cast<OpType>(state.range(0)), ctx, 1);
  Tensor x = Tensor::Randn({8, 10, 12, 4}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Forward(x).data().data());
  }
}
BENCHMARK(BM_OperatorForward)
    ->Arg(static_cast<int>(OpType::kGdcc))
    ->Arg(static_cast<int>(OpType::kInfT))
    ->Arg(static_cast<int>(OpType::kDgcn))
    ->Arg(static_cast<int>(OpType::kInfS));

void BM_GinBatchForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(4);
  GinEncoder::Options opts;
  GinEncoder gin(opts, &rng);
  JointSearchSpace space;
  std::vector<ArchHyperEncoding> encs;
  for (int i = 0; i < batch; ++i) {
    encs.push_back(EncodeArchHyper(space.Sample(&rng)));
  }
  EncodingBatch eb = StackEncodings(encs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gin.Forward(eb).data().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GinBatchForward)->Arg(16)->Arg(64)->Arg(256);

void BM_ComparatorRankingThroughput(benchmark::State& state) {
  // Pairwise comparisons per second — the quantity that makes K_s=300,000
  // rankings feasible (Table 13's TIME column).
  Rng rng(5);
  Comparator::Options opts;
  opts.task_aware = false;
  Comparator comp(opts, 6);
  JointSearchSpace space;
  std::vector<ArchHyper> pool = space.SampleDistinct(64, &rng);
  EvolutionarySearcher searcher(&comp, &space);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        searcher.SparseWinCounts(pool, Tensor(), 4, 64, &rng));
  }
  state.SetItemsProcessed(state.iterations() * 64 * 4);
}
BENCHMARK(BM_ComparatorRankingThroughput);

void BM_ModelTrainStep(benchmark::State& state) {
  ScaleConfig cfg = ScaleConfig::Test();
  ForecastTask task;
  task.data = MakeSyntheticDataset("Los-Loop", cfg).value();
  task.p = 12;
  task.q = 12;
  ForecasterSpec spec = MakeForecasterSpec(task);
  JointSearchSpace space;
  Rng rng(7);
  auto model = BuildSearchedModel(space.Sample(&rng), spec, cfg, 8);
  WindowProvider provider(task);
  Adam adam(model->Parameters(), {});
  WindowBatch batch = provider.SampleTrainBatch(4, &rng);
  for (auto _ : state) {
    adam.ZeroGrad();
    Tensor loss = MaeLoss(model->Forward(batch.x), batch.y);
    loss.Backward();
    adam.Step();
  }
}
BENCHMARK(BM_ModelTrainStep);

void BM_SupernetStep(benchmark::State& state) {
  ScaleConfig cfg = ScaleConfig::Test();
  ForecastTask task;
  task.data = MakeSyntheticDataset("Los-Loop", cfg).value();
  task.p = 12;
  task.q = 12;
  ForecasterSpec spec = MakeForecasterSpec(task);
  SupernetOptions opts;
  opts.num_blocks = 2;
  Supernet net(opts, spec, cfg);
  WindowProvider provider(task);
  Rng rng(9);
  Adam adam(net.WeightParameters(), {});
  WindowBatch batch = provider.SampleTrainBatch(2, &rng);
  for (auto _ : state) {
    adam.ZeroGrad();
    Tensor loss = MaeLoss(net.Forward(batch.x), batch.y);
    loss.Backward();
    adam.Step();
  }
}
BENCHMARK(BM_SupernetStep);

// ---- Self-timed JSON report (BENCH_PR2.json) ------------------------------

/// The MatMul inner kernel this repo shipped before the blocked GEMM
/// (row-major axpy with a zero skip), kept verbatim as the speedup baseline
/// the JSON report measures against.
void PrePrGemmAcc(const float* a, const float* b, float* c, int m, int k,
                  int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<int64_t>(i) * k;
    float* crow = c + static_cast<int64_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<int64_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Mean wall-clock ns of `fn` over `iters` runs.
template <typename Fn>
double MeanNs(int iters, Fn fn) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         iters;
}

void AppendMatMulRecords(int iters,
                         std::vector<bench::MicroBenchRecord>* records) {
  constexpr int kN = 512;
  const double flop = 2.0 * kN * kN * kN;
  Rng rng(11);
  Tensor a = Tensor::Randn({kN, kN}, &rng);
  Tensor b = Tensor::Randn({kN, kN}, &rng);
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    ExecScope scope(ExecContext{&pool, 0});
    double ns = MeanNs(iters, [&] {
      benchmark::DoNotOptimize(MatMul(a, b).data().data());
    });
    bench::MicroBenchRecord rec;
    rec.op = "matmul_blocked_512";
    rec.threads = threads;
    rec.gflops = flop / ns;
    rec.ns_per_iter = ns;
    records->push_back(rec);
  }
  std::vector<float> c(static_cast<size_t>(kN) * kN);
  double ns = MeanNs(iters, [&] {
    std::fill(c.begin(), c.end(), 0.0f);
    PrePrGemmAcc(a.data().data(), b.data().data(), c.data(), kN, kN, kN);
    benchmark::DoNotOptimize(c.data());
  });
  bench::MicroBenchRecord rec;
  rec.op = "matmul_pre_pr_512";
  rec.threads = 1;
  rec.gflops = flop / ns;
  rec.ns_per_iter = ns;
  records->push_back(rec);
}

/// Comparator training steps with buffer-pool counters: one cold step
/// against an empty pool, then a warmed-up timed run. The warm
/// allocs_per_step is the number the pool exists to shrink.
void AppendTrainStepRecords(int iters,
                            std::vector<bench::MicroBenchRecord>* records) {
  Rng rng(13);
  Comparator::Options opts;
  opts.task_aware = false;
  Comparator comp(opts, 6);
  comp.SetTraining(true);
  JointSearchSpace space;
  constexpr int kPairs = 8;
  std::vector<ArchHyperEncoding> first, second;
  for (int i = 0; i < kPairs; ++i) {
    first.push_back(EncodeArchHyper(space.Sample(&rng)));
    second.push_back(EncodeArchHyper(space.Sample(&rng)));
  }
  EncodingBatch b1 = StackEncodings(first);
  EncodingBatch b2 = StackEncodings(second);
  std::vector<float> labels(kPairs);
  for (int i = 0; i < kPairs; ++i) labels[static_cast<size_t>(i)] = i % 2;
  Adam adam(comp.Parameters(), {});
  auto step = [&] {
    adam.ZeroGrad();
    Tensor target = Tensor::FromVector({kPairs}, labels);
    Tensor loss =
        BceLoss(Sigmoid(comp.CompareLogits(b1, b2, Tensor())), target);
    loss.Backward();
    adam.Step();
    loss.ReleaseTape();
  };
  BufferPool& pool = BufferPool::Global();
  pool.Clear();
  pool.ResetStats();
  step();
  bench::MicroBenchRecord cold;
  cold.op = "comparator_train_step_cold";
  cold.allocs_per_step =
      static_cast<double>(ExecContext{}.pool_stats().allocations());
  records->push_back(cold);
  for (int i = 0; i < 3; ++i) step();  // Warm the pool.
  pool.ResetStats();
  const int warm_iters = std::max(iters, 4);
  double ns = MeanNs(warm_iters, step);
  PoolStats stats = ExecContext{}.pool_stats();
  bench::MicroBenchRecord warm;
  warm.op = "comparator_train_step_warm";
  warm.ns_per_iter = ns;
  warm.pool_hit_rate = stats.hit_rate();
  warm.allocs_per_step =
      static_cast<double>(stats.allocations()) / warm_iters;
  records->push_back(warm);
}

// ---- ST-block training step: fused vs op-graph (BENCH_PR3.json) -----------

/// Trains the PR-3 reference ST-block (one operator of each kind on a B4
/// cell) for `iters` steps on a single thread and reports ns/step, tape
/// nodes/step, and buffer-pool round-trips/step. Run once with the fused
/// kernels and once with their op-graph references; the two records are the
/// A/B behind the PR's "fewer tape nodes, fewer passes" claim. Both paths
/// produce bit-identical parameters (tests/fused_ops_test.cc), so the only
/// difference the JSON can show is cost.
void AppendStBlockRecord(int iters, bool fused,
                         std::vector<bench::MicroBenchRecord>* records) {
  bool saved = FusedKernelsEnabled();
  SetFusedKernelsEnabled(fused);
  {
    // Single thread: the acceptance numbers are per-pass work, not fan-out.
    ThreadPool pool(1);
    ExecScope scope(ExecContext{&pool, 0});
    ScaleConfig cfg = ScaleConfig::Test();
    ForecastTask task;
    task.data = MakeSyntheticDataset("Los-Loop", cfg).value();
    task.p = 12;
    task.q = 12;
    ForecasterSpec spec = MakeForecasterSpec(task);
    ArchHyper ah = ParseArchHyper(
                       "B4C5H32I64U1d0|0-1:GDCC,0-2:DGCN,2-3:INF-T,3-4:INF-S")
                       .value();
    Rng rng(17);
    auto model = BuildSearchedModel(ah, spec, cfg, 8);
    model->SetTraining(true);
    WindowProvider provider(task);
    Adam adam(model->Parameters(), {});
    WindowBatch batch = provider.SampleTrainBatch(4, &rng);
    auto step = [&] {
      adam.ZeroGrad();
      Tensor loss = MaeLoss(model->Forward(batch.x), batch.y);
      loss.Backward();
      adam.Step();
      loss.ReleaseTape();
    };
    for (int i = 0; i < 2; ++i) step();  // Warm the pool and code paths.
    BufferPool::Global().ResetStats();
    const uint64_t tape_before = TapeNodesCreated();
    double ns = MeanNs(iters, step);
    const double tape_per_step =
        static_cast<double>(TapeNodesCreated() - tape_before) / iters;
    PoolStats stats = ExecContext{}.pool_stats();
    bench::MicroBenchRecord rec;
    rec.op = fused ? "st_block_train_step_fused" : "st_block_train_step_opgraph";
    rec.threads = 1;
    rec.ns_per_iter = ns;
    rec.pool_hit_rate = stats.hit_rate();
    rec.allocs_per_step = static_cast<double>(stats.allocations()) / iters;
    rec.tape_nodes_per_step = tape_per_step;
    rec.pool_roundtrips_per_step =
        static_cast<double>(stats.hits + stats.misses) / iters;
    records->push_back(rec);
  }
  SetFusedKernelsEnabled(saved);
}

// ---- Guardrail overhead: guards armed vs disarmed (BENCH_PR4.json) --------

/// Times the PR-4 training-step guardrails armed vs disarmed (the
/// in-process equivalent of AUTOCTS_NO_GUARDS=1), on the same ST-block
/// training step as the PR-3 A/B. The step carries the production guard
/// placements: the trainer's isfinite branch on the loss scalar it reads
/// anyway (model/trainer.cc) and Adam's non-finite-norm skip. With the
/// default clip norm (`clip=true`, the path every pipeline stage runs) the
/// Adam guard rides on the clipping reduction the step computes anyway;
/// with clipping disabled (`clip=false`) it must run the blocked isfinite
/// sweep over every gradient — the worst case.
///
/// The guard cost is far below run-to-run drift of a whole step, so the
/// A/B is paired: each iteration times one disarmed and one armed step
/// back to back on the same model state (order alternating per pair, so
/// neither leg systematically gets the warmer slot) and the overhead is
/// the *median* of the per-pair differences — frequency-scaling phases and
/// scheduler outliers hit both legs of a pair alike and cancel, where
/// separately-timed legs drift apart by more than the budget itself. The
/// derived *_guard_overhead record holds that paired percentage against
/// the PR-4 acceptance budget of <2%.
void AppendGuardrailRecords(int iters, bool clip,
                            std::vector<bench::MicroBenchRecord>* records) {
  const bool saved = GuardsEnabled();
  {
    ThreadPool pool(1);
    ExecScope scope(ExecContext{&pool, 0});
    ScaleConfig cfg = ScaleConfig::Test();
    ForecastTask task;
    task.data = MakeSyntheticDataset("Los-Loop", cfg).value();
    task.p = 12;
    task.q = 12;
    ForecasterSpec spec = MakeForecasterSpec(task);
    ArchHyper ah = ParseArchHyper(
                       "B4C5H32I64U1d0|0-1:GDCC,0-2:DGCN,2-3:INF-T,3-4:INF-S")
                       .value();
    Rng rng(17);
    auto model = BuildSearchedModel(ah, spec, cfg, 8);
    model->SetTraining(true);
    WindowProvider provider(task);
    Adam::Options opts;
    if (!clip) opts.clip_norm = 0.0f;
    Adam adam(model->Parameters(), opts);
    WindowBatch batch = provider.SampleTrainBatch(4, &rng);
    auto step = [&] {
      adam.ZeroGrad();
      Tensor loss = MaeLoss(model->Forward(batch.x), batch.y);
      float observed = loss.item();
      bool diverged = GuardsEnabled() && !std::isfinite(observed);
      benchmark::DoNotOptimize(diverged);
      loss.Backward();
      adam.Step();
      loss.ReleaseTape();
    };
    for (int i = 0; i < 2; ++i) step();  // Warm the pool and code paths.
    auto timed_step = [&](bool armed) {
      SetGuardsEnabled(armed);
      auto t0 = std::chrono::steady_clock::now();
      step();
      auto t1 = std::chrono::steady_clock::now();
      return static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
    };
    std::vector<double> diffs(iters), offs(iters);
    for (int i = 0; i < iters; ++i) {
      double t_off, t_on;
      if (i % 2 == 0) {
        t_off = timed_step(false);
        t_on = timed_step(true);
      } else {
        t_on = timed_step(true);
        t_off = timed_step(false);
      }
      diffs[i] = t_on - t_off;
      offs[i] = t_off;
    }
    auto median = [](std::vector<double> v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    const double off = median(offs);
    const double on = off + median(diffs);
    const char* base = clip ? "train_step_clip" : "train_step_noclip";
    bench::MicroBenchRecord rec;
    rec.threads = 1;
    rec.op = std::string(base) + "_guards_on";
    rec.ns_per_iter = on;
    records->push_back(rec);
    rec.op = std::string(base) + "_guards_off";
    rec.ns_per_iter = off;
    records->push_back(rec);
    rec.op = std::string(base) + "_guard_overhead";
    rec.ns_per_iter = on - off;
    rec.overhead_pct = off > 0.0 ? 100.0 * (on - off) / off : 0.0;
    records->push_back(rec);
  }
  SetGuardsEnabled(saved);
}

// ---- Step-plan replay vs eager (BENCH_PR5.json) ---------------------------

/// Wall-clock ns of one `fn()` call.
template <typename Fn>
double OnceNs(Fn fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double MedianOf(std::vector<double> v) {
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return v[v.size() / 2];
}

/// Paired A/B of two step implementations that perform the same math:
/// each repetition times one step of each leg back to back (order
/// alternating, so neither leg systematically gets the warmer slot) and the
/// per-repetition speedup base/fast cancels frequency-scaling drift. Emits
/// <name>_eager, <name>_replay, and <name>_plan_speedup records.
template <typename BaseFn, typename FastFn>
void AppendPairedPlanRecords(const std::string& name, int reps, BaseFn base,
                             FastFn fast, double tape_per_replay,
                             double pool_roundtrips_per_replay,
                             double arena_bytes,
                             std::vector<bench::MicroBenchRecord>* records) {
  std::vector<double> base_ns(static_cast<size_t>(reps));
  std::vector<double> fast_ns(static_cast<size_t>(reps));
  std::vector<double> speedups(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    if (i % 2 == 0) {
      base_ns[static_cast<size_t>(i)] = OnceNs(base);
      fast_ns[static_cast<size_t>(i)] = OnceNs(fast);
    } else {
      fast_ns[static_cast<size_t>(i)] = OnceNs(fast);
      base_ns[static_cast<size_t>(i)] = OnceNs(base);
    }
    speedups[static_cast<size_t>(i)] =
        base_ns[static_cast<size_t>(i)] / fast_ns[static_cast<size_t>(i)];
  }
  bench::MicroBenchRecord rec;
  rec.threads = 1;
  rec.op = name + "_eager";
  rec.ns_per_iter = MedianOf(base_ns);
  rec.ns_min = *std::min_element(base_ns.begin(), base_ns.end());
  rec.ns_max = *std::max_element(base_ns.begin(), base_ns.end());
  records->push_back(rec);
  rec.op = name + "_replay";
  rec.ns_per_iter = MedianOf(fast_ns);
  rec.ns_min = *std::min_element(fast_ns.begin(), fast_ns.end());
  rec.ns_max = *std::max_element(fast_ns.begin(), fast_ns.end());
  rec.tape_nodes_per_step = tape_per_replay;
  rec.pool_roundtrips_per_step = pool_roundtrips_per_replay;
  rec.arena_bytes = arena_bytes;
  records->push_back(rec);
  bench::MicroBenchRecord sp;
  sp.threads = 1;
  sp.op = name + "_plan_speedup";
  sp.ns_per_iter = MedianOf(base_ns) - MedianOf(fast_ns);
  sp.speedup_min = *std::min_element(speedups.begin(), speedups.end());
  sp.speedup_median = MedianOf(speedups);
  sp.speedup_max = *std::max_element(speedups.begin(), speedups.end());
  sp.arena_bytes = arena_bytes;
  records->push_back(sp);
}

/// The PR-5 headline A/B: the PR-3 reference ST-block training step, eager
/// (re-taped every step, the fused baseline) vs replayed from a captured
/// StepPlan. Both paths compute bit-identical parameter updates
/// (tests/plan_test.cc), so interleaving them on one model state is sound
/// and the only difference the JSON can show is cost.
void AppendPlanTrainRecords(int reps,
                            std::vector<bench::MicroBenchRecord>* records) {
  const bool saved = plan::PlansEnabled();
  plan::SetPlansEnabled(true);
  {
    // Single thread: the >=1.3x acceptance bar is per-step work, not fan-out.
    ThreadPool pool(1);
    ExecScope scope(ExecContext{&pool, 0});
    ScaleConfig cfg = ScaleConfig::Test();
    ForecastTask task;
    task.data = MakeSyntheticDataset("Los-Loop", cfg).value();
    task.p = 12;
    task.q = 12;
    ForecasterSpec spec = MakeForecasterSpec(task);
    ArchHyper ah = ParseArchHyper(
                       "B4C5H32I64U1d0|0-1:GDCC,0-2:DGCN,2-3:INF-T,3-4:INF-S")
                       .value();
    Rng rng(17);
    auto model = BuildSearchedModel(ah, spec, cfg, 8);
    model->SetTraining(true);
    WindowProvider provider(task);
    Adam adam(model->Parameters(), {});
    WindowBatch batch = provider.SampleTrainBatch(4, &rng);
    auto eager_step = [&] {
      adam.ZeroGrad();
      Tensor loss = MaeLoss(model->Forward(batch.x), batch.y);
      loss.Backward();
      adam.Step();
      loss.ReleaseTape();
    };
    for (int i = 0; i < 2; ++i) eager_step();  // Warm the pool + code paths.
    StepPlan plan;
    std::vector<Tensor> step_inputs = {batch.x, batch.y};
    plan.BeginCapture(step_inputs, "bench_train_step");
    adam.ZeroGrad();
    Tensor loss = MaeLoss(model->Forward(batch.x), batch.y);
    loss.Backward();
    adam.Step();
    plan.SetLoss(loss);
    if (!plan.EndCapture()) {
      // Poisoned capture: leave BENCH_PR5.json without the speedup record so
      // the CI floor check fails loudly instead of comparing eager to eager.
      loss.ReleaseTape();
      plan::SetPlansEnabled(saved);
      return;
    }
    auto replay_step = [&] {
      plan.BeginStep(step_inputs);
      plan.RunForward();
      plan.RunBackward();
      adam.Step();
    };
    replay_step();  // Warm the replay path too.
    // Tape/pool counters over a separate untimed replay run: replay must
    // tape ~0 nodes and take ~0 pool round-trips per step.
    BufferPool::Global().ResetStats();
    const uint64_t tape_before = TapeNodesCreated();
    for (int i = 0; i < reps; ++i) replay_step();
    const double tape_per_replay =
        static_cast<double>(TapeNodesCreated() - tape_before) / reps;
    PoolStats stats = ExecContext{}.pool_stats();
    const double roundtrips =
        static_cast<double>(stats.hits + stats.misses) / reps;
    AppendPairedPlanRecords(
        "st_block_train_step", reps, eager_step, replay_step, tape_per_replay,
        roundtrips,
        static_cast<double>(plan.arena_bytes() + plan.pinned_bytes()),
        records);
  }
  plan::SetPlansEnabled(saved);
}

/// Comparator-inference A/B: an eval-mode CompareLogits batch (the
/// evolutionary ranking hot path) eager vs replayed from an inference plan.
/// Inference plans are captured under NoGradScope, so pure intermediates
/// live in one liveness-packed bump arena — arena_bytes is nonzero here.
void AppendPlanInferRecords(int reps,
                            std::vector<bench::MicroBenchRecord>* records) {
  const bool saved = plan::PlansEnabled();
  plan::SetPlansEnabled(true);
  {
    ThreadPool pool(1);
    ExecScope scope(ExecContext{&pool, 0});
    Rng rng(19);
    Comparator::Options opts;
    opts.task_aware = false;
    Comparator comp(opts, 6);
    comp.SetTraining(false);
    JointSearchSpace space;
    constexpr int kPairs = 64;
    std::vector<ArchHyperEncoding> first, second;
    for (int i = 0; i < kPairs; ++i) {
      first.push_back(EncodeArchHyper(space.Sample(&rng)));
      second.push_back(EncodeArchHyper(space.Sample(&rng)));
    }
    EncodingBatch b1 = StackEncodings(first);
    EncodingBatch b2 = StackEncodings(second);
    NoGradScope no_grad;
    auto eager_infer = [&] {
      benchmark::DoNotOptimize(
          comp.CompareLogits(b1, b2, Tensor()).data().data());
    };
    for (int i = 0; i < 2; ++i) eager_infer();
    StepPlan plan;
    std::vector<Tensor> inputs = {b1.adjacency, b1.op_onehot, b1.hyper,
                                  b2.adjacency, b2.op_onehot, b2.hyper};
    plan.BeginCapture(inputs, "bench_compare_logits");
    Tensor logits = comp.CompareLogits(b1, b2, Tensor());
    plan.AddOutput(logits);
    if (!plan.EndCapture()) {
      plan::SetPlansEnabled(saved);
      return;
    }
    auto replay_infer = [&] {
      plan.BeginStep(inputs);
      plan.RunForward();
      benchmark::DoNotOptimize(plan.output(0).data().data());
    };
    replay_infer();
    BufferPool::Global().ResetStats();
    const uint64_t tape_before = TapeNodesCreated();
    for (int i = 0; i < reps; ++i) replay_infer();
    const double tape_per_replay =
        static_cast<double>(TapeNodesCreated() - tape_before) / reps;
    PoolStats stats = ExecContext{}.pool_stats();
    const double roundtrips =
        static_cast<double>(stats.hits + stats.misses) / reps;
    AppendPairedPlanRecords("compare_logits_b64", reps, eager_infer,
                            replay_infer, tape_per_replay, roundtrips,
                            static_cast<double>(plan.arena_bytes()), records);
  }
  plan::SetPlansEnabled(saved);
}

// ---- Backend dispatch & quantized comparator (BENCH_PR6.json) -------------

/// Per-backend blocked-GEMM throughput: the same 512^3 MatMul as the PR-2
/// record, once per compiled-in, CPU-supported kernel backend. Every
/// backend produces bit-identical output (tests/backend_test.cc), so the
/// only difference the JSON can show is GFLOP/s.
void AppendBackendMatMulRecords(int iters,
                                std::vector<bench::MicroBenchRecord>* records) {
  constexpr int kN = 512;
  const double flop = 2.0 * kN * kN * kN;
  Rng rng(23);
  Tensor a = Tensor::Randn({kN, kN}, &rng);
  Tensor b = Tensor::Randn({kN, kN}, &rng);
  const std::string original = kernels::ActiveBackend().name;
  for (const kernels::Backend* backend : kernels::AvailableBackends()) {
    if (!kernels::SetActiveBackend(backend->name)) continue;
    for (int threads : {1, 4}) {
      ThreadPool pool(threads);
      ExecScope scope(ExecContext{&pool, 0});
      double ns = MeanNs(iters, [&] {
        benchmark::DoNotOptimize(MatMul(a, b).data().data());
      });
      bench::MicroBenchRecord rec;
      rec.op = "matmul_blocked_512_backend";
      rec.backend = backend->name;
      rec.threads = threads;
      rec.gflops = flop / ns;
      rec.ns_per_iter = ns;
      records->push_back(rec);
    }
  }
  kernels::SetActiveBackend(original);
}

/// Trains the comparator to rank a synthetic total order, so the quantized
/// A/B below measures rank agreement on learned logit margins — the regime
/// zero-shot ranking actually runs in (a random-init comparator emits
/// near-zero logits whose signs are numerical noise; see
/// tests/comparator_quant_test.cc for the same setup).
void TrainComparatorOnSyntheticOrder(Comparator* comp, int steps,
                                     uint64_t seed) {
  Rng rng(seed);
  JointSearchSpace space;
  constexpr int kPool = 24;
  constexpr int kBatch = 16;
  std::vector<ArchHyperEncoding> encs;
  std::vector<float> score;
  for (int i = 0; i < kPool; ++i) {
    encs.push_back(EncodeArchHyper(space.Sample(&rng)));
    score.push_back(rng.Normal(0.0f, 1.0f));
  }
  comp->SetTraining(true);
  Adam adam(comp->Parameters(), {});
  for (int s = 0; s < steps; ++s) {
    std::vector<ArchHyperEncoding> first, second;
    std::vector<float> target;
    for (int bi = 0; bi < kBatch; ++bi) {
      const int i = rng.Int(0, kPool - 1);
      int j = rng.Int(0, kPool - 2);
      if (j >= i) ++j;
      first.push_back(encs[static_cast<size_t>(i)]);
      second.push_back(encs[static_cast<size_t>(j)]);
      target.push_back(score[static_cast<size_t>(i)] >=
                               score[static_cast<size_t>(j)]
                           ? 1.0f
                           : 0.0f);
    }
    adam.ZeroGrad();
    Tensor loss = BceLoss(
        Sigmoid(comp->CompareLogits(StackEncodings(first),
                                    StackEncodings(second), Tensor())),
        Tensor::FromVector({kBatch}, std::move(target)));
    loss.Backward();
    adam.Step();
    loss.ReleaseTape();
  }
  comp->SetTraining(false);
}

/// Quantized-vs-fp32 comparator ranking A/B: an eval-mode 64-pair
/// CompareLogits batch through the fp32 tensor path vs the off-tape
/// bf16/int8 path (comparator/quant.h), paired per repetition so
/// frequency-scaling drift cancels. Each quantized record carries the
/// active kernel backend and the pairwise rank agreement vs fp32 over the
/// measured batch. CI gates on speedup_median >= 1.2 when the backend is
/// AVX2-class; the >= 0.99 agreement bar is enforced by
/// tests/comparator_quant_test.cc (the batch here pairs unseen candidates,
/// so the archived agreement is informational).
void AppendQuantCompareRecords(int reps,
                               std::vector<bench::MicroBenchRecord>* records) {
  ThreadPool pool(1);
  ExecScope scope(ExecContext{&pool, 0});
  Rng rng(29);
  Comparator::Options opts;
  opts.task_aware = false;
  Comparator comp(opts, 6);
  TrainComparatorOnSyntheticOrder(&comp, /*steps=*/60, /*seed=*/31);
  JointSearchSpace space;
  constexpr int kPairs = 64;
  std::vector<ArchHyperEncoding> first, second;
  for (int i = 0; i < kPairs; ++i) {
    first.push_back(EncodeArchHyper(space.Sample(&rng)));
    second.push_back(EncodeArchHyper(space.Sample(&rng)));
  }
  EncodingBatch b1 = StackEncodings(first);
  EncodingBatch b2 = StackEncodings(second);
  NoGradScope no_grad;
  std::vector<float> fp32_logits(comp.CompareLogits(b1, b2, Tensor()).data());
  auto fp32_leg = [&] {
    benchmark::DoNotOptimize(
        comp.CompareLogits(b1, b2, Tensor()).data().data());
  };
  for (int i = 0; i < 2; ++i) fp32_leg();
  const std::string backend = kernels::ActiveBackend().name;
  for (ComparatorPrecision precision :
       {ComparatorPrecision::kBf16, ComparatorPrecision::kInt8}) {
    const char* tag = ComparatorPrecisionName(precision);
    QuantizedComparator quant(comp, precision);
    std::vector<float> quant_logits = quant.CompareLogits(b1, b2, Tensor());
    int agree = 0;
    for (int i = 0; i < kPairs; ++i) {
      agree += (fp32_logits[static_cast<size_t>(i)] >= 0.0f) ==
                       (quant_logits[static_cast<size_t>(i)] >= 0.0f)
                   ? 1
                   : 0;
    }
    const double agreement = static_cast<double>(agree) / kPairs;
    auto quant_leg = [&] {
      benchmark::DoNotOptimize(quant.CompareLogits(b1, b2, Tensor()).data());
    };
    for (int i = 0; i < 2; ++i) quant_leg();
    std::vector<double> fp32_ns(static_cast<size_t>(reps));
    std::vector<double> quant_ns(static_cast<size_t>(reps));
    std::vector<double> speedups(static_cast<size_t>(reps));
    for (int i = 0; i < reps; ++i) {
      if (i % 2 == 0) {
        fp32_ns[static_cast<size_t>(i)] = OnceNs(fp32_leg);
        quant_ns[static_cast<size_t>(i)] = OnceNs(quant_leg);
      } else {
        quant_ns[static_cast<size_t>(i)] = OnceNs(quant_leg);
        fp32_ns[static_cast<size_t>(i)] = OnceNs(fp32_leg);
      }
      speedups[static_cast<size_t>(i)] =
          fp32_ns[static_cast<size_t>(i)] / quant_ns[static_cast<size_t>(i)];
    }
    bench::MicroBenchRecord rec;
    rec.threads = 1;
    rec.backend = backend;
    rec.op = std::string("compare_logits_b64_fp32_vs_") + tag;
    rec.ns_per_iter = MedianOf(fp32_ns);
    records->push_back(rec);
    rec.op = std::string("compare_logits_b64_") + tag;
    rec.ns_per_iter = MedianOf(quant_ns);
    rec.rank_agreement = agreement;
    records->push_back(rec);
    bench::MicroBenchRecord sp;
    sp.threads = 1;
    sp.backend = backend;
    sp.op = std::string("compare_logits_b64_") + tag + "_quant_speedup";
    sp.ns_per_iter = MedianOf(fp32_ns) - MedianOf(quant_ns);
    sp.speedup_min = *std::min_element(speedups.begin(), speedups.end());
    sp.speedup_median = MedianOf(speedups);
    sp.speedup_max = *std::max_element(speedups.begin(), speedups.end());
    sp.rank_agreement = agreement;
    records->push_back(sp);
  }
}

}  // namespace

void WriteMicroReport() {
  int iters = 5;
  if (const char* env = std::getenv("AUTOCTS_BENCH_ITERS")) {
    iters = std::max(1, std::atoi(env));
  }
  std::vector<bench::MicroBenchRecord> records;
  AppendMatMulRecords(iters, &records);
  AppendTrainStepRecords(iters, &records);
  bench::WriteBenchJson("BENCH_PR2.json", records);
  std::vector<bench::MicroBenchRecord> st_records;
  AppendStBlockRecord(iters, /*fused=*/true, &st_records);
  AppendStBlockRecord(iters, /*fused=*/false, &st_records);
  bench::WriteBenchJson("BENCH_PR3.json", st_records);
  // The guardrail A/B resolves a sub-percent difference, so it gets a floor
  // of 20 paired iterations even under the CI smoke setting.
  std::vector<bench::MicroBenchRecord> guard_records;
  AppendGuardrailRecords(std::max(iters, 20), /*clip=*/true, &guard_records);
  AppendGuardrailRecords(std::max(iters, 20), /*clip=*/false, &guard_records);
  bench::WriteBenchJson("BENCH_PR4.json", guard_records);
  // Plan-vs-eager A/B: paired medians need a floor of 5 repetitions even
  // under the CI smoke setting.
  std::vector<bench::MicroBenchRecord> plan_records;
  AppendPlanTrainRecords(std::max(iters, 5), &plan_records);
  AppendPlanInferRecords(std::max(iters, 5), &plan_records);
  bench::WriteBenchJson("BENCH_PR5.json", plan_records);
  // Backend dispatch + quantized comparator A/B: the paired speedup needs a
  // floor of 5 repetitions even under the CI smoke setting.
  std::vector<bench::MicroBenchRecord> backend_records;
  AppendBackendMatMulRecords(iters, &backend_records);
  AppendQuantCompareRecords(std::max(iters, 5), &backend_records);
  bench::WriteBenchJson("BENCH_PR6.json", backend_records);
  // One RuntimeStats snapshot at the end of the run, through the same
  // serializer as the reports — the per-backend kernel counters confirm
  // which dispatch paths the benches above actually exercised.
  std::cout << "[bench] runtime stats: " << RuntimeStats::Snapshot().ToJson()
            << "\n";
}

}  // namespace autocts

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  autocts::WriteMicroReport();
  return 0;
}
