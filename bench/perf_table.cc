#include "bench/perf_table.h"

#include <iostream>
#include <map>

#include "baselines/registry.h"
#include "bench/harness.h"
#include "common/table.h"

namespace autocts {
namespace bench {
namespace {

/// Picks the aggregate of one metric by name.
const Aggregate& MetricOf(const EvalResult& r, const std::string& metric) {
  if (metric == "MAE") return r.mae;
  if (metric == "RMSE") return r.rmse;
  if (metric == "MAPE") return r.mape;
  if (metric == "RRSE") return r.rrse;
  return r.corr;
}

}  // namespace

void RunPerfTable(int p, int q, bool single_step,
                  const std::string& table_name) {
  BenchEnv env = BenchEnv::FromEnv();
  std::cout << "=== " << table_name << " — P-" << p << "/Q-"
            << (single_step ? ("1 (" + std::to_string(q) + "rd)")
                            : std::to_string(q))
            << " forecasting, " << env.seeds
            << " seed(s) (paper: 5) ===\n";
  auto framework = PretrainedFramework(env);

  std::vector<std::string> methods = {"AutoCTS++"};
  for (const std::string& b : BaselineNames()) methods.push_back(b);
  std::vector<std::string> metrics =
      single_step ? std::vector<std::string>{"RRSE", "CORR"}
                  : std::vector<std::string>{"MAE", "RMSE", "MAPE"};
  const bool default_setting = p == 12 && q == 12 && !single_step;

  std::vector<ForecastTask> tasks = MakeTargetTasks(p, q, single_step,
                                                    env.scale);
  std::map<std::string, std::map<std::string, EvalResult>> results;
  std::map<std::string, double> method_seconds;
  uint64_t seed = 1000;
  for (const ForecastTask& task : tasks) {
    const std::string dataset = task.data->name();
    std::cerr << "[table] " << dataset << "...\n";
    results[dataset]["AutoCTS++"] =
        EvaluateAutoCtsPlusPlus(framework.get(), task, env, seed += 13);
    method_seconds["AutoCTS++"] += results[dataset]["AutoCTS++"].seconds;
    for (const std::string& b : BaselineNames()) {
      // The paper grid-searches baselines' H and I at non-default settings.
      results[dataset][b] =
          EvaluateBaseline(b, task, env, !default_setting, seed += 13);
      method_seconds[b] += results[dataset][b].seconds;
    }
  }

  std::vector<std::string> header = {"Dataset", "Metric"};
  header.insert(header.end(), methods.begin(), methods.end());
  TextTable table(header);
  for (const ForecastTask& task : tasks) {
    const std::string dataset = task.data->name();
    for (const std::string& metric : metrics) {
      // Locate the best mean (max for CORR, min otherwise).
      double best = 0.0;
      bool first = true;
      for (const std::string& m : methods) {
        double v = MetricOf(results[dataset][m], metric).mean;
        bool better = first || (metric == "CORR" ? v > best : v < best);
        if (better) {
          best = v;
          first = false;
        }
      }
      std::vector<std::string> row = {dataset, metric};
      int precision = metric == "RRSE" || metric == "CORR" ? 4 : 3;
      for (const std::string& m : methods) {
        const Aggregate& agg = MetricOf(results[dataset][m], metric);
        std::string cell = Cell(agg, precision);
        if (agg.mean == best) cell += "*";
        row.push_back(cell);
      }
      table.AddRow(row);
    }
  }
  std::cout << table.ToString();
  std::cout << "(* = best per row; paper shape: AutoCTS++ best or "
               "second-best on most rows)\n";
  std::cout << "Total train+eval seconds per method:";
  for (const std::string& m : methods) {
    std::cout << "  " << m << "=" << TextTable::Num(method_seconds[m], 1);
  }
  std::cout << "\n";
}

}  // namespace bench
}  // namespace autocts
