// Sharded sample-collection throughput: the BENCH_PR10.json source for the
// multi-process coordinator (src/shard).
//
// Runs the bench_sample_limited labeling workload — CollectSamples over the
// standard source-task mix — through ShardedCollectSamples at 1, 2, and 4
// worker processes and reports sustained labeled-sample throughput
// (samples/hour) per worker count, plus a paired speedup record
// (speedup_min/median/max of the 4-worker leg over the 1-worker leg across
// repetitions). The merged banks of every leg are byte-compared: a speedup
// that changes results is a bug, not a win. The speedup record's `threads`
// field carries the host's core count so the CI gate can skip the 2.5x
// floor on boxes with fewer than 4 cores.
//
// Smoke mode (--smoke or REPRO_SMOKE=1) shrinks tasks and repetitions but
// keeps every record shape.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/fileio.h"
#include "shard/shard.h"

namespace autocts {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from)
      .count();
}

struct Workload {
  std::vector<ForecastTask> tasks;
  SampleCollectionOptions collect;
  ScaleConfig scale;
};

Workload MakeWorkload(bool smoke) {
  Workload w;
  BenchEnv env = BenchEnv::FromEnv();
  w.scale = env.scale;
  w.collect = env.autocts.collect;
  int num_tasks = smoke ? 4 : std::max(4, env.scale.num_source_tasks);
  if (smoke) {
    w.collect.shared_count = 1;
    w.collect.random_count = 1;
    w.collect.train.batches_per_epoch = 2;
    w.collect.windows_per_task = 2;
  }
  w.tasks = MakeSourceTasks(num_tasks, w.scale, /*seed=*/4242);
  return w;
}

struct LegResult {
  double seconds = 0.0;
  int64_t samples = 0;
  std::string merged_bytes;
};

/// One timed sharded collection at `workers` processes. Fresh directory per
/// leg; the plan-building phase is identical across legs, so the timing
/// contrast isolates the fanned-out training.
LegResult RunLeg(const Workload& w, int workers, const std::string& dir) {
  std::filesystem::remove_all(dir);
  Rng rng(18);
  MlpEncoder encoder(1, 4, &rng);
  JointSearchSpace space;
  ShardOptions shard;
  shard.num_workers = workers;
  shard.worker_threads = 1;
  shard.dir = dir;
  shard.config_hash = 10;
  shard.heartbeat_ms = 50;
  auto t0 = std::chrono::steady_clock::now();
  StatusOr<std::vector<TaskSampleSet>> sets = ShardedCollectSamples(
      w.tasks, space, encoder, w.scale, w.collect, shard);
  LegResult leg;
  leg.seconds = Seconds(t0);
  if (!sets.ok()) {
    std::cerr << "[bench_shard] " << workers
              << "-worker leg failed: " << sets.status().message() << "\n";
    std::exit(1);
  }
  for (const TaskSampleSet& set : sets.value()) {
    leg.samples += static_cast<int64_t>(set.samples.size());
  }
  StatusOr<std::string> merged = ReadFileToString(MergedBankPath(dir));
  if (merged.ok()) leg.merged_bytes = std::move(merged).value();
  return leg;
}

void Run(bool smoke) {
  const Workload w = MakeWorkload(smoke);
  const int reps = smoke ? 1 : 3;
  const std::vector<int> worker_counts = {1, 2, 4};
  const std::string base =
      std::filesystem::temp_directory_path() / "bench_shard";
  std::cout << "=== sharded collection throughput (" << w.tasks.size()
            << " tasks, " << reps << " reps"
            << (smoke ? ", smoke" : "") << ") ===\n";

  std::vector<MicroBenchRecord> records;
  std::vector<double> speedups;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<LegResult> legs;
    for (int workers : worker_counts) {
      LegResult leg = RunLeg(
          w, workers, base + "-w" + std::to_string(workers));
      const double per_hour = leg.samples / (leg.seconds / 3600.0);
      std::cout << "  workers=" << workers << ": " << leg.samples
                << " samples in " << leg.seconds << "s ("
                << static_cast<int64_t>(per_hour) << " samples/hour)\n";
      if (!legs.empty() &&
          (leg.merged_bytes.size() != legs[0].merged_bytes.size() ||
           std::memcmp(leg.merged_bytes.data(), legs[0].merged_bytes.data(),
                       leg.merged_bytes.size()) != 0)) {
        std::cerr << "[bench_shard] merged bank at " << workers
                  << " workers differs from the 1-worker bank — "
                     "determinism violation\n";
        std::exit(1);
      }
      legs.push_back(std::move(leg));
      if (rep == 0) {
        MicroBenchRecord r;
        r.op = "shard_collect_" + std::to_string(workers) + "w";
        r.threads = 1;
        r.workers = workers;
        r.ns_per_iter = legs.back().seconds * 1e9;
        r.samples_per_hour = per_hour;
        records.push_back(r);
      }
    }
    speedups.push_back(legs[0].seconds / legs[2].seconds);
  }

  std::sort(speedups.begin(), speedups.end());
  MicroBenchRecord sp;
  sp.op = "shard_speedup_4w";
  // The host's core count, so the CI floor only binds where 4 workers can
  // actually run in parallel.
  sp.threads = static_cast<int>(std::thread::hardware_concurrency());
  sp.workers = 4;
  sp.speedup_min = speedups.front();
  sp.speedup_median = speedups[speedups.size() / 2];
  sp.speedup_max = speedups.back();
  records.push_back(sp);
  std::cout << "4-worker speedup over 1 worker: median " << sp.speedup_median
            << " (min " << sp.speedup_min << ", max " << sp.speedup_max
            << ") on " << sp.threads << " cores\n";

  WriteBenchJson("BENCH_PR10.json", records);
  for (int workers : worker_counts) {
    std::filesystem::remove_all(base + "-w" + std::to_string(workers));
  }
}

}  // namespace
}  // namespace bench
}  // namespace autocts

int main(int argc, char** argv) {
  bool smoke = std::getenv("REPRO_SMOKE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  autocts::bench::Run(smoke);
  return 0;
}
