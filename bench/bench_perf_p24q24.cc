// Regenerates Table 6: performance of P-24/Q-24 multi-step forecasting
// (a setting never seen during pre-training).
#include "bench/perf_table.h"

int main() {
  autocts::bench::RunPerfTable(24, 24, /*single_step=*/false, "Table 6");
  return 0;
}
