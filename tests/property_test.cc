// Property-based sweeps over the substrate: algebraic identities of the
// tensor ops, structural invariants of the search space under repeated
// mutation/crossover, and metric identities — each checked across many
// random instances (TEST_P / seed loops).
#include <cmath>

#include <gtest/gtest.h>

#include "data/metrics.h"
#include "searchspace/encoding.h"
#include "searchspace/parse.h"
#include "searchspace/search_space.h"
#include "tensor/ops.h"

namespace autocts {
namespace {

// ---------------------------------------------------------------- tensors

class OpsAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OpsAlgebraTest, AddCommutes) {
  Rng rng(GetParam());
  Tensor a = Tensor::Randn({3, 4}, &rng);
  Tensor b = Tensor::Randn({3, 4}, &rng);
  EXPECT_EQ(Add(a, b).data(), Add(b, a).data());
}

TEST_P(OpsAlgebraTest, MulDistributesOverAdd) {
  Rng rng(GetParam() + 100);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  Tensor b = Tensor::Randn({2, 3}, &rng);
  Tensor c = Tensor::Randn({2, 3}, &rng);
  Tensor lhs = Mul(a, Add(b, c));
  Tensor rhs = Add(Mul(a, b), Mul(a, c));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.at(i), rhs.at(i), 1e-4f);
  }
}

TEST_P(OpsAlgebraTest, TransposeIsInvolution) {
  Rng rng(GetParam() + 200);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor back = Transpose(Transpose(a, 1, 2), 1, 2);
  EXPECT_EQ(back.data(), a.data());
}

TEST_P(OpsAlgebraTest, MatMulAssociatesWithinTolerance) {
  Rng rng(GetParam() + 300);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  Tensor b = Tensor::Randn({3, 4}, &rng);
  Tensor c = Tensor::Randn({4, 2}, &rng);
  Tensor lhs = MatMul(MatMul(a, b), c);
  Tensor rhs = MatMul(a, MatMul(b, c));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.at(i), rhs.at(i), 1e-3f);
  }
}

TEST_P(OpsAlgebraTest, ConcatThenSliceRecovers) {
  Rng rng(GetParam() + 400);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  Tensor b = Tensor::Randn({2, 5}, &rng);
  Tensor cat = Concat({a, b}, 1);
  EXPECT_EQ(Slice(cat, 1, 0, 3).data(), a.data());
  EXPECT_EQ(Slice(cat, 1, 3, 5).data(), b.data());
}

TEST_P(OpsAlgebraTest, SumAxesMatchSumAll) {
  Rng rng(GetParam() + 500);
  Tensor a = Tensor::Randn({3, 4}, &rng);
  float via_axis = SumAll(Sum(a, 0)).item();
  float direct = SumAll(a).item();
  EXPECT_NEAR(via_axis, direct, 1e-4f);
}

TEST_P(OpsAlgebraTest, SoftmaxInvariantToShift) {
  Rng rng(GetParam() + 600);
  Tensor a = Tensor::Randn({2, 5}, &rng);
  Tensor shifted = AddScalar(a, 3.7f);
  Tensor ya = Softmax(a, -1);
  Tensor yb = Softmax(shifted, -1);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_NEAR(ya.at(i), yb.at(i), 1e-5f);
  }
}

TEST_P(OpsAlgebraTest, BackwardOfSumIsOnes) {
  Rng rng(GetParam() + 700);
  Tensor a = Tensor::Randn({4, 4}, &rng, 1.0f, /*requires_grad=*/true);
  SumAll(a).Backward();
  for (float g : a.grad()) EXPECT_EQ(g, 1.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsAlgebraTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ----------------------------------------------------------- search space

class SpaceInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpaceInvariantTest, MutationChainStaysValid) {
  JointSearchSpace space;
  Rng rng(GetParam());
  ArchHyper ah = space.Sample(&rng);
  for (int step = 0; step < 50; ++step) {
    ah = space.Mutate(ah, &rng);
    ASSERT_TRUE(ValidateArchHyper(ah).ok()) << "step " << step;
    ASSERT_TRUE(HasSpatialAndTemporal(ah.arch)) << "step " << step;
  }
}

TEST_P(SpaceInvariantTest, CrossoverChainStaysValid) {
  JointSearchSpace space;
  Rng rng(GetParam() + 50);
  ArchHyper a = space.Sample(&rng);
  ArchHyper b = space.Sample(&rng);
  for (int step = 0; step < 30; ++step) {
    ArchHyper child = space.Crossover(a, b, &rng);
    ASSERT_TRUE(ValidateArchHyper(child).ok());
    a = b;
    b = child;
  }
}

TEST_P(SpaceInvariantTest, SignatureParseEncodeAgree) {
  // Signature round trip and encoding determinism, chained.
  JointSearchSpace space;
  Rng rng(GetParam() + 99);
  ArchHyper ah = space.Sample(&rng);
  StatusOr<ArchHyper> parsed = ParseArchHyper(ah.Signature());
  ASSERT_TRUE(parsed.ok());
  ArchHyperEncoding e1 = EncodeArchHyper(ah);
  ArchHyperEncoding e2 = EncodeArchHyper(parsed.value());
  EXPECT_EQ(e1.adjacency, e2.adjacency);
  EXPECT_EQ(e1.op_onehot, e2.op_onehot);
  EXPECT_EQ(e1.hyper_features, e2.hyper_features);
}

TEST_P(SpaceInvariantTest, EncodingAdjacencySymmetricOnHyperRowOnly) {
  JointSearchSpace space;
  Rng rng(GetParam() + 123);
  ArchHyperEncoding enc = EncodeArchHyper(space.Sample(&rng));
  int h = enc.hyper_index;
  for (int u = 0; u < kEncodingNodes; ++u) {
    // Hyper links are symmetric by construction.
    EXPECT_EQ(enc.adjacency[static_cast<size_t>(h) * kEncodingNodes + u],
              enc.adjacency[static_cast<size_t>(u) * kEncodingNodes + h]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpaceInvariantTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------- metrics

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, MetricsVanishOnPerfectForecast) {
  Rng rng(GetParam());
  std::vector<float> t(50);
  for (auto& v : t) v = rng.Uniform(1.0f, 10.0f);
  EXPECT_EQ(Mae(t, t), 0.0);
  EXPECT_EQ(Rmse(t, t), 0.0);
  EXPECT_EQ(Mape(t, t), 0.0);
  EXPECT_EQ(Rrse(t, t), 0.0);
  EXPECT_NEAR(Corr(t, t), 1.0, 1e-9);
}

TEST_P(MetricPropertyTest, RmseDominatesMae) {
  Rng rng(GetParam() + 10);
  std::vector<float> p(40), t(40);
  for (size_t i = 0; i < p.size(); ++i) {
    p[i] = rng.Normal();
    t[i] = rng.Normal();
  }
  EXPECT_GE(Rmse(p, t) + 1e-12, Mae(p, t));  // Jensen.
}

TEST_P(MetricPropertyTest, MetricsShiftInvariance) {
  // MAE/RMSE are translation-invariant in the error; CORR is invariant to
  // affine rescaling of predictions.
  Rng rng(GetParam() + 20);
  std::vector<float> p(30), t(30), p2(30);
  for (size_t i = 0; i < p.size(); ++i) {
    p[i] = rng.Normal();
    t[i] = rng.Normal();
    p2[i] = 2.0f * p[i] + 3.0f;
  }
  std::vector<float> ps(30), ts(30);
  for (size_t i = 0; i < p.size(); ++i) {
    ps[i] = p[i] + 5.0f;
    ts[i] = t[i] + 5.0f;
  }
  EXPECT_NEAR(Mae(ps, ts), Mae(p, t), 1e-5);
  EXPECT_NEAR(Rmse(ps, ts), Rmse(p, t), 1e-5);
  EXPECT_NEAR(Corr(p2, t), Corr(p, t), 1e-5);
}

TEST_P(MetricPropertyTest, SpearmanInvariantToMonotoneTransform) {
  Rng rng(GetParam() + 30);
  std::vector<double> a(20), b(20), a_exp(20);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
    a_exp[i] = std::exp(a[i]);  // Strictly monotone.
  }
  EXPECT_NEAR(SpearmanRho(a, b), SpearmanRho(a_exp, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(7u, 8u, 9u));

}  // namespace
}  // namespace autocts
