// Edge cases of the tensor substrate that the main op tests don't cover:
// single-element tensors, degenerate axes, extreme values, and tape reuse.
#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace autocts {
namespace {

TEST(OpsEdgeTest, ScalarBroadcastsAgainstMatrix) {
  Tensor s = Tensor::Scalar(2.0f);
  Tensor m = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor y = Mul(m, Reshape(s, {1, 1}));
  EXPECT_EQ(y.data(), (std::vector<float>{2, 4, 6, 8}));
}

TEST(OpsEdgeTest, SizeOneAxisReductions) {
  Tensor x = Tensor::FromVector({3, 1}, {1, 2, 3});
  Tensor s = Sum(x, 1);
  EXPECT_EQ(s.shape(), (std::vector<int>{3}));
  EXPECT_EQ(s.data(), x.data());
  Tensor m = Mean(x, 1, /*keepdim=*/true);
  EXPECT_EQ(m.shape(), (std::vector<int>{3, 1}));
}

TEST(OpsEdgeTest, SoftmaxOverSingleElementAxisIsOne) {
  Tensor x = Tensor::FromVector({2, 1}, {-5.0f, 100.0f});
  Tensor y = Softmax(x, 1);
  EXPECT_FLOAT_EQ(y.at(0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(1), 1.0f);
}

TEST(OpsEdgeTest, SoftmaxExtremeValuesStayFinite) {
  Tensor x = Tensor::FromVector({1, 3}, {-1e30f, 0.0f, 1e30f});
  Tensor y = Softmax(x, -1);
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(y.at(2), 1.0f, 1e-6f);
}

TEST(OpsEdgeTest, ConcatSinglePartIsIdentityCopy) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor c = Concat({a}, 0);
  EXPECT_EQ(c.data(), a.data());
}

TEST(OpsEdgeTest, SliceWholeAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = Slice(a, 1, 0, 3);
  EXPECT_EQ(s.data(), a.data());
}

TEST(OpsEdgeTest, IndexSelectEmptyAxisDies) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_DEATH(IndexSelect(a, 0, {5}), "CHECK");
}

TEST(OpsEdgeTest, MatMulSingleRowColumn) {
  Tensor row = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor col = Tensor::FromVector({3, 1}, {4, 5, 6});
  Tensor dot = MatMul(row, col);
  EXPECT_EQ(dot.shape(), (std::vector<int>{1, 1}));
  EXPECT_FLOAT_EQ(dot.item(), 32.0f);
  Tensor outer = MatMul(col, row);
  EXPECT_EQ(outer.shape(), (std::vector<int>{3, 3}));
  EXPECT_FLOAT_EQ(outer.at(8), 18.0f);
}

TEST(OpsEdgeTest, MatMulMismatchedInnerDies) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH(MatMul(a, b), "inner");
}

TEST(OpsEdgeTest, BroadcastIncompatibleDies) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 4});
  EXPECT_DEATH(Add(a, b), "broadcast");
}

TEST(OpsEdgeTest, BackwardTwiceAccumulates) {
  // Calling Backward on two losses sharing a leaf accumulates gradients —
  // the semantics the trainer's ZeroGrad discipline depends on.
  Tensor x = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  SumAll(MulScalar(x, 2.0f)).Backward();
  SumAll(MulScalar(x, 4.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

TEST(OpsEdgeTest, DetachedBranchGetsNoGradient) {
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor frozen = x.Detach();
  Tensor loss = Add(Mul(x, x), Mul(frozen, frozen));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);  // Only the live branch: d(x²)/dx.
}

TEST(OpsEdgeTest, LogClampsNonPositive) {
  Tensor x = Tensor::FromVector({2}, {0.0f, -1.0f});
  Tensor y = Log(x);
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(OpsEdgeTest, DivByTinyStaysFinite) {
  Tensor a = Tensor::FromVector({1}, {1.0f});
  Tensor b = Tensor::FromVector({1}, {1e-30f});
  Tensor y = Div(a, b);
  // Result is huge but the op itself must not crash; IEEE inf is allowed.
  EXPECT_GT(y.item(), 1e20f);
}

TEST(OpsEdgeTest, ReshapeZeroDimProductDies) {
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  EXPECT_DEATH(Reshape(a, {3}), "CHECK");
}

TEST(OpsEdgeTest, CausalConvLengthOneSeries) {
  Rng rng(1);
  Tensor x = Tensor::Randn({2, 1, 3}, &rng);
  Tensor w = Tensor::Randn({2, 3, 3}, &rng);
  Tensor y = CausalConv1d(x, w, Tensor(), 4);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 1, 3}));
}

TEST(OpsEdgeTest, TransposeSameDimIsIdentity) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor t = Transpose(a, 1, 1);
  EXPECT_EQ(t.data(), a.data());
}

}  // namespace
}  // namespace autocts
