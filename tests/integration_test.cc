// Cross-module integration and property tests: the claims the paper's
// machinery rests on, exercised end to end at test scale.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/autocts.h"
#include "data/synthetic.h"
#include "model/searched_model.h"
#include "supernet/supernet.h"

namespace autocts {
namespace {

/// Property sweep: every dataset × every forecasting setting yields a
/// working window pipeline and a runnable searched model.
struct TaskCase {
  std::string dataset;
  int p, q;
  bool single;
};

class TaskMatrixTest : public ::testing::TestWithParam<TaskCase> {};

TEST_P(TaskMatrixTest, PipelineEndToEnd) {
  const TaskCase& c = GetParam();
  ScaleConfig cfg = ScaleConfig::Test();
  cfg.num_steps = 260;  // Enough for P-168 windows.
  ForecastTask task;
  task.data = MakeSyntheticDataset(c.dataset, cfg).value();
  task.p = c.p;
  task.q = c.q;
  task.single_step = c.single;
  ASSERT_GT(task.num_windows(), 0) << task.name();
  WindowProvider provider(task);
  WindowBatch batch = provider.MakeBatch({0});
  ForecasterSpec spec = MakeForecasterSpec(task);
  JointSearchSpace space;
  Rng rng(5);
  auto model = BuildSearchedModel(space.Sample(&rng), spec, cfg, 7);
  Tensor pred = model->Forward(batch.x);
  EXPECT_EQ(pred.shape(), batch.y.shape()) << task.name();
  for (float v : pred.data()) {
    EXPECT_TRUE(std::isfinite(v)) << task.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndSettings, TaskMatrixTest,
    ::testing::Values(TaskCase{"PEMS-BAY", 12, 12, false},
                      TaskCase{"Electricity", 24, 24, false},
                      TaskCase{"PEMSD7M", 48, 48, false},
                      TaskCase{"NYC-TAXI", 12, 12, false},
                      TaskCase{"NYC-BIKE", 24, 24, false},
                      TaskCase{"Los-Loop", 168, 3, true},
                      TaskCase{"SZ-TAXI", 168, 1, true}),
    [](const auto& info) {
      std::string out;
      for (char ch : info.param.dataset) {
        if (std::isalnum(static_cast<unsigned char>(ch))) out += ch;
      }
      return out + "P" + std::to_string(info.param.p);
    });

/// The central claim behind the comparator: early-validation R' ranks
/// candidates usefully. We verify the ranking machinery end to end — a
/// comparator trained on real R' labels of one task should rank a held-out
/// candidate set better than chance on the SAME task (in-task sanity, the
/// AutoCTS+ regime).
TEST(ComparatorQuality, TrainedAhcBeatsCoinFlipInTask) {
  ScaleConfig cfg = ScaleConfig::Test();
  cfg.num_steps = 240;
  ForecastTask task;
  task.data = MakeSyntheticDataset("PEMS04", cfg).value();
  task.p = 12;
  task.q = 12;
  Rng rng(9);
  MlpEncoder encoder(1, 4, &rng);
  JointSearchSpace space;
  SampleCollectionOptions collect;
  collect.shared_count = 10;
  collect.random_count = 0;
  collect.early_validation_epochs = 1;
  collect.windows_per_task = 2;
  collect.train.batch_size = 4;
  collect.train.batches_per_epoch = 4;
  std::vector<TaskSampleSet> data =
      CollectSamples({task}, space, encoder, cfg, collect);

  Comparator::Options copts;
  copts.task_aware = false;
  copts.gin.embed_dim = 8;
  Comparator ahc(copts, 13);
  PretrainOptions pre;
  pre.epochs = 40;
  pre.lr = 3e-3f;
  pre.initial_random_fraction = 1.0f;
  PretrainComparator(&ahc, data, pre);
  double accuracy = PairwiseAccuracy(ahc, data[0]);
  EXPECT_GT(accuracy, 0.6) << "AHC failed to fit in-task R' labels";
}

/// The supernet-derived architecture is a legal citizen of the joint
/// space and can be consumed by the comparator — the interoperability the
/// Table 1 comparison relies on.
TEST(Interop, SupernetArchFlowsThroughComparator) {
  ScaleConfig cfg = ScaleConfig::Test();
  ForecastTask task;
  task.data = MakeSyntheticDataset("Los-Loop", cfg).value();
  task.p = 12;
  task.q = 12;
  SupernetOptions sopts;
  sopts.epochs = 1;
  sopts.batch_size = 2;
  sopts.batches_per_epoch = 2;
  ArchHyper derived = SupernetSearch(task, sopts, cfg);
  ArchHyperEncoding enc = EncodeArchHyper(derived);  // Must not CHECK-fail.
  EXPECT_GT(enc.num_nodes, 1);
  Comparator::Options copts;
  copts.task_aware = false;
  Comparator ahc(copts, 15);
  ArchHyper other = TransferredArchHyper("AutoCTS+");
  double p = ahc.CompareProb(enc, EncodeArchHyper(other), Tensor());
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

/// Failure injection: degenerate datasets must be rejected loudly, not
/// silently mis-trained.
TEST(FailureModes, DatasetTooShortForWindows) {
  std::vector<float> v(20, 1.0f);
  auto tiny = std::make_shared<CtsDataset>("tiny", 1, 20, 1, v,
                                           std::vector<float>{1.0f});
  ForecastTask task;
  task.data = tiny;
  task.p = 48;
  task.q = 48;
  EXPECT_EQ(task.num_windows(), 0);
  EXPECT_DEATH(task.SplitStarts(0), "too short");
}

TEST(FailureModes, ConstantSeriesDoesNotDivideByZero) {
  std::vector<float> v(120, 5.0f);  // Zero variance.
  auto flat = std::make_shared<CtsDataset>("flat", 1, 120, 1, v,
                                           std::vector<float>{1.0f});
  ForecastTask task;
  task.data = flat;
  task.p = 8;
  task.q = 8;
  WindowProvider provider(task);
  EXPECT_GT(provider.std(), 0.0f);  // Guarded fallback.
  WindowBatch batch = provider.MakeBatch({0});
  for (float x : batch.x.data()) EXPECT_TRUE(std::isfinite(x));
}

TEST(FailureModes, MismatchedEncoderAndComparatorDims) {
  ScaleConfig cfg = ScaleConfig::Test();
  AutoCtsOptions opts = AutoCtsOptions::ForScale(cfg);
  opts.ts2vec.repr_dim = 8;
  opts.comparator.repr_dim = 16;  // Inconsistent.
  EXPECT_DEATH(AutoCtsPlusPlus{opts}, "repr");
}

/// Determinism: the full zero-shot pipeline gives identical outcomes for
/// identical seeds (the reproducibility property everything else needs).
TEST(Determinism, ZeroShotSearchIsReproducible) {
  ScaleConfig cfg = ScaleConfig::Test();
  AutoCtsOptions opts = AutoCtsOptions::ForScale(cfg);
  opts.ts2vec.repr_dim = 4;
  opts.ts2vec.hidden = 4;
  opts.comparator.repr_dim = 4;
  opts.comparator.gin.embed_dim = 8;
  opts.comparator.f1 = 8;
  opts.comparator.f2 = 4;
  opts.collect.train.batches_per_epoch = 2;
  opts.pretrain.epochs = 2;
  opts.search.ranking_pool = 16;
  opts.search.population = 4;
  opts.search.generations = 1;
  opts.search.top_k = 1;
  Rng rng(21);
  std::vector<ForecastTask> sources = {DeriveSubsetTask(
      MakeSyntheticDataset("PEMS04", cfg).value(), 12, 12, false, &rng)};
  ForecastTask target;
  target.data = MakeSyntheticDataset("Los-Loop", cfg).value();
  target.p = 12;
  target.q = 12;

  auto run = [&]() {
    AutoCtsPlusPlus fw(opts);
    fw.Pretrain(sources);
    return fw.RankTopK(target)[0].Signature();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace autocts
