#include "core/autocts.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace autocts {
namespace {

AutoCtsOptions TinyOptions() {
  ScaleConfig cfg = ScaleConfig::Test();
  AutoCtsOptions opts = AutoCtsOptions::ForScale(cfg);
  opts.ts2vec.repr_dim = 4;
  opts.ts2vec.hidden = 4;
  opts.ts2vec_pretrain.epochs = 1;
  opts.ts2vec_pretrain.batches_per_epoch = 2;
  opts.ts2vec_pretrain.batch_size = 2;
  opts.comparator.repr_dim = 4;
  opts.comparator.gin.embed_dim = 8;
  opts.comparator.f1 = 8;
  opts.comparator.f2 = 4;
  opts.collect.train.batches_per_epoch = 2;
  opts.pretrain.epochs = 2;
  opts.search.ranking_pool = 16;
  opts.search.opponents_per_candidate = 2;
  opts.search.population = 4;
  opts.search.generations = 1;
  opts.search.top_k = 1;
  opts.final_train.epochs = 1;
  opts.final_train.batches_per_epoch = 2;
  opts.final_train.batch_size = 2;
  return opts;
}

std::vector<ForecastTask> TinySourceTasks() {
  ScaleConfig cfg = ScaleConfig::Test();
  std::vector<ForecastTask> tasks;
  for (const char* name : {"PEMS04", "ETTh1"}) {
    ForecastTask t;
    t.data = MakeSyntheticDataset(name, cfg).value();
    t.p = 12;
    t.q = 12;
    tasks.push_back(t);
  }
  return tasks;
}

ForecastTask UnseenTask() {
  ScaleConfig cfg = ScaleConfig::Test();
  ForecastTask t;
  t.data = MakeSyntheticDataset("Los-Loop", cfg).value();
  t.p = 12;
  t.q = 12;
  return t;
}

TEST(AutoCtsPlusPlusTest, EndToEndZeroShot) {
  AutoCtsPlusPlus framework(TinyOptions());
  EXPECT_FALSE(framework.pretrained());
  PretrainReport pre = framework.Pretrain(TinySourceTasks());
  EXPECT_TRUE(framework.pretrained());
  EXPECT_GT(pre.total_pairs_trained, 0);

  SearchOutcome outcome = framework.SearchAndTrain(UnseenTask());
  EXPECT_EQ(outcome.top_k.size(), 1u);
  EXPECT_TRUE(ValidateArchHyper(outcome.best).ok());
  EXPECT_GT(outcome.best_report.test.mae, 0.0);
  EXPECT_GT(outcome.embed_seconds, 0.0);
  EXPECT_GT(outcome.rank_seconds, 0.0);
  EXPECT_GT(outcome.train_seconds, 0.0);
}

TEST(AutoCtsPlusPlusTest, SearchBeforePretrainDies) {
  AutoCtsPlusPlus framework(TinyOptions());
  EXPECT_DEATH(framework.RankTopK(UnseenTask()), "Pretrain");
}

TEST(AutoCtsPlusPlusTest, EmbedTaskProducesTaskVector) {
  AutoCtsPlusPlus framework(TinyOptions());
  framework.Pretrain(TinySourceTasks());
  Tensor e = framework.EmbedTask(UnseenTask());
  EXPECT_EQ(e.shape(), (std::vector<int>{4}));
  EXPECT_FALSE(e.requires_grad());
}

TEST(AutoCtsPlusPlusTest, DifferentTasksDifferentEmbeddings) {
  AutoCtsPlusPlus framework(TinyOptions());
  framework.Pretrain(TinySourceTasks());
  ForecastTask a = UnseenTask();
  ForecastTask b = UnseenTask();
  b.p = 24;
  b.q = 24;
  Tensor ea = framework.EmbedTask(a);
  Tensor eb = framework.EmbedTask(b);
  double diff = 0.0;
  for (int i = 0; i < 4; ++i) diff += std::fabs(ea.at(i) - eb.at(i));
  EXPECT_GT(diff, 1e-6);
}

TEST(AutoCtsPlusPlusTest, MlpEncoderAblationWorks) {
  AutoCtsOptions opts = TinyOptions();
  opts.use_mlp_encoder = true;
  AutoCtsPlusPlus framework(opts);
  framework.Pretrain(TinySourceTasks());
  std::vector<ArchHyper> top = framework.RankTopK(UnseenTask());
  EXPECT_EQ(top.size(), 1u);
}

TEST(AutoCtsPlusTest, FullySupervisedSearchRuns) {
  AutoCtsOptions opts = TinyOptions();
  AutoCtsPlus framework(opts);
  SearchOutcome outcome = framework.SearchAndTrain(UnseenTask());
  EXPECT_TRUE(ValidateArchHyper(outcome.best).ok());
  EXPECT_GT(outcome.best_report.val.mae, 0.0);
}

TEST(TrainTopKTest, PicksValidationWinner) {
  ForecastTask task = UnseenTask();
  JointSearchSpace space;
  Rng rng(31);
  std::vector<ArchHyper> candidates = space.SampleDistinct(2, &rng);
  TrainOptions train;
  train.epochs = 1;
  train.batch_size = 2;
  train.batches_per_epoch = 2;
  SearchOutcome outcome = TrainTopKAndSelect(candidates, task, train,
                                             ScaleConfig::Test(),
                                             ExecContext{}.WithSeed(5));
  bool matches_one = outcome.best == candidates[0] ||
                     outcome.best == candidates[1];
  EXPECT_TRUE(matches_one);
}

TEST(AutoCtsPlusPlusTest, RetrainWithSamplesExtendsBank) {
  AutoCtsPlusPlus framework(TinyOptions());
  framework.Pretrain(TinySourceTasks());
  size_t before = framework.collected_samples().size();
  // Extra samples from one more source task (the §3.1.1 reuse workflow,
  // e.g. after adding an operator or a new source domain).
  ScaleConfig cfg = ScaleConfig::Test();
  ForecastTask extra_task;
  extra_task.data = MakeSyntheticDataset("Solar-Energy", cfg).value();
  extra_task.p = 12;
  extra_task.q = 12;
  Rng rng(77);
  MlpEncoder encoder(1, 4, &rng);
  JointSearchSpace space;
  SampleCollectionOptions collect;
  collect.shared_count = 2;
  collect.random_count = 0;
  collect.early_validation_epochs = 1;
  collect.windows_per_task = 2;
  collect.train.batch_size = 2;
  collect.train.batches_per_epoch = 2;
  std::vector<TaskSampleSet> extra =
      CollectSamples({extra_task}, space, encoder, cfg, collect);
  PretrainReport report = framework.RetrainWithSamples(std::move(extra));
  EXPECT_EQ(framework.collected_samples().size(), before + 1);
  EXPECT_GT(report.total_pairs_trained, 0);
  // The retrained framework still searches.
  EXPECT_EQ(framework.RankTopK(UnseenTask()).size(), 1u);
}

TEST(AutoCtsPlusPlusTest, RetrainWithoutPretrainDies) {
  AutoCtsPlusPlus framework(TinyOptions());
  EXPECT_DEATH(framework.RetrainWithSamples({}), "Pretrain");
}

}  // namespace
}  // namespace autocts
